# Development targets. `make check` is the gate every change must pass;
# the individual targets exist for quicker iteration.

GO ?= go

.PHONY: check vet build test race bench trace-smoke

check: vet build test race trace-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The detector core and the tracer are the concurrency-critical surfaces;
# they must stay clean under the race detector.
race:
	$(GO) test -race ./internal/core/... ./internal/trace/...

# End-to-end observability gate: run a small traced suite, then validate the
# emitted JSONL against the schema and reconcile it with the detector
# counters (see docs/OBSERVABILITY.md).
trace-smoke:
	@dir=$$(mktemp -d) && \
	$(GO) run ./cmd/tsvd-run -modules 5 -trace $$dir >/dev/null && \
	$(GO) run ./cmd/tsvd-trace-check $$dir && \
	rm -rf $$dir

# OnCall hot-path cost (see docs/PERFORMANCE.md for interpretation).
bench:
	GOMAXPROCS=8 $(GO) test -bench BenchmarkOnCallContention -benchtime 1s -run '^$$' .
