# Development targets. `make check` is the gate every change must pass;
# the individual targets exist for quicker iteration.

GO ?= go

.PHONY: check vet build test race bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The detector core is the concurrency-critical surface; it must stay clean
# under the race detector.
race:
	$(GO) test -race ./internal/core/...

# OnCall hot-path cost (see docs/PERFORMANCE.md for interpretation).
bench:
	GOMAXPROCS=8 $(GO) test -bench BenchmarkOnCallContention -benchtime 1s -run '^$$' .
