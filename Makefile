# Development targets. `make check` is the gate every change must pass;
# the individual targets exist for quicker iteration.

GO ?= go

.PHONY: check vet build test race bench bench-gate trace-smoke fleet-smoke metrics-smoke chaos-smoke triage-smoke docs-check

check: vet build test race trace-smoke fleet-smoke metrics-smoke chaos-smoke triage-smoke docs-check bench-gate

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The detector core, the tracer, and the trap-store clients are the
# concurrency-critical surfaces; they must stay clean under the race
# detector.
race:
	$(GO) test -race ./internal/core/... ./internal/trace/... ./internal/trapstore/...

# End-to-end observability gate: run a small traced suite, then validate the
# emitted JSONL against the schema and reconcile it with the detector
# counters (see docs/OBSERVABILITY.md).
trace-smoke:
	@dir=$$(mktemp -d) && \
	$(GO) run ./cmd/tsvd-run -modules 5 -trace $$dir >/dev/null && \
	$(GO) run ./cmd/tsvd-trace-check $$dir && \
	rm -rf $$dir

# End-to-end live-metrics gate: run a deterministic suite with every metrics
# surface enabled and reconcile each exported counter exactly against the
# detector stats and store wire acks (see docs/OBSERVABILITY.md).
metrics-smoke:
	$(GO) run ./cmd/tsvd-metrics-check

# End-to-end fleet-mode gate: a tsvd-trapd daemon plus three concurrent
# tsvd-run shards must converge on one merged trap set, and a shard whose
# daemon is killed mid-run must degrade to its local trap file and exit 0
# (see docs/DEPLOYMENT.md).
fleet-smoke:
	$(GO) run ./cmd/tsvd-fleet-smoke

# Fleet chaos gate: one short race-enabled chaos run against a three-daemon
# cluster (randomized fleet actions — including partitions and anti-entropy
# rounds — with invariant checks after each, see docs/TESTING.md), then a
# full replay of the committed regression-seed database — every seed that
# ever caught a bug, plus a planted-fault seed proving the oracles fire.
chaos-smoke:
	$(GO) run -race ./cmd/tsvd-chaos -seed 11 -actions 20 -shards 2 -daemons 3
	$(GO) run -race ./cmd/tsvd-chaos -replay internal/chaos/regression_seeds.json

# End-to-end triage gate: a K=4×R=3 fleet with planted duplicate bugs across
# shards must fold into exactly one ranked, explained cluster per planted
# bug, and the tsvd-triage CLI must dedup two same-seed tsvd-run trace shards
# the same way (see docs/OBSERVABILITY.md, "Triage").
triage-smoke:
	$(GO) run ./cmd/tsvd-triage-smoke

# Docs gate: intra-docs links must resolve, every Config field and tsvd.*
# symbol the docs mention must exist in source, and every exported
# identifier in the public package, internal/config, and internal/sampler
# must carry a doc comment (see cmd/tsvd-docs-check).
docs-check:
	$(GO) run ./cmd/tsvd-docs-check

# OnCall hot-path cost (see docs/PERFORMANCE.md for interpretation).
bench:
	GOMAXPROCS=8 $(GO) test -bench BenchmarkOnCallContention -benchtime 1s -run '^$$' .

# Hot-path regression gates: BenchmarkOnCallUncontended/TSVD and the trace
# BenchmarkEmit must stay under the ns/op thresholds committed in
# bench_gate.json (best of N runs; see cmd/tsvd-bench-gate for why the
# minimum is the estimator).
bench-gate:
	$(GO) run ./cmd/tsvd-bench-gate
