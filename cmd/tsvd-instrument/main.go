// Command tsvd-instrument rewrites Go source that uses the raw containers
// (repro/internal/rawcol) into source using the instrumented collections —
// the source-level analogue of the paper's static binary instrumenter (§4).
//
// Usage:
//
//	tsvd-instrument -dir ./myservice            # dry run: report only
//	tsvd-instrument -dir ./myservice -w         # rewrite in place
//	tsvd-instrument -dir . -det 'tsvd.Default()'
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/instrument"
)

func main() {
	var (
		dir       = flag.String("dir", ".", "directory tree to instrument")
		write     = flag.Bool("w", false, "rewrite files in place (default: dry run)")
		det       = flag.String("det", "", "detector expression for constructors (default tsvd.Default())")
		sitesPath = flag.String("sites", "", "write the instrumented site table (JSON) to this path")
	)
	flag.Parse()

	opts := instrument.DefaultOptions()
	if *det != "" {
		opts.DetectorExpr = *det
	}
	res, err := instrument.RewriteDir(*dir, opts, *write)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsvd-instrument: %v\n", err)
		os.Exit(1)
	}
	if *sitesPath != "" {
		f, err := os.Create(*sitesPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsvd-instrument: %v\n", err)
			os.Exit(1)
		}
		if err := instrument.EmitSiteTable(f, res.Sites); err != nil {
			fmt.Fprintf(os.Stderr, "tsvd-instrument: site table: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "tsvd-instrument: site table: %v\n", err)
			os.Exit(1)
		}
	}

	mode := "would instrument (dry run; use -w to write)"
	if *write {
		mode = "instrumented"
	}
	fmt.Printf("%s %d file(s), %d thread-unsafe call site(s):\n",
		mode, len(res.FilesChanged), len(res.CallSites()))
	for _, s := range res.Sites {
		kind := "read "
		if s.Write {
			kind = "write"
		}
		if s.Constructor {
			kind = "ctor "
		}
		fmt.Printf("  %s:%d  %s %s.%s\n", s.File, s.Line, kind, s.Class, s.Method)
	}
}
