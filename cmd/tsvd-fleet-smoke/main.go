// Command tsvd-fleet-smoke is the end-to-end gate for fleet mode (`make
// fleet-smoke`): it exercises the real binaries — a tsvd-trapd daemon and
// concurrent tsvd-run shards — the way a CI fleet would, and fails loudly
// if any of the deployment contract breaks:
//
//  1. Three shards run concurrently against one daemon; afterwards the
//     daemon's merged snapshot must equal the union of the per-shard local
//     trap files exactly (the deterministic-merge contract).
//  2. The daemon is killed while a fourth shard is mid-run; the shard must
//     fall back to its local trap file, keep every pair it had, report the
//     degradation on stderr, and still exit 0 (fleet mode is an accelerant,
//     never a point of failure).
//
// Exit status: 0 when both scenarios hold, 1 otherwise.
package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/trapfile"
	"repro/internal/trapstore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "tsvd-fleet-smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("tsvd-fleet-smoke: ok")
}

func run() error {
	dir, err := os.MkdirTemp("", "tsvd-fleet-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	trapdBin := filepath.Join(dir, "tsvd-trapd")
	runBin := filepath.Join(dir, "tsvd-run")
	for bin, pkg := range map[string]string{trapdBin: "./cmd/tsvd-trapd", runBin: "./cmd/tsvd-run"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			return fmt.Errorf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	// --- Scenario 1: three concurrent shards converge through the daemon ---

	daemon, baseURL, err := startDaemon(trapdBin, filepath.Join(dir, "snapshot.json"))
	if err != nil {
		return err
	}
	defer daemon.Process.Kill()
	fmt.Printf("daemon up at %s\n", baseURL)

	const shards = 3
	shardFile := func(i int) string { return filepath.Join(dir, fmt.Sprintf("shard%d.json", i)) }
	var wg sync.WaitGroup
	errs := make([]error, shards)
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Different -seed per shard: different machines testing
			// different modules, converging on one trap set.
			cmd := exec.Command(runBin,
				"-modules", "10", "-runs", "2", "-seed", fmt.Sprint(33+i),
				"-trapfile", shardFile(i), "-trap-server", baseURL)
			if out, err := cmd.CombinedOutput(); err != nil {
				errs[i] = fmt.Errorf("shard %d: %v\n%s", i, err, out)
			}
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}

	union := trapfile.File{}
	for i := 0; i < shards; i++ {
		f, err := trapfile.LoadFile(shardFile(i))
		if err != nil {
			return fmt.Errorf("shard %d trap file: %v", i, err)
		}
		if len(f.Pairs) == 0 {
			return fmt.Errorf("shard %d published no pairs", i)
		}
		union = trapfile.Merge(union, f)
	}
	client := trapstore.NewHTTPStore(baseURL, trapstore.HTTPConfig{})
	merged, err := client.Fetch()
	client.Close()
	if err != nil {
		return fmt.Errorf("fetch merged snapshot: %v", err)
	}
	if err := samePairs(merged.Pairs, union.Pairs); err != nil {
		return fmt.Errorf("daemon snapshot != union of shard trap files: %v", err)
	}
	fmt.Printf("3 shards converged: %d pairs in daemon == union of shard files\n", len(merged.Pairs))

	// --- Scenario 2: daemon killed mid-run; the shard degrades, exits 0 ---

	before, err := trapfile.LoadFile(shardFile(0))
	if err != nil {
		return err
	}
	// Enough runs that the kill below lands between store syncs, with
	// several more syncs (and therefore fallbacks) still to come.
	cmd := exec.Command(runBin,
		"-modules", "40", "-runs", "8", "-seed", "33",
		"-trapfile", shardFile(0), "-trap-server", baseURL)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	time.Sleep(1200 * time.Millisecond) // let the shard get into its runs
	if err := daemon.Process.Kill(); err != nil {
		return fmt.Errorf("kill daemon: %v", err)
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("shard with killed daemon exited nonzero: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "unreachable") {
		return fmt.Errorf("shard did not report the degradation; stderr: %q", stderr.String())
	}
	after, err := trapfile.LoadFile(shardFile(0))
	if err != nil {
		return err
	}
	if missing := subtract(before.Pairs, after.Pairs); len(missing) > 0 {
		return fmt.Errorf("local trap file lost %d pairs after daemon death: %v", len(missing), missing)
	}
	fmt.Printf("daemon killed mid-run: shard exited 0, degraded gracefully, kept all %d prior pairs (%d now)\n",
		len(before.Pairs), len(after.Pairs))

	// --- Scenario 3: three-daemon anti-entropy cluster converges, and
	// steady-state polls are delta-sized, not full snapshots ---

	const daemons = 3
	cluster := make([]*exec.Cmd, 0, daemons)
	urls := make([]string, 0, daemons)
	defer func() {
		for _, d := range cluster {
			d.Process.Kill()
		}
	}()
	for i := 0; i < daemons; i++ {
		// Sequential startup with chain -peer flags, as an operator would
		// bring a cluster up: each daemon names only the ones already
		// running; push+pull anti-entropy makes the chain converge anyway.
		args := []string{"-addr", "127.0.0.1:0",
			"-snapshot", filepath.Join(dir, fmt.Sprintf("cluster%d.json", i)),
			"-sync-interval", "150ms"}
		for _, u := range urls {
			args = append(args, "-peer", u)
		}
		d, u, err := startDaemonArgs(trapdBin, args)
		if err != nil {
			return fmt.Errorf("cluster daemon %d: %v", i, err)
		}
		cluster, urls = append(cluster, d), append(urls, u)
	}
	fmt.Printf("3-daemon cluster up: %s\n", strings.Join(urls, " "))

	// Each shard publishes to a different daemon of the cluster.
	shard3File := func(i int) string { return filepath.Join(dir, fmt.Sprintf("cluster-shard%d.json", i)) }
	errs3 := make([]error, daemons)
	var wg3 sync.WaitGroup
	for i := 0; i < daemons; i++ {
		wg3.Add(1)
		go func(i int) {
			defer wg3.Done()
			cmd := exec.Command(runBin,
				"-modules", "10", "-runs", "2", "-seed", fmt.Sprint(63+i),
				"-trapfile", shard3File(i), "-trap-server", urls[i])
			if out, err := cmd.CombinedOutput(); err != nil {
				errs3[i] = fmt.Errorf("cluster shard %d: %v\n%s", i, err, out)
			}
		}(i)
	}
	wg3.Wait()
	for _, e := range errs3 {
		if e != nil {
			return e
		}
	}
	union3 := trapfile.File{}
	for i := 0; i < daemons; i++ {
		f, err := trapfile.LoadFile(shard3File(i))
		if err != nil {
			return fmt.Errorf("cluster shard %d trap file: %v", i, err)
		}
		union3 = trapfile.Merge(union3, f)
	}

	// Anti-entropy must spread every daemon's pairs to every other.
	deadline := time.Now().Add(20 * time.Second)
	for {
		converged := true
		for i, u := range urls {
			c := trapstore.NewHTTPStore(u, trapstore.HTTPConfig{})
			got, err := c.Fetch()
			c.Close()
			if err != nil {
				return fmt.Errorf("cluster daemon %d fetch: %v", i, err)
			}
			if samePairs(got.Pairs, union3.Pairs) != nil {
				converged = false
				break
			}
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("3-daemon cluster did not converge on %d pairs within 20s", len(union3.Pairs))
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Printf("3-daemon cluster converged: every daemon holds all %d pairs\n", len(union3.Pairs))

	// Wire economy: a polling client pays one full snapshot up front; after
	// that an idle poll is a 304 and a one-pair growth arrives as a delta
	// body, never a second full snapshot.
	poller := trapstore.NewHTTPStore(urls[0], trapstore.HTTPConfig{})
	defer poller.Close()
	if _, err := poller.Fetch(); err != nil {
		return fmt.Errorf("poller full fetch: %v", err)
	}
	fullBytes := poller.WireStats().FetchBytes
	if _, err := poller.Fetch(); err != nil { // idle poll
		return fmt.Errorf("poller idle fetch: %v", err)
	}
	pub := trapstore.NewHTTPStore(urls[2], trapstore.HTTPConfig{})
	err = pub.Publish(trapfile.File{Tool: "TSVD", Pairs: []trapfile.Pair{{A: "smoke/delta.go:1", B: "smoke/delta.go:2"}}})
	pub.Close()
	if err != nil {
		return fmt.Errorf("publish to cluster daemon 2: %v", err)
	}
	want := len(union3.Pairs) + 1
	for {
		got, err := poller.Fetch()
		if err != nil {
			return fmt.Errorf("poller fetch: %v", err)
		}
		if len(got.Pairs) == want {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("pair published to daemon 2 never reached daemon 0")
		}
		time.Sleep(100 * time.Millisecond)
	}
	ws := poller.WireStats()
	if ws.DeltaFetches < 1 {
		return fmt.Errorf("replicated growth arrived as a full snapshot, not a delta: %+v", ws)
	}
	steadyBytes := ws.FetchBytes - fullBytes
	if steadyBytes >= fullBytes {
		return fmt.Errorf("steady-state polling cost %d bytes vs %d for one full snapshot; deltas are not saving wire",
			steadyBytes, fullBytes)
	}
	fmt.Printf("delta polling: full snapshot %dB once, then %d polls cost %dB total (%d delta, %d not-modified)\n",
		fullBytes, ws.Fetches-1, steadyBytes, ws.DeltaFetches, ws.NotModified)
	return nil
}

// startDaemon launches tsvd-trapd on an ephemeral port and parses the bound
// base URL from its startup line.
func startDaemon(bin, snapshot string) (*exec.Cmd, string, error) {
	return startDaemonArgs(bin, []string{"-addr", "127.0.0.1:0", "-snapshot", snapshot})
}

// startDaemonArgs starts tsvd-trapd with an arbitrary flag set, for the
// cluster scenario where each daemon also carries -peer and -sync-interval.
func startDaemonArgs(bin string, args []string) (*exec.Cmd, string, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	select {
	case line, ok := <-lines:
		url, found := strings.CutPrefix(line, "tsvd-trapd: listening on ")
		if !ok || !found {
			cmd.Process.Kill()
			return nil, "", fmt.Errorf("unexpected daemon startup line %q", line)
		}
		return cmd, url, nil
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		return nil, "", fmt.Errorf("daemon did not print its listening line in time")
	}
}

// samePairs checks set equality of two normalized pair slices.
func samePairs(a, b []trapfile.Pair) error {
	if extra := subtract(a, b); len(extra) > 0 {
		return fmt.Errorf("%d pairs only on the daemon side: %v", len(extra), extra)
	}
	if extra := subtract(b, a); len(extra) > 0 {
		return fmt.Errorf("%d pairs only on the shard side: %v", len(extra), extra)
	}
	return nil
}

// subtract returns the members of a that b lacks.
func subtract(a, b []trapfile.Pair) []trapfile.Pair {
	in := make(map[trapfile.Pair]bool, len(b))
	for _, p := range b {
		in[p] = true
	}
	var out []trapfile.Pair
	for _, p := range a {
		if !in[p] {
			out = append(out, p)
		}
	}
	return out
}
