// Command tsvd-triage-smoke is the end-to-end gate for the triage layer
// (`make triage-smoke`). It enforces the headline triage contract on two
// deployment surfaces:
//
//  1. In-process fleet: RunFleet with K=4 shards × R=3 rounds over one
//     shared trap store, with tracing and one shared Triage attached. The
//     planted bugs fire from multiple shards; triage must fold every firing
//     into exactly one cluster per distinct planted bug (zero duplicates),
//     every cluster must carry a reproducibility rank, and every cluster's
//     explanation slice must name the victim object's access pair, the
//     injected delay, and the absent happens-before ordering. The triage
//     metric counters must agree with the cluster report.
//  2. Real binaries: two same-seed `tsvd-run -trace` shards (the same bugs
//     twice over) folded by `tsvd-triage` into one report whose cluster
//     count equals the number of distinct sprung pairs across both traces —
//     the cross-process dedup path CI dashboards consume.
//
// Exit status: 0 when every assertion holds, 1 otherwise.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/trapstore"
	"repro/internal/triage"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "tsvd-triage-smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("tsvd-triage-smoke: ok")
}

func run() error {
	if err := fleetScenario(); err != nil {
		return fmt.Errorf("fleet scenario: %w", err)
	}
	if err := cliScenario(); err != nil {
		return fmt.Errorf("cli scenario: %w", err)
	}
	return nil
}

// fleetScenario runs the K×R in-process fleet and checks the one-cluster-
// per-bug contract plus rank and explanation completeness.
func fleetScenario() error {
	const shards, rounds = 4, 3
	suite := workload.GenerateSuite(2019, 12)
	base := harness.Options{Config: config.Defaults(config.AlgoTSVD).Scaled(0.02)}
	base.Config.Trace = true
	tri := triage.New()
	base.Triage = tri
	reg := metrics.NewRegistry()
	tri.RegisterMetrics(reg)
	shared := trapstore.NewMemory("TSVD", nil)

	out := harness.RunFleet(suite, shards, rounds, base, shared)
	if out.StoreErr != nil {
		return fmt.Errorf("store error: %v", out.StoreErr)
	}
	if len(out.Found) == 0 {
		return fmt.Errorf("fleet caught no planted bugs; nothing to triage")
	}

	// Ground truth: the unordered loc-pair of every planted bug the fleet
	// caught. Exactly one cluster per member, no cluster outside the set.
	wantPairs := map[[2]string]bool{}
	for key := range out.Found {
		wantPairs[sortedPair(key.A.Key(), key.B.Key())] = true
	}
	clusters := tri.Clusters()
	gotPairs := map[[2]string]int{}
	for _, c := range clusters {
		gotPairs[sortedPair(c.Sig.A.Loc, c.Sig.B.Loc)]++
	}
	for p, n := range gotPairs {
		if n > 1 {
			return fmt.Errorf("pair %v reported as %d clusters (duplicate reports)", p, n)
		}
		if !wantPairs[p] {
			return fmt.Errorf("cluster pair %v is not a caught planted bug", p)
		}
	}
	if len(gotPairs) != len(wantPairs) {
		return fmt.Errorf("%d clusters for %d caught planted bugs", len(gotPairs), len(wantPairs))
	}
	fmt.Printf("fleet: %d firings folded into %d clusters, one per caught planted bug\n",
		tri.FiringsFolded(), len(clusters))

	multi := 0
	for _, c := range clusters {
		if c.Rank.Opportunities < c.Rank.FiringUnits || c.Rank.FiringUnits < 1 {
			return fmt.Errorf("cluster %s: malformed rank %+v", c.ID, c.Rank)
		}
		if c.Rank.Low <= 0 || c.Rank.High > 1 {
			return fmt.Errorf("cluster %s: confidence interval [%v, %v] out of range",
				c.ID, c.Rank.Low, c.Rank.High)
		}
		if c.First.Shard == 0 || c.First.Round == 0 || c.First.Mode == "" {
			return fmt.Errorf("cluster %s: missing fleet provenance %+v", c.ID, c.First)
		}
		if c.First.Shard != c.Last.Shard {
			multi++
		}
		ex := c.Explanation
		if ex == nil {
			return fmt.Errorf("cluster %s: no explanation slice", c.ID)
		}
		pair := sortedPair(c.Sig.A.Loc, c.Sig.B.Loc)
		if sortedPair(ex.TrappedLoc, ex.ConflictingLoc) != pair {
			return fmt.Errorf("cluster %s: explanation names pair %s/%s, cluster is %v",
				c.ID, ex.TrappedLoc, ex.ConflictingLoc, pair)
		}
		if ex.Object == 0 {
			return fmt.Errorf("cluster %s: explanation names no victim object", c.ID)
		}
		if ex.GrantedDelayUS <= 0 && ex.InjectedDelayUS <= 0 {
			return fmt.Errorf("cluster %s: explanation names no injected delay", c.ID)
		}
		if ex.HBOrdered {
			return fmt.Errorf("cluster %s: sprung pair claims a happens-before ordering", c.ID)
		}
		if !strings.Contains(ex.Verdict, "no happens-before") {
			return fmt.Errorf("cluster %s: verdict omits the absent HB ordering: %s", c.ID, ex.Verdict)
		}
	}
	fmt.Printf("fleet: %d cluster(s) seen from more than one shard\n", multi)

	// The metric counters must agree with the cluster report.
	got := scrape(reg)
	if got["tsvd_triage_clusters_total"] != float64(len(clusters)) {
		return fmt.Errorf("tsvd_triage_clusters_total = %v, want %d",
			got["tsvd_triage_clusters_total"], len(clusters))
	}
	if got["tsvd_triage_firings_folded_total"] != float64(tri.FiringsFolded()) {
		return fmt.Errorf("tsvd_triage_firings_folded_total = %v, want %d",
			got["tsvd_triage_firings_folded_total"], tri.FiringsFolded())
	}
	return nil
}

// cliScenario drives the real tsvd-run and tsvd-triage binaries: two
// same-seed shards produce duplicate bugs; the CLI must fold them.
func cliScenario() error {
	dir, err := os.MkdirTemp("", "tsvd-triage-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	runBin := filepath.Join(dir, "tsvd-run")
	triageBin := filepath.Join(dir, "tsvd-triage")
	for bin, pkg := range map[string]string{runBin: "./cmd/tsvd-run", triageBin: "./cmd/tsvd-triage"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			return fmt.Errorf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	traceDirs := []string{filepath.Join(dir, "shard1"), filepath.Join(dir, "shard2")}
	for _, td := range traceDirs {
		// Same seed in both shards: the same planted bugs fire twice across
		// "machines", the duplicate-heavy case dedup exists for.
		cmd := exec.Command(runBin, "-modules", "10", "-runs", "1", "-seed", "2019", "-trace", td)
		if out, err := cmd.CombinedOutput(); err != nil {
			return fmt.Errorf("%s: %v\n%s", td, err, out)
		}
	}

	// Ground truth from the traces themselves: distinct sprung pairs.
	sprung := map[[2]string]int{}
	for _, td := range traceDirs {
		f, err := os.Open(filepath.Join(td, "events.jsonl"))
		if err != nil {
			return err
		}
		jes, err := trace.ReadJSONL(f)
		f.Close()
		if err != nil {
			return err
		}
		for _, je := range jes {
			if je.Ev == trace.KindTrapSprung.String() {
				sprung[sortedPair(je.LocA, je.LocB)]++
			}
		}
	}
	if len(sprung) == 0 {
		return fmt.Errorf("no trap_sprung events in either trace; nothing to triage")
	}

	outDir := filepath.Join(dir, "bugs")
	cmd := exec.Command(triageBin, "-out", outDir, traceDirs[0], traceDirs[1])
	if out, err := cmd.CombinedOutput(); err != nil {
		return fmt.Errorf("tsvd-triage: %v\n%s", err, out)
	}

	raw, err := os.ReadFile(filepath.Join(outDir, "bugs.json"))
	if err != nil {
		return err
	}
	var rep struct {
		Clusters int   `json:"clusters"`
		Firings  int64 `json:"firings_folded"`
		Bugs     []struct {
			ID    string `json:"id"`
			SiteA struct {
				Loc string `json:"loc"`
			} `json:"site_a"`
			SiteB struct {
				Loc string `json:"loc"`
			} `json:"site_b"`
		} `json:"bugs"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("parse bugs.json: %w", err)
	}
	if rep.Clusters != len(sprung) {
		return fmt.Errorf("%d clusters for %d distinct sprung pairs (duplicates not folded)",
			rep.Clusters, len(sprung))
	}
	var firings int64
	for _, n := range sprung {
		firings += int64(n)
	}
	if rep.Firings != firings {
		return fmt.Errorf("folded %d firings, traces contain %d springs", rep.Firings, firings)
	}
	seen := map[string]bool{}
	for _, b := range rep.Bugs {
		if seen[b.ID] {
			return fmt.Errorf("duplicate cluster id %s in bugs.json", b.ID)
		}
		seen[b.ID] = true
		if sprung[sortedPair(b.SiteA.Loc, b.SiteB.Loc)] == 0 {
			return fmt.Errorf("cluster %s pair (%s, %s) never sprang in the traces",
				b.ID, b.SiteA.Loc, b.SiteB.Loc)
		}
	}
	fmt.Printf("cli: 2 same-seed shards, %d springs folded into %d clusters\n",
		firings, rep.Clusters)
	return nil
}

// sortedPair orders a loc pair for set membership.
func sortedPair(a, b string) [2]string {
	if b < a {
		a, b = b, a
	}
	return [2]string{a, b}
}

// scrape reads every counter family from reg into a name → value map
// (single-series families only, which is all triage exports).
func scrape(reg *metrics.Registry) map[string]float64 {
	var buf strings.Builder
	reg.WritePrometheus(&buf)
	out := map[string]float64{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		var f float64
		if _, err := fmt.Sscanf(val, "%g", &f); err == nil {
			out[name] = f
		}
	}
	return out
}
