// Command tsvd-trapd is the fleet trap-aggregation daemon: it holds the
// merged dangerous-pair set that concurrent test shards (tsvd-run
// -trap-server, or any trapstore.HTTPStore client) publish to and seed
// from, generalizing the paper's cross-run trap persistence (§3.4.6)
// across the shards of a CI fleet.
//
// Usage:
//
//	tsvd-trapd -addr 127.0.0.1:8321 -snapshot /var/lib/tsvd/traps.json
//	tsvd-trapd -addr 127.0.0.1:0 -v     # ephemeral port, printed on stdout
//	tsvd-trapd -addr 127.0.0.1:8321 -peer http://10.0.0.2:8321 -peer http://10.0.0.3:8321
//
// The daemon speaks the trapstore wire schema on /v1/traps (GET snapshot
// with an epoch-qualified ETag and O(delta) ?since= incremental responses,
// POST merge), serves a read-only triage view of the merged set on /v1/bugs
// (one cluster per distinct dangerous pair, same ETag protocol; see
// docs/OBSERVABILITY.md "Triage"), answers liveness probes on /healthz (JSON: status,
// generation, epoch, pairs, uptime_seconds), and exposes Prometheus metrics
// on /metrics (tsvd_trapd_* series; see docs/OBSERVABILITY.md). With -pprof
// the standard net/http/pprof profiling endpoints are additionally mounted
// under /debug/pprof/ — off by default, since profiling handlers on a
// fleet-shared daemon are a footgun. With -snapshot it seeds its set — and
// restores its generation counter, keeping it monotone across restarts —
// from the file at startup and persists after every merge that grows the
// set, so a restarted daemon resumes where it stopped. With -peer (repeat
// the flag, or pass a comma-separated list) it runs pull+push anti-entropy
// against the named daemons every -sync-interval, so any connected cluster
// converges to the union of all daemons' sets with no single point of
// failure. SIGINT/SIGTERM shut it down gracefully, saving a final snapshot.
//
// On startup it prints exactly one line, "tsvd-trapd: listening on
// http://HOST:PORT", so wrappers that start it with -addr ...:0 can
// discover the bound port. Exit status: 0 on clean shutdown, 1 on runtime
// failures, 2 on usage errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/trapfile"
	"repro/internal/trapstore"
)

func main() {
	os.Exit(run())
}

// peerList collects -peer flags; each occurrence may itself be a
// comma-separated list.
type peerList []string

func (p *peerList) String() string { return strings.Join(*p, ",") }

func (p *peerList) Set(v string) error {
	for _, s := range strings.Split(v, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		*p = append(*p, s)
	}
	return nil
}

func run() int {
	var peers peerList
	var (
		addr     = flag.String("addr", "127.0.0.1:8321", "listen address (use :0 for an ephemeral port)")
		snapshot = flag.String("snapshot", "", "trap file to seed from at startup and persist after every merge")
		tool     = flag.String("tool", "TSVD", "tool label for the aggregated trap set")
		verbose  = flag.Bool("v", false, "log every merge")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		syncIvl  = flag.Duration("sync-interval", 2*time.Second, "anti-entropy period against -peer daemons")
	)
	flag.Var(&peers, "peer", "peer daemon base URL for anti-entropy replication (repeatable, or comma-separated)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "tsvd-trapd: unexpected arguments %v\n", flag.Args())
		return 2
	}

	logger := log.New(os.Stderr, "tsvd-trapd: ", log.LstdFlags)

	store := trapstore.NewMemory(*tool, nil)
	var persister *trapstore.SnapshotPersister
	if *snapshot != "" {
		persister = trapstore.NewSnapshotPersister(*snapshot)
		f, prev, err := persister.Load()
		if err != nil {
			// A corrupt snapshot must not be silently replaced by an empty
			// set: shards would lose every previously aggregated pair.
			logger.Printf("refusing to start: %v", err)
			return 1
		}
		// Restore continues the persisted generation under this boot's fresh
		// epoch, so no two daemon lifetimes ever serve the same ETag for
		// different sets.
		store.Restore(f, prev)
		if len(f.Pairs) > 0 {
			logger.Printf("seeded %d pairs from %s (generation %d continues at %d)",
				len(f.Pairs), *snapshot, prev.Generation, store.Generation())
		}
	}

	// The persister serializes concurrent merge handlers' saves and drops
	// stale generations, so the snapshot on disk can never regress below a
	// state a client's publish was already acknowledged against; the save
	// itself is the same temp+fsync+atomic-rename dance as trapfile.Save.
	saveSnapshot := func(f trapfile.File, st trapstore.SyncState) {
		if persister == nil {
			return
		}
		if err := persister.Save(f, st); err != nil {
			logger.Printf("snapshot save failed (set kept in memory): %v", err)
		} else if *verbose {
			logger.Printf("snapshot saved: %d pairs, generation %d", len(f.Pairs), st.Generation)
		}
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = logger.Printf
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("%v", err)
		return 1
	}
	// The one machine-readable startup line: wrappers parse the bound
	// address from it when they start the daemon on an ephemeral port.
	fmt.Printf("tsvd-trapd: listening on http://%s\n", ln.Addr())
	if *verbose {
		logger.Printf("boot epoch %s", store.State())
	}

	reg := metrics.NewRegistry()
	handler := trapstore.NewHandler(store, trapstore.HandlerOptions{
		OnMerge: saveSnapshot,
		Logf:    logf,
		Metrics: reg,
	})
	var root http.Handler = handler
	if *pprofOn {
		// The profiling endpoints live in the binary, not the library: the
		// trapstore handler stays free of net/http/pprof so embedding it
		// never drags profiling routes into a production mux uninvited.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		root = mux
	}

	var repl *trapstore.Replicator
	if len(peers) > 0 {
		repl = trapstore.NewReplicator(store, trapstore.ReplicatorConfig{
			Peers:    peers,
			Interval: *syncIvl,
			OnMerge:  saveSnapshot,
			Logf:     logf,
			Metrics:  reg,
		})
		repl.Start()
		logger.Printf("anti-entropy against %d peer(s) every %s: %s", len(peers), *syncIvl, peers.String())
	}

	srv := &http.Server{Handler: root}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Printf("shutting down")
		if repl != nil {
			repl.Close()
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
		f, st := store.SnapshotState()
		saveSnapshot(f, st)
		return 0
	case err := <-errc:
		if repl != nil {
			repl.Close()
		}
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("%v", err)
			return 1
		}
		return 0
	}
}
