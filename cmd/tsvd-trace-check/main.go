// Command tsvd-trace-check validates a trace directory written by
// `tsvd-run -trace`: every line of events.jsonl must parse against the
// schema, and the per-kind event counts must reconcile exactly with the
// detector counters recorded in summary.json. It is the consumer-side half
// of the observability contract (docs/OBSERVABILITY.md) and the check
// `make trace-smoke` runs in CI.
//
// Usage:
//
//	tsvd-trace-check <trace-dir>
//
// Exit status: 0 when the trace is schema-valid and reconciles, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tsvd-trace-check <trace-dir>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return 2
	}
	dir := flag.Arg(0)

	sf, err := os.Open(filepath.Join(dir, "summary.json"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsvd-trace-check: %v\n", err)
		return 1
	}
	sum, err := trace.ReadSummary(sf)
	sf.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsvd-trace-check: %v\n", err)
		return 1
	}

	ef, err := os.Open(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsvd-trace-check: %v\n", err)
		return 1
	}
	counts, err := trace.ValidateJSONL(ef)
	ef.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsvd-trace-check: %v\n", err)
		return 1
	}

	ok := true
	var total int64
	for _, n := range counts {
		total += n
	}
	if total != sum.Drained {
		fmt.Fprintf(os.Stderr, "tsvd-trace-check: events.jsonl has %d events, summary says %d drained\n",
			total, sum.Drained)
		ok = false
	}
	for kind, n := range sum.ByKind {
		if counts[kind] != n {
			fmt.Fprintf(os.Stderr, "tsvd-trace-check: %s: %d in events.jsonl, %d in summary\n",
				kind, counts[kind], n)
			ok = false
		}
	}
	if err := trace.Reconcile(counts, sum.Stats, sum.Store, sum.Dropped); err != nil {
		fmt.Fprintf(os.Stderr, "tsvd-trace-check: %v\n", err)
		ok = false
	}
	if !ok {
		return 1
	}
	fmt.Printf("tsvd-trace-check: %s ok — %d events, %d kinds, counters reconcile, 0 dropped\n",
		dir, total, len(counts))
	return 0
}
