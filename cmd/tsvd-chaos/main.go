// Command tsvd-chaos drives the fleet chaos harness (internal/chaos): a
// deterministic, seeded interleaving of shard detector runs, daemon kills
// and restarts, network partitions and anti-entropy peer-sync rounds across
// a multi-daemon cluster, trap-file corruption, injected network faults,
// concurrent publishes and session supersedes, with hard invariants checked
// after every action — per-daemon durability of acked pairs, the Fallback
// no-pair-lost contract, exact trace/metrics reconciliation, and
// cluster-wide convergence.
//
// Usage:
//
//	tsvd-chaos -seed 42 -actions 30 -shards 3            # one run
//	tsvd-chaos -seed 42 -daemons 3                       # 3-daemon cluster
//	tsvd-chaos -seed 42 -plant lose-local-publish        # must be caught
//	tsvd-chaos -replay internal/chaos/regression_seeds.json
//	tsvd-chaos -seed 42 -record internal/chaos/regression_seeds.json
//
// The same seed always produces the same action log and the same verdict.
// A failing run prints the violated invariant, an explanation slice (the
// event history of the offending pairs), the minimized failing plan, and a
// ready-to-commit regression-seed JSON snippet.
//
// Exit status: 0 when every invariant held (or every replayed seed matched
// its expected verdict), 1 on a violation or replay mismatch, 2 on usage
// errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"time"

	"repro/internal/chaos"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seed     = flag.Int64("seed", 1, "plan seed; same seed, same plan, same verdict")
		actions  = flag.Int("actions", 30, "number of planned fleet actions (a closing converge is always appended)")
		shards   = flag.Int("shards", 3, "number of simulated CI shards")
		daemons  = flag.Int("daemons", 1, "number of trap daemons in the simulated cluster")
		plant    = flag.String("plant", "", `deliberately planted fault the run must catch ("lose-local-publish")`)
		minimize = flag.Bool("minimize", true, "shrink a failing plan to a smaller failing action list")
		replay   = flag.String("replay", "", "replay every seed in this regression database and verify each verdict")
		record   = flag.String("record", "", "append this run's parameters to the seed database at the given path")
		verbose  = flag.Bool("v", false, "log every action as it executes")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: tsvd-chaos [-seed N] [-actions N] [-shards N] [-daemons N] [-plant FAULT] [-replay FILE] [-record FILE]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		return 2
	}

	if *replay != "" {
		n, err := chaos.ReplaySeeds(*replay, func(format string, args ...any) {
			fmt.Printf("tsvd-chaos: "+format+"\n", args...)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsvd-chaos: replay: %v\n", err)
			return 1
		}
		fmt.Printf("tsvd-chaos: replayed %d regression seeds from %s, all verdicts match\n", n, *replay)
		return 0
	}

	planted, err := chaos.ParsePlant(*plant)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsvd-chaos: %v\n", err)
		return 2
	}

	cfg := chaos.Config{Seed: *seed, Actions: *actions, Shards: *shards, Daemons: *daemons, Plant: planted, Minimize: *minimize}
	if *verbose {
		cfg.Logf = func(format string, args ...any) { fmt.Printf("tsvd-chaos: "+format+"\n", args...) }
	}
	res, err := chaos.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsvd-chaos: %v\n", err)
		return 2
	}

	expectCaught := planted != 0
	switch {
	case res.Violation == nil && !expectCaught:
		fmt.Printf("tsvd-chaos: PASS seed=%d actions=%d shards=%d daemons=%d: all invariants held over %d actions\n",
			*seed, *actions, *shards, *daemons, res.ActionsRun)
		if *record != "" {
			return recordSeed(*record, cfg, "pass", "routine chaos run, all invariants held")
		}
		return 0
	case res.Violation != nil && expectCaught:
		fmt.Printf("tsvd-chaos: CAUGHT seed=%d plant=%s: the planted fault tripped invariant %q after action #%d\n",
			*seed, *plant, res.Violation.Invariant, res.Violation.Action)
		printViolation(res)
		if *record != "" {
			return recordSeed(*record, cfg, "caught",
				fmt.Sprintf("planted %s caught by %s", *plant, res.Violation.Invariant))
		}
		return 0
	case res.Violation == nil && expectCaught:
		fmt.Fprintf(os.Stderr,
			"tsvd-chaos: ORACLE FAILURE seed=%d plant=%s: the planted fault was NOT caught in %d actions\n",
			*seed, *plant, res.ActionsRun)
		return 1
	default:
		fmt.Fprintf(os.Stderr, "tsvd-chaos: FAIL seed=%d: %v\n", *seed, res.Violation)
		printViolation(res)
		fmt.Fprintf(os.Stderr, "\nready-to-commit regression seed:\n%s\n", seedSnippet(cfg))
		return 1
	}
}

// printViolation renders the explanation slice and minimized plan.
func printViolation(res *chaos.Result) {
	v := res.Violation
	fmt.Printf("\ninvariant:  %s\ndetail:     %s\n", v.Invariant, v.Detail)
	if len(v.Explanation) > 0 {
		fmt.Printf("\nexplanation (history of the offending pairs):\n")
		for _, line := range v.Explanation {
			fmt.Printf("  %s\n", line)
		}
	}
	plan := v.MinimizedPlan
	label := "minimized failing plan"
	if plan == nil {
		plan = res.Plan[:v.Action+1]
		label = "failing action prefix (minimization off)"
	}
	fmt.Printf("\n%s (%d actions):\n", label, len(plan))
	for i, line := range plan {
		fmt.Printf("  %2d. %s\n", i, line)
	}
}

// seedSnippet renders cfg as a SeedEntry JSON object for pasting into
// regression_seeds.json.
func seedSnippet(cfg chaos.Config) string {
	daemons := ""
	if cfg.Daemons > 1 {
		daemons = fmt.Sprintf("\n    \"daemons\": %d,", cfg.Daemons)
	}
	return fmt.Sprintf(`  {
    "seed": %d,
    "actions": %d,
    "shards": %d,%s
    "expect": "pass",
    "added": %q,
    "note": "<what this seed caught>"
  }`, cfg.Seed, cfg.Actions, cfg.Shards, daemons, time.Now().Format("2006-01-02"))
}

// recordSeed appends this run's parameters to the seed database at path,
// creating it when absent.
func recordSeed(path string, cfg chaos.Config, expect, note string) int {
	db, err := chaos.LoadSeeds(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "tsvd-chaos: record: %v\n", err)
			return 1
		}
		db = &chaos.SeedDB{Version: 1}
	}
	db.Seeds = append(db.Seeds, chaos.SeedEntry{
		Seed: cfg.Seed, Actions: cfg.Actions, Shards: cfg.Shards, Daemons: cfg.Daemons,
		Plant: chaos.PlantName(cfg.Plant), Expect: expect,
		Added: time.Now().Format("2006-01-02"), Note: note,
	})
	if err := chaos.SaveSeeds(path, db); err != nil {
		fmt.Fprintf(os.Stderr, "tsvd-chaos: record: %v\n", err)
		return 1
	}
	fmt.Printf("tsvd-chaos: recorded seed %d in %s (%d seeds total)\n", cfg.Seed, path, len(db.Seeds))
	return 0
}
