// Command tsvd-run executes a generated workload suite (or the Table-4
// open-source scenarios) under a chosen detection technique and prints the
// bug reports and statistics — the command-line face of the integrated
// build-and-test deployment the paper describes (§2.1).
//
// Usage:
//
//	tsvd-run -modules 50 -runs 2 -algo tsvd
//	tsvd-run -scenarios
//	tsvd-run -modules 20 -algo tsvdhb -v
//	tsvd-run -modules 5 -trace /tmp/trace-out
//	tsvd-run -modules 20 -triage /tmp/bugs-out
//	tsvd-run -modules 30 -trapfile traps.json -trap-server http://127.0.0.1:8321
//	tsvd-run -modules 50 -mode observe-only
//	tsvd-run -modules 50 -mode sampled -overhead-target 0.01
//
// -mode selects the production sampling tier (docs/SAMPLING.md): full is
// today's behavior, observe-only records near misses and logical trap
// firings without sleeping any thread, and sampled gates analysis through a
// per-site probability (-sample-probability, auto-throttled toward
// -overhead-target when one is set).
//
// With -trapfile the run seeds from and persists to a local trap file
// (§3.4.6); adding -trap-server joins a fleet: the run also fetches from and
// publishes to a tsvd-trapd daemon, degrading back to the local file alone
// when the daemon is unreachable (the run still exits 0 — fleet mode is an
// accelerant, never a point of failure).
//
// Exit status:
//
//	0 — success (including daemon unreachable but local trap file intact)
//	1 — the run failed, or reported pairs outside the suite's ground truth
//	    (a detector soundness regression)
//	2 — usage errors
//	3 — a corrupt trap file or trap-server payload (trapfile.ErrCorrupt)
//	4 — trap store unreachable with no local fallback (trapstore.ErrUnavailable)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/trapstore"
	"repro/internal/triage"
	"repro/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		algoName   = flag.String("algo", "tsvd", "technique: tsvd, tsvdhb, dynamicrandom, datacollider")
		modules    = flag.Int("modules", 50, "number of generated modules")
		runs       = flag.Int("runs", 2, "consecutive runs (trap set persists between runs)")
		seed       = flag.Int64("seed", 2019, "suite seed")
		scale      = flag.Float64("scale", 0.02, "time scale (1.0 = the paper's 100ms delays)")
		verbose    = flag.Bool("v", false, "print a live progress heartbeat and each bug's two-sided report")
		jsonOut    = flag.Bool("json", false, "emit the bug report as JSON on stdout")
		scenario   = flag.Bool("scenarios", false, "run the 9 open-source scenarios instead")
		trapsFile  = flag.String("trapfile", "", "local trap file to seed each run from and publish to (§3.4.6)")
		trapServer = flag.String("trap-server", "", "tsvd-trapd base URL to share traps with across shards (fleet mode)")
		traceDir   = flag.String("trace", "", "directory to write the detector event trace (events.jsonl, metrics.json, summary.json)")
		triageDir  = flag.String("triage", "", "directory to write the clustered bug-triage report (bugs.json, bugs.md); implies tracing")
		modeName   = flag.String("mode", "full", "sampling mode: full, sampled, observe-only (docs/SAMPLING.md)")
		sampleProb = flag.Float64("sample-probability", 1.0, "per-site admission probability in sampled mode")
		overhead   = flag.Float64("overhead-target", 0, "overhead fraction the sampler auto-throttles toward (0 = fixed probability)")
	)
	flag.Parse()

	if *scenario {
		// The scenario table has its own fixed parameters; accepting the
		// suite flags and then ignoring them would silently run something
		// other than what the user asked for.
		var conflicting []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "scenarios":
			default:
				conflicting = append(conflicting, "-"+f.Name)
			}
		})
		if len(conflicting) > 0 {
			fmt.Fprintf(os.Stderr,
				"tsvd-run: -scenarios runs a fixed experiment table and cannot be combined with %v\n",
				conflicting)
			return 2
		}
		experiments.Table4(experiments.DefaultParams(), os.Stdout)
		return 0
	}

	algos := map[string]config.Algorithm{
		"tsvd":          config.AlgoTSVD,
		"tsvdhb":        config.AlgoTSVDHB,
		"dynamicrandom": config.AlgoDynamicRandom,
		"datacollider":  config.AlgoStaticRandom,
	}
	algo, ok := algos[*algoName]
	if !ok {
		fmt.Fprintf(os.Stderr, "tsvd-run: unknown algorithm %q\n", *algoName)
		return 2
	}

	mode, err := config.ParseMode(*modeName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsvd-run: %v\n", err)
		return 2
	}

	suite := workload.GenerateSuite(*seed, *modules)
	opts := harness.Options{
		Config: config.Defaults(algo).Scaled(*scale),
		Runs:   *runs,
	}
	opts.Config.Mode = mode
	opts.Config.SampleProbability = *sampleProb
	opts.Config.OverheadTarget = *overhead
	if err := opts.Config.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "tsvd-run: %v\n", err)
		return 2
	}
	if *traceDir != "" {
		opts.Config.Trace = true
	}
	var tri *triage.Triage
	if *triageDir != "" {
		// Triage needs the drained events for opportunity accounting and
		// explanation slices, so -triage implies tracing even without -trace.
		opts.Config.Trace = true
		tri = triage.New()
		opts.Triage = tri
		opts.TriageProvenance = triage.Provenance{Source: "tsvd-run"}
	}
	if *verbose {
		// Live heartbeat on stderr while the suite runs; the harness emits a
		// final update on completion, so the last line always shows the full
		// module count.
		opts.Progress = func(u harness.ProgressUpdate) {
			fmt.Fprintf(os.Stderr,
				"tsvd-run: run %d/%d  modules %d/%d  bugs %d  delays %d  elapsed %s\n",
				u.Run, u.Runs, u.ModulesDone, u.ModulesTotal,
				u.BugsFound, u.DelaysInjected, u.Elapsed.Round(10*time.Millisecond))
		}
	}

	var storeTracer *trace.Tracer
	if *traceDir != "" && (*trapsFile != "" || *trapServer != "") {
		storeTracer = trace.New(1 << 12)
	}
	store := buildStore(*trapServer, *trapsFile, storeTracer)
	if store != nil {
		opts.Store = store
		defer store.Close()
	}

	out := harness.Run(suite, opts)

	var storeTotals trace.StoreTotals
	if store != nil {
		storeTotals = store.Totals()
	}
	if storeTracer != nil {
		// The store's fetch/publish/fallback events join the detector
		// traces as their own pseudo-module, so tsvd-trace-check can
		// reconcile them against summary.store.
		tot := storeTracer.Totals()
		out.Traces = append(out.Traces, trace.ModuleTrace{
			Module: "trapstore", Events: storeTracer.Drain(),
			Emitted: tot.Emitted, Dropped: tot.Dropped,
		})
		out.TraceTotals.Emitted += tot.Emitted
		out.TraceTotals.Dropped += tot.Dropped
		out.TraceTotals.Buffered += tot.Buffered
	}

	var metrics *trace.Metrics
	if *traceDir != "" {
		var err error
		metrics, err = writeTrace(*traceDir, algo.String(), *modules, *runs, out, storeTotals)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsvd-run: %v\n", err)
			return 1
		}
	}
	if tri != nil {
		if err := triage.WriteDir(*triageDir, algo.String(), tri.Units(), tri.Clusters()); err != nil {
			fmt.Fprintf(os.Stderr, "tsvd-run: %v\n", err)
			return 1
		}
	}

	if out.StoreErr != nil {
		// The suite itself ran to completion; classify the store failure by
		// sentinel so CI can tell a corrupt file from a dead daemon.
		fmt.Fprintf(os.Stderr, "tsvd-run: trap store: %v\n", out.StoreErr)
		return harness.StoreExitCode(out.StoreErr)
	}
	if storeTotals.Fallbacks > 0 {
		// Degraded but healthy: the daemon was unreachable and the local
		// trap file absorbed everything. Worth a line, not a failure.
		fmt.Fprintf(os.Stderr,
			"tsvd-run: trap server unreachable %d time(s); continued on the local trap file\n",
			storeTotals.Fallbacks)
	}

	status := 0
	if len(out.UnknownPairs) > 0 {
		// Reports outside the suite's planted ground truth mean the detector
		// (or the workload bookkeeping) fabricated a pair — fail the run so
		// CI catches it.
		fmt.Fprintf(os.Stderr, "tsvd-run: %d reported pairs outside ground truth\n",
			len(out.UnknownPairs))
		status = 1
	}

	if *jsonOut {
		if err := out.Reports.WriteJSON(os.Stdout, algo.String(), *verbose); err != nil {
			fmt.Fprintf(os.Stderr, "tsvd-run: %v\n", err)
			return 1
		}
		return status
	}

	fmt.Printf("%s over %d modules (%d planted TSVs), %d run(s):\n",
		algo, *modules, suite.TotalPlantedBugs(), *runs)
	fmt.Printf("  unique bugs found: %d", out.TotalFound())
	for i, n := range out.NewBugsByRun {
		fmt.Printf("  run%d:%d", i+1, n)
	}
	fmt.Println()
	st := out.Stats
	fmt.Printf("  delays injected: %d (total %v)  near-misses: %d  pairs: +%d -hb:%d -decay:%d\n",
		st.DelaysInjected, st.TotalDelay, st.NearMisses,
		st.PairsAdded, st.PairsPrunedHB, st.PairsPrunedDecay)
	fmt.Printf("  instrumented calls: %d  locations: %d (%d seen concurrent)\n",
		st.OnCalls, st.LocationsSeen, st.LocationsSeenConcurrent)
	if st.NearMissGaps.Total() > 0 {
		fmt.Printf("  near-miss gap histogram: %s\n", st.NearMissGaps)
	}
	if metrics != nil {
		report.TraceSummary(os.Stdout, metrics, 15)
		fmt.Printf("  trace written to %s\n", *traceDir)
	}
	if tri != nil {
		fmt.Printf("  triage: %d cluster(s) from %d firing(s), written to %s\n",
			len(tri.Clusters()), tri.FiringsFolded(), *triageDir)
	}
	if *verbose {
		for _, bug := range out.Reports.Bugs() {
			fmt.Println()
			fmt.Print(bug.First.String())
			fmt.Printf("  occurrences: %d, distinct stack pairs: %d\n",
				bug.Occurrences, bug.StackPairs)
		}
	}
	return status
}

// buildStore assembles the run's trap store from the two flags: the local
// trap file, the fleet daemon, or — when both are given — the daemon with
// graceful degradation to the file. Returns nil when neither flag is set.
func buildStore(serverURL, filePath string, tracer *trace.Tracer) trapstore.TrapStore {
	switch {
	case serverURL != "" && filePath != "":
		return trapstore.NewFallback(
			trapstore.NewHTTPStore(serverURL, trapstore.HTTPConfig{Tracer: tracer}),
			trapstore.NewFileStore(filePath, tracer),
			tracer)
	case serverURL != "":
		return trapstore.NewHTTPStore(serverURL, trapstore.HTTPConfig{Tracer: tracer})
	case filePath != "":
		return trapstore.NewFileStore(filePath, tracer)
	default:
		return nil
	}
}

// writeTrace drains the run's event traces into dir: events.jsonl (one event
// per line, all module runs concatenated), metrics.json (the per-location
// aggregate) and summary.json (producer-side accounting for tsvd-trace-check).
func writeTrace(dir, tool string, modules, runs int, out *harness.Outcome,
	storeTotals trace.StoreTotals) (*trace.Metrics, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace dir: %w", err)
	}

	events, err := os.Create(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		return nil, err
	}
	var drained int64
	for _, mt := range out.Traces {
		if err := trace.WriteJSONL(events, mt, out.Sites); err != nil {
			events.Close()
			return nil, err
		}
		drained += int64(len(mt.Events))
	}
	if err := events.Close(); err != nil {
		return nil, err
	}

	metrics := trace.Aggregate(out.Traces)
	mf, err := os.Create(filepath.Join(dir, "metrics.json"))
	if err != nil {
		return nil, err
	}
	if err := metrics.WriteJSON(mf); err != nil {
		mf.Close()
		return nil, err
	}
	if err := mf.Close(); err != nil {
		return nil, err
	}

	sum := trace.Summary{
		Version: trace.SchemaVersion,
		Tool:    tool,
		Modules: modules,
		Runs:    runs,
		Emitted: out.TraceTotals.Emitted,
		Dropped: out.TraceTotals.Dropped,
		Drained: drained,
		ByKind:  trace.CountByKind(out.Traces),
		Stats:   out.TraceStatTotals(),
		Store:   storeTotals,
		Sites:   trace.SiteTable(out.Sites),
	}
	sf, err := os.Create(filepath.Join(dir, "summary.json"))
	if err != nil {
		return nil, err
	}
	if err := sum.WriteSummary(sf); err != nil {
		sf.Close()
		return nil, err
	}
	return metrics, sf.Close()
}
