// Command tsvd-run executes a generated workload suite (or the Table-4
// open-source scenarios) under a chosen detection technique and prints the
// bug reports and statistics — the command-line face of the integrated
// build-and-test deployment the paper describes (§2.1).
//
// Usage:
//
//	tsvd-run -modules 50 -runs 2 -algo tsvd
//	tsvd-run -scenarios
//	tsvd-run -modules 20 -algo tsvdhb -v
//	tsvd-run -modules 5 -trace /tmp/trace-out
//
// Exit status: 0 on success, 1 when the run itself fails or reports pairs
// outside the suite's ground truth (a detector soundness regression), 2 on
// usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/trapfile"
	"repro/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		algoName  = flag.String("algo", "tsvd", "technique: tsvd, tsvdhb, dynamicrandom, datacollider")
		modules   = flag.Int("modules", 50, "number of generated modules")
		runs      = flag.Int("runs", 2, "consecutive runs (trap set persists between runs)")
		seed      = flag.Int64("seed", 2019, "suite seed")
		scale     = flag.Float64("scale", 0.02, "time scale (1.0 = the paper's 100ms delays)")
		verbose   = flag.Bool("v", false, "print each bug's two-sided report")
		jsonOut   = flag.Bool("json", false, "emit the bug report as JSON on stdout")
		scenario  = flag.Bool("scenarios", false, "run the 9 open-source scenarios instead")
		trapsFile = flag.String("trapfile", "", "trap file to load before run 1 and save after the last run (§3.4.6)")
		traceDir  = flag.String("trace", "", "directory to write the detector event trace (events.jsonl, metrics.json, summary.json)")
	)
	flag.Parse()

	if *scenario {
		// The scenario table has its own fixed parameters; accepting the
		// suite flags and then ignoring them would silently run something
		// other than what the user asked for.
		var conflicting []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "scenarios":
			default:
				conflicting = append(conflicting, "-"+f.Name)
			}
		})
		if len(conflicting) > 0 {
			fmt.Fprintf(os.Stderr,
				"tsvd-run: -scenarios runs a fixed experiment table and cannot be combined with %v\n",
				conflicting)
			return 2
		}
		experiments.Table4(experiments.DefaultParams(), os.Stdout)
		return 0
	}

	algos := map[string]config.Algorithm{
		"tsvd":          config.AlgoTSVD,
		"tsvdhb":        config.AlgoTSVDHB,
		"dynamicrandom": config.AlgoDynamicRandom,
		"datacollider":  config.AlgoStaticRandom,
	}
	algo, ok := algos[*algoName]
	if !ok {
		fmt.Fprintf(os.Stderr, "tsvd-run: unknown algorithm %q\n", *algoName)
		return 2
	}

	suite := workload.GenerateSuite(*seed, *modules)
	opts := harness.Options{
		Config: config.Defaults(algo).Scaled(*scale),
		Runs:   *runs,
	}
	if *traceDir != "" {
		opts.Config.Trace = true
	}
	if *trapsFile != "" {
		pairs, err := trapfile.Load(*trapsFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsvd-run: %v\n", err)
			return 1
		}
		opts.InitialTraps = pairs
	}
	out := harness.Run(suite, opts)
	if *trapsFile != "" {
		if err := trapfile.Save(*trapsFile, algo.String(), out.FinalTraps); err != nil {
			fmt.Fprintf(os.Stderr, "tsvd-run: %v\n", err)
			return 1
		}
	}
	var metrics *trace.Metrics
	if *traceDir != "" {
		var err error
		metrics, err = writeTrace(*traceDir, algo.String(), *modules, *runs, out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsvd-run: %v\n", err)
			return 1
		}
	}

	status := 0
	if len(out.UnknownPairs) > 0 {
		// Reports outside the suite's planted ground truth mean the detector
		// (or the workload bookkeeping) fabricated a pair — fail the run so
		// CI catches it.
		fmt.Fprintf(os.Stderr, "tsvd-run: %d reported pairs outside ground truth\n",
			len(out.UnknownPairs))
		status = 1
	}

	if *jsonOut {
		if err := out.Reports.WriteJSON(os.Stdout, algo.String(), *verbose); err != nil {
			fmt.Fprintf(os.Stderr, "tsvd-run: %v\n", err)
			return 1
		}
		return status
	}

	fmt.Printf("%s over %d modules (%d planted TSVs), %d run(s):\n",
		algo, *modules, suite.TotalPlantedBugs(), *runs)
	fmt.Printf("  unique bugs found: %d", out.TotalFound())
	for i, n := range out.NewBugsByRun {
		fmt.Printf("  run%d:%d", i+1, n)
	}
	fmt.Println()
	st := out.Stats
	fmt.Printf("  delays injected: %d (total %v)  near-misses: %d  pairs: +%d -hb:%d -decay:%d\n",
		st.DelaysInjected, st.TotalDelay, st.NearMisses,
		st.PairsAdded, st.PairsPrunedHB, st.PairsPrunedDecay)
	fmt.Printf("  instrumented calls: %d  locations: %d (%d seen concurrent)\n",
		st.OnCalls, st.LocationsSeen, st.LocationsSeenConcurrent)
	if st.NearMissGaps.Total() > 0 {
		fmt.Printf("  near-miss gap histogram: %s\n", st.NearMissGaps)
	}
	if metrics != nil {
		report.TraceSummary(os.Stdout, metrics, 15)
		fmt.Printf("  trace written to %s\n", *traceDir)
	}
	if *verbose {
		for _, bug := range out.Reports.Bugs() {
			fmt.Println()
			fmt.Print(bug.First.String())
			fmt.Printf("  occurrences: %d, distinct stack pairs: %d\n",
				bug.Occurrences, bug.StackPairs)
		}
	}
	return status
}

// writeTrace drains the run's event traces into dir: events.jsonl (one event
// per line, all module runs concatenated), metrics.json (the per-location
// aggregate) and summary.json (producer-side accounting for tsvd-trace-check).
func writeTrace(dir, tool string, modules, runs int, out *harness.Outcome) (*trace.Metrics, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace dir: %w", err)
	}

	events, err := os.Create(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		return nil, err
	}
	var drained int64
	for _, mt := range out.Traces {
		if err := trace.WriteJSONL(events, mt); err != nil {
			events.Close()
			return nil, err
		}
		drained += int64(len(mt.Events))
	}
	if err := events.Close(); err != nil {
		return nil, err
	}

	metrics := trace.Aggregate(out.Traces)
	mf, err := os.Create(filepath.Join(dir, "metrics.json"))
	if err != nil {
		return nil, err
	}
	if err := metrics.WriteJSON(mf); err != nil {
		mf.Close()
		return nil, err
	}
	if err := mf.Close(); err != nil {
		return nil, err
	}

	sum := trace.Summary{
		Version: trace.SchemaVersion,
		Tool:    tool,
		Modules: modules,
		Runs:    runs,
		Emitted: out.TraceTotals.Emitted,
		Dropped: out.TraceTotals.Dropped,
		Drained: drained,
		ByKind:  trace.CountByKind(out.Traces),
		Stats:   out.TraceStatTotals(),
	}
	sf, err := os.Create(filepath.Join(dir, "summary.json"))
	if err != nil {
		return nil, err
	}
	if err := sum.WriteSummary(sf); err != nil {
		sf.Close()
		return nil, err
	}
	return metrics, sf.Close()
}
