// Command tsvd-run executes a generated workload suite (or the Table-4
// open-source scenarios) under a chosen detection technique and prints the
// bug reports and statistics — the command-line face of the integrated
// build-and-test deployment the paper describes (§2.1).
//
// Usage:
//
//	tsvd-run -modules 50 -runs 2 -algo tsvd
//	tsvd-run -scenarios
//	tsvd-run -modules 20 -algo tsvdhb -v
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/trapfile"
	"repro/internal/workload"
)

func main() {
	var (
		algoName  = flag.String("algo", "tsvd", "technique: tsvd, tsvdhb, dynamicrandom, datacollider")
		modules   = flag.Int("modules", 50, "number of generated modules")
		runs      = flag.Int("runs", 2, "consecutive runs (trap set persists between runs)")
		seed      = flag.Int64("seed", 2019, "suite seed")
		scale     = flag.Float64("scale", 0.02, "time scale (1.0 = the paper's 100ms delays)")
		verbose   = flag.Bool("v", false, "print each bug's two-sided report")
		jsonOut   = flag.Bool("json", false, "emit the bug report as JSON on stdout")
		scenario  = flag.Bool("scenarios", false, "run the 9 open-source scenarios instead")
		trapsFile = flag.String("trapfile", "", "trap file to load before run 1 and save after the last run (§3.4.6)")
	)
	flag.Parse()

	algos := map[string]config.Algorithm{
		"tsvd":          config.AlgoTSVD,
		"tsvdhb":        config.AlgoTSVDHB,
		"dynamicrandom": config.AlgoDynamicRandom,
		"datacollider":  config.AlgoStaticRandom,
	}
	algo, ok := algos[*algoName]
	if !ok {
		fmt.Fprintf(os.Stderr, "tsvd-run: unknown algorithm %q\n", *algoName)
		os.Exit(2)
	}

	if *scenario {
		experiments.Table4(experiments.DefaultParams(), os.Stdout)
		return
	}

	suite := workload.GenerateSuite(*seed, *modules)
	opts := harness.Options{
		Config: config.Defaults(algo).Scaled(*scale),
		Runs:   *runs,
	}
	if *trapsFile != "" {
		pairs, err := trapfile.Load(*trapsFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsvd-run: %v\n", err)
			os.Exit(1)
		}
		opts.InitialTraps = pairs
	}
	out := harness.Run(suite, opts)
	if *trapsFile != "" {
		if err := trapfile.Save(*trapsFile, algo.String(), out.FinalTraps); err != nil {
			fmt.Fprintf(os.Stderr, "tsvd-run: %v\n", err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		if err := out.Reports.WriteJSON(os.Stdout, algo.String(), *verbose); err != nil {
			fmt.Fprintf(os.Stderr, "tsvd-run: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("%s over %d modules (%d planted TSVs), %d run(s):\n",
		algo, *modules, suite.TotalPlantedBugs(), *runs)
	fmt.Printf("  unique bugs found: %d", out.TotalFound())
	for i, n := range out.NewBugsByRun {
		fmt.Printf("  run%d:%d", i+1, n)
	}
	fmt.Println()
	st := out.Stats
	fmt.Printf("  delays injected: %d (total %v)  near-misses: %d  pairs: +%d -hb:%d -decay:%d\n",
		st.DelaysInjected, st.TotalDelay, st.NearMisses,
		st.PairsAdded, st.PairsPrunedHB, st.PairsPrunedDecay)
	fmt.Printf("  instrumented calls: %d  locations: %d (%d seen concurrent)\n",
		st.OnCalls, st.LocationsSeen, st.LocationsSeenConcurrent)
	if st.NearMissGaps.Total() > 0 {
		fmt.Printf("  near-miss gap histogram: %s\n", st.NearMissGaps)
	}
	if len(out.UnknownPairs) > 0 {
		fmt.Printf("  WARNING: %d reported pairs outside ground truth\n", len(out.UnknownPairs))
	}
	if *verbose {
		for _, bug := range out.Reports.Bugs() {
			fmt.Println()
			fmt.Print(bug.First.String())
			fmt.Printf("  occurrences: %d, distinct stack pairs: %d\n",
				bug.Occurrences, bug.StackPairs)
		}
	}
}
