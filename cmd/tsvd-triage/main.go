// Command tsvd-triage folds one or many trace directories (or a fleet
// daemon's merged snapshot) into a deduplicated, ranked, explained bug
// report: bugs.json and bugs.md, one cluster per distinct TSV
// (docs/OBSERVABILITY.md, "Triage").
//
// Usage:
//
//	tsvd-triage -out /tmp/bugs /tmp/shard1-trace /tmp/shard2-trace ...
//	tsvd-triage -out /tmp/bugs -server http://127.0.0.1:8321
//
// Each directory argument must contain the events.jsonl and summary.json a
// `tsvd-run -trace` invocation wrote (schema v5). Every directory is one
// triage unit: firings come from its trap_sprung events, identities resolve
// through its summary site table, and the same bug appearing in N
// directories folds into one cluster with N-fold provenance — this is how a
// K-shard fleet's per-shard traces become one report.
//
// With -server the report is instead derived from the daemon's merged trap
// snapshot (the same data GET /v1/bugs serves): one cluster per dangerous
// pair, with no firing counts — the daemon only ever sees pairs.
//
// Exit status: 0 on success, 1 on unreadable or invalid input, 2 on usage
// errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/trace"
	"repro/internal/trapstore"
	"repro/internal/triage"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		outDir = flag.String("out", "", "directory to write bugs.json and bugs.md (default: first input dir)")
		server = flag.String("server", "", "tsvd-trapd base URL: triage the daemon's merged snapshot instead of trace dirs")
	)
	flag.Parse()
	dirs := flag.Args()

	if *server != "" && len(dirs) > 0 {
		fmt.Fprintln(os.Stderr, "tsvd-triage: -server and trace directories are mutually exclusive")
		return 2
	}
	if *server == "" && len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "tsvd-triage: need at least one trace directory (or -server)")
		return 2
	}

	if *server != "" {
		store := trapstore.NewHTTPStore(*server, trapstore.HTTPConfig{})
		defer store.Close()
		f, err := store.Fetch()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsvd-triage: fetch %s: %v\n", *server, err)
			return 1
		}
		if *outDir == "" {
			fmt.Fprintln(os.Stderr, "tsvd-triage: -server requires -out")
			return 2
		}
		clusters := triage.FromTrapFile(f)
		if err := triage.WriteDir(*outDir, f.Tool, 0, clusters); err != nil {
			fmt.Fprintf(os.Stderr, "tsvd-triage: %v\n", err)
			return 1
		}
		fmt.Printf("tsvd-triage: %d cluster(s) from the daemon snapshot (%d pairs), written to %s\n",
			len(clusters), len(f.Pairs), *outDir)
		return 0
	}

	tri := triage.New()
	tool := ""
	for _, dir := range dirs {
		t, err := ingestDir(tri, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsvd-triage: %s: %v\n", dir, err)
			return 1
		}
		if tool == "" {
			tool = t
		}
	}
	if tool == "" {
		tool = "tsvd"
	}
	dest := *outDir
	if dest == "" {
		dest = dirs[0]
	}
	clusters := tri.Clusters()
	if err := triage.WriteDir(dest, tool, tri.Units(), clusters); err != nil {
		fmt.Fprintf(os.Stderr, "tsvd-triage: %v\n", err)
		return 1
	}
	fmt.Printf("tsvd-triage: %d cluster(s) from %d firing(s) across %d dir(s), written to %s\n",
		len(clusters), tri.FiringsFolded(), len(dirs), dest)
	return 0
}

// ingestDir folds one trace directory into tri as a single unit and returns
// the producing tool's name from its summary.
func ingestDir(tri *triage.Triage, dir string) (string, error) {
	sf, err := os.Open(filepath.Join(dir, "summary.json"))
	if err != nil {
		return "", err
	}
	sum, err := trace.ReadSummary(sf)
	sf.Close()
	if err != nil {
		return "", err
	}

	ef, err := os.Open(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		return "", err
	}
	jes, err := trace.ReadJSONL(ef)
	ef.Close()
	if err != nil {
		return "", err
	}

	tri.AddTrace(trace.ModuleTracesOf(jes), sum.Sites, triage.Provenance{Source: dir})
	return sum.Tool, nil
}
