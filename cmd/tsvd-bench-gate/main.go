// Command tsvd-bench-gate is the OnCall fast-path performance gate: it runs
// the gated microbenchmark (BenchmarkOnCallUncontended/TSVD by default)
// several times and fails when the best observed ns/op exceeds the threshold
// committed in bench_gate.json.
//
// The minimum across runs is the gate's estimator on purpose: the benchmark
// VM's run-to-run noise is one-sided (preemption and frequency excursions
// only ever make a run slower), so the minimum tracks the code's actual cost
// while the mean tracks the machine's mood. A structural regression — a new
// lock, map probe, allocation, or string materialization on the hot path —
// raises the minimum too and is exactly what the gate exists to catch.
//
// Exit status: 0 when the gate passes, 1 when it fails, 2 on configuration
// or execution errors. `make bench-gate` runs it from the repository root;
// it is part of `make check`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// gateConfig is the committed threshold file (bench_gate.json).
type gateConfig struct {
	// Benchmark is the full sub-benchmark name to gate.
	Benchmark string `json:"benchmark"`
	// MaxNsPerOp fails the gate when the best run exceeds it.
	MaxNsPerOp float64 `json:"max_ns_per_op"`
	// Runs is how many -count repetitions feed the minimum.
	Runs int `json:"runs"`
	// Benchtime is the per-run -benchtime value.
	Benchtime string `json:"benchtime"`
	// Note documents the threshold's provenance; the gate ignores it.
	Note string `json:"note"`
}

func main() {
	cfgPath := flag.String("config", "bench_gate.json", "threshold file")
	goBin := flag.String("go", "go", "go tool to invoke")
	flag.Parse()

	data, err := os.ReadFile(*cfgPath)
	if err != nil {
		fail(2, "read config: %v", err)
	}
	var cfg gateConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fail(2, "parse %s: %v", *cfgPath, err)
	}
	if cfg.Benchmark == "" || cfg.MaxNsPerOp <= 0 {
		fail(2, "%s: benchmark and max_ns_per_op are required", *cfgPath)
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 3
	}
	if cfg.Benchtime == "" {
		cfg.Benchtime = "300ms"
	}

	// Anchor every slash segment: go's -bench matching is per-segment
	// substring, so a bare "TSVD" would also run "TSVDHB".
	segs := strings.Split(cfg.Benchmark, "/")
	for i, s := range segs {
		segs[i] = "^" + regexp.QuoteMeta(s) + "$"
	}
	pattern := strings.Join(segs, "/")

	cmd := exec.Command(*goBin, "test", "-run", "^$",
		"-bench", pattern,
		"-benchtime", cfg.Benchtime,
		"-count", strconv.Itoa(cfg.Runs),
		".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		fail(2, "benchmark run failed: %v\n%s", err, out)
	}

	ns, runs, err := minNsPerOp(string(out), cfg.Benchmark)
	if err != nil {
		fail(2, "%v\n%s", err, out)
	}
	if ns > cfg.MaxNsPerOp {
		fail(1, "%s: best of %d runs = %.2f ns/op, gate = %.2f ns/op — the fast path regressed",
			cfg.Benchmark, runs, ns, cfg.MaxNsPerOp)
	}
	fmt.Printf("tsvd-bench-gate: ok — %s best of %d runs = %.2f ns/op (gate %.2f)\n",
		cfg.Benchmark, runs, ns, cfg.MaxNsPerOp)
}

// benchLine matches one `go test -bench` result line:
// "BenchmarkName-8   1234567   41.2 ns/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// minNsPerOp extracts the minimum ns/op across the result lines for the
// named benchmark and the number of lines observed.
func minNsPerOp(out, name string) (float64, int, error) {
	best := 0.0
	runs := 0
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil || m[1] != name {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return 0, 0, fmt.Errorf("parse ns/op in %q: %v", line, err)
		}
		runs++
		if runs == 1 || v < best {
			best = v
		}
	}
	if runs == 0 {
		return 0, 0, fmt.Errorf("no result lines for %s", name)
	}
	return best, runs, nil
}

func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tsvd-bench-gate: "+format+"\n", args...)
	os.Exit(code)
}
