// Command tsvd-bench-gate is the hot-path performance gate: for every gate
// committed in bench_gate.json it runs the gated microbenchmark in its own
// package several times and fails when the best observed ns/op exceeds the
// gate's threshold. Two paths are gated today: the detector OnCall fast path
// (BenchmarkOnCallUncontended/TSVD in the root package) and the trace
// ring-buffer Emit path (BenchmarkEmit in internal/trace) that the triage
// explanation slices depend on.
//
// The minimum across runs is the gate's estimator on purpose: the benchmark
// VM's run-to-run noise is one-sided (preemption and frequency excursions
// only ever make a run slower), so the minimum tracks the code's actual cost
// while the mean tracks the machine's mood. A structural regression — a new
// lock, map probe, allocation, or string materialization on the hot path —
// raises the minimum too and is exactly what the gate exists to catch.
//
// Exit status: 0 when every gate passes, 1 when any fails, 2 on
// configuration or execution errors. `make bench-gate` runs it from the
// repository root; it is part of `make check`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// gateConfig is the committed threshold file (bench_gate.json).
type gateConfig struct {
	// Gates lists every benchmark threshold to enforce.
	Gates []gate `json:"gates"`
}

// gate is one benchmark threshold.
type gate struct {
	// Benchmark is the full sub-benchmark name to gate.
	Benchmark string `json:"benchmark"`
	// Package is the package directory the benchmark lives in ("." for
	// the repository root).
	Package string `json:"package"`
	// MaxNsPerOp fails the gate when the best run exceeds it.
	MaxNsPerOp float64 `json:"max_ns_per_op"`
	// Runs is how many -count repetitions feed the minimum.
	Runs int `json:"runs"`
	// Benchtime is the per-run -benchtime value.
	Benchtime string `json:"benchtime"`
	// Note documents the threshold's provenance; the gate ignores it.
	Note string `json:"note"`
}

func main() {
	cfgPath := flag.String("config", "bench_gate.json", "threshold file")
	goBin := flag.String("go", "go", "go tool to invoke")
	flag.Parse()

	data, err := os.ReadFile(*cfgPath)
	if err != nil {
		fail(2, "read config: %v", err)
	}
	var cfg gateConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fail(2, "parse %s: %v", *cfgPath, err)
	}
	if len(cfg.Gates) == 0 {
		fail(2, "%s: at least one gate is required", *cfgPath)
	}

	failed := false
	for _, g := range cfg.Gates {
		if g.Benchmark == "" || g.MaxNsPerOp <= 0 {
			fail(2, "%s: benchmark and max_ns_per_op are required on every gate", *cfgPath)
		}
		if g.Package == "" {
			g.Package = "."
		}
		if g.Runs <= 0 {
			g.Runs = 3
		}
		if g.Benchtime == "" {
			g.Benchtime = "300ms"
		}

		ns, runs, err := runGate(*goBin, g)
		if err != nil {
			fail(2, "%s: %v", g.Benchmark, err)
		}
		if ns > g.MaxNsPerOp {
			fmt.Fprintf(os.Stderr,
				"tsvd-bench-gate: %s (%s): best of %d runs = %.2f ns/op, gate = %.2f ns/op — the fast path regressed\n",
				g.Benchmark, g.Package, runs, ns, g.MaxNsPerOp)
			failed = true
			continue
		}
		fmt.Printf("tsvd-bench-gate: ok — %s (%s) best of %d runs = %.2f ns/op (gate %.2f)\n",
			g.Benchmark, g.Package, runs, ns, g.MaxNsPerOp)
	}
	if failed {
		os.Exit(1)
	}
}

// runGate executes one gate's benchmark in its package and returns the best
// ns/op and the number of runs observed.
func runGate(goBin string, g gate) (float64, int, error) {
	// Anchor every slash segment: go's -bench matching is per-segment
	// substring, so a bare "TSVD" would also run "TSVDHB".
	segs := strings.Split(g.Benchmark, "/")
	for i, s := range segs {
		segs[i] = "^" + regexp.QuoteMeta(s) + "$"
	}
	pattern := strings.Join(segs, "/")

	cmd := exec.Command(goBin, "test", "-run", "^$",
		"-bench", pattern,
		"-benchtime", g.Benchtime,
		"-count", strconv.Itoa(g.Runs),
		g.Package)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return 0, 0, fmt.Errorf("benchmark run failed: %v\n%s", err, out)
	}
	ns, runs, err := minNsPerOp(string(out), g.Benchmark)
	if err != nil {
		return 0, 0, fmt.Errorf("%v\n%s", err, out)
	}
	return ns, runs, nil
}

// benchLine matches one `go test -bench` result line:
// "BenchmarkName-8   1234567   41.2 ns/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// minNsPerOp extracts the minimum ns/op across the result lines for the
// named benchmark and the number of lines observed.
func minNsPerOp(out, name string) (float64, int, error) {
	best := 0.0
	runs := 0
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil || m[1] != name {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return 0, 0, fmt.Errorf("parse ns/op in %q: %v", line, err)
		}
		runs++
		if runs == 1 || v < best {
			best = v
		}
	}
	if runs == 0 {
		return 0, 0, fmt.Errorf("no result lines for %s", name)
	}
	return best, runs, nil
}

func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tsvd-bench-gate: "+format+"\n", args...)
	os.Exit(code)
}
