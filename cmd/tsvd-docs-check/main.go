// Command tsvd-docs-check keeps the operator docs suite honest. It walks
// every markdown file at the repository root and under docs/ and verifies,
// against the Go source of this repository, that:
//
//   - every intra-repository markdown link resolves: the target file exists,
//     and when the link carries a #fragment, the target file has a heading
//     whose GitHub-style anchor slug matches;
//   - every `Config.X` field the docs mention exists on config.Config, so
//     renamed or removed knobs cannot survive in prose;
//   - every `tsvd.X` symbol the docs mention is an exported package-level
//     declaration of the public tsvd package;
//   - no doc references the string fields the site-id redesign removed from
//     core.Access (`Access.Class` / `Access.Method`); migration notes must
//     name them through the compatibility shim (`AccessLegacy.Class`),
//     which still has them;
//   - no non-test Go file outside internal/core references the deprecated
//     legacy interning shims (`core.OnCallLegacy` / `core.AccessLegacy`):
//     production callers must use the interned fast path (OnCall with a
//     site-registry SiteID); the shims exist only for migration tests and
//     the equivalence suite that pins their behaviour;
//   - every exported identifier in the tsvd root package, internal/config,
//     internal/sampler, internal/chaos, and internal/triage carries a doc
//     comment (the godoc audit), including methods on exported types,
//     exported struct fields, and exported interface methods.
//
// Exit status: 0 when everything reconciles, 1 with one line per finding
// otherwise, 2 on usage or I/O errors. `make docs-check` runs it from the
// repository root; it is part of `make check`.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()

	var findings []string
	report := func(format string, args ...any) {
		findings = append(findings, fmt.Sprintf(format, args...))
	}

	docs, err := docFiles(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsvd-docs-check: %v\n", err)
		os.Exit(2)
	}

	configFields, err := structFields(filepath.Join(*root, "internal", "config"), "Config")
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsvd-docs-check: internal/config: %v\n", err)
		os.Exit(2)
	}
	publicSymbols, err := packageSymbols(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsvd-docs-check: root package: %v\n", err)
		os.Exit(2)
	}

	links, fields, symbols := 0, 0, 0
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsvd-docs-check: %v\n", err)
			os.Exit(2)
		}
		text := string(data)
		rel := relTo(*root, doc)

		for _, link := range markdownLinks(text) {
			links++
			checkLink(*root, doc, link, report)
		}
		for _, f := range referenced(text, configRef) {
			fields++
			if !configFields[f] {
				report("%s: Config.%s is not a field of config.Config", rel, f)
			}
		}
		for _, s := range referenced(text, tsvdRef) {
			symbols++
			if !publicSymbols[s] {
				report("%s: tsvd.%s is not an exported symbol of the tsvd package", rel, s)
			}
		}
		for _, f := range referenced(text, removedAccessRef) {
			report("%s: Access.%s was removed by the site-id redesign — metadata lives in the site registry; refer to the shim field AccessLegacy.%s in migration prose", rel, f, f)
		}
	}

	banned, scanned, err := banLegacyCalls(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsvd-docs-check: legacy-shim scan: %v\n", err)
		os.Exit(2)
	}
	for _, b := range banned {
		report("%s", b)
	}

	audited := 0
	for _, dir := range []string{".", "internal/config", "internal/sampler", "internal/chaos", "internal/triage"} {
		n, missing, err := auditGodoc(filepath.Join(*root, dir))
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsvd-docs-check: %s: %v\n", dir, err)
			os.Exit(2)
		}
		audited += n
		for _, m := range missing {
			report("%s: %s has no doc comment", dir, m)
		}
	}

	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "tsvd-docs-check: %s\n", f)
		}
		fmt.Fprintf(os.Stderr, "tsvd-docs-check: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Printf("tsvd-docs-check: ok — %d files, %d links, %d Config fields, %d tsvd symbols, %d exported identifiers documented, %d Go files clear of legacy shims\n",
		len(docs), links, fields, symbols, audited, scanned)
}

// legacyShims are the deprecated string-keyed interning entry points that the
// site-id redesign replaced. They live on in internal/core for migration
// tests and the legacy-equivalence suite, but nothing else may call them.
var legacyShims = map[string]bool{"OnCallLegacy": true, "AccessLegacy": true}

// banLegacyCalls walks every non-test Go file in the repository outside
// internal/core (the shims' defining package) and reports any identifier
// reference to a legacy shim. Matching is on AST identifiers, so comments and
// string literals — including this file's own prose — never trip it. Returns
// the findings and the number of files scanned.
func banLegacyCalls(root string) ([]string, int, error) {
	var findings []string
	scanned := 0
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || relTo(root, path) == filepath.Join("internal", "core") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		scanned++
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || !legacyShims[id.Name] {
				return true
			}
			pos := fset.Position(id.Pos())
			findings = append(findings, fmt.Sprintf(
				"%s:%d: deprecated legacy interning shim %s referenced outside internal/core — use the interned OnCall fast path",
				relTo(root, pos.Filename), pos.Line, id.Name))
			return true
		})
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return findings, scanned, nil
}

// docFiles returns every markdown file at the repository root and under
// docs/, sorted for stable output.
func docFiles(root string) ([]string, error) {
	var files []string
	for _, glob := range []string{"*.md", filepath.Join("docs", "*.md")} {
		matches, err := filepath.Glob(filepath.Join(root, glob))
		if err != nil {
			return nil, err
		}
		files = append(files, matches...)
	}
	sort.Strings(files)
	return files, nil
}

func relTo(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil {
		return rel
	}
	return path
}

// link is one markdown link occurrence: the raw target and the file it
// appears in.
type link struct {
	target string
}

var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// markdownLinks extracts inline link targets. Bare URLs and images share the
// same ](...) shape, which is exactly what needs checking.
func markdownLinks(text string) []link {
	var out []link
	for _, m := range linkRe.FindAllStringSubmatch(text, -1) {
		out = append(out, link{target: m[1]})
	}
	return out
}

// checkLink verifies one link target from file `from`. External schemes are
// skipped: this tool owns intra-repository consistency only.
func checkLink(root, from string, l link, report func(string, ...any)) {
	t := l.target
	if strings.Contains(t, "://") || strings.HasPrefix(t, "mailto:") {
		return
	}
	rel := relTo(root, from)
	path, frag, _ := strings.Cut(t, "#")
	target := from
	if path != "" {
		target = filepath.Join(filepath.Dir(from), path)
		info, err := os.Stat(target)
		if err != nil {
			report("%s: link target %q does not exist", rel, t)
			return
		}
		if info.IsDir() || frag == "" {
			return
		}
	}
	if frag == "" {
		return
	}
	if !strings.HasSuffix(target, ".md") {
		return // anchors into non-markdown files are browser-defined
	}
	data, err := os.ReadFile(target)
	if err != nil {
		report("%s: link target %q unreadable: %v", rel, t, err)
		return
	}
	if !headingAnchors(string(data))[frag] {
		report("%s: link %q: no heading in %s has anchor #%s",
			rel, t, relTo(root, target), frag)
	}
}

// headingAnchors returns the set of GitHub-style anchor slugs for every
// heading in a markdown document, including -1/-2 suffixes for duplicates.
func headingAnchors(text string) map[string]bool {
	anchors := map[string]bool{}
	counts := map[string]int{}
	inFence := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		title := strings.TrimLeft(line, "#")
		if title == line || !strings.HasPrefix(title, " ") && title != "" {
			continue // shell comments etc. need "# " to be a heading
		}
		slug := slugify(strings.TrimSpace(title))
		if n := counts[slug]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			anchors[slug] = true
		}
		counts[slug]++
	}
	return anchors
}

// slugify mirrors GitHub's heading-to-anchor rule: lowercase, spaces become
// hyphens, and everything that is not a letter, digit, hyphen, or underscore
// is dropped (backticks and punctuation vanish).
func slugify(title string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(title) {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') || r > 127:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// configRef and tsvdRef match symbol references in prose with a left
// boundary, so HTTPConfig.Metrics does not read as Config.Metrics.
var (
	configRef = regexp.MustCompile(`(?:^|[^A-Za-z0-9_.])Config\.([A-Z][A-Za-z0-9_]*)`)
	tsvdRef   = regexp.MustCompile(`(?:^|[^A-Za-z0-9_.])tsvd\.([A-Z][A-Za-z0-9_]*)`)
	// removedAccessRef matches references to the Access string fields the
	// site-id redesign removed. The left boundary keeps AccessLegacy.Class —
	// the sanctioned way migration notes name the old fields — from matching.
	removedAccessRef = regexp.MustCompile(`(?:^|[^A-Za-z0-9_.])Access\.(Class|Method)\b`)
)

func referenced(text string, re *regexp.Regexp) []string {
	var out []string
	for _, m := range re.FindAllStringSubmatch(text, -1) {
		out = append(out, m[1])
	}
	return out
}

// parseDir parses every non-test Go file of the package in dir.
func parseDir(dir string) (*token.FileSet, []*ast.File, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			files = append(files, f)
		}
	}
	return fset, files, nil
}

// structFields returns the exported field names of the named struct type.
func structFields(dir, typeName string) (map[string]bool, error) {
	_, files, err := parseDir(dir)
	if err != nil {
		return nil, err
	}
	fields := map[string]bool{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != typeName {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if name.IsExported() {
						fields[name.Name] = true
					}
				}
			}
			return false
		})
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("struct %s not found in %s", typeName, dir)
	}
	return fields, nil
}

// packageSymbols returns every exported package-level name (types, funcs,
// consts, vars) of the package in dir.
func packageSymbols(dir string) (map[string]bool, error) {
	_, files, err := parseDir(dir)
	if err != nil {
		return nil, err
	}
	syms := map[string]bool{}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil && d.Name.IsExported() {
					syms[d.Name.Name] = true
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							syms[s.Name.Name] = true
						}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							if name.IsExported() {
								syms[name.Name] = true
							}
						}
					}
				}
			}
		}
	}
	return syms, nil
}

// auditGodoc returns the number of exported identifiers inspected in the
// package at dir and the list of those with no doc comment. A group doc on a
// const/var/type block covers its specs; a trailing line comment counts for
// single-line specs and struct fields, matching godoc rendering.
func auditGodoc(dir string) (int, []string, error) {
	_, files, err := parseDir(dir)
	if err != nil {
		return 0, nil, err
	}
	n := 0
	var missing []string
	note := func(documented bool, name string) {
		n++
		if !documented {
			missing = append(missing, name)
		}
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !receiverExported(d) {
					continue
				}
				note(d.Doc != nil, funcName(d))
			case *ast.GenDecl:
				groupDoc := d.Doc != nil
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						note(groupDoc || s.Doc != nil || s.Comment != nil, "type "+s.Name.Name)
						auditTypeMembers(s, note)
					case *ast.ValueSpec:
						for _, name := range s.Names {
							if !name.IsExported() {
								continue
							}
							note(groupDoc || s.Doc != nil || s.Comment != nil, name.Name)
						}
					}
				}
			}
		}
	}
	sort.Strings(missing)
	return n, missing, nil
}

// auditTypeMembers audits exported struct fields and interface methods of an
// exported type.
func auditTypeMembers(s *ast.TypeSpec, note func(bool, string)) {
	var fields *ast.FieldList
	kind := ""
	switch t := s.Type.(type) {
	case *ast.StructType:
		fields, kind = t.Fields, "field"
	case *ast.InterfaceType:
		fields, kind = t.Methods, "method"
	default:
		return
	}
	for _, field := range fields.List {
		documented := field.Doc != nil || field.Comment != nil
		for _, name := range field.Names {
			if name.IsExported() {
				note(documented, fmt.Sprintf("%s %s.%s", kind, s.Name.Name, name.Name))
			}
		}
	}
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types are not part of the package's godoc surface).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil {
		return true
	}
	for _, field := range d.Recv.List {
		t := field.Type
		for {
			switch tt := t.(type) {
			case *ast.StarExpr:
				t = tt.X
				continue
			case *ast.IndexExpr: // generic receiver T[P]
				t = tt.X
				continue
			case *ast.IndexListExpr:
				t = tt.X
				continue
			case *ast.Ident:
				return tt.IsExported()
			default:
				return true
			}
		}
	}
	return true
}

// funcName renders a function or method name for findings.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil {
		return "func " + d.Name.Name
	}
	t := d.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	recv := "?"
	switch tt := t.(type) {
	case *ast.Ident:
		recv = tt.Name
	case *ast.IndexExpr:
		if id, ok := tt.X.(*ast.Ident); ok {
			recv = id.Name
		}
	case *ast.IndexListExpr:
		if id, ok := tt.X.(*ast.Ident); ok {
			recv = id.Name
		}
	}
	return fmt.Sprintf("method %s.%s", recv, d.Name.Name)
}
