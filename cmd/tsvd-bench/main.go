// Command tsvd-bench regenerates the paper's evaluation tables and figures
// (§5) over the synthetic workload suites.
//
// Usage:
//
//	tsvd-bench -exp all
//	tsvd-bench -exp table2 -small 200
//	tsvd-bench -exp fig9g -scale 0.05
//
// Experiments: table1 table2 table3 table4 fig8 fig9a..fig9h resource
// asyncinline overlap fleet sampling all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (table1..4, fig8, fig9a..h, resource, asyncinline, overlap, fleet, sampling, all)")
		scale    = flag.Float64("scale", 0, "time scale override (default from experiment params)")
		seed     = flag.Int64("seed", 0, "suite seed override")
		small    = flag.Int("small", 0, "Small-suite module count override")
		large    = flag.Int("large", 0, "Large-suite module count override")
		fig8runs = flag.Int("fig8runs", 0, "Figure 8 run count override")
		fig8mods = flag.Int("fig8mods", 0, "Figure 8 module count override")
		parallel = flag.Int("parallel", 0, "modules in flight override")
	)
	flag.Parse()

	p := experiments.DefaultParams()
	if *scale > 0 {
		p.Scale = *scale
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *small > 0 {
		p.SmallModules = *small
	}
	if *large > 0 {
		p.LargeModules = *large
	}
	if *fig8runs > 0 {
		p.Fig8Runs = *fig8runs
	}
	if *fig8mods > 0 {
		p.Fig8Modules = *fig8mods
	}
	if *parallel > 0 {
		p.Parallelism = *parallel
	}

	runners := map[string]func(experiments.Params, io.Writer){
		"table1":      experiments.Table1,
		"table2":      experiments.Table2,
		"table3":      experiments.Table3,
		"table4":      experiments.Table4,
		"fig8":        experiments.Figure8,
		"fig9a":       experiments.Figure9a,
		"fig9b":       experiments.Figure9b,
		"fig9c":       experiments.Figure9c,
		"fig9d":       experiments.Figure9d,
		"fig9e":       experiments.Figure9e,
		"fig9f":       experiments.Figure9f,
		"fig9g":       experiments.Figure9g,
		"fig9h":       experiments.Figure9h,
		"resource":    experiments.ResourceUsage,
		"asyncinline": experiments.AsyncInlining,
		"overlap":     experiments.DelayOverlap,
		"fleet":       experiments.Fleet,
		"sampling":    experiments.Sampling,
	}
	order := []string{
		"table1", "table2", "table3", "table4", "fig8",
		"fig9a", "fig9b", "fig9c", "fig9d", "fig9e", "fig9f", "fig9g", "fig9h",
		"resource", "asyncinline", "overlap", "fleet", "sampling",
	}

	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = order
	}
	for i, name := range names {
		run, ok := runners[strings.TrimSpace(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "tsvd-bench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		if i > 0 {
			fmt.Println()
		}
		run(p, os.Stdout)
	}
}
