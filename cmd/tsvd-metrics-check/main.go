// Command tsvd-metrics-check is the live-metrics reconciliation gate
// (`make metrics-smoke`): it runs a deterministic suite with every metrics
// surface enabled — detector metrics and a store client on one registry, an
// in-process tsvd-trapd handler with its own registry — then reconciles
// every exported counter exactly against the ground truth it has on hand:
// the harness Outcome's summed detector stats, the store operations the
// harness protocol implies, and the daemon's own wire acks. Off-by-one
// anywhere fails the gate; the exposition layer is only trustworthy if it
// is exact.
//
// Usage:
//
//	tsvd-metrics-check [-modules 5] [-runs 2] [-seed 2019] [-scale 0.02]
//
// Exit status: 0 when every counter reconciles, 1 otherwise, 2 on usage
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	tsvd "repro"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/trapfile"
	"repro/internal/trapstore"
	"repro/internal/workload"
)

func main() {
	os.Exit(run())
}

// checker accumulates mismatches so one run reports every broken series,
// not just the first.
type checker struct{ failures int }

func (c *checker) failf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tsvd-metrics-check: "+format+"\n", args...)
	c.failures++
}

// eq asserts a scraped series value exactly. The exposition format
// round-trips float64 exactly and every counter is integral or summed from
// the same int64s the ground truth is, so there is no tolerance: a
// mismatch, however small, means a counting path diverged.
func (c *checker) eq(where, series string, got map[string]float64, want float64) {
	if got[series] != want {
		c.failf("%s: %s = %v, want %v", where, series, got[series], want)
	}
}

func run() int {
	var (
		modules = flag.Int("modules", 5, "generated modules in the check suite")
		runs    = flag.Int("runs", 2, "consecutive runs")
		seed    = flag.Int64("seed", 2019, "suite seed")
		scale   = flag.Float64("scale", 0.02, "time scale")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "tsvd-metrics-check: unexpected arguments %v\n", flag.Args())
		return 2
	}
	c := &checker{}

	// An in-process tsvd-trapd on a real TCP port, with its own registry —
	// the daemon and the shard must count independently for the
	// reconciliation to mean anything.
	daemonReg := metrics.NewRegistry()
	daemon := trapstore.NewMemory("TSVD", nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.failf("listen: %v", err)
		return 1
	}
	srv := &http.Server{Handler: trapstore.NewHandler(daemon, trapstore.HandlerOptions{Metrics: daemonReg})}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// The shard side: detector metrics and the HTTP store client share one
	// registry, as a real instrumented test process would wire them.
	clientReg := metrics.NewRegistry()
	store := trapstore.NewHTTPStore(base, trapstore.HTTPConfig{Metrics: clientReg})
	defer store.Close()

	suite := workload.GenerateSuite(*seed, *modules)
	opts := harness.Options{
		Config:      config.Defaults(config.AlgoTSVD).Scaled(*scale),
		Runs:        *runs,
		RunSeedBase: harness.Seed(1234),
		Store:       store,
		Metrics:     core.NewDetectorMetrics(clientReg),
	}
	// Tracing on: the tsvd_trace_* counters must reconcile against the same
	// accounting the trace summary sidecar carries.
	opts.Config.Trace = true
	out := harness.Run(suite, opts)
	if out.StoreErr != nil {
		c.failf("suite store error: %v", out.StoreErr)
		return 1
	}
	if out.Stats.OnCalls == 0 || out.Stats.PairsAdded == 0 {
		c.failf("suite exercised nothing: %+v", out.Stats)
		return 1
	}

	// A deterministic post-suite store epilogue: the sentinel publish is
	// guaranteed to grow the daemon's set, so the next fetch must carry new
	// pairs (a delta, now that the client resumes from its cursor) and the
	// one after it must be a 304 — exactly one not_modified, independent of
	// what the suite's own merges did to the generation counter.
	sentinel := trapfile.File{Version: trapfile.FormatVersion, Tool: "TSVD", Pairs: []trapfile.Pair{
		{A: "tsvd-metrics-check/sentinel@1", B: "tsvd-metrics-check/sentinel@2"},
	}}
	if err := store.Publish(sentinel); err != nil {
		c.failf("sentinel publish: %v", err)
		return 1
	}
	for i := 0; i < 2; i++ {
		if _, err := store.Fetch(); err != nil {
			c.failf("epilogue fetch %d: %v", i+1, err)
			return 1
		}
	}
	fetches := float64(*runs + 2)   // one per run + two epilogue fetches
	publishes := float64(*runs + 1) // one per run + the sentinel

	// --- Detector series vs the harness outcome, exactly ---
	got := clientReg.Values()
	st := out.Stats
	det := map[string]float64{
		"tsvd_detector_on_calls_total":                  float64(st.OnCalls),
		"tsvd_detector_delays_injected_total":           float64(st.DelaysInjected),
		"tsvd_detector_delay_seconds_total":             st.TotalDelay.Seconds(),
		"tsvd_detector_near_misses_total":               float64(st.NearMisses),
		"tsvd_detector_pairs_added_total":               float64(st.PairsAdded),
		"tsvd_detector_pairs_pruned_hb_total":           float64(st.PairsPrunedHB),
		"tsvd_detector_pairs_pruned_decay_total":        float64(st.PairsPrunedDecay),
		"tsvd_detector_violations_total":                float64(st.Violations),
		"tsvd_detector_locations_seen_total":            float64(st.LocationsSeen),
		"tsvd_detector_locations_seen_concurrent_total": float64(st.LocationsSeenConcurrent),
		"tsvd_detector_sequential_skips_total":          float64(st.SequentialSkips),
		// Sampler series: a full-mode suite must read all-zero (and the
		// probability gauge 1) — any other value means sampling state leaked
		// into a mode that should not have it.
		"tsvd_sampler_calls_sampled_out_total": float64(st.CallsSampledOut),
		"tsvd_sampler_delays_suppressed_total": float64(st.DelaysSuppressed),
		"tsvd_sampler_throttles_total":         float64(st.SamplerThrottles),
		"tsvd_sampler_probability":             1,
		// Histogram counts are co-located with their counters by contract.
		"tsvd_detector_near_miss_gap_seconds_count":    float64(st.NearMisses),
		"tsvd_detector_granted_delay_seconds_count":    float64(st.DelaysInjected),
		"tsvd_detector_trap_set_occupancy_pairs_count": float64(st.PairsAdded),
		"tsvd_detector_instances":                      float64(*runs * len(suite.Modules)),
		"tsvd_detector_parked_threads":                 0, // nothing runs anymore
	}
	// The trace-loss counters must mirror the summary sidecar a tsvd-run
	// -trace invocation would write from this same outcome: emitted equals
	// the sidecar's emitted, and dropped must be zero both ways (a drop
	// silently corrupts triage explanation slices, so it must be visible).
	sidecar := trace.Summary{
		Version: trace.SchemaVersion,
		Emitted: out.TraceTotals.Emitted,
		Dropped: out.TraceTotals.Dropped,
	}
	if sidecar.Emitted == 0 {
		c.failf("traced suite emitted no events; trace counters unexercised")
	}
	det["tsvd_trace_emitted_total"] = float64(sidecar.Emitted)
	det["tsvd_trace_dropped_total"] = float64(sidecar.Dropped)
	c.eq("trace sidecar", "tsvd_trace_dropped_total", got, 0)
	for series, want := range det {
		c.eq("detector", series, got, want)
	}

	// --- Store client series vs the harness protocol, exactly ---
	// The fetch sequence is full, then delta-resumed, then 304: the first
	// fetch has no cursor, the last finds nothing new, and every fetch in
	// between resumes from the client's generation cursor.
	cli := map[string]float64{
		`tsvd_store_ops_total{op="fetch"}`:                   fetches,
		`tsvd_store_ops_total{op="delta"}`:                   fetches - 2,
		`tsvd_store_ops_total{op="publish"}`:                 publishes,
		`tsvd_store_ops_total{op="not_modified"}`:            1,
		`tsvd_store_ops_total{op="retry"}`:                   0, // healthy daemon: a retry means phantom requests
		`tsvd_store_op_duration_seconds_count{op="fetch"}`:   fetches,
		`tsvd_store_op_duration_seconds_count{op="publish"}`: publishes,
	}
	for series, want := range cli {
		c.eq("store client", series, got, want)
	}

	// --- Daemon series vs the wire, exactly ---
	dm1, ctype, err := scrape(base + "/metrics")
	if err != nil {
		c.failf("daemon scrape: %v", err)
		return 1
	}
	if want := "text/plain; version=0.0.4; charset=utf-8"; ctype != want {
		c.failf("daemon /metrics Content-Type = %q, want %q", ctype, want)
	}
	var health struct {
		Status        string  `json:"status"`
		Generation    float64 `json:"generation"`
		Pairs         float64 `json:"pairs"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := fetchJSON(base+"/healthz", &health); err != nil {
		c.failf("healthz: %v", err)
		return 1
	}
	dm2, _, err := scrape(base + "/metrics")
	if err != nil {
		c.failf("daemon rescrape: %v", err)
		return 1
	}

	// The daemon aggregated exactly what one client published: merges are
	// additive, so the gained-pairs counter must equal the final set size,
	// which in turn must match the healthz body and the client's view.
	finalPairs := float64(daemon.PairCount())
	dmn := map[string]float64{
		"tsvd_trapd_pairs":                                        finalPairs,
		"tsvd_trapd_merged_pairs_total":                           finalPairs,
		"tsvd_trapd_merges_total":                                 publishes,
		`tsvd_trapd_requests_total{endpoint="traps_get"}`:         fetches,
		`tsvd_trapd_requests_total{endpoint="traps_post"}`:        publishes,
		`tsvd_trapd_requests_total{endpoint="healthz"}`:           0, // healthz hit after this scrape
		`tsvd_trapd_requests_total{endpoint="metrics"}`:           1, // entry-increment: the scrape reports itself
		`tsvd_trapd_request_seconds_count{endpoint="traps_get"}`:  fetches,
		`tsvd_trapd_request_seconds_count{endpoint="traps_post"}`: publishes,
		// The daemon's own account of how it answered each snapshot GET must
		// mirror the client's full/delta/304 split exactly.
		`tsvd_trapd_snapshot_responses_total{kind="full"}`:         1,
		`tsvd_trapd_snapshot_responses_total{kind="delta"}`:        fetches - 2,
		`tsvd_trapd_snapshot_responses_total{kind="not_modified"}`: 1,
	}
	for series, want := range dmn {
		c.eq("daemon", series, dm1, want)
	}
	c.eq("daemon (2nd scrape)", `tsvd_trapd_requests_total{endpoint="metrics"}`, dm2, 2)
	c.eq("daemon (2nd scrape)", `tsvd_trapd_requests_total{endpoint="healthz"}`, dm2, 1)
	if health.Status != "ok" {
		c.failf("healthz status = %q, want ok", health.Status)
	}
	if health.Generation != dm1["tsvd_trapd_generation"] {
		c.failf("healthz generation %v != gauge %v", health.Generation, dm1["tsvd_trapd_generation"])
	}
	if health.Pairs != finalPairs {
		c.failf("healthz pairs %v != store %v", health.Pairs, finalPairs)
	}

	// --- Session.Snapshot on the public API, exactly ---
	// A single-goroutine workload has fully deterministic counters: every
	// container op is one OnCall, and nothing can near-miss or trap.
	sessReg := tsvd.NewMetricsRegistry()
	sess, err := tsvd.Install(tsvd.DefaultConfig().Scaled(*scale),
		tsvd.WithDetectorMetrics(tsvd.NewDetectorMetrics(sessReg)))
	if err != nil {
		c.failf("install: %v", err)
		return 1
	}
	dict := tsvd.NewDictionary[int, int]()
	const sessOps = 100
	for i := 0; i < sessOps; i++ {
		dict.Set(i, i)
	}
	snap := sess.Snapshot()
	if snap.Stats.OnCalls != sessOps || snap.Stats.NearMisses != 0 || snap.Bugs != 0 || snap.TrapSetPairs != 0 {
		c.failf("session snapshot off: %+v (want OnCalls=%d, all else zero)", snap, sessOps)
	}
	sgot := sessReg.Values()
	c.eq("session", "tsvd_detector_on_calls_total", sgot, sessOps)
	c.eq("session", "tsvd_detector_near_misses_total", sgot, 0)
	c.eq("session", "tsvd_detector_instances", sgot, 1)
	// An untraced session has no tracer at all: both trace counters must
	// read zero, not merely "no drops".
	c.eq("session", "tsvd_trace_emitted_total", sgot, 0)
	c.eq("session", "tsvd_trace_dropped_total", sgot, 0)
	sess.Close()

	// --- Sampled mode at p=0 on the public API, exactly ---
	// Every call is deterministically sampled out: the skip counter equals
	// the op count, OnCalls still counts the skips, and the probability
	// gauge reads the configured 0.
	sampReg := tsvd.NewMetricsRegistry()
	scfg := tsvd.DefaultConfig().Scaled(*scale)
	scfg.Mode = tsvd.ModeSampled
	scfg.SampleProbability = 0
	ssess, err := tsvd.Install(scfg, tsvd.WithDetectorMetrics(tsvd.NewDetectorMetrics(sampReg)))
	if err != nil {
		c.failf("install sampled: %v", err)
		return 1
	}
	sdict := tsvd.NewDictionary[int, int]()
	for i := 0; i < sessOps; i++ {
		sdict.Set(i, i)
	}
	sv := sampReg.Values()
	c.eq("sampled session", "tsvd_sampler_calls_sampled_out_total", sv, sessOps)
	c.eq("sampled session", "tsvd_detector_on_calls_total", sv, sessOps)
	c.eq("sampled session", "tsvd_sampler_probability", sv, 0)
	c.eq("sampled session", "tsvd_detector_near_misses_total", sv, 0)
	ssess.Close()

	if c.failures > 0 {
		fmt.Fprintf(os.Stderr, "tsvd-metrics-check: %d series failed to reconcile\n", c.failures)
		return 1
	}
	fmt.Printf("tsvd-metrics-check: ok — %d detector, %d store and %d daemon series reconcile exactly "+
		"(%d modules × %d runs, %d pairs aggregated)\n",
		len(det), len(cli), len(dmn)+2, *modules, *runs, daemon.PairCount())
	return 0
}

// scrape GETs a Prometheus exposition endpoint and parses it into a
// series → value map, returning the Content-Type as received.
func scrape(url string) (map[string]float64, string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	vals, err := metrics.ParseValues(string(body))
	return vals, resp.Header.Get("Content-Type"), err
}

// fetchJSON GETs url and decodes the JSON body into v.
func fetchJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
