package tsvd_test

import (
	"fmt"
	"time"

	tsvd "repro"
)

// Example_detectViolation shows the whole workflow: install a detection
// session, run racing code over an instrumented container, read the
// deduplicated bug reports from the session handle.
func Example_detectViolation() {
	// Scaled 10× faster than the paper's 100ms delays, for a quick demo.
	session, err := tsvd.Install(tsvd.DefaultConfig().Scaled(0.1))
	if err != nil {
		fmt.Println("install:", err)
		return
	}
	defer session.Close()

	dict := tsvd.NewDictionary[string, int]()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 150; i++ {
			dict.Set("key1", i) // write API
			time.Sleep(time.Millisecond)
		}
	}()
	for i := 0; i < 150; i++ {
		dict.ContainsKey("key2") // read API — still a violation (Figure 1)
		time.Sleep(time.Millisecond)
	}
	<-done

	if len(session.Bugs()) > 0 {
		fmt.Println("caught a thread-safety violation red-handed")
	}
	// Output:
	// caught a thread-safety violation red-handed
}

// Example_tasks shows the TPL-style task substrate whose fork/join events
// feed the TSVDHB variant.
func Example_tasks() {
	cfg := tsvd.DefaultConfig()
	cfg.Algorithm = tsvd.Nop // no detection needed for this example
	if _, err := tsvd.Install(cfg); err != nil {
		fmt.Println("install:", err)
		return
	}
	sched := tsvd.NewScheduler()

	squares := tsvd.Go(sched, func() []int {
		out := make([]int, 5)
		for i := range out {
			out[i] = i * i
		}
		return out
	})
	total := tsvd.ContinueWith(squares, func(xs []int) int {
		sum := 0
		for _, x := range xs {
			sum += x
		}
		return sum
	})
	fmt.Println("sum of squares:", total.Result())
	// Output:
	// sum of squares: 30
}
