package tsvd

// One benchmark per table and figure of the paper's evaluation (§5), plus
// microbenchmarks of the OnCall hot path. Benchmarks run reduced-size
// suites so `go test -bench=.` completes in minutes on one core; the
// full-size regeneration (the numbers recorded in EXPERIMENTS.md) is
// produced by cmd/tsvd-bench. Custom metrics carry the experiment results:
// bugs (unique planted bugs found), delays (injected), found_frac (share of
// planted bugs found).

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/collections"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/scenarios"
	"repro/internal/workload"
)

// benchParams shrinks the experiment sizes for benchmark iterations.
func benchParams() experiments.Params {
	p := experiments.DefaultParams()
	p.SmallModules = 40
	p.LargeModules = 120
	p.Fig8Modules = 25
	p.Fig8Runs = 10
	return p
}

func benchOpts(algo config.Algorithm, modules, runs int) (*workload.Suite, harness.Options) {
	p := benchParams()
	suite := workload.GenerateSuite(p.Seed, modules)
	return suite, harness.Options{
		Config:      config.Defaults(algo).Scaled(p.Scale),
		Runs:        runs,
		Parallelism: p.Parallelism,
		RunSeedBase: harness.Seed(p.Seed * 31),
	}
}

func runTechnique(b *testing.B, algo config.Algorithm) {
	b.Helper()
	suite, opts := benchOpts(algo, 40, 2)
	var bugs, delays float64
	for i := 0; i < b.N; i++ {
		opts.RunSeedBase = harness.Seed(int64(i+1) * 7919)
		out := harness.Run(suite, opts)
		bugs += float64(out.TotalFound())
		delays += float64(out.Stats.DelaysInjected)
		if len(out.UnknownPairs) != 0 {
			b.Fatalf("%v reported non-planted pairs", algo)
		}
	}
	b.ReportMetric(bugs/float64(b.N), "bugs")
	b.ReportMetric(delays/float64(b.N), "delays")
	b.ReportMetric(bugs/float64(b.N)/float64(suite.TotalPlantedBugs()), "found_frac")
}

// --- Table 2: technique comparison ---

func BenchmarkTable2_TSVD(b *testing.B)          { runTechnique(b, config.AlgoTSVD) }
func BenchmarkTable2_TSVDHB(b *testing.B)        { runTechnique(b, config.AlgoTSVDHB) }
func BenchmarkTable2_DynamicRandom(b *testing.B) { runTechnique(b, config.AlgoDynamicRandom) }
func BenchmarkTable2_DataCollider(b *testing.B)  { runTechnique(b, config.AlgoStaticRandom) }

// BenchmarkTable2_Baseline measures the uninstrumented suite, the
// denominator of every overhead number.
func BenchmarkTable2_Baseline(b *testing.B) {
	suite, opts := benchOpts(config.AlgoTSVD, 40, 1)
	for i := 0; i < b.N; i++ {
		harness.Baseline(suite, opts)
	}
}

// --- Table 1: bug population over the Large suite ---

func BenchmarkTable1(b *testing.B) {
	p := benchParams()
	suite := workload.LargeSuite(p.Seed)
	// Large is big; trim to the bench size deterministically.
	suite.Modules = suite.Modules[:p.LargeModules]
	opts := harness.Options{
		Config:      config.Defaults(config.AlgoTSVD).Scaled(p.Scale),
		Runs:        2,
		Parallelism: p.Parallelism,
		RunSeedBase: harness.Seed(p.Seed * 31),
	}
	var bugs float64
	for i := 0; i < b.N; i++ {
		out := harness.Run(suite, opts)
		bugs += float64(out.TotalFound())
	}
	b.ReportMetric(bugs/float64(b.N), "bugs")
}

// --- Table 3: ablations ---

func runAblation(b *testing.B, mutate func(*config.Config)) {
	b.Helper()
	suite, opts := benchOpts(config.AlgoTSVD, 40, 2)
	mutate(&opts.Config)
	var bugs, delays float64
	for i := 0; i < b.N; i++ {
		out := harness.Run(suite, opts)
		bugs += float64(out.TotalFound())
		delays += float64(out.Stats.DelaysInjected)
	}
	b.ReportMetric(bugs/float64(b.N), "bugs")
	b.ReportMetric(delays/float64(b.N), "delays")
}

func BenchmarkTable3_Full(b *testing.B) { runAblation(b, func(*config.Config) {}) }
func BenchmarkTable3_NoHBInference(b *testing.B) {
	runAblation(b, func(c *config.Config) { c.DisableHBInference = true })
}
func BenchmarkTable3_NoWindowing(b *testing.B) {
	runAblation(b, func(c *config.Config) { c.DisableNearMissWindow = true })
}
func BenchmarkTable3_NoPhaseDetection(b *testing.B) {
	runAblation(b, func(c *config.Config) { c.DisablePhaseDetection = true })
}

// --- Table 4: open-source scenarios ---

func BenchmarkTable4(b *testing.B) {
	cfg := config.Defaults(config.AlgoTSVD).Scaled(0.4)
	var tsvs float64
	for i := 0; i < b.N; i++ {
		for _, s := range scenarios.All() {
			out, err := scenarios.Run(s, cfg, 2)
			if err != nil {
				b.Fatal(err)
			}
			tsvs += float64(out.TSVs)
		}
	}
	b.ReportMetric(tsvs/float64(b.N), "tsvs")
}

// --- Figure 8: bugs over accumulated runs ---

func BenchmarkFigure8(b *testing.B) {
	p := benchParams()
	suite := workload.GenerateSuite(p.Seed, p.Fig8Modules)
	var tsvdBugs float64
	for i := 0; i < b.N; i++ {
		out := harness.Run(suite, harness.Options{
			Config:      config.Defaults(config.AlgoTSVD).Scaled(p.Scale),
			Runs:        p.Fig8Runs,
			Parallelism: p.Parallelism,
			RunSeedBase: harness.Seed(int64(i+1) * 104729),
		})
		tsvdBugs += float64(out.TotalFound())
	}
	b.ReportMetric(tsvdBugs/float64(b.N), "bugs")
}

// --- Figure 9: parameter sensitivity (each bench sweeps its parameter's
// pathological value vs the default and reports the bug gap) ---

func sweepPoint(b *testing.B, mutate func(*config.Config)) float64 {
	b.Helper()
	suite, opts := benchOpts(config.AlgoTSVD, 40, 2)
	mutate(&opts.Config)
	out := harness.Run(suite, opts)
	return float64(out.TotalFound())
}

func runSweepBench(b *testing.B, worst, def func(*config.Config)) {
	b.Helper()
	var worstBugs, defBugs float64
	for i := 0; i < b.N; i++ {
		worstBugs += sweepPoint(b, worst)
		defBugs += sweepPoint(b, def)
	}
	b.ReportMetric(worstBugs/float64(b.N), "bugs_worst")
	b.ReportMetric(defBugs/float64(b.N), "bugs_default")
}

func BenchmarkFigure9a_Variance(b *testing.B) {
	suite, opts := benchOpts(config.AlgoTSVD, 40, 2)
	minB, maxB := 1<<30, 0
	for i := 0; i < b.N; i++ {
		for try := 1; try <= 3; try++ {
			opts.Config.Seed = int64(i*3+try) * 997
			out := harness.Run(suite, opts)
			n := out.TotalFound()
			if n < minB {
				minB = n
			}
			if n > maxB {
				maxB = n
			}
		}
	}
	b.ReportMetric(float64(minB), "bugs_min")
	b.ReportMetric(float64(maxB), "bugs_max")
}

func BenchmarkFigure9b_ObjHistory(b *testing.B) {
	runSweepBench(b,
		func(c *config.Config) { c.ObjHistory = 1 },
		func(c *config.Config) { c.ObjHistory = 5 })
}

func BenchmarkFigure9c_NearMissWindow(b *testing.B) {
	runSweepBench(b,
		func(c *config.Config) { c.NearMissWindow = c.NearMissWindow / 100 },
		func(c *config.Config) {})
}

func BenchmarkFigure9d_HBThreshold(b *testing.B) {
	runSweepBench(b,
		func(c *config.Config) { c.HBBlockThreshold = 0 },
		func(c *config.Config) { c.HBBlockThreshold = 0.5 })
}

func BenchmarkFigure9e_HBWindow(b *testing.B) {
	runSweepBench(b,
		func(c *config.Config) { c.HBInferenceWindow = 100 },
		func(c *config.Config) { c.HBInferenceWindow = 5 })
}

func BenchmarkFigure9f_PhaseBuffer(b *testing.B) {
	runSweepBench(b,
		func(c *config.Config) { c.PhaseBufferSize = 2 },
		func(c *config.Config) { c.PhaseBufferSize = 16 })
}

func BenchmarkFigure9g_DecayFactor(b *testing.B) {
	// Factor 0 (no decay) is the overhead-pathological configuration;
	// report delay counts rather than bugs.
	suite, opts := benchOpts(config.AlgoTSVD, 40, 2)
	var zeroDelays, defDelays float64
	for i := 0; i < b.N; i++ {
		opts.Config.DecayFactor = 0
		zeroDelays += float64(harness.Run(suite, opts).Stats.DelaysInjected)
		opts.Config.DecayFactor = 0.5
		defDelays += float64(harness.Run(suite, opts).Stats.DelaysInjected)
	}
	b.ReportMetric(zeroDelays/float64(b.N), "delays_nodecay")
	b.ReportMetric(defDelays/float64(b.N), "delays_default")
}

func BenchmarkFigure9h_DelayTime(b *testing.B) {
	runSweepBench(b,
		func(c *config.Config) { c.DelayTime = c.DelayTime / 10 },
		func(c *config.Config) {})
}

// --- §5.5 resource usage, §4 async inlining, §3.4.6 overlap ablation ---

func BenchmarkResourceUsage(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		experiments.ResourceUsage(p, io.Discard)
	}
}

func BenchmarkAsyncInlining(b *testing.B) {
	suite, opts := benchOpts(config.AlgoTSVD, 40, 2)
	var forced, inlined float64
	for i := 0; i < b.N; i++ {
		opts.InlineFastAsync = false
		forced += float64(harness.Run(suite, opts).FoundByKind(suite)[workload.BugAsync])
		opts.InlineFastAsync = true
		inlined += float64(harness.Run(suite, opts).FoundByKind(suite)[workload.BugAsync])
	}
	b.ReportMetric(forced/float64(b.N), "async_bugs_forced")
	b.ReportMetric(inlined/float64(b.N), "async_bugs_inlined")
}

func BenchmarkDelayOverlapAblation(b *testing.B) {
	suite, opts := benchOpts(config.AlgoTSVD, 40, 2)
	var aggressive, avoiding float64
	for i := 0; i < b.N; i++ {
		opts.Config.AvoidOverlappingDelays = false
		aggressive += float64(harness.Run(suite, opts).TotalFound())
		opts.Config.AvoidOverlappingDelays = true
		avoiding += float64(harness.Run(suite, opts).TotalFound())
	}
	b.ReportMetric(aggressive/float64(b.N), "bugs_aggressive")
	b.ReportMetric(avoiding/float64(b.N), "bugs_avoid_overlap")
}

// --- OnCall hot-path microbenchmarks ---

func benchOnCall(b *testing.B, algo config.Algorithm) {
	b.Helper()
	det, err := core.New(config.Defaults(algo))
	if err != nil {
		b.Fatal(err)
	}
	a := core.Access{
		Thread: ids.CurrentThreadID(), Obj: 1, Op: 42,
		Site: det.Sites().Register(42, "Dictionary", "ContainsKey", false),
		Kind: core.KindRead,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.OnCall(a)
	}
}

func BenchmarkOnCall_TSVD(b *testing.B)   { benchOnCall(b, config.AlgoTSVD) }
func BenchmarkOnCall_TSVDHB(b *testing.B) { benchOnCall(b, config.AlgoTSVDHB) }
func BenchmarkOnCall_Nop(b *testing.B)    { benchOnCall(b, config.AlgoNop) }

// BenchmarkOnCallUncontended is the regression-gated figure: one goroutine,
// one object, the lock-free single-writer fast path end to end (TSC read,
// cached thread and ring probes, publication CAS). cmd/tsvd-bench-gate runs
// the TSVD case against the threshold committed in bench_gate.json; `make
// bench-gate` (part of `make check`) fails the build when the fast path
// regresses past it.
func BenchmarkOnCallUncontended(b *testing.B) {
	for _, algo := range []config.Algorithm{config.AlgoTSVD, config.AlgoTSVDHB, config.AlgoNop} {
		b.Run(algo.String(), func(b *testing.B) { benchOnCall(b, algo) })
	}
}

// --- OnCall contention: many goroutines, conflict-free workload ---
//
// The scalability benchmark behind docs/PERFORMANCE.md: G goroutines hammer
// OnCall with *disjoint* objects and locations (KindWrite, so nothing is
// skipped as read-read), so no near miss, no dangerous pair and no delay ever
// forms and the measurement isolates pure detector-bookkeeping throughput.
// With disjoint objects the striped runtime gives each goroutine its own
// shard with high probability; the "sharedObj" variant aims every goroutine
// at one object (read-only, still conflict-free) to measure the single-shard
// worst case, which striping cannot help.

// contentionParallelism converts a desired goroutine count into the
// per-GOMAXPROCS parallelism factor RunParallel understands.
func contentionParallelism(goroutines int) int {
	p := goroutines / runtime.GOMAXPROCS(0)
	if p < 1 {
		p = 1
	}
	return p
}

func benchContention(b *testing.B, algo config.Algorithm, goroutines int, shared, traced, metered bool, mutate ...func(*config.Config)) {
	b.Helper()
	cfg := config.Defaults(algo)
	cfg.Trace = traced
	for _, m := range mutate {
		m(&cfg)
	}
	var copts []core.Option
	if metered {
		copts = append(copts,
			core.WithDetectorMetrics(core.NewDetectorMetrics(metrics.NewRegistry())))
	}
	det, err := core.New(cfg, copts...)
	if err != nil {
		b.Fatal(err)
	}
	var workers atomic.Int64
	b.SetParallelism(contentionParallelism(goroutines))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := workers.Add(1)
		a := core.Access{
			Thread: ids.ThreadID(1000 + w),
			Obj:    ids.ObjectID(1000 + w),
			Op:     ids.OpID(1000 + w),
			Site:   det.Sites().Register(ids.OpID(1000+w), "Dictionary", "Add", true),
			Kind:   core.KindWrite,
		}
		if shared {
			a.Obj = 7 // every goroutine on one object ⇒ one object lock
			a.Kind = core.KindRead
			a.Site = det.Sites().Register(a.Op, "Dictionary", "ContainsKey", false)
		}
		for pb.Next() {
			det.OnCall(a)
		}
	})
	if det.Reports().UniqueBugs() != 0 {
		b.Fatal("conflict-free workload produced a report")
	}
}

func BenchmarkOnCallContention(b *testing.B) {
	for _, algo := range []config.Algorithm{config.AlgoTSVD, config.AlgoTSVDHB} {
		for _, g := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%v/goroutines=%d", algo, g), func(b *testing.B) {
				benchContention(b, algo, g, false, false, false)
			})
		}
		b.Run(fmt.Sprintf("%v/sharedObj/goroutines=8", algo), func(b *testing.B) {
			benchContention(b, algo, 8, true, false, false)
		})
		// Tracing enabled on the same conflict-free workload: the fast path
		// crosses no emission point, so this pins the observability layer's
		// hot-path overhead (<5% is the budget docs/PERFORMANCE.md records).
		for _, g := range []int{1, 8} {
			b.Run(fmt.Sprintf("%v/trace/goroutines=%d", algo, g), func(b *testing.B) {
				benchContention(b, algo, g, false, true, false)
			})
		}
		b.Run(fmt.Sprintf("%v/trace/sharedObj/goroutines=8", algo), func(b *testing.B) {
			benchContention(b, algo, 8, true, true, false)
		})
		// Live metrics attached on the same conflict-free workload: the Stats
		// series are function-backed and read only at scrape time, and the
		// histogram hooks sit on action paths this workload never crosses, so
		// the metered delta pins what attaching a registry costs the fast
		// path (<5% is the budget docs/PERFORMANCE.md records).
		for _, g := range []int{1, 8} {
			b.Run(fmt.Sprintf("%v/metrics/goroutines=%d", algo, g), func(b *testing.B) {
				benchContention(b, algo, g, false, false, true)
			})
		}
		b.Run(fmt.Sprintf("%v/metrics/sharedObj/goroutines=8", algo), func(b *testing.B) {
			benchContention(b, algo, 8, true, false, true)
		})
	}
}

// BenchmarkOnCallContentionModes runs the same conflict-free contention
// workload under each sampling mode (docs/SAMPLING.md). Expectations the
// per-mode overhead table in docs/PERFORMANCE.md records:
//
//   - observe-only tracks full mode (it only suppresses sleeps, and this
//     workload never reaches a sleep);
//   - sampled at p=1 adds just the gate (a thread-local xorshift draw plus
//     one lock-free threshold compare);
//   - sampled at low p approaches the skip path's floor — two shard-local
//     atomic adds;
//   - the auto-throttled run converges toward its target, so its steady
//     state looks like low p.
func BenchmarkOnCallContentionModes(b *testing.B) {
	modes := []struct {
		name string
		mut  func(*config.Config)
	}{
		{"full", func(*config.Config) {}},
		{"observe-only", func(c *config.Config) { c.Mode = config.ModeObserveOnly }},
		{"sampled-p1", func(c *config.Config) {
			c.Mode = config.ModeSampled
			c.SampleProbability = 1
		}},
		{"sampled-p0.01", func(c *config.Config) {
			c.Mode = config.ModeSampled
			c.SampleProbability = 0.01
		}},
		{"sampled-auto-1pct", func(c *config.Config) {
			c.Mode = config.ModeSampled
			c.SampleProbability = 1
			c.OverheadTarget = 0.01
		}},
	}
	for _, algo := range []config.Algorithm{config.AlgoTSVD, config.AlgoTSVDHB} {
		for _, m := range modes {
			b.Run(fmt.Sprintf("%v/%s/goroutines=8", algo, m.name), func(b *testing.B) {
				benchContention(b, algo, 8, false, false, false, m.mut)
			})
		}
	}
}

// BenchmarkDictionarySetInstrumented measures the end-to-end per-operation
// cost through the public API (prologue + detector + raw op).
func BenchmarkDictionarySetInstrumented(b *testing.B) {
	if _, err := Install(DefaultConfig()); err != nil {
		b.Fatal(err)
	}
	d := NewDictionary[int, int]()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Set(i&1023, i)
	}
}

// BenchmarkDictionarySetUninstrumented is the same operation with a nil
// detector: the pay-as-you-go floor (no OnCall prologue at all).
func BenchmarkDictionarySetUninstrumented(b *testing.B) {
	d := collections.NewDictionary[int, int](nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Set(i&1023, i)
	}
}
