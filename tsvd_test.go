package tsvd

import (
	"errors"
	"path/filepath"
	"testing"
	"time"
)

// Note: the installed detector is process-global, so these tests install
// fresh detectors per test and must not run in parallel with each other.

func install(t *testing.T) *Session {
	t.Helper()
	s, err := Install(DefaultConfig().Scaled(0.1))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefaultIsNopBeforeInstall(t *testing.T) {
	// Reset to a Nop-equivalent state by installing a Nop config.
	cfg := DefaultConfig()
	cfg.Algorithm = Nop
	if _, err := Install(cfg); err != nil {
		t.Fatal(err)
	}
	d := NewDictionary[string, int]()
	d.Set("a", 1)
	if len(Bugs()) != 0 {
		t.Fatal("Nop detector reported bugs")
	}
}

func TestInstallRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ObjHistory = 0
	if _, err := Install(cfg); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestQuickstartFlow(t *testing.T) {
	install(t)
	dict := NewDictionary[string, int]()

	done1 := make(chan struct{})
	done2 := make(chan struct{})
	go func() {
		defer close(done1)
		for i := 0; i < 200; i++ {
			dict.Set("key1", i)
			time.Sleep(time.Millisecond)
		}
	}()
	go func() {
		defer close(done2)
		for i := 0; i < 200; i++ {
			dict.ContainsKey("key2")
			time.Sleep(time.Millisecond)
		}
	}()
	<-done1
	<-done2

	if len(Bugs()) == 0 {
		t.Fatal("quickstart race not detected")
	}
	if Stats().DelaysInjected == 0 {
		t.Fatal("no delays were injected")
	}
}

func TestSchedulerAndTasks(t *testing.T) {
	install(t)
	s := NewScheduler()
	tk := Go(s, func() int { return 21 })
	doubled := ContinueWith(tk, func(v int) int { return v * 2 })
	if doubled.Result() != 42 {
		t.Fatal("task pipeline broken")
	}
	sum := 0
	mu := NewMutex()
	ForEach(s, []int{1, 2, 3, 4, 5}, 3, func(v int) {
		mu.Lock()
		sum += v
		mu.Unlock()
	})
	if sum != 15 {
		t.Fatalf("ForEach sum = %d", sum)
	}
}

func TestTrapFileRoundTripViaPublicAPI(t *testing.T) {
	install(t)
	dict := NewDictionary[string, int]()
	// A single near miss, strictly serialized: learn the pair only.
	c1 := make(chan struct{})
	go func() { dict.Set("a", 1); close(c1) }()
	<-c1
	c2 := make(chan struct{})
	go func() { dict.Set("b", 2); close(c2) }()
	<-c2

	path := filepath.Join(t.TempDir(), "traps.json")
	if err := SaveTrapFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := InstallWithTrapFile(DefaultConfig().Scaled(0.1), path); err != nil {
		t.Fatal(err)
	}
	if Default().ExportTraps() == nil {
		t.Fatal("trap file did not seed the new detector")
	}
}

func TestInstallSupersedesAndClosesPrevious(t *testing.T) {
	first := install(t)
	// Catch a bug on the first session so it has state worth keeping.
	dict := NewDictionary[string, int]()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			dict.Set("k", i)
			time.Sleep(time.Millisecond)
		}
	}()
	for i := 0; i < 200; i++ {
		dict.ContainsKey("k2")
		time.Sleep(time.Millisecond)
	}
	<-done
	firstBugs := len(first.Bugs())
	if firstBugs == 0 {
		t.Fatal("first session caught nothing; the supersede test needs state")
	}

	second := install(t)
	if !first.Closed() {
		t.Fatal("superseded session not closed")
	}
	if second.Closed() {
		t.Fatal("fresh session already closed")
	}
	if Current() != second {
		t.Fatal("Current is not the superseding session")
	}
	// The superseded session's discoveries are not orphaned: still readable
	// and still persistable from its own handle.
	if len(first.Bugs()) != firstBugs {
		t.Fatal("superseded session lost its bugs")
	}
	if err := first.SaveTraps(filepath.Join(t.TempDir(), "traps.json")); err != nil {
		t.Fatalf("superseded session cannot save traps: %v", err)
	}
	// The new session starts clean.
	if len(second.Bugs()) != 0 {
		t.Fatal("fresh session inherited bugs")
	}
}

// TestModeSwitchViaReinstall is the rollout story of docs/SAMPLING.md: start
// a session in observe-only (no thread ever sleeps), then supersede it with
// a full-mode session. Detection semantics must follow the installed mode,
// and the observe-only session's findings stay readable after supersession.
func TestModeSwitchViaReinstall(t *testing.T) {
	cfg := DefaultConfig() // TimeScale 1: a suppressed 100ms delay is unmissable
	cfg.Mode = ModeObserveOnly
	observe, err := Install(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dict := NewDictionary[string, int]()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			dict.Set("k", i)
			time.Sleep(time.Millisecond)
		}
	}()
	for i := 0; i < 200; i++ {
		dict.ContainsKey("k2")
		time.Sleep(time.Millisecond)
	}
	<-done

	ost := observe.Stats()
	if ost.DelaysInjected != 0 || ost.TotalDelay != 0 {
		t.Fatalf("observe-only slept: %d delays, %v", ost.DelaysInjected, ost.TotalDelay)
	}
	if ost.DelaysSuppressed == 0 {
		t.Fatal("observe-only reached no trap decision on a racy workload")
	}
	if ost.NearMisses == 0 {
		t.Fatal("observe-only recorded no near misses")
	}

	// Supersede with full mode at a small time scale: injection resumes.
	full := install(t)
	if !observe.Closed() {
		t.Fatal("observe-only session not superseded")
	}
	dict2 := NewDictionary[string, int]()
	done2 := make(chan struct{})
	go func() {
		defer close(done2)
		for i := 0; i < 200; i++ {
			dict2.Set("k", i)
			time.Sleep(time.Millisecond)
		}
	}()
	for i := 0; i < 200; i++ {
		dict2.ContainsKey("k2")
		time.Sleep(time.Millisecond)
	}
	<-done2
	if full.Stats().DelaysInjected == 0 {
		t.Fatal("full mode injected nothing after the switch")
	}
	// The superseded observe-only session still answers from its final state.
	if got := observe.Stats().DelaysInjected; got != 0 {
		t.Fatalf("superseded observe-only session mutated: %d delays", got)
	}
}

func TestCloseDetachesAndSaveTrapFileFailsNotInstalled(t *testing.T) {
	s := install(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if Current() != nil {
		t.Fatal("Close left the session installed")
	}
	err := SaveTrapFile(filepath.Join(t.TempDir(), "traps.json"))
	if !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("SaveTrapFile with no session = %v, want ErrNotInstalled", err)
	}
	// Containers created now report to a no-op detector, not a dead session.
	NewDictionary[string, int]().Set("a", 1)
	if Stats().OnCalls != 0 {
		t.Fatal("package Stats not zero with no session installed")
	}
	// Closing twice is fine, as is closing an already superseded session.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionSnapshotAndPublicMetrics(t *testing.T) {
	reg := NewMetricsRegistry()
	s, err := Install(DefaultConfig().Scaled(0.1),
		WithDetectorMetrics(NewDetectorMetrics(reg)))
	if err != nil {
		t.Fatal(err)
	}
	dict := NewDictionary[string, int]()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			dict.Set("k", i)
			time.Sleep(time.Millisecond)
		}
	}()
	for i := 0; i < 200; i++ {
		dict.ContainsKey("k2")
		time.Sleep(time.Millisecond)
	}
	<-done

	snap := s.Snapshot()
	if snap.Stats.OnCalls == 0 || snap.Stats.NearMisses == 0 {
		t.Fatalf("snapshot saw no activity: %+v", snap.Stats)
	}
	if snap.Bugs != len(s.Bugs()) {
		t.Fatalf("snapshot Bugs = %d, session has %d", snap.Bugs, len(s.Bugs()))
	}
	if ts, ok := s.Detector().(interface{ TrapSetSize() int }); ok {
		if snap.TrapSetPairs != ts.TrapSetSize() {
			t.Fatalf("snapshot TrapSetPairs = %d, detector has %d",
				snap.TrapSetPairs, ts.TrapSetSize())
		}
	}
	// The public metrics registry sees the same detector: the scraped
	// counters reconcile exactly with the session's stats.
	stats := s.Stats()
	got := reg.Values()
	for series, want := range map[string]int64{
		"tsvd_detector_on_calls_total":        stats.OnCalls,
		"tsvd_detector_near_misses_total":     stats.NearMisses,
		"tsvd_detector_delays_injected_total": stats.DelaysInjected,
		"tsvd_detector_pairs_added_total":     stats.PairsAdded,
		"tsvd_detector_violations_total":      stats.Violations,
	} {
		if got[series] != float64(want) {
			t.Errorf("%s = %v, want %d", series, got[series], want)
		}
	}
}

func TestAllPublicConstructors(t *testing.T) {
	install(t)
	NewDictionary[int, int]().Set(1, 1)
	NewList[int]().Add(1)
	NewHashSet[string]().Add("x")
	NewQueue[int]().Enqueue(1)
	NewStack[int]().Push(1)
	NewSortedDictionary[int, string](func(a, b int) bool { return a < b }).Set(1, "a")
	NewLinkedList[int]().AddLast(1)
	NewStringBuilder().Append("s")
	NewCounter().Increment()
	NewMultiMap[string, int]().Add("k", 1)
	NewPriorityQueue[int](func(a, b int) bool { return a < b }).Enqueue(1)
	NewSortedSet[int](func(a, b int) bool { return a < b }).Add(1)
	NewBitArray(16).Set(3, true)
	if Stats().OnCalls < 13 {
		t.Fatalf("OnCalls = %d, want >= 13", Stats().OnCalls)
	}
}
