// Package tsvd is the public API of the TSVD thread-safety-violation
// detector, a Go reproduction of "Efficient Scalable Thread-Safety-Violation
// Detection" (SOSP 2019).
//
// Typical use mirrors the paper's deployment: install a Session for the
// test process, run the existing tests against the instrumented collections,
// and collect the violations afterwards.
//
//	func TestMain(m *testing.M) {
//		session, err := tsvd.Install(tsvd.DefaultConfig())
//		if err != nil {
//			log.Fatal(err)
//		}
//		code := m.Run()
//		for _, bug := range session.Bugs() {
//			fmt.Println(bug.First.String())
//		}
//		session.SaveTraps("tsvd-traps.json") // seed the next run (§3.4.6)
//		os.Exit(code)
//	}
//
// Containers created through this package report to the installed session's
// detector; containers created before Install report to a no-op detector and
// cost almost nothing. Installing a second session supersedes (and closes)
// the first: its collected bugs and traps stay readable on its own handle,
// while new containers report to the new session. The package-level Bugs,
// Stats and SaveTrapFile are thin wrappers over the installed session.
package tsvd

import (
	"repro/internal/collections"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/sites"
	"repro/internal/syncx"
	"repro/internal/task"
)

// Config is the complete detector parameter set; see DefaultConfig for the
// paper's defaults.
type Config = config.Config

// Detector is the runtime interface; see the core package for the variants.
type Detector = core.Detector

// Algorithm selects the detection variant.
type Algorithm = config.Algorithm

// Detection variants.
const (
	// TSVD is the paper's detector (§3.4) — the default.
	TSVD = config.AlgoTSVD
	// TSVDHB is the happens-before-analysis variant (§3.5).
	TSVDHB = config.AlgoTSVDHB
	// DynamicRandom injects delays at random call occurrences (§3.2).
	DynamicRandom = config.AlgoDynamicRandom
	// DataCollider samples static program locations uniformly (§3.3).
	DataCollider = config.AlgoStaticRandom
	// Nop disables detection (baseline).
	Nop = config.AlgoNop
)

// Mode selects the production sampling tier in front of the detector
// (docs/SAMPLING.md): how much of the analysis and delay-injection work the
// installed session performs per instrumented call.
type Mode = config.Mode

// Sampling modes.
const (
	// ModeFull runs the complete detector on every call — the default and
	// the zero value.
	ModeFull = config.ModeFull
	// ModeSampled gates analysis through a per-site admission probability
	// (Config.SampleProbability), auto-throttled toward
	// Config.OverheadTarget when one is set. Red-handed trap catching is
	// never sampled out.
	ModeSampled = config.ModeSampled
	// ModeObserveOnly records near misses and trap decisions but never
	// sleeps a thread — the zero-risk production rollout mode.
	ModeObserveOnly = config.ModeObserveOnly
)

// ParseMode parses a mode name as written in flags and configuration files:
// "full", "sampled" or "observe-only".
func ParseMode(s string) (Mode, error) { return config.ParseMode(s) }

// DefaultConfig returns the paper's default TSVD configuration
// (§5.4: N_nm=5, T_nm=100ms, δ_hb=0.5, k_hb=5, buffer=16, delay=100ms).
func DefaultConfig() Config { return config.Defaults(config.AlgoTSVD) }

// NewDetector builds a standalone detector for cfg. Most callers want
// Install instead.
func NewDetector(cfg Config, opts ...core.Option) (Detector, error) {
	return core.New(cfg, opts...)
}

// --- Interned instrumentation sites ---

// SiteID is the dense handle of an interned instrumentation site; Access
// values carry it instead of API metadata strings, and the detector's
// per-site state is indexed by it. 0 means "unregistered".
type SiteID = ids.SiteID

// Site is one interned site: its location plus the (class, method, write)
// API tuple resolved from the registry at report time.
type Site = sites.Site

// SiteRegistry interns (location, class, method, kind) tuples into dense
// SiteIDs; see internal/sites. Share one registry across detectors (via
// Config.Sites) to keep ids consistent in merged output.
type SiteRegistry = sites.Registry

// NewSiteRegistry returns an empty site registry, for callers that pre-
// register a site table (tsvd-instrument -sites) and share it across
// sessions via Config.Sites.
func NewSiteRegistry() *SiteRegistry { return sites.New() }

// RegisterSite interns one instrumentation site in the installed session's
// registry and returns its dense id, for instrumented code that registers
// its sites up front (e.g. from a tsvd-instrument site table) and then
// passes the SiteID on every access instead of strings. loc is the stable
// location key ("file:line"); registering the same tuple again returns the
// same id. Without an installed session the site lands in the no-op
// detector's registry and the returned id is only meaningful there.
func RegisterSite(loc, class, method string, write bool) SiteID {
	return Default().Sites().Register(ids.InternKey(loc), class, method, write)
}

// --- Live metrics (Prometheus exposition) ---

// MetricsRegistry collects counters, gauges and histograms and writes them
// in the Prometheus text exposition format; see internal/metrics.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// DetectorMetrics exports live tsvd_detector_* series for every detector it
// is attached to; attach it via WithDetectorMetrics.
type DetectorMetrics = core.DetectorMetrics

// NewDetectorMetrics registers the detector metric families on reg and
// returns the collector to pass to Install or NewDetector.
func NewDetectorMetrics(reg *MetricsRegistry) *DetectorMetrics {
	return core.NewDetectorMetrics(reg)
}

// WithDetectorMetrics attaches the detector being built to m, so its
// counters appear in m's registry:
//
//	reg := tsvd.NewMetricsRegistry()
//	session, _ := tsvd.Install(cfg, tsvd.WithDetectorMetrics(tsvd.NewDetectorMetrics(reg)))
//	http.Handle("/metrics", ...reg.WritePrometheus...)
func WithDetectorMetrics(m *DetectorMetrics) core.Option {
	return core.WithDetectorMetrics(m)
}

// --- Instrumented containers bound to the installed detector ---

// Dictionary is the instrumented hash map (thread-unsafe by contract).
type Dictionary[K comparable, V any] = collections.Dictionary[K, V]

// List is the instrumented dynamic array.
type List[T comparable] = collections.List[T]

// HashSet is the instrumented set.
type HashSet[T comparable] = collections.HashSet[T]

// Queue is the instrumented FIFO queue.
type Queue[T any] = collections.Queue[T]

// Stack is the instrumented LIFO stack.
type Stack[T any] = collections.Stack[T]

// SortedDictionary is the instrumented ordered map.
type SortedDictionary[K any, V any] = collections.SortedDictionary[K, V]

// LinkedList is the instrumented doubly-linked list.
type LinkedList[T comparable] = collections.LinkedList[T]

// StringBuilder is the instrumented text accumulator.
type StringBuilder = collections.StringBuilder

// Counter is the instrumented scalar counter.
type Counter = collections.Counter

// MultiMap is the instrumented key → value-list map.
type MultiMap[K comparable, V any] = collections.MultiMap[K, V]

// PriorityQueue is the instrumented binary heap.
type PriorityQueue[T any] = collections.PriorityQueue[T]

// SortedSet is the instrumented ordered set.
type SortedSet[T any] = collections.SortedSet[T]

// BitArray is the instrumented fixed-size bit vector.
type BitArray = collections.BitArray

// NewDictionary returns a Dictionary reporting to the installed detector.
func NewDictionary[K comparable, V any]() *Dictionary[K, V] {
	return collections.NewDictionary[K, V](Default())
}

// NewList returns a List reporting to the installed detector.
func NewList[T comparable]() *List[T] {
	return collections.NewList[T](Default())
}

// NewHashSet returns a HashSet reporting to the installed detector.
func NewHashSet[T comparable]() *HashSet[T] {
	return collections.NewHashSet[T](Default())
}

// NewQueue returns a Queue reporting to the installed detector.
func NewQueue[T any]() *Queue[T] {
	return collections.NewQueue[T](Default())
}

// NewStack returns a Stack reporting to the installed detector.
func NewStack[T any]() *Stack[T] {
	return collections.NewStack[T](Default())
}

// NewSortedDictionary returns a SortedDictionary ordered by less.
func NewSortedDictionary[K any, V any](less func(a, b K) bool) *SortedDictionary[K, V] {
	return collections.NewSortedDictionary[K, V](Default(), less)
}

// NewLinkedList returns a LinkedList reporting to the installed detector.
func NewLinkedList[T comparable]() *LinkedList[T] {
	return collections.NewLinkedList[T](Default())
}

// NewStringBuilder returns a StringBuilder reporting to the installed
// detector.
func NewStringBuilder() *StringBuilder {
	return collections.NewStringBuilder(Default())
}

// NewCounter returns a Counter reporting to the installed detector.
func NewCounter() *Counter {
	return collections.NewCounter(Default())
}

// NewMultiMap returns a MultiMap reporting to the installed detector.
func NewMultiMap[K comparable, V any]() *MultiMap[K, V] {
	return collections.NewMultiMap[K, V](Default())
}

// NewPriorityQueue returns a PriorityQueue ordered by less.
func NewPriorityQueue[T any](less func(a, b T) bool) *PriorityQueue[T] {
	return collections.NewPriorityQueue[T](Default(), less)
}

// NewSortedSet returns a SortedSet ordered by less.
func NewSortedSet[T any](less func(a, b T) bool) *SortedSet[T] {
	return collections.NewSortedSet[T](Default(), less)
}

// NewBitArray returns a BitArray of the given size.
func NewBitArray(size int) *BitArray {
	return collections.NewBitArray(Default(), size)
}

// --- Task substrate and monitored locks ---

// Scheduler runs tasks; its fork/join events reach the detector (used by
// the TSVDHB variant; TSVD ignores them).
type Scheduler = task.Scheduler

// Task is an asynchronous unit of work.
type Task[T any] = task.Task[T]

// NewScheduler returns a Scheduler wired to the installed detector with
// TSVD's force-async instrumentation (§4) applied.
func NewScheduler() *Scheduler {
	return task.NewScheduler(Default(), task.WithForceAsync())
}

// Go forks fn as a task on s (TPL's Task.Run).
func Go[T any](s *Scheduler, fn func() T) *Task[T] {
	return task.Run(s, fn)
}

// ForEach applies fn to items with bounded parallelism (Parallel.ForEach).
func ForEach[T any](s *Scheduler, items []T, degree int, fn func(T)) {
	task.ForEach(s, items, degree, fn)
}

// ContinueWith schedules fn after t completes.
func ContinueWith[T, U any](t *Task[T], fn func(T) U) *Task[U] {
	return task.ContinueWith(t, fn)
}

// Mutex is a monitored lock whose events reach the installed detector.
type Mutex = syncx.Mutex

// NewMutex returns a monitored Mutex.
func NewMutex() *Mutex { return syncx.NewMutex(Default()) }
