package tsvd

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sites"
	"repro/internal/trapfile"
)

// ErrNotInstalled marks operations that need an installed session when there
// is none (or it has been closed). Check with errors.Is.
var ErrNotInstalled = errors.New("tsvd: no session installed")

// Session is one installed detector: the unit of detection for a test
// process. Install wires a Session into the process-wide slot that
// containers created through this package report to; the Session handle
// then scopes everything the run produced — bugs, counters, the dangerous
// pairs to persist for the next run.
//
// A Session's collected state outlives its installation: after Close (or
// after a later Install supersedes it) Bugs, Stats and SaveTraps still
// answer from the final state, so a run can always persist what it found.
// Only new detection stops: containers created afterwards report to the
// superseding session (or to a no-op detector).
type Session struct {
	det    Detector
	closed atomic.Bool
}

// current is the installed session; nil until Install succeeds.
var current atomic.Pointer[Session]

// nop backs Default before any Install and after the last Close.
var nop = core.NewNop()

// Install builds a detector for cfg and installs it as a new Session: the
// process-wide detector used by containers created through this package
// from now on. A previously installed session is superseded and closed —
// its collected bugs and traps remain readable on its own handle, so
// nothing discovered is orphaned, but new containers report only to the
// new session.
//
// The error is nil unless cfg is invalid; callers that use the package-level
// accessors can ignore the session handle.
func Install(cfg Config, opts ...core.Option) (*Session, error) {
	det, err := core.New(cfg, opts...)
	if err != nil {
		return nil, err
	}
	s := &Session{det: det}
	if old := current.Swap(s); old != nil {
		old.closed.Store(true)
	}
	return s, nil
}

// InstallWithTrapFile is Install seeded from a previous run's trap file
// (§3.4.6); a missing file is not an error. The file's site table (if it has
// one) seeds the session's site registry, so reports on seeded pairs resolve
// API metadata from run 1's interning rather than waiting for the call site
// to execute again.
func InstallWithTrapFile(cfg Config, path string, opts ...core.Option) (*Session, error) {
	if cfg.Sites == nil {
		cfg.Sites = sites.New()
	}
	pairs, err := trapfile.LoadSeed(path, cfg.Sites)
	if err != nil {
		return nil, err
	}
	if len(pairs) > 0 {
		opts = append(opts, core.WithInitialTraps(pairs))
	}
	return Install(cfg, opts...)
}

// Current returns the installed session, or nil if none is installed.
func Current() *Session { return current.Load() }

// Default returns the installed session's detector (a no-op detector when
// no session is installed).
func Default() Detector {
	if s := current.Load(); s != nil {
		return s.det
	}
	return nop
}

// Detector returns the session's detector, for wiring collections or
// schedulers to this session explicitly rather than to whatever is
// installed.
func (s *Session) Detector() Detector { return s.det }

// Bugs returns the unique violations this session has caught, deduplicated
// by static location pair.
func (s *Session) Bugs() []report.Bug { return s.det.Reports().Bugs() }

// Stats returns a snapshot of this session's detector counters.
func (s *Session) Stats() core.Stats { return s.det.Stats() }

// Snapshot is a point-in-time view of a session's live detection state,
// safe to take mid-run: counters, the current trap-set occupancy, and the
// number of unique violations caught so far.
type Snapshot struct {
	// Stats is the detector's counter snapshot.
	Stats core.Stats
	// TrapSetPairs is the number of dangerous pairs currently trapped
	// (0 for detector variants without a trap set).
	TrapSetPairs int
	// Bugs is the number of unique violations caught so far, deduplicated
	// by static location pair.
	Bugs int
}

// Snapshot returns a live view of the session's detection state. It is safe
// to call concurrently with detection — the counters are a consistent
// lock-free snapshot — so a watchdog or progress reporter can poll it while
// the instrumented tests are still running.
func (s *Session) Snapshot() Snapshot {
	snap := Snapshot{
		Stats: s.det.Stats(),
		Bugs:  len(s.det.Reports().Bugs()),
	}
	if ts, ok := s.det.(interface{ TrapSetSize() int }); ok {
		snap.TrapSetPairs = ts.TrapSetSize()
	}
	return snap
}

// ExportTraps returns this session's current dangerous-pair set.
func (s *Session) ExportTraps() []report.PairKey { return s.det.ExportTraps() }

// SaveTraps persists this session's dangerous pairs to a trap file for the
// next run, with the session's site table alongside so the next process can
// resolve the pairs' API metadata up front. It works on a closed session
// too: a superseded or finished run may still hand its discoveries forward.
func (s *Session) SaveTraps(path string) error {
	return trapfile.Save(path, trapfile.NewWithSites("TSVD", s.det.ExportTraps(), s.det.Sites()))
}

// Sites returns the session's site registry: the intern table instrumented
// call sites register into (RegisterSite) and reports resolve API metadata
// from.
func (s *Session) Sites() *SiteRegistry { return s.det.Sites() }

// Closed reports whether the session has been closed or superseded.
func (s *Session) Closed() bool { return s.closed.Load() }

// Close detaches the session: if it is the installed one, the process-wide
// detector reverts to a no-op. Collected bugs, stats and traps remain
// readable on the handle. Close is idempotent, and closing a session that a
// later Install already superseded only marks the handle closed.
func (s *Session) Close() error {
	s.closed.Store(true)
	current.CompareAndSwap(s, nil)
	return nil
}

// --- Package-level accessors over the installed session ---

// Bugs returns the installed session's unique violations (none when no
// session is installed).
func Bugs() []report.Bug {
	if s := current.Load(); s != nil {
		return s.Bugs()
	}
	return nil
}

// Stats returns the installed session's counters (zero when no session is
// installed).
func Stats() core.Stats {
	if s := current.Load(); s != nil {
		return s.Stats()
	}
	return core.Stats{}
}

// SaveTrapFile persists the installed session's dangerous pairs for the
// next run. Without an installed session it fails with ErrNotInstalled —
// silently writing an empty trap file would erase the previous run's seeds.
func SaveTrapFile(path string) error {
	s := current.Load()
	if s == nil {
		return fmt.Errorf("tsvd: save trap file %s: %w", path, ErrNotInstalled)
	}
	return s.SaveTraps(path)
}
