// Square-root cache: the Figure 3/4 bug. getSqrt consults an unprotected
// cache dictionary, computes misses on a background task, and stores the
// result after the await — so two concurrent getSqrt calls race both
// ContainsKey vs Add (read-write) and Add vs Add (write-write).
//
//	go run ./examples/sqrtcache
package main

import (
	"fmt"
	"log"
	"math"

	tsvd "repro"
)

// getSqrt mirrors the C# snippet of Figure 3: check the cache, compute on a
// background task, save to the cache after the await.
func getSqrt(sched *tsvd.Scheduler, x float64, dict *tsvd.Dictionary[float64, float64]) *tsvd.Task[float64] {
	return tsvd.Go(sched, func() float64 {
		if dict.ContainsKey(x) { // line 3
			return dict.Get(x) // line 4: fetch from cache
		}
		t := tsvd.Go(sched, func() float64 { // line 6: background work
			return math.Sqrt(x)
		})
		s := t.Result() // line 8: await
		defer func() {
			// A concurrent Add of the same key panics, like .NET's
			// ArgumentException — one visible symptom of this TSV.
			_ = recover()
		}()
		dict.Add(x, s) // line 9: save to cache
		return s
	})
}

func main() {
	session, err := tsvd.Install(tsvd.DefaultConfig().Scaled(0.1))
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()
	sched := tsvd.NewScheduler()
	dict := tsvd.NewDictionary[float64, float64]()

	// Lines 13–16: two concurrent getSqrt calls on an empty cache.
	// Repeat with fresh keys until the detector converts a near miss.
	for round := 0; round < 120 && len(session.Bugs()) == 0; round++ {
		a := float64(round)*2 + 2
		b := float64(round)*2 + 3
		sqrtA := getSqrt(sched, a, dict)
		sqrtB := getSqrt(sched, b, dict)
		fmt.Printf("\rround %3d: sqrt(%v)+sqrt(%v) = %.3f", round, a, b,
			sqrtA.Result()+sqrtB.Result())
		dict.Remove(a)
		dict.Remove(b)
	}
	fmt.Println()

	bugs := session.Bugs()
	fmt.Printf("sqrt cache: %d violation(s), as predicted by Figure 4\n\n", len(bugs))
	for _, bug := range bugs {
		fmt.Print(bug.First.String())
		fmt.Println()
	}
	if len(bugs) == 0 {
		log.Fatal("expected the Figure 3 cache violations")
	}
}
