// Open-source scenarios: run the nine Table-4 bug reproductions (telemetry
// broadcaster, date cache, equality-strategy cache, k8s watch, message
// broker, type cacher, statsd gauge, dynamic class factory, connection
// string singleton) under TSVD and print the Table-4 row shape.
//
//	go run ./examples/opensource
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/scenarios"
)

func main() {
	cfg := config.Defaults(config.AlgoTSVD).Scaled(0.4)
	fmt.Printf("%-22s %7s %6s %6s %9s\n", "project", "#tests", "#run", "#TSV", "overhead")
	failures := 0
	for _, s := range scenarios.All() {
		out, err := scenarios.Run(s, cfg, 2)
		if err != nil {
			log.Fatalf("%s: %v", s.Name, err)
		}
		fmt.Printf("%-22s %7d %6d %6d %8.1f%%\n",
			out.Name, out.Tests, out.RunsUsed, out.TSVs, 100*out.Overhead)
		if out.TSVs < s.MinTSVs {
			failures++
		}
	}
	if failures > 0 {
		log.Fatalf("%d scenario(s) below their expected TSV count", failures)
	}
}
