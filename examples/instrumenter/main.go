// Instrumenter demo: take a service written against the raw, uninstrumented
// containers, run the TSVD instrumenter over it (the source-level analogue
// of the paper's static binary rewriting, §4), and show the rewritten code
// plus the instrumentation-site report.
//
//	go run ./examples/instrumenter
package main

import (
	"fmt"
	"log"

	"repro/internal/instrument"
)

// sample is a miniature service using the raw containers — the "existing
// binary" the instrumenter is pointed at.
const sample = `package inventory

import "repro/internal/rawcol"

type Store struct {
	stock  *rawcol.Map[string, int]
	audits *rawcol.Array[string]
}

func NewStore() *Store {
	return &Store{
		stock:  rawcol.NewMap[string, int](),
		audits: rawcol.NewArray[string](),
	}
}

func (s *Store) Receive(sku string, n int) {
	if s.stock.Contains(sku) {
		cur, _ := s.stock.Get(sku)
		s.stock.Set(sku, cur+n)
	} else {
		s.stock.Add(sku, n)
	}
	s.audits.Append("received " + sku)
}

func (s *Store) Ship(sku string) bool {
	if !s.stock.Contains(sku) {
		return false
	}
	s.stock.Delete(sku)
	s.audits.Append("shipped " + sku)
	return true
}

func (s *Store) AuditLog() []string { return s.audits.Snapshot() }
`

func main() {
	rw := instrument.NewRewriter(instrument.DefaultOptions())
	out, sites, changed, err := rw.Rewrite("inventory.go", []byte(sample))
	if err != nil {
		log.Fatal(err)
	}
	if !changed {
		log.Fatal("instrumenter found nothing to do")
	}

	fmt.Println("=== original ===")
	fmt.Print(sample)
	fmt.Println("=== instrumented ===")
	fmt.Println(string(out))

	fmt.Printf("=== %d sites redirected through OnCall ===\n", len(sites))
	reads, writes := 0, 0
	for _, s := range sites {
		kind := "read "
		switch {
		case s.Constructor:
			kind = "ctor "
		case s.Write:
			kind = "write"
			writes++
		default:
			reads++
		}
		fmt.Printf("  line %2d  %s  %s.%s\n", s.Line, kind, s.Class, s.Method)
	}
	fmt.Printf("(%d read-API sites, %d write-API sites)\n", reads, writes)
}
