// Quickstart: install the TSVD detector, race two goroutines over an
// instrumented Dictionary (the Figure 1 bug), and print the report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	tsvd "repro"
)

func main() {
	// Install a detection session with the paper's defaults, time-scaled
	// 10× faster so the demo finishes quickly.
	session, err := tsvd.Install(tsvd.DefaultConfig().Scaled(0.1))
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	// A thread-unsafe dictionary shared by two goroutines — one writes
	// key1 while the other reads key2. Different keys, still a
	// thread-safety violation (Figure 1).
	dict := tsvd.NewDictionary[string, int]()

	done1 := make(chan struct{})
	done2 := make(chan struct{})
	go func() {
		defer close(done1)
		for i := 0; i < 200; i++ {
			dict.Set("key1", i)
			time.Sleep(time.Millisecond)
		}
	}()
	go func() {
		defer close(done2)
		for i := 0; i < 200; i++ {
			dict.ContainsKey("key2")
			time.Sleep(time.Millisecond)
		}
	}()
	<-done1
	<-done2

	bugs := session.Bugs()
	fmt.Printf("TSVD caught %d unique thread-safety violation(s)\n\n", len(bugs))
	for _, bug := range bugs {
		fmt.Print(bug.First.String())
		fmt.Printf("  seen %d time(s) through %d distinct stack pair(s)\n\n",
			bug.Occurrences, bug.StackPairs)
	}
	st := session.Stats()
	fmt.Printf("stats: %d instrumented calls, %d near-misses, %d delays injected (%v total)\n",
		st.OnCalls, st.NearMisses, st.DelaysInjected, st.TotalDelay)
	if len(bugs) == 0 {
		log.Fatal("expected to catch the planted violation")
	}
}
