// Network validation: the Figure 10(b) bug. A startup validator verifies
// every host's configuration with Parallel.ForEach, storing results into an
// unprotected configuration cache — the ForEach workers race their
// Dictionary-set operations.
//
//	go run ./examples/netvalidation
package main

import (
	"fmt"
	"log"
	"time"

	tsvd "repro"
)

func main() {
	session, err := tsvd.Install(tsvd.DefaultConfig().Scaled(0.1))
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()
	sched := tsvd.NewScheduler()
	configureCache := tsvd.NewDictionary[string, int]()

	hostlist := make([]string, 60)
	for i := range hostlist {
		hostlist[i] = fmt.Sprintf("host-%03d", i)
	}

	getConfigLevel := func(host string) int {
		time.Sleep(2 * time.Millisecond) // "read the host's configuration"
		return len(host)
	}

	// Parallel.ForEach(hostlist, host => configureCache[host] = cl);
	tsvd.ForEach(sched, hostlist, 6, func(host string) {
		cl := getConfigLevel(host)
		configureCache.Set(host, cl) // line 4 of Figure 10(b)
	})

	bugs := session.Bugs()
	fmt.Printf("network validation: %d violation(s) on configureCache\n\n", len(bugs))
	for _, bug := range bugs {
		fmt.Print(bug.First.String())
		fmt.Println()
	}
	if len(bugs) == 0 {
		log.Fatal("expected the Parallel.ForEach concurrent-write violation of Figure 10(b)")
	}
}
