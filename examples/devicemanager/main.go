// Device manager: the Figure 10(a) bug. A listener thread handles client
// messages by spawning an asynchronous status-update task per message; two
// clients sending at the same time produce two concurrent Dictionary-set
// operations on the shared GlobalStatus table, silently corrupting it.
//
//	go run ./examples/devicemanager
package main

import (
	"fmt"
	"log"
	"time"

	tsvd "repro"
)

// deviceManager owns the shared status table and the task scheduler.
type deviceManager struct {
	globalStatus *tsvd.Dictionary[int, string]
	sched        *tsvd.Scheduler
}

// clientStatusUpdate is the async task body of Figure 10(a):
// GlobalStatus[clientID] = s.
func (m *deviceManager) clientStatusUpdate(clientID int, status string) *tsvd.Task[struct{}] {
	return tsvd.Go(m.sched, func() struct{} {
		m.globalStatus.Set(clientID, status) // line 4 of Figure 10(a)
		return struct{}{}
	})
}

func main() {
	session, err := tsvd.Install(tsvd.DefaultConfig().Scaled(0.1))
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()
	mgr := &deviceManager{
		globalStatus: tsvd.NewDictionary[int, string](),
		sched:        tsvd.NewScheduler(),
	}

	// The listening thread: each received message spawns an update task
	// and immediately continues listening. Two clients send bursts of
	// messages at similar times.
	var pending []*tsvd.Task[struct{}]
	for round := 0; round < 100; round++ {
		pending = append(pending,
			mgr.clientStatusUpdate(1, fmt.Sprintf("online-%d", round)),
			mgr.clientStatusUpdate(2, fmt.Sprintf("busy-%d", round)),
		)
		time.Sleep(2 * time.Millisecond)
	}
	for _, t := range pending {
		t.Wait()
	}

	bugs := session.Bugs()
	fmt.Printf("device manager: %d violation(s) on GlobalStatus\n\n", len(bugs))
	for _, bug := range bugs {
		fmt.Print(bug.First.String())
		fmt.Println()
	}
	if len(bugs) == 0 {
		log.Fatal("expected the concurrent-write violation of Figure 10(a)")
	}
}
