package collections

import "repro/internal/rawcol"

// Dictionary is the instrumented hash map, the analogue of .NET's
// Dictionary<TKey,TValue> — the class involved in 55% of the paper's bugs.
// Its thread-safety contract allows concurrent reads but requires writes to
// be exclusive; violating it (Figure 1) corrupts or panics the raw map.
type Dictionary[K comparable, V any] struct {
	instrumented
	raw *rawcol.Map[K, V]
}

// NewDictionary returns an empty Dictionary reporting to det (nil for an
// uninstrumented container).
func NewDictionary[K comparable, V any](det Detector) *Dictionary[K, V] {
	return &Dictionary[K, V]{
		instrumented: newInstrumented(det, "Dictionary"),
		raw:          rawcol.NewMap[K, V](),
	}
}

// ContainsKey reports whether k is present. Read API.
func (d *Dictionary[K, V]) ContainsKey(k K) bool {
	d.onCall("ContainsKey", Read)
	return d.raw.Contains(k)
}

// TryGetValue returns the value for k and whether it was present. Read API.
func (d *Dictionary[K, V]) TryGetValue(k K) (V, bool) {
	d.onCall("TryGetValue", Read)
	return d.raw.Get(k)
}

// Get returns the value for k, panicking when absent (.NET indexer-get).
// Read API.
func (d *Dictionary[K, V]) Get(k K) V {
	d.onCall("Get", Read)
	return d.raw.MustGet(k)
}

// Count returns the number of entries. Read API.
func (d *Dictionary[K, V]) Count() int {
	d.onCall("Count", Read)
	return d.raw.Len()
}

// Keys returns a snapshot of the keys. Read API.
func (d *Dictionary[K, V]) Keys() []K {
	d.onCall("Keys", Read)
	return d.raw.Keys()
}

// Values returns a snapshot of the values. Read API.
func (d *Dictionary[K, V]) Values() []V {
	d.onCall("Values", Read)
	return d.raw.Values()
}

// ForEach iterates the entries; it panics if the dictionary is mutated
// mid-iteration, like a .NET enumerator. Read API.
func (d *Dictionary[K, V]) ForEach(fn func(K, V) bool) {
	d.onCall("ForEach", Read)
	d.raw.Range(fn)
}

// Add inserts k→v, panicking on a duplicate key (.NET Dictionary.Add).
// Write API.
func (d *Dictionary[K, V]) Add(k K, v V) {
	d.onCall("Add", Write)
	d.raw.Add(k, v)
}

// Set inserts or replaces k→v (.NET indexer-set). Write API.
func (d *Dictionary[K, V]) Set(k K, v V) {
	d.onCall("Set", Write)
	d.raw.Set(k, v)
}

// GetOrAdd returns the existing value or inserts v. Write API (it may
// mutate, and the contract must assume it does).
func (d *Dictionary[K, V]) GetOrAdd(k K, v V) (V, bool) {
	d.onCall("GetOrAdd", Write)
	return d.raw.GetOrAdd(k, v)
}

// Remove deletes k, reporting whether it was present. Write API.
func (d *Dictionary[K, V]) Remove(k K) bool {
	d.onCall("Remove", Write)
	return d.raw.Delete(k)
}

// Clear removes all entries. Write API.
func (d *Dictionary[K, V]) Clear() {
	d.onCall("Clear", Write)
	d.raw.Clear()
}
