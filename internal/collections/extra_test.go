package collections

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPriorityQueueBehaviour(t *testing.T) {
	q := NewPriorityQueue[int](nil, func(a, b int) bool { return a < b })
	for _, v := range []int{5, 1, 4, 2, 3} {
		q.Enqueue(v)
	}
	if q.Count() != 5 {
		t.Fatalf("Count = %d", q.Count())
	}
	if v, ok := q.Peek(); !ok || v != 1 {
		t.Fatalf("Peek = %v,%v", v, ok)
	}
	for want := 1; want <= 5; want++ {
		if got := q.Dequeue(); got != want {
			t.Fatalf("Dequeue = %d, want %d", got, want)
		}
	}
	q.Enqueue(9)
	if len(q.ToSlice()) != 1 {
		t.Fatal("ToSlice wrong")
	}
	q.Clear()
	if q.Count() != 0 {
		t.Fatal("Clear wrong")
	}
}

func TestPriorityQueueEmptyDequeuePanics(t *testing.T) {
	q := NewPriorityQueue[int](nil, func(a, b int) bool { return a < b })
	defer func() {
		if recover() == nil {
			t.Fatal("Dequeue on empty did not panic")
		}
	}()
	q.Dequeue()
}

// TestPriorityQueueHeapProperty: any insertion order drains in sorted
// order.
func TestPriorityQueueHeapProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewPriorityQueue[int](nil, func(a, b int) bool { return a < b })
		n := rng.Intn(200)
		var model []int
		for i := 0; i < n; i++ {
			v := rng.Intn(1000)
			q.Enqueue(v)
			model = append(model, v)
		}
		sort.Ints(model)
		for _, want := range model {
			if q.Dequeue() != want {
				return false
			}
		}
		return q.Count() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedSetBehaviour(t *testing.T) {
	s := NewSortedSet[string](nil, func(a, b string) bool { return a < b })
	if !s.Add("m") || s.Add("m") {
		t.Fatal("Add wrong")
	}
	s.Add("a")
	s.Add("z")
	if s.Count() != 3 || !s.Contains("a") || s.Contains("q") {
		t.Fatal("Count/Contains wrong")
	}
	if mn, ok := s.Min(); !ok || mn != "a" {
		t.Fatalf("Min = %q,%v", mn, ok)
	}
	if mx, ok := s.Max(); !ok || mx != "z" {
		t.Fatalf("Max = %q,%v", mx, ok)
	}
	if got := s.ToSlice(); got[0] != "a" || got[2] != "z" {
		t.Fatalf("ToSlice = %v", got)
	}
	if !s.Remove("a") || s.Remove("a") {
		t.Fatal("Remove wrong")
	}
	s.Clear()
	if s.Count() != 0 {
		t.Fatal("Clear wrong")
	}
	if _, ok := s.Min(); ok {
		t.Fatal("Min on empty returned ok")
	}
}

func TestBitArrayBehaviour(t *testing.T) {
	b := NewBitArray(nil, 130) // spans three words
	if b.Size() != 130 || b.OnesCount() != 0 {
		t.Fatal("fresh BitArray wrong")
	}
	b.Set(0, true)
	b.Set(64, true)
	b.Set(129, true)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Fatal("Get/Set wrong")
	}
	if b.OnesCount() != 3 {
		t.Fatalf("OnesCount = %d, want 3", b.OnesCount())
	}
	if b.Flip(1) != true || b.Flip(1) != false {
		t.Fatal("Flip wrong")
	}
	b.Set(64, false)
	if b.Get(64) || b.OnesCount() != 2 {
		t.Fatal("clearing a bit wrong")
	}
	b.SetAll(true)
	if b.OnesCount() != 130 {
		t.Fatalf("SetAll(true) OnesCount = %d, want 130", b.OnesCount())
	}
	b.SetAll(false)
	if b.OnesCount() != 0 {
		t.Fatal("SetAll(false) wrong")
	}
}

func TestBitArrayOutOfRangePanics(t *testing.T) {
	b := NewBitArray(nil, 8)
	for _, fn := range []func(){
		func() { b.Get(8) },
		func() { b.Get(-1) },
		func() { b.Set(8, true) },
		func() { b.Flip(100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}
