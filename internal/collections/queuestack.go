package collections

import "repro/internal/rawcol"

// Queue is the instrumented FIFO queue (.NET Queue<T>). Dequeue on empty
// panics like InvalidOperationException — the crash signature of the
// "check Count, then Dequeue" TSV.
type Queue[T any] struct {
	instrumented
	raw *rawcol.Chain[T]
}

// NewQueue returns an empty Queue reporting to det.
func NewQueue[T any](det Detector) *Queue[T] {
	return &Queue[T]{
		instrumented: newInstrumented(det, "Queue"),
		raw:          rawcol.NewChain[T](),
	}
}

// Peek returns the head without removing it. Read API.
func (q *Queue[T]) Peek() (T, bool) {
	q.onCall("Peek", Read)
	return q.raw.PeekFront()
}

// Count returns the number of elements. Read API.
func (q *Queue[T]) Count() int {
	q.onCall("Count", Read)
	return q.raw.Len()
}

// ToSlice returns a snapshot head-to-tail. Read API.
func (q *Queue[T]) ToSlice() []T {
	q.onCall("ToSlice", Read)
	return q.raw.Snapshot()
}

// Enqueue appends v at the tail. Write API.
func (q *Queue[T]) Enqueue(v T) {
	q.onCall("Enqueue", Write)
	q.raw.PushBack(v)
}

// Dequeue removes and returns the head, panicking when empty. Write API.
func (q *Queue[T]) Dequeue() T {
	q.onCall("Dequeue", Write)
	return q.raw.PopFront()
}

// Clear removes all elements. Write API.
func (q *Queue[T]) Clear() {
	q.onCall("Clear", Write)
	q.raw.Clear()
}

// Stack is the instrumented LIFO stack (.NET Stack<T>).
type Stack[T any] struct {
	instrumented
	raw *rawcol.Chain[T]
}

// NewStack returns an empty Stack reporting to det.
func NewStack[T any](det Detector) *Stack[T] {
	return &Stack[T]{
		instrumented: newInstrumented(det, "Stack"),
		raw:          rawcol.NewChain[T](),
	}
}

// Peek returns the top without removing it. Read API.
func (s *Stack[T]) Peek() (T, bool) {
	s.onCall("Peek", Read)
	return s.raw.PeekBack()
}

// Count returns the number of elements. Read API.
func (s *Stack[T]) Count() int {
	s.onCall("Count", Read)
	return s.raw.Len()
}

// ToSlice returns a snapshot bottom-to-top. Read API.
func (s *Stack[T]) ToSlice() []T {
	s.onCall("ToSlice", Read)
	return s.raw.Snapshot()
}

// Push places v on top. Write API.
func (s *Stack[T]) Push(v T) {
	s.onCall("Push", Write)
	s.raw.PushBack(v)
}

// Pop removes and returns the top, panicking when empty. Write API.
func (s *Stack[T]) Pop() T {
	s.onCall("Pop", Write)
	return s.raw.PopBack()
}

// Clear removes all elements. Write API.
func (s *Stack[T]) Clear() {
	s.onCall("Clear", Write)
	s.raw.Clear()
}
