package collections

import (
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
)

func newDet(t *testing.T, algo config.Algorithm) core.Detector {
	t.Helper()
	d, err := core.New(config.Defaults(algo).Scaled(0.1))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDictionaryUninstrumentedBehaviour(t *testing.T) {
	d := NewDictionary[string, int](nil)
	d.Add("a", 1)
	d.Set("b", 2)
	if !d.ContainsKey("a") || d.ContainsKey("z") {
		t.Fatal("ContainsKey wrong")
	}
	if v, ok := d.TryGetValue("b"); !ok || v != 2 {
		t.Fatal("TryGetValue wrong")
	}
	if d.Get("a") != 1 {
		t.Fatal("Get wrong")
	}
	if v, existed := d.GetOrAdd("c", 3); existed || v != 3 {
		t.Fatal("GetOrAdd wrong")
	}
	if d.Count() != 3 || len(d.Keys()) != 3 || len(d.Values()) != 3 {
		t.Fatal("Count/Keys/Values wrong")
	}
	seen := 0
	d.ForEach(func(string, int) bool { seen++; return true })
	if seen != 3 {
		t.Fatalf("ForEach visited %d", seen)
	}
	if !d.Remove("a") || d.Remove("a") {
		t.Fatal("Remove wrong")
	}
	d.Clear()
	if d.Count() != 0 {
		t.Fatal("Clear wrong")
	}
}

func TestListUninstrumentedBehaviour(t *testing.T) {
	l := NewList[int](nil)
	l.Add(3)
	l.Add(1)
	l.Insert(1, 2) // 3,2,1
	if l.Count() != 3 || l.Get(1) != 2 {
		t.Fatal("Add/Insert/Get wrong")
	}
	if !l.Contains(3) || l.Contains(9) || l.IndexOf(1) != 2 {
		t.Fatal("Contains/IndexOf wrong")
	}
	l.Sort(func(a, b int) bool { return a < b }) // 1,2,3
	if got := l.ToSlice(); got[0] != 1 || got[2] != 3 {
		t.Fatalf("Sort wrong: %v", got)
	}
	l.Set(0, 9)
	l.RemoveAt(2)
	if !l.Remove(2) || l.Remove(2) {
		t.Fatal("Remove wrong")
	}
	sum := 0
	l.ForEach(func(_ int, v int) bool { sum += v; return true })
	if sum != 9 {
		t.Fatalf("ForEach sum = %d", sum)
	}
	l.Clear()
	if l.Count() != 0 {
		t.Fatal("Clear wrong")
	}
}

func TestHashSetBehaviour(t *testing.T) {
	s := NewHashSet[string](nil)
	if !s.Add("a") || s.Add("a") {
		t.Fatal("Add wrong")
	}
	s.UnionWith([]string{"b", "c", "a"})
	if s.Count() != 3 || !s.Contains("b") {
		t.Fatal("UnionWith/Contains wrong")
	}
	if len(s.ToSlice()) != 3 {
		t.Fatal("ToSlice wrong")
	}
	if !s.Remove("a") || s.Remove("a") {
		t.Fatal("Remove wrong")
	}
	s.Clear()
	if s.Count() != 0 {
		t.Fatal("Clear wrong")
	}
}

func TestQueueStackBehaviour(t *testing.T) {
	q := NewQueue[int](nil)
	q.Enqueue(1)
	q.Enqueue(2)
	if v, ok := q.Peek(); !ok || v != 1 {
		t.Fatal("Peek wrong")
	}
	if q.Dequeue() != 1 || q.Count() != 1 {
		t.Fatal("Dequeue wrong")
	}
	if got := q.ToSlice(); len(got) != 1 || got[0] != 2 {
		t.Fatal("ToSlice wrong")
	}
	q.Clear()
	if q.Count() != 0 {
		t.Fatal("Clear wrong")
	}

	s := NewStack[int](nil)
	s.Push(1)
	s.Push(2)
	if v, ok := s.Peek(); !ok || v != 2 {
		t.Fatal("stack Peek wrong")
	}
	if s.Pop() != 2 || s.Count() != 1 {
		t.Fatal("Pop wrong")
	}
	if got := s.ToSlice(); len(got) != 1 || got[0] != 1 {
		t.Fatal("stack ToSlice wrong")
	}
	s.Clear()
	if s.Count() != 0 {
		t.Fatal("stack Clear wrong")
	}
}

func TestSortedDictionaryBehaviour(t *testing.T) {
	d := NewSortedDictionary[int, string](nil, func(a, b int) bool { return a < b })
	d.Add(2, "b")
	d.Add(1, "a")
	d.Set(3, "c")
	if d.Count() != 3 || !d.ContainsKey(2) {
		t.Fatal("Add/Set/ContainsKey wrong")
	}
	if v, ok := d.TryGetValue(1); !ok || v != "a" {
		t.Fatal("TryGetValue wrong")
	}
	if keys := d.Keys(); keys[0] != 1 || keys[2] != 3 {
		t.Fatalf("Keys not sorted: %v", keys)
	}
	if k, v, ok := d.Min(); !ok || k != 1 || v != "a" {
		t.Fatal("Min wrong")
	}
	if !d.Remove(1) || d.Remove(1) {
		t.Fatal("Remove wrong")
	}
	d.Clear()
	if d.Count() != 0 {
		t.Fatal("Clear wrong")
	}
}

func TestLinkedListBehaviour(t *testing.T) {
	l := NewLinkedList[string](nil)
	l.AddLast("b")
	l.AddFirst("a")
	l.AddLast("c")
	if f, _ := l.First(); f != "a" {
		t.Fatal("First wrong")
	}
	if b, _ := l.Last(); b != "c" {
		t.Fatal("Last wrong")
	}
	if l.Count() != 3 || !l.Contains("b") || l.Contains("z") {
		t.Fatal("Count/Contains wrong")
	}
	if l.RemoveFirst() != "a" || l.RemoveLast() != "c" {
		t.Fatal("RemoveFirst/Last wrong")
	}
	if !l.Remove("b") || l.Remove("b") {
		t.Fatal("Remove wrong")
	}
	l.AddLast("x")
	l.Clear()
	if l.Count() != 0 || len(l.ToSlice()) != 0 {
		t.Fatal("Clear wrong")
	}
}

func TestStringBuilderBehaviour(t *testing.T) {
	b := NewStringBuilder(nil)
	b.Append("hello")
	b.AppendLine(" world")
	if got := b.String(); got != "hello world\n" {
		t.Fatalf("String = %q", got)
	}
	if b.Len() != len("hello world\n") {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Reset()
	if b.String() != "" || b.Len() != 0 {
		t.Fatal("Reset wrong")
	}
}

func TestCounterBehaviour(t *testing.T) {
	c := NewCounter(nil)
	c.Increment()
	c.Increment()
	c.Decrement()
	c.AddDelta(10)
	if c.Value() != 11 {
		t.Fatalf("Value = %d, want 11", c.Value())
	}
	c.SetValue(-3)
	if c.Value() != -3 {
		t.Fatalf("Value = %d, want -3", c.Value())
	}
}

func TestMultiMapBehaviour(t *testing.T) {
	m := NewMultiMap[string, int](nil)
	m.Add("a", 1)
	m.Add("a", 2)
	m.Add("b", 3)
	if m.Count() != 2 || !m.ContainsKey("a") {
		t.Fatal("Add/Count/ContainsKey wrong")
	}
	if vs := m.Get("a"); len(vs) != 2 || vs[0] != 1 || vs[1] != 2 {
		t.Fatalf("Get = %v", vs)
	}
	if m.Get("zzz") != nil {
		t.Fatal("Get missing key should be nil")
	}
	if !m.RemoveKey("a") || m.RemoveKey("a") {
		t.Fatal("RemoveKey wrong")
	}
	m.Clear()
	if m.Count() != 0 {
		t.Fatal("Clear wrong")
	}
}

func TestRegistryCoverage(t *testing.T) {
	classes, reads, writes := RegistryCounts()
	if classes != 13 {
		t.Fatalf("classes = %d, want 13", classes)
	}
	// The paper classifies 59 write and 64 read APIs over 14 classes; our
	// registry is the same shape at Go scale. Guard rough proportions.
	if reads < 30 || writes < 40 {
		t.Fatalf("registry too thin: %d reads, %d writes", reads, writes)
	}
	// Every class must have at least one read and one write API, or the
	// read/write contract is meaningless.
	for class, apis := range Registry() {
		var hasRead, hasWrite bool
		for _, k := range apis {
			if k == Read {
				hasRead = true
			} else {
				hasWrite = true
			}
		}
		if !hasRead || !hasWrite {
			t.Fatalf("class %s lacks read or write APIs", class)
		}
	}
}

// TestFigure1BugDetected reproduces the paper's Figure 1 verbatim: thread 1
// calls dict.Add(key1, ...) while thread 2 calls dict.ContainsKey(key2) —
// different keys, still a TSV.
func TestFigure1BugDetected(t *testing.T) {
	det := newDet(t, config.AlgoTSVD)
	dict := NewDictionary[string, int](det)

	done1 := make(chan struct{})
	done2 := make(chan struct{})
	go func() {
		defer close(done1)
		for i := 0; i < 200; i++ {
			func() {
				defer func() { recover() }() // duplicate-key panics are part of the TSV
				dict.Add("key1", i)
			}()
			dict.Remove("key1")
			time.Sleep(time.Millisecond)
		}
	}()
	go func() {
		defer close(done2)
		for i := 0; i < 200; i++ {
			dict.ContainsKey("key2")
			time.Sleep(time.Millisecond)
		}
	}()
	<-done1
	<-done2

	bugs := det.Reports().Bugs()
	if len(bugs) == 0 {
		t.Fatal("Figure 1 bug not detected")
	}
	// At least one bug must involve ContainsKey vs a write API.
	foundRW := false
	for _, b := range bugs {
		v := b.First
		methods := v.Trapped.Method + "/" + v.Conflicting.Method
		if strings.Contains(methods, "ContainsKey") {
			foundRW = true
			if !v.ReadWrite() {
				t.Fatalf("ContainsKey conflict not read-write: %+v", v)
			}
		}
	}
	if !foundRW {
		t.Fatalf("no ContainsKey/write conflict among %d bugs", len(bugs))
	}
}

// TestReportPointsAtUserCode: the op ids in a report must resolve to this
// test file (the user call sites), not to the collections wrappers.
func TestReportPointsAtUserCode(t *testing.T) {
	det := newDet(t, config.AlgoTSVD)
	list := NewList[int](det)

	done1 := make(chan struct{})
	done2 := make(chan struct{})
	go func() {
		defer close(done1)
		for i := 0; i < 200; i++ {
			list.Add(i)
			time.Sleep(time.Millisecond)
		}
	}()
	go func() {
		defer close(done2)
		for i := 0; i < 200; i++ {
			list.Clear()
			time.Sleep(time.Millisecond)
		}
	}()
	<-done1
	<-done2

	vs := det.Reports().Violations()
	if len(vs) == 0 {
		t.Fatal("no violation detected")
	}
	for _, v := range vs[:1] {
		for _, loc := range []string{v.Trapped.Op.Location(), v.Conflicting.Op.Location()} {
			if !strings.Contains(loc, "collections_test.go") {
				t.Fatalf("report location %q does not point at user code", loc)
			}
		}
		if !strings.Contains(v.Trapped.Stack, "collections_test.go") {
			t.Fatalf("trapped stack lacks user frame:\n%s", v.Trapped.Stack)
		}
	}
}

// TestDistinctObjectsDistinctIDs: containers must never share object ids,
// or unrelated accesses would be correlated.
func TestDistinctObjectsDistinctIDs(t *testing.T) {
	a := NewDictionary[int, int](nil)
	b := NewDictionary[int, int](nil)
	c := NewList[int](nil)
	if a.ObjectID() == b.ObjectID() || b.ObjectID() == c.ObjectID() {
		t.Fatal("object ids collide")
	}
}

// TestNoDetectorOverheadPath: nil-detector containers never call OnCall
// (guarded by the Figure-1 workload finishing instantly).
func TestNilDetectorSkipsInstrumentation(t *testing.T) {
	dict := NewDictionary[int, int](nil)
	start := time.Now()
	for i := 0; i < 100000; i++ {
		dict.Set(i%100, i)
		dict.ContainsKey(i % 100)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("nil-detector path is suspiciously slow")
	}
}
