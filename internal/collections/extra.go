package collections

import "repro/internal/rawcol"

// PriorityQueue is the instrumented binary heap (.NET
// PriorityQueue<TElement,TPriority> with the priority folded into less).
// Dequeue on empty panics like InvalidOperationException.
type PriorityQueue[T any] struct {
	instrumented
	raw *rawcol.Heap[T]
}

// NewPriorityQueue returns an empty PriorityQueue ordered by less.
func NewPriorityQueue[T any](det Detector, less func(a, b T) bool) *PriorityQueue[T] {
	return &PriorityQueue[T]{
		instrumented: newInstrumented(det, "PriorityQueue"),
		raw:          rawcol.NewHeap[T](less),
	}
}

// Peek returns the minimum element without removing it. Read API.
func (q *PriorityQueue[T]) Peek() (T, bool) {
	q.onCall("Peek", Read)
	return q.raw.Peek()
}

// Count returns the number of elements. Read API.
func (q *PriorityQueue[T]) Count() int {
	q.onCall("Count", Read)
	return q.raw.Len()
}

// ToSlice returns the elements in heap order. Read API.
func (q *PriorityQueue[T]) ToSlice() []T {
	q.onCall("ToSlice", Read)
	return q.raw.Snapshot()
}

// Enqueue inserts v. Write API.
func (q *PriorityQueue[T]) Enqueue(v T) {
	q.onCall("Enqueue", Write)
	q.raw.Push(v)
}

// Dequeue removes and returns the minimum element, panicking when empty.
// Write API.
func (q *PriorityQueue[T]) Dequeue() T {
	q.onCall("Dequeue", Write)
	return q.raw.Pop()
}

// Clear removes all elements. Write API.
func (q *PriorityQueue[T]) Clear() {
	q.onCall("Clear", Write)
	q.raw.Clear()
}

// SortedSet is the instrumented ordered set (.NET SortedSet<T>).
type SortedSet[T any] struct {
	instrumented
	raw *rawcol.SortedMap[T, struct{}]
}

// NewSortedSet returns an empty SortedSet ordered by less.
func NewSortedSet[T any](det Detector, less func(a, b T) bool) *SortedSet[T] {
	return &SortedSet[T]{
		instrumented: newInstrumented(det, "SortedSet"),
		raw:          rawcol.NewSortedMap[T, struct{}](less),
	}
}

// Contains reports membership. Read API.
func (s *SortedSet[T]) Contains(v T) bool {
	s.onCall("Contains", Read)
	return s.raw.Contains(v)
}

// Count returns the number of elements. Read API.
func (s *SortedSet[T]) Count() int {
	s.onCall("Count", Read)
	return s.raw.Len()
}

// Min returns the smallest element. Read API.
func (s *SortedSet[T]) Min() (T, bool) {
	s.onCall("Min", Read)
	k, _, ok := s.raw.Min()
	return k, ok
}

// Max returns the largest element. Read API.
func (s *SortedSet[T]) Max() (T, bool) {
	s.onCall("Max", Read)
	k, _, ok := s.raw.Max()
	return k, ok
}

// ToSlice returns the elements in order. Read API.
func (s *SortedSet[T]) ToSlice() []T {
	s.onCall("ToSlice", Read)
	return s.raw.Keys()
}

// Add inserts v, reporting whether it was newly added. Write API.
func (s *SortedSet[T]) Add(v T) bool {
	s.onCall("Add", Write)
	if s.raw.Contains(v) {
		return false
	}
	s.raw.Set(v, struct{}{})
	return true
}

// Remove deletes v, reporting whether it was present. Write API.
func (s *SortedSet[T]) Remove(v T) bool {
	s.onCall("Remove", Write)
	return s.raw.Delete(v)
}

// Clear removes all elements. Write API.
func (s *SortedSet[T]) Clear() {
	s.onCall("Clear", Write)
	s.raw.Clear()
}

// BitArray is the instrumented fixed-size bit vector (.NET BitArray).
type BitArray struct {
	instrumented
	raw *rawcol.Bits
}

// NewBitArray returns a BitArray of the given size, all false.
func NewBitArray(det Detector, size int) *BitArray {
	return &BitArray{
		instrumented: newInstrumented(det, "BitArray"),
		raw:          rawcol.NewBits(size),
	}
}

// Get returns bit i, panicking out of range. Read API.
func (b *BitArray) Get(i int) bool {
	b.onCall("Get", Read)
	return b.raw.Get(i)
}

// Size returns the number of bits. Read API.
func (b *BitArray) Size() int {
	b.onCall("Size", Read)
	return b.raw.Size()
}

// OnesCount returns the number of set bits. Read API.
func (b *BitArray) OnesCount() int {
	b.onCall("OnesCount", Read)
	return b.raw.OnesCount()
}

// Set assigns bit i. Write API.
func (b *BitArray) Set(i int, v bool) {
	b.onCall("Set", Write)
	b.raw.Set(i, v)
}

// Flip inverts bit i, returning the new value. Write API.
func (b *BitArray) Flip(i int) bool {
	b.onCall("Flip", Write)
	return b.raw.Flip(i)
}

// SetAll assigns every bit. Write API.
func (b *BitArray) SetAll(v bool) {
	b.onCall("SetAll", Write)
	b.raw.SetAll(v)
}
