package collections

import (
	"strings"

	"repro/internal/rawcol"
)

// StringBuilder is the instrumented text accumulator (.NET StringBuilder),
// the class behind the connection-string-buffer singleton bug of Table 4.
type StringBuilder struct {
	instrumented
	raw *rawcol.Array[string]
}

// NewStringBuilder returns an empty StringBuilder reporting to det.
func NewStringBuilder(det Detector) *StringBuilder {
	return &StringBuilder{
		instrumented: newInstrumented(det, "StringBuilder"),
		raw:          rawcol.NewArray[string](),
	}
}

// String concatenates the accumulated text. Read API.
func (b *StringBuilder) String() string {
	b.onCall("String", Read)
	return strings.Join(b.raw.Snapshot(), "")
}

// Len returns the accumulated length in bytes. Read API.
func (b *StringBuilder) Len() int {
	b.onCall("Len", Read)
	n := 0
	for _, s := range b.raw.Snapshot() {
		n += len(s)
	}
	return n
}

// Append adds s. Write API.
func (b *StringBuilder) Append(s string) {
	b.onCall("Append", Write)
	b.raw.Append(s)
}

// AppendLine adds s plus a newline. Write API.
func (b *StringBuilder) AppendLine(s string) {
	b.onCall("AppendLine", Write)
	b.raw.Append(s + "\n")
}

// Reset clears the accumulated text. Write API.
func (b *StringBuilder) Reset() {
	b.onCall("Reset", Write)
	b.raw.Clear()
}
