package collections

import "repro/internal/rawcol"

// List is the instrumented dynamic array, the analogue of .NET's List<T>
// (37% of the paper's bugs). Index errors panic like .NET's
// ArgumentOutOfRangeException — the typical crash when a concurrent
// RemoveAt races a Get.
type List[T comparable] struct {
	instrumented
	raw *rawcol.Array[T]
}

// NewList returns an empty List reporting to det.
func NewList[T comparable](det Detector) *List[T] {
	return &List[T]{
		instrumented: newInstrumented(det, "List"),
		raw:          rawcol.NewArray[T](),
	}
}

// Get returns the element at index i. Read API.
func (l *List[T]) Get(i int) T {
	l.onCall("Get", Read)
	return l.raw.Get(i)
}

// Count returns the number of elements. Read API.
func (l *List[T]) Count() int {
	l.onCall("Count", Read)
	return l.raw.Len()
}

// Contains reports whether v is present. Read API.
func (l *List[T]) Contains(v T) bool {
	l.onCall("Contains", Read)
	return l.raw.IndexFunc(func(x T) bool { return x == v }) >= 0
}

// IndexOf returns the index of v or -1. Read API.
func (l *List[T]) IndexOf(v T) int {
	l.onCall("IndexOf", Read)
	return l.raw.IndexFunc(func(x T) bool { return x == v })
}

// ForEach iterates the elements, panicking on concurrent modification.
// Read API.
func (l *List[T]) ForEach(fn func(int, T) bool) {
	l.onCall("ForEach", Read)
	l.raw.Range(fn)
}

// ToSlice returns a snapshot copy. Read API.
func (l *List[T]) ToSlice() []T {
	l.onCall("ToSlice", Read)
	return l.raw.Snapshot()
}

// Add appends v. Write API.
func (l *List[T]) Add(v T) {
	l.onCall("Add", Write)
	l.raw.Append(v)
}

// Insert places v at index i. Write API.
func (l *List[T]) Insert(i int, v T) {
	l.onCall("Insert", Write)
	l.raw.Insert(i, v)
}

// Set replaces the element at index i. Write API.
func (l *List[T]) Set(i int, v T) {
	l.onCall("Set", Write)
	l.raw.Set(i, v)
}

// RemoveAt deletes the element at index i. Write API.
func (l *List[T]) RemoveAt(i int) {
	l.onCall("RemoveAt", Write)
	l.raw.RemoveAt(i)
}

// Remove deletes the first occurrence of v, reporting success. Write API.
func (l *List[T]) Remove(v T) bool {
	l.onCall("Remove", Write)
	return l.raw.RemoveFunc(func(x T) bool { return x == v })
}

// IndexFunc returns the index of the first element matching pred, or -1.
// Read API.
func (l *List[T]) IndexFunc(pred func(T) bool) int {
	l.onCall("IndexFunc", Read)
	return l.raw.IndexFunc(pred)
}

// RemoveFunc deletes the first element matching pred, reporting success.
// Write API.
func (l *List[T]) RemoveFunc(pred func(T) bool) bool {
	l.onCall("RemoveFunc", Write)
	return l.raw.RemoveFunc(pred)
}

// Clear removes all elements. Write API.
func (l *List[T]) Clear() {
	l.onCall("Clear", Write)
	l.raw.Clear()
}

// Sort orders the elements by less. Two unsynchronized concurrent Sorts are
// the production-incident bug of §5.6. Write API.
func (l *List[T]) Sort(less func(a, b T) bool) {
	l.onCall("Sort", Write)
	l.raw.Sort(less)
}
