package collections

import "repro/internal/rawcol"

// SortedDictionary is the instrumented ordered map (.NET
// SortedDictionary<TKey,TValue>).
type SortedDictionary[K any, V any] struct {
	instrumented
	raw *rawcol.SortedMap[K, V]
}

// NewSortedDictionary returns an empty SortedDictionary ordered by less.
func NewSortedDictionary[K any, V any](det Detector, less func(a, b K) bool) *SortedDictionary[K, V] {
	return &SortedDictionary[K, V]{
		instrumented: newInstrumented(det, "SortedDictionary"),
		raw:          rawcol.NewSortedMap[K, V](less),
	}
}

// ContainsKey reports whether k is present. Read API.
func (d *SortedDictionary[K, V]) ContainsKey(k K) bool {
	d.onCall("ContainsKey", Read)
	return d.raw.Contains(k)
}

// TryGetValue returns the value for k and whether it was present. Read API.
func (d *SortedDictionary[K, V]) TryGetValue(k K) (V, bool) {
	d.onCall("TryGetValue", Read)
	return d.raw.Get(k)
}

// Count returns the number of entries. Read API.
func (d *SortedDictionary[K, V]) Count() int {
	d.onCall("Count", Read)
	return d.raw.Len()
}

// Keys returns the keys in order. Read API.
func (d *SortedDictionary[K, V]) Keys() []K {
	d.onCall("Keys", Read)
	return d.raw.Keys()
}

// Min returns the smallest key and its value. Read API.
func (d *SortedDictionary[K, V]) Min() (K, V, bool) {
	d.onCall("Min", Read)
	return d.raw.Min()
}

// Add inserts k→v, panicking on a duplicate key. Write API.
func (d *SortedDictionary[K, V]) Add(k K, v V) {
	d.onCall("Add", Write)
	d.raw.Add(k, v)
}

// Set inserts or replaces k→v. Write API.
func (d *SortedDictionary[K, V]) Set(k K, v V) {
	d.onCall("Set", Write)
	d.raw.Set(k, v)
}

// Remove deletes k, reporting whether it was present. Write API.
func (d *SortedDictionary[K, V]) Remove(k K) bool {
	d.onCall("Remove", Write)
	return d.raw.Delete(k)
}

// Clear removes all entries. Write API.
func (d *SortedDictionary[K, V]) Clear() {
	d.onCall("Clear", Write)
	d.raw.Clear()
}
