// Package collections provides the instrumented thread-unsafe containers —
// the Go analogue of the 14 .NET classes TSVD checks (§4). Every public
// method funnels through the detector's OnCall with the (thread, object,
// call-site) triple before executing the underlying rawcol operation, which
// is exactly the proxy-call interposition the TSVD instrumenter performs by
// binary rewriting (Figure 7).
//
// A nil detector yields an uninstrumented container with identical
// behaviour; the harness uses that as the overhead baseline.
package collections

import (
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/sites"
)

// Detector is the runtime interface containers report to; see core.Detector.
type Detector = core.Detector

// instrumented is the common prologue state every container embeds. The
// detector's site registry is cached at construction so the prologue interns
// its site directly — after the first call per call site that is one
// lock-free probe, with no strings materialized on the access itself.
type instrumented struct {
	det   core.Detector
	reg   *sites.Registry
	id    ids.ObjectID
	class string
}

func newInstrumented(det core.Detector, class string) instrumented {
	b := instrumented{det: det, id: ids.NewObjectID(), class: class}
	if det != nil {
		b.reg = det.Sites()
	}
	return b
}

// onCall reports the imminent API call to the detector. It may block the
// calling goroutine inside an injected delay. The op id is the call site of
// the public method invoking onCall, i.e. the user's code.
func (b *instrumented) onCall(method string, kind core.Kind) {
	if b.det == nil {
		return
	}
	op := ids.CallerOp(1)
	b.det.OnCall(core.Access{
		Thread: ids.CurrentThreadID(),
		Obj:    b.id,
		Op:     op,
		Site:   b.reg.ForCall(op, b.class, method, kind == core.KindWrite),
		Kind:   kind,
	})
}

// ObjectID exposes the container's identity token (used by tests and the
// harness to correlate reports).
func (b *instrumented) ObjectID() ids.ObjectID { return b.id }

// APIKind mirrors core.Kind for the registry.
type APIKind = core.Kind

// API registry constants.
const (
	Read  = core.KindRead
	Write = core.KindWrite
)

// APIList describes one class's thread-safety contract: method name → kind.
type APIList map[string]APIKind

// Registry returns the complete thread-unsafe API list the instrumenter and
// documentation ship with — the analogue of the paper's manually classified
// 59 write-APIs and 64 read-APIs over 14 classes.
func Registry() map[string]APIList {
	return map[string]APIList{
		"Dictionary": {
			"ContainsKey": Read, "TryGetValue": Read, "Get": Read,
			"Count": Read, "Keys": Read, "Values": Read, "ForEach": Read,
			"Add": Write, "Set": Write, "Remove": Write, "Clear": Write,
			"GetOrAdd": Write,
		},
		"List": {
			"Get": Read, "Count": Read, "Contains": Read, "IndexOf": Read,
			"IndexFunc": Read, "ForEach": Read, "ToSlice": Read,
			"Add": Write, "Insert": Write, "Set": Write, "RemoveAt": Write,
			"Remove": Write, "RemoveFunc": Write, "Clear": Write, "Sort": Write,
		},
		"HashSet": {
			"Contains": Read, "Count": Read, "ToSlice": Read,
			"Add": Write, "Remove": Write, "Clear": Write, "UnionWith": Write,
		},
		"Queue": {
			"Peek": Read, "Count": Read, "ToSlice": Read,
			"Enqueue": Write, "Dequeue": Write, "Clear": Write,
		},
		"Stack": {
			"Peek": Read, "Count": Read, "ToSlice": Read,
			"Push": Write, "Pop": Write, "Clear": Write,
		},
		"SortedDictionary": {
			"ContainsKey": Read, "TryGetValue": Read, "Count": Read,
			"Keys": Read, "Min": Read,
			"Add": Write, "Set": Write, "Remove": Write, "Clear": Write,
		},
		"LinkedList": {
			"First": Read, "Last": Read, "Count": Read, "ToSlice": Read,
			"Contains": Read,
			"AddFirst": Write, "AddLast": Write, "RemoveFirst": Write,
			"RemoveLast": Write, "Remove": Write, "RemoveFunc": Write,
			"Clear": Write,
		},
		"StringBuilder": {
			"String": Read, "Len": Read,
			"Append": Write, "AppendLine": Write, "Reset": Write,
		},
		"Counter": {
			"Value":     Read,
			"Increment": Write, "Decrement": Write, "AddDelta": Write,
			"SetValue": Write,
		},
		"MultiMap": {
			"Get": Read, "ContainsKey": Read, "Count": Read,
			"Add": Write, "RemoveKey": Write, "Clear": Write,
		},
		"PriorityQueue": {
			"Peek": Read, "Count": Read, "ToSlice": Read,
			"Enqueue": Write, "Dequeue": Write, "Clear": Write,
		},
		"SortedSet": {
			"Contains": Read, "Count": Read, "Min": Read, "Max": Read,
			"ToSlice": Read,
			"Add":     Write, "Remove": Write, "Clear": Write,
		},
		"BitArray": {
			"Get": Read, "Size": Read, "OnesCount": Read,
			"Set": Write, "Flip": Write, "SetAll": Write,
		},
	}
}

// RegistryCounts reports the number of read and write APIs across classes.
func RegistryCounts() (classes, reads, writes int) {
	for _, apis := range Registry() {
		classes++
		for _, kind := range apis {
			if kind == Write {
				writes++
			} else {
				reads++
			}
		}
	}
	return
}
