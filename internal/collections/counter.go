package collections

import "repro/internal/rawcol"

// Counter is an instrumented scalar counter — the unprotected gauge of the
// statsd scenario in Table 4. Increment and Decrement are read-modify-write
// sequences over the raw cell, so concurrent calls lose updates exactly like
// an unprotected field.
type Counter struct {
	instrumented
	raw *rawcol.Cell[int64]
}

// NewCounter returns a Counter starting at zero.
func NewCounter(det Detector) *Counter {
	return &Counter{
		instrumented: newInstrumented(det, "Counter"),
		raw:          rawcol.NewCell[int64](0),
	}
}

// Value returns the current count. Read API.
func (c *Counter) Value() int64 {
	c.onCall("Value", Read)
	return c.raw.Get()
}

// Increment adds one. Write API.
func (c *Counter) Increment() {
	c.onCall("Increment", Write)
	c.raw.Set(c.raw.Get() + 1)
}

// Decrement subtracts one. Write API.
func (c *Counter) Decrement() {
	c.onCall("Decrement", Write)
	c.raw.Set(c.raw.Get() - 1)
}

// AddDelta adds d. Write API.
func (c *Counter) AddDelta(d int64) {
	c.onCall("AddDelta", Write)
	c.raw.Set(c.raw.Get() + d)
}

// SetValue replaces the count. Write API.
func (c *Counter) SetValue(v int64) {
	c.onCall("SetValue", Write)
	c.raw.Set(v)
}

// MultiMap is an instrumented map from key to a list of values (.NET's
// common Dictionary<K, List<V>> composite, e.g. the message-broker
// subscription table of Table 4).
type MultiMap[K comparable, V any] struct {
	instrumented
	raw *rawcol.Map[K, *rawcol.Array[V]]
}

// NewMultiMap returns an empty MultiMap reporting to det.
func NewMultiMap[K comparable, V any](det Detector) *MultiMap[K, V] {
	return &MultiMap[K, V]{
		instrumented: newInstrumented(det, "MultiMap"),
		raw:          rawcol.NewMap[K, *rawcol.Array[V]](),
	}
}

// Get returns a snapshot of the values for k. Read API.
func (m *MultiMap[K, V]) Get(k K) []V {
	m.onCall("Get", Read)
	if a, ok := m.raw.Get(k); ok {
		return a.Snapshot()
	}
	return nil
}

// ContainsKey reports whether k has any values. Read API.
func (m *MultiMap[K, V]) ContainsKey(k K) bool {
	m.onCall("ContainsKey", Read)
	return m.raw.Contains(k)
}

// Count returns the number of distinct keys. Read API.
func (m *MultiMap[K, V]) Count() int {
	m.onCall("Count", Read)
	return m.raw.Len()
}

// Add appends v under k. Write API.
func (m *MultiMap[K, V]) Add(k K, v V) {
	m.onCall("Add", Write)
	a, ok := m.raw.Get(k)
	if !ok {
		a = rawcol.NewArray[V]()
		m.raw.Set(k, a)
	}
	a.Append(v)
}

// RemoveKey deletes k and its values. Write API.
func (m *MultiMap[K, V]) RemoveKey(k K) bool {
	m.onCall("RemoveKey", Write)
	return m.raw.Delete(k)
}

// Clear removes all keys. Write API.
func (m *MultiMap[K, V]) Clear() {
	m.onCall("Clear", Write)
	m.raw.Clear()
}
