package collections

import "repro/internal/rawcol"

// HashSet is the instrumented set, the analogue of .NET's HashSet<T>.
type HashSet[T comparable] struct {
	instrumented
	raw *rawcol.Map[T, struct{}]
}

// NewHashSet returns an empty HashSet reporting to det.
func NewHashSet[T comparable](det Detector) *HashSet[T] {
	return &HashSet[T]{
		instrumented: newInstrumented(det, "HashSet"),
		raw:          rawcol.NewMap[T, struct{}](),
	}
}

// Contains reports membership. Read API.
func (s *HashSet[T]) Contains(v T) bool {
	s.onCall("Contains", Read)
	return s.raw.Contains(v)
}

// Count returns the number of elements. Read API.
func (s *HashSet[T]) Count() int {
	s.onCall("Count", Read)
	return s.raw.Len()
}

// ToSlice returns a snapshot of the elements. Read API.
func (s *HashSet[T]) ToSlice() []T {
	s.onCall("ToSlice", Read)
	return s.raw.Keys()
}

// Add inserts v, reporting whether it was newly added. Write API.
func (s *HashSet[T]) Add(v T) bool {
	s.onCall("Add", Write)
	_, existed := s.raw.GetOrAdd(v, struct{}{})
	return !existed
}

// Remove deletes v, reporting whether it was present. Write API.
func (s *HashSet[T]) Remove(v T) bool {
	s.onCall("Remove", Write)
	return s.raw.Delete(v)
}

// Clear removes all elements. Write API.
func (s *HashSet[T]) Clear() {
	s.onCall("Clear", Write)
	s.raw.Clear()
}

// UnionWith inserts every element of vs. Write API.
func (s *HashSet[T]) UnionWith(vs []T) {
	s.onCall("UnionWith", Write)
	for _, v := range vs {
		s.raw.GetOrAdd(v, struct{}{})
	}
}
