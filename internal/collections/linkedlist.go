package collections

import "repro/internal/rawcol"

// LinkedList is the instrumented doubly-linked list (.NET LinkedList<T>).
type LinkedList[T comparable] struct {
	instrumented
	raw *rawcol.Chain[T]
}

// NewLinkedList returns an empty LinkedList reporting to det.
func NewLinkedList[T comparable](det Detector) *LinkedList[T] {
	return &LinkedList[T]{
		instrumented: newInstrumented(det, "LinkedList"),
		raw:          rawcol.NewChain[T](),
	}
}

// First returns the head element. Read API.
func (l *LinkedList[T]) First() (T, bool) {
	l.onCall("First", Read)
	return l.raw.PeekFront()
}

// Last returns the tail element. Read API.
func (l *LinkedList[T]) Last() (T, bool) {
	l.onCall("Last", Read)
	return l.raw.PeekBack()
}

// Count returns the number of elements. Read API.
func (l *LinkedList[T]) Count() int {
	l.onCall("Count", Read)
	return l.raw.Len()
}

// ToSlice returns a snapshot head-to-tail. Read API.
func (l *LinkedList[T]) ToSlice() []T {
	l.onCall("ToSlice", Read)
	return l.raw.Snapshot()
}

// Contains reports whether v is present. Read API.
func (l *LinkedList[T]) Contains(v T) bool {
	l.onCall("Contains", Read)
	for _, x := range l.raw.Snapshot() {
		if x == v {
			return true
		}
	}
	return false
}

// AddFirst prepends v. Write API.
func (l *LinkedList[T]) AddFirst(v T) {
	l.onCall("AddFirst", Write)
	l.raw.PushFront(v)
}

// AddLast appends v. Write API.
func (l *LinkedList[T]) AddLast(v T) {
	l.onCall("AddLast", Write)
	l.raw.PushBack(v)
}

// RemoveFirst removes the head, panicking when empty. Write API.
func (l *LinkedList[T]) RemoveFirst() T {
	l.onCall("RemoveFirst", Write)
	return l.raw.PopFront()
}

// RemoveLast removes the tail, panicking when empty. Write API.
func (l *LinkedList[T]) RemoveLast() T {
	l.onCall("RemoveLast", Write)
	return l.raw.PopBack()
}

// Remove deletes the first occurrence of v, reporting success. Write API.
func (l *LinkedList[T]) Remove(v T) bool {
	l.onCall("Remove", Write)
	return l.raw.RemoveFunc(func(x T) bool { return x == v })
}

// RemoveFunc deletes the first element matching pred, reporting success.
// Write API.
func (l *LinkedList[T]) RemoveFunc(pred func(T) bool) bool {
	l.onCall("RemoveFunc", Write)
	return l.raw.RemoveFunc(pred)
}

// Clear removes all elements. Write API.
func (l *LinkedList[T]) Clear() {
	l.onCall("Clear", Write)
	l.raw.Clear()
}
