package collections

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
)

// TestEveryContainerClassDetectable plants a write-write race in each of
// the ten container classes and requires TSVD to catch it — the per-class
// analogue of the paper's 14-class API list all being live.
func TestEveryContainerClassDetectable(t *testing.T) {
	type racer struct {
		name  string
		setup func(det core.Detector) (writeA func(i int), writeB func(i int))
	}
	racers := []racer{
		{"Dictionary", func(det core.Detector) (func(int), func(int)) {
			d := NewDictionary[int, int](det)
			return func(i int) { d.Set(i, i) }, func(i int) { d.Remove(i) }
		}},
		{"List", func(det core.Detector) (func(int), func(int)) {
			l := NewList[int](det)
			return func(i int) { l.Add(i) }, func(i int) { l.Clear() }
		}},
		{"HashSet", func(det core.Detector) (func(int), func(int)) {
			s := NewHashSet[int](det)
			return func(i int) { s.Add(i) }, func(i int) { s.Remove(i) }
		}},
		{"Queue", func(det core.Detector) (func(int), func(int)) {
			q := NewQueue[int](det)
			return func(i int) { q.Enqueue(i) }, func(i int) { q.Clear() }
		}},
		{"Stack", func(det core.Detector) (func(int), func(int)) {
			s := NewStack[int](det)
			return func(i int) { s.Push(i) }, func(i int) { s.Clear() }
		}},
		{"SortedDictionary", func(det core.Detector) (func(int), func(int)) {
			d := NewSortedDictionary[int, int](det, func(a, b int) bool { return a < b })
			return func(i int) { d.Set(i, i) }, func(i int) { d.Remove(i) }
		}},
		{"LinkedList", func(det core.Detector) (func(int), func(int)) {
			l := NewLinkedList[int](det)
			return func(i int) { l.AddLast(i) }, func(i int) { l.Clear() }
		}},
		{"StringBuilder", func(det core.Detector) (func(int), func(int)) {
			b := NewStringBuilder(det)
			return func(i int) { b.Append("x") }, func(i int) { b.Reset() }
		}},
		{"Counter", func(det core.Detector) (func(int), func(int)) {
			c := NewCounter(det)
			return func(i int) { c.Increment() }, func(i int) { c.SetValue(int64(i)) }
		}},
		{"MultiMap", func(det core.Detector) (func(int), func(int)) {
			m := NewMultiMap[int, int](det)
			return func(i int) { m.Add(i%3, i) }, func(i int) { m.RemoveKey(i % 3) }
		}},
		{"PriorityQueue", func(det core.Detector) (func(int), func(int)) {
			q := NewPriorityQueue[int](det, func(a, b int) bool { return a < b })
			return func(i int) { q.Enqueue(i) }, func(i int) { q.Clear() }
		}},
		{"SortedSet", func(det core.Detector) (func(int), func(int)) {
			s := NewSortedSet[int](det, func(a, b int) bool { return a < b })
			return func(i int) { s.Add(i) }, func(i int) { s.Remove(i) }
		}},
		{"BitArray", func(det core.Detector) (func(int), func(int)) {
			b := NewBitArray(det, 64)
			return func(i int) { b.Set(i%64, true) }, func(i int) { b.SetAll(false) }
		}},
	}
	for _, rc := range racers {
		rc := rc
		t.Run(rc.name, func(t *testing.T) {
			t.Parallel()
			det := newDet(t, config.AlgoTSVD)
			writeA, writeB := rc.setup(det)
			done1 := make(chan struct{})
			done2 := make(chan struct{})
			go func() {
				defer close(done1)
				for i := 0; i < 150; i++ {
					func() {
						defer func() { recover() }()
						writeA(i)
					}()
					time.Sleep(time.Millisecond)
				}
			}()
			go func() {
				defer close(done2)
				for i := 0; i < 150; i++ {
					func() {
						defer func() { recover() }()
						writeB(i)
					}()
					time.Sleep(time.Millisecond)
				}
			}()
			<-done1
			<-done2
			if det.Reports().UniqueBugs() == 0 {
				t.Fatalf("%s: planted write-write race not detected", rc.name)
			}
			v := det.Reports().Violations()[0]
			if v.Trapped.Class != rc.name && v.Conflicting.Class != rc.name {
				t.Fatalf("%s: report names class %q/%q",
					rc.name, v.Trapped.Class, v.Conflicting.Class)
			}
		})
	}
}

// TestReadersDoNotConflict: concurrent read APIs on every class are within
// contract and must never be reported.
func TestReadersDoNotConflict(t *testing.T) {
	det := newDet(t, config.AlgoTSVD)
	d := NewDictionary[int, int](det)
	l := NewList[int](det)
	s := NewHashSet[int](det)
	d.Set(1, 1)
	l.Add(1)
	s.Add(1)

	read := func() {
		for i := 0; i < 200; i++ {
			d.ContainsKey(1)
			d.TryGetValue(1)
			d.Count()
			l.Get(0)
			l.Contains(1)
			l.Count()
			s.Contains(1)
			s.Count()
		}
	}
	done1 := make(chan struct{})
	done2 := make(chan struct{})
	go func() { defer close(done1); read() }()
	go func() { defer close(done2); read() }()
	<-done1
	<-done2
	if n := det.Reports().UniqueBugs(); n != 0 {
		t.Fatalf("concurrent readers reported as %d bugs", n)
	}
}

// TestViolationManifestsAsContractPanic: when TSVD aligns a duplicate-key
// Add with another Add of the same key, the underlying container panics the
// way .NET throws — the violation's visible symptom — while the detector
// reports the pair.
func TestViolationManifestsAsContractPanic(t *testing.T) {
	det := newDet(t, config.AlgoTSVD)
	d := NewDictionary[string, int](det)
	var panics atomic.Int64
	done1 := make(chan struct{})
	done2 := make(chan struct{})
	addSame := func(done chan struct{}) {
		defer close(done)
		for i := 0; i < 200; i++ {
			func() {
				defer func() {
					if recover() != nil {
						panics.Add(1)
					}
				}()
				d.Add("same-key", i)
			}()
			d.Remove("same-key")
			time.Sleep(time.Millisecond)
		}
	}
	go addSame(done1)
	go func() {
		defer close(done2)
		for i := 0; i < 200; i++ {
			func() {
				defer func() {
					if recover() != nil {
						panics.Add(1)
					}
				}()
				d.Add("same-key", i)
			}()
			time.Sleep(time.Millisecond)
		}
	}()
	<-done1
	<-done2
	if det.Reports().UniqueBugs() == 0 {
		t.Fatal("same-key Add race not detected")
	}
	t.Logf("observed %d contract panics alongside %d reported bugs",
		panics.Load(), det.Reports().UniqueBugs())
}
