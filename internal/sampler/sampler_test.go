package sampler

import (
	"testing"
	"time"

	"repro/internal/ids"
)

// admitRate measures the empirical admission rate of one site over n trials.
func admitRate(s *Sampler, siteID ids.SiteID, n int) float64 {
	state := SeedRand(1, 7)
	admitted := 0
	for i := 0; i < n; i++ {
		if s.Admit(siteID, Rand(&state)) {
			admitted++
		}
	}
	return float64(admitted) / float64(n)
}

func TestAdmitExtremes(t *testing.T) {
	always := New(Params{BaseProbability: 1})
	if got := admitRate(always, 1, 1000); got != 1 {
		t.Fatalf("p=1 admitted %.3f, want every call", got)
	}
	never := New(Params{BaseProbability: 0})
	if got := admitRate(never, 1, 1000); got != 0 {
		t.Fatalf("p=0 admitted %.3f, want none", got)
	}
}

func TestAdmitRateTracksProbability(t *testing.T) {
	s := New(Params{BaseProbability: 0.25})
	got := admitRate(s, 1, 100000)
	if got < 0.22 || got > 0.28 {
		t.Fatalf("p=0.25 admitted %.4f, want ~0.25", got)
	}
}

func TestTickDisabledWithoutTarget(t *testing.T) {
	s := New(Params{BaseProbability: 0.5, Interval: time.Second})
	s.ObserveCost(10 * time.Second)
	if _, ok := s.Tick(time.Minute); ok {
		t.Fatal("Tick ran with OverheadTarget=0; fixed-probability mode must not adjust")
	}
	if p := s.Probability(); p != 0.5 {
		t.Fatalf("probability drifted to %v in fixed mode", p)
	}
}

func TestThrottleDownOnHighOverhead(t *testing.T) {
	s := New(Params{BaseProbability: 1, OverheadTarget: 0.01, Interval: time.Second})
	// 50% observed overhead against a 1% target: each tick must halve the
	// probability (the per-tick step clamp), monotonically toward the floor.
	prev := s.Probability()
	now := time.Duration(0)
	for i := 0; i < 20; i++ {
		now += time.Second
		s.ObserveCost(500 * time.Millisecond)
		adj, ok := s.Tick(now)
		if !ok {
			t.Fatalf("tick %d did not run", i)
		}
		if adj.Probability > prev {
			t.Fatalf("tick %d raised probability %v -> %v under overload", i, prev, adj.Probability)
		}
		prev = adj.Probability
	}
	if prev > 0.01 {
		t.Fatalf("after sustained overload probability is %v, want heavily throttled", prev)
	}
}

func TestRecoveryOnLowOverhead(t *testing.T) {
	s := New(Params{BaseProbability: 1, OverheadTarget: 0.01, Interval: time.Second})
	// Drive it down first.
	now := time.Duration(0)
	for i := 0; i < 10; i++ {
		now += time.Second
		s.ObserveCost(500 * time.Millisecond)
		s.Tick(now)
	}
	low := s.Probability()
	// Then observe (almost) no overhead: the controller must recover, at
	// most doubling per tick. The EWMA drains over the first few ticks, so
	// only enforce monotonic recovery once it has (8 ticks at alpha=0.5
	// shrink the smoothed estimate by 256×).
	prev := low
	for i := 0; i < 40; i++ {
		now += time.Second
		s.ObserveCost(time.Microsecond)
		adj, ok := s.Tick(now)
		if !ok {
			t.Fatalf("recovery tick %d did not run", i)
		}
		if i >= 8 && adj.Probability < prev {
			t.Fatalf("tick %d lowered probability %v -> %v while idle", i, prev, adj.Probability)
		}
		if adj.Probability > prev*maxStepRatio*1.0001 {
			t.Fatalf("tick %d jumped %v -> %v, more than the step clamp allows", i, prev, adj.Probability)
		}
		prev = adj.Probability
	}
	if prev <= low {
		t.Fatalf("probability never recovered from %v", low)
	}
}

func TestTickRespectsInterval(t *testing.T) {
	s := New(Params{BaseProbability: 1, OverheadTarget: 0.01, Interval: time.Second})
	if _, ok := s.Tick(500 * time.Millisecond); ok {
		t.Fatal("tick ran before the interval elapsed")
	}
	if _, ok := s.Tick(time.Second); !ok {
		t.Fatal("tick refused to run after the interval elapsed")
	}
	if _, ok := s.Tick(1500 * time.Millisecond); ok {
		t.Fatal("second tick ran only half an interval after the first")
	}
}

func TestHardBudgetCapsAdmission(t *testing.T) {
	s := New(Params{BaseProbability: 1, OverheadTarget: 0.01, Interval: time.Second})
	state := SeedRand(1, 1)
	if !s.Admit(1, Rand(&state)) {
		t.Fatal("fresh sampler at p=1 refused admission")
	}
	// The interval budget is 1% of 1s = 10ms; one 20ms charge exhausts it.
	s.ObserveCost(20 * time.Millisecond)
	if s.Admit(1, Rand(&state)) {
		t.Fatal("admission continued after the interval budget was exhausted")
	}
	adj, ok := s.Tick(time.Second)
	if !ok {
		t.Fatal("tick did not run")
	}
	if !adj.Capped {
		t.Fatal("adjustment did not report the exhausted budget")
	}
	if !s.Admit(1, Rand(&state)) && s.Probability() > 0.9 {
		t.Fatal("admission still suspended after the tick reset the budget")
	}
}

func TestHotSiteFairness(t *testing.T) {
	s := New(Params{BaseProbability: 1, OverheadTarget: 0.5, Interval: time.Second})
	state := SeedRand(1, 1)
	// Site 1 is 100× hotter than site 2 during the interval.
	for i := 0; i < 1000; i++ {
		s.Admit(1, Rand(&state))
	}
	for i := 0; i < 10; i++ {
		s.Admit(2, Rand(&state))
	}
	// Observed ≈ target so the global probability holds steady.
	s.ObserveCost(500 * time.Millisecond)
	if _, ok := s.Tick(time.Second); !ok {
		t.Fatal("tick did not run")
	}
	hot := admitRate(s, 1, 100000)
	cold := admitRate(s, 2, 100000)
	if hot >= cold {
		t.Fatalf("hot site admitted %.4f >= cold site %.4f; fairness should lower hot sites", hot, cold)
	}
	if cold < 0.9 {
		t.Fatalf("cold site admitted %.4f, want near the global probability", cold)
	}
}

func TestSnapshotAccounting(t *testing.T) {
	s := New(Params{BaseProbability: 0.5, OverheadTarget: 0.01, Interval: time.Second})
	state := SeedRand(3, 3)
	s.Admit(1, Rand(&state))
	s.Admit(2, Rand(&state))
	s.ObserveCost(3 * time.Millisecond)
	s.ObserveDelay(2 * time.Millisecond)
	s.Tick(time.Second)
	snap := s.Snapshot()
	if snap.Sites != 2 {
		t.Fatalf("Sites = %d, want 2", snap.Sites)
	}
	if snap.Spent != 5*time.Millisecond {
		t.Fatalf("Spent = %v, want 5ms", snap.Spent)
	}
	if snap.DelayTime != 2*time.Millisecond {
		t.Fatalf("DelayTime = %v, want 2ms", snap.DelayTime)
	}
	if snap.Ticks != 1 {
		t.Fatalf("Ticks = %d, want 1", snap.Ticks)
	}
}

func TestSeedRandNonzeroAndDistinct(t *testing.T) {
	if SeedRand(0, 0) == 0 {
		t.Fatal("SeedRand(0,0) returned a zero xorshift state")
	}
	if SeedRand(1, 1) == SeedRand(1, 2) {
		t.Fatal("distinct threads share a seed")
	}
	a, b := SeedRand(1, 1), SeedRand(1, 1)
	x, y := Rand(&a), Rand(&b)
	if x != y {
		t.Fatal("identical seeds diverged")
	}
}
