// Package sampler implements the production sampling tier in front of the
// detector (docs/SAMPLING.md): per-site probabilistic admission with an
// adaptive overhead budget.
//
// The detector's OnCall path asks Admit once per access after the trap check
// (red-handed catching is never sampled out). Admission is a lock-free
// fixed-point threshold compare against a caller-supplied xorshift random —
// no shared RNG, no mutex — so the gate costs a handful of nanoseconds and
// stays branch-predictable when the probability is at either extreme.
//
// When an overhead target is configured the sampler is a measured closed
// loop: the detector charges every nanosecond it spends (analysis via
// ObserveCost, injected delay via ObserveDelay), and Tick periodically
// compares the spend rate against the target, steering the global admission
// probability with a multiplicative EWMA-smoothed controller. A per-interval
// clock.Budget backs the controller with a hard cap — if a burst spends the
// interval's entire allowance before the next tick, admission stops
// outright until the controller runs again. Per-site fairness keeps one hot
// call site from monopolizing the budget: sites whose per-interval hit count
// exceeds the mean get proportionally lower thresholds, flattening coverage
// across the program the way per-site sampling in the race-detection
// literature preserves recall.
//
// All time is passed in by the caller, so the controller is fully
// deterministic under test.
package sampler

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/ids"
)

// thresholdBits is the fixed-point resolution of admission thresholds: a
// probability p maps to p·2^53, compared against the top 53 bits of a
// 64-bit random. 53 bits keeps the mapping exact for every float64 in [0,1].
const thresholdBits = 53

// minProbability is the floor the controller will not throttle below, so a
// misconfigured target can never silence detection entirely.
const minProbability = 1e-4

// ewmaAlpha is the smoothing weight of the newest overhead observation.
const ewmaAlpha = 0.5

// maxStepRatio bounds how much one tick may scale the global probability in
// either direction, keeping the control loop stable under bursty load.
const maxStepRatio = 2.0

// Params configures a Sampler.
type Params struct {
	// BaseProbability is the initial global admission probability in [0,1].
	// With no OverheadTarget it is also the permanent probability.
	BaseProbability float64
	// OverheadTarget is the detection-time fraction the controller steers
	// toward (e.g. 0.01 for ~1% overhead). Zero disables the controller:
	// the probability stays fixed at BaseProbability and Tick is a no-op.
	OverheadTarget float64
	// Interval is the control-loop period: how much caller time must elapse
	// between Tick adjustments, and the window the hard budget cap covers.
	Interval time.Duration
}

// site is the per-call-site admission state: the current fixed-point
// threshold and the hit count for the running interval.
type site struct {
	threshold atomic.Uint64
	hits      atomic.Int64
}

// siteTable is the dense per-site state store, indexed directly by
// ids.SiteID. Entries are pointers so growth copies only pointer words —
// never a live site's atomics — and a reader holding the old table keeps
// operating on the same site objects the new table references.
type siteTable []atomic.Pointer[site]

// Sampler is the admission gate plus its adaptive controller. All methods
// are safe for concurrent use; Admit, ObserveCost and ObserveDelay are
// lock-free.
type Sampler struct {
	params Params

	// globalP is the current global probability (float64 bits).
	globalP atomic.Uint64
	// states is the dense per-site admission table indexed by ids.SiteID
	// (grow-by-doubling, republished via atomic pointer swap). Lookups are
	// one bounds check and two loads — no hashing, no interface boxing.
	states atomic.Pointer[siteTable]
	// stateMu serializes first-sighting inserts and table growth.
	stateMu sync.Mutex
	// nSites counts distinct sites seen, for Snapshot.
	nSites atomic.Int64
	// capped is set when the interval's hard budget is exhausted; Admit
	// refuses everything until the next Tick resets it.
	capped atomic.Bool
	// budget is the current interval's hard cap, swapped on every Tick.
	budget atomic.Pointer[clock.Budget]
	// spent and delayed accumulate charged detection nanoseconds (delayed is
	// the injected-delay subset of spent).
	spent   atomic.Int64
	delayed atomic.Int64

	// lastTick is the caller-time of the last controller run, loaded
	// lock-free for the due check.
	lastTick atomic.Int64

	// tickMu serializes controller runs; the fields below it are only
	// touched under the lock.
	tickMu    sync.Mutex
	lastSpent int64
	ewma      float64
	ticks     int64
}

// New returns a Sampler for p. BaseProbability is clamped to [0,1]; a zero
// Interval disables the hard cap (the controller then relies on Tick alone).
func New(p Params) *Sampler {
	if p.BaseProbability < 0 {
		p.BaseProbability = 0
	}
	if p.BaseProbability > 1 {
		p.BaseProbability = 1
	}
	s := &Sampler{params: p}
	s.globalP.Store(math.Float64bits(p.BaseProbability))
	if p.OverheadTarget > 0 && p.Interval > 0 {
		s.budget.Store(s.newBudget())
	}
	return s
}

// newBudget returns a fresh per-interval hard cap: the overhead target's
// share of one interval of wall time.
func (s *Sampler) newBudget() *clock.Budget {
	return &clock.Budget{Max: time.Duration(s.params.OverheadTarget * float64(s.params.Interval))}
}

// thresholdFor converts a probability to its fixed-point admission threshold.
func thresholdFor(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1 << thresholdBits
	}
	return uint64(p * (1 << thresholdBits))
}

// Admit decides whether this access enters the detector. siteID is the
// access's dense registry id (ids.SiteID) and rnd a fresh 64-bit random from
// the calling thread's Rand state. Hits are counted per site per interval so
// the controller can flatten coverage across hot and cold sites; while the
// interval's hard budget is exhausted Admit refuses everything without
// touching the site table.
func (s *Sampler) Admit(siteID ids.SiteID, rnd uint64) bool {
	if s.capped.Load() {
		return false
	}
	st := s.siteFor(siteID)
	st.hits.Add(1)
	return rnd>>(64-thresholdBits) < st.threshold.Load()
}

// siteFor returns the site state, creating it at the current global
// probability on first sight. The steady-state path is one table-pointer
// load, one bounds check and one entry load.
func (s *Sampler) siteFor(siteID ids.SiteID) *site {
	if t := s.states.Load(); t != nil && int(siteID) < len(*t) {
		if st := (*t)[siteID].Load(); st != nil {
			return st
		}
	}
	return s.siteForSlow(siteID)
}

func (s *Sampler) siteForSlow(siteID ids.SiteID) *site {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	t := s.states.Load()
	if t == nil || int(siteID) >= len(*t) {
		size := 64
		if t != nil {
			size = len(*t)
		}
		for size <= int(siteID) {
			size *= 2
		}
		nt := make(siteTable, size)
		if t != nil {
			for i := range *t {
				nt[i].Store((*t)[i].Load())
			}
		}
		s.states.Store(&nt)
		t = &nt
	}
	if st := (*t)[siteID].Load(); st != nil {
		return st
	}
	st := &site{}
	st.threshold.Store(thresholdFor(s.Probability()))
	(*t)[siteID].Store(st)
	s.nSites.Add(1)
	return st
}

// ObserveCost charges d of detector analysis time against the overhead
// budget. When the charge exhausts the interval's hard cap, admission stops
// until the next Tick.
func (s *Sampler) ObserveCost(d time.Duration) {
	if d <= 0 {
		return
	}
	s.spent.Add(int64(d))
	s.charge(d)
}

// ObserveDelay charges d of injected delay time against the overhead budget.
// Delay time is tracked separately in Snapshot but shares the same cap:
// a sleeping production request is overhead whether the time went to
// analysis or to a trap.
func (s *Sampler) ObserveDelay(d time.Duration) {
	if d <= 0 {
		return
	}
	s.spent.Add(int64(d))
	s.delayed.Add(int64(d))
	s.charge(d)
}

// charge reserves d against the interval budget and trips the cap when it
// no longer fits.
func (s *Sampler) charge(d time.Duration) {
	b := s.budget.Load()
	if b == nil {
		return
	}
	if b.Allow(d) < d {
		s.capped.Store(true)
	}
}

// Adjustment describes one controller run: the new global probability, the
// overhead observed over the interval, and the detection time spent in it.
type Adjustment struct {
	// Probability is the global admission probability after the adjustment.
	Probability float64
	// Observed is the measured overhead fraction of the interval (detection
	// time spent / caller time elapsed), before EWMA smoothing.
	Observed float64
	// Spent is the detection time charged during the interval.
	Spent time.Duration
	// Capped reports whether the interval's hard budget was exhausted
	// before this tick ran.
	Capped bool
}

// Tick runs the controller if an interval has elapsed since the last run.
// now is the caller's monotonic time (e.g. duration since detector start);
// all scheduling derives from it, so tests drive the loop deterministically.
// It returns false when the controller did not run — target disabled, the
// interval not yet elapsed, or another thread mid-tick.
func (s *Sampler) Tick(now time.Duration) (Adjustment, bool) {
	if s.params.OverheadTarget <= 0 || s.params.Interval <= 0 {
		return Adjustment{}, false
	}
	last := time.Duration(s.lastTick.Load())
	if now-last < s.params.Interval {
		return Adjustment{}, false
	}
	if !s.tickMu.TryLock() {
		return Adjustment{}, false
	}
	defer s.tickMu.Unlock()
	// Re-check under the lock: another thread may have ticked between the
	// due check and the acquire.
	last = time.Duration(s.lastTick.Load())
	elapsed := now - last
	if elapsed < s.params.Interval {
		return Adjustment{}, false
	}

	total := s.spent.Load()
	spent := total - s.lastSpent
	s.lastSpent = total
	observed := float64(spent) / float64(elapsed)

	if s.ticks == 0 {
		s.ewma = observed
	} else {
		s.ewma = ewmaAlpha*observed + (1-ewmaAlpha)*s.ewma
	}
	s.ticks++

	p := s.Probability()
	ratio := maxStepRatio
	if s.ewma > 0 {
		ratio = s.params.OverheadTarget / s.ewma
	}
	if ratio > maxStepRatio {
		ratio = maxStepRatio
	}
	if ratio < 1/maxStepRatio {
		ratio = 1 / maxStepRatio
	}
	p *= ratio
	if p < minProbability {
		p = minProbability
	}
	if p > 1 {
		p = 1
	}
	s.globalP.Store(math.Float64bits(p))
	s.rebalanceSites(p)

	wasCapped := s.capped.Load()
	s.budget.Store(s.newBudget())
	s.capped.Store(false)
	s.lastTick.Store(int64(now))

	return Adjustment{
		Probability: p,
		Observed:    observed,
		Spent:       time.Duration(spent),
		Capped:      wasCapped,
	}, true
}

// rebalanceSites pushes the new global probability to every site, lowering
// hot sites proportionally: a site with k times the mean hit count gets p/k,
// so the budget spreads across the program instead of pooling on one hot
// loop. Hit counts reset for the next interval.
func (s *Sampler) rebalanceSites(p float64) {
	t := s.states.Load()
	if t == nil {
		return
	}
	var totalHits, n int64
	for i := range *t {
		if st := (*t)[i].Load(); st != nil {
			totalHits += st.hits.Load()
			n++
		}
	}
	var mean float64
	if n > 0 {
		mean = float64(totalHits) / float64(n)
	}
	for i := range *t {
		st := (*t)[i].Load()
		if st == nil {
			continue
		}
		hits := float64(st.hits.Swap(0))
		sp := p
		if mean > 0 && hits > mean {
			sp = p * mean / hits
			if sp < minProbability {
				sp = minProbability
			}
		}
		st.threshold.Store(thresholdFor(sp))
	}
}

// Probability returns the current global admission probability.
func (s *Sampler) Probability() float64 {
	return math.Float64frombits(s.globalP.Load())
}

// Capped reports whether the current interval's hard budget is exhausted.
// While capped, Admit refuses every call, so the caller's admitted-path tick
// hook never runs — callers must give the controller a chance to tick from
// their skip path whenever this is true, or admission would stay suspended
// forever.
func (s *Sampler) Capped() bool { return s.capped.Load() }

// Snapshot is a point-in-time view of the sampler, safe to take while
// detection runs.
type Snapshot struct {
	// Probability is the current global admission probability.
	Probability float64
	// Capped reports whether the current interval's hard budget is
	// exhausted (admission suspended until the next tick).
	Capped bool
	// Sites is the number of distinct call sites seen so far.
	Sites int
	// Spent is the total detection time charged since construction.
	Spent time.Duration
	// DelayTime is the injected-delay subset of Spent.
	DelayTime time.Duration
	// Ticks is the number of controller runs so far.
	Ticks int64
}

// Snapshot returns the sampler's current state.
func (s *Sampler) Snapshot() Snapshot {
	n := int(s.nSites.Load())
	s.tickMu.Lock()
	ticks := s.ticks
	s.tickMu.Unlock()
	return Snapshot{
		Probability: s.Probability(),
		Capped:      s.capped.Load(),
		Sites:       n,
		Spent:       time.Duration(s.spent.Load()),
		DelayTime:   time.Duration(s.delayed.Load()),
		Ticks:       ticks,
	}
}

// Rand advances a per-thread xorshift64 state and returns the next random.
// Callers keep one state per thread (plain field, owner-only) so admission
// never touches a shared RNG.
func Rand(state *uint64) uint64 {
	x := *state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*state = x
	return x
}

// SeedRand derives a nonzero xorshift64 seed from a configuration seed and a
// thread id, so runs are reproducible per (Config.Seed, thread).
func SeedRand(seed, thread int64) uint64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(thread)*0xBF58476D1CE4E5B9
	if x == 0 {
		x = 0x2545F4914F6CDD1D
	}
	return x
}
