// Package fasttime provides a calibrated TSC-based monotonic time source for
// the detector's hot path. On Linux the vDSO clock_gettime behind time.Now /
// time.Since costs tens of nanoseconds on many virtualized hosts — a large
// fraction of the whole OnCall budget — while a raw RDTSC plus one multiply
// is roughly half that. The package converts raw cycle counts to nanoseconds
// with a fixed-point scale measured once against the standard clock.
//
// Enable gates on three conditions, all checked once at first use:
//
//   - the architecture provides a cycle counter (amd64 RDTSC; everything
//     else compiles a stub and stays disabled);
//   - the kernel itself selected "tsc" as its clocksource — the kernel has
//     already validated the TSC as stable, constant-rate and synchronized
//     across CPUs, which is exactly the property cross-thread gap
//     comparisons need;
//   - the calibration produced a sane scale and a monotone spot check.
//
// When disabled, callers fall back to time.Since; Enabled reports which side
// they are on. The converted values share an epoch with nothing — they are
// only meaningful as differences between two Since calls with the same
// start, which is how the detector runtime uses them.
package fasttime

import (
	"math/bits"
	"os"
	"strings"
	"sync"
	"time"
)

// scaleShift is the fixed-point fraction width of mult: one tick is
// mult/2^scaleShift nanoseconds.
const scaleShift = 20

var (
	initOnce sync.Once
	enabled  bool
	mult     uint64
)

// Enabled reports whether the TSC path is usable, calibrating on first call.
// The one-time calibration busy-spins for ~500µs; detector construction
// triggers it so no OnCall ever pays it.
func Enabled() bool {
	initOnce.Do(calibrate)
	return enabled
}

// Ticks returns the raw cycle counter. Only meaningful when Enabled.
func Ticks() uint64 { return ticks() }

// SinceTicks converts the cycles elapsed since start (a prior Ticks value)
// to a duration. The 128-bit multiply keeps the conversion exact for any
// plausible process lifetime.
func SinceTicks(start uint64) time.Duration {
	hi, lo := bits.Mul64(ticks()-start, mult)
	return time.Duration(hi<<(64-scaleShift) | lo>>scaleShift)
}

func calibrate() {
	if !haveTicks {
		return
	}
	if !kernelTrustsTSC() {
		return
	}
	// Measure ns-per-tick against the standard clock over a ~500µs window.
	// Reading the tick counter immediately on both sides of each time.Now
	// bounds the pairing error to one vDSO call (~tens of ns), well under
	// 0.1% of the window.
	c0 := ticks()
	t0 := time.Now()
	for time.Since(t0) < 500*time.Microsecond {
	}
	elapsed := time.Since(t0)
	c1 := ticks()
	if c1 <= c0 {
		return
	}
	m := (uint64(elapsed.Nanoseconds()) << scaleShift) / (c1 - c0)
	// Sanity: accept only rates between 0.125 and 8 GHz.
	if m < 1<<(scaleShift-3) || m > 8<<scaleShift {
		return
	}
	// Monotonicity spot check across a few thousand reads; a migrating
	// goroutine crossing unsynchronized sockets would show up here.
	prev := ticks()
	for i := 0; i < 4096; i++ {
		c := ticks()
		if c < prev {
			return
		}
		prev = c
	}
	mult = m
	enabled = true
}

// kernelTrustsTSC reports whether Linux selected the TSC as its clocksource.
// On other platforms (or unreadable sysfs) it fails closed.
func kernelTrustsTSC() bool {
	b, err := os.ReadFile("/sys/devices/system/clocksource/clocksource0/current_clocksource")
	if err != nil {
		return false
	}
	return strings.TrimSpace(string(b)) == "tsc"
}
