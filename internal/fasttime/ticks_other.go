//go:build !amd64

package fasttime

const haveTicks = false

// ticks has no implementation on this architecture; calibrate never runs it
// because haveTicks is false.
func ticks() uint64 { return 0 }
