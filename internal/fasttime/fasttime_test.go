package fasttime

import (
	"testing"
	"time"
)

// TestSinceTicksTracksWallClock: when the TSC path is enabled, its measured
// durations must agree with the standard clock to within a few percent. When
// disabled the test is vacuous — the detector falls back to time.Since.
func TestSinceTicksTracksWallClock(t *testing.T) {
	if !Enabled() {
		t.Skip("fasttime disabled on this host")
	}
	start := Ticks()
	t0 := time.Now()
	time.Sleep(20 * time.Millisecond)
	wall := time.Since(t0)
	got := SinceTicks(start)
	diff := got - wall
	if diff < 0 {
		diff = -diff
	}
	if diff > wall/20 {
		t.Fatalf("SinceTicks = %v, wall = %v (>5%% apart)", got, wall)
	}
}

// TestSinceTicksMonotone: repeated reads never go backwards.
func TestSinceTicksMonotone(t *testing.T) {
	if !Enabled() {
		t.Skip("fasttime disabled on this host")
	}
	start := Ticks()
	prev := SinceTicks(start)
	for i := 0; i < 100000; i++ {
		d := SinceTicks(start)
		if d < prev {
			t.Fatalf("duration went backwards: %v -> %v", prev, d)
		}
		prev = d
	}
}

func BenchmarkSinceTicks(b *testing.B) {
	if !Enabled() {
		b.Skip("fasttime disabled on this host")
	}
	start := Ticks()
	var sink time.Duration
	for i := 0; i < b.N; i++ {
		sink += SinceTicks(start)
	}
	_ = sink
}

func BenchmarkTimeSince(b *testing.B) {
	start := time.Now()
	var sink time.Duration
	for i := 0; i < b.N; i++ {
		sink += time.Since(start)
	}
	_ = sink
}
