#include "textflag.h"

// func ticks() uint64
//
// Plain RDTSC, no serialization: the detector wants a cheap monotonic-ish
// stamp, and the kernel-validated invariant TSC (see fasttime.go's gating)
// already guarantees cross-CPU consistency. Out-of-order skew is bounded by
// the pipeline depth — nanoseconds — which the consumers tolerate (gap
// buckets clamp at zero).
TEXT ·ticks(SB), NOSPLIT, $0-8
	RDTSC
	SHLQ	$32, DX
	ORQ	DX, AX
	MOVQ	AX, ret+0(FP)
	RET
