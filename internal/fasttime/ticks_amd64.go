//go:build amd64

package fasttime

const haveTicks = true

// ticks is implemented in ticks_amd64.s.
func ticks() uint64
