// Package trapfile persists TSVD's dangerous-pair set between test runs
// (§3.4.6 "Multiple testing runs"). Pairs are stored by their stable source
// location keys, not process-local ids, so a trap file written by one test
// process seeds the next.
//
// Save is crash-safe: the new contents are written to a temporary file in
// the same directory, synced, and atomically renamed over the old file. A
// test process killed mid-save (the normal fate of a process whose module
// hit a hard timeout) leaves the previous trap file intact, never a
// truncated one.
//
// Merge is the single union rule for trap sets everywhere they meet: a
// local file absorbing a run's exports, the fleet daemon (cmd/tsvd-trapd)
// absorbing a shard's publish, and a shard folding a daemon snapshot into
// its local seeds all call the same function, so every replica of a trap
// set converges to the same bytes regardless of merge order.
package trapfile

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/ids"
	"repro/internal/report"
	"repro/internal/sites"
)

// FormatVersion guards against reading files from incompatible builds. The
// trap-server wire schema (internal/trapstore) carries the same number: a
// daemon and its shards must agree on the pair encoding exactly as two
// consecutive local runs must.
const FormatVersion = 1

// ErrCorrupt marks a trap file (or trap-server payload) that exists but
// cannot be trusted: invalid JSON or a foreign format version. Callers
// distinguish it from transient I/O trouble with errors.Is; cmd/tsvd-run
// maps it to its own exit code.
var ErrCorrupt = errors.New("trapfile: corrupt")

// File is the serialized trap set.
type File struct {
	Version int    `json:"version"`
	Tool    string `json:"tool"`
	Pairs   []Pair `json:"pairs"`
	// Sites is the optional site table: the API metadata for the locations
	// the pairs reference, keyed by the same stable location keys. A file
	// carrying it seeds the next process's site registry (LoadSeed), so
	// reports in run 2 resolve class/method names before the renamed or
	// not-yet-executed call site runs. Files written by older builds simply
	// have none — pairs alone remain a complete seed.
	Sites []SiteRecord `json:"sites,omitempty"`
}

// Pair is one dangerous pair, identified by location keys.
type Pair struct {
	A string `json:"a"`
	B string `json:"b"`
}

// SiteRecord is one site-table row: the stable tuple for an interned site.
// Unlike the in-memory sites.Site it carries no dense id — ids are
// process-local, and cross-process identity is exactly this tuple.
type SiteRecord struct {
	Loc    string `json:"loc"`
	Class  string `json:"class,omitempty"`
	Method string `json:"method,omitempty"`
	Write  bool   `json:"write,omitempty"`
}

func (s SiteRecord) less(t SiteRecord) bool {
	if s.Loc != t.Loc {
		return s.Loc < t.Loc
	}
	if s.Class != t.Class {
		return s.Class < t.Class
	}
	if s.Method != t.Method {
		return s.Method < t.Method
	}
	return !s.Write && t.Write
}

// normalizeSites canonicalizes a site table the same way normalize does
// pairs: rows without a location key are dropped (nothing to re-intern
// against), duplicates collapse, and the result sorts by the full tuple so
// equal tables serialize to equal bytes.
func normalizeSites(recs []SiteRecord) []SiteRecord {
	out := make([]SiteRecord, 0, len(recs))
	seen := make(map[SiteRecord]bool, len(recs))
	for _, r := range recs {
		if r.Loc == "" || seen[r] {
			continue
		}
		seen[r] = true
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	if len(out) == 0 {
		return nil
	}
	return out
}

// less orders pairs lexicographically by (A, B) — the canonical order every
// normalized pair list is stored and transmitted in.
func (p Pair) less(q Pair) bool {
	if p.A != q.A {
		return p.A < q.A
	}
	return p.B < q.B
}

// normalize canonicalizes a pair list: empty-key halves drop the pair (a key
// that cannot be re-interned is useless and, worse, every such pair would
// collide on the same empty intern slot), endpoints are ordered A <= B so a
// pair reads the same regardless of which side observed it, duplicates
// collapse to one entry, and the result is sorted by (A, B) so two trap sets
// with the same pairs serialize to the same bytes. Load applies it to
// whatever a file claims, Save to whatever the detector exports, and Merge
// to both inputs, so the invariant holds on every side of every boundary.
func normalize(pairs []Pair) []Pair {
	out := make([]Pair, 0, len(pairs))
	seen := make(map[Pair]bool, len(pairs))
	for _, p := range pairs {
		if p.A == "" || p.B == "" {
			continue
		}
		if p.A > p.B {
			p.A, p.B = p.B, p.A
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// New assembles a normalized File from a detector's exported pairs — the
// value Save and TrapStore.Publish consume.
func New(tool string, pairs []report.PairKey) File {
	return File{Version: FormatVersion, Tool: tool, Pairs: FromKeys(pairs)}
}

// NewWithSites is New plus the site table: reg's registered sites serialized
// by stable tuple, so the file carries the metadata to seed the next run's
// registry (LoadSeed). A nil registry degrades to New.
func NewWithSites(tool string, pairs []report.PairKey, reg *sites.Registry) File {
	f := New(tool, pairs)
	if reg == nil {
		return f
	}
	snap := reg.Snapshot()
	recs := make([]SiteRecord, 0, len(snap))
	for _, s := range snap {
		recs = append(recs, SiteRecord{
			Loc: s.Op.Key(), Class: s.Class, Method: s.Method, Write: s.Write,
		})
	}
	f.Sites = normalizeSites(recs)
	return f
}

// Merge unions two trap sets deterministically: both sides are normalized,
// the union is sorted by (A, B), and the newer side's Tool label wins when
// it has one. Site tables union by stable tuple, so a legacy string-keyed
// file (pairs only, no table) merges losslessly with a site-aware one: its
// pairs survive on their location keys and simply contribute no metadata
// rows. Merge is commutative up to the Tool label and associative, so a
// daemon merging shard publishes in any arrival order, and a shard merging
// a daemon snapshot into local seeds, reach identical pair lists.
func Merge(older, newer File) File {
	merged := File{Version: FormatVersion, Tool: newer.Tool}
	if merged.Tool == "" {
		merged.Tool = older.Tool
	}
	merged.Pairs = normalize(append(append([]Pair(nil), older.Pairs...), newer.Pairs...))
	merged.Sites = normalizeSites(append(append([]SiteRecord(nil), older.Sites...), newer.Sites...))
	return merged
}

// FromKeys converts in-memory pair keys to their persistent form. Pairs with
// un-interned locations (no stable key) are dropped — they cannot be
// re-identified in another process anyway.
func FromKeys(pairs []report.PairKey) []Pair {
	out := make([]Pair, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, Pair{A: p.A.Key(), B: p.B.Key()})
	}
	return normalize(out)
}

// ToKeys re-interns persistent pairs into this process's OpID space.
func ToKeys(pairs []Pair) []report.PairKey {
	out := make([]report.PairKey, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, report.KeyOf(ids.InternKey(p.A), ids.InternKey(p.B)))
	}
	return out
}

// testHookAfterWrite, when non-nil, runs after the temp file is durably
// written and before the rename. Tests return an error to simulate a
// process killed at the most dangerous instant: Save stops right there,
// deliberately leaving the temp file behind — a killed process cleans up
// nothing.
var testHookAfterWrite func(tmpPath string) error

// SetTestHookAfterWrite installs (or, with nil, removes) the crash hook every
// Save runs between the durable temp-file write and the atomic rename — the
// narrowest window a kill can hit. The hook returning an error makes Save
// stop right there, leaving the temp file behind exactly as a killed process
// would. It exists so packages that build on Save (trapstore's snapshot
// persister, the chaos harness) can stage the same kill-9 simulation the
// trapfile tests use; production code must never call it.
func SetTestHookAfterWrite(fn func(tmpPath string) error) { testHookAfterWrite = fn }

// Save atomically replaces the trap file at path with f, normalized. The
// Version field is stamped by Save — callers build f with New or a literal
// and never track the format version themselves. The previous contents stay
// readable until the very last step, a same-directory rename.
func Save(path string, f File) error {
	f.Version = FormatVersion
	f.Pairs = normalize(f.Pairs)
	f.Sites = normalizeSites(f.Sites)
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("trapfile: marshal: %w", err)
	}
	return SaveBytes(path, append(data, '\n'))
}

// SaveBytes atomically replaces the file at path with data using the same
// crash-safe temp-write/fsync/rename dance as Save, including the kill-9
// test hook. It exists for callers that persist a superset of the trap-file
// schema (trapstore.SnapshotPersister stores sync state alongside the pairs)
// and need identical durability without re-implementing the dance.
func SaveBytes(path string, data []byte) error {
	// The temp file must live in the target's directory: rename(2) is only
	// atomic within one filesystem.
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("trapfile: create temp in %s: %w", dir, err)
	}
	tmpPath := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(fmt.Errorf("trapfile: write %s: %w", tmpPath, err))
	}
	// Sync before rename: otherwise a crash shortly after Save could leave
	// the *renamed* file empty on disk — the exact torn state the temp-file
	// dance exists to prevent.
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("trapfile: sync %s: %w", tmpPath, err))
	}
	if err := tmp.Close(); err != nil {
		return cleanup(fmt.Errorf("trapfile: close %s: %w", tmpPath, err))
	}
	if testHookAfterWrite != nil {
		if err := testHookAfterWrite(tmpPath); err != nil {
			return err
		}
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("trapfile: rename %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a trap set from path in its wire form, normalized. A
// missing file yields an empty current-version File and no error — the
// first run of a test has no trap file. Unparseable contents and foreign
// format versions wrap ErrCorrupt: the file exists but cannot be trusted.
func LoadFile(path string) (File, error) {
	empty := File{Version: FormatVersion}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return empty, nil
		}
		return empty, fmt.Errorf("trapfile: read %s: %w", path, err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return empty, fmt.Errorf("trapfile: parse %s: %w: %v", path, ErrCorrupt, err)
	}
	if f.Version != FormatVersion {
		return empty, fmt.Errorf("trapfile: %s has version %d, want %d: %w",
			path, f.Version, FormatVersion, ErrCorrupt)
	}
	f.Pairs = normalize(f.Pairs)
	f.Sites = normalizeSites(f.Sites)
	return f, nil
}

// Load reads a trap set from path and re-interns it into this process's
// OpID space — the seed-set form core.WithInitialTraps consumes. Pairs are
// normalized on the way in (empty keys dropped, endpoints ordered,
// duplicates collapsed, sorted): trap files are hand-editable JSON, and a
// malformed pair must degrade the seed set, not corrupt the detector's trap
// set.
func Load(path string) ([]report.PairKey, error) {
	f, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	if len(f.Pairs) == 0 {
		return nil, nil
	}
	return ToKeys(f.Pairs), nil
}

// LoadSeed is Load plus site-registry seeding: the file's site table is
// registered into reg (interning each row's location key into this process's
// OpID space), so run 2 resolves the API metadata of seeded pairs before —
// or without — the corresponding call sites executing. reg may be nil to
// skip seeding; legacy files without a table seed nothing.
func LoadSeed(path string, reg *sites.Registry) ([]report.PairKey, error) {
	f, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	if reg != nil {
		for _, r := range f.Sites {
			reg.Register(ids.InternKey(r.Loc), r.Class, r.Method, r.Write)
		}
	}
	if len(f.Pairs) == 0 {
		return nil, nil
	}
	return ToKeys(f.Pairs), nil
}
