// Package trapfile persists TSVD's dangerous-pair set between test runs
// (§3.4.6 "Multiple testing runs"). Pairs are stored by their stable source
// location keys, not process-local ids, so a trap file written by one test
// process seeds the next.
package trapfile

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/ids"
	"repro/internal/report"
)

// FormatVersion guards against reading files from incompatible builds.
const FormatVersion = 1

// File is the serialized trap set.
type File struct {
	Version int    `json:"version"`
	Tool    string `json:"tool"`
	Pairs   []Pair `json:"pairs"`
}

// Pair is one dangerous pair, identified by location keys.
type Pair struct {
	A string `json:"a"`
	B string `json:"b"`
}

// FromKeys converts in-memory pair keys to their persistent form. Pairs with
// un-interned locations (no stable key) are dropped — they cannot be
// re-identified in another process anyway.
func FromKeys(pairs []report.PairKey) []Pair {
	out := make([]Pair, 0, len(pairs))
	for _, p := range pairs {
		a, b := p.A.Key(), p.B.Key()
		if a == "" || b == "" {
			continue
		}
		out = append(out, Pair{A: a, B: b})
	}
	return out
}

// ToKeys re-interns persistent pairs into this process's OpID space.
func ToKeys(pairs []Pair) []report.PairKey {
	out := make([]report.PairKey, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, report.KeyOf(ids.InternKey(p.A), ids.InternKey(p.B)))
	}
	return out
}

// Save writes the trap set to path.
func Save(path, tool string, pairs []report.PairKey) error {
	f := File{Version: FormatVersion, Tool: tool, Pairs: FromKeys(pairs)}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("trapfile: marshal: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("trapfile: write %s: %w", path, err)
	}
	return nil
}

// Load reads a trap set from path. A missing file yields an empty set and no
// error — the first run of a test has no trap file.
func Load(path string) ([]report.PairKey, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("trapfile: read %s: %w", path, err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("trapfile: parse %s: %w", path, err)
	}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("trapfile: %s has version %d, want %d", path, f.Version, FormatVersion)
	}
	return ToKeys(f.Pairs), nil
}
