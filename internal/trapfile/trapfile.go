// Package trapfile persists TSVD's dangerous-pair set between test runs
// (§3.4.6 "Multiple testing runs"). Pairs are stored by their stable source
// location keys, not process-local ids, so a trap file written by one test
// process seeds the next.
//
// Save is crash-safe: the new contents are written to a temporary file in
// the same directory, synced, and atomically renamed over the old file. A
// test process killed mid-save (the normal fate of a process whose module
// hit a hard timeout) leaves the previous trap file intact, never a
// truncated one.
package trapfile

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/ids"
	"repro/internal/report"
)

// FormatVersion guards against reading files from incompatible builds.
const FormatVersion = 1

// File is the serialized trap set.
type File struct {
	Version int    `json:"version"`
	Tool    string `json:"tool"`
	Pairs   []Pair `json:"pairs"`
}

// Pair is one dangerous pair, identified by location keys.
type Pair struct {
	A string `json:"a"`
	B string `json:"b"`
}

// normalize canonicalizes a pair list: empty-key halves drop the pair (a key
// that cannot be re-interned is useless and, worse, every such pair would
// collide on the same empty intern slot), endpoints are ordered A <= B so a
// pair reads the same regardless of which side observed it, and duplicates
// collapse to one entry. Load applies it to whatever a file claims, Save to
// whatever the detector exports, so the invariant holds on both sides of
// the process boundary.
func normalize(pairs []Pair) []Pair {
	out := make([]Pair, 0, len(pairs))
	seen := make(map[Pair]bool, len(pairs))
	for _, p := range pairs {
		if p.A == "" || p.B == "" {
			continue
		}
		if p.A > p.B {
			p.A, p.B = p.B, p.A
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// FromKeys converts in-memory pair keys to their persistent form. Pairs with
// un-interned locations (no stable key) are dropped — they cannot be
// re-identified in another process anyway.
func FromKeys(pairs []report.PairKey) []Pair {
	out := make([]Pair, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, Pair{A: p.A.Key(), B: p.B.Key()})
	}
	return normalize(out)
}

// ToKeys re-interns persistent pairs into this process's OpID space.
func ToKeys(pairs []Pair) []report.PairKey {
	out := make([]report.PairKey, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, report.KeyOf(ids.InternKey(p.A), ids.InternKey(p.B)))
	}
	return out
}

// testHookAfterWrite, when non-nil, runs after the temp file is durably
// written and before the rename. Tests return an error to simulate a
// process killed at the most dangerous instant: Save stops right there,
// deliberately leaving the temp file behind — a killed process cleans up
// nothing.
var testHookAfterWrite func(tmpPath string) error

// Save atomically replaces the trap file at path. The previous contents stay
// readable until the very last step, a same-directory rename.
func Save(path, tool string, pairs []report.PairKey) error {
	f := File{Version: FormatVersion, Tool: tool, Pairs: FromKeys(pairs)}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("trapfile: marshal: %w", err)
	}
	data = append(data, '\n')

	// The temp file must live in the target's directory: rename(2) is only
	// atomic within one filesystem.
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("trapfile: create temp in %s: %w", dir, err)
	}
	tmpPath := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(fmt.Errorf("trapfile: write %s: %w", tmpPath, err))
	}
	// Sync before rename: otherwise a crash shortly after Save could leave
	// the *renamed* file empty on disk — the exact torn state the temp-file
	// dance exists to prevent.
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("trapfile: sync %s: %w", tmpPath, err))
	}
	if err := tmp.Close(); err != nil {
		return cleanup(fmt.Errorf("trapfile: close %s: %w", tmpPath, err))
	}
	if testHookAfterWrite != nil {
		if err := testHookAfterWrite(tmpPath); err != nil {
			return err
		}
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("trapfile: rename %s: %w", path, err)
	}
	return nil
}

// Load reads a trap set from path. A missing file yields an empty set and no
// error — the first run of a test has no trap file. Pairs are normalized on
// the way in (empty keys dropped, endpoints ordered, duplicates collapsed):
// trap files are hand-editable JSON, and a malformed pair must degrade the
// seed set, not corrupt the detector's trap set.
func Load(path string) ([]report.PairKey, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("trapfile: read %s: %w", path, err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("trapfile: parse %s: %w", path, err)
	}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("trapfile: %s has version %d, want %d", path, f.Version, FormatVersion)
	}
	return ToKeys(normalize(f.Pairs)), nil
}
