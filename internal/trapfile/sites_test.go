package trapfile

import (
	"path/filepath"
	"testing"

	"repro/internal/ids"
	"repro/internal/report"
	"repro/internal/sites"
)

// TestNewWithSitesSerializesTuples: the site table a file carries is the
// registry's tuple set — no process-local ids, canonical order, anonymous
// (op-only) sites included.
func TestNewWithSitesSerializesTuples(t *testing.T) {
	a := ids.InternKey("pkg/seed.go:10")
	b := ids.InternKey("pkg/seed.go:20")
	reg := sites.New()
	reg.Register(b, "List", "Add", true) // registered first; table sorts by tuple
	reg.Register(a, "Dictionary", "ContainsKey", false)
	reg.ForOpKind(a, true) // anonymous write site for the same op

	f := NewWithSites("TSVD", []report.PairKey{report.KeyOf(a, b)}, reg)
	if len(f.Pairs) != 1 || len(f.Sites) != 3 {
		t.Fatalf("file = %+v", f)
	}
	for i := 1; i < len(f.Sites); i++ {
		if !f.Sites[i-1].less(f.Sites[i]) {
			t.Fatalf("site table not canonically ordered: %+v", f.Sites)
		}
	}
	want := SiteRecord{Loc: a.Key(), Class: "Dictionary", Method: "ContainsKey"}
	found := false
	for _, r := range f.Sites {
		if r == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("tuple %+v missing from %+v", want, f.Sites)
	}

	// Nil registry: pairs-only file, like older builds wrote.
	if f := NewWithSites("TSVD", []report.PairKey{report.KeyOf(a, b)}, nil); f.Sites != nil {
		t.Fatalf("nil registry produced a site table: %+v", f.Sites)
	}
}

// TestLoadSeedRegistersSites: loading a seed file re-interns its site table
// into the next process's registry, so run-2 reports resolve API metadata
// before the instrumented site ever executes.
func TestLoadSeedRegistersSites(t *testing.T) {
	a := ids.InternKey("pkg/seed2.go:1")
	b := ids.InternKey("pkg/seed2.go:2")
	run1 := sites.New()
	run1.Register(a, "Queue", "Enqueue", true)
	run1.Register(b, "Queue", "Dequeue", true)

	path := filepath.Join(t.TempDir(), "traps.json")
	if err := Save(path, NewWithSites("TSVD", []report.PairKey{report.KeyOf(a, b)}, run1)); err != nil {
		t.Fatal(err)
	}

	run2 := sites.New()
	pairs, err := LoadSeed(path, run2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0] != report.KeyOf(a, b) {
		t.Fatalf("pairs = %+v", pairs)
	}
	if run2.Len() != 2 {
		t.Fatalf("run-2 registry has %d sites, want 2", run2.Len())
	}
	id := run2.ForOpKind(a, true)
	if s := run2.Info(id); s.Class != "Queue" || s.Method != "Enqueue" || !s.Write {
		t.Fatalf("seeded site resolved to %+v", s)
	}

	// A nil registry still loads the pairs (legacy callers).
	pairs, err = LoadSeed(path, nil)
	if err != nil || len(pairs) != 1 {
		t.Fatalf("nil-registry LoadSeed: %v, %v", pairs, err)
	}
}

// TestMergeUnionsSiteTables: merging a legacy file (no site table) with a
// site-carrying file keeps the table; merging two tables unions and dedups
// them; and the result is order-independent, matching Merge's convergence
// contract for pairs.
func TestMergeUnionsSiteTables(t *testing.T) {
	a := ids.InternKey("pkg/merge.go:1")
	b := ids.InternKey("pkg/merge.go:2")
	regA := sites.New()
	regA.Register(a, "Dictionary", "Add", true)
	regB := sites.New()
	regB.Register(b, "List", "Remove", true)
	regB.Register(a, "Dictionary", "Add", true) // shared tuple

	fileA := NewWithSites("TSVD", []report.PairKey{report.KeyOf(a, a)}, regA)
	fileB := NewWithSites("TSVD", []report.PairKey{report.KeyOf(a, b)}, regB)
	legacy := New("TSVD", []report.PairKey{report.KeyOf(b, b)}) // no site table

	ab := Merge(fileA, fileB)
	if len(ab.Sites) != 2 {
		t.Fatalf("union has %d sites, want 2 (dedup): %+v", len(ab.Sites), ab.Sites)
	}
	ba := Merge(fileB, fileA)
	if len(ba.Sites) != len(ab.Sites) {
		t.Fatalf("merge not symmetric: %d vs %d sites", len(ba.Sites), len(ab.Sites))
	}
	for i := range ab.Sites {
		if ab.Sites[i] != ba.Sites[i] {
			t.Fatalf("merge order changed the table: %+v vs %+v", ab.Sites, ba.Sites)
		}
	}

	withLegacy := Merge(legacy, ab)
	if len(withLegacy.Sites) != 2 || len(withLegacy.Pairs) != 3 {
		t.Fatalf("legacy merge lost data: %+v", withLegacy)
	}
	// And the other direction: a legacy file absorbing a site-carrying one.
	if got := Merge(ab, legacy); len(got.Sites) != 2 {
		t.Fatalf("site table dropped when newer file is legacy: %+v", got)
	}
}

// TestSaveNormalizesSiteTable: malformed tables (duplicates, rows without a
// location) are canonicalized on save and on load, so on-disk bytes are
// deterministic regardless of producer sloppiness.
func TestSaveNormalizesSiteTable(t *testing.T) {
	f := File{
		Version: FormatVersion,
		Tool:    "TSVD",
		Pairs:   []Pair{{A: "x.go:1", B: "x.go:2"}},
		Sites: []SiteRecord{
			{Loc: "x.go:2", Class: "List", Method: "Add", Write: true},
			{Loc: "", Class: "Ghost", Method: "NoLoc"}, // dropped
			{Loc: "x.go:1", Class: "Dictionary", Method: "Add"},
			{Loc: "x.go:2", Class: "List", Method: "Add", Write: true}, // dup
		},
	}
	path := filepath.Join(t.TempDir(), "traps.json")
	if err := Save(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sites) != 2 {
		t.Fatalf("normalized table has %d rows, want 2: %+v", len(got.Sites), got.Sites)
	}
	if got.Sites[0].Loc != "x.go:1" || got.Sites[1].Loc != "x.go:2" {
		t.Fatalf("table not sorted: %+v", got.Sites)
	}
}
