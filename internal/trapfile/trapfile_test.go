package trapfile

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ids"
	"repro/internal/report"
)

func TestRoundTrip(t *testing.T) {
	a := ids.InternKey("pkg/foo.go:10")
	b := ids.InternKey("pkg/foo.go:20")
	c := ids.InternKey("pkg/bar.go:5")
	pairs := []report.PairKey{report.KeyOf(a, b), report.KeyOf(c, c)}

	path := filepath.Join(t.TempDir(), "traps.json")
	if err := Save(path, New("TSVD", pairs)); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d pairs, want 2", len(got))
	}
	want := map[report.PairKey]bool{report.KeyOf(a, b): true, report.KeyOf(c, c): true}
	for _, p := range got {
		if !want[p] {
			t.Fatalf("unexpected pair %+v", p)
		}
	}
}

func TestLoadMissingFileIsEmpty(t *testing.T) {
	got, err := Load(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || got != nil {
		t.Fatalf("Load(absent) = %v, %v; want nil, nil", got, err)
	}
}

func TestLoadRejectsBadVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traps.json")
	os.WriteFile(path, []byte(`{"version": 99, "pairs": []}`), 0o644)
	if _, err := Load(path); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traps.json")
	os.WriteFile(path, []byte("not json"), 0o644)
	if _, err := Load(path); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFromKeysDropsUninterned(t *testing.T) {
	fabricated := report.KeyOf(ids.OpID(123), ids.OpID(456)) // never interned
	if got := FromKeys([]report.PairKey{fabricated}); len(got) != 0 {
		t.Fatalf("uninterned pair survived: %v", got)
	}
}

// errCrash simulates a process killed between writing the temp file and the
// rename: Save stops with no cleanup, exactly like kill -9 would leave things.
type errCrash struct{ tmp string }

func (e *errCrash) Error() string { return "simulated crash before rename" }

func TestSaveCrashBeforeRenameKeepsPreviousFile(t *testing.T) {
	a := ids.InternKey("pkg/crash.go:1")
	b := ids.InternKey("pkg/crash.go:2")
	c := ids.InternKey("pkg/crash.go:3")
	dir := t.TempDir()
	path := filepath.Join(dir, "traps.json")

	if err := Save(path, New("TSVD", []report.PairKey{report.KeyOf(a, b)})); err != nil {
		t.Fatal(err)
	}

	// Second Save "dies" after the temp write, before the rename.
	crash := &errCrash{}
	testHookAfterWrite = func(tmpPath string) error {
		crash.tmp = tmpPath
		return crash
	}
	defer func() { testHookAfterWrite = nil }()
	err := Save(path, New("TSVD", []report.PairKey{report.KeyOf(a, c)}))
	if err != crash {
		t.Fatalf("Save = %v, want the simulated crash", err)
	}

	// The previous file must be byte-for-byte observable and loadable.
	got, lerr := Load(path)
	if lerr != nil {
		t.Fatalf("previous trap file unreadable after crash: %v", lerr)
	}
	if len(got) != 1 || got[0] != report.KeyOf(a, b) {
		t.Fatalf("previous contents lost: %v", got)
	}

	// The abandoned temp file is present (the killed process cleaned up
	// nothing) but harmless: it is not the trap file.
	if _, serr := os.Stat(crash.tmp); serr != nil {
		t.Fatalf("simulated crash should leave the temp file: %v", serr)
	}

	// A later, healthy Save completes the replacement.
	testHookAfterWrite = nil
	if err := Save(path, New("TSVD", []report.PairKey{report.KeyOf(a, c)})); err != nil {
		t.Fatal(err)
	}
	got, lerr = Load(path)
	if lerr != nil || len(got) != 1 || got[0] != report.KeyOf(a, c) {
		t.Fatalf("recovery Save not observed: %v, %v", got, lerr)
	}
}

func TestSaveNeverExposesPartialFile(t *testing.T) {
	// At the hook point the full new contents exist only under the temp
	// name; the destination still holds the old bytes. This is the
	// "partially-written file is never observed" contract: there is no
	// instant at which path holds a prefix of the new contents.
	a := ids.InternKey("pkg/partial.go:1")
	b := ids.InternKey("pkg/partial.go:2")
	dir := t.TempDir()
	path := filepath.Join(dir, "traps.json")
	if err := Save(path, New("TSVD", nil)); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	var atHook []byte
	testHookAfterWrite = func(tmpPath string) error {
		atHook, err = os.ReadFile(path)
		if err != nil {
			t.Errorf("destination unreadable mid-save: %v", err)
		}
		tmp, terr := os.ReadFile(tmpPath)
		if terr != nil {
			t.Errorf("temp file unreadable mid-save: %v", terr)
		}
		if len(tmp) == 0 {
			t.Error("temp file empty at hook point; new contents not yet durable")
		}
		return nil
	}
	defer func() { testHookAfterWrite = nil }()
	if err := Save(path, New("TSVD", []report.PairKey{report.KeyOf(a, b)})); err != nil {
		t.Fatal(err)
	}
	if string(atHook) != string(before) {
		t.Fatalf("destination mutated before rename:\nbefore: %s\nat hook: %s", before, atHook)
	}

	// No stray temp files after a successful Save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "traps.json" {
		t.Fatalf("unexpected directory contents after Save: %v", entries)
	}
}

func TestLoadNormalizesMalformedFiles(t *testing.T) {
	ka, kb := "pkg/n.go:1", "pkg/n.go:2"
	a, b := ids.InternKey(ka), ids.InternKey(kb)
	cases := []struct {
		name string
		json string
		want []report.PairKey
	}{
		{
			name: "empty keys dropped",
			json: `{"version":1,"pairs":[{"a":"","b":"` + kb + `"},{"a":"` + ka + `","b":""},{"a":"","b":""}]}`,
			want: nil,
		},
		{
			name: "reversed duplicate collapses",
			json: `{"version":1,"pairs":[{"a":"` + ka + `","b":"` + kb + `"},{"a":"` + kb + `","b":"` + ka + `"}]}`,
			want: []report.PairKey{report.KeyOf(a, b)},
		},
		{
			name: "exact duplicate collapses",
			json: `{"version":1,"pairs":[{"a":"` + ka + `","b":"` + kb + `"},{"a":"` + ka + `","b":"` + kb + `"}]}`,
			want: []report.PairKey{report.KeyOf(a, b)},
		},
		{
			name: "self pair survives once",
			json: `{"version":1,"pairs":[{"a":"` + ka + `","b":"` + ka + `"},{"a":"` + ka + `","b":"` + ka + `"}]}`,
			want: []report.PairKey{report.KeyOf(a, a)},
		},
		{
			name: "mixed garbage and good",
			json: `{"version":1,"pairs":[{"a":"","b":""},{"a":"` + kb + `","b":"` + ka + `"}]}`,
			want: []report.PairKey{report.KeyOf(a, b)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "traps.json")
			if err := os.WriteFile(path, []byte(tc.json), 0o644); err != nil {
				t.Fatal(err)
			}
			got, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("Load = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("Load[%d] = %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestSaveNormalizesPairs(t *testing.T) {
	a := ids.InternKey("pkg/sn.go:1")
	b := ids.InternKey("pkg/sn.go:2")
	path := filepath.Join(t.TempDir(), "traps.json")
	// Duplicates in the export must not survive the round trip.
	pairs := []report.PairKey{report.KeyOf(a, b), report.KeyOf(b, a), report.KeyOf(a, b)}
	if err := Save(path, New("TSVD", pairs)); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != report.KeyOf(a, b) {
		t.Fatalf("normalized round trip = %v, want one (a,b) pair", got)
	}
}

func TestLoadCorruptIsErrCorrupt(t *testing.T) {
	dir := t.TempDir()
	garbage := filepath.Join(dir, "garbage.json")
	os.WriteFile(garbage, []byte("not json"), 0o644)
	if _, err := Load(garbage); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load(garbage) = %v, want ErrCorrupt", err)
	}
	foreign := filepath.Join(dir, "foreign.json")
	os.WriteFile(foreign, []byte(`{"version": 99, "pairs": []}`), 0o644)
	if _, err := Load(foreign); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load(foreign version) = %v, want ErrCorrupt", err)
	}
	// A genuinely unreadable file is I/O trouble, not corruption.
	if _, err := Load(dir); err == nil || errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load(directory) = %v, want a non-ErrCorrupt error", err)
	}
}

func TestMergeDeterministicUnion(t *testing.T) {
	ab := Pair{A: "pkg/m.go:1", B: "pkg/m.go:2"}
	cd := Pair{A: "pkg/m.go:3", B: "pkg/m.go:4"}
	ef := Pair{A: "pkg/m.go:5", B: "pkg/m.go:6"}
	x := File{Tool: "TSVD", Pairs: []Pair{cd, ab}}
	y := File{Tool: "TSVDHB", Pairs: []Pair{ef, {A: ab.B, B: ab.A}}}

	got := Merge(x, y)
	want := []Pair{ab, cd, ef}
	if len(got.Pairs) != len(want) {
		t.Fatalf("Merge union = %v, want %v", got.Pairs, want)
	}
	for i := range want {
		if got.Pairs[i] != want[i] {
			t.Fatalf("Merge[%d] = %v, want %v (sorted union)", i, got.Pairs[i], want[i])
		}
	}
	if got.Tool != "TSVDHB" {
		t.Fatalf("Merge tool = %q, want the newer side's", got.Tool)
	}
	if got.Version != FormatVersion {
		t.Fatalf("Merge version = %d", got.Version)
	}

	// Order-independence up to the Tool label: the pair lists must match.
	rev := Merge(y, x)
	if len(rev.Pairs) != len(got.Pairs) {
		t.Fatalf("Merge not commutative: %v vs %v", rev.Pairs, got.Pairs)
	}
	for i := range got.Pairs {
		if rev.Pairs[i] != got.Pairs[i] {
			t.Fatalf("Merge not commutative at %d: %v vs %v", i, rev.Pairs[i], got.Pairs[i])
		}
	}
	if rev.Tool != "TSVD" {
		t.Fatalf("Merge(y, x) tool = %q, want newer side %q", rev.Tool, "TSVD")
	}

	// Newer side with no tool label inherits the older one's.
	if m := Merge(x, File{Pairs: []Pair{ef}}); m.Tool != "TSVD" {
		t.Fatalf("Merge with unlabeled newer side lost tool: %q", m.Tool)
	}
}

func TestMergeAssociative(t *testing.T) {
	files := []File{
		{Pairs: []Pair{{A: "a", B: "b"}, {A: "c", B: "d"}}},
		{Pairs: []Pair{{A: "b", B: "a"}, {A: "e", B: "f"}}},
		{Pairs: []Pair{{A: "c", B: "d"}, {A: "a", B: "a"}}},
	}
	left := Merge(Merge(files[0], files[1]), files[2])
	right := Merge(files[0], Merge(files[1], files[2]))
	if len(left.Pairs) != len(right.Pairs) {
		t.Fatalf("Merge not associative: %v vs %v", left.Pairs, right.Pairs)
	}
	for i := range left.Pairs {
		if left.Pairs[i] != right.Pairs[i] {
			t.Fatalf("Merge not associative at %d: %v vs %v", i, left.Pairs[i], right.Pairs[i])
		}
	}
}

func TestSaveStampsVersionAndNormalizes(t *testing.T) {
	ka, kb := "pkg/v.go:1", "pkg/v.go:2"
	path := filepath.Join(t.TempDir(), "traps.json")
	// A caller-assembled literal with a stale version and unsorted,
	// duplicated pairs must come back canonical.
	f := File{Version: 99, Tool: "TSVD", Pairs: []Pair{
		{A: kb, B: ka}, {A: ka, B: kb},
	}}
	if err := Save(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != FormatVersion {
		t.Fatalf("saved version = %d, want %d", got.Version, FormatVersion)
	}
	if len(got.Pairs) != 1 || got.Pairs[0] != (Pair{A: ka, B: kb}) {
		t.Fatalf("saved pairs = %v, want one sorted (a,b)", got.Pairs)
	}
}

func TestLoadFileMissingIsEmpty(t *testing.T) {
	f, err := LoadFile(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if f.Version != FormatVersion || len(f.Pairs) != 0 {
		t.Fatalf("LoadFile(absent) = %+v, want empty current-version file", f)
	}
}
