package trapfile

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ids"
	"repro/internal/report"
)

func TestRoundTrip(t *testing.T) {
	a := ids.InternKey("pkg/foo.go:10")
	b := ids.InternKey("pkg/foo.go:20")
	c := ids.InternKey("pkg/bar.go:5")
	pairs := []report.PairKey{report.KeyOf(a, b), report.KeyOf(c, c)}

	path := filepath.Join(t.TempDir(), "traps.json")
	if err := Save(path, "TSVD", pairs); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d pairs, want 2", len(got))
	}
	want := map[report.PairKey]bool{report.KeyOf(a, b): true, report.KeyOf(c, c): true}
	for _, p := range got {
		if !want[p] {
			t.Fatalf("unexpected pair %+v", p)
		}
	}
}

func TestLoadMissingFileIsEmpty(t *testing.T) {
	got, err := Load(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || got != nil {
		t.Fatalf("Load(absent) = %v, %v; want nil, nil", got, err)
	}
}

func TestLoadRejectsBadVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traps.json")
	os.WriteFile(path, []byte(`{"version": 99, "pairs": []}`), 0o644)
	if _, err := Load(path); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traps.json")
	os.WriteFile(path, []byte("not json"), 0o644)
	if _, err := Load(path); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFromKeysDropsUninterned(t *testing.T) {
	fabricated := report.KeyOf(ids.OpID(123), ids.OpID(456)) // never interned
	if got := FromKeys([]report.PairKey{fabricated}); len(got) != 0 {
		t.Fatalf("uninterned pair survived: %v", got)
	}
}
