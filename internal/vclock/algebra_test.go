package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomTree(rng *rand.Rand) Tree {
	var c Tree
	n := rng.Intn(20)
	for i := 0; i < n; i++ {
		c = c.Set(int64(rng.Intn(15)), uint64(rng.Intn(50)))
	}
	return c
}

func equalTrees(a, b Tree) bool {
	return LessOrEqual(a, b) && LessOrEqual(b, a)
}

// TestJoinAlgebra: Join must be commutative, associative and idempotent,
// and both arguments must be ≤ the result — the lattice laws vector-clock
// correctness rests on.
func TestJoinAlgebra(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randomTree(rng), randomTree(rng), randomTree(rng)

		if !equalTrees(Join(a, b), Join(b, a)) {
			return false // commutativity
		}
		if !equalTrees(Join(Join(a, b), c), Join(a, Join(b, c))) {
			return false // associativity
		}
		if !equalTrees(Join(a, a), a) {
			return false // idempotence
		}
		j := Join(a, b)
		if !LessOrEqual(a, j) || !LessOrEqual(b, j) {
			return false // upper bound
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestOrderingIsPartialOrder: ≤ must be reflexive, antisymmetric (up to
// component equality) and transitive.
func TestOrderingIsPartialOrder(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomTree(rng)
		b := Join(a, randomTree(rng)) // a ≤ b by construction
		c := Join(b, randomTree(rng)) // b ≤ c

		if !LessOrEqual(a, a) {
			return false // reflexivity
		}
		if !LessOrEqual(a, b) || !LessOrEqual(b, c) {
			return false // construction
		}
		if !LessOrEqual(a, c) {
			return false // transitivity
		}
		// HappenedBefore and Concurrent are mutually exclusive.
		d := randomTree(rng)
		hb := HappenedBefore(a, d) || HappenedBefore(d, a)
		if hb && Concurrent(a, d) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestTickStrictlyAdvances: Tick yields a clock strictly after the input on
// the ticked component and untouched elsewhere.
func TestTickStrictlyAdvances(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomTree(rng)
		k := int64(rng.Intn(15))
		b := a.Tick(k)
		if b.Get(k) != a.Get(k)+1 {
			return false
		}
		if !HappenedBefore(a, b) {
			return false
		}
		ok := true
		a.Each(func(t int64, v uint64) bool {
			if t != k && b.Get(t) != v {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPersistence: operations on derived clocks never disturb ancestors —
// the property that makes O(1) reference sharing across threads safe.
func TestPersistence(t *testing.T) {
	base := Tree{}.Set(1, 10).Set(2, 20)
	snapshot := map[int64]uint64{1: 10, 2: 20}

	derived := base
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		switch rng.Intn(3) {
		case 0:
			derived = derived.Tick(int64(rng.Intn(10)))
		case 1:
			derived = derived.Set(int64(rng.Intn(10)), uint64(rng.Intn(100)))
		case 2:
			derived = Join(derived, randomTree(rng))
		}
		for k, v := range snapshot {
			if base.Get(k) != v {
				t.Fatalf("ancestor mutated at step %d: key %d = %d, want %d",
					i, k, base.Get(k), v)
			}
		}
		if base.Len() != 2 {
			t.Fatalf("ancestor length changed: %d", base.Len())
		}
	}
}
