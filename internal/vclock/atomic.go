package vclock

import "sync/atomic"

// Atomic is an atomically swappable reference to an immutable Tree. Because a
// Tree is a single pointer to persistent structure, publishing a new version
// is one pointer store and reading one pointer load — no lock, no allocation,
// no copying. TSVDHB keeps one Atomic per thread and per lock: the owning
// thread swaps in ticked clocks on its hot path while forks, joins and lock
// transfers read whatever version is current.
//
// The zero value holds the empty clock.
type Atomic struct {
	root atomic.Pointer[node]
}

// Load returns the current clock.
func (a *Atomic) Load() Tree { return Tree{root: a.root.Load()} }

// Store publishes c as the current clock.
func (a *Atomic) Store(c Tree) { a.root.Store(c.root) }
