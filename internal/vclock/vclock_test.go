package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTreeZeroValue(t *testing.T) {
	var c Tree
	if c.Get(1) != 0 {
		t.Fatal("empty clock has nonzero component")
	}
	if c.Len() != 0 {
		t.Fatal("empty clock has nonzero length")
	}
}

func TestTreeSetGet(t *testing.T) {
	var c Tree
	c2 := c.Set(5, 7)
	if c.Get(5) != 0 {
		t.Fatal("Set mutated the original clock")
	}
	if c2.Get(5) != 7 {
		t.Fatalf("Get(5) = %d, want 7", c2.Get(5))
	}
	c3 := c2.Set(5, 9)
	if c2.Get(5) != 7 || c3.Get(5) != 9 {
		t.Fatal("second Set broke persistence")
	}
}

func TestTreeTick(t *testing.T) {
	var c Tree
	for i := 0; i < 10; i++ {
		c = c.Tick(3)
	}
	if c.Get(3) != 10 {
		t.Fatalf("Get(3) = %d, want 10", c.Get(3))
	}
	if c.Get(4) != 0 {
		t.Fatal("Tick leaked into other components")
	}
}

func TestTreeSetSameValueSharesRoot(t *testing.T) {
	c := Tree{}.Set(1, 5)
	c2 := c.Set(1, 5)
	if !SameRef(c, c2) {
		t.Fatal("setting an identical value did not share the tree")
	}
}

func TestJoinBasic(t *testing.T) {
	a := Tree{}.Set(1, 3).Set(2, 5)
	b := Tree{}.Set(1, 7).Set(3, 2)
	j := Join(a, b)
	for _, tc := range []struct {
		k int64
		v uint64
	}{{1, 7}, {2, 5}, {3, 2}} {
		if got := j.Get(tc.k); got != tc.v {
			t.Fatalf("Join.Get(%d) = %d, want %d", tc.k, got, tc.v)
		}
	}
	// Inputs untouched.
	if a.Get(1) != 3 || b.Get(2) != 0 {
		t.Fatal("Join mutated its inputs")
	}
}

func TestJoinReferenceFastPath(t *testing.T) {
	a := Tree{}.Set(1, 3).Set(2, 5)
	j := Join(a, a)
	if !SameRef(j, a) {
		t.Fatal("Join(a, a) did not return a by reference")
	}
	var empty Tree
	if !SameRef(Join(a, empty), a) {
		t.Fatal("Join(a, empty) did not return a by reference")
	}
	if !SameRef(Join(empty, a), a) {
		t.Fatal("Join(empty, a) did not return a by reference")
	}
}

func TestOrderingPredicates(t *testing.T) {
	a := Tree{}.Set(1, 1)
	b := a.Tick(1).Tick(2) // strictly after a
	if !LessOrEqual(a, b) || LessOrEqual(b, a) {
		t.Fatal("a should be strictly before b")
	}
	if !HappenedBefore(a, b) || HappenedBefore(b, a) {
		t.Fatal("HappenedBefore wrong")
	}
	if Concurrent(a, b) {
		t.Fatal("ordered clocks reported concurrent")
	}
	c := Tree{}.Set(1, 5)
	d := Tree{}.Set(2, 5)
	if !Concurrent(c, d) {
		t.Fatal("incomparable clocks not reported concurrent")
	}
	if !LessOrEqual(a, a) || HappenedBefore(a, a) {
		t.Fatal("reflexivity wrong")
	}
}

func TestEachInKeyOrder(t *testing.T) {
	var c Tree
	for _, k := range []int64{5, 1, 9, 3, 7} {
		c = c.Set(k, uint64(k)*10)
	}
	var keys []int64
	c.Each(func(k int64, v uint64) bool {
		keys = append(keys, k)
		if v != uint64(k)*10 {
			t.Fatalf("Each(%d) = %d", k, v)
		}
		return true
	})
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys out of order: %v", keys)
		}
	}
	if len(keys) != 5 {
		t.Fatalf("visited %d keys, want 5", len(keys))
	}
}

// TestTreeMatchesMutableModel drives the AVL clock and the map clock with
// identical random operation sequences and requires identical components and
// identical ordering verdicts.
func TestTreeMatchesMutableModel(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tree Tree
		model := NewMutable()
		var otherTree Tree
		otherModel := NewMutable()
		for step := 0; step < 500; step++ {
			k := int64(rng.Intn(20))
			switch rng.Intn(4) {
			case 0:
				tree = tree.Tick(k)
				model.Tick(k)
			case 1:
				v := uint64(rng.Intn(100))
				tree = tree.Set(k, v)
				model.Set(k, v)
			case 2:
				otherTree = otherTree.Tick(k)
				otherModel.Tick(k)
			case 3:
				tree = Join(tree, otherTree)
				model.JoinInto(otherModel)
			}
		}
		for k := int64(0); k < 20; k++ {
			if tree.Get(k) != model.Get(k) {
				return false
			}
		}
		if LessOrEqual(tree, otherTree) != LessOrEqualM(model, otherModel) {
			return false
		}
		if LessOrEqual(otherTree, tree) != LessOrEqualM(otherModel, model) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTreeBalanced checks the AVL invariant under adversarial (sequential)
// insertion, which degenerates a naive BST to a list.
func TestTreeBalanced(t *testing.T) {
	var c Tree
	const n = 4096
	for i := int64(0); i < n; i++ {
		c = c.Set(i, uint64(i))
	}
	if c.Len() != n {
		t.Fatalf("Len = %d, want %d", c.Len(), n)
	}
	h := treeHeight(c.root)
	// AVL height bound: 1.44·log2(n+2). For 4096 keys that is ~18.
	if h > 18 {
		t.Fatalf("height %d exceeds AVL bound for %d keys", h, n)
	}
	assertAVL(t, c.root)
}

func treeHeight(n *node) int {
	if n == nil {
		return 0
	}
	l, r := treeHeight(n.left), treeHeight(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

func assertAVL(t *testing.T, n *node) (int, int64, int64) {
	t.Helper()
	if n == nil {
		return 0, 0, 0
	}
	lh, _, lmax := assertAVL(t, n.left)
	rh, rmin, _ := assertAVL(t, n.right)
	if n.left != nil && lmax >= n.key {
		t.Fatalf("BST order violated at key %d", n.key)
	}
	if n.right != nil && rmin <= n.key {
		t.Fatalf("BST order violated at key %d", n.key)
	}
	if d := lh - rh; d < -1 || d > 1 {
		t.Fatalf("AVL balance violated at key %d: %d vs %d", n.key, lh, rh)
	}
	h := lh
	if rh > h {
		h = rh
	}
	h++
	if int(n.height) != h {
		t.Fatalf("stored height %d != computed %d at key %d", n.height, h, n.key)
	}
	minKey, maxKey := n.key, n.key
	if n.left != nil {
		_, lmin, _ := assertAVL(t, n.left)
		minKey = lmin
	}
	if n.right != nil {
		_, _, rmax := assertAVL(t, n.right)
		maxKey = rmax
	}
	return h, minKey, maxKey
}

// TestJoinBalanced ensures merged trees stay balanced too.
func TestJoinBalanced(t *testing.T) {
	var a, b Tree
	for i := int64(0); i < 1000; i += 2 {
		a = a.Set(i, uint64(i))
	}
	for i := int64(1); i < 1000; i += 2 {
		b = b.Set(i, uint64(i))
	}
	j := Join(a, b)
	if j.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", j.Len())
	}
	assertAVL(t, j.root)
}

func TestMutableCopyIndependent(t *testing.T) {
	m := NewMutable()
	m.Set(1, 5)
	c := m.Copy()
	c.Tick(1)
	if m.Get(1) != 5 || c.Get(1) != 6 {
		t.Fatal("Copy is not independent")
	}
}

func TestMutableToTree(t *testing.T) {
	m := NewMutable()
	m.Set(1, 5)
	m.Set(9, 2)
	tr := m.ToTree()
	if tr.Get(1) != 5 || tr.Get(9) != 2 || tr.Len() != 2 {
		t.Fatal("ToTree mismatch")
	}
}

// --- Benchmarks backing the §3.5 representation discussion ---

func buildTree(n int) Tree {
	var c Tree
	for i := 0; i < n; i++ {
		c = c.Set(int64(i), uint64(i))
	}
	return c
}

func buildMutable(n int) Mutable {
	m := NewMutable()
	for i := 0; i < n; i++ {
		m.Set(int64(i), uint64(i))
	}
	return m
}

// Message send: immutable clocks are passed by reference (O(1))...
func BenchmarkSendImmutable(b *testing.B) {
	c := buildTree(256)
	var sink Tree
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = c // reference copy
	}
	_ = sink
}

// ...whereas mutable clocks must be deep-copied (O(n)).
func BenchmarkSendMutable(b *testing.B) {
	c := buildMutable(256)
	var sink Mutable
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = c.Copy()
	}
	_ = sink
}

// Increment: immutable pays O(log n) path copying...
func BenchmarkTickImmutable(b *testing.B) {
	c := buildTree(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c = c.Tick(128)
	}
}

// ...mutable is O(1) in place.
func BenchmarkTickMutable(b *testing.B) {
	c := buildMutable(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Tick(128)
	}
}

// Receive with reference equality: O(1) fast path.
func BenchmarkJoinSameRef(b *testing.B) {
	c := buildTree(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Join(c, c)
	}
}

// Receive of diverged clocks: the O(n) element-wise max.
func BenchmarkJoinDiverged(b *testing.B) {
	c := buildTree(256)
	d := c.Tick(1).Tick(300)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Join(c, d)
	}
}
