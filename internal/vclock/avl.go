// Package vclock implements vector clocks for the TSVDHB variant (§3.5).
//
// Two representations are provided. Tree is the paper's choice: an
// immutable AVL tree-map, so a message-send (fork, lock release, join
// hand-off) copies the clock in O(1) by sharing the reference, while
// increments cost O(log n) path copying. Mutable is the traditional
// array/hash representation used as the comparison baseline in the
// package's benchmarks. Element-wise max exploits reference equality of
// shared subtrees: joining a task that passed through no TSVD point since
// fork compares equal by pointer and costs O(1), the common case the paper
// calls out.
package vclock

// Tree is an immutable vector clock: a persistent AVL tree from thread id to
// logical time. The zero value is the empty clock. All operations return new
// trees; existing trees are never modified, so references can be shared
// freely across threads without synchronization.
type Tree struct {
	root *node
}

type node struct {
	key         int64
	val         uint64
	left, right *node
	height      int8
	size        int32
}

func height(n *node) int8 {
	if n == nil {
		return 0
	}
	return n.height
}

func size(n *node) int32 {
	if n == nil {
		return 0
	}
	return n.size
}

func mk(key int64, val uint64, left, right *node) *node {
	h := height(left)
	if hr := height(right); hr > h {
		h = hr
	}
	return &node{
		key: key, val: val, left: left, right: right,
		height: h + 1,
		size:   size(left) + size(right) + 1,
	}
}

// balance rebuilds a subtree that may be off by one insertion.
func balance(key int64, val uint64, left, right *node) *node {
	switch d := height(left) - height(right); {
	case d > 1:
		if height(left.left) >= height(left.right) { // LL
			return mk(left.key, left.val, left.left, mk(key, val, left.right, right))
		}
		lr := left.right // LR
		return mk(lr.key, lr.val,
			mk(left.key, left.val, left.left, lr.left),
			mk(key, val, lr.right, right))
	case d < -1:
		if height(right.right) >= height(right.left) { // RR
			return mk(right.key, right.val, mk(key, val, left, right.left), right.right)
		}
		rl := right.left // RL
		return mk(rl.key, rl.val,
			mk(key, val, left, rl.left),
			mk(right.key, right.val, rl.right, right.right))
	default:
		return mk(key, val, left, right)
	}
}

func insert(n *node, key int64, val uint64) *node {
	if n == nil {
		return mk(key, val, nil, nil)
	}
	switch {
	case key < n.key:
		return balance(n.key, n.val, insert(n.left, key, val), n.right)
	case key > n.key:
		return balance(n.key, n.val, n.left, insert(n.right, key, val))
	default:
		if n.val == val {
			return n
		}
		return mk(n.key, val, n.left, n.right)
	}
}

// Get returns the component for thread id t (0 when absent).
func (c Tree) Get(t int64) uint64 {
	n := c.root
	for n != nil {
		switch {
		case t < n.key:
			n = n.left
		case t > n.key:
			n = n.right
		default:
			return n.val
		}
	}
	return 0
}

// Set returns a clock with component t set to v. O(log n).
func (c Tree) Set(t int64, v uint64) Tree {
	return Tree{root: insert(c.root, t, v)}
}

// Tick returns a clock with component t incremented. This is the only
// operation TSVDHB performs at TSVD points, keeping the O(log n) cost off
// the frequent synchronization events (§3.5, first optimization).
func (c Tree) Tick(t int64) Tree {
	return c.Set(t, c.Get(t)+1)
}

// Len returns the number of components.
func (c Tree) Len() int { return int(size(c.root)) }

// Join returns the element-wise maximum of a and b. Shared subtrees (and in
// the common fork/join-without-TSVD-points case, the whole clock) compare
// equal by reference and are returned without traversal — the O(1) fast
// path of §3.5's third optimization.
func Join(a, b Tree) Tree {
	return Tree{root: merge(a.root, b.root)}
}

func merge(a, b *node) *node {
	if a == b || b == nil {
		return a
	}
	if a == nil {
		return b
	}
	// Split b around a's root key, then max a.val into place and recurse.
	bl, bv, br := split(b, a.key)
	v := a.val
	if bv > v {
		v = bv
	}
	left := merge(a.left, bl)
	right := merge(a.right, br)
	return join(left, a.key, v, right)
}

// split partitions n into keys < k, the value at k (0 if absent), keys > k.
func split(n *node, k int64) (*node, uint64, *node) {
	if n == nil {
		return nil, 0, nil
	}
	switch {
	case k < n.key:
		l, v, r := split(n.left, k)
		return l, v, join(r, n.key, n.val, n.right)
	case k > n.key:
		l, v, r := split(n.right, k)
		return join(n.left, n.key, n.val, l), v, r
	default:
		return n.left, n.val, n.right
	}
}

// join builds a balanced tree from left < key < right.
func join(left *node, key int64, val uint64, right *node) *node {
	switch {
	case height(left) > height(right)+1:
		return balance(left.key, left.val, left.left, join(left.right, key, val, right))
	case height(right) > height(left)+1:
		return balance(right.key, right.val, join(left, key, val, right.left), right.right)
	default:
		return mk(key, val, left, right)
	}
}

// LessOrEqual reports whether every component of a is ≤ the corresponding
// component of b, i.e. a happened-before-or-equals b. Reference-equal
// subtrees short-circuit to true.
func LessOrEqual(a, b Tree) bool {
	ok := true
	walk(a.root, func(k int64, v uint64) bool {
		if v > b.Get(k) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// HappenedBefore reports a < b: a ≤ b and a ≠ b.
func HappenedBefore(a, b Tree) bool {
	return LessOrEqual(a, b) && !LessOrEqual(b, a)
}

// Concurrent reports that neither clock ordered before the other.
func Concurrent(a, b Tree) bool {
	return !LessOrEqual(a, b) && !LessOrEqual(b, a)
}

func walk(n *node, fn func(int64, uint64) bool) bool {
	if n == nil {
		return true
	}
	return walk(n.left, fn) && fn(n.key, n.val) && walk(n.right, fn)
}

// Each visits the components in key order.
func (c Tree) Each(fn func(t int64, v uint64) bool) {
	walk(c.root, fn)
}

// SameRef reports whether a and b share the identical root — the O(1)
// equality fast path used on join messages.
func SameRef(a, b Tree) bool { return a.root == b.root }
