package vclock

// Mutable is the traditional hash-table vector clock: O(1) in-place
// increment but O(n) copy on every message send. It exists as the baseline
// the paper compares the immutable representation against (§3.5, second
// optimization) and is exercised by this package's benchmarks.
type Mutable map[int64]uint64

// NewMutable returns an empty mutable clock.
func NewMutable() Mutable { return Mutable{} }

// Get returns the component for t.
func (c Mutable) Get(t int64) uint64 { return c[t] }

// Set updates the component for t in place.
func (c Mutable) Set(t int64, v uint64) { c[t] = v }

// Tick increments the component for t in place.
func (c Mutable) Tick(t int64) { c[t]++ }

// Copy returns an independent copy — the O(n) cost paid on every
// message-send with mutable clocks.
func (c Mutable) Copy() Mutable {
	out := make(Mutable, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// JoinInto folds other into c element-wise (receive event).
func (c Mutable) JoinInto(other Mutable) {
	for k, v := range other {
		if v > c[k] {
			c[k] = v
		}
	}
}

// LessOrEqualM reports a ≤ b for mutable clocks.
func LessOrEqualM(a, b Mutable) bool {
	for k, v := range a {
		if v > b[k] {
			return false
		}
	}
	return true
}

// ToTree converts a mutable clock to the immutable representation.
func (c Mutable) ToTree() Tree {
	var t Tree
	for k, v := range c {
		t = t.Set(k, v)
	}
	return t
}
