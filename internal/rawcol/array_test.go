package rawcol

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestArrayBasic(t *testing.T) {
	a := NewArray[int]()
	a.Append(1)
	a.Append(2)
	a.Append(3)
	if a.Len() != 3 {
		t.Fatalf("len = %d, want 3", a.Len())
	}
	if v := a.Get(1); v != 2 {
		t.Fatalf("Get(1) = %d, want 2", v)
	}
	a.Set(1, 20)
	if v := a.Get(1); v != 20 {
		t.Fatalf("Get(1) after Set = %d, want 20", v)
	}
	a.Insert(0, 99)
	if got := a.Snapshot(); got[0] != 99 || got[1] != 1 || len(got) != 4 {
		t.Fatalf("after Insert: %v", got)
	}
	a.RemoveAt(0)
	if got := a.Snapshot(); got[0] != 1 || len(got) != 3 {
		t.Fatalf("after RemoveAt: %v", got)
	}
}

func TestArrayOutOfRangePanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(a *Array[int])
	}{
		{"Get", func(a *Array[int]) { a.Get(5) }},
		{"GetNegative", func(a *Array[int]) { a.Get(-1) }},
		{"Set", func(a *Array[int]) { a.Set(5, 0) }},
		{"RemoveAt", func(a *Array[int]) { a.RemoveAt(5) }},
		{"InsertFar", func(a *Array[int]) { a.Insert(9, 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewArray[int]()
			a.Append(1)
			defer func() {
				if recover() == nil {
					t.Fatalf("%s out of range did not panic", tc.name)
				}
			}()
			tc.fn(a)
		})
	}
}

func TestArrayInsertAtEnd(t *testing.T) {
	a := NewArray[int]()
	a.Insert(0, 1) // insert into empty at index 0 is legal
	a.Insert(1, 2) // insert at Len() is legal (append)
	if got := a.Snapshot(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("snapshot = %v", got)
	}
}

func TestArraySort(t *testing.T) {
	a := NewArray[int]()
	for _, v := range []int{5, 3, 9, 1, 7} {
		a.Append(v)
	}
	a.Sort(func(x, y int) bool { return x < y })
	got := a.Snapshot()
	want := []int{1, 3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", got, want)
		}
	}
}

func TestArrayRemoveIndexFunc(t *testing.T) {
	a := NewArray[string]()
	a.Append("x")
	a.Append("y")
	a.Append("z")
	if i := a.IndexFunc(func(s string) bool { return s == "y" }); i != 1 {
		t.Fatalf("IndexFunc(y) = %d, want 1", i)
	}
	if !a.RemoveFunc(func(s string) bool { return s == "y" }) {
		t.Fatal("RemoveFunc(y) = false")
	}
	if a.RemoveFunc(func(s string) bool { return s == "y" }) {
		t.Fatal("second RemoveFunc(y) = true")
	}
	if i := a.IndexFunc(func(s string) bool { return s == "nope" }); i != -1 {
		t.Fatalf("IndexFunc(nope) = %d, want -1", i)
	}
}

func TestArrayRangeDetectsModification(t *testing.T) {
	a := NewArray[int]()
	for i := 0; i < 10; i++ {
		a.Append(i)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Range over mutated array did not panic")
		}
	}()
	a.Range(func(i, v int) bool {
		a.Append(100)
		return true
	})
}

func TestArrayMatchesModel(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewArray[int]()
		var model []int
		for step := 0; step < 1000; step++ {
			switch rng.Intn(4) {
			case 0:
				v := rng.Int()
				a.Append(v)
				model = append(model, v)
			case 1:
				if len(model) == 0 {
					continue
				}
				i := rng.Intn(len(model))
				a.RemoveAt(i)
				model = append(model[:i], model[i+1:]...)
			case 2:
				v := rng.Int()
				i := rng.Intn(len(model) + 1)
				a.Insert(i, v)
				model = append(model, 0)
				copy(model[i+1:], model[i:])
				model[i] = v
			case 3:
				if len(model) == 0 {
					continue
				}
				i := rng.Intn(len(model))
				if a.Get(i) != model[i] {
					return false
				}
			}
			if a.Len() != len(model) {
				return false
			}
		}
		got := a.Snapshot()
		for i := range model {
			if got[i] != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedMapBasic(t *testing.T) {
	m := NewSortedMap[int, string](func(a, b int) bool { return a < b })
	m.Add(3, "c")
	m.Add(1, "a")
	m.Add(2, "b")
	if m.Len() != 3 {
		t.Fatalf("len = %d, want 3", m.Len())
	}
	keys := m.Keys()
	for i, want := range []int{1, 2, 3} {
		if keys[i] != want {
			t.Fatalf("keys = %v, want sorted", keys)
		}
	}
	if v, ok := m.Get(2); !ok || v != "b" {
		t.Fatalf("Get(2) = %q,%v", v, ok)
	}
	if k, v, ok := m.Min(); !ok || k != 1 || v != "a" {
		t.Fatalf("Min = %v,%v,%v", k, v, ok)
	}
	m.Set(2, "B")
	if v, _ := m.Get(2); v != "B" {
		t.Fatalf("Get(2) after Set = %q", v)
	}
	if !m.Delete(1) || m.Delete(1) {
		t.Fatal("Delete behaviour wrong")
	}
	if !m.Contains(3) || m.Contains(1) {
		t.Fatal("Contains behaviour wrong")
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatal("Clear did not empty the map")
	}
	if _, _, ok := m.Min(); ok {
		t.Fatal("Min on empty returned ok")
	}
}

func TestSortedMapDuplicateAddPanics(t *testing.T) {
	m := NewSortedMap[int, int](func(a, b int) bool { return a < b })
	m.Add(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	m.Add(1, 2)
}

func TestChainBasic(t *testing.T) {
	c := NewChain[int]()
	c.PushBack(2)
	c.PushBack(3)
	c.PushFront(1)
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	if got := c.Snapshot(); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("snapshot = %v", got)
	}
	if v, ok := c.PeekFront(); !ok || v != 1 {
		t.Fatalf("PeekFront = %v,%v", v, ok)
	}
	if v, ok := c.PeekBack(); !ok || v != 3 {
		t.Fatalf("PeekBack = %v,%v", v, ok)
	}
	if v := c.PopFront(); v != 1 {
		t.Fatalf("PopFront = %d, want 1", v)
	}
	if v := c.PopBack(); v != 3 {
		t.Fatalf("PopBack = %d, want 3", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if !c.RemoveFunc(func(v int) bool { return v == 2 }) {
		t.Fatal("RemoveFunc(2) = false")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d, want 0", c.Len())
	}
	if _, ok := c.PeekFront(); ok {
		t.Fatal("PeekFront on empty returned ok")
	}
}

func TestChainPopEmptyPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func(c *Chain[int])
	}{
		{"PopFront", func(c *Chain[int]) { c.PopFront() }},
		{"PopBack", func(c *Chain[int]) { c.PopBack() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s on empty did not panic", tc.name)
				}
			}()
			tc.fn(NewChain[int]())
		})
	}
}

func TestChainRemoveMiddleAndEnds(t *testing.T) {
	build := func() *Chain[int] {
		c := NewChain[int]()
		for i := 1; i <= 5; i++ {
			c.PushBack(i)
		}
		return c
	}
	for _, target := range []int{1, 3, 5} {
		c := build()
		if !c.RemoveFunc(func(v int) bool { return v == target }) {
			t.Fatalf("RemoveFunc(%d) = false", target)
		}
		for _, v := range c.Snapshot() {
			if v == target {
				t.Fatalf("value %d still present", target)
			}
		}
		if c.Len() != 4 {
			t.Fatalf("len = %d, want 4", c.Len())
		}
	}
	c := build()
	c.Clear()
	if c.Len() != 0 {
		t.Fatal("Clear did not empty chain")
	}
	c.PushBack(9) // usable after clear
	if v := c.PopFront(); v != 9 {
		t.Fatalf("PopFront after Clear = %d", v)
	}
}
