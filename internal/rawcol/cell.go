package rawcol

import "sync"

// Cell is a single mutable value — the backing store for scalar
// thread-unsafe state such as counters and cached singletons. Read-modify-
// write sequences built from Get and Set race exactly like an unprotected
// field (lost updates), which is the statsd-gauge bug class of Table 4.
type Cell[T any] struct {
	shield  sync.Mutex
	v       T
	version uint64
}

// NewCell returns a Cell holding v.
func NewCell[T any](v T) *Cell[T] {
	return &Cell[T]{v: v}
}

// Get returns the current value.
func (c *Cell[T]) Get() T {
	c.shield.Lock()
	defer c.shield.Unlock()
	return c.v
}

// Set replaces the value.
func (c *Cell[T]) Set(v T) {
	c.shield.Lock()
	defer c.shield.Unlock()
	c.v = v
	c.version++
}

// Version returns the mutation counter.
func (c *Cell[T]) Version() uint64 {
	c.shield.Lock()
	defer c.shield.Unlock()
	return c.version
}
