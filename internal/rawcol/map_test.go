package rawcol

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMapBasic(t *testing.T) {
	m := NewMap[string, int]()
	if m.Len() != 0 {
		t.Fatalf("new map has len %d, want 0", m.Len())
	}
	m.Add("a", 1)
	m.Add("b", 2)
	if got := m.Len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v,%v, want 1,true", v, ok)
	}
	if v, ok := m.Get("missing"); ok {
		t.Fatalf("Get(missing) = %v,%v, want _,false", v, ok)
	}
	if !m.Contains("b") {
		t.Fatal("Contains(b) = false, want true")
	}
	m.Set("a", 10)
	if v := m.MustGet("a"); v != 10 {
		t.Fatalf("MustGet(a) = %d, want 10", v)
	}
	if !m.Delete("a") {
		t.Fatal("Delete(a) = false, want true")
	}
	if m.Delete("a") {
		t.Fatal("second Delete(a) = true, want false")
	}
	if m.Len() != 1 {
		t.Fatalf("len after delete = %d, want 1", m.Len())
	}
}

func TestMapAddDuplicatePanics(t *testing.T) {
	m := NewMap[int, int]()
	m.Add(7, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Add of duplicate key did not panic")
		}
	}()
	m.Add(7, 2)
}

func TestMapMustGetMissingPanics(t *testing.T) {
	m := NewMap[int, int]()
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet on missing key did not panic")
		}
	}()
	m.MustGet(42)
}

func TestMapGetOrAdd(t *testing.T) {
	m := NewMap[string, int]()
	if v, existed := m.GetOrAdd("k", 5); existed || v != 5 {
		t.Fatalf("GetOrAdd new = %v,%v, want 5,false", v, existed)
	}
	if v, existed := m.GetOrAdd("k", 9); !existed || v != 5 {
		t.Fatalf("GetOrAdd existing = %v,%v, want 5,true", v, existed)
	}
}

func TestMapGrowAndDeleteMany(t *testing.T) {
	m := NewMap[int, int]()
	const n = 5000
	for i := 0; i < n; i++ {
		m.Add(i, i*i)
	}
	if m.Len() != n {
		t.Fatalf("len = %d, want %d", m.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := m.Get(i); !ok || v != i*i {
			t.Fatalf("Get(%d) = %v,%v, want %d,true", i, v, ok, i*i)
		}
	}
	for i := 0; i < n; i += 2 {
		if !m.Delete(i) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	if m.Len() != n/2 {
		t.Fatalf("len = %d, want %d", m.Len(), n/2)
	}
	for i := 0; i < n; i++ {
		_, ok := m.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
}

func TestMapKeysValues(t *testing.T) {
	m := NewMap[int, string]()
	want := map[int]string{1: "a", 2: "b", 3: "c"}
	for k, v := range want {
		m.Add(k, v)
	}
	keys := m.Keys()
	if len(keys) != len(want) {
		t.Fatalf("Keys() len = %d, want %d", len(keys), len(want))
	}
	for _, k := range keys {
		if _, ok := want[k]; !ok {
			t.Fatalf("unexpected key %d", k)
		}
	}
	if vs := m.Values(); len(vs) != len(want) {
		t.Fatalf("Values() len = %d, want %d", len(vs), len(want))
	}
}

func TestMapRange(t *testing.T) {
	m := NewMap[int, int]()
	for i := 0; i < 100; i++ {
		m.Add(i, i)
	}
	sum := 0
	m.Range(func(k, v int) bool {
		sum += v
		return true
	})
	if sum != 99*100/2 {
		t.Fatalf("range sum = %d, want %d", sum, 99*100/2)
	}
	// Early stop.
	count := 0
	m.Range(func(k, v int) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early-stop visited %d, want 10", count)
	}
}

func TestMapRangeDetectsModification(t *testing.T) {
	m := NewMap[int, int]()
	for i := 0; i < 50; i++ {
		m.Add(i, i)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Range over mutated map did not panic")
		}
	}()
	m.Range(func(k, v int) bool {
		m.Set(1000+k, k) // mutate mid-iteration
		return true
	})
}

func TestMapClear(t *testing.T) {
	m := NewMap[int, int]()
	for i := 0; i < 64; i++ {
		m.Add(i, i)
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("len after clear = %d, want 0", m.Len())
	}
	if m.Contains(3) {
		t.Fatal("Contains(3) after clear = true")
	}
	m.Add(3, 9) // reusable after clear
	if v := m.MustGet(3); v != 9 {
		t.Fatalf("MustGet(3) = %d, want 9", v)
	}
}

// TestMapMatchesModel drives the Map and Go's built-in map with the same
// random operation sequence and requires identical observable behaviour.
func TestMapMatchesModel(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMap[int, int]()
		model := map[int]int{}
		for step := 0; step < 2000; step++ {
			k := rng.Intn(200)
			switch rng.Intn(5) {
			case 0: // Set
				v := rng.Int()
				m.Set(k, v)
				model[k] = v
			case 1: // Delete
				_, inModel := model[k]
				if m.Delete(k) != inModel {
					return false
				}
				delete(model, k)
			case 2: // Get
				v, ok := m.Get(k)
				mv, mok := model[k]
				if ok != mok || (ok && v != mv) {
					return false
				}
			case 3: // Contains
				if _, mok := model[k]; m.Contains(k) != mok {
					return false
				}
			case 4: // GetOrAdd
				v := rng.Int()
				got, existed := m.GetOrAdd(k, v)
				mv, mok := model[k]
				if existed != mok {
					return false
				}
				if existed && got != mv {
					return false
				}
				if !existed {
					model[k] = v
				}
			}
			if m.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMapStringKeys(t *testing.T) {
	m := NewMap[string, string]()
	for i := 0; i < 1000; i++ {
		m.Set(fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if v, ok := m.Get(fmt.Sprintf("key-%d", i)); !ok || v != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get(key-%d) = %q,%v", i, v, ok)
		}
	}
}

func BenchmarkMapSet(b *testing.B) {
	m := NewMap[int, int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Set(i&0xffff, i)
	}
}

func BenchmarkMapGet(b *testing.B) {
	m := NewMap[int, int]()
	for i := 0; i < 1<<16; i++ {
		m.Set(i, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(i & 0xffff)
	}
}
