// Package rawcol implements the raw, thread-unsafe container data structures
// that the instrumented collections (internal/collections) wrap — the Go
// analogue of .NET's System.Collections.Generic implementations.
//
// These containers are "thread-unsafe" in the contract sense: concurrent
// writers (or a writer racing a reader) can observe lost updates, duplicate
// keys, invalidated iteration and contract panics, exactly like .NET's
// Dictionary or List. Each individual operation is, however, executed under a
// tiny internal "shield" mutex. The shield exists because a racing Go
// built-in map aborts the whole process, whereas a racing .NET Dictionary
// merely corrupts itself or throws — and the TSVD harness must keep running
// after triggering a violation. The detector never uses the shield: a
// thread-safety violation is detected by the trap mechanism before the
// operation executes (DESIGN.md, "Substitutions").
package rawcol

import (
	"fmt"
	"hash/maphash"
	"sync"
)

// Map is an open-addressed hash map with robin-hood probing and
// backward-shift deletion.
type Map[K comparable, V any] struct {
	shield  sync.Mutex
	seed    maphash.Seed
	entries []mapEntry[K, V]
	mask    uint64
	size    int
	// version increments on every mutation; iteration snapshots compare it
	// to emulate .NET's "collection was modified" InvalidOperationException.
	version uint64
}

type mapEntry[K comparable, V any] struct {
	key      K
	value    V
	dist     int8 // probe distance + 1; 0 means empty
	occupied bool
}

const minMapCap = 8

// NewMap returns an empty Map.
func NewMap[K comparable, V any]() *Map[K, V] {
	return &Map[K, V]{
		seed:    maphash.MakeSeed(),
		entries: make([]mapEntry[K, V], minMapCap),
		mask:    minMapCap - 1,
	}
}

func (m *Map[K, V]) hash(k K) uint64 {
	return maphash.Comparable(m.seed, k)
}

// Len returns the number of entries.
func (m *Map[K, V]) Len() int {
	m.shield.Lock()
	defer m.shield.Unlock()
	return m.size
}

// Version returns the mutation counter; iteration helpers use it to detect
// concurrent modification.
func (m *Map[K, V]) Version() uint64 {
	m.shield.Lock()
	defer m.shield.Unlock()
	return m.version
}

// Get returns the value for k and whether it was present.
func (m *Map[K, V]) Get(k K) (V, bool) {
	m.shield.Lock()
	defer m.shield.Unlock()
	if i, ok := m.find(k); ok {
		return m.entries[i].value, true
	}
	var zero V
	return zero, false
}

// MustGet returns the value for k, panicking like .NET's indexer on a
// missing key (KeyNotFoundException).
func (m *Map[K, V]) MustGet(k K) V {
	m.shield.Lock()
	defer m.shield.Unlock()
	if i, ok := m.find(k); ok {
		return m.entries[i].value
	}
	panic(fmt.Sprintf("rawcol: key not found: %v", k))
}

// Contains reports whether k is present.
func (m *Map[K, V]) Contains(k K) bool {
	m.shield.Lock()
	defer m.shield.Unlock()
	_, ok := m.find(k)
	return ok
}

// Add inserts k→v and panics if k already exists, matching .NET
// Dictionary.Add's ArgumentException. This is the typical crash signature of
// the "two writers add different keys" TSV of Figure 1 when the keys collide.
func (m *Map[K, V]) Add(k K, v V) {
	m.shield.Lock()
	defer m.shield.Unlock()
	if _, ok := m.find(k); ok {
		panic(fmt.Sprintf("rawcol: duplicate key: %v", k))
	}
	m.put(k, v)
}

// Set inserts or replaces k→v (the .NET indexer-set).
func (m *Map[K, V]) Set(k K, v V) {
	m.shield.Lock()
	defer m.shield.Unlock()
	if i, ok := m.find(k); ok {
		m.entries[i].value = v
		m.version++
		return
	}
	m.put(k, v)
}

// GetOrAdd returns the existing value for k or inserts v and returns it.
func (m *Map[K, V]) GetOrAdd(k K, v V) (V, bool) {
	m.shield.Lock()
	defer m.shield.Unlock()
	if i, ok := m.find(k); ok {
		return m.entries[i].value, true
	}
	m.put(k, v)
	return v, false
}

// Delete removes k, reporting whether it was present.
func (m *Map[K, V]) Delete(k K) bool {
	m.shield.Lock()
	defer m.shield.Unlock()
	i, ok := m.find(k)
	if !ok {
		return false
	}
	m.version++
	m.size--
	// Backward-shift deletion: pull subsequent displaced entries back.
	for {
		next := (uint64(i) + 1) & m.mask
		e := &m.entries[next]
		if !e.occupied || e.dist <= 1 {
			m.entries[i] = mapEntry[K, V]{}
			return true
		}
		m.entries[i] = *e
		m.entries[i].dist--
		i = int(next)
	}
}

// Clear removes all entries.
func (m *Map[K, V]) Clear() {
	m.shield.Lock()
	defer m.shield.Unlock()
	m.entries = make([]mapEntry[K, V], minMapCap)
	m.mask = minMapCap - 1
	m.size = 0
	m.version++
}

// Keys returns a snapshot of the keys in unspecified order.
func (m *Map[K, V]) Keys() []K {
	m.shield.Lock()
	defer m.shield.Unlock()
	out := make([]K, 0, m.size)
	for i := range m.entries {
		if m.entries[i].occupied {
			out = append(out, m.entries[i].key)
		}
	}
	return out
}

// Values returns a snapshot of the values in unspecified order.
func (m *Map[K, V]) Values() []V {
	m.shield.Lock()
	defer m.shield.Unlock()
	out := make([]V, 0, m.size)
	for i := range m.entries {
		if m.entries[i].occupied {
			out = append(out, m.entries[i].value)
		}
	}
	return out
}

// Range calls fn for each entry until fn returns false. It panics with a
// concurrent-modification error if the map is mutated while ranging,
// emulating .NET enumerator invalidation.
func (m *Map[K, V]) Range(fn func(K, V) bool) {
	m.shield.Lock()
	startVersion := m.version
	entries := m.entries
	m.shield.Unlock()
	for i := range entries {
		m.shield.Lock()
		modified := m.version != startVersion
		var k K
		var v V
		occupied := false
		if !modified && entries[i].occupied {
			k, v, occupied = entries[i].key, entries[i].value, true
		}
		m.shield.Unlock()
		if modified {
			panic("rawcol: map modified during iteration")
		}
		if occupied && !fn(k, v) {
			return
		}
	}
}

// find returns the slot index of k.
func (m *Map[K, V]) find(k K) (int, bool) {
	i := m.hash(k) & m.mask
	dist := int8(1)
	for {
		e := &m.entries[i]
		if !e.occupied || e.dist < dist {
			return 0, false
		}
		if e.key == k {
			return int(i), true
		}
		i = (i + 1) & m.mask
		dist++
		if dist < 0 { // probe-length overflow: table pathologically full
			return 0, false
		}
	}
}

// put inserts a key known to be absent. Caller holds the shield.
func (m *Map[K, V]) put(k K, v V) {
	m.version++
	if (m.size+1)*4 >= len(m.entries)*3 { // load factor 0.75
		m.grow()
	}
	m.insert(mapEntry[K, V]{key: k, value: v, dist: 1, occupied: true})
	m.size++
}

func (m *Map[K, V]) insert(e mapEntry[K, V]) {
	i := m.hash(e.key) & m.mask
	for {
		slot := &m.entries[i]
		if !slot.occupied {
			*slot = e
			return
		}
		if slot.dist < e.dist { // robin hood: steal from the rich
			*slot, e = e, *slot
		}
		i = (i + 1) & m.mask
		e.dist++
	}
}

func (m *Map[K, V]) grow() {
	old := m.entries
	m.entries = make([]mapEntry[K, V], len(old)*2)
	m.mask = uint64(len(m.entries) - 1)
	for i := range old {
		if old[i].occupied {
			e := old[i]
			e.dist = 1
			m.insert(e)
		}
	}
}
