package rawcol

import "sync"

// Heap is a binary min-heap ordered by a less function, the backing store
// for the instrumented PriorityQueue. Like the other raw containers it is
// thread-unsafe by contract; see the package comment for the shield mutex.
type Heap[T any] struct {
	shield  sync.Mutex
	less    func(a, b T) bool
	items   []T
	version uint64
}

// NewHeap returns an empty Heap ordered by less.
func NewHeap[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len returns the number of elements.
func (h *Heap[T]) Len() int {
	h.shield.Lock()
	defer h.shield.Unlock()
	return len(h.items)
}

// Push inserts v.
func (h *Heap[T]) Push(v T) {
	h.shield.Lock()
	defer h.shield.Unlock()
	h.items = append(h.items, v)
	h.siftUp(len(h.items) - 1)
	h.version++
}

// Pop removes and returns the minimum element, panicking when empty —
// the .NET PriorityQueue.Dequeue InvalidOperationException signature.
func (h *Heap[T]) Pop() T {
	h.shield.Lock()
	defer h.shield.Unlock()
	if len(h.items) == 0 {
		panic("rawcol: pop from empty heap")
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.siftDown(0)
	}
	h.version++
	return top
}

// Peek returns the minimum element without removing it.
func (h *Heap[T]) Peek() (T, bool) {
	h.shield.Lock()
	defer h.shield.Unlock()
	if len(h.items) == 0 {
		var zero T
		return zero, false
	}
	return h.items[0], true
}

// Clear removes all elements.
func (h *Heap[T]) Clear() {
	h.shield.Lock()
	defer h.shield.Unlock()
	h.items = nil
	h.version++
}

// Snapshot returns the elements in heap (not sorted) order.
func (h *Heap[T]) Snapshot() []T {
	h.shield.Lock()
	defer h.shield.Unlock()
	out := make([]T, len(h.items))
	copy(out, h.items)
	return out
}

func (h *Heap[T]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) siftDown(i int) {
	n := len(h.items)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.less(h.items[left], h.items[smallest]) {
			smallest = left
		}
		if right < n && h.less(h.items[right], h.items[smallest]) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
