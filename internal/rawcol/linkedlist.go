package rawcol

import "sync"

// Chain is a doubly-linked list, the backing store for the instrumented
// LinkedList and the Queue/Stack deque operations.
type Chain[T any] struct {
	shield  sync.Mutex
	head    *chainNode[T]
	tail    *chainNode[T]
	size    int
	version uint64
}

type chainNode[T any] struct {
	value T
	prev  *chainNode[T]
	next  *chainNode[T]
}

// NewChain returns an empty Chain.
func NewChain[T any]() *Chain[T] {
	return &Chain[T]{}
}

// Len returns the number of elements.
func (c *Chain[T]) Len() int {
	c.shield.Lock()
	defer c.shield.Unlock()
	return c.size
}

// PushBack appends v at the tail.
func (c *Chain[T]) PushBack(v T) {
	c.shield.Lock()
	defer c.shield.Unlock()
	n := &chainNode[T]{value: v, prev: c.tail}
	if c.tail != nil {
		c.tail.next = n
	} else {
		c.head = n
	}
	c.tail = n
	c.size++
	c.version++
}

// PushFront prepends v at the head.
func (c *Chain[T]) PushFront(v T) {
	c.shield.Lock()
	defer c.shield.Unlock()
	n := &chainNode[T]{value: v, next: c.head}
	if c.head != nil {
		c.head.prev = n
	} else {
		c.tail = n
	}
	c.head = n
	c.size++
	c.version++
}

// PopFront removes and returns the head element. Panics when empty, matching
// .NET Queue.Dequeue's InvalidOperationException — the crash signature of
// the "check Count then Dequeue" TSV.
func (c *Chain[T]) PopFront() T {
	c.shield.Lock()
	defer c.shield.Unlock()
	if c.head == nil {
		panic("rawcol: pop from empty chain")
	}
	n := c.head
	c.head = n.next
	if c.head != nil {
		c.head.prev = nil
	} else {
		c.tail = nil
	}
	c.size--
	c.version++
	return n.value
}

// PopBack removes and returns the tail element, panicking when empty.
func (c *Chain[T]) PopBack() T {
	c.shield.Lock()
	defer c.shield.Unlock()
	if c.tail == nil {
		panic("rawcol: pop from empty chain")
	}
	n := c.tail
	c.tail = n.prev
	if c.tail != nil {
		c.tail.next = nil
	} else {
		c.head = nil
	}
	c.size--
	c.version++
	return n.value
}

// PeekFront returns the head element without removing it.
func (c *Chain[T]) PeekFront() (T, bool) {
	c.shield.Lock()
	defer c.shield.Unlock()
	if c.head == nil {
		var zero T
		return zero, false
	}
	return c.head.value, true
}

// PeekBack returns the tail element without removing it.
func (c *Chain[T]) PeekBack() (T, bool) {
	c.shield.Lock()
	defer c.shield.Unlock()
	if c.tail == nil {
		var zero T
		return zero, false
	}
	return c.tail.value, true
}

// RemoveFunc deletes the first element matching eq, reporting success.
func (c *Chain[T]) RemoveFunc(eq func(T) bool) bool {
	c.shield.Lock()
	defer c.shield.Unlock()
	for n := c.head; n != nil; n = n.next {
		if !eq(n.value) {
			continue
		}
		if n.prev != nil {
			n.prev.next = n.next
		} else {
			c.head = n.next
		}
		if n.next != nil {
			n.next.prev = n.prev
		} else {
			c.tail = n.prev
		}
		c.size--
		c.version++
		return true
	}
	return false
}

// Snapshot returns the elements head-to-tail.
func (c *Chain[T]) Snapshot() []T {
	c.shield.Lock()
	defer c.shield.Unlock()
	out := make([]T, 0, c.size)
	for n := c.head; n != nil; n = n.next {
		out = append(out, n.value)
	}
	return out
}

// Clear removes all elements.
func (c *Chain[T]) Clear() {
	c.shield.Lock()
	defer c.shield.Unlock()
	c.head, c.tail, c.size = nil, nil, 0
	c.version++
}
