package rawcol

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestChainMatchesModel drives the Chain and a plain slice deque with the
// same random operations and requires identical observable behaviour.
func TestChainMatchesModel(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewChain[int]()
		var model []int
		for step := 0; step < 1500; step++ {
			switch rng.Intn(7) {
			case 0:
				v := rng.Int()
				c.PushBack(v)
				model = append(model, v)
			case 1:
				v := rng.Int()
				c.PushFront(v)
				model = append([]int{v}, model...)
			case 2:
				if len(model) == 0 {
					continue
				}
				if c.PopFront() != model[0] {
					return false
				}
				model = model[1:]
			case 3:
				if len(model) == 0 {
					continue
				}
				if c.PopBack() != model[len(model)-1] {
					return false
				}
				model = model[:len(model)-1]
			case 4:
				v, ok := c.PeekFront()
				if ok != (len(model) > 0) {
					return false
				}
				if ok && v != model[0] {
					return false
				}
			case 5:
				if len(model) == 0 {
					continue
				}
				target := model[rng.Intn(len(model))]
				if !c.RemoveFunc(func(x int) bool { return x == target }) {
					return false
				}
				for i, v := range model {
					if v == target {
						model = append(model[:i], model[i+1:]...)
						break
					}
				}
			case 6:
				got := c.Snapshot()
				if len(got) != len(model) {
					return false
				}
				for i := range model {
					if got[i] != model[i] {
						return false
					}
				}
			}
			if c.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestSortedMapMatchesModel compares the SortedMap against a plain map +
// sort on demand.
func TestSortedMapMatchesModel(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewSortedMap[int, int](func(a, b int) bool { return a < b })
		model := map[int]int{}
		for step := 0; step < 800; step++ {
			k := rng.Intn(60)
			switch rng.Intn(4) {
			case 0:
				v := rng.Int()
				m.Set(k, v)
				model[k] = v
			case 1:
				_, inModel := model[k]
				if m.Delete(k) != inModel {
					return false
				}
				delete(model, k)
			case 2:
				v, ok := m.Get(k)
				mv, mok := model[k]
				if ok != mok || (ok && v != mv) {
					return false
				}
			case 3:
				if m.Contains(k) != (func() bool { _, ok := model[k]; return ok })() {
					return false
				}
			}
			if m.Len() != len(model) {
				return false
			}
			// Keys must be sorted and exactly the model's keys.
			keys := m.Keys()
			if len(keys) != len(model) {
				return false
			}
			for i := 1; i < len(keys); i++ {
				if keys[i-1] >= keys[i] {
					return false
				}
			}
			for _, k := range keys {
				if _, ok := model[k]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
