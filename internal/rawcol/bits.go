package rawcol

import (
	"fmt"
	"math/bits"
	"sync"
)

// Bits is a fixed-size bit vector, the backing store for the instrumented
// BitArray (.NET System.Collections.BitArray).
type Bits struct {
	shield  sync.Mutex
	words   []uint64
	size    int
	version uint64
}

// NewBits returns a Bits of the given size, all false.
func NewBits(size int) *Bits {
	if size < 0 {
		panic("rawcol: negative bit-array size")
	}
	return &Bits{words: make([]uint64, (size+63)/64), size: size}
}

// Size returns the number of bits.
func (b *Bits) Size() int {
	b.shield.Lock()
	defer b.shield.Unlock()
	return b.size
}

func (b *Bits) check(i int) {
	if i < 0 || i >= b.size {
		panic(fmt.Sprintf("rawcol: bit index %d out of range [0,%d)", i, b.size))
	}
}

// Get returns bit i, panicking out of range.
func (b *Bits) Get(i int) bool {
	b.shield.Lock()
	defer b.shield.Unlock()
	b.check(i)
	return b.words[i/64]&(1<<(i%64)) != 0
}

// Set assigns bit i.
func (b *Bits) Set(i int, v bool) {
	b.shield.Lock()
	defer b.shield.Unlock()
	b.check(i)
	if v {
		b.words[i/64] |= 1 << (i % 64)
	} else {
		b.words[i/64] &^= 1 << (i % 64)
	}
	b.version++
}

// Flip inverts bit i and returns the new value.
func (b *Bits) Flip(i int) bool {
	b.shield.Lock()
	defer b.shield.Unlock()
	b.check(i)
	b.words[i/64] ^= 1 << (i % 64)
	b.version++
	return b.words[i/64]&(1<<(i%64)) != 0
}

// OnesCount returns the number of set bits.
func (b *Bits) OnesCount() int {
	b.shield.Lock()
	defer b.shield.Unlock()
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// SetAll assigns every bit.
func (b *Bits) SetAll(v bool) {
	b.shield.Lock()
	defer b.shield.Unlock()
	var fill uint64
	if v {
		fill = ^uint64(0)
	}
	for i := range b.words {
		b.words[i] = fill
	}
	// Trim the trailing word so OnesCount stays exact.
	if v && b.size%64 != 0 {
		b.words[len(b.words)-1] = (1 << (b.size % 64)) - 1
	}
	b.version++
}
