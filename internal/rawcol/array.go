package rawcol

import (
	"fmt"
	"sort"
	"sync"
)

// Array is a growable dynamic array, the backing store for the instrumented
// List. Like .NET's List<T>, index errors panic and mutation during
// iteration invalidates enumerators. See the package comment for the shield
// mutex rationale.
type Array[T any] struct {
	shield  sync.Mutex
	items   []T
	version uint64
}

// NewArray returns an empty Array.
func NewArray[T any]() *Array[T] {
	return &Array[T]{}
}

// Len returns the number of elements.
func (a *Array[T]) Len() int {
	a.shield.Lock()
	defer a.shield.Unlock()
	return len(a.items)
}

// Version returns the mutation counter.
func (a *Array[T]) Version() uint64 {
	a.shield.Lock()
	defer a.shield.Unlock()
	return a.version
}

// Append adds v at the end.
func (a *Array[T]) Append(v T) {
	a.shield.Lock()
	defer a.shield.Unlock()
	a.items = append(a.items, v)
	a.version++
}

// Insert places v at index i, shifting later elements right. Panics if i is
// out of [0, Len()].
func (a *Array[T]) Insert(i int, v T) {
	a.shield.Lock()
	defer a.shield.Unlock()
	if i < 0 || i > len(a.items) {
		panic(fmt.Sprintf("rawcol: insert index %d out of range [0,%d]", i, len(a.items)))
	}
	var zero T
	a.items = append(a.items, zero)
	copy(a.items[i+1:], a.items[i:])
	a.items[i] = v
	a.version++
}

// Get returns the element at i, panicking on an out-of-range index — the
// classic crash signature when a concurrent RemoveAt races a read.
func (a *Array[T]) Get(i int) T {
	a.shield.Lock()
	defer a.shield.Unlock()
	if i < 0 || i >= len(a.items) {
		panic(fmt.Sprintf("rawcol: index %d out of range [0,%d)", i, len(a.items)))
	}
	return a.items[i]
}

// Set replaces the element at i.
func (a *Array[T]) Set(i int, v T) {
	a.shield.Lock()
	defer a.shield.Unlock()
	if i < 0 || i >= len(a.items) {
		panic(fmt.Sprintf("rawcol: index %d out of range [0,%d)", i, len(a.items)))
	}
	a.items[i] = v
	a.version++
}

// RemoveAt deletes the element at i.
func (a *Array[T]) RemoveAt(i int) {
	a.shield.Lock()
	defer a.shield.Unlock()
	if i < 0 || i >= len(a.items) {
		panic(fmt.Sprintf("rawcol: remove index %d out of range [0,%d)", i, len(a.items)))
	}
	a.items = append(a.items[:i], a.items[i+1:]...)
	a.version++
}

// RemoveFunc deletes the first element matching eq, reporting success.
func (a *Array[T]) RemoveFunc(eq func(T) bool) bool {
	a.shield.Lock()
	defer a.shield.Unlock()
	for i := range a.items {
		if eq(a.items[i]) {
			a.items = append(a.items[:i], a.items[i+1:]...)
			a.version++
			return true
		}
	}
	return false
}

// IndexFunc returns the index of the first element matching eq, or -1.
func (a *Array[T]) IndexFunc(eq func(T) bool) int {
	a.shield.Lock()
	defer a.shield.Unlock()
	for i := range a.items {
		if eq(a.items[i]) {
			return i
		}
	}
	return -1
}

// Clear removes all elements.
func (a *Array[T]) Clear() {
	a.shield.Lock()
	defer a.shield.Unlock()
	a.items = nil
	a.version++
}

// Sort orders the elements by less. Two concurrent unprotected Sorts are the
// production-incident bug of §5.6.
func (a *Array[T]) Sort(less func(x, y T) bool) {
	a.shield.Lock()
	defer a.shield.Unlock()
	sort.SliceStable(a.items, func(i, j int) bool { return less(a.items[i], a.items[j]) })
	a.version++
}

// Snapshot returns a copy of the elements.
func (a *Array[T]) Snapshot() []T {
	a.shield.Lock()
	defer a.shield.Unlock()
	out := make([]T, len(a.items))
	copy(out, a.items)
	return out
}

// Range calls fn for each element until fn returns false, panicking on
// concurrent modification like a .NET enumerator.
func (a *Array[T]) Range(fn func(int, T) bool) {
	a.shield.Lock()
	startVersion := a.version
	n := len(a.items)
	a.shield.Unlock()
	for i := 0; i < n; i++ {
		a.shield.Lock()
		modified := a.version != startVersion
		var v T
		ok := false
		if !modified && i < len(a.items) {
			v, ok = a.items[i], true
		}
		a.shield.Unlock()
		if modified {
			panic("rawcol: array modified during iteration")
		}
		if ok && !fn(i, v) {
			return
		}
	}
}
