package rawcol

import (
	"testing"
)

// FuzzMapOperations feeds the hash map a byte-coded operation stream and
// cross-checks every result against Go's built-in map.
func FuzzMapOperations(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 3, 3, 4})
	f.Add([]byte{0, 0, 0, 0, 1, 1, 1, 1})
	f.Add([]byte{5, 10, 20, 30, 40, 50, 60, 70, 80, 90})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := NewMap[byte, int]()
		model := map[byte]int{}
		for i := 0; i+1 < len(data); i += 2 {
			op, k := data[i]%5, data[i+1]
			switch op {
			case 0:
				m.Set(k, i)
				model[k] = i
			case 1:
				_, inModel := model[k]
				if m.Delete(k) != inModel {
					t.Fatalf("Delete(%d) disagrees with model", k)
				}
				delete(model, k)
			case 2:
				v, ok := m.Get(k)
				mv, mok := model[k]
				if ok != mok || (ok && v != mv) {
					t.Fatalf("Get(%d) = %v,%v; model %v,%v", k, v, ok, mv, mok)
				}
			case 3:
				if m.Contains(k) != (func() bool { _, ok := model[k]; return ok })() {
					t.Fatalf("Contains(%d) disagrees with model", k)
				}
			case 4:
				got, existed := m.GetOrAdd(k, i)
				mv, mok := model[k]
				if existed != mok || (existed && got != mv) {
					t.Fatalf("GetOrAdd(%d) disagrees with model", k)
				}
				if !existed {
					model[k] = i
				}
			}
			if m.Len() != len(model) {
				t.Fatalf("Len = %d, model %d", m.Len(), len(model))
			}
		}
	})
}

// FuzzArrayOperations drives the dynamic array against a slice model with
// index clamping so operations stay in range.
func FuzzArrayOperations(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 0, 2, 0})
	f.Add([]byte{0, 9, 3, 1, 0, 5, 4, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		a := NewArray[byte]()
		var model []byte
		for i := 0; i+1 < len(data); i += 2 {
			op, v := data[i]%4, data[i+1]
			switch op {
			case 0:
				a.Append(v)
				model = append(model, v)
			case 1:
				if len(model) == 0 {
					continue
				}
				idx := int(v) % len(model)
				a.RemoveAt(idx)
				model = append(model[:idx], model[idx+1:]...)
			case 2:
				idx := int(v) % (len(model) + 1)
				a.Insert(idx, v)
				model = append(model, 0)
				copy(model[idx+1:], model[idx:])
				model[idx] = v
			case 3:
				if len(model) == 0 {
					continue
				}
				idx := int(v) % len(model)
				if a.Get(idx) != model[idx] {
					t.Fatalf("Get(%d) disagrees with model", idx)
				}
			}
			if a.Len() != len(model) {
				t.Fatalf("Len = %d, model %d", a.Len(), len(model))
			}
		}
		got := a.Snapshot()
		for i := range model {
			if got[i] != model[i] {
				t.Fatalf("final content differs at %d", i)
			}
		}
	})
}
