package rawcol

import (
	"fmt"
	"sort"
	"sync"
)

// SortedMap is an ordered map over a sorted slice with binary search, the
// backing store for the instrumented SortedDictionary.
type SortedMap[K any, V any] struct {
	shield  sync.Mutex
	less    func(a, b K) bool
	keys    []K
	values  []V
	version uint64
}

// NewSortedMap returns an empty SortedMap ordered by less.
func NewSortedMap[K any, V any](less func(a, b K) bool) *SortedMap[K, V] {
	return &SortedMap[K, V]{less: less}
}

// Len returns the number of entries.
func (m *SortedMap[K, V]) Len() int {
	m.shield.Lock()
	defer m.shield.Unlock()
	return len(m.keys)
}

// search returns the insertion index for k and whether keys[idx] == k.
// Caller holds the shield.
func (m *SortedMap[K, V]) search(k K) (int, bool) {
	i := sort.Search(len(m.keys), func(i int) bool { return !m.less(m.keys[i], k) })
	if i < len(m.keys) && !m.less(k, m.keys[i]) && !m.less(m.keys[i], k) {
		return i, true
	}
	return i, false
}

// Get returns the value for k.
func (m *SortedMap[K, V]) Get(k K) (V, bool) {
	m.shield.Lock()
	defer m.shield.Unlock()
	if i, ok := m.search(k); ok {
		return m.values[i], true
	}
	var zero V
	return zero, false
}

// Contains reports whether k is present.
func (m *SortedMap[K, V]) Contains(k K) bool {
	m.shield.Lock()
	defer m.shield.Unlock()
	_, ok := m.search(k)
	return ok
}

// Add inserts k→v, panicking on a duplicate key like .NET SortedDictionary.
func (m *SortedMap[K, V]) Add(k K, v V) {
	m.shield.Lock()
	defer m.shield.Unlock()
	i, ok := m.search(k)
	if ok {
		panic(fmt.Sprintf("rawcol: duplicate key: %v", k))
	}
	m.insertAt(i, k, v)
}

// Set inserts or replaces k→v.
func (m *SortedMap[K, V]) Set(k K, v V) {
	m.shield.Lock()
	defer m.shield.Unlock()
	i, ok := m.search(k)
	if ok {
		m.values[i] = v
		m.version++
		return
	}
	m.insertAt(i, k, v)
}

func (m *SortedMap[K, V]) insertAt(i int, k K, v V) {
	var zk K
	var zv V
	m.keys = append(m.keys, zk)
	m.values = append(m.values, zv)
	copy(m.keys[i+1:], m.keys[i:])
	copy(m.values[i+1:], m.values[i:])
	m.keys[i], m.values[i] = k, v
	m.version++
}

// Delete removes k, reporting whether it was present.
func (m *SortedMap[K, V]) Delete(k K) bool {
	m.shield.Lock()
	defer m.shield.Unlock()
	i, ok := m.search(k)
	if !ok {
		return false
	}
	m.keys = append(m.keys[:i], m.keys[i+1:]...)
	m.values = append(m.values[:i], m.values[i+1:]...)
	m.version++
	return true
}

// Min returns the smallest key and its value.
func (m *SortedMap[K, V]) Min() (K, V, bool) {
	m.shield.Lock()
	defer m.shield.Unlock()
	if len(m.keys) == 0 {
		var zk K
		var zv V
		return zk, zv, false
	}
	return m.keys[0], m.values[0], true
}

// Max returns the largest key and its value.
func (m *SortedMap[K, V]) Max() (K, V, bool) {
	m.shield.Lock()
	defer m.shield.Unlock()
	if len(m.keys) == 0 {
		var zk K
		var zv V
		return zk, zv, false
	}
	last := len(m.keys) - 1
	return m.keys[last], m.values[last], true
}

// Keys returns the keys in order.
func (m *SortedMap[K, V]) Keys() []K {
	m.shield.Lock()
	defer m.shield.Unlock()
	out := make([]K, len(m.keys))
	copy(out, m.keys)
	return out
}

// Clear removes all entries.
func (m *SortedMap[K, V]) Clear() {
	m.shield.Lock()
	defer m.shield.Unlock()
	m.keys, m.values = nil, nil
	m.version++
}
