// Package scenarios reproduces the nine open-source C# bug reports of
// Table 4 as Go programs against the instrumented collections. Each
// scenario models the racy code pattern of the cited repository — a
// telemetry broadcaster, a date cache, an equality-strategy cache, a watch
// stream, a message broker, a type cacher, a statsd gauge, a dynamic class
// factory, and a connection-string singleton — together with the
// developer-style test that TSVD runs to expose it.
package scenarios

import (
	"fmt"
	"time"

	"repro/internal/collections"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/syncx"
	"repro/internal/task"
)

// Scenario is one modeled open-source project.
type Scenario struct {
	// Name matches Table 4's project column.
	Name string
	// Issue cites the upstream bug report the model is based on.
	Issue string
	// Tests are the developer-written unit tests shipped with the
	// project; TSVD runs them unmodified.
	Tests []func(det core.Detector, sched *task.Scheduler)
	// MinTSVs is the number of unique location-pair violations the
	// scenario is expected to yield within two runs (Table 4's "# TSV"
	// is the paper's measurement; ours is the analogous floor).
	MinTSVs int
}

// pace is the scenario workload pacing. Scenario tests are "real" unit
// tests, so they run at a fixed small pace rather than a scaled one; run
// them with a config whose near-miss window comfortably covers it.
const pace = 2 * time.Millisecond

// recoverPanics absorbs the contract panics (duplicate key, index range)
// that a triggered violation legitimately produces.
func recoverPanics(fn func()) {
	defer func() { _ = recover() }()
	fn()
}

// All returns the nine scenarios.
func All() []Scenario {
	return []Scenario{
		applicationInsights(),
		dateTimeExtensions(),
		fluentAssertions(),
		kubernetesClient(),
		radical(),
		sequelocity(),
		statsd(),
		linqDynamic(),
		thunderstruck(),
	}
}

// applicationInsights models "Broadcast processor is dropping telemetry due
// to race condition": sender tasks append telemetry items to a shared
// buffer the flusher concurrently drains.
func applicationInsights() Scenario {
	test := func(det core.Detector, sched *task.Scheduler) {
		buffer := collections.NewList[string](det)
		senders := make([]*task.Task[struct{}], 3)
		for i := range senders {
			i := i
			senders[i] = task.Run(sched, func() struct{} {
				for n := 0; n < 10; n++ {
					recoverPanics(func() {
						buffer.Add(fmt.Sprintf("event-%d-%d", i, n))
					})
					time.Sleep(pace)
				}
				return struct{}{}
			})
		}
		flusher := task.Run(sched, func() struct{} {
			for n := 0; n < 10; n++ {
				recoverPanics(func() {
					if buffer.Count() > 0 {
						buffer.Clear() // drops items racing in
					}
				})
				time.Sleep(pace)
			}
			return struct{}{}
		})
		for _, s := range senders {
			s.Wait()
		}
		flusher.Wait()
	}
	return Scenario{
		Name:    "ApplicationInsights",
		Issue:   "microsoft/ApplicationInsights-dotnet#994",
		Tests:   []func(core.Detector, *task.Scheduler){test},
		MinTSVs: 1,
	}
}

// dateTimeExtensions models "Resolve a random race condition": a holiday
// cache dictionary filled by concurrent date calculations.
func dateTimeExtensions() Scenario {
	test := func(det core.Detector, sched *task.Scheduler) {
		cache := collections.NewDictionary[int, string](det)
		years := []int{2024, 2025, 2026, 2024, 2025, 2026}
		task.ForEach(sched, years, 4, func(y int) {
			for n := 0; n < 8; n++ {
				recoverPanics(func() {
					if !cache.ContainsKey(y) {
						cache.Add(y, fmt.Sprintf("holidays-%d", y))
					}
					cache.TryGetValue(y)
					cache.Remove(y)
				})
				time.Sleep(pace)
			}
		})
	}
	return Scenario{
		Name:    "DateTimeExtensions",
		Issue:   "joaomatossilva/DateTimeExtensions#86",
		Tests:   []func(core.Detector, *task.Scheduler){test},
		MinTSVs: 2,
	}
}

// fluentAssertions models the SelfReferenceEquivalencyAssertionOptions
// GetEqualityStrategy race: a memoization dictionary read and written from
// concurrent assertions.
func fluentAssertions() Scenario {
	test := func(det core.Detector, sched *task.Scheduler) {
		strategies := collections.NewDictionary[string, int](det)
		types := []string{"Order", "Customer", "Order", "Invoice"}
		task.ForEach(sched, types, 4, func(ty string) {
			for n := 0; n < 8; n++ {
				recoverPanics(func() {
					if v, ok := strategies.TryGetValue(ty); !ok {
						strategies.Set(ty, len(ty)) // compute + memoize
					} else {
						_ = v
					}
				})
				time.Sleep(pace)
			}
		})
	}
	return Scenario{
		Name:    "FluentAssertions",
		Issue:   "fluentassertions/fluentassertions#862",
		Tests:   []func(core.Detector, *task.Scheduler){test},
		MinTSVs: 1,
	}
}

// kubernetesClient models "fix a race condition" in the watch machinery:
// the event dispatcher iterates the handler list while registration is
// still adding handlers.
func kubernetesClient() Scenario {
	test := func(det core.Detector, sched *task.Scheduler) {
		handlers := collections.NewList[int](det)
		register := task.Run(sched, func() struct{} {
			for i := 0; i < 12; i++ {
				recoverPanics(func() { handlers.Add(i) })
				time.Sleep(pace)
			}
			return struct{}{}
		})
		dispatch := task.Run(sched, func() struct{} {
			for i := 0; i < 12; i++ {
				recoverPanics(func() {
					handlers.ForEach(func(_ int, h int) bool { return true })
				})
				time.Sleep(pace)
			}
			return struct{}{}
		})
		register.Wait()
		dispatch.Wait()
	}
	return Scenario{
		Name:    "kubernetes-client",
		Issue:   "kubernetes-client/csharp#212",
		Tests:   []func(core.Detector, *task.Scheduler){test},
		MinTSVs: 1,
	}
}

// radical models "MessageBroker internal subscription(s) list is not
// thread safe": concurrent subscribe/unsubscribe/publish over a topic →
// subscriber multimap.
func radical() Scenario {
	test := func(det core.Detector, sched *task.Scheduler) {
		subs := collections.NewMultiMap[string, int](det)
		subscriber := task.Run(sched, func() struct{} {
			for i := 0; i < 10; i++ {
				recoverPanics(func() { subs.Add("topic", i) })
				time.Sleep(pace)
			}
			return struct{}{}
		})
		unsubscriber := task.Run(sched, func() struct{} {
			for i := 0; i < 10; i++ {
				recoverPanics(func() { subs.RemoveKey("topic") })
				time.Sleep(pace)
			}
			return struct{}{}
		})
		publisher := task.Run(sched, func() struct{} {
			for i := 0; i < 10; i++ {
				recoverPanics(func() {
					for range subs.Get("topic") {
					}
				})
				time.Sleep(pace)
			}
			return struct{}{}
		})
		subscriber.Wait()
		unsubscriber.Wait()
		publisher.Wait()
	}
	return Scenario{
		Name:    "Radical",
		Issue:   "RadicalFx/Radical#108",
		Tests:   []func(core.Detector, *task.Scheduler){test},
		MinTSVs: 2,
	}
}

// sequelocity models "Race condition on TypeCacher": a check-then-add type
// metadata cache hit from parallel mappers.
func sequelocity() Scenario {
	test := func(det core.Detector, sched *task.Scheduler) {
		typeCache := collections.NewDictionary[string, int](det)
		rows := []string{"User", "Account", "User", "Order", "Account", "User"}
		task.ForEach(sched, rows, 3, func(ty string) {
			for n := 0; n < 6; n++ {
				recoverPanics(func() {
					if !typeCache.ContainsKey(ty) {
						typeCache.Add(ty, n) // reflect + cache
					}
				})
				time.Sleep(pace)
			}
		})
	}
	return Scenario{
		Name:    "Sequelocity",
		Issue:   "AmbitEnergyLabs/Sequelocity.NET#23",
		Tests:   []func(core.Detector, *task.Scheduler){test},
		MinTSVs: 1,
	}
}

// statsd models "Race conditions when updating gauge value": unprotected
// read-modify-write gauge updates from concurrent metric sources.
func statsd() Scenario {
	test := func(det core.Detector, sched *task.Scheduler) {
		gauge := collections.NewCounter(det)
		a := task.Run(sched, func() struct{} {
			for i := 0; i < 12; i++ {
				recoverPanics(func() { gauge.Increment() })
				time.Sleep(pace)
			}
			return struct{}{}
		})
		b := task.Run(sched, func() struct{} {
			for i := 0; i < 12; i++ {
				recoverPanics(func() { gauge.SetValue(int64(i)) })
				time.Sleep(pace)
			}
			return struct{}{}
		})
		a.Wait()
		b.Wait()
	}
	return Scenario{
		Name:    "statsd.net",
		Issue:   "lukevenediger/statsd.net#29",
		Tests:   []func(core.Detector, *task.Scheduler){test},
		MinTSVs: 1,
	}
}

// linqDynamic models "Fix the multi-threading issue at
// ClassFactory.GetDynamicClass": a class cache guarded by a lock on the
// write path but read without it.
func linqDynamic() Scenario {
	test := func(det core.Detector, sched *task.Scheduler) {
		classes := collections.NewDictionary[string, int](det)
		mu := syncx.NewMutex(det)
		signatures := []string{"sig-a", "sig-b", "sig-a", "sig-b"}
		task.ForEach(sched, signatures, 4, func(sig string) {
			for n := 0; n < 8; n++ {
				recoverPanics(func() {
					// Unlocked fast-path read...
					if _, ok := classes.TryGetValue(sig); ok {
						return
					}
					// ...locked slow-path write.
					mu.Lock()
					if !classes.ContainsKey(sig) {
						classes.Add(sig, len(sig))
					}
					mu.Unlock()
				})
				time.Sleep(pace)
			}
		})
	}
	return Scenario{
		Name:    "System.Linq.Dynamic",
		Issue:   "kahanu/System.Linq.Dynamic#48",
		Tests:   []func(core.Detector, *task.Scheduler){test},
		MinTSVs: 1,
	}
}

// thunderstruck models "Race condition in ConnectionStringBuffer
// singleton": lazily initialized shared buffer written by every caller.
func thunderstruck() Scenario {
	test := func(det core.Detector, sched *task.Scheduler) {
		buffer := collections.NewStringBuilder(det)
		a := task.Run(sched, func() struct{} {
			for i := 0; i < 10; i++ {
				recoverPanics(func() {
					buffer.Reset()
					buffer.Append("server=a;")
				})
				time.Sleep(pace)
			}
			return struct{}{}
		})
		b := task.Run(sched, func() struct{} {
			for i := 0; i < 10; i++ {
				recoverPanics(func() { _ = buffer.String() })
				time.Sleep(pace)
			}
			return struct{}{}
		})
		a.Wait()
		b.Wait()
	}
	return Scenario{
		Name:    "Thunderstruck",
		Issue:   "19WAS85/Thunderstruck#3",
		Tests:   []func(core.Detector, *task.Scheduler){test},
		MinTSVs: 1,
	}
}

// Outcome is one scenario's Table-4 row.
type Outcome struct {
	Name     string
	Tests    int
	RunsUsed int
	TSVs     int
	Overhead float64
}

// Run executes a scenario under cfg for at most maxRuns runs (carrying the
// trap set) and measures overhead against an uninstrumented pass.
func Run(s Scenario, cfg config.Config, maxRuns int) (Outcome, error) {
	out := Outcome{Name: s.Name, Tests: len(s.Tests)}

	// Uninstrumented baseline.
	baseStart := time.Now()
	runOnce(s, core.NewNop())
	base := time.Since(baseStart)

	var traps []core.Option
	var total time.Duration
	for run := 1; run <= maxRuns; run++ {
		det, err := core.New(cfg, traps...)
		if err != nil {
			return out, err
		}
		start := time.Now()
		runOnce(s, det)
		total += time.Since(start)
		out.RunsUsed = run
		out.TSVs = det.Reports().UniqueBugs()
		if out.TSVs >= s.MinTSVs {
			break
		}
		traps = []core.Option{core.WithInitialTraps(det.ExportTraps())}
	}
	if base > 0 {
		// Overhead of one instrumented run against one baseline run.
		out.Overhead = float64(total)/float64(out.RunsUsed)/float64(base) - 1
	}
	return out, nil
}

func runOnce(s Scenario, det core.Detector) {
	sched := task.NewScheduler(det, task.WithForceAsync())
	for _, test := range s.Tests {
		test(det, sched)
	}
	sched.WaitIdle()
}
