package scenarios

import (
	"testing"

	"repro/internal/config"
)

// scenarioConfig: scenarios pace at 2ms, so a 40ms window / 20ms delay
// comfortably covers them while keeping tests quick.
func scenarioConfig() config.Config {
	return config.Defaults(config.AlgoTSVD).Scaled(0.4)
}

func TestAllScenariosDetectWithinTwoRuns(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			out, err := Run(s, scenarioConfig(), 2)
			if err != nil {
				t.Fatal(err)
			}
			if out.TSVs < s.MinTSVs {
				t.Fatalf("%s: found %d TSVs in %d runs, want >= %d",
					s.Name, out.TSVs, out.RunsUsed, s.MinTSVs)
			}
			if out.RunsUsed > 2 {
				t.Fatalf("%s: needed %d runs", s.Name, out.RunsUsed)
			}
		})
	}
}

func TestScenarioInventory(t *testing.T) {
	all := All()
	if len(all) != 9 {
		t.Fatalf("scenario count = %d, want 9 (Table 4)", len(all))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if s.Name == "" || s.Issue == "" || len(s.Tests) == 0 || s.MinTSVs < 1 {
			t.Fatalf("scenario %q incomplete: %+v", s.Name, s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate scenario %q", s.Name)
		}
		seen[s.Name] = true
	}
}

// TestScenariosQuietUnderNop: without a detector the tests still pass
// (the races exist but rarely fire spontaneously, like the upstream repos
// before TSVD).
func TestScenariosQuietUnderNop(t *testing.T) {
	cfg := scenarioConfig()
	cfg.Algorithm = config.AlgoNop
	for _, s := range All() {
		out, err := Run(s, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		if out.TSVs != 0 {
			t.Fatalf("%s: Nop detector reported %d TSVs", s.Name, out.TSVs)
		}
	}
}
