package ids

import (
	"strings"
	"sync"
	"testing"
)

func TestCurrentThreadIDStable(t *testing.T) {
	a := CurrentThreadID()
	b := CurrentThreadID()
	if a <= 0 {
		t.Fatalf("thread id = %d, want > 0", a)
	}
	if a != b {
		t.Fatalf("thread id changed within one goroutine: %d != %d", a, b)
	}
}

func TestCurrentThreadIDDistinctAcrossGoroutines(t *testing.T) {
	const n = 50
	var mu sync.Mutex
	seen := map[ThreadID]bool{}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := CurrentThreadID()
			mu.Lock()
			seen[id] = true
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("saw %d distinct ids for %d goroutines", len(seen), n)
	}
	if seen[CurrentThreadID()] {
		t.Fatal("a child goroutine shares the parent's id")
	}
}

func TestNewObjectIDUnique(t *testing.T) {
	const n = 1000
	seen := map[ObjectID]bool{}
	for i := 0; i < n; i++ {
		id := NewObjectID()
		if seen[id] {
			t.Fatalf("duplicate object id %d", id)
		}
		seen[id] = true
	}
}

//go:noinline
func callerOpProbe() OpID { return CallerOp(0) }

func TestCallerOpIdentifiesCallSite(t *testing.T) {
	op1 := callerOpProbe()
	op2 := callerOpProbe()
	op3 := callerOpProbe()
	if op1 == 0 {
		t.Fatal("CallerOp returned 0")
	}
	// Three distinct call sites must produce three distinct OpIDs.
	if op1 == op2 || op2 == op3 || op1 == op3 {
		t.Fatalf("distinct call sites share an OpID: %v %v %v", op1, op2, op3)
	}
	loc := op1.Location()
	if !strings.Contains(loc, "ids_test.go") {
		t.Fatalf("Location() = %q, want it to mention ids_test.go", loc)
	}
	// Cached second resolution must match.
	if loc2 := op1.Location(); loc2 != loc {
		t.Fatalf("cached location mismatch: %q != %q", loc2, loc)
	}
}

func TestCallerOpSameSiteStable(t *testing.T) {
	var ops [3]OpID
	for i := range ops {
		ops[i] = callerOpProbe() // one call site, three executions
	}
	if ops[0] != ops[1] || ops[1] != ops[2] {
		t.Fatalf("one call site produced different OpIDs: %v", ops)
	}
}

func TestStackMentionsCaller(t *testing.T) {
	s := Stack()
	if !strings.Contains(s, "TestStackMentionsCaller") {
		t.Fatalf("stack does not mention the caller:\n%s", s)
	}
	if strings.HasPrefix(s, "goroutine ") {
		t.Fatal("stack header line was not trimmed")
	}
}

func TestStackDepthGrowsWithRecursion(t *testing.T) {
	var depthAt func(n int) int
	depthAt = func(n int) int {
		if n == 0 {
			return StackDepth()
		}
		return depthAt(n - 1)
	}
	shallow := depthAt(0)
	deep := depthAt(10)
	if deep <= shallow {
		t.Fatalf("depth did not grow with recursion: shallow=%d deep=%d", shallow, deep)
	}
}

func BenchmarkCurrentThreadID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CurrentThreadID()
	}
}

func BenchmarkCallerOp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CallerOp(0)
	}
}
