// Package ids provides the identity primitives the TSVD runtime is built on:
// goroutine ("thread") identifiers, static program locations (call-site PCs),
// per-object identity tokens, and stack capture for bug reports.
//
// The TSVD algorithm (SOSP '19, §3.1) only ever sees three identifiers per
// access — thread_id, obj_id, op_id — so this package is the entire surface
// between the Go runtime and the detector.
package ids

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// ThreadID identifies a thread of execution. In this Go port a "thread" is a
// goroutine; the algorithm only requires the ids to be unique and stable for
// the lifetime of the goroutine.
type ThreadID int64

// OpID identifies a static program location (a TSVD point): the source
// file:line of a call into a thread-unsafe API. IDs are interned — the same
// source location always yields the same OpID, even when the compiler
// inlines the enclosing function into several callers and the physical
// program counters diverge.
type OpID uint64

// ObjectID identifies one instance of a thread-unsafe object. IDs are
// assigned from an atomic counter at construction time so they are unique
// and GC-safe (no pointer-to-integer conversions).
type ObjectID uint64

// SiteID is a dense small-integer handle for one instrumentation site: an
// interned (location, class, method, kind) tuple registered with a
// sites.Registry. Unlike OpID (a sparse interned token that survives only as
// its string key), SiteIDs are allocated sequentially from 1, so detector
// state keyed by site fits in plain arrays indexed by the id itself — the
// layout the OnCall fast path is built on. 0 is reserved for "unregistered";
// the detector resolves it through the registry's op-keyed fallback.
type SiteID uint32

var objectCounter atomic.Uint64

// NewObjectID returns a fresh, process-unique object identifier.
func NewObjectID() ObjectID {
	return ObjectID(objectCounter.Add(1))
}

var goroutinePrefix = []byte("goroutine ")

// CurrentThreadID returns the id of the calling goroutine.
//
// Go deliberately hides goroutine ids, so we parse the header line of
// runtime.Stack, the only stable, stdlib-only way to obtain one. The cost is
// on the order of a microsecond, which is far below the delay granularity the
// detector works at, and it is paid once per instrumented call.
func CurrentThreadID() ThreadID {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	b := buf[:n]
	if !bytes.HasPrefix(b, goroutinePrefix) {
		return -1
	}
	b = b[len(goroutinePrefix):]
	i := bytes.IndexByte(b, ' ')
	if i < 0 {
		return -1
	}
	id, err := strconv.ParseInt(string(b[:i]), 10, 64)
	if err != nil {
		return -1
	}
	return ThreadID(id)
}

var (
	// pcToOp caches the physical-PC → OpID mapping (hot path).
	pcToOp sync.Map // uintptr → OpID
	opMu   sync.RWMutex
	keyOps = map[string]OpID{}
	opLocs = map[OpID]string{}
	opKeys = map[OpID]string{}
)

// CallerOp returns the OpID of the call site `skip` frames above the caller
// of CallerOp. skip=0 means the immediate caller of the function that calls
// CallerOp. The instrumented collections use this to attribute every access
// to the user call site rather than to the wrapper method.
func CallerOp(skip int) OpID {
	var pcs [1]uintptr
	// +3: runtime.Callers itself, CallerOp, and the function calling
	// CallerOp — leaving that function's own call site as the first PC.
	if runtime.Callers(skip+3, pcs[:]) == 0 {
		return 0
	}
	pc := pcs[0]
	if v, ok := pcToOp.Load(pc); ok {
		return v.(OpID)
	}
	frames := runtime.CallersFrames([]uintptr{pc})
	frame, _ := frames.Next()
	key := fmt.Sprintf("%s:%d", frame.File, frame.Line)
	loc := fmt.Sprintf("%s (%s)", key, frame.Function)
	if frame.File == "" {
		key = fmt.Sprintf("pc=0x%x", pc)
		loc = key
	}
	opMu.Lock()
	op, ok := keyOps[key]
	if !ok {
		// Interned ids start high so tests can fabricate small literal
		// OpIDs without colliding with real call sites.
		op = OpID(1<<32 + uint64(len(keyOps)) + 1)
		keyOps[key] = op
		opLocs[op] = loc
		opKeys[op] = key
	}
	opMu.Unlock()
	pcToOp.Store(pc, op)
	return op
}

// Location resolves an OpID to its "file:line (function)" string. OpIDs not
// produced by CallerOp (e.g. fabricated in tests) render as "op#N".
func (op OpID) Location() string {
	opMu.RLock()
	s, ok := opLocs[op]
	opMu.RUnlock()
	if ok {
		return s
	}
	return fmt.Sprintf("op#%d", uint64(op))
}

// InternKey returns the stable OpID for an arbitrary location key. The same
// key always maps to the same OpID within a process, and keys themselves are
// stable across processes, which is what trap files persist (§3.4.6). The
// synthetic workload generator also uses this to give every generated call
// site a distinct static identity.
func InternKey(key string) OpID {
	opMu.Lock()
	defer opMu.Unlock()
	op, ok := keyOps[key]
	if !ok {
		op = OpID(1<<32 + uint64(len(keyOps)) + 1)
		keyOps[key] = op
		opLocs[op] = key
		opKeys[op] = key
	}
	return op
}

// Key returns the persistent location key for an OpID, or "" for ids that
// were never interned (e.g. fabricated test constants).
func (op OpID) Key() string {
	opMu.RLock()
	defer opMu.RUnlock()
	return opKeys[op]
}

// Stack captures the current goroutine's stack trace as text, trimmed of the
// header line. Used for the two-sided stack traces in bug reports.
func Stack() string {
	buf := make([]byte, 16<<10)
	n := runtime.Stack(buf, false)
	b := buf[:n]
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[i+1:]
	}
	return string(b)
}

// StackDepth reports the number of frames in the current goroutine's stack
// below (and excluding) this function. Used for the "avg stack depth"
// statistic in Table 1.
func StackDepth() int {
	var pcs [128]uintptr
	return runtime.Callers(2, pcs[:])
}
