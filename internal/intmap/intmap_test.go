package intmap

import (
	"sync"
	"testing"
)

// TestGetOrCreateBasics: insertion round-trips through every lookup path,
// creation happens exactly once per key, and absent keys stay absent.
func TestGetOrCreateBasics(t *testing.T) {
	var m Map[int]
	if m.Get(1) != nil {
		t.Fatal("empty map returned a value")
	}
	if v, ok := m.GetFast(1); v != nil || ok {
		t.Fatal("empty map GetFast returned a value or claimed a conclusive miss")
	}

	v1, created := m.GetOrCreate(1, func() *int { x := 11; return &x })
	if !created || *v1 != 11 {
		t.Fatalf("first GetOrCreate: created=%v v=%v", created, v1)
	}
	v2, created := m.GetOrCreate(1, func() *int { x := 99; return &x })
	if created || v2 != v1 {
		t.Fatalf("second GetOrCreate: created=%v, pointer changed=%v", created, v2 != v1)
	}
	if got := m.Get(1); got != v1 {
		t.Fatalf("Get(1) = %v, want %v", got, v1)
	}
	if got := m.Get(2); got != nil {
		t.Fatalf("Get(2) = %v, want nil", got)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

// TestGetFastConsistentWithGet: GetFast either agrees with Get or returns
// ok == false — it may not fabricate a hit or a conclusive miss. Exercised
// across enough keys to cover both home-slot hits and probe-chain misses.
func TestGetFastConsistentWithGet(t *testing.T) {
	var m Map[int64]
	const n = 500
	for k := int64(0); k < n; k++ {
		k := k
		m.GetOrCreate(k, func() *int64 { return &k })
	}
	for k := int64(0); k < 2*n; k++ {
		want := m.Get(k)
		got, ok := m.GetFast(k)
		if ok && got != want {
			t.Fatalf("GetFast(%d) = %v conclusive, Get = %v", k, got, want)
		}
		if want != nil && *want != k {
			t.Fatalf("Get(%d) holds %d", k, *want)
		}
	}
	// At least some keys must hit the inlinable fast path, or the detector's
	// cheap path would silently always fall back to the full probe.
	hits := 0
	for k := int64(0); k < n; k++ {
		if _, ok := m.GetFast(k); ok {
			hits++
		}
	}
	if hits < n/2 {
		t.Fatalf("only %d/%d keys conclusive in GetFast — home-slot rate collapsed", hits, n)
	}
}

// TestGrowthPreservesEntries inserts far past the initial table size and
// growth threshold, then verifies every key through both lookup paths and
// an Each sweep.
func TestGrowthPreservesEntries(t *testing.T) {
	var m Map[int64]
	const n = 10_000
	for k := int64(1); k <= n; k++ {
		k := k
		_, created := m.GetOrCreate(k, func() *int64 { return &k })
		if !created {
			t.Fatalf("key %d reported pre-existing", k)
		}
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for k := int64(1); k <= n; k++ {
		v := m.Get(k)
		if v == nil || *v != k {
			t.Fatalf("Get(%d) = %v after growth", k, v)
		}
	}
	seen := map[int64]bool{}
	m.Each(func(k int64, v *int64) {
		if seen[k] {
			t.Fatalf("Each visited key %d twice", k)
		}
		if *v != k {
			t.Fatalf("Each: key %d holds %d", k, *v)
		}
		seen[k] = true
	})
	if len(seen) != n {
		t.Fatalf("Each visited %d entries, want %d", len(seen), n)
	}
}

// TestNegativeAndLargeKeys: the map is keyed by int64s that include packed
// (op<<1|kind) keys and fabricated test ids — sign and magnitude must not
// matter (only the slotEmpty sentinel, MinInt64, is reserved).
func TestNegativeAndLargeKeys(t *testing.T) {
	var m Map[int64]
	keys := []int64{-1, -7, 0, 1, 1 << 40, -(1 << 40), (1 << 62) + 3}
	for _, k := range keys {
		k := k
		m.GetOrCreate(k, func() *int64 { return &k })
	}
	for _, k := range keys {
		if v := m.Get(k); v == nil || *v != k {
			t.Fatalf("Get(%d) = %v", k, v)
		}
		if v, ok := m.GetFast(k); ok && *v != k {
			t.Fatalf("GetFast(%d) fabricated %v", k, v)
		}
	}
}

// TestConcurrentGetOrCreate: racing creators for one key agree on a single
// winner, and exactly one observes created == true.
func TestConcurrentGetOrCreate(t *testing.T) {
	var m Map[int]
	const goroutines = 16
	const keys = 100

	var wg sync.WaitGroup
	winners := make([]int, keys) // updated only by created==true observers, one per key
	ptrs := make([][]*int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]*int, keys)
			for k := 0; k < keys; k++ {
				v, created := m.GetOrCreate(int64(k), func() *int { x := g; return &x })
				if created {
					winners[k]++ // safe: one winner per key, distinct slots
				}
				out[k] = v
			}
			ptrs[g] = out
		}(g)
	}
	wg.Wait()

	for k := 0; k < keys; k++ {
		if winners[k] != 1 {
			t.Fatalf("key %d had %d creators", k, winners[k])
		}
		for g := 1; g < goroutines; g++ {
			if ptrs[g][k] != ptrs[0][k] {
				t.Fatalf("key %d: goroutines hold different values", k)
			}
		}
	}
	if m.Len() != keys {
		t.Fatalf("Len = %d, want %d", m.Len(), keys)
	}
}

// TestConcurrentReadDuringGrowth hammers Get/GetFast while an inserter
// forces repeated table growth; readers must never see a wrong value, and
// keys inserted before the readers started must never go missing.
func TestConcurrentReadDuringGrowth(t *testing.T) {
	var m Map[int64]
	const preInserted = 256
	for k := int64(0); k < preInserted; k++ {
		k := k
		m.GetOrCreate(k, func() *int64 { return &k })
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for k := int64(0); k < preInserted; k++ {
					if v := m.Get(k); v == nil || *v != k {
						t.Errorf("Get(%d) = %v during growth", k, v)
						return
					}
					if v, ok := m.GetFast(k); ok && *v != k {
						t.Errorf("GetFast(%d) fabricated %v during growth", k, v)
						return
					}
				}
			}
		}()
	}
	for k := int64(preInserted); k < preInserted+20_000; k++ {
		k := k
		m.GetOrCreate(k, func() *int64 { return &k })
	}
	close(stop)
	wg.Wait()
}
