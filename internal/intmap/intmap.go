// Package intmap provides the insert-only concurrent map the detector hot
// path keys by integer ids: thread ids to per-thread state, object ids to
// per-object state, op ids to coverage records. sync.Map would serve, but its
// interface{} keys force a typehash call and an equality check through
// reflection metadata on every lookup; at OnCall frequencies those dominate
// the probe itself (see docs/PERFORMANCE.md). The container instead uses open
// addressing over int64 keys with lock-free reads:
//
//   - lookups are a Fibonacci hash plus a short linear probe over atomic
//     slots — no locks, no interface boxing, no allocation;
//   - inserts are rare (first sighting of a location / thread / object) and
//     serialize on one mutex, which also guards growth;
//   - deletion does not exist, which is what makes the lock-free read sound:
//     a published slot never changes its key again.
//
// Each slot holds its key and value side by side, so a hit costs one hash,
// one slot load and one dependent value load from the same cache line —
// split key/value arrays would add another slice-header chase to the
// dependent chain, which is measurable at OnCall frequencies.
//
// Growth copies into a larger table and atomically swaps the table pointer.
// A reader racing the swap scans the old table, which stays internally
// consistent forever; it can only miss a concurrent insert, which the
// callers' get-then-lock pattern already handles.
package intmap

import (
	"math"
	"sync"
	"sync/atomic"
	"unsafe"
)

// slotEmpty marks an unused slot. MinInt64 is unreachable for real ids
// (ids are small positive counters).
const slotEmpty = math.MinInt64

// fibScramble spreads sequential ids across the table.
const fibScramble = 0x9E3779B97F4A7C15

// Map is an insert-only hash map from int64 keys to *V with lock-free
// lookups. Values are created once and never replaced, so callers may cache
// and mutate them according to their own synchronization discipline.
type Map[V any] struct {
	table atomic.Pointer[table[V]]
	mu    sync.Mutex
	count int
}

type slot[V any] struct {
	key atomic.Int64
	val atomic.Pointer[V]
}

type table[V any] struct {
	mask  uint64
	slots []slot[V]
	// base points at slots[0]; GetFast indexes through it directly, which
	// spares the dependent load of the slice length that the bounds check
	// on slots[i] would otherwise issue. The masked index is always in
	// range (mask == len(slots)-1 by construction), and the table keeps the
	// backing array alive through the slots field.
	base unsafe.Pointer
}

func newTable[V any](size int) *table[V] {
	t := &table[V]{
		mask:  uint64(size - 1),
		slots: make([]slot[V], size),
	}
	for i := range t.slots {
		t.slots[i].key.Store(slotEmpty)
	}
	t.base = unsafe.Pointer(&t.slots[0])
	return t
}

func (t *table[V]) probe(k int64) uint64 {
	return (uint64(k) * fibScramble) & t.mask
}

// GetFast returns k's value if it sits in its home slot — the overwhelming
// case at the load factors the map maintains — and ok reports whether the
// probe was conclusive: ok == false means "consult Get", not "absent".
// Unlike Get, whose probe loop exceeds the inliner budget, this single-slot
// version inlines into the detector's hot path, where the call overhead of
// an out-of-line Get is measurable.
func (m *Map[V]) GetFast(k int64) (v *V, ok bool) {
	t := m.table.Load()
	if t == nil {
		return nil, false
	}
	i := uintptr((uint64(k) * fibScramble) & t.mask)
	s := (*slot[V])(unsafe.Add(t.base, i*unsafe.Sizeof(slot[V]{})))
	if s.key.Load() == k {
		return s.val.Load(), true
	}
	return nil, false
}

// Get returns the value stored for k, or nil. Lock-free.
func (m *Map[V]) Get(k int64) *V {
	t := m.table.Load()
	if t == nil {
		return nil
	}
	for i := t.probe(k); ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		switch s.key.Load() {
		case k:
			return s.val.Load()
		case slotEmpty:
			return nil
		}
	}
}

// GetOrCreate returns k's value, calling mk to build it on first insertion,
// and reports whether this call created it. Concurrent callers for one key
// agree on a single winner; exactly one receives created == true.
func (m *Map[V]) GetOrCreate(k int64, mk func() *V) (v *V, created bool) {
	if v := m.Get(k); v != nil {
		return v, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.table.Load()
	if t == nil {
		t = newTable[V](64)
		m.table.Store(t)
	}
	i := t.probe(k)
	for {
		kk := t.slots[i].key.Load()
		if kk == k {
			return t.slots[i].val.Load(), false
		}
		if kk == slotEmpty {
			break
		}
		i = (i + 1) & t.mask
	}
	v = mk()
	// Publish the value before the key: a lock-free reader that sees the
	// key must see the value.
	t.slots[i].val.Store(v)
	t.slots[i].key.Store(k)
	m.count++
	if uint64(m.count)*4 > (t.mask+1)*3 {
		bigger := newTable[V](int(t.mask+1) * 2)
		for j := range t.slots {
			if kk := t.slots[j].key.Load(); kk != slotEmpty {
				p := bigger.probe(kk)
				for bigger.slots[p].key.Load() != slotEmpty {
					p = (p + 1) & bigger.mask
				}
				bigger.slots[p].val.Store(t.slots[j].val.Load())
				bigger.slots[p].key.Store(kk)
			}
		}
		m.table.Store(bigger)
	}
	return v, true
}

// Each visits every entry present in the map. It is lock-free and safe
// against concurrent inserts: it walks one consistent table snapshot and may
// miss entries inserted after it starts, but entries inserted before the
// call (in the happens-before sense) are always visited exactly once. The
// detector uses it to sum per-thread counters at snapshot time, where all
// writers have either quiesced or the caller tolerates a live tail.
func (m *Map[V]) Each(fn func(k int64, v *V)) {
	t := m.table.Load()
	if t == nil {
		return
	}
	for i := range t.slots {
		if k := t.slots[i].key.Load(); k != slotEmpty {
			if v := t.slots[i].val.Load(); v != nil {
				fn(k, v)
			}
		}
	}
}

// Len reports the number of entries inserted so far. It takes the insert
// lock, so it is exact but not for hot paths.
func (m *Map[V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.count
}
