package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/workload"
)

// sweep runs TSVD twice per configuration over the Small suite and reports
// bugs/overhead per point.
func (p Params) sweep(w io.Writer, title string, labels []string,
	mutate func(*config.Config, int)) {

	suite := workload.GenerateSuite(p.Seed, p.SmallModules)
	base := harness.Baseline(suite, p.opts(config.AlgoTSVD, 1))
	fmt.Fprintf(w, "%s\n%-12s %6s %9s %9s\n", title, "value", "bugs", "overhead", "#delay")
	for i, label := range labels {
		o := p.opts(config.AlgoTSVD, 2)
		mutate(&o.Config, i)
		out := harness.Run(suite, o)
		fmt.Fprintf(w, "%-12s %6d %8.0f%% %9d\n",
			label, out.TotalFound(),
			100*harness.Overhead(out.WallTime, 2*base),
			out.Stats.DelaysInjected)
	}
}

// Figure9a runs TSVD repeatedly with identical parameters but different
// probabilistic seeds: the variance experiment.
func Figure9a(p Params, w io.Writer) {
	suite := workload.GenerateSuite(p.Seed, p.SmallModules)
	base := harness.Baseline(suite, p.opts(config.AlgoTSVD, 1))
	const tries = 12
	fmt.Fprintf(w, "Figure 9(a): %d tries of TSVD with default parameters\n", tries)
	fmt.Fprintf(w, "%-6s %6s %9s\n", "try", "bugs", "overhead")
	minB, maxB := 1<<30, 0
	for i := 1; i <= tries; i++ {
		o := p.opts(config.AlgoTSVD, 2)
		o.Config.Seed = int64(i) * 997
		out := harness.Run(suite, o)
		b := out.TotalFound()
		if b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
		fmt.Fprintf(w, "%-6d %6d %8.0f%%\n", i, b,
			100*harness.Overhead(out.WallTime, 2*base))
	}
	fmt.Fprintf(w, "bug-count range across tries: %d..%d\n", minB, maxB)
}

// Figure9b sweeps the per-object history length N_nm.
func Figure9b(p Params, w io.Writer) {
	values := []int{1, 2, 5, 10, 50}
	labels := make([]string, len(values))
	for i, v := range values {
		labels[i] = fmt.Sprintf("N_nm=%d", v)
	}
	p.sweep(w, "Figure 9(b): object history length (N_nm)", labels,
		func(c *config.Config, i int) { c.ObjHistory = values[i] })
}

// Figure9c sweeps the near-miss window T_nm.
func Figure9c(p Params, w io.Writer) {
	values := []time.Duration{
		time.Millisecond, 10 * time.Millisecond,
		100 * time.Millisecond, time.Second,
	}
	labels := make([]string, len(values))
	for i, v := range values {
		labels[i] = fmt.Sprintf("T_nm=%v", v)
	}
	p.sweep(w, "Figure 9(c): near-miss window (T_nm, pre-scale)", labels,
		func(c *config.Config, i int) { c.NearMissWindow = values[i] })
}

// Figure9d sweeps the causal-delay blocking threshold δ_hb.
func Figure9d(p Params, w io.Writer) {
	values := []float64{0, 0.2, 0.5, 0.8}
	labels := make([]string, len(values))
	for i, v := range values {
		labels[i] = fmt.Sprintf("δ_hb=%.1f", v)
	}
	p.sweep(w, "Figure 9(d): HB blocking threshold (δ_hb)", labels,
		func(c *config.Config, i int) { c.HBBlockThreshold = values[i] })
}

// Figure9e sweeps the HB inference window k_hb.
func Figure9e(p Params, w io.Writer) {
	values := []int{0, 2, 5, 20, 100}
	labels := make([]string, len(values))
	for i, v := range values {
		labels[i] = fmt.Sprintf("k_hb=%d", v)
	}
	p.sweep(w, "Figure 9(e): HB inference window (k_hb)", labels,
		func(c *config.Config, i int) { c.HBInferenceWindow = values[i] })
}

// Figure9f sweeps the concurrent-phase buffer size.
func Figure9f(p Params, w io.Writer) {
	values := []int{2, 4, 16, 64, 256}
	labels := make([]string, len(values))
	for i, v := range values {
		labels[i] = fmt.Sprintf("buf=%d", v)
	}
	p.sweep(w, "Figure 9(f): phase buffer size", labels,
		func(c *config.Config, i int) { c.PhaseBufferSize = values[i] })
}

// Figure9g sweeps the decay factor (0 disables decay — the pathological
// configuration the paper calls out).
func Figure9g(p Params, w io.Writer) {
	values := []float64{0, 0.25, 0.5, 0.75, 0.9}
	labels := make([]string, len(values))
	for i, v := range values {
		labels[i] = fmt.Sprintf("decay=%.2f", v)
	}
	p.sweep(w, "Figure 9(g): decay factor", labels,
		func(c *config.Config, i int) { c.DecayFactor = values[i] })
}

// Figure9h sweeps the delay length.
func Figure9h(p Params, w io.Writer) {
	values := []time.Duration{
		10 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
		200 * time.Millisecond, 500 * time.Millisecond,
	}
	labels := make([]string, len(values))
	for i, v := range values {
		labels[i] = fmt.Sprintf("delay=%v", v)
	}
	p.sweep(w, "Figure 9(h): delay time (pre-scale)", labels,
		func(c *config.Config, i int) { c.DelayTime = values[i] })
}
