package experiments

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"time"

	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/scenarios"
	"repro/internal/trapfile"
	"repro/internal/trapstore"
	"repro/internal/workload"
)

// Table4 runs the nine open-source scenarios (§5.7) under TSVD with the
// paper's default parameters (time-scaled) and prints the Table-4 row
// shape: tests, runs used, TSVs found, overhead.
func Table4(p Params, w io.Writer) {
	// Scenario tests pace at 2ms, so run with a 40ms window/20ms delay.
	cfg := config.Defaults(config.AlgoTSVD).Scaled(0.4)
	fmt.Fprintf(w, "Table 4: TSVD results on open-source-modeled projects\n")
	fmt.Fprintf(w, "%-22s %7s %6s %6s %9s\n", "project", "#tests", "#run", "#TSV", "overhead")
	for _, s := range scenarios.All() {
		out, err := scenarios.Run(s, cfg, 2)
		if err != nil {
			fmt.Fprintf(w, "%-22s error: %v\n", s.Name, err)
			continue
		}
		fmt.Fprintf(w, "%-22s %7d %6d %6d %8.1f%%\n",
			out.Name, out.Tests, out.RunsUsed, out.TSVs, 100*out.Overhead)
	}
}

// ResourceUsage reproduces §5.5: memory and CPU cost of running with TSVD
// against the uninstrumented baseline, measured over the Small suite.
func ResourceUsage(p Params, w io.Writer) {
	suite := workload.GenerateSuite(p.Seed, p.SmallModules)

	measure := func(algo config.Algorithm) (time.Duration, uint64) {
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if algo == config.AlgoNop {
			harness.Baseline(suite, p.opts(config.AlgoTSVD, 1))
		} else {
			harness.Run(suite, p.opts(algo, 1))
		}
		dur := time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		return dur, after.TotalAlloc - before.TotalAlloc
	}

	baseDur, baseAlloc := measure(config.AlgoNop)
	tsvdDur, tsvdAlloc := measure(config.AlgoTSVD)

	fmt.Fprintf(w, "§5.5 resource usage over the Small suite (one run)\n")
	fmt.Fprintf(w, "%-14s %12s %14s\n", "config", "wall time", "allocations")
	fmt.Fprintf(w, "%-14s %12v %13dK\n", "baseline", baseDur.Round(time.Millisecond), baseAlloc/1024)
	fmt.Fprintf(w, "%-14s %12v %13dK\n", "TSVD", tsvdDur.Round(time.Millisecond), tsvdAlloc/1024)
	if baseAlloc > 0 {
		fmt.Fprintf(w, "allocation increase: %.0f%%\n",
			100*(float64(tsvdAlloc)/float64(baseAlloc)-1))
	}
}

// AsyncInlining reproduces the §4 observation: with the CLR-style
// fast-async inlining emulation enabled (and TSVD's force-async
// instrumentation therefore absent), async bugs hide.
func AsyncInlining(p Params, w io.Writer) {
	suite := workload.GenerateSuite(p.Seed, p.SmallModules)
	planted := suite.BugsByKind()

	forced := harness.Run(suite, p.opts(config.AlgoTSVD, 2))
	inlineOpts := p.opts(config.AlgoTSVD, 2)
	inlineOpts.InlineFastAsync = true
	inlined := harness.Run(suite, inlineOpts)

	fmt.Fprintf(w, "§4 async-inlining ablation (async bugs planted: %d)\n",
		planted[workload.BugAsync])
	fmt.Fprintf(w, "%-28s %11s %10s\n", "scheduler mode", "async bugs", "all bugs")
	fmt.Fprintf(w, "%-28s %11d %10d\n", "force-async (TSVD's §4 fix)",
		forced.FoundByKind(suite)[workload.BugAsync], forced.TotalFound())
	fmt.Fprintf(w, "%-28s %11d %10d\n", "CLR fast-async inlining",
		inlined.FoundByKind(suite)[workload.BugAsync], inlined.TotalFound())
}

// DelayOverlap reproduces the §3.4.6 design discussion: suppressing
// overlapping delays finds fewer bugs under the same budget.
func DelayOverlap(p Params, w io.Writer) {
	suite := workload.GenerateSuite(p.Seed, p.SmallModules)
	aggressive := harness.Run(suite, p.opts(config.AlgoTSVD, 2))
	avoidOpts := p.opts(config.AlgoTSVD, 2)
	avoidOpts.Config.AvoidOverlappingDelays = true
	avoiding := harness.Run(suite, avoidOpts)

	fmt.Fprintf(w, "§3.4.6 parallel delay injection ablation\n")
	fmt.Fprintf(w, "%-26s %6s %9s\n", "policy", "bugs", "#delay")
	fmt.Fprintf(w, "%-26s %6d %9d\n", "aggressive (TSVD)",
		aggressive.TotalFound(), aggressive.Stats.DelaysInjected)
	fmt.Fprintf(w, "%-26s %6d %9d\n", "avoid overlaps",
		avoiding.TotalFound(), avoiding.Stats.DelaysInjected)
}

// Fleet measures the tentpole of fleet mode: K shards sharing one trap
// store catch cold bugs (single-occurrence per run, §3.4.6's motivating
// class) within their very first round, because peers' publishes seed them
// before their own runs start; isolated shards must each spend a round
// learning the pairs themselves. Reported per shard count: distinct cold
// bugs the shard itself trapped within the budget.
func Fleet(p Params, w io.Writer) {
	// The cold-bug-rich suite (same seed the harness tests pin): enough
	// single-occurrence bugs that seeding is the only way to catch them.
	suite := workload.GenerateSuite(33, 120)
	planted := suite.BugsByKind()

	fmt.Fprintf(w, "fleet mode: shared trap store vs isolated shards (cold bugs planted: %d)\n",
		planted[workload.BugCold])
	fmt.Fprintf(w, "%-9s %7s %18s %18s %15s\n",
		"shards", "rounds", "cold catches", "fleet-wide bugs", "mean 1st round")
	for _, shards := range []int{2, 3, 4} {
		for _, rounds := range []int{1, 2} {
			shared := harness.RunFleet(suite, shards, rounds, p.opts(config.AlgoTSVD, 1),
				trapstore.NewMemory("TSVD", nil))
			isolated := harness.RunFleet(suite, shards, rounds, p.opts(config.AlgoTSVD, 1), nil)
			sm, _ := shared.MeanFirstBugRound()
			im, _ := isolated.MeanFirstBugRound()
			fmt.Fprintf(w, "%-9d %7d %8d vs %-7d %8d vs %-7d %6.2f vs %-5.2f\n",
				shards, rounds,
				shared.ColdCatches, isolated.ColdCatches,
				len(shared.Found), len(isolated.Found),
				sm, im)
		}
	}
	fmt.Fprintf(w, "(cold catches: per-shard distinct cold bugs, summed over shards;\n")
	fmt.Fprintf(w, " shared vs isolated store. Cold bugs need a seeded trap, so isolated\n")
	fmt.Fprintf(w, " shards catch none in round 1 by construction.)\n\n")
	fleetWireEconomy(w)
}

// fleetWireEconomy measures what each kind of poll against tsvd-trapd costs
// on the wire under the v2 snapshot protocol: a cold client pays the full
// snapshot once, a warm client resuming from its generation cursor
// (GET /v1/traps?since=) pays only the pairs added since, and an idle poll
// pays a bodyless 304. This is the O(pairs) → O(delta) claim of the delta
// sync, measured rather than asserted.
func fleetWireEconomy(w io.Writer) {
	mem := trapstore.NewMemory("TSVD", nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(w, "wire economy: listen: %v\n", err)
		return
	}
	srv := &http.Server{Handler: trapstore.NewHandler(mem, trapstore.HandlerOptions{})}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// A realistic steady-state trap set: a few hundred pairs, the size the
	// fleet table above converges to after a couple of rounds at scale.
	const basePairs = 256
	seed := trapfile.File{Version: trapfile.FormatVersion, Tool: "TSVD"}
	for i := 0; i < basePairs; i++ {
		seed.Pairs = append(seed.Pairs, trapfile.Pair{
			A: fmt.Sprintf("exp/fleet/mod%03d.go:11", i),
			B: fmt.Sprintf("exp/fleet/mod%03d.go:47", i),
		})
	}
	publisher := trapstore.NewHTTPStore(base, trapstore.HTTPConfig{})
	defer publisher.Close()
	if err := publisher.Publish(seed); err != nil {
		fmt.Fprintf(w, "wire economy: seed publish: %v\n", err)
		return
	}

	poller := trapstore.NewHTTPStore(base, trapstore.HTTPConfig{})
	defer poller.Close()
	fetch := func() bool {
		if _, err := poller.Fetch(); err != nil {
			fmt.Fprintf(w, "wire economy: poll: %v\n", err)
			return false
		}
		return true
	}
	if !fetch() { // cold: full snapshot
		return
	}
	fullBytes := poller.WireStats().FetchBytes
	const idlePolls = 8
	for i := 0; i < idlePolls; i++ { // warm, nothing new: 304s
		if !fetch() {
			return
		}
	}
	growth := trapfile.File{Version: trapfile.FormatVersion, Tool: "TSVD", Pairs: []trapfile.Pair{
		{A: "exp/fleet/new.go:3", B: "exp/fleet/new.go:9"},
	}}
	if err := publisher.Publish(growth); err != nil {
		fmt.Fprintf(w, "wire economy: growth publish: %v\n", err)
		return
	}
	if !fetch() { // warm, one pair grew: delta
		return
	}
	ws := poller.WireStats()
	deltaBytes := ws.FetchBytes - fullBytes

	fmt.Fprintf(w, "wire cost per poll (v2 snapshot protocol, %d-pair store)\n", basePairs)
	fmt.Fprintf(w, "%-28s %7s %12s\n", "poll kind", "polls", "bytes/poll")
	fmt.Fprintf(w, "%-28s %7d %12d\n", "full snapshot (cold client)", 1, fullBytes)
	fmt.Fprintf(w, "%-28s %7d %12d\n", "not-modified (idle)", ws.NotModified, 0)
	fmt.Fprintf(w, "%-28s %7d %12d\n", "delta (+1 pair)", ws.DeltaFetches, deltaBytes)
	fmt.Fprintf(w, "(the cold fetch is O(pairs); the generation cursor makes every warm\n")
	fmt.Fprintf(w, " poll O(pairs added since), so steady-state polling cost no longer\n")
	fmt.Fprintf(w, " grows with the accumulated trap set.)\n")
}

// Sampling measures the production sampling tier (docs/SAMPLING.md): the
// overhead-vs-recall trade across the three Config.Mode settings plus fixed
// and adaptive per-site probabilities. Overhead is wall time relative to an
// uninstrumented (Nop) baseline of the same suite; recall is planted bugs
// found. The interesting shape: fixed low probabilities shed overhead
// roughly linearly while hot-path bugs keep surfacing (hot sites get many
// chances even at 1% admission), and the adaptive controller lands near the
// fixed point that matches its target without hand-tuning.
func Sampling(p Params, w io.Writer) {
	suite := workload.GenerateSuite(p.Seed, p.Fig8Modules)
	planted := suite.PlantedPairs()

	const runs = 2
	base := harness.Baseline(suite, p.opts(config.AlgoTSVD, runs))

	type variant struct {
		name string
		mut  func(*config.Config)
	}
	variants := []variant{
		{"full", func(c *config.Config) {}},
		{"sampled p=1.00", func(c *config.Config) {
			c.Mode = config.ModeSampled
			c.SampleProbability = 1.0
		}},
		{"sampled p=0.10", func(c *config.Config) {
			c.Mode = config.ModeSampled
			c.SampleProbability = 0.10
		}},
		{"sampled p=0.01", func(c *config.Config) {
			c.Mode = config.ModeSampled
			c.SampleProbability = 0.01
		}},
		{"sampled auto 1%", func(c *config.Config) {
			c.Mode = config.ModeSampled
			c.OverheadTarget = 0.01
		}},
		{"observe-only", func(c *config.Config) {
			c.Mode = config.ModeObserveOnly
		}},
	}

	fmt.Fprintf(w, "production sampling tier: overhead vs recall (modules: %d, planted: %d, runs: %d)\n",
		len(suite.Modules), len(planted), runs)
	fmt.Fprintf(w, "%-16s %6s %8s %11s %12s %10s\n",
		"mode", "bugs", "#delay", "#suppress", "sampled-out", "overhead")
	for _, v := range variants {
		opts := p.opts(config.AlgoTSVD, runs)
		v.mut(&opts.Config)
		out := harness.Run(suite, opts)
		sampledOut := 0.0
		if out.Stats.OnCalls > 0 {
			sampledOut = 100 * float64(out.Stats.CallsSampledOut) / float64(out.Stats.OnCalls)
		}
		overhead := 100 * (float64(out.WallTime)/float64(base.Nanoseconds()*runs) - 1)
		fmt.Fprintf(w, "%-16s %6d %8d %11d %11.1f%% %9.1f%%\n",
			v.name, out.TotalFound(), out.Stats.DelaysInjected,
			out.Stats.DelaysSuppressed, sampledOut, overhead)
	}
	fmt.Fprintf(w, "(overhead: suite wall time vs an uninstrumented baseline, per run;\n")
	fmt.Fprintf(w, " sampled-out: OnCalls rejected by the admission gate. Red-handed trap\n")
	fmt.Fprintf(w, " checks run before the gate, so sampling trades delay budget — not\n")
	fmt.Fprintf(w, " soundness — for overhead; observe-only reaches every trap decision but\n")
	fmt.Fprintf(w, " never sleeps, bounding its recall to phase-free schedules.)\n")
}
