package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/scenarios"
	"repro/internal/trapstore"
	"repro/internal/workload"
)

// Table4 runs the nine open-source scenarios (§5.7) under TSVD with the
// paper's default parameters (time-scaled) and prints the Table-4 row
// shape: tests, runs used, TSVs found, overhead.
func Table4(p Params, w io.Writer) {
	// Scenario tests pace at 2ms, so run with a 40ms window/20ms delay.
	cfg := config.Defaults(config.AlgoTSVD).Scaled(0.4)
	fmt.Fprintf(w, "Table 4: TSVD results on open-source-modeled projects\n")
	fmt.Fprintf(w, "%-22s %7s %6s %6s %9s\n", "project", "#tests", "#run", "#TSV", "overhead")
	for _, s := range scenarios.All() {
		out, err := scenarios.Run(s, cfg, 2)
		if err != nil {
			fmt.Fprintf(w, "%-22s error: %v\n", s.Name, err)
			continue
		}
		fmt.Fprintf(w, "%-22s %7d %6d %6d %8.1f%%\n",
			out.Name, out.Tests, out.RunsUsed, out.TSVs, 100*out.Overhead)
	}
}

// ResourceUsage reproduces §5.5: memory and CPU cost of running with TSVD
// against the uninstrumented baseline, measured over the Small suite.
func ResourceUsage(p Params, w io.Writer) {
	suite := workload.GenerateSuite(p.Seed, p.SmallModules)

	measure := func(algo config.Algorithm) (time.Duration, uint64) {
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if algo == config.AlgoNop {
			harness.Baseline(suite, p.opts(config.AlgoTSVD, 1))
		} else {
			harness.Run(suite, p.opts(algo, 1))
		}
		dur := time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		return dur, after.TotalAlloc - before.TotalAlloc
	}

	baseDur, baseAlloc := measure(config.AlgoNop)
	tsvdDur, tsvdAlloc := measure(config.AlgoTSVD)

	fmt.Fprintf(w, "§5.5 resource usage over the Small suite (one run)\n")
	fmt.Fprintf(w, "%-14s %12s %14s\n", "config", "wall time", "allocations")
	fmt.Fprintf(w, "%-14s %12v %13dK\n", "baseline", baseDur.Round(time.Millisecond), baseAlloc/1024)
	fmt.Fprintf(w, "%-14s %12v %13dK\n", "TSVD", tsvdDur.Round(time.Millisecond), tsvdAlloc/1024)
	if baseAlloc > 0 {
		fmt.Fprintf(w, "allocation increase: %.0f%%\n",
			100*(float64(tsvdAlloc)/float64(baseAlloc)-1))
	}
}

// AsyncInlining reproduces the §4 observation: with the CLR-style
// fast-async inlining emulation enabled (and TSVD's force-async
// instrumentation therefore absent), async bugs hide.
func AsyncInlining(p Params, w io.Writer) {
	suite := workload.GenerateSuite(p.Seed, p.SmallModules)
	planted := suite.BugsByKind()

	forced := harness.Run(suite, p.opts(config.AlgoTSVD, 2))
	inlineOpts := p.opts(config.AlgoTSVD, 2)
	inlineOpts.InlineFastAsync = true
	inlined := harness.Run(suite, inlineOpts)

	fmt.Fprintf(w, "§4 async-inlining ablation (async bugs planted: %d)\n",
		planted[workload.BugAsync])
	fmt.Fprintf(w, "%-28s %11s %10s\n", "scheduler mode", "async bugs", "all bugs")
	fmt.Fprintf(w, "%-28s %11d %10d\n", "force-async (TSVD's §4 fix)",
		forced.FoundByKind(suite)[workload.BugAsync], forced.TotalFound())
	fmt.Fprintf(w, "%-28s %11d %10d\n", "CLR fast-async inlining",
		inlined.FoundByKind(suite)[workload.BugAsync], inlined.TotalFound())
}

// DelayOverlap reproduces the §3.4.6 design discussion: suppressing
// overlapping delays finds fewer bugs under the same budget.
func DelayOverlap(p Params, w io.Writer) {
	suite := workload.GenerateSuite(p.Seed, p.SmallModules)
	aggressive := harness.Run(suite, p.opts(config.AlgoTSVD, 2))
	avoidOpts := p.opts(config.AlgoTSVD, 2)
	avoidOpts.Config.AvoidOverlappingDelays = true
	avoiding := harness.Run(suite, avoidOpts)

	fmt.Fprintf(w, "§3.4.6 parallel delay injection ablation\n")
	fmt.Fprintf(w, "%-26s %6s %9s\n", "policy", "bugs", "#delay")
	fmt.Fprintf(w, "%-26s %6d %9d\n", "aggressive (TSVD)",
		aggressive.TotalFound(), aggressive.Stats.DelaysInjected)
	fmt.Fprintf(w, "%-26s %6d %9d\n", "avoid overlaps",
		avoiding.TotalFound(), avoiding.Stats.DelaysInjected)
}

// Fleet measures the tentpole of fleet mode: K shards sharing one trap
// store catch cold bugs (single-occurrence per run, §3.4.6's motivating
// class) within their very first round, because peers' publishes seed them
// before their own runs start; isolated shards must each spend a round
// learning the pairs themselves. Reported per shard count: distinct cold
// bugs the shard itself trapped within the budget.
func Fleet(p Params, w io.Writer) {
	// The cold-bug-rich suite (same seed the harness tests pin): enough
	// single-occurrence bugs that seeding is the only way to catch them.
	suite := workload.GenerateSuite(33, 120)
	planted := suite.BugsByKind()

	fmt.Fprintf(w, "fleet mode: shared trap store vs isolated shards (cold bugs planted: %d)\n",
		planted[workload.BugCold])
	fmt.Fprintf(w, "%-9s %7s %18s %18s %15s\n",
		"shards", "rounds", "cold catches", "fleet-wide bugs", "mean 1st round")
	for _, shards := range []int{2, 3, 4} {
		for _, rounds := range []int{1, 2} {
			shared := harness.RunFleet(suite, shards, rounds, p.opts(config.AlgoTSVD, 1),
				trapstore.NewMemory("TSVD", nil))
			isolated := harness.RunFleet(suite, shards, rounds, p.opts(config.AlgoTSVD, 1), nil)
			sm, _ := shared.MeanFirstBugRound()
			im, _ := isolated.MeanFirstBugRound()
			fmt.Fprintf(w, "%-9d %7d %8d vs %-7d %8d vs %-7d %6.2f vs %-5.2f\n",
				shards, rounds,
				shared.ColdCatches, isolated.ColdCatches,
				len(shared.Found), len(isolated.Found),
				sm, im)
		}
	}
	fmt.Fprintf(w, "(cold catches: per-shard distinct cold bugs, summed over shards;\n")
	fmt.Fprintf(w, " shared vs isolated store. Cold bugs need a seeded trap, so isolated\n")
	fmt.Fprintf(w, " shards catch none in round 1 by construction.)\n")
}
