package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyParams keeps experiment smoke tests to a few seconds.
func tinyParams() Params {
	p := DefaultParams()
	p.SmallModules = 12
	p.LargeModules = 15
	p.Fig8Modules = 8
	p.Fig8Runs = 3
	return p
}

func output(t *testing.T, fn func(Params, *bytes.Buffer)) string {
	t.Helper()
	var buf bytes.Buffer
	fn(tinyParams(), &buf)
	return buf.String()
}

func TestTable2Output(t *testing.T) {
	got := output(t, func(p Params, w *bytes.Buffer) { Table2(p, w) })
	for _, want := range []string{
		"Table 2", "DataCollider", "DynamicRandom", "TSVDHB", "TSVD",
		"overhead", "#delay", "planted bugs",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("Table2 output missing %q:\n%s", want, got)
		}
	}
	// Four technique rows.
	if n := strings.Count(got, "%"); n < 4 {
		t.Fatalf("expected at least 4 overhead cells:\n%s", got)
	}
}

func TestTable1Output(t *testing.T) {
	got := output(t, func(p Params, w *bytes.Buffer) { Table1(p, w) })
	for _, want := range []string{
		"Table 1", "unique bugs", "read-write", "same-location",
		"async", "Dictionary", "List", "stack depth",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("Table1 output missing %q:\n%s", want, got)
		}
	}
}

func TestTable3Output(t *testing.T) {
	got := output(t, func(p Params, w *bytes.Buffer) { Table3(p, w) })
	for _, want := range []string{
		"Table 3", "No HB-inference", "No windowing", "No phase detection",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("Table3 output missing %q:\n%s", want, got)
		}
	}
}

func TestFigure8Output(t *testing.T) {
	got := output(t, func(p Params, w *bytes.Buffer) { Figure8(p, w) })
	if !strings.Contains(got, "Figure 8") {
		t.Fatalf("missing header:\n%s", got)
	}
	if !strings.Contains(got, "false negatives") {
		t.Fatalf("missing §5.3 categorization:\n%s", got)
	}
	// One line per run.
	if lines := strings.Count(got, "\n"); lines < tinyParams().Fig8Runs {
		t.Fatalf("expected >= %d run rows:\n%s", tinyParams().Fig8Runs, got)
	}
}

func TestFigure9Sweeps(t *testing.T) {
	cases := []struct {
		name string
		fn   func(Params, *bytes.Buffer)
		want string
	}{
		{"9b", func(p Params, w *bytes.Buffer) { Figure9b(p, w) }, "N_nm"},
		{"9d", func(p Params, w *bytes.Buffer) { Figure9d(p, w) }, "δ_hb"},
		{"9g", func(p Params, w *bytes.Buffer) { Figure9g(p, w) }, "decay"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := output(t, tc.fn)
			if !strings.Contains(got, tc.want) {
				t.Fatalf("Figure %s output missing %q:\n%s", tc.name, tc.want, got)
			}
		})
	}
}

func TestResourceUsageOutput(t *testing.T) {
	got := output(t, func(p Params, w *bytes.Buffer) { ResourceUsage(p, w) })
	for _, want := range []string{"baseline", "TSVD", "allocation"} {
		if !strings.Contains(got, want) {
			t.Fatalf("ResourceUsage output missing %q:\n%s", want, got)
		}
	}
}

func TestAsyncInliningOutput(t *testing.T) {
	got := output(t, func(p Params, w *bytes.Buffer) { AsyncInlining(p, w) })
	if !strings.Contains(got, "force-async") || !strings.Contains(got, "inlining") {
		t.Fatalf("AsyncInlining output malformed:\n%s", got)
	}
}

func TestDelayOverlapOutput(t *testing.T) {
	got := output(t, func(p Params, w *bytes.Buffer) { DelayOverlap(p, w) })
	if !strings.Contains(got, "aggressive") || !strings.Contains(got, "avoid overlaps") {
		t.Fatalf("DelayOverlap output malformed:\n%s", got)
	}
}

func TestParallelismForHostPositive(t *testing.T) {
	if parallelismForHost() < 1 {
		t.Fatal("parallelismForHost < 1")
	}
}
