// Package experiments regenerates every table and figure of the paper's
// evaluation section (§5) over the synthetic workload suites. Each function
// prints the same rows/series the paper reports; cmd/tsvd-bench and the
// top-level benchmarks are thin wrappers around it.
//
// Absolute numbers differ from the paper — the substrate is a synthetic
// workload at millisecond scale, not Microsoft's test fleet — but the
// shapes are the reproduction target: who finds more bugs, who pays more
// overhead, where the parameter sweet spots sit.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/workload"
)

// Params sizes the experiments. Defaults keep a full regeneration within
// minutes; the paper's scale is reached by raising the module counts.
type Params struct {
	// Scale is the TimeScale applied to all detector durations
	// (0.02 → 2ms delays and windows).
	Scale float64
	// Seed generates the suites.
	Seed int64
	// SmallModules sizes the Small-benchmark analogue (paper: 1000).
	SmallModules int
	// LargeModules sizes the Large-benchmark analogue (paper: ~43K).
	LargeModules int
	// Fig8Modules sizes the many-runs experiment's suite.
	Fig8Modules int
	// Fig8Runs is the number of accumulated runs (paper: 50).
	Fig8Runs int
	// Parallelism is modules-in-flight (paper: 10).
	Parallelism int
}

// parallelismForHost returns ~1.25 modules per hardware thread, the
// paper's ratio (10 modules on 8 threads).
func parallelismForHost() int {
	p := runtime.NumCPU() + runtime.NumCPU()/4
	if p < 1 {
		p = 1
	}
	return p
}

// DefaultParams returns the harness-scale defaults.
func DefaultParams() Params {
	return Params{
		Scale:        0.02,
		Seed:         2019, // SOSP '19
		SmallModules: 100,
		LargeModules: 600,
		Fig8Modules:  60,
		Fig8Runs:     50,
		// The paper runs 10 modules at a time on an 8-thread server
		// (§5.1) — about one module per hardware thread, so that module
		// wall times reflect the detector, not CPU queueing. Scale the
		// same ratio to this machine.
		Parallelism: parallelismForHost(),
	}
}

func (p Params) cfg(algo config.Algorithm) config.Config {
	return config.Defaults(algo).Scaled(p.Scale)
}

func (p Params) opts(algo config.Algorithm, runs int) harness.Options {
	return harness.Options{
		Config:      p.cfg(algo),
		Runs:        runs,
		Parallelism: p.Parallelism,
		RunSeedBase: harness.Seed(p.Seed * 31),
	}
}

// techniques are Table 2's rows, in the paper's order.
func techniques() []config.Algorithm {
	return []config.Algorithm{
		config.AlgoStaticRandom, // "DataCollider"
		config.AlgoDynamicRandom,
		config.AlgoTSVDHB,
		config.AlgoTSVD,
	}
}

// Table1 reproduces the bug-population summary over the Large suite under
// TSVD (two runs), including the bug-property percentages.
func Table1(p Params, w io.Writer) {
	suite := workload.GenerateSuite(p.Seed, p.LargeModules)
	out := harness.Run(suite, p.opts(config.AlgoTSVD, 2))
	planted := suite.PlantedPairs()

	var sameLoc, readWrite, async, dict, list int
	for pair := range out.FoundBugs {
		b := planted[pair]
		if b.SameLocation {
			sameLoc++
		}
		if b.ReadWrite {
			readWrite++
		}
		if b.Async {
			async++
		}
		switch b.Class {
		case "Dictionary":
			dict++
		case "List":
			list++
		}
	}
	found := out.TotalFound()
	bugs := map[report.PairKey]bool{}
	for pair := range out.FoundBugs {
		bugs[pair] = true
	}
	var occTotal, spTotal int
	var occs []int
	var depthSum, depthN int
	for _, b := range out.Reports.Bugs() {
		if !bugs[b.Key] {
			continue
		}
		occTotal += b.Occurrences
		spTotal += b.StackPairs
		occs = append(occs, b.Occurrences)
		depthSum += harness.StackDepthOf(b.First.Trapped.Stack)
		depthSum += harness.StackDepthOf(b.First.Conflicting.Stack)
		depthN += 2
	}
	sort.Ints(occs)

	fmt.Fprintf(w, "Table 1: Summary of bugs found by TSVD (Large suite analogue)\n")
	fmt.Fprintf(w, "Test targets\n")
	fmt.Fprintf(w, "  # of test modules            %d\n", len(suite.Modules))
	fmt.Fprintf(w, "  # of planted TSVs            %d\n", suite.TotalPlantedBugs())
	fmt.Fprintf(w, "Bugs found\n")
	fmt.Fprintf(w, "  # of unique bugs (loc pairs) %d\n", found)
	fmt.Fprintf(w, "  # of unique bug locations    %d\n", uniqueLocations(out.FoundBugs))
	fmt.Fprintf(w, "  # of unique stack trace prs  %d\n", spTotal)
	fmt.Fprintf(w, "  %% of modules with bugs       %.1f%%\n",
		pct(out.ModulesWithBugs, len(suite.Modules)))
	fmt.Fprintf(w, "Bug properties (of found bugs)\n")
	fmt.Fprintf(w, "  %% read-write bugs            %.0f%%\n", pct(readWrite, found))
	fmt.Fprintf(w, "  %% same-location bugs         %.0f%%\n", pct(sameLoc, found))
	fmt.Fprintf(w, "  %% bugs in async code         %.0f%%\n", pct(async, found))
	fmt.Fprintf(w, "  avg (median) occ. of a bug   %.1f (%d)\n",
		avg(occTotal, found), median(occs))
	fmt.Fprintf(w, "  avg stack pairs per bug      %.1f\n", avg(spTotal, found))
	fmt.Fprintf(w, "  avg stack depth              %.1f\n", avg(depthSum, depthN))
	fmt.Fprintf(w, "  %% Dictionary bugs            %.0f%%\n", pct(dict, found))
	fmt.Fprintf(w, "  %% List bugs                  %.0f%%\n", pct(list, found))
}

// Table2 compares the four techniques over the Small suite: bugs in run 1
// and run 2, overhead against the uninstrumented baseline, and delay count.
func Table2(p Params, w io.Writer) {
	suite := workload.GenerateSuite(p.Seed, p.SmallModules)
	base := harness.Baseline(suite, p.opts(config.AlgoTSVD, 1))

	fmt.Fprintf(w, "Table 2: Comparing TSVD with other detection techniques\n")
	fmt.Fprintf(w, "%-15s %6s %6s %6s %9s %9s\n",
		"technique", "total", "run1", "run2", "overhead", "#delay")
	for _, algo := range techniques() {
		out := harness.Run(suite, p.opts(algo, 2))
		fmt.Fprintf(w, "%-15s %6d %6d %6d %8.0f%% %9d\n",
			algo.String(), out.TotalFound(),
			out.NewBugsByRun[0], out.NewBugsByRun[1],
			100*harness.Overhead(out.WallTime, 2*base),
			out.Stats.DelaysInjected)
	}
	fmt.Fprintf(w, "(planted bugs in suite: %d; baseline per run: %v)\n",
		suite.TotalPlantedBugs(), base.Round(time.Millisecond))
}

// Figure8 accumulates unique bugs over many runs per technique and then
// categorizes TSVD's remaining false negatives as §5.3 does.
func Figure8(p Params, w io.Writer) {
	suite := workload.GenerateSuite(p.Seed, p.Fig8Modules)
	fmt.Fprintf(w, "Figure 8: Number of bugs found after more runs (suite: %d modules, %d planted)\n",
		p.Fig8Modules, suite.TotalPlantedBugs())
	fmt.Fprintf(w, "%-15s", "run")
	for _, algo := range techniques() {
		fmt.Fprintf(w, " %13s", algo.String())
	}
	fmt.Fprintln(w)

	cumulative := map[config.Algorithm][]int{}
	outcomes := map[config.Algorithm]*harness.Outcome{}
	for _, algo := range techniques() {
		out := harness.Run(suite, p.opts(algo, p.Fig8Runs))
		outcomes[algo] = out
		cum := 0
		for _, n := range out.NewBugsByRun {
			cum += n
			cumulative[algo] = append(cumulative[algo], cum)
		}
	}
	for run := 0; run < p.Fig8Runs; run++ {
		fmt.Fprintf(w, "%-15d", run+1)
		for _, algo := range techniques() {
			fmt.Fprintf(w, " %13d", cumulative[algo][run])
		}
		fmt.Fprintln(w)
	}

	// §5.3 false-negative categorization for TSVD: planted bugs missed at
	// the paper's two-run budget and after all accumulated runs, by kind.
	tsvd := outcomes[config.AlgoTSVD]
	for _, horizon := range []int{2, p.Fig8Runs} {
		missed := map[workload.BugKind]int{}
		total := 0
		for pair, b := range suite.PlantedPairs() {
			run, found := tsvd.FoundBugs[pair]
			if !found || run > horizon {
				missed[b.Kind]++
				total++
			}
		}
		fmt.Fprintf(w, "\nTSVD false negatives after %d run(s), by category (§5.3): %d\n",
			horizon, total)
		for _, k := range []workload.BugKind{
			workload.BugRare, workload.BugHBShadowed, workload.BugMarginal,
			workload.BugHot, workload.BugAsync, workload.BugCold, workload.BugNoise,
		} {
			if missed[k] > 0 {
				fmt.Fprintf(w, "  %-12s %d\n", k, missed[k])
			}
		}
	}
}

// Table3 removes one TSVD technique at a time (§5.4's ablation).
func Table3(p Params, w io.Writer) {
	suite := workload.GenerateSuite(p.Seed, p.SmallModules)
	base := harness.Baseline(suite, p.opts(config.AlgoTSVD, 1))

	rows := []struct {
		name   string
		mutate func(*config.Config)
	}{
		{"TSVD", func(*config.Config) {}},
		{"No HB-inference", func(c *config.Config) { c.DisableHBInference = true }},
		{"No windowing", func(c *config.Config) { c.DisableNearMissWindow = true }},
		{"No phase detection", func(c *config.Config) { c.DisablePhaseDetection = true }},
	}
	fmt.Fprintf(w, "Table 3: Removing one technique at a time from TSVD\n")
	fmt.Fprintf(w, "%-20s %6s %6s %6s %9s %9s\n",
		"variant", "total", "run1", "run2", "overhead", "#delay")
	for _, row := range rows {
		o := p.opts(config.AlgoTSVD, 2)
		row.mutate(&o.Config)
		out := harness.Run(suite, o)
		fmt.Fprintf(w, "%-20s %6d %6d %6d %8.0f%% %9d\n",
			row.name, out.TotalFound(),
			out.NewBugsByRun[0], out.NewBugsByRun[1],
			100*harness.Overhead(out.WallTime, 2*base),
			out.Stats.DelaysInjected)
	}
}

func uniqueLocations(found map[report.PairKey]int) int {
	locs := map[uint64]bool{}
	for pair := range found {
		locs[uint64(pair.A)] = true
		locs[uint64(pair.B)] = true
	}
	return len(locs)
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

func avg(sum, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

func median(sorted []int) int {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[len(sorted)/2]
}
