package sites

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/ids"
)

// TestRegisterDenseSequential: ids are handed out densely in registration
// order, starting at 1, and every lookup surface agrees on the stored tuple.
func TestRegisterDenseSequential(t *testing.T) {
	r := New()
	const n = 200
	for i := 0; i < n; i++ {
		op := ids.OpID(1000 + i)
		id := r.Register(op, "Dictionary", fmt.Sprintf("Method%d", i), i%2 == 0)
		if id != ids.SiteID(i+1) {
			t.Fatalf("site %d got id %d, want %d", i, id, i+1)
		}
	}
	if r.Len() != n {
		t.Fatalf("Len = %d, want %d", r.Len(), n)
	}
	snap := r.Snapshot()
	if len(snap) != n {
		t.Fatalf("Snapshot len = %d, want %d", len(snap), n)
	}
	for i, s := range snap {
		if s.ID != ids.SiteID(i+1) {
			t.Fatalf("snapshot[%d].ID = %d, want %d", i, s.ID, i+1)
		}
		if got := r.Info(s.ID); got != s {
			t.Fatalf("Info(%d) = %+v, want %+v", s.ID, got, s)
		}
		if got, ok := r.SiteForOp(s.Op); !ok || got != s {
			t.Fatalf("SiteForOp(%d) = %+v, %v, want %+v", s.Op, got, ok, s)
		}
	}
}

// TestRegisterIdempotent: re-registering any tuple returns its existing id;
// changing any tuple component mints a new one.
func TestRegisterIdempotent(t *testing.T) {
	r := New()
	base := r.Register(7, "List", "Add", true)
	if again := r.Register(7, "List", "Add", true); again != base {
		t.Fatalf("duplicate tuple got id %d, want %d", again, base)
	}
	variants := []ids.SiteID{
		r.Register(8, "List", "Add", true),      // different op
		r.Register(7, "Dictionary", "Add", true), // different class
		r.Register(7, "List", "Remove", true),    // different method
		r.Register(7, "List", "Add", false),      // different kind
	}
	seen := map[ids.SiteID]bool{base: true}
	for i, id := range variants {
		if seen[id] {
			t.Fatalf("variant %d collided with an earlier id %d", i, id)
		}
		seen[id] = true
	}
	if r.Len() != len(seen) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(seen))
	}
}

// TestForCallMatchesRegister: the prologue-named intern is Register.
func TestForCallMatchesRegister(t *testing.T) {
	r := New()
	a := r.ForCall(11, "Queue", "Enqueue", true)
	if b := r.Register(11, "Queue", "Enqueue", true); b != a {
		t.Fatalf("ForCall/Register disagree: %d vs %d", a, b)
	}
}

// TestForOpKindFallback: an access carrying only an OpID resolves to the
// first site registered for (op, kind), or auto-registers an anonymous one.
func TestForOpKindFallback(t *testing.T) {
	r := New()

	// Unknown op: auto-registered with empty metadata.
	anon := r.ForOpKind(21, true)
	if anon == 0 {
		t.Fatal("ForOpKind returned the zero id")
	}
	if s := r.Info(anon); s.Op != 21 || s.Class != "" || s.Method != "" || !s.Write {
		t.Fatalf("anonymous site = %+v", s)
	}
	if again := r.ForOpKind(21, true); again != anon {
		t.Fatalf("second ForOpKind got %d, want %d", again, anon)
	}

	// Known op: the first registration for that (op, kind) wins.
	first := r.Register(22, "Set", "Contains", false)
	r.Register(22, "Set", "Count", false) // same (op, kind), later
	if got := r.ForOpKind(22, false); got != first {
		t.Fatalf("ForOpKind(22, read) = %d, want first-registered %d", got, first)
	}
	// The write kind of the same op is a distinct site.
	if got := r.ForOpKind(22, true); got == first {
		t.Fatal("write kind resolved to the read site")
	}
}

// TestInfoOutOfRange: Info is total — invalid ids yield the zero Site.
func TestInfoOutOfRange(t *testing.T) {
	r := New()
	r.Register(31, "A", "B", false)
	if s := r.Info(0); s != (Site{}) {
		t.Fatalf("Info(0) = %+v, want zero", s)
	}
	if s := r.Info(999); s != (Site{}) {
		t.Fatalf("Info(999) = %+v, want zero", s)
	}
	if _, ok := r.SiteForOp(999); ok {
		t.Fatal("SiteForOp for unknown op reported ok")
	}
}

// TestConcurrentRegister hammers Register from many goroutines with heavily
// overlapping tuples, forcing table growth races, and checks that interning
// stayed canonical: one id per tuple, every id resolvable, dense table.
func TestConcurrentRegister(t *testing.T) {
	r := New()
	const goroutines = 8
	const perG = 400
	const distinct = 64 // tuple space shared by all goroutines

	idsSeen := make([][]ids.SiteID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]ids.SiteID, perG)
			for i := 0; i < perG; i++ {
				k := (g*perG + i*13) % distinct
				out[i] = r.Register(
					ids.OpID(5000+k%16),
					fmt.Sprintf("Class%d", k%4),
					fmt.Sprintf("Method%d", k),
					k%2 == 0,
				)
			}
			idsSeen[g] = out
		}(g)
	}
	wg.Wait()

	if r.Len() != distinct {
		t.Fatalf("Len = %d, want %d distinct tuples", r.Len(), distinct)
	}
	// Every goroutine's view of a tuple must agree: re-deriving the tuple
	// from the id and re-registering it must return the same id.
	for g := range idsSeen {
		for _, id := range idsSeen[g] {
			s := r.Info(id)
			if s.ID != id {
				t.Fatalf("Info(%d) holds id %d", id, s.ID)
			}
			if again := r.Register(s.Op, s.Class, s.Method, s.Write); again != id {
				t.Fatalf("tuple %+v interned twice: %d and %d", s, id, again)
			}
		}
	}
	// The dense table has no holes.
	for i, s := range r.Snapshot() {
		if s.ID != ids.SiteID(i+1) {
			t.Fatalf("snapshot[%d].ID = %d", i, s.ID)
		}
	}
}

// FuzzRegistryIntern drives Register with fuzz-chosen tuples from several
// goroutines at once and asserts the interning invariants: duplicate tuples
// get one id, ids stay dense, and every lookup path round-trips.
func FuzzRegistryIntern(f *testing.F) {
	f.Add(int64(1), "Dictionary", "Add", true, uint8(3))
	f.Add(int64(1), "Dictionary", "Add", false, uint8(1))
	f.Add(int64(-7), "", "", true, uint8(8))
	f.Add(int64(1<<40), "List", "get_Item", false, uint8(5))
	f.Fuzz(func(t *testing.T, op int64, class, method string, write bool, gor uint8) {
		r := New()
		goroutines := int(gor%8) + 2

		// Each goroutine registers the fuzz tuple plus per-goroutine
		// variants derived from it, concurrently.
		got := make([]ids.SiteID, goroutines)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				r.Register(ids.OpID(op)+ids.OpID(g), class, method, write)
				got[g] = r.Register(ids.OpID(op), class, method, write)
				r.Register(ids.OpID(op), class, method+"x", !write)
			}(g)
		}
		wg.Wait()

		// All goroutines agree on the shared tuple's id.
		for g := 1; g < goroutines; g++ {
			if got[g] != got[0] {
				t.Fatalf("goroutines disagree on shared tuple: %d vs %d", got[g], got[0])
			}
		}
		// Dense, hole-free table; every site re-interns to itself.
		snap := r.Snapshot()
		if len(snap) != r.Len() {
			t.Fatalf("Snapshot len %d != Len %d", len(snap), r.Len())
		}
		for i, s := range snap {
			if s.ID != ids.SiteID(i+1) {
				t.Fatalf("snapshot[%d].ID = %d", i, s.ID)
			}
			if again := r.Register(s.Op, s.Class, s.Method, s.Write); again != s.ID {
				t.Fatalf("site %+v re-interned as %d", s, again)
			}
			if r.Info(s.ID) != s {
				t.Fatalf("Info(%d) != snapshot entry", s.ID)
			}
		}
		// ForOpKind agrees with the fuzz tuple's id (it was the first
		// registration for its (op, kind) unless a variant beat it; either
		// way the result must resolve to a site with that op and kind).
		res := r.ForOpKind(ids.OpID(op), write)
		if s := r.Info(res); s.Op != ids.OpID(op) || s.Write != write {
			t.Fatalf("ForOpKind resolved to wrong site %+v", s)
		}
	})
}
