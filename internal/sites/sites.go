// Package sites interns instrumentation sites — (location, class, method,
// kind) tuples — into dense ids.SiteID handles.
//
// The detector's per-site state (coverage flags, sampler admission
// thresholds) used to live in maps keyed by sparse OpIDs; every OnCall paid
// a hashed probe per structure. A SiteID is assigned sequentially at
// registration time, so the same state now lives in plain arrays indexed by
// the id — one bounds check and one load on the hot path, no hashing at all
// (docs/PERFORMANCE.md has the measured difference).
//
// Identity model: an OpID names a static program location and remains the
// cross-process identity used in trap files and pair keys (its string key is
// stable across runs). A SiteID refines it with the API metadata reports
// need (class, method, read/write) and is process-local: dense ids are
// handed out in registration order, so two processes agree on a site only
// through its (location key, class, method, kind) tuple — which is exactly
// what the site tables serialized into trace summaries and trap files carry.
//
// Registration happens once per static site (instrumentation prologues
// intern on first execution; tsvd-instrument emits a table registered up
// front), after which every lookup path is lock-free.
package sites

import (
	"sync"
	"sync/atomic"

	"repro/internal/ids"
	"repro/internal/intmap"
)

// Site is one interned instrumentation site.
type Site struct {
	// ID is the dense registry handle; 0 is never a valid registered site.
	ID ids.SiteID
	// Op is the interned static location the site instruments.
	Op ids.OpID
	// Class and Method name the thread-unsafe API, e.g. "Dictionary", "Add".
	// The op-keyed fallback path registers them empty.
	Class  string
	Method string
	// Write marks write-kind sites (the API requires exclusive access).
	Write bool
}

type tupleKey struct {
	op            ids.OpID
	class, method string
	write         bool
}

// Registry interns site tuples into dense SiteIDs. All lookup methods are
// safe for concurrent use; the hot paths (ForCall, ForOpKind, Info) are
// lock-free once a site is registered.
type Registry struct {
	mu sync.Mutex
	// table is the dense site table, index == SiteID. Index 0 holds the
	// zero Site. Growth appends under mu and republishes the header via the
	// atomic pointer: element i is written strictly before any header with
	// len > i is published, and never rewritten, so lock-free readers are
	// always consistent.
	table atomic.Pointer[[]Site]
	// byTuple is the canonical intern map, guarded by mu.
	byTuple map[tupleKey]ids.SiteID
	// byOpKind caches the first site registered for each (op, kind) — the
	// lock-free fast path for instrumentation prologues and for accesses
	// that carry only an OpID.
	byOpKind intmap.Map[ids.SiteID]
	// byOp caches the first site registered for each op, for report/trace
	// serialization, which resolves sites from pair keys (op pairs).
	byOp intmap.Map[ids.SiteID]
}

// New returns an empty registry.
func New() *Registry {
	r := &Registry{byTuple: map[tupleKey]ids.SiteID{}}
	t := make([]Site, 1, 64)
	r.table.Store(&t)
	return r
}

func opKindKey(op ids.OpID, write bool) int64 {
	k := int64(op) << 1
	if write {
		k |= 1
	}
	return k
}

// Register interns the tuple, returning its dense id. Registering the same
// tuple again returns the existing id.
func (r *Registry) Register(op ids.OpID, class, method string, write bool) ids.SiteID {
	if id, ok := r.fastLookup(op, class, method, write); ok {
		return id
	}
	return r.registerSlow(op, class, method, write)
}

// ForCall is the instrumentation-prologue intern: identical to Register but
// named for its hot-path role. On every call after the first for a given
// call site it is one lock-free probe plus two string compares (which
// succeed on pointer equality for the constant class/method strings
// prologues pass).
func (r *Registry) ForCall(op ids.OpID, class, method string, write bool) ids.SiteID {
	return r.Register(op, class, method, write)
}

func (r *Registry) fastLookup(op ids.OpID, class, method string, write bool) (ids.SiteID, bool) {
	if p := r.byOpKind.Get(opKindKey(op, write)); p != nil {
		id := *p
		t := *r.table.Load()
		if s := &t[id]; s.Class == class && s.Method == method {
			return id, true
		}
	}
	return 0, false
}

func (r *Registry) registerSlow(op ids.OpID, class, method string, write bool) ids.SiteID {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := tupleKey{op: op, class: class, method: method, write: write}
	if id, ok := r.byTuple[k]; ok {
		return id
	}
	t := *r.table.Load()
	id := ids.SiteID(len(t))
	nt := append(t, Site{ID: id, Op: op, Class: class, Method: method, Write: write})
	r.table.Store(&nt)
	r.byTuple[k] = id
	r.byOpKind.GetOrCreate(opKindKey(op, write), func() *ids.SiteID { v := id; return &v })
	r.byOp.GetOrCreate(int64(op), func() *ids.SiteID { v := id; return &v })
	return id
}

// ForOpKind resolves the site for an access that carries only an OpID (the
// legacy path and fabricated test accesses): the first site registered for
// (op, kind), auto-registered with empty class/method if the op was never
// seen. Lock-free after the first call per (op, kind).
func (r *Registry) ForOpKind(op ids.OpID, write bool) ids.SiteID {
	if p := r.byOpKind.Get(opKindKey(op, write)); p != nil {
		return *p
	}
	return r.registerSlow(op, "", "", write)
}

// Info returns the site for id (the zero Site for 0 or out-of-range ids).
// Lock-free.
func (r *Registry) Info(id ids.SiteID) Site {
	t := *r.table.Load()
	if int(id) < len(t) {
		return t[id]
	}
	return Site{}
}

// SiteForOp returns the first site registered for op, for resolving sites
// from op-keyed records (pair keys, trace events). Lock-free.
func (r *Registry) SiteForOp(op ids.OpID) (Site, bool) {
	if p := r.byOp.Get(int64(op)); p != nil {
		return r.Info(*p), true
	}
	return Site{}, false
}

// Len reports the number of registered sites.
func (r *Registry) Len() int {
	return len(*r.table.Load()) - 1
}

// Snapshot returns a copy of the registered sites in id order (id 1 first).
func (r *Registry) Snapshot() []Site {
	t := *r.table.Load()
	out := make([]Site, len(t)-1)
	copy(out, t[1:])
	return out
}
