package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/ids"
	"repro/internal/report"
)

// testConfig returns TSVD defaults scaled for fast tests: 10 ms delays and
// near-miss windows.
func testConfig(algo config.Algorithm) config.Config {
	return config.Defaults(algo).Scaled(0.1)
}

func mustNew(t *testing.T, cfg config.Config, opts ...Option) Detector {
	t.Helper()
	d, err := New(cfg, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func acc(thread ids.ThreadID, obj ids.ObjectID, op ids.OpID, kind Kind) Access {
	return Access{Thread: thread, Obj: obj, Op: op, Kind: kind}
}

// hammer runs fn in its own goroutine n times with the given pacing and
// returns a done channel.
func hammer(n int, pause time.Duration, fn func(i int)) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			fn(i)
			if pause > 0 {
				time.Sleep(pause)
			}
		}
	}()
	return done
}

// TestTSVDCatchesPlantedViolation is the core end-to-end property: two
// threads making conflicting writes to one object close together in time
// must be caught red-handed within one "run".
func TestTSVDCatchesPlantedViolation(t *testing.T) {
	d := mustNew(t, testConfig(config.AlgoTSVD))
	const obj = ids.ObjectID(1)
	const op1, op2 = ids.OpID(101), ids.OpID(102)

	d1 := hammer(200, time.Millisecond, func(int) { d.OnCall(acc(1, obj, op1, KindWrite)) })
	d2 := hammer(200, time.Millisecond, func(int) { d.OnCall(acc(2, obj, op2, KindWrite)) })
	<-d1
	<-d2

	bugs := d.Reports().Bugs()
	if len(bugs) == 0 {
		t.Fatal("planted write-write violation not detected")
	}
	found := false
	for _, b := range bugs {
		if b.Key == report.KeyOf(op1, op2) {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected pair (101,102), got %+v", bugs)
	}
	st := d.Stats()
	if st.NearMisses == 0 || st.PairsAdded == 0 || st.DelaysInjected == 0 {
		t.Fatalf("stats incomplete: %+v", st)
	}
}

// TestTSVDReadWriteConflict checks the read side of the contract.
func TestTSVDReadWriteConflict(t *testing.T) {
	d := mustNew(t, testConfig(config.AlgoTSVD))
	const obj = ids.ObjectID(2)
	d1 := hammer(200, time.Millisecond, func(int) { d.OnCall(acc(1, obj, 201, KindWrite)) })
	d2 := hammer(200, time.Millisecond, func(int) { d.OnCall(acc(2, obj, 202, KindRead)) })
	<-d1
	<-d2
	if d.Reports().UniqueBugs() == 0 {
		t.Fatal("read-write violation not detected")
	}
	v := d.Reports().Violations()[0]
	if !v.ReadWrite() {
		t.Fatalf("violation misclassified: %+v", v)
	}
}

// TestTSVDNoFalsePositiveOnReads: concurrent reads never violate the
// contract and must never be reported, no matter how tight the interleaving.
func TestTSVDNoFalsePositiveOnReads(t *testing.T) {
	d := mustNew(t, testConfig(config.AlgoTSVD))
	const obj = ids.ObjectID(3)
	d1 := hammer(300, 0, func(int) { d.OnCall(acc(1, obj, 301, KindRead)) })
	d2 := hammer(300, 0, func(int) { d.OnCall(acc(2, obj, 302, KindRead)) })
	<-d1
	<-d2
	if n := d.Reports().UniqueBugs(); n != 0 {
		t.Fatalf("reported %d bugs for read-read accesses", n)
	}
	if st := d.Stats(); st.NearMisses != 0 {
		t.Fatalf("read-read counted as near miss: %+v", st)
	}
}

// TestTSVDNoFalsePositiveSameThread: one thread interleaving writes on one
// object is sequential by definition.
func TestTSVDNoFalsePositiveSameThread(t *testing.T) {
	d := mustNew(t, testConfig(config.AlgoTSVD))
	const obj = ids.ObjectID(4)
	for i := 0; i < 500; i++ {
		d.OnCall(acc(1, obj, 401, KindWrite))
		d.OnCall(acc(1, obj, 402, KindWrite))
	}
	if n := d.Reports().UniqueBugs(); n != 0 {
		t.Fatalf("reported %d bugs for single-threaded accesses", n)
	}
}

// TestTSVDNoFalsePositiveDifferentObjects: conflicting ops on different
// objects are not violations.
func TestTSVDNoFalsePositiveDifferentObjects(t *testing.T) {
	d := mustNew(t, testConfig(config.AlgoTSVD))
	d1 := hammer(300, 0, func(int) { d.OnCall(acc(1, 5, 501, KindWrite)) })
	d2 := hammer(300, 0, func(int) { d.OnCall(acc(2, 6, 502, KindWrite)) })
	<-d1
	<-d2
	if n := d.Reports().UniqueBugs(); n != 0 {
		t.Fatalf("reported %d bugs across distinct objects", n)
	}
}

// TestEveryViolationIsGenuine asserts the red-handed invariant on every
// report a chaotic workload produces: different threads, same object,
// at least one write.
func TestEveryViolationIsGenuine(t *testing.T) {
	d := mustNew(t, testConfig(config.AlgoTSVD))
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tid := ids.ThreadID(g + 1)
			for i := 0; i < 150; i++ {
				obj := ids.ObjectID(i % 3)
				kind := KindRead
				if i%2 == 0 {
					kind = KindWrite
				}
				d.OnCall(acc(tid, obj, ids.OpID(600+g), kind))
			}
		}(g)
	}
	wg.Wait()
	for _, v := range d.Reports().Violations() {
		if v.Trapped.Thread == v.Conflicting.Thread {
			t.Fatalf("violation within one thread: %+v", v)
		}
		if !v.Trapped.Write && !v.Conflicting.Write {
			t.Fatalf("read-read violation reported: %+v", v)
		}
		if v.Trapped.Stack == "" || v.Conflicting.Stack == "" {
			t.Fatalf("violation missing a stack trace")
		}
	}
}

// TestNearMissWindowing: accesses farther apart than T_nm are not near
// misses; with windowing disabled (Table 3 "No windowing") they are.
func TestNearMissWindowing(t *testing.T) {
	cfg := testConfig(config.AlgoTSVD)
	cfg.DisablePhaseDetection = true // isolate the windowing decision
	cfg.DisableHBInference = true
	window := cfg.EffectiveNearMissWindow()

	d := mustNew(t, cfg)
	const obj = ids.ObjectID(7)
	// Alternate threads with gaps of 3 windows between accesses.
	for i := 0; i < 4; i++ {
		tid := ids.ThreadID(1 + i%2)
		d.OnCall(acc(tid, obj, ids.OpID(701+i%2), KindWrite))
		time.Sleep(3 * window)
	}
	if st := d.Stats(); st.NearMisses != 0 {
		t.Fatalf("distant accesses counted as near misses: %+v", st)
	}

	cfg.DisableNearMissWindow = true
	d2 := mustNew(t, cfg)
	for i := 0; i < 4; i++ {
		tid := ids.ThreadID(1 + i%2)
		d2.OnCall(acc(tid, obj, ids.OpID(701+i%2), KindWrite))
		time.Sleep(3 * window)
	}
	if st := d2.Stats(); st.NearMisses == 0 {
		t.Fatalf("windowing disabled but no near miss recorded: %+v", st)
	}
}

// TestPhaseDetectionSuppressesSequential: when all recent TSVD points come
// from one thread the program is in a sequential phase and near misses are
// not turned into dangerous pairs.
func TestPhaseDetectionSuppressesSequential(t *testing.T) {
	cfg := testConfig(config.AlgoTSVD)
	cfg.PhaseBufferSize = 8
	d := mustNew(t, cfg)
	const obj = ids.ObjectID(8)
	// Thread 2 touches the object once; then thread 1 floods the phase
	// buffer so the next thread-2-adjacent sighting is "sequential".
	// Accesses are within the near-miss window.
	d.OnCall(acc(2, obj, 801, KindWrite))
	for i := 0; i < 8; i++ {
		d.OnCall(acc(1, 900, 802, KindWrite)) // different object, fills ring
	}
	d.OnCall(acc(1, obj, 803, KindWrite)) // near miss vs 801, but sequential phase
	st := d.Stats()
	if st.SequentialSkips == 0 {
		t.Fatalf("sequential phase not detected: %+v", st)
	}
}

func TestPhaseRing(t *testing.T) {
	p := newPhaseRing(4)
	if p.observe(1) || p.observe(1) || p.observe(1) {
		t.Fatal("single-thread prefix reported concurrent")
	}
	if !p.observe(2) {
		t.Fatal("two threads in buffer not reported concurrent")
	}
	// Flood with thread 2 until thread 1 ages out.
	for i := 0; i < 3; i++ {
		p.observe(2)
	}
	if p.observe(2) {
		t.Fatal("thread 1 aged out but still reported concurrent")
	}
}

// TestHBInferencePrunesLockedPairs reproduces Figure 6: two locations
// consistently protected by one lock. The injected delay at loc1 stalls the
// other thread's lock acquisition, TSVD attributes the stall to the delay,
// infers HB, prunes the pair, and never reports a violation.
func TestHBInferencePrunesLockedPairs(t *testing.T) {
	cfg := testConfig(config.AlgoTSVD)
	d := mustNew(t, cfg)
	const obj = ids.ObjectID(9)
	var mu sync.Mutex

	worker := func(tid ids.ThreadID, op ids.OpID) chan struct{} {
		return hammer(60, time.Millisecond, func(int) {
			mu.Lock()
			d.OnCall(acc(tid, obj, op, KindWrite))
			mu.Unlock()
		})
	}
	d1 := worker(1, 901)
	d2 := worker(2, 902)
	<-d1
	<-d2

	if n := d.Reports().UniqueBugs(); n != 0 {
		t.Fatalf("lock-protected accesses reported as %d violations", n)
	}
	if st := d.Stats(); st.PairsPrunedHB == 0 {
		t.Fatalf("no HB pruning happened: %+v", st)
	}
}

// TestDecayPrunesUnproductivePairs: a pair that near-missed once but whose
// sides never actually overlap decays away and stops costing delays.
func TestDecayPrunesUnproductivePairs(t *testing.T) {
	cfg := testConfig(config.AlgoTSVD)
	cfg.DisableHBInference = true // isolate decay from HB pruning
	// A higher prune threshold keeps the test short: three failed delays
	// (P = 0.125 < 0.2) retire a location instead of six.
	cfg.PruneProbability = 0.2
	d := mustNew(t, cfg).(*TSVD)
	const obj = ids.ObjectID(10)

	// Strict ping-pong: the threads alternate through channels, so their
	// OnCalls are near misses in time but can never overlap.
	ping, pong := make(chan struct{}), make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	const iters = 40
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			d.OnCall(acc(1, obj, 1001, KindWrite))
			ping <- struct{}{}
			<-pong
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			<-ping
			d.OnCall(acc(2, obj, 1002, KindWrite))
			pong <- struct{}{}
		}
	}()
	wg.Wait()

	st := d.Stats()
	if st.PairsAdded == 0 {
		t.Fatalf("ping-pong produced no dangerous pair: %+v", st)
	}
	if st.PairsPrunedDecay == 0 {
		t.Fatalf("unproductive pair never decayed: %+v", st)
	}
	if d.TrapSetSize() != 0 {
		t.Fatalf("trap set still holds %d pairs", d.TrapSetSize())
	}
	// With default decay 0.5 and prune threshold 0.02, a location dies
	// after ~6 failed delays; both endpoints get delayed so the budget is
	// roughly double. Far fewer than the 2*iters=80 occurrences.
	if st.DelaysInjected > 30 {
		t.Fatalf("decay did not curb delays: %d injected", st.DelaysInjected)
	}
}

// TestDecayDisabledKeepsDelaying is Fig. 9g's pathological factor-0 setup.
func TestDecayDisabledKeepsDelaying(t *testing.T) {
	cfg := testConfig(config.AlgoTSVD)
	cfg.DisableHBInference = true
	cfg.DecayFactor = 0
	d := mustNew(t, cfg).(*TSVD)
	const obj = ids.ObjectID(11)

	ping, pong := make(chan struct{}), make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	const iters = 30
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			d.OnCall(acc(1, obj, 1101, KindWrite))
			ping <- struct{}{}
			<-pong
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			<-ping
			d.OnCall(acc(2, obj, 1102, KindWrite))
			pong <- struct{}{}
		}
	}()
	wg.Wait()

	st := d.Stats()
	if st.PairsPrunedDecay != 0 {
		t.Fatalf("decay disabled but pairs pruned: %+v", st)
	}
	// Every occurrence after the first near miss should inject (P stays 1).
	if st.DelaysInjected < 40 {
		t.Fatalf("expected sustained delays with no decay, got %d", st.DelaysInjected)
	}
}

// TestTrapFilePersistence is §3.4.6's two-run scheme: the bug's two sides
// run together only once per run, after the near miss has already passed.
// Run 1 can only learn the pair; run 2, seeded with the trap file, traps on
// the very first occurrence and catches the bug.
func TestTrapFilePersistence(t *testing.T) {
	cfg := testConfig(config.AlgoTSVD)
	cfg.DisableHBInference = true
	const obj = ids.ObjectID(12)
	const op1, op2 = ids.OpID(1201), ids.OpID(1202)

	// Run 1: a single near-miss (strictly serialized, no overlap chance).
	run1 := mustNew(t, cfg)
	run1.OnCall(acc(1, obj, op1, KindWrite))
	run1.OnCall(acc(2, obj, op2, KindWrite))
	if run1.Reports().UniqueBugs() != 0 {
		t.Fatal("run 1 unexpectedly reported the bug")
	}
	traps := run1.ExportTraps()
	if len(traps) == 0 {
		t.Fatal("run 1 exported no dangerous pairs")
	}

	// Run 2: the pair is known from the trap file, so the very first
	// occurrence of op1 sets a trap, and op2 arrives during the delay.
	run2 := mustNew(t, cfg, WithInitialTraps(traps))
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		run2.OnCall(acc(1, obj, op1, KindWrite)) // delays: op1 is in the trap set
	}()
	go func() {
		defer wg.Done()
		time.Sleep(cfg.EffectiveDelay() / 4) // land inside the delay
		run2.OnCall(acc(2, obj, op2, KindWrite))
	}()
	wg.Wait()
	if run2.Reports().UniqueBugs() == 0 {
		t.Fatal("run 2 with trap file missed the single-occurrence bug")
	}
}

// TestSameLocationBug: the same static location racing with itself from two
// threads (34% of the paper's bugs) must be representable and detectable.
func TestSameLocationBug(t *testing.T) {
	d := mustNew(t, testConfig(config.AlgoTSVD))
	const obj = ids.ObjectID(13)
	const op = ids.OpID(1301)
	d1 := hammer(200, time.Millisecond, func(int) { d.OnCall(acc(1, obj, op, KindWrite)) })
	d2 := hammer(200, time.Millisecond, func(int) { d.OnCall(acc(2, obj, op, KindWrite)) })
	<-d1
	<-d2
	bugs := d.Reports().Bugs()
	if len(bugs) == 0 {
		t.Fatal("same-location bug not detected")
	}
	if !bugs[0].First.SameLocation() {
		t.Fatalf("bug not classified same-location: %+v", bugs[0].Key)
	}
}

// TestMaxDelayBudget: the per-thread delay cap stops injection eventually.
func TestMaxDelayBudget(t *testing.T) {
	cfg := testConfig(config.AlgoTSVD)
	cfg.DisableHBInference = true
	cfg.DecayFactor = 0 // keep wanting to delay forever
	cfg.MaxDelayPerThread = 5 * cfg.DelayTime
	d := mustNew(t, cfg)
	const obj = ids.ObjectID(14)

	ping, pong := make(chan struct{}), make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	const iters = 20
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			d.OnCall(acc(1, obj, 1401, KindWrite))
			ping <- struct{}{}
			<-pong
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			<-ping
			d.OnCall(acc(2, obj, 1402, KindWrite))
			pong <- struct{}{}
		}
	}()
	wg.Wait()

	st := d.Stats()
	max := 2 * cfg.EffectiveMaxDelayPerThread() // two threads
	if st.TotalDelay > max+2*cfg.EffectiveDelay() {
		t.Fatalf("TotalDelay %v exceeds budget %v", st.TotalDelay, max)
	}
}

// TestViolationWakesTrapEarly: catching a conflict releases the sleeper
// before its full delay elapses.
func TestViolationWakesTrapEarly(t *testing.T) {
	cfg := config.Defaults(config.AlgoTSVD) // full 100ms delay
	cfg.DisableHBInference = true
	d := mustNew(t, cfg, WithInitialTraps([]report.PairKey{report.KeyOf(1501, 1502)}))
	const obj = ids.ObjectID(15)

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		d.OnCall(acc(1, obj, 1501, KindWrite)) // traps for up to 100ms
	}()
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		d.OnCall(acc(2, obj, 1502, KindWrite)) // conflict: wakes the trap
	}()
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 80*time.Millisecond {
		t.Fatalf("trap not woken early: took %v", elapsed)
	}
	if d.Reports().UniqueBugs() != 1 {
		t.Fatalf("UniqueBugs = %d, want 1", d.Reports().UniqueBugs())
	}
}

// TestViolationReportedOncePerPair: a found pair is suppressed; repeated
// overlap does not inflate the unique-bug count (occurrences may grow).
func TestViolationPairSuppressedAfterReport(t *testing.T) {
	d := mustNew(t, testConfig(config.AlgoTSVD)).(*TSVD)
	const obj = ids.ObjectID(16)
	d1 := hammer(150, time.Millisecond, func(int) { d.OnCall(acc(1, obj, 1601, KindWrite)) })
	d2 := hammer(150, time.Millisecond, func(int) { d.OnCall(acc(2, obj, 1602, KindWrite)) })
	<-d1
	<-d2
	if got := d.Reports().UniqueBugs(); got != 1 {
		t.Fatalf("UniqueBugs = %d, want 1", got)
	}
	if d.TrapSetSize() != 0 {
		t.Fatalf("found pair still in trap set")
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := config.Defaults(config.AlgoTSVD)
	cfg.ObjHistory = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
	bad := config.Defaults(config.Algorithm(42))
	if _, err := New(bad); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestNopDetectorInert(t *testing.T) {
	d := NewNop()
	d.OnCall(acc(1, 1, 1, KindWrite))
	d.OnFork(1, 2)
	d.OnJoin(1, 2)
	d.OnLockAcquire(1, 1)
	d.OnLockRelease(1, 1)
	if d.Reports().UniqueBugs() != 0 || d.Stats() != (Stats{}) || d.ExportTraps() != nil {
		t.Fatal("Nop detector is not inert")
	}
}
