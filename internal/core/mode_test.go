package core

import (
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/ids"
	"repro/internal/metrics"
)

// modeConfig is testConfig with the sampling tier configured.
func modeConfig(algo config.Algorithm, mode config.Mode) config.Config {
	cfg := testConfig(algo)
	cfg.Mode = mode
	return cfg
}

// TestObserveOnlyInjectsNothing is the mode's core contract: the detector
// still finds near misses and decides to trap, but no thread ever sleeps —
// DelaysInjected and TotalDelay stay zero while DelaysSuppressed counts the
// logical trap firings.
func TestObserveOnlyInjectsNothing(t *testing.T) {
	for _, algo := range []config.Algorithm{config.AlgoTSVD, config.AlgoTSVDHB} {
		t.Run(algo.String(), func(t *testing.T) {
			d := mustNew(t, modeConfig(algo, config.ModeObserveOnly))
			const obj = ids.ObjectID(1)
			d1 := hammer(200, time.Millisecond, func(int) { d.OnCall(acc(1, obj, 101, KindWrite)) })
			d2 := hammer(200, time.Millisecond, func(int) { d.OnCall(acc(2, obj, 102, KindWrite)) })
			<-d1
			<-d2

			st := d.Stats()
			if st.DelaysInjected != 0 {
				t.Errorf("observe-only injected %d delays", st.DelaysInjected)
			}
			if st.TotalDelay != 0 {
				t.Errorf("observe-only slept %v", st.TotalDelay)
			}
			if st.NearMisses == 0 {
				t.Error("observe-only recorded no near misses; analysis should be unaffected")
			}
			if st.DelaysSuppressed == 0 {
				t.Error("observe-only never reached a trap decision; expected suppressed delays")
			}
			if ts, ok := d.(interface{ TrapSetSize() int }); ok && ts.TrapSetSize() == 0 {
				t.Error("observe-only kept no dangerous pairs; trap bookkeeping should continue")
			}
		})
	}
}

// TestObserveOnlyRandomVariants covers the same contract for the variants
// that route every delay through the shared injectDelay funnel.
func TestObserveOnlyRandomVariants(t *testing.T) {
	for _, algo := range []config.Algorithm{config.AlgoDynamicRandom, config.AlgoStaticRandom} {
		t.Run(algo.String(), func(t *testing.T) {
			d := mustNew(t, modeConfig(algo, config.ModeObserveOnly))
			const obj = ids.ObjectID(1)
			d1 := hammer(500, 0, func(int) { d.OnCall(acc(1, obj, 101, KindWrite)) })
			d2 := hammer(500, 0, func(int) { d.OnCall(acc(2, obj, 102, KindWrite)) })
			<-d1
			<-d2
			st := d.Stats()
			if st.DelaysInjected != 0 || st.TotalDelay != 0 {
				t.Errorf("observe-only injected: %d delays, %v slept", st.DelaysInjected, st.TotalDelay)
			}
			if st.DelaysSuppressed == 0 {
				t.Error("expected suppressed delays from the random planner")
			}
		})
	}
}

// TestSampledZeroProbabilitySkipsAnalysis: with p=0 every call is sampled
// out after the trap check — no near misses, no delays, all skips counted.
func TestSampledZeroProbabilitySkipsAnalysis(t *testing.T) {
	cfg := modeConfig(config.AlgoTSVD, config.ModeSampled)
	cfg.SampleProbability = 0
	d := mustNew(t, cfg)
	const obj = ids.ObjectID(1)
	d1 := hammer(200, 0, func(int) { d.OnCall(acc(1, obj, 101, KindWrite)) })
	d2 := hammer(200, 0, func(int) { d.OnCall(acc(2, obj, 102, KindWrite)) })
	<-d1
	<-d2
	st := d.Stats()
	if st.CallsSampledOut != 400 {
		t.Errorf("CallsSampledOut = %d, want 400", st.CallsSampledOut)
	}
	if st.OnCalls != 400 {
		t.Errorf("OnCalls = %d, want 400 (skips still count)", st.OnCalls)
	}
	if st.NearMisses != 0 || st.DelaysInjected != 0 {
		t.Errorf("p=0 ran analysis: %+v", st)
	}
}

// TestSampledFullProbabilityMatchesFull: p=1 with no overhead target admits
// everything; detection works exactly as in full mode.
func TestSampledFullProbabilityMatchesFull(t *testing.T) {
	cfg := modeConfig(config.AlgoTSVD, config.ModeSampled)
	cfg.SampleProbability = 1
	d := mustNew(t, cfg)
	const obj = ids.ObjectID(1)
	d1 := hammer(200, time.Millisecond, func(int) { d.OnCall(acc(1, obj, 101, KindWrite)) })
	d2 := hammer(200, time.Millisecond, func(int) { d.OnCall(acc(2, obj, 102, KindWrite)) })
	<-d1
	<-d2
	st := d.Stats()
	if st.CallsSampledOut != 0 {
		t.Errorf("p=1 sampled out %d calls", st.CallsSampledOut)
	}
	if st.NearMisses == 0 {
		t.Error("p=1 found no near misses")
	}
	if len(d.Reports().Bugs()) == 0 {
		t.Error("p=1 caught no violation on a hammered shared object")
	}
}

// TestSampledAutoThrottle: with an overhead target, a hot loop must drive
// the admission probability down from 1 and record controller adjustments
// in both Stats and the tsvd_sampler_probability gauge.
func TestSampledAutoThrottle(t *testing.T) {
	cfg := modeConfig(config.AlgoTSVD, config.ModeSampled)
	cfg.SampleProbability = 1
	cfg.OverheadTarget = 0.001
	cfg.SamplerInterval = 5 * time.Millisecond
	// Unscaled interval: Scaled(0.1) in testConfig already shrank TimeScale,
	// and EffectiveSamplerInterval scales again. Counteract for a fast test.
	cfg.SamplerInterval = time.Duration(float64(cfg.SamplerInterval) / cfg.TimeScale)

	reg := metrics.NewRegistry()
	m := NewDetectorMetrics(reg)
	d := mustNew(t, cfg, WithDetectorMetrics(m))

	const obj = ids.ObjectID(1)
	deadline := time.Now().Add(2 * time.Second)
	d1 := hammer(200000, 0, func(int) {
		if time.Now().Before(deadline) {
			d.OnCall(acc(1, obj, 101, KindWrite))
		}
	})
	d2 := hammer(200000, 0, func(int) {
		if time.Now().Before(deadline) {
			d.OnCall(acc(2, obj, 102, KindWrite))
		}
	})
	<-d1
	<-d2

	st := d.Stats()
	if st.SamplerThrottles == 0 {
		t.Fatalf("controller never ticked: %+v", st)
	}
	if st.CallsSampledOut == 0 {
		t.Fatal("controller ticked but nothing was sampled out; throttle had no effect")
	}
	got := scrapeValues(t, reg)
	if p := got["tsvd_sampler_probability"]; p >= 1 {
		t.Errorf("tsvd_sampler_probability = %v, want < 1 after throttling", p)
	}
	if got["tsvd_sampler_throttles_total"] != float64(st.SamplerThrottles) {
		t.Errorf("tsvd_sampler_throttles_total = %v, stats say %d",
			got["tsvd_sampler_throttles_total"], st.SamplerThrottles)
	}
	if got["tsvd_sampler_calls_sampled_out_total"] != float64(st.CallsSampledOut) {
		t.Errorf("tsvd_sampler_calls_sampled_out_total = %v, stats say %d",
			got["tsvd_sampler_calls_sampled_out_total"], st.CallsSampledOut)
	}
}

// TestSampledOutCallStillSpringsTraps pins the gate's soundness property:
// even at p=0, a call that conflicts with a parked trap is caught
// red-handed, because the gate sits after the trap check.
func TestSampledOutCallStillSpringsTraps(t *testing.T) {
	cfg := modeConfig(config.AlgoTSVD, config.ModeSampled)
	cfg.SampleProbability = 0
	det := mustNew(t, cfg)
	d := det.(*TSVD)

	// Park a trap directly through the runtime, exactly as an admitted
	// call's should_delay would, then hit the object from another thread.
	done := make(chan struct{})
	go func() {
		defer close(done)
		d.rt.injectDelay(acc(1, 1, 101, KindWrite), 500*time.Millisecond)
	}()
	for i := 0; i < 5000 && d.rt.parked.Load() == 0; i++ {
		time.Sleep(100 * time.Microsecond)
	}
	if d.rt.parked.Load() == 0 {
		t.Fatal("trap never parked")
	}

	det.OnCall(acc(2, 1, 102, KindWrite)) // sampled out, but must spring the trap
	<-done

	if len(det.Reports().Bugs()) == 0 {
		t.Fatal("sampled-out call failed to spring a parked trap")
	}
	if st := det.Stats(); st.CallsSampledOut != 1 {
		t.Fatalf("skip accounting after trap spring: %+v", st)
	}
}
