package core

import (
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/ids"
	"repro/internal/report"
	"repro/internal/sampler"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// TSVDHB is the RaceFuzzer-style variant (§3.5): it monitors synchronization
// operations (forks, joins, locks) reported by the task substrate, maintains
// vector clocks, and only adds a pair of conflicting accesses to the trap
// set when the clocks prove the accesses concurrent. Delay injection,
// probability decay and trap-file persistence are shared with TSVD.
//
// It carries the paper's three optimizations for async-heavy programs:
//
//  1. local timestamps increment at TSVD points (rare) rather than at
//     synchronization operations (frequent);
//  2. clocks are immutable AVL tree-maps, so a message-send (fork, lock
//     release) copies a clock by reference in O(1);
//  3. join-message receives use a reference-equality fast path before the
//     O(n) element-wise max.
//
// The immutability of the clocks is also what lets the sharded runtime keep
// them outside any global lock: each thread owns one threadClock slot whose
// own component is a plain atomic counter (optimization 1 taken to its
// conclusion: a TSVD point ticks the counter and allocates nothing at all),
// while the components learned from other threads live in an immutable tree
// swapped only at synchronization operations. Every clock handover is a
// pointer-sized store and every reader works on an immutable snapshot. The
// slot registries are insert-only maps with lock-free integer-keyed lookups.
// The per-object epoch rings live in the runtime's shards, like TSVD's
// near-miss rings.
type TSVDHB struct {
	rt  runtime
	set trapSet

	threadVC atomicMap[threadClock]   // ids.ThreadID → clock slot
	lockVC   atomicMap[vclock.Atomic] // ids.ObjectID → clock slot
}

// threadClock is one thread's vector-clock state, split so the per-TSVD-point
// tick is allocation-free:
//
//   - epoch is the thread's own component, advanced with one atomic add;
//   - rest holds every component learned from other threads (it may also
//     contain a stale copy of the own component from an earlier handover);
//   - memo caches the last materialized full clock so repeated handovers
//     without intervening ticks reuse one tree reference, preserving the
//     O(1) reference-equality fast path on joins.
//
// Ticks and adoptions happen only on the owning thread. Cross-thread readers
// (a join materializing the finished task's clock) see an immutable snapshot
// that is at worst a few events stale — the same tolerance the trap check
// already has for a not-yet-registered trap, and never a source of false
// reports: a missed HB edge only leaves a spurious pair in the trap set.
type threadClock struct {
	epoch atomic.Uint64
	rest  vclock.Atomic
	memo  atomic.Pointer[clockMemo]
	// rng is the thread's private xorshift state for the sampling gate;
	// owner-thread-only like the tick path (docs/SAMPLING.md).
	rng uint64
}

type clockMemo struct {
	epoch uint64
	tree  vclock.Tree
}

// tick advances the own component and returns the new epoch.
func (c *threadClock) tick() uint64 { return c.epoch.Add(1) }

// known returns the components learned from other threads. This is all the
// OnCall epoch test needs (entries from the own thread are skipped), so the
// hot path never materializes a full clock.
func (c *threadClock) known() vclock.Tree { return c.rest.Load() }

// treeFor materializes the full clock of thread `own`: rest overlaid with
// the current epoch. Called at synchronization operations only.
func (c *threadClock) treeFor(own int64) vclock.Tree {
	e := c.epoch.Load()
	t := c.rest.Load()
	if t.Get(own) == e {
		return t
	}
	if m := c.memo.Load(); m != nil && m.epoch == e {
		return m.tree
	}
	full := t.Set(own, e)
	c.memo.Store(&clockMemo{epoch: e, tree: full})
	return full
}

// adopt merges an incoming clock (a fork/join/lock handover) into the
// thread's learned components. Runs on the owning thread.
func (c *threadClock) adopt(own int64, incoming vclock.Tree) {
	cur := c.treeFor(own)
	if vclock.SameRef(cur, incoming) {
		return
	}
	c.memo.Store(nil)
	c.rest.Store(vclock.Join(cur, incoming))
}

type hbEntry struct {
	thread ids.ThreadID
	op     ids.OpID
	kind   Kind
	// epoch is the entry thread's own clock component at the access
	// (post-tick); the access happened-before a later access c on thread
	// u iff u's clock at entry.thread has reached epoch.
	epoch uint64
}

type hbHistory struct {
	entries []hbEntry
	next    int
	full    bool
}

func newHBHistory(capacity int) *hbHistory {
	return &hbHistory{entries: make([]hbEntry, capacity)}
}

func (h *hbHistory) add(e hbEntry) {
	h.entries[h.next] = e
	h.next++
	if h.next == len(h.entries) {
		h.next = 0
		h.full = true
	}
}

// each visits the recorded entries newest first, mirroring objHistory.
func (h *hbHistory) each(fn func(hbEntry)) {
	n := len(h.entries)
	if !h.full {
		n = h.next
	}
	for i := 0; i < n; i++ {
		idx := h.next - 1 - i
		if idx < 0 {
			idx += len(h.entries)
		}
		fn(h.entries[idx])
	}
}

func newTSVDHB(cfg config.Config, o options) *TSVDHB {
	d := &TSVDHB{set: newTrapSet()}
	d.rt.init(cfg, o)
	for _, key := range o.initialTraps {
		if d.set.add(key, &d.rt.stats, d.rt.met) {
			d.rt.tr.Emit(trace.KindPairAdded, 0, 0, key.A, key.B, 0, 0)
		}
	}
	return d
}

// threadSlot returns t's clock slot, creating it on first use.
func (d *TSVDHB) threadSlot(t ids.ThreadID) *threadClock {
	slot, _ := d.threadVC.getOrCreate(int64(t), func() *threadClock {
		return &threadClock{rng: sampler.SeedRand(d.rt.cfg.Seed, int64(t))}
	})
	return slot
}

// threadTree returns t's current full clock (the zero clock if t has none
// yet).
func (d *TSVDHB) threadTree(t ids.ThreadID) vclock.Tree {
	if slot := d.threadVC.get(int64(t)); slot != nil {
		return slot.treeFor(int64(t))
	}
	return vclock.Tree{}
}

// lockTree returns the lock's current clock.
func (d *TSVDHB) lockTree(lock ids.ObjectID) vclock.Tree {
	if slot := d.lockVC.get(int64(lock)); slot != nil {
		return slot.Load()
	}
	return vclock.Tree{}
}

// OnFork implements Detector: the child inherits the parent's clock by
// reference (O(1) message-send with immutable clocks). The child has not run
// yet, so no one races the writes.
func (d *TSVDHB) OnFork(parent, child ids.ThreadID) {
	p := d.threadTree(parent)
	slot := d.threadSlot(child)
	slot.memo.Store(nil)
	slot.rest.Store(p)
	slot.epoch.Store(p.Get(int64(child)))
}

// OnJoin implements Detector: the waiter receives the finished task's clock.
// When the task passed through no TSVD point since fork, both clocks are the
// identical tree and the max is skipped entirely (inside adopt).
func (d *TSVDHB) OnJoin(waiter, done ids.ThreadID) {
	d.threadSlot(waiter).adopt(int64(waiter), d.threadTree(done))
}

// OnLockAcquire implements Detector: the thread receives the lock's clock.
func (d *TSVDHB) OnLockAcquire(t ids.ThreadID, lock ids.ObjectID) {
	d.threadSlot(t).adopt(int64(t), d.lockTree(lock))
}

// OnLockRelease implements Detector: the lock stores the thread's clock by
// reference.
func (d *TSVDHB) OnLockRelease(t ids.ThreadID, lock ids.ObjectID) {
	slot, _ := d.lockVC.getOrCreate(int64(lock), func() *vclock.Atomic { return &vclock.Atomic{} })
	slot.Store(d.threadTree(t))
}

// OnCall implements Detector.
func (d *TSVDHB) OnCall(a Access) {
	sh := d.rt.shardFor(a.Obj)
	var t0 time.Duration
	if d.rt.samp != nil {
		t0 = d.rt.now()
	}

	if d.rt.parked.Load() > 0 {
		sh.mu.Lock()
		found := d.rt.checkForTraps(sh, a, ids.Stack)
		sh.mu.Unlock()
		for _, key := range found {
			d.set.suppress(key)
		}
	}

	slot := d.threadSlot(a.Thread)

	// Sampling gate (ModeSampled, docs/SAMPLING.md) — after the trap check,
	// so red-handed catching is never sampled out. Skipping the epoch tick
	// for a sampled-out call is sound: history entries are only recorded for
	// admitted calls, so HB comparisons stay conservative.
	if d.rt.samp != nil && !d.rt.samp.Admit(int64(a.Op), sampler.Rand(&slot.rng)) {
		sh.onCalls.Add(1)
		sh.sampledOut.Add(1)
		// Liveness: while capped, only the skip path runs — it must offer
		// the controller its tick (see the TSVD gate for the full note).
		if d.rt.samp.Capped() {
			d.rt.sampleTick(d.rt.now())
		}
		return
	}

	// Local timestamp increments happen here, at the (relatively rare)
	// TSVD points — not at synchronization operations. The tick is one
	// atomic add on the thread's own epoch counter; no clock tree is
	// built, so the hot path performs no allocation.
	epoch := slot.tick()
	known := slot.known()
	d.rt.markSeen(a.Op, true)

	// Precise concurrency check against the object's recent accesses,
	// under the object's shard mutex.
	var nearKeys []report.PairKey
	sh.mu.Lock()
	sh.onCalls.Add(1) // counted here, on a cache line this path already owns
	h := sh.hb[a.Obj]
	if h == nil {
		if sh.hb == nil {
			sh.hb = map[ids.ObjectID]*hbHistory{}
		}
		h = newHBHistory(d.rt.cfg.ObjHistory)
		sh.hb[a.Obj] = h
	}
	h.each(func(e hbEntry) {
		if e.thread == a.Thread || !Conflicts(e.kind, a.Kind) {
			return
		}
		// The entry's thread differs from ours, so its component in our
		// clock lives entirely in the learned tree — no need to
		// materialize the full clock.
		if known.Get(int64(e.thread)) >= e.epoch {
			// The previous access happens-before this one: not a
			// dangerous pair. The clock read for the event is taken only
			// when tracing is on and a prune actually fires — the
			// conflict-free fast path never reads the clock at all.
			d.rt.stats.pairsPrunedHB.Add(1)
			if d.rt.tr != nil {
				key := report.KeyOf(e.op, a.Op)
				d.rt.tr.Emit(trace.KindPairPrunedHB, a.Thread, a.Obj, key.A, key.B, d.rt.now(), 0)
			}
			return
		}
		d.rt.stats.nearMisses.Add(1)
		d.rt.met.observeGap(0) // no gap notion: clocks, not time windows
		if d.rt.tr != nil {
			// TSVDHB has no gap notion (concurrency is proven by clocks,
			// not time windows); the near-miss event carries Dur 0.
			d.rt.tr.Emit(trace.KindNearMiss, a.Thread, a.Obj, e.op, a.Op, d.rt.now(), 0)
		}
		nearKeys = append(nearKeys, report.KeyOf(e.op, a.Op))
	})
	h.add(hbEntry{thread: a.Thread, op: a.Op, kind: a.Kind, epoch: epoch})
	sh.mu.Unlock()
	for _, key := range nearKeys {
		if d.set.add(key, &d.rt.stats, d.rt.met) && d.rt.tr != nil {
			d.rt.tr.Emit(trace.KindPairAdded, a.Thread, a.Obj, key.A, key.B, d.rt.now(), 0)
		}
	}

	// Charge this admitted call's analysis time to the overhead controller
	// (sleep time is charged separately inside injectDelay).
	if d.rt.samp != nil {
		now := d.rt.now()
		d.rt.samp.ObserveCost(now - t0)
		d.rt.sampleTick(now)
	}

	// Injection and decay are identical to TSVD (§3.5 "When to inject").
	if d.set.empty() {
		return
	}
	prob, ok := d.set.eligible(a.Op)
	if !ok || d.rt.randFloat() >= prob {
		return
	}
	if d.rt.cfg.AvoidOverlappingDelays && d.rt.anyTrapSet() {
		return
	}
	if d.rt.tr != nil {
		d.rt.tr.Emit(trace.KindDelayPlanned, a.Thread, a.Obj, a.Op, 0, d.rt.now(), d.rt.delayTime)
	}
	trap, _ := d.rt.injectDelay(a, d.rt.delayTime) // sleeps unlocked
	if trap != nil && !trap.conflict {
		d.set.decayAfterFailedDelay(a.Op, d.rt.cfg.DecayFactor,
			d.rt.cfg.PruneProbability, &d.rt.stats, d.rt.tr, d.rt.now())
	}
}

// Reports implements Detector.
func (d *TSVDHB) Reports() *report.Collector { return d.rt.reports }

// Stats implements Detector.
func (d *TSVDHB) Stats() Stats { return d.rt.snapshotStats() }

// Tracer implements Detector.
func (d *TSVDHB) Tracer() *trace.Tracer { return d.rt.tr }

// ExportTraps implements Detector.
func (d *TSVDHB) ExportTraps() []report.PairKey { return d.set.export() }

// TrapSetSize reports the number of live dangerous pairs.
func (d *TSVDHB) TrapSetSize() int { return d.set.size() }

// sameClockRef is a test hook exposing vclock.SameRef over thread clocks.
func sameClockRef(a, b vclock.Tree) bool { return vclock.SameRef(a, b) }
