package core

import (
	"repro/internal/config"
	"repro/internal/ids"
	"repro/internal/report"
	"repro/internal/vclock"
)

// TSVDHB is the RaceFuzzer-style variant (§3.5): it monitors synchronization
// operations (forks, joins, locks) reported by the task substrate, maintains
// vector clocks, and only adds a pair of conflicting accesses to the trap
// set when the clocks prove the accesses concurrent. Delay injection,
// probability decay and trap-file persistence are shared with TSVD.
//
// It carries the paper's three optimizations for async-heavy programs:
//
//  1. local timestamps increment at TSVD points (rare) rather than at
//     synchronization operations (frequent);
//  2. clocks are immutable AVL tree-maps, so a message-send (fork, lock
//     release) copies a clock by reference in O(1);
//  3. join-message receives use a reference-equality fast path before the
//     O(n) element-wise max.
type TSVDHB struct {
	rt  runtime
	set trapSet

	threadVC map[ids.ThreadID]vclock.Tree
	lockVC   map[ids.ObjectID]vclock.Tree
	objHist  map[ids.ObjectID]*hbHistory
}

type hbEntry struct {
	thread ids.ThreadID
	op     ids.OpID
	kind   Kind
	// epoch is the entry thread's own clock component at the access
	// (post-tick); the access happened-before a later access c on thread
	// u iff u's clock at entry.thread has reached epoch.
	epoch uint64
}

type hbHistory struct {
	entries []hbEntry
	next    int
	full    bool
}

func newHBHistory(capacity int) *hbHistory {
	return &hbHistory{entries: make([]hbEntry, capacity)}
}

func (h *hbHistory) add(e hbEntry) {
	h.entries[h.next] = e
	h.next++
	if h.next == len(h.entries) {
		h.next = 0
		h.full = true
	}
}

func (h *hbHistory) each(fn func(hbEntry)) {
	n := len(h.entries)
	if !h.full {
		n = h.next
	}
	for i := 0; i < n; i++ {
		fn(h.entries[i])
	}
}

func newTSVDHB(cfg config.Config, o options) *TSVDHB {
	d := &TSVDHB{
		rt:       newRuntime(cfg, o),
		set:      newTrapSet(),
		threadVC: map[ids.ThreadID]vclock.Tree{},
		lockVC:   map[ids.ObjectID]vclock.Tree{},
		objHist:  map[ids.ObjectID]*hbHistory{},
	}
	for _, key := range o.initialTraps {
		d.set.add(key, &d.rt.stats)
	}
	return d
}

// OnFork implements Detector: the child inherits the parent's clock by
// reference (O(1) message-send with immutable clocks).
func (d *TSVDHB) OnFork(parent, child ids.ThreadID) {
	d.rt.mu.Lock()
	d.threadVC[child] = d.threadVC[parent]
	d.rt.mu.Unlock()
}

// OnJoin implements Detector: the waiter receives the finished task's clock.
// When the task passed through no TSVD point since fork, both clocks are the
// identical tree and the max is skipped entirely.
func (d *TSVDHB) OnJoin(waiter, done ids.ThreadID) {
	d.rt.mu.Lock()
	w, dn := d.threadVC[waiter], d.threadVC[done]
	if !vclock.SameRef(w, dn) {
		d.threadVC[waiter] = vclock.Join(w, dn)
	}
	d.rt.mu.Unlock()
}

// OnLockAcquire implements Detector: the thread receives the lock's clock.
func (d *TSVDHB) OnLockAcquire(t ids.ThreadID, lock ids.ObjectID) {
	d.rt.mu.Lock()
	tv, lv := d.threadVC[t], d.lockVC[lock]
	if !vclock.SameRef(tv, lv) {
		d.threadVC[t] = vclock.Join(tv, lv)
	}
	d.rt.mu.Unlock()
}

// OnLockRelease implements Detector: the lock stores the thread's clock by
// reference.
func (d *TSVDHB) OnLockRelease(t ids.ThreadID, lock ids.ObjectID) {
	d.rt.mu.Lock()
	d.lockVC[lock] = d.threadVC[t]
	d.rt.mu.Unlock()
}

// OnCall implements Detector.
func (d *TSVDHB) OnCall(a Access) {
	d.rt.mu.Lock()
	d.rt.stats.OnCalls++

	for _, key := range d.rt.checkForTraps(a, ids.Stack) {
		d.set.suppress(key)
	}

	// Local timestamp increments happen here, at the (relatively rare)
	// TSVD points — not at synchronization operations.
	vc := d.threadVC[a.Thread].Tick(int64(a.Thread))
	d.threadVC[a.Thread] = vc
	d.rt.markSeen(a.Op, true)

	// Precise concurrency check against the object's recent accesses.
	h := d.objHist[a.Obj]
	if h == nil {
		h = newHBHistory(d.rt.cfg.ObjHistory)
		d.objHist[a.Obj] = h
	}
	h.each(func(e hbEntry) {
		if e.thread == a.Thread || !Conflicts(e.kind, a.Kind) {
			return
		}
		if vc.Get(int64(e.thread)) >= e.epoch {
			// The previous access happens-before this one: not a
			// dangerous pair.
			d.rt.stats.PairsPrunedHB++
			return
		}
		d.rt.stats.NearMisses++
		d.set.add(report.KeyOf(e.op, a.Op), &d.rt.stats)
	})
	h.add(hbEntry{
		thread: a.Thread, op: a.Op, kind: a.Kind,
		epoch: vc.Get(int64(a.Thread)),
	})

	// Injection and decay are identical to TSVD (§3.5 "When to inject").
	inject := false
	if d.set.hasLoc(a.Op) && d.rt.rng.Float64() < d.set.prob(a.Op) {
		inject = !(d.rt.cfg.AvoidOverlappingDelays && d.rt.anyTrapSet())
	}
	if inject {
		trap, _ := d.rt.injectDelay(a, d.rt.delayTime) // sleeps unlocked
		if trap != nil && !trap.conflict {
			d.set.decayAfterFailedDelay(a.Op, d.rt.cfg.DecayFactor,
				d.rt.cfg.PruneProbability, &d.rt.stats)
		}
	}
	d.rt.mu.Unlock()
}

// Reports implements Detector.
func (d *TSVDHB) Reports() *report.Collector { return d.rt.reports }

// Stats implements Detector.
func (d *TSVDHB) Stats() Stats { return d.rt.snapshotStats() }

// ExportTraps implements Detector.
func (d *TSVDHB) ExportTraps() []report.PairKey {
	d.rt.mu.Lock()
	defer d.rt.mu.Unlock()
	return d.set.export()
}

// TrapSetSize reports the number of live dangerous pairs.
func (d *TSVDHB) TrapSetSize() int {
	d.rt.mu.Lock()
	defer d.rt.mu.Unlock()
	return d.set.size()
}

// sameClockRef is a test hook exposing vclock.SameRef over thread clocks.
func sameClockRef(a, b vclock.Tree) bool { return vclock.SameRef(a, b) }
