package core

import (
	"time"

	"repro/internal/config"
	"repro/internal/ids"
	"repro/internal/intmap"
	"repro/internal/report"
	"repro/internal/sampler"
	"repro/internal/sites"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// TSVDHB is the RaceFuzzer-style variant (§3.5): it monitors synchronization
// operations (forks, joins, locks) reported by the task substrate, maintains
// vector clocks, and only adds a pair of conflicting accesses to the trap
// set when the clocks prove the accesses concurrent. Delay injection,
// probability decay and trap-file persistence are shared with TSVD.
//
// It carries the paper's three optimizations for async-heavy programs:
//
//  1. local timestamps increment at TSVD points (rare) rather than at
//     synchronization operations (frequent);
//  2. clocks are immutable AVL tree-maps, so a message-send (fork, lock
//     release) copies a clock by reference in O(1);
//  3. join-message receives use a reference-equality fast path before the
//     O(n) element-wise max.
//
// The immutability of the clocks is also what lets the runtime keep them
// outside any global lock: each thread's clock lives in its shared
// threadState slot (traps.go) whose own component is a plain atomic counter
// (optimization 1 taken to its conclusion: a TSVD point ticks the counter
// and allocates nothing at all), while the components learned from other
// threads live in an immutable tree swapped only at synchronization
// operations. Every clock handover is a pointer-sized store and every reader
// works on an immutable snapshot. The per-object epoch rings hang off the
// runtime's object registry, like TSVD's near-miss rings.
type TSVDHB struct {
	rt  runtime
	set trapSet

	lockVC intmap.Map[vclock.Atomic] // ids.ObjectID → clock slot
}

type hbEntry struct {
	thread ids.ThreadID
	op     ids.OpID
	kind   Kind
	// epoch is the entry thread's own clock component at the access
	// (post-tick); the access happened-before a later access c on thread
	// u iff u's clock at entry.thread has reached epoch.
	epoch uint64
}

type hbHistory struct {
	entries []hbEntry
	next    int
	full    bool
}

func newHBHistory(capacity int) *hbHistory {
	return &hbHistory{entries: make([]hbEntry, capacity)}
}

func (h *hbHistory) add(e hbEntry) {
	h.entries[h.next] = e
	h.next++
	if h.next == len(h.entries) {
		h.next = 0
		h.full = true
	}
}

// each visits the recorded entries newest first, mirroring objHistory.
// (OnCall inlines this walk; each remains for tests and cold callers.)
func (h *hbHistory) each(fn func(hbEntry)) {
	n := len(h.entries)
	if !h.full {
		n = h.next
	}
	for i := 0; i < n; i++ {
		idx := h.next - 1 - i
		if idx < 0 {
			idx += len(h.entries)
		}
		fn(h.entries[idx])
	}
}

func newTSVDHB(cfg config.Config, o options) *TSVDHB {
	d := &TSVDHB{set: newTrapSet()}
	d.rt.init(cfg, o)
	for _, key := range o.initialTraps {
		if d.set.add(key, &d.rt.stats, d.rt.met) {
			d.rt.tr.Emit(trace.KindPairAdded, 0, 0, key.A, key.B, 0, 0)
		}
	}
	return d
}

// threadTree returns t's current full clock (the zero clock if t has none
// yet).
func (d *TSVDHB) threadTree(t ids.ThreadID) vclock.Tree {
	if st := d.rt.threads.Get(int64(t)); st != nil {
		return st.treeFor(int64(t))
	}
	return vclock.Tree{}
}

// lockTree returns the lock's current clock.
func (d *TSVDHB) lockTree(lock ids.ObjectID) vclock.Tree {
	if slot := d.lockVC.Get(int64(lock)); slot != nil {
		return slot.Load()
	}
	return vclock.Tree{}
}

// OnFork implements Detector: the child inherits the parent's clock by
// reference (O(1) message-send with immutable clocks). The child has not run
// yet, so no one races the writes.
func (d *TSVDHB) OnFork(parent, child ids.ThreadID) {
	p := d.threadTree(parent)
	st := d.rt.threadStateFor(child)
	st.memo.Store(nil)
	st.rest.Store(p)
	st.epoch.Store(p.Get(int64(child)))
}

// OnJoin implements Detector: the waiter receives the finished task's clock.
// When the task passed through no TSVD point since fork, both clocks are the
// identical tree and the max is skipped entirely (inside adopt).
func (d *TSVDHB) OnJoin(waiter, done ids.ThreadID) {
	d.rt.threadStateFor(waiter).adopt(int64(waiter), d.threadTree(done))
}

// OnLockAcquire implements Detector: the thread receives the lock's clock.
func (d *TSVDHB) OnLockAcquire(t ids.ThreadID, lock ids.ObjectID) {
	d.rt.threadStateFor(t).adopt(int64(t), d.lockTree(lock))
}

// OnLockRelease implements Detector: the lock stores the thread's clock by
// reference.
func (d *TSVDHB) OnLockRelease(t ids.ThreadID, lock ids.ObjectID) {
	slot, _ := d.lockVC.GetOrCreate(int64(lock), func() *vclock.Atomic { return &vclock.Atomic{} })
	slot.Store(d.threadTree(t))
}

// OnCall implements Detector.
func (d *TSVDHB) OnCall(a Access) {
	rt := &d.rt
	st, fastOK := rt.threads.GetFast(int64(a.Thread))
	if !fastOK {
		st = rt.threadStateFor(a.Thread)
	}
	rt.resolveSite(&a)
	os := rt.objStateFor(st, a.Obj)
	var t0 time.Duration
	if rt.samp != nil {
		t0 = rt.now()
	}

	if rt.parked.Load() > 0 {
		os.mu.Lock()
		found := rt.checkForTraps(os, a, ids.Stack)
		os.mu.Unlock()
		for _, key := range found {
			d.set.suppress(key)
		}
	}

	// Sampling gate (ModeSampled, docs/SAMPLING.md) — after the trap check,
	// so red-handed catching is never sampled out. Skipping the epoch tick
	// for a sampled-out call is sound: history entries are only recorded for
	// admitted calls, so HB comparisons stay conservative.
	if rt.samp != nil && !rt.samp.Admit(a.Site, sampler.Rand(&st.rng)) {
		st.onCalls.Add(1)
		st.sampledOut.Add(1)
		// Liveness: while capped, only the skip path runs — it must offer
		// the controller its tick (see the TSVD gate for the full note).
		if rt.samp.Capped() {
			rt.sampleTick(rt.now())
		}
		return
	}
	st.onCalls.Add(1)

	// Local timestamp increments happen here, at the (relatively rare)
	// TSVD points — not at synchronization operations. The tick is one
	// atomic add on the thread's own epoch counter; no clock tree is
	// built, so the hot path performs no allocation.
	epoch := st.tick()
	known := st.known()
	rt.markSeen(a.Site, a.Op, true)

	// Precise concurrency check against the object's recent accesses,
	// under the object's own lock; skipped while the object is
	// single-writer (every entry would fail the different-thread test).
	var nearKeys []report.PairKey
	os.mu.Lock()
	h := os.hb
	if h == nil {
		h = newHBHistory(rt.cfg.ObjHistory)
		os.hb = h
	}
	scan := os.noteWriterLocked(a.Thread)
	if scan {
		n := len(h.entries)
		if !h.full {
			n = h.next
		}
		for i := 0; i < n; i++ {
			idx := h.next - 1 - i
			if idx < 0 {
				idx += len(h.entries)
			}
			e := &h.entries[idx]
			if e.thread == a.Thread || !Conflicts(e.kind, a.Kind) {
				continue
			}
			// The entry's thread differs from ours, so its component in our
			// clock lives entirely in the learned tree — no need to
			// materialize the full clock.
			if known.Get(int64(e.thread)) >= e.epoch {
				// The previous access happens-before this one: not a
				// dangerous pair. The clock read for the event is taken only
				// when tracing is on and a prune actually fires — the
				// conflict-free fast path never reads the clock at all.
				rt.stats.pairsPrunedHB.Add(1)
				if rt.tr != nil {
					key := report.KeyOf(e.op, a.Op)
					rt.tr.Emit(trace.KindPairPrunedHB, a.Thread, a.Obj, key.A, key.B, rt.now(), 0)
				}
				continue
			}
			rt.stats.nearMisses.Add(1)
			rt.met.observeGap(0) // no gap notion: clocks, not time windows
			if rt.tr != nil {
				// TSVDHB has no gap notion (concurrency is proven by clocks,
				// not time windows); the near-miss event carries Dur 0.
				rt.tr.Emit(trace.KindNearMiss, a.Thread, a.Obj, e.op, a.Op, rt.now(), 0)
			}
			nearKeys = append(nearKeys, report.KeyOf(e.op, a.Op))
		}
	}
	h.add(hbEntry{thread: a.Thread, op: a.Op, kind: a.Kind, epoch: epoch})
	os.mu.Unlock()
	for _, key := range nearKeys {
		if d.set.add(key, &rt.stats, rt.met) && rt.tr != nil {
			rt.tr.Emit(trace.KindPairAdded, a.Thread, a.Obj, key.A, key.B, rt.now(), 0)
		}
	}

	// Charge this admitted call's analysis time to the overhead controller
	// (sleep time is charged separately inside injectDelay).
	if rt.samp != nil {
		now := rt.now()
		rt.samp.ObserveCost(now - t0)
		rt.sampleTick(now)
	}

	// Injection and decay are identical to TSVD (§3.5 "When to inject").
	if d.set.empty() {
		return
	}
	prob, ok := d.set.eligible(a.Op)
	if !ok || rt.randFloat() >= prob {
		return
	}
	if rt.cfg.AvoidOverlappingDelays && rt.anyTrapSet() {
		return
	}
	if rt.tr != nil {
		rt.tr.Emit(trace.KindDelayPlanned, a.Thread, a.Obj, a.Op, 0, rt.now(), rt.delayTime)
	}
	trap, _ := rt.injectDelay(a, rt.delayTime) // sleeps unlocked
	if trap != nil && !trap.conflict {
		d.set.decayAfterFailedDelay(a.Op, rt.cfg.DecayFactor,
			rt.cfg.PruneProbability, &rt.stats, rt.tr, rt.now())
	}
}

// Sites implements Detector.
func (d *TSVDHB) Sites() *sites.Registry { return d.rt.sites }

// Reports implements Detector.
func (d *TSVDHB) Reports() *report.Collector { return d.rt.reports }

// Stats implements Detector.
func (d *TSVDHB) Stats() Stats { return d.rt.snapshotStats() }

// Tracer implements Detector.
func (d *TSVDHB) Tracer() *trace.Tracer { return d.rt.tr }

// ExportTraps implements Detector.
func (d *TSVDHB) ExportTraps() []report.PairKey { return d.set.export() }

// TrapSetSize reports the number of live dangerous pairs.
func (d *TSVDHB) TrapSetSize() int { return d.set.size() }

// sameClockRef is a test hook exposing vclock.SameRef over thread clocks.
func sameClockRef(a, b vclock.Tree) bool { return vclock.SameRef(a, b) }
