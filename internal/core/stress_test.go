package core

import (
	"fmt"
	goruntime "runtime"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/ids"
)

// TestObjHistoryNewestFirst pins the iteration order of the per-object ring:
// each must visit entries newest first, both before the ring wraps and after.
// The near-miss scan depends on this so the most recent conflicting access —
// the smallest gap, the likeliest real interleaving — is seen first.
func TestObjHistoryNewestFirst(t *testing.T) {
	const capacity = 3
	h := newObjHistory(capacity)

	collect := func() []ids.OpID {
		var got []ids.OpID
		h.each(func(e histEntry) { got = append(got, e.op) })
		return got
	}
	assertOrder := func(want ...ids.OpID) {
		t.Helper()
		got := collect()
		if len(got) != len(want) {
			t.Fatalf("each visited %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("each visited %v, want %v (newest first)", got, want)
			}
		}
	}

	assertOrder() // empty ring: no visits
	h.add(histEntry{op: 1})
	assertOrder(1)
	h.add(histEntry{op: 2})
	assertOrder(2, 1)
	h.add(histEntry{op: 3})
	assertOrder(3, 2, 1) // full, not yet wrapped
	h.add(histEntry{op: 4})
	assertOrder(4, 3, 2) // wrapped: oldest (1) evicted
	h.add(histEntry{op: 5})
	h.add(histEntry{op: 6})
	h.add(histEntry{op: 7})
	assertOrder(7, 6, 5) // wrapped more than once
}

// TestHBHistoryNewestFirst: the TSVDHB ring must mirror objHistory's order.
func TestHBHistoryNewestFirst(t *testing.T) {
	h := newHBHistory(2)
	h.add(hbEntry{op: 1})
	h.add(hbEntry{op: 2})
	h.add(hbEntry{op: 3})
	var got []ids.OpID
	h.each(func(e hbEntry) { got = append(got, e.op) })
	if len(got) != 2 || got[0] != 3 || got[1] != 2 {
		t.Fatalf("each visited %v, want [3 2] (newest first)", got)
	}
}

// TestDenseRuntimeStress hammers one detector from GOMAXPROCS-scaled
// goroutine counts on a conflict-free workload (each worker owns disjoint
// objects and locations). It must produce zero reports, and the counters
// that have exact expected values — OnCalls, LocationsSeen, Violations —
// must come out exact despite every worker updating them concurrently
// through the per-thread counter tallies, the dense coverage table and the
// site registry's growth path. Run under -race this is the synchronization
// audit of the per-object runtime.
//
// The "presites" variants pre-register every site through the registry (the
// instrumented-prologue shape, exercising concurrent registration and dense
// growth); the others leave Site zero and take the op-keyed fallback.
func TestDenseRuntimeStress(t *testing.T) {
	workers := 2 * goruntime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const (
		callsPerWorker = 2000
		objsPerWorker  = 16
		opsPerWorker   = 8
	)

	algos := []config.Algorithm{
		config.AlgoTSVD, config.AlgoTSVDHB,
		config.AlgoDynamicRandom, config.AlgoStaticRandom,
	}
	for _, presites := range []bool{false, true} {
		for _, algo := range algos {
			t.Run(fmt.Sprintf("%v/presites=%v", algo, presites), func(t *testing.T) {
				cfg := config.Defaults(algo).Scaled(0.001) // 100µs delays
				d := mustNew(t, cfg)

				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						thread := ids.ThreadID(100 + w)
						for i := 0; i < callsPerWorker; i++ {
							a := Access{
								Thread: thread,
								Obj:    ids.ObjectID(1000 + w*objsPerWorker + i%objsPerWorker),
								Op:     ids.OpID(5000 + w*opsPerWorker + i%opsPerWorker),
								Kind:   KindWrite,
							}
							if presites {
								// Interning every call (not caching the id)
								// deliberately stresses the registry's
								// concurrent fast path and growth.
								a.Site = d.Sites().Register(a.Op, "Test", "Op", true)
							}
							d.OnCall(a)
						}
					}(w)
				}
				wg.Wait()

				if n := d.Reports().UniqueBugs(); n != 0 {
					t.Fatalf("conflict-free workload produced %d reports", n)
				}
				st := d.Stats()
				if want := int64(workers * callsPerWorker); st.OnCalls != want {
					t.Fatalf("OnCalls = %d, want %d (lost updates)", st.OnCalls, want)
				}
				if want := int64(workers * opsPerWorker); st.LocationsSeen != want {
					t.Fatalf("LocationsSeen = %d, want %d", st.LocationsSeen, want)
				}
				if st.Violations != 0 {
					t.Fatalf("Violations = %d on a conflict-free workload", st.Violations)
				}
				if want := workers * opsPerWorker; d.Sites().Len() != want {
					t.Fatalf("Sites().Len() = %d, want %d", d.Sites().Len(), want)
				}
			})
		}
	}
}

// TestDenseRuntimeStressWithConflicts drives real cross-thread conflicts at
// full parallelism: every worker writes the same small object set, so the
// single-writer scan skip, the mixed transition, the object spin locks and
// trap registration all see heavy cross-thread traffic. The point is not
// detection counts (timing-dependent) but that the detector stays
// data-race-free (-race) and every reported violation is a genuine
// same-object write-write pair with its site metadata resolved.
func TestDenseRuntimeStressWithConflicts(t *testing.T) {
	workers := 2 * goruntime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const callsPerWorker = 500

	cfg := config.Defaults(config.AlgoTSVD).Scaled(0.001)
	d := mustNew(t, cfg)
	site := d.Sites().Register(9000, "Test", "Op", true)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			thread := ids.ThreadID(200 + w)
			for i := 0; i < callsPerWorker; i++ {
				// Four shared objects, distinct op per worker parity; even
				// workers carry the interned site, odd ones resolve by op.
				a := Access{
					Thread: thread,
					Obj:    ids.ObjectID(1 + i%4),
					Op:     ids.OpID(9000 + w%2),
					Kind:   KindWrite,
				}
				if w%2 == 0 {
					a.Site = site
				}
				d.OnCall(a)
			}
		}(w)
	}
	wg.Wait()

	st := d.Stats()
	if want := int64(workers * callsPerWorker); st.OnCalls != want {
		t.Fatalf("OnCalls = %d, want %d", st.OnCalls, want)
	}
	for _, v := range d.Reports().Violations() {
		if v.Trapped.Thread == v.Conflicting.Thread {
			t.Fatalf("report pairs accesses from one thread: %+v", v)
		}
		if !v.Trapped.Write && !v.Conflicting.Write {
			t.Fatalf("report with no write side: %+v", v)
		}
		if v.Trapped.Op == 9000 && v.Trapped.Site == site && v.Trapped.Class != "Test" {
			t.Fatalf("interned side lost its class metadata: %+v", v)
		}
	}
}
