// Package core implements the TSVD detection algorithm (SOSP '19 §3) and the
// alternative designs it is evaluated against: the happens-before variant
// TSVDHB (§3.5), DynamicRandom (§3.2) and StaticRandom/DataCollider (§3.3).
//
// All variants share the trap framework of Figure 5: instrumented code calls
// OnCall immediately before every thread-unsafe API call; OnCall may park the
// calling thread ("set a trap") for a delay, and every other thread entering
// OnCall checks whether it conflicts with a currently set trap. A conflict —
// different threads, same object, at least one write — is a thread-safety
// violation caught red-handed, so reports have no false positives by
// construction.
//
// In the pipeline, core sits between the instrumented surface and the
// reporting layer: internal/collections (and anything rewritten by
// internal/instrument) funnels every thread-unsafe call into a Detector
// built by New from an internal/config.Config, identified by
// internal/ids tokens, timed by an internal/clock.Clock, and emitting
// internal/report violations.
//
// OnCall is the hot path and is deliberately near-contention-free: accesses
// carry dense interned site ids (internal/sites) so per-site state lives in
// plain arrays, per-object and per-thread state hang off lock-free
// integer-keyed registries, counters are per-thread or atomic, and only
// small cold-path locks (trap set, finished-delay log) are shared.
// docs/PERFORMANCE.md documents the cost model layer by layer.
package core

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/config"
	"repro/internal/ids"
	"repro/internal/report"
	"repro/internal/sites"
	"repro/internal/trace"
)

// Kind classifies a thread-unsafe API as read or write, per the API list the
// instrumenter ships with (§4).
type Kind uint8

const (
	// KindRead may run concurrently with other reads.
	KindRead Kind = iota
	// KindWrite requires exclusive access.
	KindWrite
)

// Conflicts reports whether two access kinds violate the thread-safety
// contract when concurrent: at least one of them must be a write.
func Conflicts(a, b Kind) bool { return a == KindWrite || b == KindWrite }

// Access describes one instrumented thread-unsafe call: the (thread_id,
// obj_id, op_id) triple of §3.1 plus the interned site handle. It carries no
// strings — API metadata (class, method) lives in the detector's site
// registry, interned once at registration time, and is resolved back only
// when a report is built. Site may be zero for accesses fabricated without a
// registry (tests, legacy callers); the detector then falls back to the
// registry's op-keyed resolution. Migrating string-keyed callers go through
// AccessLegacy / OnCallLegacy instead.
type Access struct {
	Thread ids.ThreadID
	Obj    ids.ObjectID
	Op     ids.OpID
	// Site is the dense handle of the interned (location, class, method,
	// kind) tuple, from the detector's sites.Registry.
	Site ids.SiteID
	Kind Kind
}

// AccessLegacy is the pre-site-registry access shape: API metadata carried
// as strings on every call. It exists so string-keyed instrumentation can
// migrate mechanically — build the same struct, call OnCallLegacy — while
// the hot path underneath runs on interned site ids.
//
// Deprecated: intern a site once via Detector.Sites().ForCall (or
// tsvd.RegisterSite) and pass Access with the SiteID instead; the string
// path pays an intern probe with two string compares on every call.
type AccessLegacy struct {
	Thread ids.ThreadID
	Obj    ids.ObjectID
	Op     ids.OpID
	Kind   Kind
	// Class and Method name the API, e.g. "Dictionary", "Add".
	Class  string
	Method string
}

// OnCallLegacy is the compatibility shim for string-keyed instrumentation:
// it interns the (op, class, method, kind) tuple in d's site registry — one
// lock-free probe plus two string compares after the first call per site —
// and forwards the interned Access to d.OnCall. Detection behavior is
// identical to the SiteID path; only the per-call intern probe differs.
func OnCallLegacy(d Detector, a AccessLegacy) {
	d.OnCall(Access{
		Thread: a.Thread,
		Obj:    a.Obj,
		Op:     a.Op,
		Site:   d.Sites().ForCall(a.Op, a.Class, a.Method, a.Kind == KindWrite),
		Kind:   a.Kind,
	})
}

// Detector is the runtime interface instrumented programs call into.
//
// OnCall is the hot path, invoked before every thread-unsafe operation.
// The On{Fork,Join,Lock*} synchronization hooks exist only for the TSVDHB
// variant; TSVD deliberately ignores them — not needing synchronization
// monitoring is its core design point — and the default implementations are
// no-ops.
type Detector interface {
	// OnCall is invoked right before a thread-unsafe API call executes.
	// It may block the calling goroutine for an injected delay.
	OnCall(a Access)

	// OnFork records that parent spawned child.
	OnFork(parent, child ids.ThreadID)
	// OnJoin records that waiter observed done's completion.
	OnJoin(waiter, done ids.ThreadID)
	// OnLockAcquire records that t acquired lock.
	OnLockAcquire(t ids.ThreadID, lock ids.ObjectID)
	// OnLockRelease records that t released lock.
	OnLockRelease(t ids.ThreadID, lock ids.ObjectID)

	// Sites returns the detector's site registry — the intern table Access
	// site ids resolve through. Instrumentation prologues use it to intern
	// sites; report/trace serialization uses it to resolve metadata.
	Sites() *sites.Registry

	// Reports returns the violations collected so far.
	Reports() *report.Collector
	// Stats returns a snapshot of the detector's counters.
	Stats() Stats
	// ExportTraps returns the current dangerous-pair set for trap-file
	// persistence (§3.4.6); variants without a trap set return nil.
	ExportTraps() []report.PairKey
	// Tracer returns the detector's event tracer, or nil when tracing is
	// disabled (config.Trace). The harness drains it after each module run;
	// see docs/OBSERVABILITY.md.
	Tracer() *trace.Tracer
}

// Stats are the counters the evaluation section reports: delay counts for
// Table 2, trap-set churn for understanding pruning, and coverage counters
// (§5.2 "Actionable Reports" mentions instrumentation-point coverage).
type Stats struct {
	// OnCalls counts instrumented calls observed.
	OnCalls int64
	// DelaysInjected counts injected delays (Table 2 "# delay").
	DelaysInjected int64
	// TotalDelay is the cumulative injected delay time.
	TotalDelay time.Duration
	// NearMisses counts dangerous-pair sightings (§3.4.2).
	NearMisses int64
	// PairsAdded counts unique pairs ever added to the trap set.
	PairsAdded int64
	// PairsPrunedHB counts pairs pruned by happens-before inference
	// (or analysis, for TSVDHB).
	PairsPrunedHB int64
	// PairsPrunedDecay counts pairs pruned by probability decay.
	PairsPrunedDecay int64
	// Violations counts dynamic violations (pre-dedup).
	Violations int64
	// LocationsSeen counts distinct static TSVD points executed.
	LocationsSeen int64
	// LocationsSeenConcurrent counts distinct TSVD points executed during
	// a concurrent phase (coverage statistics, §5.2).
	LocationsSeenConcurrent int64
	// SequentialSkips counts near-miss candidates discarded because the
	// program was in a sequential phase (§3.4.3).
	SequentialSkips int64
	// CallsSampledOut counts instrumented calls the sampling gate skipped
	// before analysis (config.ModeSampled; docs/SAMPLING.md). Skipped calls
	// still count in OnCalls and are still checked against parked traps.
	CallsSampledOut int64
	// DelaysSuppressed counts delays observe-only mode vetoed — calls where
	// the detector decided to inject and recorded the trap logically but
	// did not sleep (config.ModeObserveOnly).
	DelaysSuppressed int64
	// SamplerThrottles counts adaptive-sampling controller runs that
	// adjusted the global admission probability (config.Config.OverheadTarget).
	SamplerThrottles int64
	// NearMissGaps is a log₂ histogram of the time gap between the two
	// sides of each near miss, in microseconds: bucket i counts gaps in
	// [2^i, 2^(i+1)) µs. It quantifies the coarse-interleaving-hypothesis
	// discussion of §6 (Snorlax observed 154–3505 µs windows).
	NearMissGaps GapHistogram
}

// GapHistogram is a log₂-bucketed duration histogram (µs granularity).
type GapHistogram [20]int64

// gapBucket returns the log₂ bucket index for a gap (shared by the public
// histogram and the runtime's atomic mirror).
func gapBucket(d time.Duration) int {
	us := d.Microseconds()
	b := 0
	for us > 1 && b < len(GapHistogram{})-1 {
		us >>= 1
		b++
	}
	return b
}

// Observe adds one gap to the histogram.
func (h *GapHistogram) Observe(d time.Duration) {
	h[gapBucket(d)]++
}

// Add folds another histogram into h.
func (h *GapHistogram) Add(other GapHistogram) {
	for i := range h {
		h[i] += other[i]
	}
}

// Total counts all observations.
func (h GapHistogram) Total() int64 {
	var n int64
	for _, c := range h {
		n += c
	}
	return n
}

// String renders the non-empty buckets as "≥2^i µs: count" pairs.
func (h GapHistogram) String() string {
	var b []byte
	for i, c := range h {
		if c == 0 {
			continue
		}
		if len(b) > 0 {
			b = append(b, ' ')
		}
		b = append(b, []byte(fmt.Sprintf("[%dµs,%dµs):%d", 1<<i, 1<<(i+1), c))...)
	}
	if len(b) == 0 {
		return "(empty)"
	}
	return string(b)
}

// Option configures a detector at construction.
type Option func(*options)

type options struct {
	clk          clock.Clock
	initialTraps []report.PairKey
	metrics      *DetectorMetrics
}

// WithClock substitutes the time source (tests use scaled clocks).
func WithClock(c clock.Clock) Option {
	return func(o *options) { o.clk = c }
}

// WithInitialTraps seeds the trap set from a previous run's trap file, so
// the second run can inject delays at pairs on their very first occurrence
// (§3.4.6 "Multiple testing runs").
func WithInitialTraps(pairs []report.PairKey) Option {
	return func(o *options) { o.initialTraps = append([]report.PairKey(nil), pairs...) }
}

// WithDetectorMetrics attaches the detector to a live metrics view. One
// DetectorMetrics may be shared by many detectors (the harness attaches
// every module detector of a suite), in which case the exported series are
// the live sum across all of them. m may be nil (no-op).
func WithDetectorMetrics(m *DetectorMetrics) Option {
	return func(o *options) { o.metrics = m }
}

// New builds the detector selected by cfg.Algorithm.
func New(cfg config.Config, opts ...Option) (Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	o := options{clk: clock.Real{}}
	for _, opt := range opts {
		opt(&o)
	}
	switch cfg.Algorithm {
	case config.AlgoNop:
		return NewNop(), nil
	case config.AlgoTSVD:
		d := newTSVD(cfg, o)
		o.metrics.attach(&d.rt, d)
		return d, nil
	case config.AlgoTSVDHB:
		d := newTSVDHB(cfg, o)
		o.metrics.attach(&d.rt, d)
		return d, nil
	case config.AlgoDynamicRandom:
		d := newDynamicRandom(cfg, o)
		o.metrics.attach(&d.rt, nil) // no trap set to gauge
		return d, nil
	case config.AlgoStaticRandom:
		d := newStaticRandom(cfg, o)
		o.metrics.attach(&d.rt, nil) // no trap set to gauge
		return d, nil
	default:
		return nil, errUnknownAlgo
	}
}

type coreError string

func (e coreError) Error() string { return "core: " + string(e) }

var errUnknownAlgo = coreError("unknown algorithm")

// NopDetector ignores everything; it is the uninstrumented baseline used for
// overhead measurements and the zero value other variants embed for the
// synchronization hooks they ignore.
type NopDetector struct {
	reports *report.Collector
	sites   *sites.Registry
}

// NewNop returns a detector that does nothing.
func NewNop() *NopDetector {
	return &NopDetector{reports: report.NewCollector(), sites: sites.New()}
}

// OnCall implements Detector.
func (*NopDetector) OnCall(Access) {}

// OnFork implements Detector.
func (*NopDetector) OnFork(parent, child ids.ThreadID) {}

// OnJoin implements Detector.
func (*NopDetector) OnJoin(waiter, done ids.ThreadID) {}

// OnLockAcquire implements Detector.
func (*NopDetector) OnLockAcquire(t ids.ThreadID, lock ids.ObjectID) {}

// OnLockRelease implements Detector.
func (*NopDetector) OnLockRelease(t ids.ThreadID, lock ids.ObjectID) {}

// Sites implements Detector; the registry interns but drives nothing.
func (n *NopDetector) Sites() *sites.Registry { return n.sites }

// Reports implements Detector.
func (n *NopDetector) Reports() *report.Collector { return n.reports }

// Stats implements Detector.
func (*NopDetector) Stats() Stats { return Stats{} }

// ExportTraps implements Detector.
func (*NopDetector) ExportTraps() []report.PairKey { return nil }

// Tracer implements Detector; the baseline traces nothing.
func (*NopDetector) Tracer() *trace.Tracer { return nil }

// nopSyncHooks provides the no-op synchronization hooks that TSVD and the
// random variants embed: they are oblivious to synchronization by design.
type nopSyncHooks struct{}

func (nopSyncHooks) OnFork(parent, child ids.ThreadID)               {}
func (nopSyncHooks) OnJoin(waiter, done ids.ThreadID)                {}
func (nopSyncHooks) OnLockAcquire(t ids.ThreadID, lock ids.ObjectID) {}
func (nopSyncHooks) OnLockRelease(t ids.ThreadID, lock ids.ObjectID) {}
