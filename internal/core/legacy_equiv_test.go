package core

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/ids"
	"repro/internal/report"
)

// equivSite is one entry of the small API surface the equivalence workload
// exercises; both detector paths see the same tuples.
type equivSite struct {
	op     ids.OpID
	class  string
	method string
	kind   Kind
}

func equivSites() []equivSite {
	classes := []string{"Dictionary", "List", "Queue", "HashSet"}
	methods := []string{"Add", "Remove", "ContainsKey", "get_Item"}
	var out []equivSite
	for i := 0; i < 16; i++ {
		out = append(out, equivSite{
			op:     ids.InternKey(fmt.Sprintf("equiv.go:%d", 100+i)),
			class:  classes[i%len(classes)],
			method: methods[(i/4)%len(methods)],
			kind:   Kind(i % 2),
		})
	}
	return out
}

// equivConfig is a fully deterministic detector setup: seeded rng, no
// happens-before inference (its deadline bookkeeping is wall-clock driven),
// no near-miss windowing (gap checks are wall-clock driven), and
// observe-only mode so no thread ever actually sleeps — the decision
// sequence is then a pure function of the access stream.
func equivConfig() config.Config {
	cfg := testConfig(config.AlgoTSVD)
	cfg.Seed = 42
	cfg.Mode = config.ModeObserveOnly
	cfg.DisableHBInference = true
	cfg.DisableNearMissWindow = true
	return cfg
}

// normalizeStats clears the wall-clock-derived fields two otherwise
// identical runs legitimately disagree on: the near-miss gap histogram
// buckets by real elapsed time, and TotalDelay accumulates real sleeps.
func normalizeStats(st Stats) Stats {
	st.NearMissGaps = GapHistogram{}
	st.TotalDelay = 0
	return st
}

func sortedKeys(bugs []report.Bug) []report.PairKey {
	keys := make([]report.PairKey, len(bugs))
	for i, b := range bugs {
		keys[i] = b.Key
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].A != keys[j].A {
			return keys[i].A < keys[j].A
		}
		return keys[i].B < keys[j].B
	})
	return keys
}

// TestLegacySiteIDEquivalence is the API-migration contract: an identical
// access stream driven through the interned-SiteID path (OnCall) and
// through the string-keyed compatibility shim (OnCallLegacy) must leave the
// two detectors in identical observable states — same Stats, same bug-key
// sets, same interned site tables. The stream mixes threads, objects, and
// kinds aggressively enough to exercise near misses, pair admission, the
// decay ladder, and sequential-phase suppression.
func TestLegacySiteIDEquivalence(t *testing.T) {
	tab := equivSites()

	dSite := mustNew(t, equivConfig())
	dLegacy := mustNew(t, equivConfig())

	// Pre-intern the whole table on the SiteID path, in table order — the
	// registries end up with the same tuple set even though the legacy path
	// interns lazily in stream order.
	siteIDs := make([]ids.SiteID, len(tab))
	for i, s := range tab {
		siteIDs[i] = dSite.Sites().ForCall(s.op, s.class, s.method, s.kind == KindWrite)
	}

	// A deterministic pseudo-random stream; both detectors see exactly this
	// sequence from one driving goroutine (fabricated thread ids stand in
	// for real goroutines, as throughout the core tests).
	rng := uint64(0x9E3779B97F4A7C15)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	type step struct {
		thread ids.ThreadID
		obj    ids.ObjectID
		site   int
	}
	const steps = 6000
	stream := make([]step, steps)
	for i := range stream {
		// Runs of one thread interleaved with mixed segments, so the phase
		// ring sees both sequential and concurrent stretches.
		th := ids.ThreadID(1 + next(4))
		if i/200%3 == 0 {
			th = 1
		}
		stream[i] = step{thread: th, obj: ids.ObjectID(1 + next(6)), site: next(len(tab))}
	}

	for _, s := range stream {
		e := tab[s.site]
		dSite.OnCall(Access{
			Thread: s.thread, Obj: s.obj, Op: e.op,
			Site: siteIDs[s.site], Kind: e.kind,
		})
	}
	for _, s := range stream {
		e := tab[s.site]
		OnCallLegacy(dLegacy, AccessLegacy{
			Thread: s.thread, Obj: s.obj, Op: e.op,
			Kind: e.kind, Class: e.class, Method: e.method,
		})
	}

	stSite := normalizeStats(dSite.Stats())
	stLegacy := normalizeStats(dLegacy.Stats())
	if stSite != stLegacy {
		t.Errorf("stats diverge:\n  site:   %+v\n  legacy: %+v", stSite, stLegacy)
	}
	// The workload must have actually exercised the machinery for the
	// equality above to mean anything.
	if stSite.NearMisses == 0 || stSite.PairsAdded == 0 || stSite.DelaysSuppressed == 0 {
		t.Errorf("workload too tame to validate equivalence: %+v", stSite)
	}
	if stSite.SequentialSkips == 0 {
		t.Errorf("workload never hit a sequential phase: %+v", stSite)
	}

	kSite, kLegacy := sortedKeys(dSite.Reports().Bugs()), sortedKeys(dLegacy.Reports().Bugs())
	if len(kSite) != len(kLegacy) {
		t.Fatalf("bug sets diverge: %v vs %v", kSite, kLegacy)
	}
	for i := range kSite {
		if kSite[i] != kLegacy[i] {
			t.Fatalf("bug sets diverge at %d: %v vs %v", i, kSite, kLegacy)
		}
	}

	// Both registries interned the same tuple set (ids may differ — the
	// paths intern in different orders — so compare tuples, not ids).
	type tuple struct {
		op            ids.OpID
		class, method string
		write         bool
	}
	tuplesOf := func(d Detector) map[tuple]bool {
		m := map[tuple]bool{}
		for _, s := range d.Sites().Snapshot() {
			m[tuple{s.Op, s.Class, s.Method, s.Write}] = true
		}
		return m
	}
	tSite, tLegacy := tuplesOf(dSite), tuplesOf(dLegacy)
	if len(tSite) != len(tLegacy) {
		t.Fatalf("registries diverge: %d vs %d sites", len(tSite), len(tLegacy))
	}
	for k := range tSite {
		if !tLegacy[k] {
			t.Fatalf("legacy registry missing tuple %+v", k)
		}
	}

	// The trap sets (the state a second run would be seeded from) agree.
	eSite, eLegacy := dSite.ExportTraps(), dLegacy.ExportTraps()
	if len(eSite) != len(eLegacy) {
		t.Fatalf("exported traps diverge: %d vs %d", len(eSite), len(eLegacy))
	}
	inLegacy := map[report.PairKey]bool{}
	for _, k := range eLegacy {
		inLegacy[k] = true
	}
	for _, k := range eSite {
		if !inLegacy[k] {
			t.Fatalf("trap %v only on the SiteID path", k)
		}
	}
}

// TestLegacyViolationEquivalence checks the red-handed path end to end on
// both APIs: the same seeded-trap rendezvous (one thread traps, the other
// lands inside the delay) must yield the same single bug on either path,
// and the legacy path's report must carry the site metadata its strings
// described, resolved through the registry rather than from the access.
func TestLegacyViolationEquivalence(t *testing.T) {
	op1 := ids.InternKey("equiv_violation.go:1")
	op2 := ids.InternKey("equiv_violation.go:2")
	const obj = ids.ObjectID(77)

	run := func(drive func(d Detector, th ids.ThreadID, op ids.OpID)) Detector {
		cfg := config.Defaults(config.AlgoTSVD) // full 100ms delay window
		cfg.DisableHBInference = true
		d := mustNew(t, cfg, WithInitialTraps([]report.PairKey{report.KeyOf(op1, op2)}))
		done := make(chan struct{})
		go func() {
			defer close(done)
			drive(d, 1, op1) // traps: the pair is seeded
		}()
		time.Sleep(cfg.EffectiveDelay() / 4) // land inside the delay
		drive(d, 2, op2)
		<-done
		return d
	}

	viaSite := run(func(d Detector, th ids.ThreadID, op ids.OpID) {
		site := d.Sites().ForCall(op, "Dictionary", "Add", true)
		d.OnCall(Access{Thread: th, Obj: obj, Op: op, Site: site, Kind: KindWrite})
	})
	viaLegacy := run(func(d Detector, th ids.ThreadID, op ids.OpID) {
		OnCallLegacy(d, AccessLegacy{
			Thread: th, Obj: obj, Op: op, Kind: KindWrite,
			Class: "Dictionary", Method: "Add",
		})
	})

	for name, d := range map[string]Detector{"site": viaSite, "legacy": viaLegacy} {
		bugs := d.Reports().Bugs()
		if len(bugs) != 1 || bugs[0].Key != report.KeyOf(op1, op2) {
			t.Fatalf("%s path: bugs = %+v, want exactly (op1, op2)", name, bugs)
		}
		v := d.Reports().Violations()[0]
		for _, side := range []report.Side{v.Trapped, v.Conflicting} {
			if side.Site == 0 {
				t.Fatalf("%s path: report side carries no site id: %+v", name, side)
			}
			if side.Class != "Dictionary" || side.Method != "Add" {
				t.Fatalf("%s path: metadata not resolved from registry: %+v", name, side)
			}
		}
	}
}
