package core

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/config"
	"repro/internal/ids"
	"repro/internal/report"
)

// trap is one parked thread inside OnCall (Figure 5): the triple that
// identifies it plus everything needed to emit a two-sided report and to
// wake the sleeper early once a conflict is caught.
type trap struct {
	access Access
	stack  string
	// cancel wakes the delayed thread early when a conflict is detected.
	cancel chan struct{}
	// conflict is set under the runtime mutex when another thread ran into
	// this trap; the owner reads it after waking to decide decay.
	conflict bool
	// canceled guards double-close of cancel.
	canceled bool
}

// runtime is the state shared by every detector variant: configuration,
// time source, the active trap table, delay budgets, statistics and the
// report collector. Detector-specific state lives in the variant structs.
// One mutex guards everything; injected delays always sleep outside it, so
// any number of traps can be parked concurrently (§3.4.6 "Parallel delay
// injection").
type runtime struct {
	cfg config.Config
	clk clock.Clock

	mu      sync.Mutex
	start   time.Time
	rng     *rand.Rand
	traps   map[ids.ObjectID][]*trap
	budgets map[ids.ThreadID]*clock.Budget
	stats   Stats
	reports *report.Collector
	// locsSeen / locsSeenConcurrent back the coverage counters.
	locsSeen           map[ids.OpID]struct{}
	locsSeenConcurrent map[ids.OpID]struct{}

	// Effective (time-scaled) durations, precomputed.
	delayTime      time.Duration
	nearMissWindow time.Duration
	maxDelay       time.Duration
}

func newRuntime(cfg config.Config, o options) runtime {
	return runtime{
		cfg:                cfg,
		clk:                o.clk,
		start:              o.clk.Now(),
		rng:                rand.New(rand.NewSource(cfg.Seed)),
		traps:              map[ids.ObjectID][]*trap{},
		budgets:            map[ids.ThreadID]*clock.Budget{},
		reports:            report.NewCollector(),
		locsSeen:           map[ids.OpID]struct{}{},
		locsSeenConcurrent: map[ids.OpID]struct{}{},
		delayTime:          cfg.EffectiveDelay(),
		nearMissWindow:     cfg.EffectiveNearMissWindow(),
		maxDelay:           cfg.EffectiveMaxDelayPerThread(),
	}
}

// now returns the time since detector start. Caller need not hold the mutex.
func (r *runtime) now() time.Duration { return r.clk.Now().Sub(r.start) }

// checkForTraps implements check_for_trap (Figure 5 line 2): it scans the
// traps registered on a's object and reports a violation for every
// conflicting one. Caller holds the mutex. It returns the pair keys of the
// violations found so variants can prune them from their trap sets.
func (r *runtime) checkForTraps(a Access, stackOf func() string) []report.PairKey {
	var found []report.PairKey
	for _, t := range r.traps[a.Obj] {
		if t.access.Thread == a.Thread || !Conflicts(t.access.Kind, a.Kind) {
			continue
		}
		r.stats.Violations++
		v := report.Violation{
			Object: a.Obj,
			Trapped: report.Side{
				Thread: t.access.Thread,
				Op:     t.access.Op,
				Write:  t.access.Kind == KindWrite,
				Class:  t.access.Class,
				Method: t.access.Method,
				Stack:  t.stack,
			},
			Conflicting: report.Side{
				Thread: a.Thread,
				Op:     a.Op,
				Write:  a.Kind == KindWrite,
				Class:  a.Class,
				Method: a.Method,
				Stack:  stackOf(),
			},
			When: r.now(),
		}
		r.reports.Add(v)
		t.conflict = true
		if !t.canceled {
			t.canceled = true
			close(t.cancel)
		}
		found = append(found, v.Key())
	}
	return found
}

// registerTrap adds a trap for a. Caller holds the mutex.
func (r *runtime) registerTrap(a Access, stack string) *trap {
	t := &trap{access: a, stack: stack, cancel: make(chan struct{})}
	r.traps[a.Obj] = append(r.traps[a.Obj], t)
	return t
}

// unregisterTrap removes t. Caller holds the mutex.
func (r *runtime) unregisterTrap(t *trap) {
	list := r.traps[t.access.Obj]
	for i := range list {
		if list[i] == t {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(r.traps, t.access.Obj)
	} else {
		r.traps[t.access.Obj] = list
	}
}

// anyTrapSet reports whether some thread is currently parked. Caller holds
// the mutex. Used by the AvoidOverlappingDelays ablation.
func (r *runtime) anyTrapSet() bool { return len(r.traps) > 0 }

// budgetFor returns the per-thread delay budget, creating it on first use.
// Caller holds the mutex.
func (r *runtime) budgetFor(t ids.ThreadID) *clock.Budget {
	b := r.budgets[t]
	if b == nil {
		b = &clock.Budget{Max: r.maxDelay}
		r.budgets[t] = b
	}
	return b
}

// injectDelay parks the calling thread in a trap for up to d (clipped by the
// thread's budget), sleeping outside the mutex. It returns the trap (whose
// conflict flag tells the caller whether the delay was productive) and the
// nominal duration actually slept. Caller holds the mutex; it is reacquired
// before returning.
func (r *runtime) injectDelay(a Access, d time.Duration) (*trap, time.Duration) {
	budget := r.budgetFor(a.Thread)
	grant := budget.Allow(d)
	if grant <= 0 {
		return nil, 0
	}
	t := r.registerTrap(a, ids.Stack())
	r.stats.DelaysInjected++
	r.mu.Unlock()

	slept, woken := r.clk.Sleep(grant, t.cancel)

	r.mu.Lock()
	r.unregisterTrap(t)
	if woken && slept < grant {
		budget.Refund(grant - slept)
	}
	if slept > grant {
		slept = grant
	}
	r.stats.TotalDelay += slept
	return t, slept
}

// markSeen updates the coverage counters for op. Caller holds the mutex.
func (r *runtime) markSeen(op ids.OpID, concurrent bool) {
	if _, ok := r.locsSeen[op]; !ok {
		r.locsSeen[op] = struct{}{}
		r.stats.LocationsSeen++
	}
	if concurrent {
		if _, ok := r.locsSeenConcurrent[op]; !ok {
			r.locsSeenConcurrent[op] = struct{}{}
			r.stats.LocationsSeenConcurrent++
		}
	}
}

// snapshotStats returns a copy of the counters. Takes the mutex itself.
func (r *runtime) snapshotStats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// phaseRing is the global history buffer of §3.4.3: the thread ids of the
// most recently executed TSVD points. The execution is considered to be in
// a concurrent phase iff the buffer holds more than one distinct thread.
type phaseRing struct {
	buf  []ids.ThreadID
	next int
	full bool
}

func newPhaseRing(size int) *phaseRing {
	return &phaseRing{buf: make([]ids.ThreadID, size)}
}

// observe records t and reports whether the execution is in a concurrent
// phase.
func (p *phaseRing) observe(t ids.ThreadID) bool {
	p.buf[p.next] = t
	p.next++
	if p.next == len(p.buf) {
		p.next = 0
		p.full = true
	}
	n := len(p.buf)
	if !p.full {
		n = p.next
	}
	first := p.buf[0]
	for i := 1; i < n; i++ {
		if p.buf[i] != first {
			return true
		}
	}
	return false
}
