package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/config"
	"repro/internal/ids"
	"repro/internal/report"
	"repro/internal/sampler"
	"repro/internal/trace"
)

// trap is one parked thread inside OnCall (Figure 5): the triple that
// identifies it plus everything needed to emit a two-sided report and to
// wake the sleeper early once a conflict is caught.
type trap struct {
	access Access
	stack  string
	// cancel wakes the delayed thread early when a conflict is detected.
	cancel chan struct{}
	// conflict is set under the object's shard mutex when another thread
	// ran into this trap; the owner reads it after waking (and after
	// unregistering under the same shard mutex) to decide decay.
	conflict bool
	// canceled guards double-close of cancel.
	canceled bool
}

// shard is one stripe of the detector's per-object state. Everything mutable
// that belongs to an object — its parked traps, its near-miss ring (TSVD)
// and its epoch ring (TSVDHB) — lives in exactly one shard, selected by a
// hash of the ObjectID. Two accesses to the same object therefore always
// synchronize on the same shard mutex (which is what makes a report
// red-handed-sound), while accesses to unrelated objects proceed on
// different stripes without contending.
type shard struct {
	mu    sync.Mutex
	traps map[ids.ObjectID][]*trap
	// hist holds TSVD's per-object near-miss rings; hb holds TSVDHB's
	// epoch rings. Only the map the active variant uses is ever populated.
	hist map[ids.ObjectID]*objHistory
	hb   map[ids.ObjectID]*hbHistory
	// onCalls counts OnCalls whose near-miss section ran in this shard.
	// Detectors increment it while holding mu, so the hottest counter lives
	// on an exclusive cache line instead of a process-wide one; it is
	// atomic so Stats() and live metric views can sum across shards without
	// taking any shard lock.
	onCalls atomic.Int64
	// sampledOut counts OnCalls the sampling gate skipped in this shard
	// (config.ModeSampled). Kept per shard for the same reason as onCalls:
	// the skip path must stay contention-free or sampling would cost more
	// than the analysis it skips.
	sampledOut atomic.Int64
	// pad keeps neighbouring shard locks off one cache line (false
	// sharing would re-serialize the stripes through the coherence bus).
	_ [64]byte
}

// runtime is the state shared by every detector variant: configuration,
// time source, the striped trap/history table, delay budgets, statistics and
// the report collector. Detector-specific state lives in the variant
// structs. There is no global lock: per-object state is striped across
// shards, counters are atomics, the coverage sets and budgets are
// concurrent maps, and injected delays always sleep outside every lock so
// any number of traps can be parked concurrently (§3.4.6 "Parallel delay
// injection"). docs/PERFORMANCE.md documents the full cost model.
type runtime struct {
	cfg   config.Config
	clk   clock.Clock
	start time.Time

	shards []shard
	// shardShift turns the Fibonacci hash of an ObjectID into a shard
	// index: index = (obj · φ64) >> shardShift. len(shards) is a power of
	// two, so shardShift = 64 − log2(len(shards)).
	shardShift uint

	stats   atomicStats
	reports *report.Collector

	// met is the live metrics sink, nil unless WithDetectorMetrics was
	// given. Like the tracer, every hook site is nil-safe and sits on
	// detector action paths only — the conflict-free fast path crosses no
	// metrics hook; the scrape-time counter views read the atomics above
	// and add no hot-path work at all.
	met *DetectorMetrics

	// tr is the event tracer, nil unless cfg.Trace is set. Every emission
	// site is nil-safe, sits off the conflict-free fast path (events fire
	// only on detector actions: near misses, delays, prunes, violations),
	// and writes scalars into a preallocated striped ring — the tracer adds
	// no allocation anywhere in OnCall. docs/OBSERVABILITY.md has the
	// schema; the event counts reconcile exactly with atomicStats.
	tr *trace.Tracer

	// parked counts currently registered traps process-wide. The hot path
	// skips the shard's trap scan entirely while it is zero — on a
	// conflict-free workload OnCall never touches the trap table at all.
	parked atomic.Int64

	// budgets hands out the per-thread delay budgets (§4 runtime feature
	// 2) from a concurrent map; each Budget is internally atomic.
	budgets clock.BudgetTable

	// covered backs both coverage counters with one insert-only map:
	// presence means the location executed at all, the entry's flag means
	// it executed during a concurrent phase. The common fully-marked case
	// costs one lock-free probe plus one flag load.
	covered atomicMap[locCover]

	// rng drives every probabilistic decision. Draws only happen for
	// eligible delay locations (rare) and in the random variants, so one
	// small lock suffices; the TSVD hot path never takes it.
	rngMu sync.Mutex
	rng   *rand.Rand

	// mode is the production sampling tier (docs/SAMPLING.md). ModeFull is
	// the zero value; ModeObserveOnly suppresses sleeps in injectDelay;
	// ModeSampled gates analysis through samp.
	mode config.Mode
	// samp is the per-site admission gate and its adaptive overhead
	// controller, non-nil only in ModeSampled. The gate sits after the
	// parked-trap check — red-handed catching is never sampled out.
	samp *sampler.Sampler
	// samplerOp is the interned "sampler" pseudo-location carried by
	// sampler_throttle trace events (the schema requires a nonzero op_a).
	samplerOp ids.OpID

	// Effective (time-scaled) durations, precomputed.
	delayTime      time.Duration
	nearMissWindow time.Duration
	maxDelay       time.Duration
	// hbThreshold is δ_hb·delayTime, precomputed so the hot path does no
	// floating-point work.
	hbThreshold time.Duration
}

// init prepares r in place. (runtime holds locks and atomics, so it is
// initialized through a pointer rather than returned by value.)
func (r *runtime) init(cfg config.Config, o options) {
	n := cfg.EffectiveShardCount()
	shift := uint(64)
	for m := n; m > 1; m >>= 1 {
		shift--
	}
	r.cfg = cfg
	r.clk = o.clk
	r.start = o.clk.Now()
	r.shards = make([]shard, n)
	r.shardShift = shift
	for i := range r.shards {
		r.shards[i].traps = map[ids.ObjectID][]*trap{}
	}
	r.reports = report.NewCollector()
	r.met = o.metrics
	r.rng = rand.New(rand.NewSource(cfg.Seed))
	r.delayTime = cfg.EffectiveDelay()
	r.nearMissWindow = cfg.EffectiveNearMissWindow()
	r.maxDelay = cfg.EffectiveMaxDelayPerThread()
	r.hbThreshold = time.Duration(cfg.HBBlockThreshold * float64(r.delayTime))
	r.budgets = clock.BudgetTable{Max: r.maxDelay}
	r.mode = cfg.Mode
	if cfg.Mode == config.ModeSampled {
		r.samp = sampler.New(sampler.Params{
			BaseProbability: cfg.SampleProbability,
			OverheadTarget:  cfg.OverheadTarget,
			Interval:        cfg.EffectiveSamplerInterval(),
		})
		r.samplerOp = ids.InternKey("sampler")
	}
	if cfg.Trace {
		r.tr = trace.New(cfg.TraceBufferSize)
	}
}

// now returns the time since detector start. Safe without any lock; uses
// the clock's monotonic-only read (one vDSO call on Linux).
func (r *runtime) now() time.Duration { return r.clk.Since(r.start) }

// shardFor maps obj to its stripe. Object ids are sequential counters, so a
// Fibonacci-style multiplicative hash spreads neighbouring ids across
// shards before taking the top bits.
func (r *runtime) shardFor(obj ids.ObjectID) *shard {
	return &r.shards[(uint64(obj)*0x9E3779B97F4A7C15)>>r.shardShift]
}

// randFloat draws from the seeded source. Callers hold no other runtime
// lock ordering obligations; rngMu is a leaf lock.
func (r *runtime) randFloat() float64 {
	r.rngMu.Lock()
	f := r.rng.Float64()
	r.rngMu.Unlock()
	return f
}

// randDurationUpTo draws uniformly from (0, d].
func (r *runtime) randDurationUpTo(d time.Duration) time.Duration {
	r.rngMu.Lock()
	v := r.rng.Int63n(int64(d))
	r.rngMu.Unlock()
	return time.Duration(v) + 1
}

// randUint64 draws 64 random bits from the seeded source. Used only by the
// random variants' sampling gate; TSVD/TSVDHB use per-thread xorshift states
// instead to keep their hot path off rngMu.
func (r *runtime) randUint64() uint64 {
	r.rngMu.Lock()
	v := r.rng.Uint64()
	r.rngMu.Unlock()
	return v
}

// sampleTick runs the adaptive-sampling controller if its interval has
// elapsed, recording every adjustment in the stats and the trace. Nil-safe;
// called from OnCall tails in ModeSampled.
func (r *runtime) sampleTick(now time.Duration) {
	if r.samp == nil {
		return
	}
	if adj, ok := r.samp.Tick(now); ok {
		r.stats.samplerThrottles.Add(1)
		r.tr.Emit(trace.KindSamplerThrottle, 0, 0, r.samplerOp, 0, now, adj.Spent)
	}
}

// checkForTraps implements check_for_trap (Figure 5 line 2): it scans the
// traps registered on a's object and reports a violation for every
// conflicting one. Caller holds sh.mu, where sh is a.Obj's shard — the same
// mutex the trapped thread registered under, which is what keeps the
// no-false-positives argument intact after sharding: both threads are
// provably inside conflicting calls on the same object at the same moment.
// It returns the pair keys of the violations found so variants can prune
// them from their trap sets (outside the shard lock).
func (r *runtime) checkForTraps(sh *shard, a Access, stackOf func() string) []report.PairKey {
	var found []report.PairKey
	for _, t := range sh.traps[a.Obj] {
		if t.access.Thread == a.Thread || !Conflicts(t.access.Kind, a.Kind) {
			continue
		}
		r.stats.violations.Add(1)
		v := report.Violation{
			Object: a.Obj,
			Trapped: report.Side{
				Thread: t.access.Thread,
				Op:     t.access.Op,
				Write:  t.access.Kind == KindWrite,
				Class:  t.access.Class,
				Method: t.access.Method,
				Stack:  t.stack,
			},
			Conflicting: report.Side{
				Thread: a.Thread,
				Op:     a.Op,
				Write:  a.Kind == KindWrite,
				Class:  a.Class,
				Method: a.Method,
				Stack:  stackOf(),
			},
			When: r.now(),
		}
		r.reports.Add(v)
		r.tr.Emit(trace.KindTrapSprung, a.Thread, a.Obj, t.access.Op, a.Op, v.When, 0)
		t.conflict = true
		if !t.canceled {
			t.canceled = true
			close(t.cancel)
		}
		found = append(found, v.Key())
	}
	return found
}

// unregisterTrap removes t from its shard's table. Caller holds sh.mu.
func (r *runtime) unregisterTrap(sh *shard, t *trap) {
	list := sh.traps[t.access.Obj]
	for i := range list {
		if list[i] == t {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(sh.traps, t.access.Obj)
	} else {
		sh.traps[t.access.Obj] = list
	}
}

// anyTrapSet reports whether some thread is currently parked, without
// taking any lock. Used by the AvoidOverlappingDelays ablation.
func (r *runtime) anyTrapSet() bool { return r.parked.Load() > 0 }

// injectDelay parks the calling thread in a trap for up to d (clipped by the
// thread's budget), sleeping outside every lock. It returns the trap (whose
// conflict flag tells the caller whether the delay was productive) and the
// nominal duration actually slept. The caller holds no locks.
//
// The trap becomes visible to other threads only once it is registered
// under the shard mutex; a conflicting access that scans the shard strictly
// before registration completes simply misses this trap — a loss of one
// detection opportunity, never a false positive. The single-mutex runtime
// had the same property: its atomicity only extended until the sleeping
// thread dropped the lock.
func (r *runtime) injectDelay(a Access, d time.Duration) (*trap, time.Duration) {
	// Observe-only mode (docs/SAMPLING.md): the detector went through its
	// whole decision — the pair is trapped, the coin flip passed — but no
	// thread sleeps. Counting the veto here, at the single funnel every
	// variant's delay goes through, is what makes the mode's "zero injected
	// delays" claim checkable: DelaysInjected stays 0 while
	// DelaysSuppressed counts the trap firings that would have happened.
	if r.mode == config.ModeObserveOnly {
		r.stats.delaysSuppressed.Add(1)
		r.tr.Emit(trace.KindDelaySuppressed, a.Thread, a.Obj, a.Op, 0, r.now(), d)
		return nil, 0
	}
	budget := r.budgets.For(int64(a.Thread))
	grant := budget.Allow(d)
	if grant <= 0 {
		return nil, 0
	}
	t := &trap{access: a, stack: ids.Stack(), cancel: make(chan struct{})}
	sh := r.shardFor(a.Obj)
	sh.mu.Lock()
	sh.traps[a.Obj] = append(sh.traps[a.Obj], t)
	sh.mu.Unlock()
	r.parked.Add(1)
	r.stats.delaysInjected.Add(1)
	r.met.observeDelay(grant)
	r.tr.Emit(trace.KindTrapSet, a.Thread, a.Obj, a.Op, 0, r.now(), grant)

	slept, woken := r.clk.Sleep(grant, t.cancel)

	sh.mu.Lock()
	r.unregisterTrap(sh, t)
	sh.mu.Unlock()
	r.parked.Add(-1)
	if woken && slept < grant {
		budget.Refund(grant - slept)
	}
	if slept > grant {
		slept = grant
	}
	r.stats.totalDelay.Add(int64(slept))
	if r.samp != nil {
		r.samp.ObserveDelay(slept)
	}
	if r.tr != nil {
		at := r.now()
		r.tr.Emit(trace.KindDelayInjected, a.Thread, a.Obj, a.Op, 0, at, slept)
		if t.conflict {
			r.tr.Emit(trace.KindDelayProductive, a.Thread, a.Obj, a.Op, 0, at, slept)
		}
	}
	return t, slept
}

// locCover is one location's coverage record: existing at all means the
// location executed; the flag records whether it ever executed during a
// concurrent phase.
type locCover struct {
	concurrent atomic.Bool
}

// markSeen updates the coverage counters for op. The map is insert-only, so
// a lock-free probe answers the common already-seen case; creation and the
// one-way concurrent upgrade each arbitrate exactly one counter increment.
func (r *runtime) markSeen(op ids.OpID, concurrent bool) {
	c := r.covered.get(int64(op))
	if c == nil {
		var created bool
		c, created = r.covered.getOrCreate(int64(op), func() *locCover { return &locCover{} })
		if created {
			r.stats.locationsSeen.Add(1)
		}
	}
	if concurrent && !c.concurrent.Load() && c.concurrent.CompareAndSwap(false, true) {
		r.stats.locationsSeenConcurrent.Add(1)
	}
}

// snapshotStats materializes the public counters from the atomics and the
// per-shard tallies. It takes no lock: the shard counters are atomics, so a
// live metrics scrape can snapshot a running detector without stalling any
// shard's OnCall traffic.
func (r *runtime) snapshotStats() Stats {
	st := r.stats.snapshot()
	for i := range r.shards {
		st.OnCalls += r.shards[i].onCalls.Load()
		st.CallsSampledOut += r.shards[i].sampledOut.Load()
	}
	return st
}

// atomicStats is the runtime's contention-free mirror of Stats: every
// counter is an atomic, so the hot path never serializes on a statistics
// lock and Stats() can snapshot without stopping the world. Counters
// incremented from inside a racing OnCall are exact — atomics lose nothing
// — only the cross-counter consistency of a snapshot is relaxed.
type atomicStats struct {
	onCalls                 atomic.Int64
	delaysInjected          atomic.Int64
	totalDelay              atomic.Int64 // nanoseconds
	nearMisses              atomic.Int64
	pairsAdded              atomic.Int64
	pairsPrunedHB           atomic.Int64
	pairsPrunedDecay        atomic.Int64
	violations              atomic.Int64
	locationsSeen           atomic.Int64
	locationsSeenConcurrent atomic.Int64
	sequentialSkips         atomic.Int64
	// callsSampledOut is the global skip counter used by the random
	// variants; TSVD/TSVDHB count skips per shard (shard.sampledOut) and
	// snapshotStats sums both.
	callsSampledOut  atomic.Int64
	delaysSuppressed atomic.Int64
	samplerThrottles atomic.Int64
	nearMissGaps     [len(GapHistogram{})]atomic.Int64
}

// observeGap adds one near-miss gap to the histogram.
func (s *atomicStats) observeGap(d time.Duration) {
	s.nearMissGaps[gapBucket(d)].Add(1)
}

// snapshot copies the atomics into the public Stats struct.
func (s *atomicStats) snapshot() Stats {
	st := Stats{
		OnCalls:                 s.onCalls.Load(),
		DelaysInjected:          s.delaysInjected.Load(),
		TotalDelay:              time.Duration(s.totalDelay.Load()),
		NearMisses:              s.nearMisses.Load(),
		PairsAdded:              s.pairsAdded.Load(),
		PairsPrunedHB:           s.pairsPrunedHB.Load(),
		PairsPrunedDecay:        s.pairsPrunedDecay.Load(),
		Violations:              s.violations.Load(),
		LocationsSeen:           s.locationsSeen.Load(),
		LocationsSeenConcurrent: s.locationsSeenConcurrent.Load(),
		SequentialSkips:         s.sequentialSkips.Load(),
		CallsSampledOut:         s.callsSampledOut.Load(),
		DelaysSuppressed:        s.delaysSuppressed.Load(),
		SamplerThrottles:        s.samplerThrottles.Load(),
	}
	for i := range st.NearMissGaps {
		st.NearMissGaps[i] = s.nearMissGaps[i].Load()
	}
	return st
}

// phaseRing is the concurrent-phase detector of §3.4.3: conceptually a ring
// of the thread ids at the most recently executed TSVD points, with the
// execution in a concurrent phase iff the ring holds more than one distinct
// thread.
//
// The window "contains two distinct threads" exactly when the run of
// identical trailing observations is shorter than the window, so instead of
// materializing the ring the detector keeps that run length: observe is a
// handful of atomic operations with no buffer scan, O(1) in the window size.
// §3.4.3 explicitly tolerates racy maintenance ("the buffer itself need not
// be synchronized ... TSVD only needs an approximate notion of concurrent
// phases"), so interleaved observers may briefly disagree on the run length
// — never read a torn value, and never contend on a lock.
type phaseRing struct {
	window int64
	last   atomic.Int64 // most recently observed thread id
	run    atomic.Int64 // trailing same-thread run length, capped at window
	count  atomic.Int64 // total observations, capped at window
}

func newPhaseRing(size int) *phaseRing {
	return &phaseRing{window: int64(size)}
}

// observe records t and reports whether the execution is in a concurrent
// phase.
func (p *phaseRing) observe(t ids.ThreadID) bool {
	tid := int64(t)
	run := int64(1)
	if p.last.Load() != tid {
		p.last.Store(tid)
		p.run.Store(1)
	} else if run = p.run.Load(); run < p.window {
		run++
		p.run.Store(run)
	}
	c := p.count.Load()
	if c < p.window {
		c++
		p.count.Store(c)
	}
	return run < c
}
