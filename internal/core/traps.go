package core

import (
	"math/rand"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/config"
	"repro/internal/fasttime"
	"repro/internal/ids"
	"repro/internal/intmap"
	"repro/internal/report"
	"repro/internal/sampler"
	"repro/internal/sites"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// trap is one parked thread inside OnCall (Figure 5): the triple that
// identifies it plus everything needed to emit a two-sided report and to
// wake the sleeper early once a conflict is caught.
type trap struct {
	access Access
	stack  string
	// cancel wakes the delayed thread early when a conflict is detected.
	cancel chan struct{}
	// conflict is set under the object's lock when another thread ran into
	// this trap; the owner reads it after waking (and after unregistering
	// under the same lock) to decide decay.
	conflict bool
	// canceled guards double-close of cancel.
	canceled bool
}

// spinMutex is the per-object lock. Critical sections under it are tiny — a
// ring scan of ObjHistory entries plus one store — so an uncontended
// acquire/release pair must cost two atomic operations, not a sync.Mutex's
// full fast path. Contended acquires spin briefly, then yield: the only
// long hold is a rare violation report capturing stacks, and a yielding
// waiter keeps the scheduler healthy through it. The CAS/store pair gives
// the same happens-before edges a mutex would, so the data it guards stays
// race-clean.
type spinMutex struct {
	state atomic.Int32
}

func (m *spinMutex) Lock() {
	if m.state.CompareAndSwap(0, 1) {
		return
	}
	m.lockSlow()
}

func (m *spinMutex) lockSlow() {
	for spins := 0; ; spins++ {
		if m.state.Load() == 0 && m.state.CompareAndSwap(0, 1) {
			return
		}
		if spins > 8 {
			goruntime.Gosched()
		}
	}
}

func (m *spinMutex) Unlock() { m.state.Store(0) }

// objState is one object's detector state: its parked traps, its near-miss
// ring (TSVD) or epoch ring (TSVDHB), and the single-writer tracking that
// lets the hot path skip the scan entirely while only one thread has ever
// touched the object. Everything inside is guarded by mu; the struct itself
// lives in the runtime's lock-free object registry, so two accesses to the
// same object always synchronize on the same mutex (what makes a report
// red-handed-sound) while unrelated objects share nothing — not even a hash
// stripe, which is what the former shard table made them share.
type objState struct {
	mu    spinMutex
	traps []*trap
	// hist holds TSVD's shared-mode near-miss ring; hb holds TSVDHB's epoch
	// ring. Only the one the active variant uses is ever populated.
	hist *objHistory
	hb   *hbHistory
	// writer implements the single-writer tracking: 0 = untouched, a thread
	// id = only that thread has ever recorded here, writerShared = at least
	// two threads have (sticky — the mutex protocol applies forever after).
	// While single-writer, a same-thread access can skip the ring scan (it
	// would match nothing: every entry fails the different-thread test), and
	// TSVD records through the lock-free publication ring below. All
	// transitions happen under mu; the fast path only loads.
	writer atomic.Int64
	// fast is TSVD's single-writer publication ring. Non-nil exactly while
	// writer holds a thread id (TSVD only); closed and drained into hist at
	// the takeover by a second thread.
	fast atomic.Pointer[pubRing]
	// retired counts admitted TSVD calls on this object that are no longer
	// represented by the fast ring's publication counter: shared-mode
	// appends, plus publications folded out by ring rotation and takeover.
	// snapshotStats sums retired + the live ring counts across objects —
	// the publication CAS doubles as the OnCalls counter, so the lock-free
	// path touches no separate statistics atomic.
	retired atomic.Int64
}

// writerShared marks an object permanently in shared (mutex-protocol) mode.
const writerShared = -1

// noteWriterLocked updates the single-writer tracking for an access by tid
// and reports whether the ring scan must run (true once a second thread is
// involved). Caller holds os.mu. Used by the variants that record under the
// lock unconditionally (TSVDHB); TSVD's recordSlow has its own transition
// handling because it must also close and drain the publication ring.
func (os *objState) noteWriterLocked(tid ids.ThreadID) (scan bool) {
	w := os.writer.Load()
	scan = w == writerShared || (w != 0 && w != int64(tid))
	if w == 0 {
		os.writer.Store(int64(tid))
	} else if w != int64(tid) && w != writerShared {
		os.writer.Store(writerShared)
	}
	return scan
}

// pubRing is the single-writer publication ring: an append-only entry array
// whose publication counter advances by one CAS per recorded access. The
// owning thread writes the entry with plain stores and publishes it with the
// CAS; any other party (takeover, rotation bookkeeping, statistics) reads the
// counter atomically and only ever touches entries strictly below it, so the
// owner's in-flight slot is never examined. Closing the ring (setting
// ringClosed via CAS under the object's mutex) makes every later publication
// CAS fail, which bounces the owner onto the mutex path — after which the
// entries below the closed count are immutable and safe to drain.
type pubRing struct {
	// pub is the number of published entries, with ringClosed or'ed in once
	// the ring is closed by a takeover.
	pub atomic.Uint64
	// base is the publication count already folded into objState.retired by
	// rotations; the ring's live contribution is pub&^ringClosed - base.
	base    atomic.Int64
	entries []histEntry
}

const ringClosed = uint64(1) << 63

// newPubRing sizes the entry array so rotations stay rare relative to the
// scan window: at least eight windows, at least 64 entries.
func newPubRing(window int) *pubRing {
	n := 64
	if w := 8 * window; w > n {
		n = w
	}
	return &pubRing{entries: make([]histEntry, n)}
}

// threadState is one thread's detector state, created on first sighting and
// then owned by that thread: the plain fields are only ever read and written
// by the owning goroutine, the atomics are written by the owner and read by
// snapshot/metrics scrapes. Keeping the per-thread counters here — instead
// of on shared cache lines — is what makes the contended OnCall path scale:
// every thread bumps its own line.
type threadState struct {
	// onCalls / sampledOut are this thread's contributions to the global
	// counters; snapshotStats sums them across threads.
	onCalls    atomic.Int64
	sampledOut atomic.Int64

	// rng is the thread's private xorshift state for the sampling gate
	// (docs/SAMPLING.md).
	rng uint64

	// cachedObj/cachedState short-circuit the object-registry probe while a
	// thread stays on one object (the common loop shape).
	cachedObj   ids.ObjectID
	cachedState *objState

	// cachedRing/cachedRingObj short-circuit TSVD's single-writer
	// publication: while this thread owns cachedRingObj's publication ring,
	// the fast path goes straight from these fields to the publication CAS,
	// skipping the object state's writer and ring probes. The cache is only
	// ever set by recordSlow for a ring this thread owns under the object's
	// mutex; ownership ends exclusively by ring closure (ringClosed, sticky),
	// so a stale entry fails the closed-bit check or the CAS and falls back
	// to recordSlow, which re-caches or clears it.
	cachedRing    *pubRing
	cachedRingObj ids.ObjectID

	// phaseSteady caches this thread's packed steady-state value for the
	// phase ring (tid<<32 | steady), so OnCall's sequential-phase check is
	// one load and one compare against the ring's word. Zero means "not
	// yet computed"; it can never equal a live ring word because the ring
	// state is seeded non-zero and every observed state carries count ≥ 1.
	// observe's fallback path fills it in.
	phaseSteady uint64

	// --- TSVD happens-before inference (§3.4.4), owner-only ---
	// lastAccess starts at the noAccessYet sentinel, which makes the
	// inter-access gap hugely negative until the first admitted access —
	// inferHB's threshold check then rejects it without a separate
	// has-accessed flag (and store) on the hot path.
	lastAccess time.Duration
	// ownDelay accumulates delay injected into this thread since its last
	// access, so a self-inflicted gap is not attributed to another thread's
	// delay during HB inference.
	ownDelay time.Duration
	// hbDeadline caches lastAccess + ownDelay + δ_hb so the OnCall guard is
	// one load and one compare. It must never exceed that sum (inferHB would
	// miss a qualifying gap) but may run early — inferHB re-derives the gap
	// from the authoritative fields, so a conservative zero (fresh threads,
	// states fabricated by tests) only costs a wasted call.
	hbDeadline time.Duration
	// inherits carries the k_hb-access happens-after windows (§3.4.4).
	inherits []inheritance

	// --- TSVDHB vector-clock slot (§3.5), split so the per-TSVD-point tick
	// is allocation-free: epoch is the thread's own component (one atomic
	// add); rest holds components learned from other threads; memo caches
	// the last materialized full clock so repeated handovers without
	// intervening ticks reuse one tree reference. Ticks and adoptions happen
	// only on the owning thread; cross-thread readers see an immutable
	// snapshot that is at worst a few events stale.
	epoch atomic.Uint64
	rest  vclock.Atomic
	memo  atomic.Pointer[clockMemo]
}

type clockMemo struct {
	epoch uint64
	tree  vclock.Tree
}

// tick advances the own clock component and returns the new epoch.
func (c *threadState) tick() uint64 { return c.epoch.Add(1) }

// known returns the components learned from other threads. This is all the
// OnCall epoch test needs (entries from the own thread are skipped), so the
// hot path never materializes a full clock.
func (c *threadState) known() vclock.Tree { return c.rest.Load() }

// treeFor materializes the full clock of thread `own`: rest overlaid with
// the current epoch. Called at synchronization operations only.
func (c *threadState) treeFor(own int64) vclock.Tree {
	e := c.epoch.Load()
	t := c.rest.Load()
	if t.Get(own) == e {
		return t
	}
	if m := c.memo.Load(); m != nil && m.epoch == e {
		return m.tree
	}
	full := t.Set(own, e)
	c.memo.Store(&clockMemo{epoch: e, tree: full})
	return full
}

// adopt merges an incoming clock (a fork/join/lock handover) into the
// thread's learned components. Runs on the owning thread.
func (c *threadState) adopt(own int64, incoming vclock.Tree) {
	cur := c.treeFor(own)
	if vclock.SameRef(cur, incoming) {
		return
	}
	c.memo.Store(nil)
	c.rest.Store(vclock.Join(cur, incoming))
}

// coverTable is the dense per-site coverage flag table, indexed by
// ids.SiteID. Bit 0: the site executed at all; bit 1: it executed during a
// concurrent phase. The fully-marked common case costs one load; every
// transition (and growth) happens under coverMu, so the grow-copy can never
// lose a concurrent flag store.
type coverTable []atomic.Uint32

const (
	coverSeen       = 1
	coverConcurrent = 2
)

// runtime is the state shared by every detector variant: configuration,
// time source, the site registry, the per-object and per-thread registries,
// delay budgets, statistics and the report collector. Detector-specific
// state lives in the variant structs. There is no global lock and no hashing
// on the admitted fast path beyond two lock-free integer-keyed probes:
// per-object state hangs off a lock-free object registry, per-thread state
// (including the hot counters) off a thread registry, per-site state
// (coverage, sampler admission) is indexed directly by dense SiteIDs, and
// injected delays always sleep outside every lock so any number of traps can
// be parked concurrently (§3.4.6 "Parallel delay injection").
// docs/PERFORMANCE.md documents the full cost model.
type runtime struct {
	cfg   config.Config
	clk   clock.Clock
	start time.Time
	// realClock marks clk as the plain wall clock, letting now() call
	// time.Since directly instead of through the interface — the hottest
	// call in the detector devirtualized.
	realClock bool
	// fastClock selects the calibrated TSC time source (internal/fasttime)
	// for the real clock: roughly half the cost of the vDSO read behind
	// time.Since, which profiles as the single largest item on the OnCall
	// fast path. Only set when fasttime's gating (kernel-validated TSC,
	// sane calibration) passed; startTicks is the detector's epoch.
	fastClock  bool
	startTicks uint64

	// sites interns (location, class, method, kind) tuples into the dense
	// SiteIDs every per-site structure is indexed by. Shared across
	// detectors when config.Config.Sites is set.
	sites *sites.Registry

	// objs is the per-object state registry (lock-free integer-keyed reads).
	objs intmap.Map[objState]
	// threads is the per-thread state registry, shared by every variant.
	threads intmap.Map[threadState]

	stats   atomicStats
	reports *report.Collector

	// met is the live metrics sink, nil unless WithDetectorMetrics was
	// given. Like the tracer, every hook site is nil-safe and sits on
	// detector action paths only — the conflict-free fast path crosses no
	// metrics hook; the scrape-time counter views read the atomics above
	// and add no hot-path work at all.
	met *DetectorMetrics

	// tr is the event tracer, nil unless cfg.Trace is set. Every emission
	// site is nil-safe, sits off the conflict-free fast path (events fire
	// only on detector actions: near misses, delays, prunes, violations),
	// and writes scalars into a preallocated striped ring — the tracer adds
	// no allocation anywhere in OnCall. docs/OBSERVABILITY.md has the
	// schema; the event counts reconcile exactly with atomicStats.
	tr *trace.Tracer

	// parked counts currently registered traps process-wide. The hot path
	// skips the object's trap scan entirely while it is zero — on a
	// conflict-free workload OnCall never touches the trap table at all.
	parked atomic.Int64

	// budgets hands out the per-thread delay budgets (§4 runtime feature
	// 2) from a concurrent map; each Budget is internally atomic.
	budgets clock.BudgetTable

	// cover is the dense per-site coverage flag table; covered keeps the
	// op-keyed records behind it so the public counters stay op-distinct
	// (an op can map to one site per kind). The common fully-marked case is
	// one lock-free load of cover; covered is only probed on transitions.
	coverMu sync.Mutex
	cover   atomic.Pointer[coverTable]
	covered intmap.Map[locCover]

	// rng drives every probabilistic decision. Draws only happen for
	// eligible delay locations (rare) and in the random variants, so one
	// small lock suffices; the TSVD hot path never takes it.
	rngMu sync.Mutex
	rng   *rand.Rand

	// mode is the production sampling tier (docs/SAMPLING.md). ModeFull is
	// the zero value; ModeObserveOnly suppresses sleeps in injectDelay;
	// ModeSampled gates analysis through samp.
	mode config.Mode
	// samp is the per-site admission gate and its adaptive overhead
	// controller, non-nil only in ModeSampled. The gate sits after the
	// parked-trap check — red-handed catching is never sampled out.
	samp *sampler.Sampler
	// samplerOp is the interned "sampler" pseudo-location carried by
	// sampler_throttle trace events (the schema requires a nonzero op_a).
	samplerOp ids.OpID

	// Effective (time-scaled) durations, precomputed.
	delayTime      time.Duration
	nearMissWindow time.Duration
	maxDelay       time.Duration
	// hbThreshold is δ_hb·delayTime, precomputed so the hot path does no
	// floating-point work.
	hbThreshold time.Duration
}

// init prepares r in place. (runtime holds locks and atomics, so it is
// initialized through a pointer rather than returned by value.)
func (r *runtime) init(cfg config.Config, o options) {
	r.cfg = cfg
	r.clk = o.clk
	_, r.realClock = o.clk.(clock.Real)
	r.start = o.clk.Now()
	if r.realClock && fasttime.Enabled() {
		r.fastClock = true
		r.startTicks = fasttime.Ticks()
	}
	r.sites = cfg.Sites
	if r.sites == nil {
		r.sites = sites.New()
	}
	r.reports = report.NewCollector()
	r.met = o.metrics
	r.rng = rand.New(rand.NewSource(cfg.Seed))
	r.delayTime = cfg.EffectiveDelay()
	r.nearMissWindow = cfg.EffectiveNearMissWindow()
	r.maxDelay = cfg.EffectiveMaxDelayPerThread()
	r.hbThreshold = time.Duration(cfg.HBBlockThreshold * float64(r.delayTime))
	r.budgets = clock.BudgetTable{Max: r.maxDelay}
	r.mode = cfg.Mode
	if cfg.Mode == config.ModeSampled {
		r.samp = sampler.New(sampler.Params{
			BaseProbability: cfg.SampleProbability,
			OverheadTarget:  cfg.OverheadTarget,
			Interval:        cfg.EffectiveSamplerInterval(),
		})
		r.samplerOp = ids.InternKey("sampler")
	}
	if cfg.Trace {
		r.tr = trace.New(cfg.TraceBufferSize)
	}
}

// now returns the time since detector start. Safe without any lock. The
// production wall clock reads the calibrated TSC when available (one RDTSC
// plus a fixed-point multiply) and the vDSO otherwise; test clocks go
// through the interface. Split so the TSC path inlines into OnCall.
func (r *runtime) now() time.Duration {
	if r.fastClock {
		return fasttime.SinceTicks(r.startTicks)
	}
	return r.nowSlow()
}

func (r *runtime) nowSlow() time.Duration {
	if r.realClock {
		return time.Since(r.start)
	}
	return r.clk.Since(r.start)
}

// resolveSite fills in a dense site id for accesses that arrive without one
// (the legacy string path after interning, and fabricated test accesses):
// the registry's op-keyed fallback, one lock-free probe after the first call
// per (op, kind). Accesses from migrated instrumentation carry their SiteID
// already and skip this entirely.
func (r *runtime) resolveSite(a *Access) {
	if a.Site == 0 {
		a.Site = r.sites.ForOpKind(a.Op, a.Kind == KindWrite)
	}
}

// threadStateFor returns t's state, creating it on first use. The returned
// pointer's plain fields are only ever dereferenced by t's goroutine. The
// found case is a single lock-free probe with no closure setup.
func (r *runtime) threadStateFor(t ids.ThreadID) *threadState {
	if st := r.threads.Get(int64(t)); st != nil {
		return st
	}
	return r.newThreadState(t)
}

func (r *runtime) newThreadState(t ids.ThreadID) *threadState {
	st, _ := r.threads.GetOrCreate(int64(t), func() *threadState {
		return &threadState{
			rng:        sampler.SeedRand(r.cfg.Seed, int64(t)),
			lastAccess: noAccessYet,
		}
	})
	return st
}

// noAccessYet is lastAccess's value before a thread's first admitted access:
// large enough that any gap computed against it is hugely negative (so HB
// inference rejects it), small enough that the arithmetic cannot overflow.
const noAccessYet = time.Duration(1) << 60

// objStateFor returns obj's state, creating it on first use. When st is the
// calling thread's state the lookup is cached there: a thread looping on one
// object (the common shape) pays two compares instead of a registry probe.
func (r *runtime) objStateFor(st *threadState, obj ids.ObjectID) *objState {
	if st != nil && st.cachedState != nil && st.cachedObj == obj {
		return st.cachedState
	}
	os, _ := r.objs.GetOrCreate(int64(obj), func() *objState { return &objState{} })
	if st != nil {
		st.cachedObj, st.cachedState = obj, os
	}
	return os
}

// randFloat draws from the seeded source. Callers hold no other runtime
// lock ordering obligations; rngMu is a leaf lock.
func (r *runtime) randFloat() float64 {
	r.rngMu.Lock()
	f := r.rng.Float64()
	r.rngMu.Unlock()
	return f
}

// randDurationUpTo draws uniformly from (0, d].
func (r *runtime) randDurationUpTo(d time.Duration) time.Duration {
	r.rngMu.Lock()
	v := r.rng.Int63n(int64(d))
	r.rngMu.Unlock()
	return time.Duration(v) + 1
}

// randUint64 draws 64 random bits from the seeded source. Used only by the
// random variants' sampling gate; TSVD/TSVDHB use per-thread xorshift states
// instead to keep their hot path off rngMu.
func (r *runtime) randUint64() uint64 {
	r.rngMu.Lock()
	v := r.rng.Uint64()
	r.rngMu.Unlock()
	return v
}

// sampleTick runs the adaptive-sampling controller if its interval has
// elapsed, recording every adjustment in the stats and the trace. Nil-safe;
// called from OnCall tails in ModeSampled.
func (r *runtime) sampleTick(now time.Duration) {
	if r.samp == nil {
		return
	}
	if adj, ok := r.samp.Tick(now); ok {
		r.stats.samplerThrottles.Add(1)
		r.tr.Emit(trace.KindSamplerThrottle, 0, 0, r.samplerOp, 0, now, adj.Spent)
	}
}

// side builds one report side, resolving the API strings from the site
// registry — report time is the only place the detector touches site
// metadata strings at all.
func (r *runtime) side(thread ids.ThreadID, op ids.OpID, site ids.SiteID, kind Kind, stack string) report.Side {
	info := r.sites.Info(site)
	return report.Side{
		Thread: thread,
		Op:     op,
		Site:   site,
		Write:  kind == KindWrite,
		Class:  info.Class,
		Method: info.Method,
		Stack:  stack,
	}
}

// checkForTraps implements check_for_trap (Figure 5 line 2): it scans the
// traps registered on a's object and reports a violation for every
// conflicting one. Caller holds os.mu, where os is a.Obj's state — the same
// mutex the trapped thread registered under, which is what keeps the
// no-false-positives argument intact: both threads are provably inside
// conflicting calls on the same object at the same moment. It returns the
// pair keys of the violations found so variants can prune them from their
// trap sets (outside the object lock).
func (r *runtime) checkForTraps(os *objState, a Access, stackOf func() string) []report.PairKey {
	var found []report.PairKey
	for _, t := range os.traps {
		if t.access.Thread == a.Thread || !Conflicts(t.access.Kind, a.Kind) {
			continue
		}
		r.stats.violations.Add(1)
		v := report.Violation{
			Object:      a.Obj,
			Trapped:     r.side(t.access.Thread, t.access.Op, t.access.Site, t.access.Kind, t.stack),
			Conflicting: r.side(a.Thread, a.Op, a.Site, a.Kind, stackOf()),
			When:        r.now(),
		}
		r.reports.Add(v)
		r.tr.Emit(trace.KindTrapSprung, a.Thread, a.Obj, t.access.Op, a.Op, v.When, 0)
		t.conflict = true
		if !t.canceled {
			t.canceled = true
			close(t.cancel)
		}
		found = append(found, v.Key())
	}
	return found
}

// unregisterTrap removes t from its object's trap list. Caller holds os.mu.
func (r *runtime) unregisterTrap(os *objState, t *trap) {
	list := os.traps
	for i := range list {
		if list[i] == t {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	os.traps = list
}

// anyTrapSet reports whether some thread is currently parked, without
// taking any lock. Used by the AvoidOverlappingDelays ablation.
func (r *runtime) anyTrapSet() bool { return r.parked.Load() > 0 }

// injectDelay parks the calling thread in a trap for up to d (clipped by the
// thread's budget), sleeping outside every lock. It returns the trap (whose
// conflict flag tells the caller whether the delay was productive) and the
// nominal duration actually slept. The caller holds no locks.
//
// The trap becomes visible to other threads only once it is registered
// under the object's lock; a conflicting access that scans strictly before
// registration completes simply misses this trap — a loss of one detection
// opportunity, never a false positive. The single-mutex runtime had the
// same property: its atomicity only extended until the sleeping thread
// dropped the lock.
func (r *runtime) injectDelay(a Access, d time.Duration) (*trap, time.Duration) {
	// Observe-only mode (docs/SAMPLING.md): the detector went through its
	// whole decision — the pair is trapped, the coin flip passed — but no
	// thread sleeps. Counting the veto here, at the single funnel every
	// variant's delay goes through, is what makes the mode's "zero injected
	// delays" claim checkable: DelaysInjected stays 0 while
	// DelaysSuppressed counts the trap firings that would have happened.
	if r.mode == config.ModeObserveOnly {
		r.stats.delaysSuppressed.Add(1)
		r.tr.Emit(trace.KindDelaySuppressed, a.Thread, a.Obj, a.Op, 0, r.now(), d)
		return nil, 0
	}
	budget := r.budgets.For(int64(a.Thread))
	grant := budget.Allow(d)
	if grant <= 0 {
		return nil, 0
	}
	t := &trap{access: a, stack: ids.Stack(), cancel: make(chan struct{})}
	os := r.objStateFor(nil, a.Obj)
	os.mu.Lock()
	os.traps = append(os.traps, t)
	os.mu.Unlock()
	r.parked.Add(1)
	r.stats.delaysInjected.Add(1)
	r.met.observeDelay(grant)
	r.tr.Emit(trace.KindTrapSet, a.Thread, a.Obj, a.Op, 0, r.now(), grant)

	slept, woken := r.clk.Sleep(grant, t.cancel)

	os.mu.Lock()
	r.unregisterTrap(os, t)
	os.mu.Unlock()
	r.parked.Add(-1)
	if woken && slept < grant {
		budget.Refund(grant - slept)
	}
	if slept > grant {
		slept = grant
	}
	r.stats.totalDelay.Add(int64(slept))
	if r.samp != nil {
		r.samp.ObserveDelay(slept)
	}
	if r.tr != nil {
		at := r.now()
		r.tr.Emit(trace.KindDelayInjected, a.Thread, a.Obj, a.Op, 0, at, slept)
		if t.conflict {
			r.tr.Emit(trace.KindDelayProductive, a.Thread, a.Obj, a.Op, 0, at, slept)
		}
	}
	return t, slept
}

// locCover is one location's coverage record: existing at all means the
// location executed; the flag records whether it ever executed during a
// concurrent phase. Kept op-keyed (not site-keyed) so the public coverage
// counters stay op-distinct — an op can map to one site per kind.
type locCover struct {
	concurrent atomic.Bool
}

// markSeen updates the coverage counters for the access's site and op. The
// common fully-marked case is one lock-free load of the dense per-site flag
// table; every transition funnels through markSeenSlow, which arbitrates
// the public counters exactly once per op via the op-keyed record.
func (r *runtime) markSeen(site ids.SiteID, op ids.OpID, concurrent bool) {
	want := uint32(coverSeen)
	if concurrent {
		want |= coverConcurrent
	}
	if t := r.cover.Load(); t != nil && int(site) < len(*t) {
		if (*t)[site].Load()&want == want {
			return
		}
	}
	r.markSeenSlow(site, op, want)
}

func (r *runtime) markSeenSlow(site ids.SiteID, op ids.OpID, want uint32) {
	// Public counters first, op-keyed for exact op-distinct counting: the
	// insert and the one-way concurrent upgrade each arbitrate exactly one
	// increment regardless of how many sites the op maps to.
	c := r.covered.Get(int64(op))
	if c == nil {
		var created bool
		c, created = r.covered.GetOrCreate(int64(op), func() *locCover { return &locCover{} })
		if created {
			r.stats.locationsSeen.Add(1)
		}
	}
	if want&coverConcurrent != 0 && !c.concurrent.Load() && c.concurrent.CompareAndSwap(false, true) {
		r.stats.locationsSeenConcurrent.Add(1)
	}
	// Then the dense fast-path flags. All stores (and growth) happen under
	// coverMu, so a grow-copy can never lose a concurrent flag transition;
	// the fast path only ever loads.
	r.coverMu.Lock()
	t := r.cover.Load()
	if t == nil || int(site) >= len(*t) {
		size := 64
		if t != nil {
			size = len(*t)
		}
		for size <= int(site) {
			size *= 2
		}
		nt := make(coverTable, size)
		if t != nil {
			for i := range *t {
				nt[i].Store((*t)[i].Load())
			}
		}
		r.cover.Store(&nt)
		t = &nt
	}
	(*t)[site].Store((*t)[site].Load() | want)
	r.coverMu.Unlock()
}

// snapshotStats materializes the public counters from the atomics, the
// per-thread tallies, and the per-object publication counts (TSVD's
// admitted calls are counted by the ring publication CAS itself). It takes
// no lock: everything read here is atomic, so a live metrics scrape can
// snapshot a running detector without stalling any thread's OnCall traffic.
// A scrape racing a ring rotation or takeover can transiently misattribute
// a ring's worth of calls between retired and the live counter; at
// quiescence (which is when the exactness-asserting consumers read) the sum
// is exact.
func (r *runtime) snapshotStats() Stats {
	st := r.stats.snapshot()
	r.threads.Each(func(_ int64, ts *threadState) {
		st.OnCalls += ts.onCalls.Load()
		st.CallsSampledOut += ts.sampledOut.Load()
	})
	r.objs.Each(func(_ int64, os *objState) {
		st.OnCalls += os.retired.Load()
		if rg := os.fast.Load(); rg != nil {
			st.OnCalls += int64(rg.pub.Load()&^ringClosed) - rg.base.Load()
		}
	})
	return st
}

// atomicStats is the runtime's contention-free mirror of Stats: every
// counter is an atomic, so the hot path never serializes on a statistics
// lock and Stats() can snapshot without stopping the world. Counters
// incremented from inside a racing OnCall are exact — atomics lose nothing
// — only the cross-counter consistency of a snapshot is relaxed.
type atomicStats struct {
	onCalls                 atomic.Int64
	delaysInjected          atomic.Int64
	totalDelay              atomic.Int64 // nanoseconds
	nearMisses              atomic.Int64
	pairsAdded              atomic.Int64
	pairsPrunedHB           atomic.Int64
	pairsPrunedDecay        atomic.Int64
	violations              atomic.Int64
	locationsSeen           atomic.Int64
	locationsSeenConcurrent atomic.Int64
	sequentialSkips         atomic.Int64
	// callsSampledOut is the global skip counter used by the random
	// variants; TSVD/TSVDHB count skips per thread (threadState.sampledOut)
	// and snapshotStats sums both.
	callsSampledOut  atomic.Int64
	delaysSuppressed atomic.Int64
	samplerThrottles atomic.Int64
	nearMissGaps     [len(GapHistogram{})]atomic.Int64
}

// observeGap adds one near-miss gap to the histogram.
func (s *atomicStats) observeGap(d time.Duration) {
	s.nearMissGaps[gapBucket(d)].Add(1)
}

// snapshot copies the atomics into the public Stats struct.
func (s *atomicStats) snapshot() Stats {
	st := Stats{
		OnCalls:                 s.onCalls.Load(),
		DelaysInjected:          s.delaysInjected.Load(),
		TotalDelay:              time.Duration(s.totalDelay.Load()),
		NearMisses:              s.nearMisses.Load(),
		PairsAdded:              s.pairsAdded.Load(),
		PairsPrunedHB:           s.pairsPrunedHB.Load(),
		PairsPrunedDecay:        s.pairsPrunedDecay.Load(),
		Violations:              s.violations.Load(),
		LocationsSeen:           s.locationsSeen.Load(),
		LocationsSeenConcurrent: s.locationsSeenConcurrent.Load(),
		SequentialSkips:         s.sequentialSkips.Load(),
		CallsSampledOut:         s.callsSampledOut.Load(),
		DelaysSuppressed:        s.delaysSuppressed.Load(),
		SamplerThrottles:        s.samplerThrottles.Load(),
	}
	for i := range st.NearMissGaps {
		st.NearMissGaps[i] = s.nearMissGaps[i].Load()
	}
	return st
}

// phaseRing is the concurrent-phase detector of §3.4.3: conceptually a ring
// of the thread ids at the most recently executed TSVD points, with the
// execution in a concurrent phase iff the ring holds more than one distinct
// thread.
//
// The window "contains two distinct threads" exactly when the run of
// identical trailing observations is shorter than the window, so instead of
// materializing the ring the detector keeps that run length: observe is a
// handful of atomic operations with no buffer scan, O(1) in the window size
// — and in the steady single-thread state (run and count both capped) it
// performs loads only, no stores at all. §3.4.3 explicitly tolerates racy
// maintenance ("the buffer itself need not be synchronized ... TSVD only
// needs an approximate notion of concurrent phases"), so interleaved
// observers may briefly disagree on the run length — never read a torn
// value, and never contend on a lock.
type phaseRing struct {
	// window is the configured buffer size, clamped to 16 bits so run and
	// count fit their packed fields (a window beyond 65535 behaves as
	// 65535 — far past any configured value, and the heuristic saturates
	// anyway).
	window uint64
	// state packs the ring into one word — [ thread:32 | run:16 | count:16 ]
	// — so TSVD's OnCall guard resolves the steady sequential case (same
	// thread, run and count both capped at the window) with a single load
	// compared against steady. Thread ids are truncated to 32 bits, which
	// can only confuse two threads 2³² apart — ids are small counters, and
	// the phase heuristic tolerates far worse.
	state atomic.Uint64
	// steady is the packed low half of the sequential steady state:
	// window<<16 | window. The guard compares state against tid<<32|steady.
	steady uint64
}

func newPhaseRing(size int) *phaseRing {
	w := uint64(size)
	if w > 0xFFFF {
		w = 0xFFFF
	}
	p := &phaseRing{window: w, steady: w<<16 | w}
	// Seed the ring with an impossible observation (count == 0 can never
	// recur once observe has run, and the thread field is the truncation no
	// small real id reaches). This keeps the packed word non-zero for the
	// ring's whole life, so a threadState's zero-initialized phaseSteady
	// cache can never spuriously match it.
	p.state.Store(uint64(0xFFFFFFFF) << 32)
	return p
}

// observe records t and reports whether the execution is in a concurrent
// phase. (TSVD's OnCall open-codes the steady sequential case and only
// falls back here; the logic below remains the full, self-contained
// definition for that fallback, other callers and the property tests.)
func (p *phaseRing) observe(t ids.ThreadID) bool {
	tid := uint64(uint32(t))
	s := p.state.Load()
	run := uint64(1)
	if s>>32 == tid {
		if run = s >> 16 & 0xFFFF; run < p.window {
			run++
		}
	}
	c := s & 0xFFFF
	if c < p.window {
		c++
	}
	p.state.Store(tid<<32 | run<<16 | c)
	return run < c
}
