package core

import (
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/ids"
)

// TestDynamicRandomFindsHotBug: with a high injection probability the
// random baseline does catch an always-overlapping hot-path bug.
func TestDynamicRandomFindsHotBug(t *testing.T) {
	cfg := testConfig(config.AlgoDynamicRandom)
	cfg.RandomDelayProbability = 0.5
	d := mustNew(t, cfg)
	const obj = ids.ObjectID(20)
	d1 := hammer(200, time.Millisecond, func(int) { d.OnCall(acc(1, obj, 2001, KindWrite)) })
	d2 := hammer(200, time.Millisecond, func(int) { d.OnCall(acc(2, obj, 2002, KindWrite)) })
	<-d1
	<-d2
	if d.Reports().UniqueBugs() == 0 {
		t.Fatal("DynamicRandom at p=0.5 missed an always-hot bug")
	}
	if d.ExportTraps() != nil {
		t.Fatal("DynamicRandom should have no trap set to export")
	}
}

// TestDynamicRandomInjectsEverywhere: delays land in sequential phases too —
// the indiscriminate behaviour that motivates TSVD (§3.4 intro).
func TestDynamicRandomInjectsEverywhere(t *testing.T) {
	cfg := testConfig(config.AlgoDynamicRandom)
	cfg.RandomDelayProbability = 1.0
	d := mustNew(t, cfg)
	// Entirely sequential single-threaded execution.
	for i := 0; i < 20; i++ {
		d.OnCall(acc(1, 21, 2101, KindWrite))
	}
	st := d.Stats()
	if st.DelaysInjected != 20 {
		t.Fatalf("DelaysInjected = %d, want 20 (p=1, no selectivity)", st.DelaysInjected)
	}
	if d.Reports().UniqueBugs() != 0 {
		t.Fatal("sequential run produced a report")
	}
}

// TestTSVDSkipsSequentialDelays is the contrast: TSVD injects nothing in a
// single-threaded run because no dangerous pair ever forms.
func TestTSVDSkipsSequentialDelays(t *testing.T) {
	d := mustNew(t, testConfig(config.AlgoTSVD))
	for i := 0; i < 500; i++ {
		d.OnCall(acc(1, 22, 2201, KindWrite))
		d.OnCall(acc(1, 22, 2202, KindWrite))
	}
	if st := d.Stats(); st.DelaysInjected != 0 {
		t.Fatalf("TSVD injected %d delays into a sequential run", st.DelaysInjected)
	}
}

// TestStaticRandomSamplesStatically: a hot location fires at most once per
// sampling window regardless of how often it executes — unlike
// DynamicRandom, which piles delays onto the hot path (§3.3).
func TestStaticRandomSamplesStatically(t *testing.T) {
	cfg := testConfig(config.AlgoStaticRandom)
	cfg.StaticSampleProbability = 1.0 // arm deterministically
	d := mustNew(t, cfg)
	// Hot location: many executions across a few resample windows.
	const calls = 3 * resamplePeriod
	for i := 0; i < calls; i++ {
		d.OnCall(acc(1, 23, 2301, KindWrite))
	}
	st := d.Stats()
	// One firing opportunity per window (plus the initial arming), far
	// below the per-call volume DynamicRandom would produce.
	maxFires := int64(calls/resamplePeriod + 1)
	if st.DelaysInjected > maxFires {
		t.Fatalf("DelaysInjected = %d, want <= %d (static sampling)",
			st.DelaysInjected, maxFires)
	}
	if st.DelaysInjected == 0 {
		t.Fatal("static sampling never fired across three windows")
	}
}

func TestStaticRandomFindsBug(t *testing.T) {
	cfg := testConfig(config.AlgoStaticRandom)
	cfg.StaticSampleProbability = 1.0
	d := mustNew(t, cfg)
	const obj = ids.ObjectID(25)
	d1 := hammer(150, time.Millisecond, func(int) { d.OnCall(acc(1, obj, 2501, KindWrite)) })
	d2 := hammer(150, time.Millisecond, func(int) { d.OnCall(acc(2, obj, 2502, KindWrite)) })
	<-d1
	<-d2
	if d.Reports().UniqueBugs() == 0 {
		t.Fatal("StaticRandom at p=1 missed the bug")
	}
}

// --- TSVDHB ---

// TestTSVDHBFindsConcurrentBug: unordered conflicting accesses form a
// dangerous pair and get caught exactly like TSVD.
func TestTSVDHBFindsConcurrentBug(t *testing.T) {
	d := mustNew(t, testConfig(config.AlgoTSVDHB))
	const obj = ids.ObjectID(30)
	d1 := hammer(200, time.Millisecond, func(int) { d.OnCall(acc(1, obj, 3001, KindWrite)) })
	d2 := hammer(200, time.Millisecond, func(int) { d.OnCall(acc(2, obj, 3002, KindWrite)) })
	<-d1
	<-d2
	if d.Reports().UniqueBugs() == 0 {
		t.Fatal("TSVDHB missed a concurrent write-write bug")
	}
}

// TestTSVDHBForkJoinOrders: accesses ordered by fork or join never enter
// the trap set.
func TestTSVDHBForkJoinOrders(t *testing.T) {
	d := mustNew(t, testConfig(config.AlgoTSVDHB)).(*TSVDHB)
	const obj = ids.ObjectID(31)

	// Parent writes, forks child, child writes: ordered by fork.
	d.OnCall(acc(1, obj, 3101, KindWrite))
	d.OnFork(1, 2)
	d.OnCall(acc(2, obj, 3102, KindWrite))
	// Child finishes; parent joins, then writes: ordered by join.
	d.OnJoin(1, 2)
	d.OnCall(acc(1, obj, 3103, KindWrite))

	if n := d.TrapSetSize(); n != 0 {
		t.Fatalf("fork/join-ordered accesses created %d dangerous pairs", n)
	}
	if st := d.Stats(); st.PairsPrunedHB == 0 {
		t.Fatalf("HB analysis ordered nothing: %+v", st)
	}
	if d.Reports().UniqueBugs() != 0 {
		t.Fatal("ordered accesses reported as a bug")
	}
}

// TestTSVDHBLockOrders: lock-protected accesses are HB-ordered via the
// lock's clock, so no dangerous pair forms (and no delay is wasted, unlike
// TSVD which must first infer the relationship).
func TestTSVDHBLockOrders(t *testing.T) {
	d := mustNew(t, testConfig(config.AlgoTSVDHB)).(*TSVDHB)
	const obj = ids.ObjectID(32)
	const lock = ids.ObjectID(900)

	// Serialized lock regions with conflicting accesses inside. The test
	// serializes for determinism: thread 1's region, then thread 2's.
	d.OnLockAcquire(1, lock)
	d.OnCall(acc(1, obj, 3201, KindWrite))
	d.OnLockRelease(1, lock)

	d.OnLockAcquire(2, lock)
	d.OnCall(acc(2, obj, 3202, KindWrite))
	d.OnLockRelease(2, lock)

	if n := d.TrapSetSize(); n != 0 {
		t.Fatalf("lock-ordered accesses created %d dangerous pairs", n)
	}
	if d.Stats().DelaysInjected != 0 {
		t.Fatal("TSVDHB wasted a delay on lock-ordered accesses")
	}
}

// TestTSVDHBUnmonitoredSyncMissesEdges: TSVDHB only knows about
// synchronization it monitors. Ad-hoc synchronization (here: the test's own
// channel ordering, invisible to the detector) yields a dangerous pair even
// though the accesses are actually ordered — the spurious-pair weakness of
// HB analysis (§2.3). No false *report* can result: delays alone cannot
// make ordered accesses overlap.
func TestTSVDHBUnmonitoredSyncMissesEdges(t *testing.T) {
	d := mustNew(t, testConfig(config.AlgoTSVDHB)).(*TSVDHB)
	const obj = ids.ObjectID(33)
	d.OnCall(acc(1, obj, 3301, KindWrite))
	// Real code would pass a baton through an un-instrumented channel
	// here; the detector sees nothing.
	d.OnCall(acc(2, obj, 3302, KindWrite))
	if n := d.TrapSetSize(); n == 0 {
		t.Fatal("expected a (spurious) dangerous pair for unmonitored sync")
	}
	if d.Reports().UniqueBugs() != 0 {
		t.Fatal("spurious pair must not produce a report")
	}
}

// TestTSVDHBTransitiveOrder: fork edges compose transitively through chains
// of tasks.
func TestTSVDHBTransitiveOrder(t *testing.T) {
	d := mustNew(t, testConfig(config.AlgoTSVDHB)).(*TSVDHB)
	const obj = ids.ObjectID(34)
	d.OnCall(acc(1, obj, 3401, KindWrite))
	d.OnFork(1, 2)
	d.OnFork(2, 3)
	d.OnCall(acc(3, obj, 3402, KindWrite))
	if n := d.TrapSetSize(); n != 0 {
		t.Fatalf("transitively ordered accesses created %d pairs", n)
	}
}

// TestTSVDHBJoinReferenceFastPath: joining a task that performed no TSVD
// points leaves the waiter's clock untouched (same reference).
func TestTSVDHBJoinReferenceFastPath(t *testing.T) {
	d := mustNew(t, testConfig(config.AlgoTSVDHB)).(*TSVDHB)
	d.OnCall(acc(1, 35, 3501, KindWrite))
	d.OnFork(1, 2)
	// Task 2 does nothing instrumented.
	d.OnJoin(1, 2)
	w := d.threadTree(1)
	c := d.threadTree(2)
	if !sameClockRef(w, c) {
		t.Fatal("join of an untouched task did not share the clock reference")
	}
}

func TestTSVDHBExportAndSeedTraps(t *testing.T) {
	cfg := testConfig(config.AlgoTSVDHB)
	d := mustNew(t, cfg).(*TSVDHB)
	const obj = ids.ObjectID(36)
	d.OnCall(acc(1, obj, 3601, KindWrite))
	d.OnCall(acc(2, obj, 3602, KindWrite)) // concurrent: pair added
	traps := d.ExportTraps()
	if len(traps) != 1 {
		t.Fatalf("ExportTraps = %v, want one pair", traps)
	}
	d2 := mustNew(t, cfg, WithInitialTraps(traps)).(*TSVDHB)
	if d2.TrapSetSize() != 1 {
		t.Fatal("seeded trap set empty")
	}
}
