package core

import (
	"math"
	"sync"
	"sync/atomic"
)

// This file implements the insert-only concurrent map the OnCall hot path
// keys by integer ids: location ids to coverage records, thread/lock ids to
// per-entity state. sync.Map would serve, but its interface{} keys force a
// typehash call and an equality check through reflection metadata on every
// lookup; at OnCall frequencies those dominate the probe itself (see
// docs/PERFORMANCE.md). The container instead uses open addressing over
// int64 keys with lock-free reads:
//
//   - lookups are a Fibonacci hash plus a short linear probe over atomic
//     slots — no locks, no interface boxing, no allocation;
//   - inserts are rare (first sighting of a location / thread / lock) and
//     serialize on one mutex, which also guards growth;
//   - deletion does not exist, which is what makes the lock-free read sound:
//     a published slot never changes its key again.
//
// Growth copies into a larger table and atomically swaps the table pointer.
// A reader racing the swap scans the old table, which stays internally
// consistent forever; it can only miss a concurrent insert, which the
// callers' get-then-lock pattern already handles.

// intSlotEmpty marks an unused slot. MinInt64 is unreachable for real ids
// (ids are small positive counters).
const intSlotEmpty = math.MinInt64

// fibScramble spreads sequential ids across the table (same multiplier as
// the runtime's shard selection).
const fibScramble = 0x9E3779B97F4A7C15

// atomicMap is an insert-only hash map from int64 keys to *V with lock-free
// lookups. Values are created once and never replaced, so callers may cache
// and mutate them according to their own synchronization discipline.
type atomicMap[V any] struct {
	table atomic.Pointer[amTable[V]]
	mu    sync.Mutex
	count int
}

type amTable[V any] struct {
	mask uint64
	keys []atomic.Int64
	vals []atomic.Pointer[V]
}

func newAMTable[V any](size int) *amTable[V] {
	t := &amTable[V]{
		mask: uint64(size - 1),
		keys: make([]atomic.Int64, size),
		vals: make([]atomic.Pointer[V], size),
	}
	for i := range t.keys {
		t.keys[i].Store(intSlotEmpty)
	}
	return t
}

func (t *amTable[V]) probe(k int64) uint64 {
	return (uint64(k) * fibScramble) & t.mask
}

// get returns the value stored for k, or nil. Lock-free.
func (m *atomicMap[V]) get(k int64) *V {
	t := m.table.Load()
	if t == nil {
		return nil
	}
	for i := t.probe(k); ; i = (i + 1) & t.mask {
		switch t.keys[i].Load() {
		case k:
			return t.vals[i].Load()
		case intSlotEmpty:
			return nil
		}
	}
}

// getOrCreate returns k's value, calling mk to build it on first insertion,
// and reports whether this call created it. Concurrent callers for one key
// agree on a single winner; exactly one receives created == true.
func (m *atomicMap[V]) getOrCreate(k int64, mk func() *V) (v *V, created bool) {
	if v := m.get(k); v != nil {
		return v, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.table.Load()
	if t == nil {
		t = newAMTable[V](64)
		m.table.Store(t)
	}
	i := t.probe(k)
	for {
		kk := t.keys[i].Load()
		if kk == k {
			return t.vals[i].Load(), false
		}
		if kk == intSlotEmpty {
			break
		}
		i = (i + 1) & t.mask
	}
	v = mk()
	// Publish the value before the key: a lock-free reader that sees the
	// key must see the value.
	t.vals[i].Store(v)
	t.keys[i].Store(k)
	m.count++
	if uint64(m.count)*4 > (t.mask+1)*3 {
		bigger := newAMTable[V](int(t.mask+1) * 2)
		for j := range t.keys {
			if kk := t.keys[j].Load(); kk != intSlotEmpty {
				p := bigger.probe(kk)
				for bigger.keys[p].Load() != intSlotEmpty {
					p = (p + 1) & bigger.mask
				}
				bigger.vals[p].Store(t.vals[j].Load())
				bigger.keys[p].Store(kk)
			}
		}
		m.table.Store(bigger)
	}
	return v, true
}
