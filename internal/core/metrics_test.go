package core

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/ids"
	"repro/internal/metrics"
)

// scrapeValues parses a Prometheus exposition into series-line → value.
func scrapeValues(t *testing.T, reg *metrics.Registry) map[string]float64 {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad series line %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestDetectorMetricsReconcileWithStats is the in-package version of the
// cmd/tsvd-metrics-check contract: every exported counter equals the
// corresponding Stats field exactly, and the histogram counts equal the
// counters they are co-located with.
func TestDetectorMetricsReconcileWithStats(t *testing.T) {
	reg := metrics.NewRegistry()
	m := NewDetectorMetrics(reg)
	d := mustNew(t, testConfig(config.AlgoTSVD), WithDetectorMetrics(m))

	const obj = ids.ObjectID(1)
	d1 := hammer(100, time.Millisecond, func(int) { d.OnCall(acc(1, obj, 101, KindWrite)) })
	d2 := hammer(100, time.Millisecond, func(int) { d.OnCall(acc(2, obj, 102, KindWrite)) })
	<-d1
	<-d2

	st := d.Stats()
	got := scrapeValues(t, reg)
	for name, want := range map[string]int64{
		"tsvd_detector_on_calls_total":                 st.OnCalls,
		"tsvd_detector_delays_injected_total":          st.DelaysInjected,
		"tsvd_detector_near_misses_total":              st.NearMisses,
		"tsvd_detector_pairs_added_total":              st.PairsAdded,
		"tsvd_detector_pairs_pruned_hb_total":          st.PairsPrunedHB,
		"tsvd_detector_violations_total":               st.Violations,
		"tsvd_detector_locations_seen_total":           st.LocationsSeen,
		"tsvd_detector_instances":                      1,
		"tsvd_detector_near_miss_gap_seconds_count":    st.NearMisses,
		"tsvd_detector_granted_delay_seconds_count":    st.DelaysInjected,
		"tsvd_detector_trap_set_occupancy_pairs_count": st.PairsAdded,
	} {
		if got[name] != float64(want) {
			t.Errorf("%s = %v, want %d (stats %+v)", name, got[name], want, st)
		}
	}
	if st.NearMisses == 0 || st.DelaysInjected == 0 {
		t.Fatalf("workload exercised nothing: %+v", st)
	}
	if ts, ok := d.(interface{ TrapSetSize() int }); ok {
		if got["tsvd_detector_trap_set_pairs"] != float64(ts.TrapSetSize()) {
			t.Errorf("trap_set_pairs = %v, want %d",
				got["tsvd_detector_trap_set_pairs"], ts.TrapSetSize())
		}
	}
}

// TestDetectorMetricsAggregateAcrossDetectors: one DetectorMetrics attached
// to two detectors exports the sum, live.
func TestDetectorMetricsAggregateAcrossDetectors(t *testing.T) {
	reg := metrics.NewRegistry()
	m := NewDetectorMetrics(reg)
	da := mustNew(t, testConfig(config.AlgoTSVD), WithDetectorMetrics(m))
	db := mustNew(t, testConfig(config.AlgoTSVDHB), WithDetectorMetrics(m))

	for i := 0; i < 10; i++ {
		da.OnCall(acc(1, 1, 101, KindRead))
		db.OnCall(acc(1, 2, 201, KindRead))
		db.OnCall(acc(1, 2, 202, KindRead))
	}
	got := scrapeValues(t, reg)
	want := da.Stats().OnCalls + db.Stats().OnCalls
	if got["tsvd_detector_on_calls_total"] != float64(want) {
		t.Fatalf("on_calls_total = %v, want %d", got["tsvd_detector_on_calls_total"], want)
	}
	if got["tsvd_detector_instances"] != 2 {
		t.Fatalf("instances = %v, want 2", got["tsvd_detector_instances"])
	}
}

// TestDetectorMetricsNilIsFree: a nil DetectorMetrics (metrics off) changes
// nothing about detector behavior.
func TestDetectorMetricsNilIsFree(t *testing.T) {
	d := mustNew(t, testConfig(config.AlgoTSVD), WithDetectorMetrics(nil))
	for i := 0; i < 100; i++ {
		d.OnCall(acc(ids.ThreadID(1+i%2), 1, ids.OpID(101+i%2), KindWrite))
	}
	if d.Stats().OnCalls != 100 {
		t.Fatalf("OnCalls = %d", d.Stats().OnCalls)
	}
}
