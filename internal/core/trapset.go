package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/report"
	"repro/internal/trace"
)

// trapSet is the dynamic set of dangerous location pairs (§3.4.1) together
// with the per-location delay probabilities of the decay scheme (§3.4.5).
// It is shared by TSVD and TSVDHB, which differ only in how pairs enter
// (near-miss vs. vector-clock concurrency) and leave (HB inference vs. HB
// analysis) the set.
//
// The set is internally synchronized — one of the sharded runtime's small
// cold-path locks. Mutations (pair churn, decay) are rare relative to
// OnCall volume; the per-call should_delay check reads through eligible()
// under an RLock, and even that is skipped entirely while the lock-free
// live counter reads zero (the common case on healthy code).
type trapSet struct {
	mu sync.RWMutex
	// live mirrors len(pairs) so the hot path can skip the lock when the
	// set is empty.
	live atomic.Int64
	// pairs is the current trap set.
	pairs map[report.PairKey]struct{}
	// locProb holds P_loc; a location appears iff it participates in at
	// least one pair, present or past.
	locProb map[ids.OpID]float64
	// locPairs indexes pairs by endpoint for O(pairs-of-loc) updates.
	locPairs map[ids.OpID]map[report.PairKey]struct{}
	// suppressed pairs are never (re-)added: violations already reported
	// and pairs pruned by happens-before.
	suppressed map[report.PairKey]struct{}
}

func newTrapSet() trapSet {
	return trapSet{
		pairs:      map[report.PairKey]struct{}{},
		locProb:    map[ids.OpID]float64{},
		locPairs:   map[ids.OpID]map[report.PairKey]struct{}{},
		suppressed: map[report.PairKey]struct{}{},
	}
}

// add inserts a dangerous pair unless it is suppressed or already present.
// Both endpoints' probabilities reset to 1 (§3.4.1: "TSVD sets P_loc = 1
// when a dangerous pair containing loc is added").
func (s *trapSet) add(key report.PairKey, stats *atomicStats, met *DetectorMetrics) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addLocked(key, stats, met)
}

func (s *trapSet) addLocked(key report.PairKey, stats *atomicStats, met *DetectorMetrics) bool {
	if _, dead := s.suppressed[key]; dead {
		return false
	}
	if _, ok := s.pairs[key]; ok {
		return false
	}
	s.pairs[key] = struct{}{}
	s.live.Store(int64(len(s.pairs)))
	stats.pairsAdded.Add(1)
	met.observeOccupancy(len(s.pairs))
	for _, loc := range []ids.OpID{key.A, key.B} {
		s.locProb[loc] = 1
		m := s.locPairs[loc]
		if m == nil {
			m = map[report.PairKey]struct{}{}
			s.locPairs[loc] = m
		}
		m[key] = struct{}{}
	}
	return true
}

// remove deletes a pair from the set (it may be re-added later unless also
// suppressed).
func (s *trapSet) remove(key report.PairKey) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.removeLocked(key)
}

func (s *trapSet) removeLocked(key report.PairKey) bool {
	if _, ok := s.pairs[key]; !ok {
		return false
	}
	delete(s.pairs, key)
	s.live.Store(int64(len(s.pairs)))
	for _, loc := range []ids.OpID{key.A, key.B} {
		if m := s.locPairs[loc]; m != nil {
			delete(m, key)
			if len(m) == 0 {
				delete(s.locPairs, loc)
			}
		}
	}
	return true
}

// suppress permanently bans a pair (violation found, or HB-inferred) and
// removes it if present.
func (s *trapSet) suppress(key report.PairKey) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.suppressLocked(key)
}

func (s *trapSet) suppressLocked(key report.PairKey) bool {
	s.suppressed[key] = struct{}{}
	return s.removeLocked(key)
}

// empty reports whether no live pair exists, without taking the lock. The
// hot path consults it before anything else: while the set is empty no
// location is an eligible delay site, so should_delay is a single atomic
// load.
func (s *trapSet) empty() bool { return s.live.Load() == 0 }

// eligible reports whether loc participates in a live pair and, if so, its
// current delay probability P_loc — the two inputs of should_delay, under
// one read-lock acquisition.
func (s *trapSet) eligible(loc ids.OpID) (float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.locPairs[loc]) == 0 {
		return 0, false
	}
	if p, ok := s.locProb[loc]; ok {
		return p, true
	}
	return 1, true
}

// decayAfterFailedDelay implements §3.4.5: a delay at loc that exposed no
// conflict decays loc and every location currently paired with it by
// P ← P·(1-factor). Locations whose probability falls below prune are
// removed from the trap set together with all their pairs; each suppressed
// pair is emitted to tr (nil-safe) stamped with the caller's clock at.
func (s *trapSet) decayAfterFailedDelay(loc ids.OpID, factor, prune float64,
	stats *atomicStats, tr *trace.Tracer, at time.Duration) {
	if factor <= 0 {
		return // Fig. 9g's pathological "no decay" configuration
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	victims := []ids.OpID{loc}
	for key := range s.locPairs[loc] {
		other := key.A
		if other == loc {
			other = key.B
		}
		if other != loc { // self-pairs decay once, not twice
			victims = append(victims, other)
		}
	}
	for _, v := range victims {
		if p, ok := s.locProb[v]; ok {
			s.locProb[v] = p * (1 - factor)
		}
	}
	for _, v := range victims {
		if s.locProb[v] >= prune {
			continue
		}
		// The location's probability hit zero: all its pairs leave the
		// trap set for good — the location proved unproductive, so a
		// later near-miss re-sighting must not resurrect it at P=1.
		for key := range s.locPairs[v] {
			if s.suppressLocked(key) {
				stats.pairsPrunedDecay.Add(1)
				tr.Emit(trace.KindPairPrunedDecay, 0, 0, key.A, key.B, at, 0)
			}
		}
	}
}

// export returns the live pairs sorted for deterministic trap files.
func (s *trapSet) export() []report.PairKey {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]report.PairKey, 0, len(s.pairs))
	for key := range s.pairs {
		out = append(out, key)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// size returns the number of live pairs.
func (s *trapSet) size() int { return int(s.live.Load()) }
