package core

import (
	"time"

	"repro/internal/config"
	"repro/internal/ids"
	"repro/internal/report"
)

// DynamicRandom (§3.2) treats every TSVD point as an eligible delay location
// and injects a delay at a random subset of dynamic occurrences: should_delay
// returns true with a small fixed probability, and the delay length itself is
// random. Hot paths therefore soak up most of the delays — the weakness
// StaticRandom and TSVD address.
type DynamicRandom struct {
	nopSyncHooks
	rt runtime
}

func newDynamicRandom(cfg config.Config, o options) *DynamicRandom {
	return &DynamicRandom{rt: newRuntime(cfg, o)}
}

// OnCall implements Detector.
func (d *DynamicRandom) OnCall(a Access) {
	d.rt.mu.Lock()
	d.rt.stats.OnCalls++
	d.rt.checkForTraps(a, ids.Stack)
	d.rt.markSeen(a.Op, false)
	if d.rt.rng.Float64() < d.rt.cfg.RandomDelayProbability {
		// "the thread sleeps for a random amount of time" — uniform in
		// (0, DelayTime].
		dur := time.Duration(d.rt.rng.Int63n(int64(d.rt.delayTime))) + 1
		d.rt.injectDelay(a, dur)
	}
	d.rt.mu.Unlock()
}

// Reports implements Detector.
func (d *DynamicRandom) Reports() *report.Collector { return d.rt.reports }

// Stats implements Detector.
func (d *DynamicRandom) Stats() Stats { return d.rt.snapshotStats() }

// ExportTraps implements Detector; random variants keep no trap set.
func (d *DynamicRandom) ExportTraps() []report.PairKey { return nil }

// StaticRandom (§3.3) emulates DataCollider: static program locations are
// sampled uniformly, irrespective of how often each executes, so cold paths
// get the same attention as hot loops.
//
// Mechanically (mirroring DataCollider's continuously replenished code
// breakpoints): every known location is armed with probability
// StaticSampleProbability per sampling window; an armed location fires a
// full-length delay on its next execution and disarms until the window
// rolls over (every resamplePeriod observed calls). Delay volume therefore
// scales with the number of static locations — the "many delay locations,
// no analysis" corner of Figure 2 — rather than with execution counts.
type StaticRandom struct {
	nopSyncHooks
	rt    runtime
	armed map[ids.OpID]bool
	calls int64
}

// resamplePeriod is how many OnCalls pass between re-arming rounds.
const resamplePeriod = 200

func newStaticRandom(cfg config.Config, o options) *StaticRandom {
	return &StaticRandom{
		rt:    newRuntime(cfg, o),
		armed: map[ids.OpID]bool{},
	}
}

// OnCall implements Detector.
func (s *StaticRandom) OnCall(a Access) {
	s.rt.mu.Lock()
	s.rt.stats.OnCalls++
	s.rt.checkForTraps(a, ids.Stack)
	s.rt.markSeen(a.Op, false)

	armed, known := s.armed[a.Op]
	if !known {
		armed = s.rt.rng.Float64() < s.rt.cfg.StaticSampleProbability
		s.armed[a.Op] = armed
	}
	s.calls++
	if s.calls%resamplePeriod == 0 {
		for op, isArmed := range s.armed {
			if !isArmed {
				s.armed[op] = s.rt.rng.Float64() < s.rt.cfg.StaticSampleProbability
			}
		}
	}
	if armed {
		s.armed[a.Op] = false // breakpoints fire once per arming
		s.rt.injectDelay(a, s.rt.delayTime)
	}
	s.rt.mu.Unlock()
}

// Reports implements Detector.
func (s *StaticRandom) Reports() *report.Collector { return s.rt.reports }

// Stats implements Detector.
func (s *StaticRandom) Stats() Stats { return s.rt.snapshotStats() }

// ExportTraps implements Detector.
func (s *StaticRandom) ExportTraps() []report.PairKey { return nil }
