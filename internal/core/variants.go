package core

import (
	"sync"

	"repro/internal/config"
	"repro/internal/ids"
	"repro/internal/report"
	"repro/internal/sites"
	"repro/internal/trace"
)

// DynamicRandom (§3.2) treats every TSVD point as an eligible delay location
// and injects a delay at a random subset of dynamic occurrences: should_delay
// returns true with a small fixed probability, and the delay length itself is
// random. Hot paths therefore soak up most of the delays — the weakness
// StaticRandom and TSVD address.
type DynamicRandom struct {
	nopSyncHooks
	rt runtime
}

func newDynamicRandom(cfg config.Config, o options) *DynamicRandom {
	d := &DynamicRandom{}
	d.rt.init(cfg, o)
	return d
}

// OnCall implements Detector.
func (d *DynamicRandom) OnCall(a Access) {
	d.rt.stats.onCalls.Add(1)
	d.rt.resolveSite(&a)
	if d.rt.parked.Load() > 0 {
		if os := d.rt.objs.Get(int64(a.Obj)); os != nil {
			os.mu.Lock()
			d.rt.checkForTraps(os, a, ids.Stack)
			os.mu.Unlock()
		}
	}
	// Sampling gate (ModeSampled, docs/SAMPLING.md) — after the trap check.
	// The random variants already pay a shared-RNG draw per call, so the
	// gate reuses that source rather than per-thread state. The controller
	// tick runs before the delay branch: delay time is charged separately
	// inside injectDelay, so nothing is counted twice.
	if d.rt.samp != nil && !d.rt.samp.Admit(a.Site, d.rt.randUint64()) {
		d.rt.stats.callsSampledOut.Add(1)
		if d.rt.samp.Capped() {
			d.rt.sampleTick(d.rt.now())
		}
		return
	}
	d.rt.markSeen(a.Site, a.Op, false)
	if d.rt.samp != nil {
		d.rt.sampleTick(d.rt.now())
	}
	if d.rt.randFloat() < d.rt.cfg.RandomDelayProbability {
		// "the thread sleeps for a random amount of time" — uniform in
		// (0, DelayTime].
		dur := d.rt.randDurationUpTo(d.rt.delayTime)
		if d.rt.tr != nil {
			d.rt.tr.Emit(trace.KindDelayPlanned, a.Thread, a.Obj, a.Op, 0, d.rt.now(), dur)
		}
		d.rt.injectDelay(a, dur)
	}
}

// Sites implements Detector.
func (d *DynamicRandom) Sites() *sites.Registry { return d.rt.sites }

// Reports implements Detector.
func (d *DynamicRandom) Reports() *report.Collector { return d.rt.reports }

// Stats implements Detector.
func (d *DynamicRandom) Stats() Stats { return d.rt.snapshotStats() }

// ExportTraps implements Detector; random variants keep no trap set.
func (d *DynamicRandom) ExportTraps() []report.PairKey { return nil }

// Tracer implements Detector.
func (d *DynamicRandom) Tracer() *trace.Tracer { return d.rt.tr }

// StaticRandom (§3.3) emulates DataCollider: static program locations are
// sampled uniformly, irrespective of how often each executes, so cold paths
// get the same attention as hot loops.
//
// Mechanically (mirroring DataCollider's continuously replenished code
// breakpoints): every known location is armed with probability
// StaticSampleProbability per sampling window; an armed location fires a
// full-length delay on its next execution and disarms until the window
// rolls over (every resamplePeriod observed calls). Delay volume therefore
// scales with the number of static locations — the "many delay locations,
// no analysis" corner of Figure 2 — rather than with execution counts.
//
// The armed table is the variant's own cross-thread state and keeps its own
// small lock; the shared runtime underneath is the lock-free one.
type StaticRandom struct {
	nopSyncHooks
	rt runtime

	mu    sync.Mutex
	armed map[ids.OpID]bool
	calls int64
}

// resamplePeriod is how many OnCalls pass between re-arming rounds.
const resamplePeriod = 200

func newStaticRandom(cfg config.Config, o options) *StaticRandom {
	s := &StaticRandom{armed: map[ids.OpID]bool{}}
	s.rt.init(cfg, o)
	return s
}

// OnCall implements Detector.
func (s *StaticRandom) OnCall(a Access) {
	s.rt.stats.onCalls.Add(1)
	s.rt.resolveSite(&a)
	if s.rt.parked.Load() > 0 {
		if os := s.rt.objs.Get(int64(a.Obj)); os != nil {
			os.mu.Lock()
			s.rt.checkForTraps(os, a, ids.Stack)
			os.mu.Unlock()
		}
	}
	// Sampling gate, mirroring DynamicRandom.
	if s.rt.samp != nil && !s.rt.samp.Admit(a.Site, s.rt.randUint64()) {
		s.rt.stats.callsSampledOut.Add(1)
		if s.rt.samp.Capped() {
			s.rt.sampleTick(s.rt.now())
		}
		return
	}
	s.rt.markSeen(a.Site, a.Op, false)
	if s.rt.samp != nil {
		s.rt.sampleTick(s.rt.now())
	}

	s.mu.Lock()
	armed, known := s.armed[a.Op]
	if !known {
		armed = s.rt.randFloat() < s.rt.cfg.StaticSampleProbability
		s.armed[a.Op] = armed
	}
	s.calls++
	if s.calls%resamplePeriod == 0 {
		for op, isArmed := range s.armed {
			if !isArmed {
				s.armed[op] = s.rt.randFloat() < s.rt.cfg.StaticSampleProbability
			}
		}
	}
	if armed {
		s.armed[a.Op] = false // breakpoints fire once per arming
	}
	s.mu.Unlock()
	if armed {
		if s.rt.tr != nil {
			s.rt.tr.Emit(trace.KindDelayPlanned, a.Thread, a.Obj, a.Op, 0, s.rt.now(), s.rt.delayTime)
		}
		s.rt.injectDelay(a, s.rt.delayTime)
	}
}

// Sites implements Detector.
func (s *StaticRandom) Sites() *sites.Registry { return s.rt.sites }

// Reports implements Detector.
func (s *StaticRandom) Reports() *report.Collector { return s.rt.reports }

// Stats implements Detector.
func (s *StaticRandom) Stats() Stats { return s.rt.snapshotStats() }

// ExportTraps implements Detector.
func (s *StaticRandom) ExportTraps() []report.PairKey { return nil }

// Tracer implements Detector.
func (s *StaticRandom) Tracer() *trace.Tracer { return s.rt.tr }
