package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/ids"
	"repro/internal/trace"
)

// TestTracerStressUnderDetector drives a traced detector from many goroutines
// making genuinely conflicting accesses — so the full emission surface fires
// (near misses, pair adds, delays, possibly violations) — while a drainer
// loops concurrently. The tracer's buffer is tiny to force overwrites. At
// quiescence, the exactness invariant must hold:
//
//	emitted == drained + dropped
//
// Run under -race this also proves every emission path is data-race-free
// against concurrent Drain/Totals.
func TestTracerStressUnderDetector(t *testing.T) {
	for _, algo := range []config.Algorithm{config.AlgoTSVD, config.AlgoTSVDHB} {
		t.Run(algo.String(), func(t *testing.T) {
			cfg := testConfig(algo)
			cfg.Trace = true
			cfg.TraceBufferSize = 64 // force drops under load
			d := mustNew(t, cfg)
			tr := d.Tracer()
			if tr == nil {
				t.Fatal("Trace enabled but detector has no tracer")
			}

			const (
				goroutines = 6
				perG       = 400
			)
			stop := make(chan struct{})
			var drainWG sync.WaitGroup
			var drained int64
			drainWG.Add(1)
			go func() {
				defer drainWG.Done()
				for {
					drained += int64(len(tr.Drain()))
					select {
					case <-stop:
						return
					default:
						time.Sleep(100 * time.Microsecond)
					}
				}
			}()

			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						// All goroutines write the same few objects from a
						// small set of static locations: a near-miss factory.
						obj := ids.ObjectID(i % 3)
						op := ids.OpID(100 + g)
						d.OnCall(acc(ids.ThreadID(g+1), obj, op, KindWrite))
					}
				}(g)
			}
			wg.Wait()
			close(stop)
			drainWG.Wait()
			drained += int64(len(tr.Drain()))

			tot := tr.Totals()
			if tot.Emitted == 0 {
				t.Fatal("conflicting workload emitted no events")
			}
			if tot.Buffered != 0 {
				t.Fatalf("buffered = %d after final drain", tot.Buffered)
			}
			if drained+tot.Dropped != tot.Emitted {
				t.Fatalf("accounting broken: drained %d + dropped %d != emitted %d",
					drained, tot.Dropped, tot.Emitted)
			}
		})
	}
}

// TestTracerDisabledMeansNil: tracing off must mean a nil tracer — the
// disabled path is the nil receiver, not an enabled-but-empty tracer.
func TestTracerDisabledMeansNil(t *testing.T) {
	for _, algo := range []config.Algorithm{
		config.AlgoTSVD, config.AlgoTSVDHB,
		config.AlgoDynamicRandom, config.AlgoStaticRandom,
	} {
		d := mustNew(t, testConfig(algo))
		if d.Tracer() != nil {
			t.Fatalf("%v: tracer present with Trace=false", algo)
		}
	}
	var nop NopDetector
	if nop.Tracer() != nil {
		t.Fatal("NopDetector has a tracer")
	}
}

// TestTracedDetectorEventsMatchStats: on a deterministic single-module
// workload, drained per-kind counts must equal the Stats counters — the same
// reconciliation the harness and tsvd-trace-check perform, pinned at the
// detector level.
func TestTracedDetectorEventsMatchStats(t *testing.T) {
	cfg := testConfig(config.AlgoTSVD)
	cfg.Trace = true
	d := mustNew(t, cfg)

	d1 := hammer(40, time.Millisecond, func(i int) { d.OnCall(acc(1, 5, 201, KindWrite)) })
	d2 := hammer(40, time.Millisecond, func(i int) { d.OnCall(acc(2, 5, 202, KindWrite)) })
	<-d1
	<-d2

	events := d.Tracer().Drain()
	tot := d.Tracer().Totals()
	if tot.Dropped != 0 {
		t.Fatalf("%d events dropped with default buffer", tot.Dropped)
	}
	counts := trace.CountByKind([]trace.ModuleTrace{{Events: events}})
	st := d.Stats()
	if err := trace.Reconcile(counts, trace.StatTotals{
		DelaysInjected:   st.DelaysInjected,
		NearMisses:       st.NearMisses,
		PairsAdded:       st.PairsAdded,
		PairsPrunedHB:    st.PairsPrunedHB,
		PairsPrunedDecay: st.PairsPrunedDecay,
		Violations:       st.Violations,
	}, trace.StoreTotals{}, tot.Dropped); err != nil {
		t.Fatal(err)
	}
	if counts["near_miss"] == 0 {
		t.Fatal("conflicting workload produced no near misses")
	}
}
