package core

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// DetectorMetrics exports live detector state into a metrics.Registry
// (docs/OBSERVABILITY.md, "Live metrics"). One DetectorMetrics can be
// attached to any number of detectors via WithDetectorMetrics — the harness
// attaches every module detector of a suite to one instance, so the
// registry's view is the suite-wide sum, live while modules are still
// running.
//
// Two export mechanisms, chosen per metric by what keeps the hot path free:
//
//   - Every Stats counter (and the parked/trap-set gauges) is exported as a
//     function-backed series reading the runtime's existing atomics at
//     scrape time. The hot path gains zero work, and the exported value
//     reconciles exactly against Detector.Stats by construction.
//   - The three histograms (near-miss gap, granted delay, trap-set
//     occupancy) have no pre-existing source, so they observe directly —
//     but only on detector *action* paths (a near miss, a granted delay, a
//     pair insertion), which are rare relative to OnCall volume and already
//     off the conflict-free fast path. Each Observe is a short bounds scan
//     plus three atomic adds, allocation-free.
//
// Exact-reconciliation contract (enforced by cmd/tsvd-metrics-check): the
// gap histogram's count equals Stats.NearMisses, the granted-delay
// histogram's count equals Stats.DelaysInjected, and the occupancy
// histogram's count equals Stats.PairsAdded — every increment of those
// counters is co-located with exactly one Observe.
type DetectorMetrics struct {
	gaps      *metrics.Histogram
	delays    *metrics.Histogram
	occupancy *metrics.Histogram

	mu   sync.Mutex
	rts  []*runtime
	sets []trapSetSizer
}

// trapSetSizer is what TSVD and TSVDHB expose for the trap-set gauge; the
// random variants keep no trap set and register nil.
type trapSetSizer interface{ TrapSetSize() int }

// NewDetectorMetrics registers the detector metric family on reg and returns
// the instance to attach with WithDetectorMetrics. reg may be nil, in which
// case every exported series is dropped and the histograms are nil (their
// Observe hooks become no-ops) — "metrics off" costs nothing.
func NewDetectorMetrics(reg *metrics.Registry) *DetectorMetrics {
	m := &DetectorMetrics{
		// Powers-of-two µs from 1µs to ~524ms, mirroring Stats.NearMissGaps
		// (§6 discusses 154–3505µs observed windows; the range brackets it).
		gaps: reg.Histogram("tsvd_detector_near_miss_gap_seconds",
			"Time gap between the two sides of each near miss.",
			1e-9, metrics.ExpBounds(int64(time.Microsecond), 2, 20)),
		// Granted delays scale with Config.DelayTime (100ms unscaled):
		// 100µs up to ~3.3s covers every TimeScale the suite uses.
		delays: reg.Histogram("tsvd_detector_granted_delay_seconds",
			"Delay durations granted by the per-thread budget at injection.",
			1e-9, metrics.ExpBounds(int64(100*time.Microsecond), 2, 15)),
		occupancy: reg.Histogram("tsvd_detector_trap_set_occupancy_pairs",
			"Trap-set size observed at each pair insertion.",
			1, metrics.ExpBounds(1, 2, 11)),
	}
	counter := func(name, help string, read func(Stats) float64) {
		reg.CounterFunc(name, help, func() float64 { return read(m.sum()) })
	}
	counter("tsvd_detector_on_calls_total",
		"Instrumented thread-unsafe calls observed.",
		func(s Stats) float64 { return float64(s.OnCalls) })
	counter("tsvd_detector_delays_injected_total",
		"Injected delays (trap set and slept).",
		func(s Stats) float64 { return float64(s.DelaysInjected) })
	counter("tsvd_detector_delay_seconds_total",
		"Cumulative injected delay time.",
		func(s Stats) float64 { return s.TotalDelay.Seconds() })
	counter("tsvd_detector_near_misses_total",
		"Dangerous-pair sightings within the near-miss window.",
		func(s Stats) float64 { return float64(s.NearMisses) })
	counter("tsvd_detector_pairs_added_total",
		"Unique pairs ever added to the trap set.",
		func(s Stats) float64 { return float64(s.PairsAdded) })
	counter("tsvd_detector_pairs_pruned_hb_total",
		"Pairs pruned by happens-before inference or analysis.",
		func(s Stats) float64 { return float64(s.PairsPrunedHB) })
	counter("tsvd_detector_pairs_pruned_decay_total",
		"Pairs pruned by probability decay.",
		func(s Stats) float64 { return float64(s.PairsPrunedDecay) })
	counter("tsvd_detector_violations_total",
		"Thread-safety violations caught red-handed (pre-dedup).",
		func(s Stats) float64 { return float64(s.Violations) })
	counter("tsvd_detector_locations_seen_total",
		"Distinct static TSVD points executed.",
		func(s Stats) float64 { return float64(s.LocationsSeen) })
	counter("tsvd_detector_locations_seen_concurrent_total",
		"Distinct TSVD points executed during a concurrent phase.",
		func(s Stats) float64 { return float64(s.LocationsSeenConcurrent) })
	counter("tsvd_detector_sequential_skips_total",
		"Near-miss candidates discarded in sequential phases.",
		func(s Stats) float64 { return float64(s.SequentialSkips) })
	counter("tsvd_sampler_calls_sampled_out_total",
		"Instrumented calls skipped by the sampling gate (ModeSampled).",
		func(s Stats) float64 { return float64(s.CallsSampledOut) })
	counter("tsvd_sampler_delays_suppressed_total",
		"Delays vetoed by observe-only mode (logical trap firings).",
		func(s Stats) float64 { return float64(s.DelaysSuppressed) })
	counter("tsvd_sampler_throttles_total",
		"Adaptive-sampling controller adjustments toward the overhead target.",
		func(s Stats) float64 { return float64(s.SamplerThrottles) })
	reg.CounterFunc("tsvd_trace_emitted_total",
		"Trace events accepted into the per-detector ring buffers.",
		func() float64 { e, _ := m.traceTotals(); return float64(e) })
	reg.CounterFunc("tsvd_trace_dropped_total",
		"Trace events lost to ring overflow (non-zero corrupts explanation slices; see docs/OBSERVABILITY.md).",
		func() float64 { _, d := m.traceTotals(); return float64(d) })
	reg.GaugeFunc("tsvd_sampler_probability",
		"Minimum current global admission probability across attached sampled-mode detectors (1 when none).",
		func() float64 { return m.samplerProbability() })
	reg.GaugeFunc("tsvd_detector_parked_threads",
		"Threads currently parked in an injected delay.",
		func() float64 { return float64(m.parked()) })
	reg.GaugeFunc("tsvd_detector_trap_set_pairs",
		"Live dangerous pairs across attached trap sets.",
		func() float64 { return float64(m.trapSetPairs()) })
	reg.GaugeFunc("tsvd_detector_instances",
		"Detector instances attached to this registry.",
		func() float64 { return float64(m.instances()) })
	return m
}

// attach registers a detector's runtime (and its trap set, when it has one)
// for the scrape-time sums. Called by New; nil-safe.
func (m *DetectorMetrics) attach(r *runtime, set trapSetSizer) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rts = append(m.rts, r)
	if set != nil {
		m.sets = append(m.sets, set)
	}
}

// sum snapshots and sums the attached runtimes' counters. Scrape-time only;
// snapshotStats is lock-free, so a scrape never blocks a running detector.
func (m *DetectorMetrics) sum() Stats {
	m.mu.Lock()
	rts := append([]*runtime(nil), m.rts...)
	m.mu.Unlock()
	var out Stats
	for _, r := range rts {
		s := r.snapshotStats()
		out.OnCalls += s.OnCalls
		out.DelaysInjected += s.DelaysInjected
		out.TotalDelay += s.TotalDelay
		out.NearMisses += s.NearMisses
		out.PairsAdded += s.PairsAdded
		out.PairsPrunedHB += s.PairsPrunedHB
		out.PairsPrunedDecay += s.PairsPrunedDecay
		out.Violations += s.Violations
		out.LocationsSeen += s.LocationsSeen
		out.LocationsSeenConcurrent += s.LocationsSeenConcurrent
		out.SequentialSkips += s.SequentialSkips
		out.CallsSampledOut += s.CallsSampledOut
		out.DelaysSuppressed += s.DelaysSuppressed
		out.SamplerThrottles += s.SamplerThrottles
		out.NearMissGaps.Add(s.NearMissGaps)
	}
	return out
}

// samplerProbability reports the lowest current admission probability among
// attached sampled-mode detectors — the most-throttled view, which is the
// one an operator watching an overhead SLO cares about. 1 when no attached
// detector samples.
func (m *DetectorMetrics) samplerProbability() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := 1.0
	for _, r := range m.rts {
		if r.samp != nil && r.samp.Probability() < p {
			p = r.samp.Probability()
		}
	}
	return p
}

// traceTotals sums the attached tracers' cumulative emit/drop counters.
// Detectors without tracing attach a nil tracer, whose Totals are zero.
func (m *DetectorMetrics) traceTotals() (emitted, dropped int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range m.rts {
		t := r.tr.Totals()
		emitted += t.Emitted
		dropped += t.Dropped
	}
	return emitted, dropped
}

func (m *DetectorMetrics) parked() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, r := range m.rts {
		n += r.parked.Load()
	}
	return n
}

func (m *DetectorMetrics) trapSetPairs() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, s := range m.sets {
		n += int64(s.TrapSetSize())
	}
	return n
}

func (m *DetectorMetrics) instances() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.rts)
}

// observeGap records one near-miss gap (0 for TSVDHB, which proves
// concurrency by clocks rather than time windows). Nil-safe; co-located
// with every stats.nearMisses increment.
func (m *DetectorMetrics) observeGap(d time.Duration) {
	if m == nil {
		return
	}
	m.gaps.Observe(int64(d))
}

// observeDelay records one granted delay. Nil-safe; co-located with every
// stats.delaysInjected increment.
func (m *DetectorMetrics) observeDelay(d time.Duration) {
	if m == nil {
		return
	}
	m.delays.Observe(int64(d))
}

// observeOccupancy records the trap-set size right after a pair insertion.
// Nil-safe; co-located with every stats.pairsAdded increment.
func (m *DetectorMetrics) observeOccupancy(pairs int) {
	if m == nil {
		return
	}
	m.occupancy.Observe(int64(pairs))
}
