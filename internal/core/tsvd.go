package core

import (
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/ids"
	"repro/internal/report"
	"repro/internal/sampler"
	"repro/internal/trace"
)

// TSVD is the paper's detector (§3.4). It identifies dangerous pairs by
// near-miss tracking, restricts them to concurrent phases, prunes them with
// happens-before *inference* driven by its own delay injections, decays
// unproductive delay locations, and performs planning and injection in the
// same run.
//
// State ownership after sharding (docs/PERFORMANCE.md has the full model):
//
//   - per-object state (near-miss rings, parked traps) lives in the
//     runtime's shards, keyed by ObjectID;
//   - per-thread HB-inference state is thread-local (each entry in threads
//     is only ever touched by its own goroutine);
//   - the trap set and the finished-delay log keep small cold-path locks.
type TSVD struct {
	nopSyncHooks // TSVD is oblivious to synchronization by design

	rt    runtime
	phase *phaseRing
	set   trapSet

	// threads tracks each thread's previous access for HB inference.
	// Entries are created once and then read and written exclusively by
	// the owning thread, so they carry no lock; the map itself has
	// lock-free integer-keyed lookups.
	threads atomicMap[threadState]

	// delayMu guards recentDelays, the finished-delay log for gap
	// attribution (§3.4.4) — the only cross-thread HB-inference state. It
	// is taken when a delay finishes and when an inter-access gap passes
	// the δ_hb threshold, both rare events off the fast path.
	delayMu      sync.Mutex
	recentDelays []delayRecord
}

type histEntry struct {
	thread ids.ThreadID
	op     ids.OpID
	kind   Kind
	at     time.Duration
}

// objHistory is a fixed-capacity ring of the most recent accesses. It lives
// inside the object's shard (§3.4.2 keeps "a global hash table" — ours is
// striped) and is only touched under that shard's mutex.
type objHistory struct {
	entries []histEntry
	next    int
	full    bool
}

func newObjHistory(capacity int) *objHistory {
	return &objHistory{entries: make([]histEntry, capacity)}
}

func (h *objHistory) add(e histEntry) {
	h.entries[h.next] = e
	h.next++
	if h.next == len(h.entries) {
		h.next = 0
		h.full = true
	}
}

// each visits the recorded entries newest first. The §3.4.2 near-miss scan
// wants the most recent conflicting access preferred: it is the one whose
// gap is smallest and therefore the sighting most likely to reflect a real
// interleaving opportunity (and the one the gap histogram should measure).
func (h *objHistory) each(fn func(histEntry)) {
	n := len(h.entries)
	if !h.full {
		n = h.next
	}
	for i := 0; i < n; i++ {
		idx := h.next - 1 - i
		if idx < 0 {
			idx += len(h.entries)
		}
		fn(h.entries[idx])
	}
}

type threadState struct {
	lastAccess time.Duration
	hasAccess  bool
	// rng is the thread's private xorshift state for the sampling gate
	// (docs/SAMPLING.md). Owner-thread-only like the rest of the struct, so
	// admission draws cost a few register ops and no shared RNG lock.
	rng uint64
	// ownDelay accumulates delay injected into this thread since its last
	// access, so a self-inflicted gap is not attributed to another
	// thread's delay during HB inference.
	ownDelay time.Duration
	// inherits carries the k_hb-access happens-after windows (§3.4.4:
	// "the next k_hb accesses in thread Thd2 are also considered as
	// likely happens-after loc1").
	inherits []inheritance
}

type inheritance struct {
	from      ids.OpID
	remaining int
}

type delayRecord struct {
	thread     ids.ThreadID
	op         ids.OpID
	start, end time.Duration
}

// maxRecentDelays bounds the delay log scanned by HB inference. Delays
// older than every thread's previous access can never satisfy the overlap
// condition, so a short suffix is sufficient.
const maxRecentDelays = 256

func newTSVD(cfg config.Config, o options) *TSVD {
	d := &TSVD{set: newTrapSet()}
	d.rt.init(cfg, o)
	if !cfg.DisablePhaseDetection {
		d.phase = newPhaseRing(cfg.PhaseBufferSize)
	}
	for _, key := range o.initialTraps {
		if d.set.add(key, &d.rt.stats, d.rt.met) {
			d.rt.tr.Emit(trace.KindPairAdded, 0, 0, key.A, key.B, 0, 0)
		}
	}
	return d
}

// threadStateFor returns the calling thread's state, creating it on first
// use. The returned pointer is only ever dereferenced by t's goroutine.
func (d *TSVD) threadStateFor(t ids.ThreadID) *threadState {
	st, _ := d.threads.getOrCreate(int64(t), func() *threadState {
		return &threadState{rng: sampler.SeedRand(d.rt.cfg.Seed, int64(t))}
	})
	return st
}

// OnCall implements Detector; it is the OnCall of Figure 5 with TSVD's
// should_delay (§3.4.1–§3.4.6). The hot path takes exactly one mutex — the
// object's shard — and only while scanning/updating that object's history;
// everything else is atomics, thread-local state and lock-free reads.
func (d *TSVD) OnCall(a Access) {
	t := d.rt.now()
	sh := d.rt.shardFor(a.Obj)
	st := d.threadStateFor(a.Thread)

	// check_for_trap: catch conflicting parked threads red-handed. A pair
	// with a reported violation leaves the trap set for good. While no
	// trap is parked anywhere (the common case) the scan is skipped via
	// one atomic load.
	if d.rt.parked.Load() > 0 {
		sh.mu.Lock()
		found := d.rt.checkForTraps(sh, a, ids.Stack)
		sh.mu.Unlock()
		for _, key := range found {
			d.set.suppress(key)
		}
	}

	// Sampling gate (ModeSampled, docs/SAMPLING.md). Placed after the trap
	// check on purpose: a sampled-out call still springs any parked trap it
	// conflicts with, so red-handed catching keeps its soundness regardless
	// of the admission probability — sampling only sheds the analysis and
	// planning cost below. The draw is a thread-local xorshift plus one
	// lock-free per-site threshold compare.
	if d.rt.samp != nil && !d.rt.samp.Admit(int64(a.Op), sampler.Rand(&st.rng)) {
		sh.onCalls.Add(1)
		sh.sampledOut.Add(1)
		// While the interval budget is exhausted, Admit refuses everything
		// and the admitted-path tick hook below is unreachable — the skip
		// path must offer the controller its tick or admission would stay
		// suspended forever. One atomic load when not capped.
		if d.rt.samp.Capped() {
			d.rt.sampleTick(d.rt.now())
		}
		return
	}

	// Happens-before inference on this thread's inter-access gap, plus
	// consumption of any pending k_hb inheritance windows. Must run
	// before lastAccess is overwritten below.
	if !d.rt.cfg.DisableHBInference {
		d.inferHB(st, a, t)
	}

	// Concurrent-phase inference (lock-free ring).
	concurrent := true
	if d.phase != nil {
		concurrent = d.phase.observe(a.Thread)
	}
	d.rt.markSeen(a.Op, concurrent)

	// Near-miss tracking over the object's recent accesses, newest first,
	// and recording of this access — one shard critical section. Pair
	// insertion happens after the lock is dropped: the trap set has its
	// own lock and nothing orders it with the shard.
	var nearKeys []report.PairKey
	sh.mu.Lock()
	sh.onCalls.Add(1) // counted here, on a cache line this path already owns
	h := sh.hist[a.Obj]
	if h == nil {
		if sh.hist == nil {
			sh.hist = map[ids.ObjectID]*objHistory{}
		}
		h = newObjHistory(d.rt.cfg.ObjHistory)
		sh.hist[a.Obj] = h
	}
	h.each(func(e histEntry) {
		if e.thread == a.Thread || !Conflicts(e.kind, a.Kind) {
			return
		}
		if !d.rt.cfg.DisableNearMissWindow && t-e.at > d.rt.nearMissWindow {
			return
		}
		if !concurrent {
			d.rt.stats.sequentialSkips.Add(1)
			return
		}
		d.rt.stats.nearMisses.Add(1)
		d.rt.stats.observeGap(t - e.at)
		d.rt.met.observeGap(t - e.at)
		d.rt.tr.Emit(trace.KindNearMiss, a.Thread, a.Obj, e.op, a.Op, t, t-e.at)
		nearKeys = append(nearKeys, report.KeyOf(e.op, a.Op))
	})
	h.add(histEntry{thread: a.Thread, op: a.Op, kind: a.Kind, at: t})
	sh.mu.Unlock()
	for _, key := range nearKeys {
		if d.set.add(key, &d.rt.stats, d.rt.met) {
			d.rt.tr.Emit(trace.KindPairAdded, a.Thread, a.Obj, key.A, key.B, t, 0)
		}
	}

	// Record this access in the thread-local HB state.
	st.lastAccess = t
	st.hasAccess = true
	st.ownDelay = 0

	// Charge the analysis time of this admitted call to the overhead
	// controller and give it a chance to tick. Sleep time is charged
	// separately inside injectDelay, so nothing is counted twice.
	if d.rt.samp != nil {
		now := d.rt.now()
		d.rt.samp.ObserveCost(now - t)
		d.rt.sampleTick(now)
	}

	// should_delay: the location must participate in a live dangerous
	// pair, and its decayed probability must pass a coin flip. An empty
	// trap set short-circuits everything with one atomic load.
	if d.set.empty() {
		return
	}
	prob, ok := d.set.eligible(a.Op)
	if !ok || d.rt.randFloat() >= prob {
		return
	}
	if d.rt.cfg.AvoidOverlappingDelays && d.rt.anyTrapSet() {
		return
	}
	d.rt.tr.Emit(trace.KindDelayPlanned, a.Thread, a.Obj, a.Op, 0, t, d.rt.delayTime)
	trap, slept := d.rt.injectDelay(a, d.rt.delayTime) // sleeps unlocked
	if trap == nil {
		return
	}
	end := d.rt.now()
	d.delayMu.Lock()
	d.recentDelays = append(d.recentDelays, delayRecord{
		thread: a.Thread, op: a.Op, start: t, end: end,
	})
	if len(d.recentDelays) > maxRecentDelays {
		d.recentDelays = d.recentDelays[len(d.recentDelays)-maxRecentDelays:]
	}
	d.delayMu.Unlock()
	st.ownDelay += slept
	if !trap.conflict {
		d.set.decayAfterFailedDelay(a.Op, d.rt.cfg.DecayFactor,
			d.rt.cfg.PruneProbability, &d.rt.stats, d.rt.tr, end)
	}
}

// inferHB implements §3.4.4. st is a.Thread's own state, so everything here
// is thread-local; only the finished-delay log needs a lock, and only once
// the gap threshold is met.
func (d *TSVD) inferHB(st *threadState, a Access, t time.Duration) {

	// Consume pending inheritance windows: this access likely
	// happens-after each recorded delay location.
	if len(st.inherits) > 0 {
		kept := st.inherits[:0]
		for _, inh := range st.inherits {
			d.pruneHB(inh.from, a, t)
			if inh.remaining--; inh.remaining > 0 {
				kept = append(kept, inh)
			}
		}
		st.inherits = kept
	}

	if !st.hasAccess {
		return
	}
	gap := t - st.lastAccess - st.ownDelay
	if gap < d.rt.hbThreshold {
		return
	}
	// Attribute the gap to the most recently finished delay of another
	// thread that overlaps it (t0 ≤ t1end).
	d.delayMu.Lock()
	best := -1
	for i := len(d.recentDelays) - 1; i >= 0; i-- {
		dr := d.recentDelays[i]
		if dr.thread == a.Thread || dr.end < st.lastAccess || dr.end > t {
			continue
		}
		if best == -1 || dr.end > d.recentDelays[best].end {
			best = i
		}
	}
	var from ids.OpID
	if best != -1 {
		from = d.recentDelays[best].op
	}
	d.delayMu.Unlock()
	if best == -1 {
		return
	}
	d.pruneHB(from, a, t)
	if k := d.rt.cfg.HBInferenceWindow; k > 0 {
		st.inherits = append(st.inherits, inheritance{from: from, remaining: k})
	}
}

// pruneHB records the inferred edge from → a.Op and marks the pair as
// happens-before ordered: it leaves the trap set and can never re-enter it.
func (d *TSVD) pruneHB(from ids.OpID, a Access, t time.Duration) {
	d.rt.tr.Emit(trace.KindHBEdge, a.Thread, a.Obj, from, a.Op, t, 0)
	key := report.KeyOf(from, a.Op)
	if key.A == key.B {
		// A location trivially happens-before itself on one thread; the
		// same location racing with itself across threads is exactly the
		// "same operation" bug class (34% in Table 1), so never suppress.
		return
	}
	if d.set.suppress(key) {
		d.rt.stats.pairsPrunedHB.Add(1)
		d.rt.tr.Emit(trace.KindPairPrunedHB, a.Thread, a.Obj, key.A, key.B, t, 0)
	}
}

// Reports implements Detector.
func (d *TSVD) Reports() *report.Collector { return d.rt.reports }

// Stats implements Detector.
func (d *TSVD) Stats() Stats { return d.rt.snapshotStats() }

// Tracer implements Detector.
func (d *TSVD) Tracer() *trace.Tracer { return d.rt.tr }

// ExportTraps implements Detector: the trap file contents (§3.4.6).
func (d *TSVD) ExportTraps() []report.PairKey { return d.set.export() }

// TrapSetSize reports the number of live dangerous pairs (for tests and the
// coverage statistics).
func (d *TSVD) TrapSetSize() int { return d.set.size() }
