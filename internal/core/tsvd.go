package core

import (
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/fasttime"
	"repro/internal/ids"
	"repro/internal/report"
	"repro/internal/sampler"
	"repro/internal/sites"
	"repro/internal/trace"
)

// TSVD is the paper's detector (§3.4). It identifies dangerous pairs by
// near-miss tracking, restricts them to concurrent phases, prunes them with
// happens-before *inference* driven by its own delay injections, decays
// unproductive delay locations, and performs planning and injection in the
// same run.
//
// State ownership (docs/PERFORMANCE.md has the full model):
//
//   - per-object state (near-miss rings, parked traps) lives in the
//     runtime's lock-free object registry, one entry and one spin lock per
//     ObjectID;
//   - per-thread state — HB inference, the sampling RNG, the hot counters —
//     is thread-local (each runtime.threads entry is only ever touched by
//     its own goroutine, except the atomic counters snapshots read);
//   - per-site state (coverage, sampler admission) is indexed by dense
//     SiteIDs in plain arrays;
//   - the trap set and the finished-delay log keep small cold-path locks.
type TSVD struct {
	nopSyncHooks // TSVD is oblivious to synchronization by design

	rt    runtime
	phase *phaseRing
	set   trapSet

	// delayMu guards recentDelays, the finished-delay log for gap
	// attribution (§3.4.4) — the only cross-thread HB-inference state. It
	// is taken when a delay finishes and when an inter-access gap passes
	// the δ_hb threshold, both rare events off the fast path.
	delayMu      sync.Mutex
	recentDelays []delayRecord
}

type histEntry struct {
	thread ids.ThreadID
	op     ids.OpID
	kind   Kind
	at     time.Duration
}

// objHistory is a fixed-capacity ring of the most recent accesses (§3.4.2
// keeps "a global hash table" of these — ours hangs one off each object's
// state). Only touched under the object's lock.
type objHistory struct {
	entries []histEntry
	next    int
	full    bool
}

func newObjHistory(capacity int) *objHistory {
	return &objHistory{entries: make([]histEntry, capacity)}
}

func (h *objHistory) add(e histEntry) {
	h.entries[h.next] = e
	h.next++
	if h.next == len(h.entries) {
		h.next = 0
		h.full = true
	}
}

// each visits the recorded entries newest first. The §3.4.2 near-miss scan
// wants the most recent conflicting access preferred: it is the one whose
// gap is smallest and therefore the sighting most likely to reflect a real
// interleaving opportunity (and the one the gap histogram should measure).
// (OnCall inlines this walk; each remains for tests and cold callers.)
func (h *objHistory) each(fn func(histEntry)) {
	n := len(h.entries)
	if !h.full {
		n = h.next
	}
	for i := 0; i < n; i++ {
		idx := h.next - 1 - i
		if idx < 0 {
			idx += len(h.entries)
		}
		fn(h.entries[idx])
	}
}

type inheritance struct {
	from      ids.OpID
	remaining int
}

type delayRecord struct {
	thread     ids.ThreadID
	op         ids.OpID
	start, end time.Duration
}

// maxRecentDelays bounds the delay log scanned by HB inference. Delays
// older than every thread's previous access can never satisfy the overlap
// condition, so a short suffix is sufficient.
const maxRecentDelays = 256

func newTSVD(cfg config.Config, o options) *TSVD {
	d := &TSVD{set: newTrapSet()}
	d.rt.init(cfg, o)
	if !cfg.DisablePhaseDetection {
		d.phase = newPhaseRing(cfg.PhaseBufferSize)
	}
	for _, key := range o.initialTraps {
		if d.set.add(key, &d.rt.stats, d.rt.met) {
			d.rt.tr.Emit(trace.KindPairAdded, 0, 0, key.A, key.B, 0, 0)
		}
	}
	return d
}

// OnCall implements Detector; it is the OnCall of Figure 5 with TSVD's
// should_delay (§3.4.1–§3.4.6). While the object has only ever been touched
// by the calling thread — the overwhelmingly common case in the paper's
// workloads — the path is lock-free end to end: the timestamp is one TSC
// read, per-thread and per-object state are cached probes, the near-miss
// scan is skipped outright (every entry would fail the different-thread
// test), and recording the access is plain stores plus one publication CAS
// that doubles as the OnCalls counter. Contended objects funnel through
// recordSlow under the object's spin lock.
func (d *TSVD) OnCall(a Access) {
	rt := &d.rt
	// rt.now(), thread-state lookup and markSeen below are expanded inline:
	// each is a leaf the inliner rejects only because of its cold branch,
	// and on a path this hot the call overhead alone is measurable.
	st, fastOK := rt.threads.GetFast(int64(a.Thread))
	if !fastOK {
		st = rt.threadStateFor(a.Thread)
	}
	rt.resolveSite(&a)

	// The object state is resolved lazily: the lock-free publication path
	// below reaches it through the thread's ring cache, so os is only
	// needed by the trap check (parked traps exist) and the recordSlow
	// fallback.
	var os *objState

	// check_for_trap: catch conflicting parked threads red-handed. A pair
	// with a reported violation leaves the trap set for good. While no
	// trap is parked anywhere (the common case) the scan is skipped via
	// one atomic load.
	if rt.parked.Load() > 0 {
		os = st.cachedState
		if os == nil || st.cachedObj != a.Obj {
			os = rt.objStateFor(st, a.Obj)
		}
		os.mu.Lock()
		found := rt.checkForTraps(os, a, ids.Stack)
		os.mu.Unlock()
		for _, key := range found {
			d.set.suppress(key)
		}
	}

	// Sampling gate (ModeSampled, docs/SAMPLING.md). Placed after the trap
	// check on purpose: a sampled-out call still springs any parked trap it
	// conflicts with, so red-handed catching keeps its soundness regardless
	// of the admission probability — sampling only sheds the analysis and
	// planning cost below. The draw is a thread-local xorshift plus one
	// array-indexed per-site threshold compare.
	if rt.samp != nil && !rt.samp.Admit(a.Site, sampler.Rand(&st.rng)) {
		st.onCalls.Add(1)
		st.sampledOut.Add(1)
		// While the interval budget is exhausted, Admit refuses everything
		// and the admitted-path tick hook below is unreachable — the skip
		// path must offer the controller its tick or admission would stay
		// suspended forever. One atomic load when not capped.
		if rt.samp.Capped() {
			rt.sampleTick(rt.now())
		}
		return
	}
	// No OnCalls counter here: the admitted path is counted by the ring
	// publication below (snapshotStats sums publications across objects).

	// Concurrent-phase inference (lock-free ring) and coverage marking
	// (markSeen's fully-marked fast case, expanded inline). The phase ring's
	// steady sequential case is expanded too: the ring's packed word equal
	// to this thread's steady value means run == count == window — one load,
	// one compare, no store. Thread switches and warm-up fall back to
	// observe.
	concurrent := true
	if p := d.phase; p != nil {
		if p.state.Load() == st.phaseSteady {
			concurrent = false
		} else {
			concurrent = p.observe(a.Thread)
			st.phaseSteady = uint64(uint32(a.Thread))<<32 | p.steady
		}
	}
	cwant := uint32(coverSeen)
	if concurrent {
		cwant |= coverConcurrent
	}
	if ct := rt.cover.Load(); ct == nil || int(a.Site) >= len(*ct) || (*ct)[a.Site].Load()&cwant != cwant {
		rt.markSeenSlow(a.Site, a.Op, cwant)
	}

	// The timestamp is read here, after every piece of work that does not
	// need it: on this VM the TSC read quasi-serializes the pipeline, so
	// instructions placed after it pay its full latency while instructions
	// before it run free. The few-ns shift in what "arrival time" means is
	// uniform across calls and cancels out of every inter-access gap.
	var t time.Duration
	if rt.fastClock {
		t = fasttime.SinceTicks(rt.startTicks)
	} else {
		t = rt.nowSlow()
	}

	// Happens-before inference on this thread's inter-access gap, plus
	// consumption of any pending k_hb inheritance windows. Must run before
	// lastAccess is overwritten below. The guard is inlined so the
	// steady-state call — window empty, gap under δ_hb — costs two compares
	// and no function call.
	if !rt.cfg.DisableHBInference {
		if len(st.inherits) != 0 || t >= st.hbDeadline {
			d.inferHB(st, a, t)
		}
	}

	// Near-miss tracking over the object's recent accesses, newest first,
	// and recording of this access. While this thread owns the object's
	// publication ring (cached on the thread state, so the probe is two
	// loads from a line already hot), recording is plain entry stores plus
	// one CAS; everything else (first sighting, ring rotation, the takeover
	// by a second thread, shared-mode scans) funnels through recordSlow
	// under the object's lock. Pair insertion happens outside any object
	// lock: the trap set has its own lock and nothing orders the two.
	published := false
	if rg := st.cachedRing; rg != nil && st.cachedRingObj == a.Obj {
		// The length test subsumes the closed-bit test: a closed counter has
		// ringClosed (1<<63) set, far beyond any entry count.
		if n := rg.pub.Load(); n < uint64(len(rg.entries)) {
			rg.entries[n] = histEntry{thread: a.Thread, op: a.Op, kind: a.Kind, at: t}
			published = rg.pub.CompareAndSwap(n, n+1)
		}
	}
	if !published {
		if os == nil {
			os = st.cachedState
			if os == nil || st.cachedObj != a.Obj {
				os = rt.objStateFor(st, a.Obj)
			}
		}
		for _, key := range d.recordSlow(st, os, a, t, concurrent) {
			if d.set.add(key, &rt.stats, rt.met) {
				rt.tr.Emit(trace.KindPairAdded, a.Thread, a.Obj, key.A, key.B, t, 0)
			}
		}
	}

	// Record this access in the thread-local HB state.
	st.lastAccess = t
	st.ownDelay = 0
	st.hbDeadline = t + rt.hbThreshold

	// Charge the analysis time of this admitted call to the overhead
	// controller and give it a chance to tick. Sleep time is charged
	// separately inside injectDelay, so nothing is counted twice.
	if rt.samp != nil {
		now := rt.now()
		rt.samp.ObserveCost(now - t)
		rt.sampleTick(now)
	}

	// should_delay: the location must participate in a live dangerous
	// pair, and its decayed probability must pass a coin flip. An empty
	// trap set short-circuits everything with one atomic load.
	if d.set.empty() {
		return
	}
	prob, ok := d.set.eligible(a.Op)
	if !ok || rt.randFloat() >= prob {
		return
	}
	if rt.cfg.AvoidOverlappingDelays && rt.anyTrapSet() {
		return
	}
	rt.tr.Emit(trace.KindDelayPlanned, a.Thread, a.Obj, a.Op, 0, t, rt.delayTime)
	trap, slept := rt.injectDelay(a, rt.delayTime) // sleeps unlocked
	if trap == nil {
		return
	}
	end := rt.now()
	d.delayMu.Lock()
	d.recentDelays = append(d.recentDelays, delayRecord{
		thread: a.Thread, op: a.Op, start: t, end: end,
	})
	if len(d.recentDelays) > maxRecentDelays {
		d.recentDelays = d.recentDelays[len(d.recentDelays)-maxRecentDelays:]
	}
	d.delayMu.Unlock()
	st.ownDelay += slept
	st.hbDeadline += slept
	if !trap.conflict {
		d.set.decayAfterFailedDelay(a.Op, rt.cfg.DecayFactor,
			rt.cfg.PruneProbability, &rt.stats, rt.tr, end)
	}
}

// recordSlow is everything the lock-free publication path cannot do, under
// the object's spin lock: claiming an untouched object for single-writer
// mode, re-arming the thread's ring cache after it was evicted (the thread
// touched another object in between), rotating a full publication ring in
// place, taking over a single-writer object for shared mode (the sticky
// mixed transition, which closes and drains the publication ring), and the
// shared-mode near-miss scan plus append. Every admitted call that lands
// here is counted into os.retired, keeping OnCalls exact alongside the fast
// path's publication counter. It returns the near-miss pair keys found; the
// caller inserts them into the trap set outside the lock.
func (d *TSVD) recordSlow(st *threadState, os *objState, a Access, t time.Duration, concurrent bool) []report.PairKey {
	rt := &d.rt
	var nearKeys []report.PairKey
	os.mu.Lock()
	w := os.writer.Load()
	switch {
	case w == 0:
		// First access to this object: claim single-writer mode and arm the
		// thread's ring cache.
		rg := newPubRing(rt.cfg.ObjHistory)
		rg.entries[0] = histEntry{thread: a.Thread, op: a.Op, kind: a.Kind, at: t}
		rg.pub.Store(1)
		os.fast.Store(rg)
		os.writer.Store(int64(a.Thread))
		st.cachedRing, st.cachedRingObj = rg, a.Obj
	case w == int64(a.Thread):
		// Still the single writer: the fast path failed because the ring
		// filled up, or because this thread's ring cache points at another
		// object it touched in between (a takeover would have left
		// writerShared behind — transitions complete under the mutex we now
		// hold). Rotate when full — fold the published count into retired
		// and keep the newest scan-window entries — then record under the
		// mutex and re-arm the cache. No other thread can be touching the
		// entry array: takeover and rotation both require mu, and the
		// lock-free writer is this thread.
		rg := os.fast.Load()
		n := int(rg.pub.Load() &^ ringClosed)
		if n == len(rg.entries) {
			keep := rt.cfg.ObjHistory
			if keep > n {
				keep = n
			}
			os.retired.Add(int64(n) - rg.base.Load())
			copy(rg.entries[:keep], rg.entries[n-keep:n])
			rg.base.Store(int64(keep))
			n = keep
		}
		rg.entries[n] = histEntry{thread: a.Thread, op: a.Op, kind: a.Kind, at: t}
		rg.pub.Store(uint64(n) + 1)
		st.cachedRing, st.cachedRingObj = rg, a.Obj
	default:
		// Shared mode. If this thread's ring cache still points at this
		// object, the ring it caches is closed (that is the only way
		// ownership ends) — drop it so the fast path stops probing it.
		if st.cachedRingObj == a.Obj {
			st.cachedRing = nil
		}
		if w != writerShared {
			// Takeover: a second thread reached a single-writer object.
			// Close the publication ring — the CAS loop races at most the
			// owner's one in-flight publication, and once the closed bit
			// lands every later publication CAS fails onto this mutex path —
			// then fold its count, drain the newest window of entries into
			// the shared mutex ring, and go shared for good. The drained
			// entries are immutable: they sit strictly below the closed
			// publication count.
			rg := os.fast.Load()
			var n uint64
			for {
				n = rg.pub.Load()
				if rg.pub.CompareAndSwap(n, n|ringClosed) {
					break
				}
			}
			os.retired.Add(int64(n) - rg.base.Load())
			if os.hist == nil {
				os.hist = newObjHistory(rt.cfg.ObjHistory)
			}
			start := 0
			if int(n) > len(os.hist.entries) {
				start = int(n) - len(os.hist.entries)
			}
			for i := start; i < int(n); i++ {
				os.hist.add(rg.entries[i])
			}
			os.fast.Store(nil)
			os.writer.Store(writerShared)
		}
		h := os.hist
		if h == nil {
			h = newObjHistory(rt.cfg.ObjHistory)
			os.hist = h
		}
		n := len(h.entries)
		if !h.full {
			n = h.next
		}
		for i := 0; i < n; i++ {
			idx := h.next - 1 - i
			if idx < 0 {
				idx += len(h.entries)
			}
			e := &h.entries[idx]
			if e.thread == a.Thread || !Conflicts(e.kind, a.Kind) {
				continue
			}
			if !rt.cfg.DisableNearMissWindow && t-e.at > rt.nearMissWindow {
				continue
			}
			if !concurrent {
				rt.stats.sequentialSkips.Add(1)
				continue
			}
			rt.stats.nearMisses.Add(1)
			rt.stats.observeGap(t - e.at)
			rt.met.observeGap(t - e.at)
			rt.tr.Emit(trace.KindNearMiss, a.Thread, a.Obj, e.op, a.Op, t, t-e.at)
			nearKeys = append(nearKeys, report.KeyOf(e.op, a.Op))
		}
		h.add(histEntry{thread: a.Thread, op: a.Op, kind: a.Kind, at: t})
		os.retired.Add(1)
	}
	os.mu.Unlock()
	return nearKeys
}

// inferHB implements §3.4.4. st is a.Thread's own state, so everything here
// is thread-local; only the finished-delay log needs a lock, and only once
// the gap threshold is met.
func (d *TSVD) inferHB(st *threadState, a Access, t time.Duration) {

	// Consume pending inheritance windows: this access likely
	// happens-after each recorded delay location.
	if len(st.inherits) > 0 {
		kept := st.inherits[:0]
		for _, inh := range st.inherits {
			d.pruneHB(inh.from, a, t)
			if inh.remaining--; inh.remaining > 0 {
				kept = append(kept, inh)
			}
		}
		st.inherits = kept
	}

	// A noAccessYet sentinel in lastAccess makes this hugely negative, so
	// threads reject inference until their first recorded access.
	gap := t - st.lastAccess - st.ownDelay
	if gap < d.rt.hbThreshold {
		return
	}
	// Attribute the gap to the most recently finished delay of another
	// thread that overlaps it (t0 ≤ t1end).
	d.delayMu.Lock()
	best := -1
	for i := len(d.recentDelays) - 1; i >= 0; i-- {
		dr := d.recentDelays[i]
		if dr.thread == a.Thread || dr.end < st.lastAccess || dr.end > t {
			continue
		}
		if best == -1 || dr.end > d.recentDelays[best].end {
			best = i
		}
	}
	var from ids.OpID
	if best != -1 {
		from = d.recentDelays[best].op
	}
	d.delayMu.Unlock()
	if best == -1 {
		return
	}
	d.pruneHB(from, a, t)
	if k := d.rt.cfg.HBInferenceWindow; k > 0 {
		st.inherits = append(st.inherits, inheritance{from: from, remaining: k})
	}
}

// pruneHB records the inferred edge from → a.Op and marks the pair as
// happens-before ordered: it leaves the trap set and can never re-enter it.
func (d *TSVD) pruneHB(from ids.OpID, a Access, t time.Duration) {
	d.rt.tr.Emit(trace.KindHBEdge, a.Thread, a.Obj, from, a.Op, t, 0)
	key := report.KeyOf(from, a.Op)
	if key.A == key.B {
		// A location trivially happens-before itself on one thread; the
		// same location racing with itself across threads is exactly the
		// "same operation" bug class (34% in Table 1), so never suppress.
		return
	}
	if d.set.suppress(key) {
		d.rt.stats.pairsPrunedHB.Add(1)
		d.rt.tr.Emit(trace.KindPairPrunedHB, a.Thread, a.Obj, key.A, key.B, t, 0)
	}
}

// Sites implements Detector.
func (d *TSVD) Sites() *sites.Registry { return d.rt.sites }

// Reports implements Detector.
func (d *TSVD) Reports() *report.Collector { return d.rt.reports }

// Stats implements Detector.
func (d *TSVD) Stats() Stats { return d.rt.snapshotStats() }

// Tracer implements Detector.
func (d *TSVD) Tracer() *trace.Tracer { return d.rt.tr }

// ExportTraps implements Detector: the trap file contents (§3.4.6).
func (d *TSVD) ExportTraps() []report.PairKey { return d.set.export() }

// TrapSetSize reports the number of live dangerous pairs (for tests and the
// coverage statistics).
func (d *TSVD) TrapSetSize() int { return d.set.size() }
