package core

import (
	"time"

	"repro/internal/config"
	"repro/internal/ids"
	"repro/internal/report"
)

// TSVD is the paper's detector (§3.4). It identifies dangerous pairs by
// near-miss tracking, restricts them to concurrent phases, prunes them with
// happens-before *inference* driven by its own delay injections, decays
// unproductive delay locations, and performs planning and injection in the
// same run.
type TSVD struct {
	nopSyncHooks // TSVD is oblivious to synchronization by design

	rt    runtime
	phase *phaseRing
	set   trapSet

	// objHist keeps the last N_nm accesses per object (§3.4.2). Rather
	// than hanging this state off the objects themselves, the paper keeps
	// a global table indexed by object id; so do we.
	objHist map[ids.ObjectID]*objHistory
	// threads tracks each thread's previous access for HB inference.
	threads map[ids.ThreadID]*threadState
	// recentDelays holds finished delays for gap attribution (§3.4.4).
	recentDelays []delayRecord
}

type histEntry struct {
	thread ids.ThreadID
	op     ids.OpID
	kind   Kind
	at     time.Duration
}

// objHistory is a fixed-capacity ring of the most recent accesses.
type objHistory struct {
	entries []histEntry
	next    int
	full    bool
}

func newObjHistory(capacity int) *objHistory {
	return &objHistory{entries: make([]histEntry, capacity)}
}

func (h *objHistory) add(e histEntry) {
	h.entries[h.next] = e
	h.next++
	if h.next == len(h.entries) {
		h.next = 0
		h.full = true
	}
}

// each visits the recorded entries (order unspecified).
func (h *objHistory) each(fn func(histEntry)) {
	n := len(h.entries)
	if !h.full {
		n = h.next
	}
	for i := 0; i < n; i++ {
		fn(h.entries[i])
	}
}

type threadState struct {
	lastAccess time.Duration
	hasAccess  bool
	// ownDelay accumulates delay injected into this thread since its last
	// access, so a self-inflicted gap is not attributed to another
	// thread's delay during HB inference.
	ownDelay time.Duration
	// inherits carries the k_hb-access happens-after windows (§3.4.4:
	// "the next k_hb accesses in thread Thd2 are also considered as
	// likely happens-after loc1").
	inherits []inheritance
}

type inheritance struct {
	from      ids.OpID
	remaining int
}

type delayRecord struct {
	thread     ids.ThreadID
	op         ids.OpID
	start, end time.Duration
}

// maxRecentDelays bounds the delay log scanned by HB inference. Delays
// older than every thread's previous access can never satisfy the overlap
// condition, so a short suffix is sufficient.
const maxRecentDelays = 256

func newTSVD(cfg config.Config, o options) *TSVD {
	d := &TSVD{
		rt:      newRuntime(cfg, o),
		set:     newTrapSet(),
		objHist: map[ids.ObjectID]*objHistory{},
		threads: map[ids.ThreadID]*threadState{},
	}
	if !cfg.DisablePhaseDetection {
		d.phase = newPhaseRing(cfg.PhaseBufferSize)
	}
	for _, key := range o.initialTraps {
		d.set.add(key, &d.rt.stats)
	}
	return d
}

// OnCall implements Detector; it is the OnCall of Figure 5 with TSVD's
// should_delay (§3.4.1–§3.4.6).
func (d *TSVD) OnCall(a Access) {
	t := d.rt.now()
	d.rt.mu.Lock()
	d.rt.stats.OnCalls++

	// check_for_trap: catch conflicting parked threads red-handed. A pair
	// with a reported violation leaves the trap set for good.
	for _, key := range d.rt.checkForTraps(a, ids.Stack) {
		d.set.suppress(key)
	}

	// Happens-before inference on this thread's inter-access gap, plus
	// consumption of any pending k_hb inheritance windows.
	if !d.rt.cfg.DisableHBInference {
		d.inferHB(a, t)
	}

	// Concurrent-phase inference.
	concurrent := true
	if d.phase != nil {
		concurrent = d.phase.observe(a.Thread)
	}
	d.rt.markSeen(a.Op, concurrent)

	// Near-miss tracking over the object's recent accesses.
	if h := d.objHist[a.Obj]; h != nil {
		h.each(func(e histEntry) {
			if e.thread == a.Thread || !Conflicts(e.kind, a.Kind) {
				return
			}
			if !d.rt.cfg.DisableNearMissWindow && t-e.at > d.rt.nearMissWindow {
				return
			}
			if !concurrent {
				d.rt.stats.SequentialSkips++
				return
			}
			d.rt.stats.NearMisses++
			d.rt.stats.NearMissGaps.Observe(t - e.at)
			d.set.add(report.KeyOf(e.op, a.Op), &d.rt.stats)
		})
	}

	d.recordAccess(a, t)

	// should_delay: the location must participate in a live dangerous
	// pair, and its decayed probability must pass a coin flip.
	inject := false
	if d.set.hasLoc(a.Op) && d.rt.rng.Float64() < d.set.prob(a.Op) {
		inject = !(d.rt.cfg.AvoidOverlappingDelays && d.rt.anyTrapSet())
	}
	if inject {
		trap, slept := d.rt.injectDelay(a, d.rt.delayTime) // sleeps unlocked
		if trap != nil {
			end := d.rt.now()
			d.recentDelays = append(d.recentDelays, delayRecord{
				thread: a.Thread, op: a.Op, start: t, end: end,
			})
			if len(d.recentDelays) > maxRecentDelays {
				d.recentDelays = d.recentDelays[len(d.recentDelays)-maxRecentDelays:]
			}
			if st := d.threads[a.Thread]; st != nil {
				st.ownDelay += slept
			}
			if !trap.conflict {
				d.set.decayAfterFailedDelay(a.Op, d.rt.cfg.DecayFactor,
					d.rt.cfg.PruneProbability, &d.rt.stats)
			}
		}
	}
	d.rt.mu.Unlock()
}

// inferHB implements §3.4.4. Caller holds the mutex.
func (d *TSVD) inferHB(a Access, t time.Duration) {
	st := d.threads[a.Thread]
	if st == nil {
		return
	}

	// Consume pending inheritance windows: this access likely
	// happens-after each recorded delay location.
	if len(st.inherits) > 0 {
		kept := st.inherits[:0]
		for _, inh := range st.inherits {
			d.pruneHB(report.KeyOf(inh.from, a.Op))
			if inh.remaining--; inh.remaining > 0 {
				kept = append(kept, inh)
			}
		}
		st.inherits = kept
	}

	if !st.hasAccess {
		return
	}
	threshold := time.Duration(d.rt.cfg.HBBlockThreshold * float64(d.rt.delayTime))
	gap := t - st.lastAccess - st.ownDelay
	if gap < threshold {
		return
	}
	// Attribute the gap to the most recently finished delay of another
	// thread that overlaps it (t0 ≤ t1end).
	best := -1
	for i := len(d.recentDelays) - 1; i >= 0; i-- {
		dr := d.recentDelays[i]
		if dr.thread == a.Thread || dr.end < st.lastAccess || dr.end > t {
			continue
		}
		if best == -1 || dr.end > d.recentDelays[best].end {
			best = i
		}
	}
	if best == -1 {
		return
	}
	from := d.recentDelays[best].op
	d.pruneHB(report.KeyOf(from, a.Op))
	if k := d.rt.cfg.HBInferenceWindow; k > 0 {
		st.inherits = append(st.inherits, inheritance{from: from, remaining: k})
	}
}

// pruneHB marks a pair as happens-before ordered: it leaves the trap set
// and can never re-enter it.
func (d *TSVD) pruneHB(key report.PairKey) {
	if key.A == key.B {
		// A location trivially happens-before itself on one thread; the
		// same location racing with itself across threads is exactly the
		// "same operation" bug class (34% in Table 1), so never suppress.
		return
	}
	if d.set.suppress(key) {
		d.rt.stats.PairsPrunedHB++
	}
}

func (d *TSVD) recordAccess(a Access, t time.Duration) {
	h := d.objHist[a.Obj]
	if h == nil {
		h = newObjHistory(d.rt.cfg.ObjHistory)
		d.objHist[a.Obj] = h
	}
	h.add(histEntry{thread: a.Thread, op: a.Op, kind: a.Kind, at: t})

	st := d.threads[a.Thread]
	if st == nil {
		st = &threadState{}
		d.threads[a.Thread] = st
	}
	st.lastAccess = t
	st.hasAccess = true
	st.ownDelay = 0
}

// Reports implements Detector.
func (d *TSVD) Reports() *report.Collector { return d.rt.reports }

// Stats implements Detector.
func (d *TSVD) Stats() Stats { return d.rt.snapshotStats() }

// ExportTraps implements Detector: the trap file contents (§3.4.6).
func (d *TSVD) ExportTraps() []report.PairKey {
	d.rt.mu.Lock()
	defer d.rt.mu.Unlock()
	return d.set.export()
}

// TrapSetSize reports the number of live dangerous pairs (for tests and the
// coverage statistics).
func (d *TSVD) TrapSetSize() int {
	d.rt.mu.Lock()
	defer d.rt.mu.Unlock()
	return d.set.size()
}
