package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/config"
	"repro/internal/ids"
	"repro/internal/report"
)

// TestTrapSetInvariants drives the trap set with random operations and
// checks its structural invariants after every step:
//   - pairs and the per-location index agree exactly;
//   - suppressed pairs are never present;
//   - every live pair's endpoints have probabilities in (0, 1].
func TestTrapSetInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := newTrapSet()
		var stats atomicStats
		ops := []ids.OpID{1, 2, 3, 4, 5, 6}
		randKey := func() report.PairKey {
			return report.KeyOf(ops[rng.Intn(len(ops))], ops[rng.Intn(len(ops))])
		}
		for step := 0; step < 400; step++ {
			switch rng.Intn(4) {
			case 0:
				s.add(randKey(), &stats, nil)
			case 1:
				s.remove(randKey())
			case 2:
				s.suppress(randKey())
			case 3:
				s.decayAfterFailedDelay(ops[rng.Intn(len(ops))], 0.5, 0.1, &stats, nil, 0)
			}
			if !trapSetConsistent(&s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func trapSetConsistent(s *trapSet) bool {
	// Every pair indexed under both endpoints.
	for key := range s.pairs {
		if _, dead := s.suppressed[key]; dead {
			return false
		}
		for _, loc := range []ids.OpID{key.A, key.B} {
			if _, ok := s.locPairs[loc][key]; !ok {
				return false
			}
			p := s.locProb[loc]
			if p <= 0 || p > 1 {
				return false
			}
		}
	}
	// No stale index entries.
	for loc, keys := range s.locPairs {
		if len(keys) == 0 {
			return false // empty sets must be deleted
		}
		for key := range keys {
			if _, ok := s.pairs[key]; !ok {
				return false
			}
			if key.A != loc && key.B != loc {
				return false
			}
		}
	}
	return true
}

// TestPhaseRingProperty: the ring must report "concurrent" exactly when the
// last min(n, size) observed thread ids contain two distinct values.
func TestPhaseRingProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 2 + rng.Intn(30)
		p := newPhaseRing(size)
		var window []ids.ThreadID
		for step := 0; step < 300; step++ {
			tid := ids.ThreadID(rng.Intn(4) + 1)
			got := p.observe(tid)
			window = append(window, tid)
			if len(window) > size {
				window = window[1:]
			}
			want := false
			for _, w := range window {
				if w != window[0] {
					want = true
					break
				}
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestObjHistoryProperty: the ring keeps exactly the most recent capacity
// entries, in any order.
func TestObjHistoryProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 1 + rng.Intn(10)
		h := newObjHistory(capacity)
		var all []histEntry
		for step := 0; step < 100; step++ {
			e := histEntry{
				thread: ids.ThreadID(rng.Intn(5)),
				op:     ids.OpID(step),
				at:     time.Duration(step),
			}
			h.add(e)
			all = append(all, e)

			want := all
			if len(want) > capacity {
				want = want[len(want)-capacity:]
			}
			seen := map[ids.OpID]bool{}
			count := 0
			h.each(func(g histEntry) {
				seen[g.op] = true
				count++
			})
			if count != len(want) {
				return false
			}
			for _, w := range want {
				if !seen[w.op] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestConflictsTable pins the thread-safety contract conflict matrix.
func TestConflictsTable(t *testing.T) {
	if Conflicts(KindRead, KindRead) {
		t.Fatal("read-read conflicts")
	}
	if !Conflicts(KindRead, KindWrite) || !Conflicts(KindWrite, KindRead) ||
		!Conflicts(KindWrite, KindWrite) {
		t.Fatal("write conflicts missing")
	}
}

// TestHBInferenceWindowWidth: after one inferred HB edge, exactly the next
// k_hb accesses of the blocked thread inherit the happens-after, no more.
func TestHBInferenceWindowWidth(t *testing.T) {
	cfg := testConfig(config.AlgoTSVD)
	cfg.HBInferenceWindow = 2
	cfg.DecayFactor = 0 // keep probabilities at 1 for determinism
	d := mustNew(t, cfg).(*TSVD)

	delay := cfg.EffectiveDelay()

	// Fabricate detector state directly: thread 2 had a previous access,
	// and a delay by thread 1 at op 900 recently finished.
	now := d.rt.now()
	st := d.rt.threadStateFor(2)
	st.lastAccess = now - delay
	d.delayMu.Lock()
	d.recentDelays = append(d.recentDelays, delayRecord{
		thread: 1, op: 900, start: now - delay, end: now - delay/4,
	})
	d.delayMu.Unlock()

	// Thread 2's next access after a ≥ δ·delay gap infers HB(900→901) and
	// opens a 2-access inheritance window covering 902 and 903 — not 904.
	d.OnCall(acc(2, 50, 901, KindWrite))
	d.OnCall(acc(2, 50, 902, KindWrite))
	d.OnCall(acc(2, 50, 903, KindWrite))
	d.OnCall(acc(2, 50, 904, KindWrite))

	d.set.mu.RLock()
	defer d.set.mu.RUnlock()
	for _, op := range []ids.OpID{901, 902, 903} {
		if _, dead := d.set.suppressed[report.KeyOf(900, op)]; !dead {
			t.Errorf("pair (900,%d) not suppressed by inference window", op)
		}
	}
	if _, dead := d.set.suppressed[report.KeyOf(900, 904)]; dead {
		t.Error("pair (900,904) suppressed beyond the k_hb window")
	}
}

// TestHBInferenceIgnoresOwnDelay: a thread's own injected delay must not be
// attributed as blocking itself.
func TestHBInferenceIgnoresOwnDelay(t *testing.T) {
	cfg := testConfig(config.AlgoTSVD)
	d := mustNew(t, cfg).(*TSVD)
	delay := cfg.EffectiveDelay()

	now := d.rt.now()
	st := d.rt.threadStateFor(1)
	st.lastAccess = now - 2*delay
	st.ownDelay = 2 * delay // the whole gap was its own delay
	d.delayMu.Lock()
	d.recentDelays = append(d.recentDelays, delayRecord{
		thread: 1, op: 910, start: now - 2*delay, end: now - delay,
	})
	d.delayMu.Unlock()

	d.OnCall(acc(1, 60, 911, KindWrite))

	d.set.mu.RLock()
	defer d.set.mu.RUnlock()
	if _, dead := d.set.suppressed[report.KeyOf(910, 911)]; dead {
		t.Fatal("own delay misattributed as a happens-before edge")
	}
}

// TestExportTrapsDeterministic: the trap file contents are sorted.
func TestExportTrapsDeterministic(t *testing.T) {
	cfg := testConfig(config.AlgoTSVD)
	cfg.DisableHBInference = true
	for trial := 0; trial < 3; trial++ {
		d := mustNew(t, cfg).(*TSVD)
		var stats atomicStats
		for _, k := range []report.PairKey{
			report.KeyOf(5, 9), report.KeyOf(1, 2), report.KeyOf(3, 3),
		} {
			d.set.add(k, &stats, nil)
		}
		got := d.ExportTraps()
		if len(got) != 3 {
			t.Fatalf("exported %d pairs", len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].A > got[i].A ||
				(got[i-1].A == got[i].A && got[i-1].B > got[i].B) {
				t.Fatalf("export not sorted: %v", got)
			}
		}
	}
}

// TestCoverageCounters: locations seen in any context vs concurrent context
// (the §5.2 "coverage statistics" one team used to find testing blind
// spots).
func TestCoverageCounters(t *testing.T) {
	d := mustNew(t, testConfig(config.AlgoTSVD))
	// Location 700 runs only single-threaded; 701/702 run concurrently.
	for i := 0; i < 20; i++ {
		d.OnCall(acc(1, 70, 700, KindWrite))
	}
	d1 := hammer(30, time.Millisecond, func(int) { d.OnCall(acc(2, 71, 701, KindWrite)) })
	d2 := hammer(30, time.Millisecond, func(int) { d.OnCall(acc(3, 71, 702, KindWrite)) })
	<-d1
	<-d2
	st := d.Stats()
	if st.LocationsSeen != 3 {
		t.Fatalf("LocationsSeen = %d, want 3", st.LocationsSeen)
	}
	if st.LocationsSeenConcurrent >= st.LocationsSeen {
		t.Fatalf("sequential-only location counted as concurrent: %+v", st)
	}
	if st.LocationsSeenConcurrent == 0 {
		t.Fatalf("no concurrent coverage recorded: %+v", st)
	}
}
