package chaos

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/trapstore"
)

// TestPlanDeterministic is the replayability contract: the plan — every
// action, every parameter — is a pure function of (Seed, Actions, Shards),
// bit for bit.
func TestPlanDeterministic(t *testing.T) {
	cfg := Config{Seed: 77, Actions: 40, Shards: 3}.withDefaults()
	a, b := describePlan(newPlan(cfg)), describePlan(newPlan(cfg))
	if len(a) != cfg.Actions+1 {
		t.Fatalf("plan has %d actions, want %d planned + 1 closing converge", len(a), cfg.Actions)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plans diverge at action %d:\n  %s\n  %s", i, a[i], b[i])
		}
	}
	if last := a[len(a)-1]; !strings.Contains(last, "converge") {
		t.Fatalf("plan does not end with a converge round: %s", last)
	}

	other := describePlan(newPlan(Config{Seed: 78, Actions: 40, Shards: 3}.withDefaults()))
	same := 0
	for i := range a {
		if a[i] == other[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 77 and 78 produced identical plans; the seed is not reaching the RNG")
	}
}

// TestRunDeterministic executes the same seed twice end to end: identical
// plans, identical verdicts.
func TestRunDeterministic(t *testing.T) {
	cfg := Config{Seed: 11, Actions: 8, Shards: 2}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Plan) != len(b.Plan) {
		t.Fatalf("plan lengths differ: %d vs %d", len(a.Plan), len(b.Plan))
	}
	for i := range a.Plan {
		if a.Plan[i] != b.Plan[i] {
			t.Fatalf("executed plans diverge at action %d:\n  %s\n  %s", i, a.Plan[i], b.Plan[i])
		}
	}
	if (a.Violation == nil) != (b.Violation == nil) {
		t.Fatalf("verdicts differ: %v vs %v", a.Violation, b.Violation)
	}
}

// TestCleanRunHoldsAllInvariants runs an unplanted plan through every check.
func TestCleanRunHoldsAllInvariants(t *testing.T) {
	res, err := Run(Config{Seed: 42, Actions: 10, Shards: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("clean run violated an invariant: %v\nexplanation:\n  %s",
			res.Violation, strings.Join(res.Violation.Explanation, "\n  "))
	}
	if res.ActionsRun != len(res.Plan) {
		t.Fatalf("ran %d of %d actions without a violation", res.ActionsRun, len(res.Plan))
	}
}

// TestPlantedFaultCaught arms the deliberately planted pair-loss bug — a
// Fallback that skips the local write when the remote publish succeeds —
// and requires the harness to catch it, minimize the plan, and explain the
// lost pairs, well inside the 200-action budget.
func TestPlantedFaultCaught(t *testing.T) {
	res, err := Run(Config{
		Seed: 11, Actions: 12, Shards: 2,
		Plant: trapstore.FaultLoseLocalPublish, Minimize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Violation
	if v == nil {
		t.Fatal("the planted lose-local-publish fault was not caught: the oracles are dead")
	}
	if v.Action >= 200 {
		t.Fatalf("planted fault caught only after action #%d, want < 200", v.Action)
	}
	if v.Invariant != "shard-file-pairs" {
		t.Fatalf("planted fault tripped invariant %q, want shard-file-pairs", v.Invariant)
	}
	if len(v.Explanation) == 0 {
		t.Fatal("violation carries no explanation slice")
	}
	var sawGain, sawCheck bool
	for _, line := range v.Explanation {
		if strings.Contains(line, "local file gained") {
			sawGain = true
		}
		if strings.Contains(line, "check failed after action") {
			sawCheck = true
		}
	}
	if !sawGain || !sawCheck {
		t.Fatalf("explanation slice lacks the pair history or the closing verdict:\n  %s",
			strings.Join(v.Explanation, "\n  "))
	}
	if v.MinimizedPlan == nil {
		t.Fatal("minimization was requested but MinimizedPlan is nil")
	}
	if len(v.MinimizedPlan) > v.Action+1 {
		t.Fatalf("minimized plan has %d actions, more than the %d-action failing prefix",
			len(v.MinimizedPlan), v.Action+1)
	}
	for _, line := range v.MinimizedPlan {
		if !strings.HasPrefix(line, "run ") && !strings.Contains(line, "converge") {
			t.Fatalf("minimized plan kept an action irrelevant to a publish-path bug: %s", line)
		}
	}
}

// TestPartitionHealClusterConvergence drives a hand-built worst-case
// replication plan against a three-daemon cluster: shards publish to
// different daemons, one daemon is partitioned away while the others
// exchange pairs, another is killed outright, the partition heals — and the
// closing converge must still leave every daemon and every shard file
// holding the identical set, with every per-daemon durability check green
// along the way.
func TestPartitionHealClusterConvergence(t *testing.T) {
	cfg := Config{Seed: 1, Shards: 2, Daemons: 3, Logf: t.Logf}.withDefaults()
	plan := []action{
		{kind: actRunShard, shard: 0, daemon: 0, algo: config.AlgoTSVD, mode: config.ModeFull,
			suite: 101, modules: 2, detSeed: 5, runSeed: 7},
		{kind: actPartitionDaemon, daemon: 2},
		{kind: actRunShard, shard: 1, daemon: 1, algo: config.AlgoTSVD, mode: config.ModeFull,
			suite: 102, modules: 3, detSeed: 6, runSeed: 8},
		// Daemons 0 and 1 exchange their sets; the partitioned daemon 2
		// stays behind (its sync legs fail, which must NOT be a violation).
		{kind: actPeerSync},
		{kind: actKillDaemon, daemon: 1},
		{kind: actHealPartition, daemon: 2},
		// Daemons 0 and 2 exchange; daemon 1 is down and stays behind.
		{kind: actPeerSync},
		// Converge restarts daemon 1 from its snapshot, runs a full round,
		// and demands exact cluster-wide set equality.
		{kind: actConverge},
	}
	v, ran, err := execute(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("partition/heal plan violated %q after action #%d: %s\nexplanation:\n  %s",
			v.Invariant, v.Action, v.Detail, strings.Join(explainLines(v), "\n  "))
	}
	if ran != len(plan) {
		t.Fatalf("ran %d of %d actions without a violation", ran, len(plan))
	}
}

// explainLines guards against a nil explanation when rendering a failure.
func explainLines(v *Violation) []string {
	if len(v.Explanation) > 0 {
		return v.Explanation
	}
	return []string{"(no explanation attached)"}
}

// TestRegressionSeedsReplay replays the committed database — the same check
// `make chaos-smoke` runs in CI.
func TestRegressionSeedsReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("replaying the full seed database is not a -short test")
	}
	n, err := ReplaySeeds("regression_seeds.json", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Fatal("the committed regression database is empty; at least one seed must be enforced")
	}
}

// TestSeedDBRoundTrip covers the database I/O and its validation.
func TestSeedDBRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seeds.json")
	db := &SeedDB{Version: 1, Seeds: []SeedEntry{
		{Seed: 9, Actions: 5, Shards: 2, Expect: "pass", Added: "2026-08-08"},
		{Seed: 9, Actions: 5, Shards: 2, Plant: "lose-local-publish", Expect: "caught", Added: "2026-08-08"},
	}}
	if err := SaveSeeds(path, db); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSeeds(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Seeds) != 2 || got.Seeds[1].Plant != "lose-local-publish" {
		t.Fatalf("round trip lost data: %+v", got)
	}

	bad := &SeedDB{Version: 1, Seeds: []SeedEntry{{Seed: 1, Expect: "maybe"}}}
	if err := SaveSeeds(path, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSeeds(path); err == nil {
		t.Fatal("LoadSeeds accepted an invalid expect verdict")
	}

	if _, err := ParsePlant("no-such-fault"); err == nil {
		t.Fatal("ParsePlant accepted an unknown fault name")
	}
	if name := PlantName(trapstore.FaultLoseLocalPublish); name != "lose-local-publish" {
		t.Fatalf("PlantName = %q", name)
	}
}
