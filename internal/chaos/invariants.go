package chaos

import (
	"errors"
	"fmt"

	"repro/internal/trapfile"
)

// checkInvariants verifies every fleet-state invariant against the model
// after action act. It reads only durable state (files) and the daemon's
// public API — never the implementation's internals — so a passing check
// means the *contracts* held, whatever the code did.
func (f *fleet) checkInvariants(act int, m *model) *Violation {
	// Invariant: per-daemon durability. Every pair daemon d acknowledged —
	// by client publish ack, peer push ack, or completed pull — is in d's
	// snapshot file (NewHandler and the replicator both persist through
	// OnMerge before acking), and no daemon's set exceeds the fleet-wide
	// published bound (pairs replicate between daemons, but none may appear
	// that no publish ever carried).
	published := m.published()
	for d, n := range f.nodes {
		snapFile, err := trapfile.LoadFile(n.snapPath)
		if err != nil {
			return violation(act, "snapshot-file-corrupt",
				fmt.Sprintf("daemon %d snapshot file is unreadable: %v", d, err), nil)
		}
		snapSet := setOf(snapFile.Pairs)
		if missing := m.ackedTo[d].minus(snapSet); len(missing) > 0 {
			return violation(act, "daemon-durability",
				fmt.Sprintf("%d pairs daemon %d acked are missing from its snapshot file: %v",
					len(missing), d, missing), missing)
		}
		if phantom := snapSet.minus(published); len(phantom) > 0 {
			return violation(act, "phantom-pair",
				fmt.Sprintf("daemon %d's snapshot file holds %d pairs no publish ever carried: %v",
					d, len(phantom), phantom), phantom)
		}

		// Invariant: a reachable daemon agrees with its own durability
		// contract. Down or partitioned daemons are checked through their
		// snapshot files only — that is all that survives them.
		if n.up && !n.partitioned {
			live, err := n.checker.Fetch()
			if err != nil {
				return violation(act, "daemon-unreachable",
					fmt.Sprintf("daemon %d is up but a pristine client cannot fetch: %v", d, err), nil)
			}
			liveSet := setOf(live.Pairs)
			if missing := m.ackedTo[d].minus(liveSet); len(missing) > 0 {
				return violation(act, "daemon-durability",
					fmt.Sprintf("%d pairs daemon %d acked are missing from its live set: %v",
						len(missing), d, missing), missing)
			}
			if phantom := liveSet.minus(published); len(phantom) > 0 {
				return violation(act, "phantom-pair",
					fmt.Sprintf("daemon %d's live set holds %d pairs no publish ever carried: %v",
						d, len(phantom), phantom), phantom)
			}
		}
	}

	// Invariant: the Fallback contract, per shard. A corrupted file must
	// stay detectably corrupt until healed; a healthy file holds exactly
	// the modeled set — every published pair durable, nothing extra.
	for i, path := range f.locals {
		if m.corrupt[i] {
			if _, err := trapfile.LoadFile(path); !errors.Is(err, trapfile.ErrCorrupt) {
				return violation(act, "corruption-undetected",
					fmt.Sprintf("shard %d file was overwritten with garbage but loads as %v, want ErrCorrupt",
						i, err), nil)
			}
			continue
		}
		file, err := trapfile.LoadFile(path)
		if err != nil {
			return violation(act, "shard-file-load",
				fmt.Sprintf("shard %d file unreadable: %v", i, err), nil)
		}
		got := setOf(file.Pairs)
		want := m.local[i]
		if want == nil {
			want = pairSet{}
		}
		if missing := want.minus(got); len(missing) > 0 {
			return violation(act, "shard-file-pairs",
				fmt.Sprintf("shard %d local file lost %d pairs its publishes were confirmed for: %v",
					i, len(missing), missing), missing)
		}
		if extra := got.minus(want); len(extra) > 0 {
			return violation(act, "shard-file-pairs",
				fmt.Sprintf("shard %d local file holds %d pairs no publish or pull put there: %v",
					i, len(extra), extra), extra)
		}
	}
	return nil
}
