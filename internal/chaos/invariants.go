package chaos

import (
	"errors"
	"fmt"

	"repro/internal/trapfile"
)

// checkInvariants verifies every fleet-state invariant against the model
// after action act. It reads only durable state (files) and the daemon's
// public API — never the implementation's internals — so a passing check
// means the *contracts* held, whatever the code did.
func (f *fleet) checkInvariants(act int, m *model) *Violation {
	// Invariant: daemon durability. Every acked pair is in the snapshot
	// file (NewHandler saves through OnMerge before writing the ack), and
	// the snapshot never holds pairs nobody published (acked ∪ limbo bounds
	// it above).
	snapFile, err := trapfile.LoadFile(f.snapPath)
	if err != nil {
		return violation(act, "snapshot-file-corrupt",
			fmt.Sprintf("daemon snapshot file is unreadable: %v", err), nil)
	}
	snapSet := setOf(snapFile.Pairs)
	if missing := m.acked.minus(snapSet); len(missing) > 0 {
		return violation(act, "daemon-durability",
			fmt.Sprintf("%d acked pairs are missing from the daemon snapshot file: %v",
				len(missing), missing), missing)
	}
	published := m.acked.union(m.limbo)
	if phantom := snapSet.minus(published); len(phantom) > 0 {
		return violation(act, "phantom-pair",
			fmt.Sprintf("the snapshot file holds %d pairs no publish ever carried: %v",
				len(phantom), phantom), phantom)
	}

	// Invariant: the live daemon agrees with its own durability contract.
	if f.up {
		live, err := f.checker.Fetch()
		if err != nil {
			return violation(act, "daemon-unreachable",
				fmt.Sprintf("the daemon is up but a pristine client cannot fetch: %v", err), nil)
		}
		liveSet := setOf(live.Pairs)
		if missing := m.acked.minus(liveSet); len(missing) > 0 {
			return violation(act, "daemon-durability",
				fmt.Sprintf("%d acked pairs are missing from the live daemon set: %v",
					len(missing), missing), missing)
		}
		if phantom := liveSet.minus(published); len(phantom) > 0 {
			return violation(act, "phantom-pair",
				fmt.Sprintf("the live daemon set holds %d pairs no publish ever carried: %v",
					len(phantom), phantom), phantom)
		}
	}

	// Invariant: the Fallback contract, per shard. A corrupted file must
	// stay detectably corrupt until healed; a healthy file holds exactly
	// the modeled set — every published pair durable, nothing extra.
	for i, path := range f.locals {
		if m.corrupt[i] {
			if _, err := trapfile.LoadFile(path); !errors.Is(err, trapfile.ErrCorrupt) {
				return violation(act, "corruption-undetected",
					fmt.Sprintf("shard %d file was overwritten with garbage but loads as %v, want ErrCorrupt",
						i, err), nil)
			}
			continue
		}
		file, err := trapfile.LoadFile(path)
		if err != nil {
			return violation(act, "shard-file-load",
				fmt.Sprintf("shard %d file unreadable: %v", i, err), nil)
		}
		got := setOf(file.Pairs)
		want := m.local[i]
		if want == nil {
			want = pairSet{}
		}
		if missing := want.minus(got); len(missing) > 0 {
			return violation(act, "shard-file-pairs",
				fmt.Sprintf("shard %d local file lost %d pairs its publishes were confirmed for: %v",
					i, len(missing), missing), missing)
		}
		if extra := got.minus(want); len(extra) > 0 {
			return violation(act, "shard-file-pairs",
				fmt.Sprintf("shard %d local file holds %d pairs no publish or pull put there: %v",
					i, len(extra), extra), extra)
		}
	}
	return nil
}
