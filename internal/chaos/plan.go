package chaos

import (
	"fmt"
	"math/rand"

	"repro/internal/config"
)

// actionKind enumerates the fleet operations a plan interleaves.
type actionKind int

const (
	// actRunShard: one CI shard runs a workload suite under a detector
	// variant and sampling mode, seeding from and publishing to the fleet
	// through a Fallback(HTTPStore, FileStore), optionally through an
	// injected network fault.
	actRunShard actionKind = iota
	// actKillDaemon: the daemon process dies; its in-memory set is gone,
	// only the snapshot file survives.
	actKillDaemon
	// actRestartDaemon: the daemon restarts (killing it first when up),
	// seeding its set from the snapshot file.
	actRestartDaemon
	// actCorruptFile: a shard's local trap file is overwritten with garbage
	// bytes — a detectable corruption the next run must classify as
	// trapfile.ErrCorrupt (exit code 3) before the shard heals it.
	actCorruptFile
	// actTruncateFile: a shard's local trap file is replaced by a valid
	// empty trap file — a silent external pair loss the fleet must absorb.
	actTruncateFile
	// actConcurrentPublish: several goroutines publish disjoint synthetic
	// pair sets straight at the daemon at once.
	actConcurrentPublish
	// actSupersedeInstall: exercises the public Session API — Install,
	// concurrent container traffic, supersede, Close — and its documented
	// lifecycle guarantees.
	actSupersedeInstall
	// actConverge: one anti-entropy round — push every healthy shard file
	// to the daemon, pull the snapshot back into every shard file — after
	// which daemon and shards must hold the identical set.
	actConverge
)

// action is one fully-parameterized plan step. Every random choice is drawn
// at plan time, so executing (or re-slicing) a plan involves no randomness.
type action struct {
	kind    actionKind
	shard   int
	algo    config.Algorithm
	mode    config.Mode
	sampleP float64
	suite   int64 // workload suite seed
	modules int
	detSeed int64 // detector Config.Seed
	runSeed int64 // harness schedule seed
	fault   faultSpec
	base    int // disjoint synthetic-pair namespace for concurrent publishes
}

func (a action) describe() string {
	switch a.kind {
	case actRunShard:
		mode := a.mode.String()
		if a.mode == config.ModeSampled {
			mode = fmt.Sprintf("sampled(p=%.1f)", a.sampleP)
		}
		return fmt.Sprintf("run shard=%d algo=%s mode=%s suite=%d modules=%d det=%d sched=%d fault=%s",
			a.shard, a.algo, mode, a.suite, a.modules, a.detSeed, a.runSeed, a.fault)
	case actKillDaemon:
		return "kill-daemon"
	case actRestartDaemon:
		return "restart-daemon (seed from snapshot)"
	case actCorruptFile:
		return fmt.Sprintf("corrupt-file shard=%d", a.shard)
	case actTruncateFile:
		return fmt.Sprintf("truncate-file shard=%d", a.shard)
	case actConcurrentPublish:
		return fmt.Sprintf("concurrent-publish base=%d writers=3", a.base)
	case actSupersedeInstall:
		return fmt.Sprintf("supersede-install det=%d", a.detSeed)
	case actConverge:
		return "converge (push locals, pull snapshot)"
	default:
		return fmt.Sprintf("unknown-action(%d)", a.kind)
	}
}

func describePlan(plan []action) []string {
	out := make([]string, len(plan))
	for i, a := range plan {
		out[i] = a.describe()
	}
	return out
}

// weightedKinds is the action mix. Shard runs dominate — they are the
// workload everything else disrupts; the disruptions stay frequent enough
// that a default-size plan exercises each several times.
var weightedKinds = []struct {
	kind   actionKind
	weight int
}{
	{actRunShard, 50},
	{actKillDaemon, 5},
	{actRestartDaemon, 10},
	{actCorruptFile, 5},
	{actTruncateFile, 5},
	{actConcurrentPublish, 8},
	{actSupersedeInstall, 5},
	{actConverge, 5},
}

// shardAlgos is the run-action algorithm mix: the trap-set variants dominate
// (they exercise the publish path with real pairs), but the random baselines
// stay in rotation — they publish empty sets, the degenerate case of the
// file contract.
var shardAlgos = []struct {
	algo   config.Algorithm
	weight int
}{
	{config.AlgoTSVD, 5},
	{config.AlgoTSVDHB, 3},
	{config.AlgoDynamicRandom, 1},
	{config.AlgoStaticRandom, 1},
}

// shardModes is the run-action sampling-mode mix; every Config.Mode stays in
// rotation.
var shardModes = []struct {
	mode   config.Mode
	weight int
}{
	{config.ModeFull, 3},
	{config.ModeSampled, 2},
	{config.ModeObserveOnly, 1},
}

// shardFaults is the run-action network-fault mix: most runs see a clean
// network so the fleet makes progress; the rest exercise every HTTPStore
// failure path.
var shardFaults = []struct {
	fault  faultSpec
	weight int
}{
	{faultSpec{}, 12},
	{faultSpec{kind: faultSlow}, 2},
	{faultSpec{kind: faultFlaky, n: 1}, 2},
	{faultSpec{kind: fault5xx, n: 1}, 2},
	{faultSpec{kind: faultKillMid, n: 1}, 1},
}

func pickWeighted(rng *rand.Rand, total int, weightAt func(int) int) int {
	roll := rng.Intn(total)
	for i := 0; ; i++ {
		roll -= weightAt(i)
		if roll < 0 {
			return i
		}
	}
}

// newPlan draws cfg.Actions weighted actions plus a closing converge from a
// seed-derived RNG. The plan is the single source of randomness for a run.
func newPlan(cfg Config) []action {
	rng := rand.New(rand.NewSource(cfg.Seed))
	kindTotal, algoTotal, modeTotal, faultTotal := 0, 0, 0, 0
	for _, k := range weightedKinds {
		kindTotal += k.weight
	}
	for _, a := range shardAlgos {
		algoTotal += a.weight
	}
	for _, m := range shardModes {
		modeTotal += m.weight
	}
	for _, f := range shardFaults {
		faultTotal += f.weight
	}

	plan := make([]action, 0, cfg.Actions+1)
	base := 0
	for len(plan) < cfg.Actions {
		var a action
		a.kind = weightedKinds[pickWeighted(rng, kindTotal, func(i int) int { return weightedKinds[i].weight })].kind
		switch a.kind {
		case actRunShard:
			a.shard = rng.Intn(cfg.Shards)
			a.algo = shardAlgos[pickWeighted(rng, algoTotal, func(i int) int { return shardAlgos[i].weight })].algo
			a.mode = shardModes[pickWeighted(rng, modeTotal, func(i int) int { return shardModes[i].weight })].mode
			if a.mode == config.ModeSampled {
				a.sampleP = []float64{0.3, 0.6, 0.9}[rng.Intn(3)]
			}
			a.suite = int64(101 + rng.Intn(3))
			a.modules = 2 + rng.Intn(3)
			a.detSeed = int64(rng.Intn(1 << 20))
			a.runSeed = int64(rng.Intn(1 << 20))
			a.fault = shardFaults[pickWeighted(rng, faultTotal, func(i int) int { return shardFaults[i].weight })].fault
		case actCorruptFile, actTruncateFile:
			a.shard = rng.Intn(cfg.Shards)
		case actConcurrentPublish:
			a.base = base
			base += 3 // three writers, each with its own disjoint namespace
		case actSupersedeInstall:
			a.detSeed = int64(rng.Intn(1 << 20))
		}
		plan = append(plan, a)
	}
	// Every plan ends with one anti-entropy round: the closing state must be
	// a converged fleet, whatever the chaos before it.
	return append(plan, action{kind: actConverge})
}
