package chaos

import (
	"fmt"
	"math/rand"

	"repro/internal/config"
)

// actionKind enumerates the fleet operations a plan interleaves.
type actionKind int

const (
	// actRunShard: one CI shard runs a workload suite under a detector
	// variant and sampling mode, seeding from and publishing to one of the
	// fleet's daemons through a Fallback(HTTPStore, FileStore), optionally
	// through an injected network fault.
	actRunShard actionKind = iota
	// actKillDaemon: one daemon process dies; its in-memory set is gone,
	// only its snapshot file survives.
	actKillDaemon
	// actRestartDaemon: one daemon restarts (killing it first when up),
	// restoring its set and generation from its snapshot file under a fresh
	// boot epoch.
	actRestartDaemon
	// actCorruptFile: a shard's local trap file is overwritten with garbage
	// bytes — a detectable corruption the next run must classify as
	// trapfile.ErrCorrupt (exit code 3) before the shard heals it.
	actCorruptFile
	// actTruncateFile: a shard's local trap file is replaced by a valid
	// empty trap file — a silent external pair loss the fleet must absorb.
	actTruncateFile
	// actConcurrentPublish: several goroutines publish disjoint synthetic
	// pair sets straight at one daemon at once.
	actConcurrentPublish
	// actSupersedeInstall: exercises the public Session API — Install,
	// concurrent container traffic, supersede, Close — and its documented
	// lifecycle guarantees.
	actSupersedeInstall
	// actPartitionDaemon: one daemon is partitioned away from the cluster —
	// peers and clients reach it as they would a dead host — while its own
	// process keeps running.
	actPartitionDaemon
	// actHealPartition: the named daemon's partition heals.
	actHealPartition
	// actPeerSync: one anti-entropy round on every live, unpartitioned
	// daemon — the replication that must move pairs between healthy daemons
	// and must not lose any across partitions.
	actPeerSync
	// actConverge: the closing storm — heal every partition, restart every
	// downed daemon, push every shard file into the cluster, one full
	// anti-entropy round — after which every daemon and every shard file
	// must hold the identical set.
	actConverge
)

// action is one fully-parameterized plan step. Every random choice is drawn
// at plan time, so executing (or re-slicing) a plan involves no randomness.
type action struct {
	kind    actionKind
	shard   int
	daemon  int
	algo    config.Algorithm
	mode    config.Mode
	sampleP float64
	suite   int64 // workload suite seed
	modules int
	detSeed int64 // detector Config.Seed
	runSeed int64 // harness schedule seed
	fault   faultSpec
	base    int // disjoint synthetic-pair namespace for concurrent publishes
}

func (a action) describe() string {
	switch a.kind {
	case actRunShard:
		mode := a.mode.String()
		if a.mode == config.ModeSampled {
			mode = fmt.Sprintf("sampled(p=%.1f)", a.sampleP)
		}
		return fmt.Sprintf("run shard=%d daemon=%d algo=%s mode=%s suite=%d modules=%d det=%d sched=%d fault=%s",
			a.shard, a.daemon, a.algo, mode, a.suite, a.modules, a.detSeed, a.runSeed, a.fault)
	case actKillDaemon:
		return fmt.Sprintf("kill-daemon daemon=%d", a.daemon)
	case actRestartDaemon:
		return fmt.Sprintf("restart-daemon daemon=%d (restore from snapshot)", a.daemon)
	case actCorruptFile:
		return fmt.Sprintf("corrupt-file shard=%d", a.shard)
	case actTruncateFile:
		return fmt.Sprintf("truncate-file shard=%d", a.shard)
	case actConcurrentPublish:
		return fmt.Sprintf("concurrent-publish daemon=%d base=%d writers=3", a.daemon, a.base)
	case actSupersedeInstall:
		return fmt.Sprintf("supersede-install det=%d", a.detSeed)
	case actPartitionDaemon:
		return fmt.Sprintf("partition-daemon daemon=%d", a.daemon)
	case actHealPartition:
		return fmt.Sprintf("heal-partition daemon=%d", a.daemon)
	case actPeerSync:
		return "peer-sync (anti-entropy round)"
	case actConverge:
		return "converge (heal, restart, push locals, full sync round)"
	default:
		return fmt.Sprintf("unknown-action(%d)", a.kind)
	}
}

func describePlan(plan []action) []string {
	out := make([]string, len(plan))
	for i, a := range plan {
		out[i] = a.describe()
	}
	return out
}

// weightedKinds is the action mix. Shard runs dominate — they are the
// workload everything else disrupts; the disruptions stay frequent enough
// that a default-size plan exercises each several times. The partition /
// heal / peer-sync trio only fires for multi-daemon fleets (newPlan skips
// them at Daemons == 1, where they would be no-ops or self-partitions that
// starve the whole plan).
var weightedKinds = []struct {
	kind   actionKind
	weight int
}{
	{actRunShard, 50},
	{actKillDaemon, 5},
	{actRestartDaemon, 10},
	{actCorruptFile, 5},
	{actTruncateFile, 5},
	{actConcurrentPublish, 8},
	{actSupersedeInstall, 5},
	{actPartitionDaemon, 5},
	{actHealPartition, 5},
	{actPeerSync, 8},
	{actConverge, 5},
}

// shardAlgos is the run-action algorithm mix: the trap-set variants dominate
// (they exercise the publish path with real pairs), but the random baselines
// stay in rotation — they publish empty sets, the degenerate case of the
// file contract.
var shardAlgos = []struct {
	algo   config.Algorithm
	weight int
}{
	{config.AlgoTSVD, 5},
	{config.AlgoTSVDHB, 3},
	{config.AlgoDynamicRandom, 1},
	{config.AlgoStaticRandom, 1},
}

// shardModes is the run-action sampling-mode mix; every Config.Mode stays in
// rotation.
var shardModes = []struct {
	mode   config.Mode
	weight int
}{
	{config.ModeFull, 3},
	{config.ModeSampled, 2},
	{config.ModeObserveOnly, 1},
}

// shardFaults is the run-action network-fault mix: most runs see a clean
// network so the fleet makes progress; the rest exercise every HTTPStore
// failure path.
var shardFaults = []struct {
	fault  faultSpec
	weight int
}{
	{faultSpec{}, 12},
	{faultSpec{kind: faultSlow}, 2},
	{faultSpec{kind: faultFlaky, n: 1}, 2},
	{faultSpec{kind: fault5xx, n: 1}, 2},
	{faultSpec{kind: faultKillMid, n: 1}, 1},
}

func pickWeighted(rng *rand.Rand, total int, weightAt func(int) int) int {
	roll := rng.Intn(total)
	for i := 0; ; i++ {
		roll -= weightAt(i)
		if roll < 0 {
			return i
		}
	}
}

// newPlan draws cfg.Actions weighted actions plus a closing converge from a
// seed-derived RNG. The plan is the single source of randomness for a run.
func newPlan(cfg Config) []action {
	rng := rand.New(rand.NewSource(cfg.Seed))
	kindTotal, algoTotal, modeTotal, faultTotal := 0, 0, 0, 0
	for _, k := range weightedKinds {
		kindTotal += k.weight
	}
	for _, a := range shardAlgos {
		algoTotal += a.weight
	}
	for _, m := range shardModes {
		modeTotal += m.weight
	}
	for _, f := range shardFaults {
		faultTotal += f.weight
	}

	plan := make([]action, 0, cfg.Actions+1)
	base := 0
	for len(plan) < cfg.Actions {
		var a action
		a.kind = weightedKinds[pickWeighted(rng, kindTotal, func(i int) int { return weightedKinds[i].weight })].kind
		switch a.kind {
		case actRunShard:
			a.shard = rng.Intn(cfg.Shards)
			a.daemon = rng.Intn(cfg.Daemons)
			a.algo = shardAlgos[pickWeighted(rng, algoTotal, func(i int) int { return shardAlgos[i].weight })].algo
			a.mode = shardModes[pickWeighted(rng, modeTotal, func(i int) int { return shardModes[i].weight })].mode
			if a.mode == config.ModeSampled {
				a.sampleP = []float64{0.3, 0.6, 0.9}[rng.Intn(3)]
			}
			a.suite = int64(101 + rng.Intn(3))
			a.modules = 2 + rng.Intn(3)
			a.detSeed = int64(rng.Intn(1 << 20))
			a.runSeed = int64(rng.Intn(1 << 20))
			a.fault = shardFaults[pickWeighted(rng, faultTotal, func(i int) int { return shardFaults[i].weight })].fault
		case actKillDaemon, actRestartDaemon:
			a.daemon = rng.Intn(cfg.Daemons)
		case actPartitionDaemon, actHealPartition:
			a.daemon = rng.Intn(cfg.Daemons)
			if cfg.Daemons == 1 {
				// Partitioning a single-daemon fleet's only daemon starves
				// every later action of a store; redraw as a shard-file
				// disruption instead (still deterministic: the redraw
				// consumes no extra randomness).
				a.kind = actTruncateFile
				a.shard = a.daemon % cfg.Shards
				a.daemon = 0
			}
		case actPeerSync:
			if cfg.Daemons == 1 {
				// A sync round with no peers is a no-op; keep the plan
				// meaningful by restarting the daemon instead.
				a.kind = actRestartDaemon
			}
		case actCorruptFile, actTruncateFile:
			a.shard = rng.Intn(cfg.Shards)
		case actConcurrentPublish:
			a.daemon = rng.Intn(cfg.Daemons)
			a.base = base
			base += 3 // three writers, each with its own disjoint namespace
		case actSupersedeInstall:
			a.detSeed = int64(rng.Intn(1 << 20))
		}
		plan = append(plan, a)
	}
	// Every plan ends with one converge: the closing state must be a fully
	// converged fleet, whatever the chaos before it.
	return append(plan, action{kind: actConverge})
}
