package chaos

// minimize shrinks a failing plan to a smaller action list that still trips
// the same invariant, ddmin-style: chunked backward elimination with halving
// chunk sizes, bounded by cfg.MaxReplays full re-executions. The final
// action — the one the violation fired after — is never dropped; every
// earlier action is a removal candidate. Re-execution is deterministic
// (actions carry all their randomness), so a trial is exactly "the same run
// minus those actions".
func minimize(cfg Config, plan []action, v *Violation) []action {
	cfg = cfg.quiet()
	cur := append([]action{}, plan[:v.Action+1]...)
	replays := 0

	// fails reports whether trial still breaches the same invariant.
	fails := func(trial []action) bool {
		if replays >= cfg.MaxReplays {
			return false
		}
		replays++
		tv, _, err := execute(cfg, trial)
		return err == nil && tv != nil && tv.Invariant == v.Invariant
	}

	for chunk := len(cur) / 2; chunk >= 1; chunk /= 2 {
		for start := len(cur) - 1 - chunk; start >= 0; start -= chunk {
			if start < 0 {
				break
			}
			end := start + chunk
			if end >= len(cur) {
				end = len(cur) - 1 // keep the final failing action
			}
			if end <= start {
				continue
			}
			trial := append(append([]action{}, cur[:start]...), cur[end:]...)
			if fails(trial) {
				cur = trial
			}
			if replays >= cfg.MaxReplays {
				return cur
			}
		}
	}
	return cur
}
