// Package chaos is the fleet chaos harness behind cmd/tsvd-chaos: a
// deterministic, seeded driver that interleaves weighted fleet actions —
// shard detector runs across every algorithm variant and sampling mode,
// daemon kills and snapshot-restored restarts, network partitions and
// heals, anti-entropy peer-sync rounds, trap-file corruption and
// truncation, slow/flaky/5xx networks injected into the HTTPStore transport,
// concurrent publishes, public-API session supersedes — against an
// in-process daemon cluster (real trapstore.NewHandler instances behind
// real HTTP servers, replicating via real trapstore.Replicators) and checks
// hard invariants after every action:
//
//   - Durability, per daemon: every pair a daemon acknowledged — client
//     publish ack, peer push ack, or completed pull — is in that daemon's
//     snapshot file (the ack contract), and no daemon's set ever exceeds
//     the fleet-wide published bound.
//   - The Fallback contract: each healthy shard's local trap file holds
//     exactly the union of that shard's published sets — no pair a run
//     discovered is ever lost, daemons up or down.
//   - Exact observability: every shard run's trace events reconcile against
//     its detector Stats and store totals (the tsvd-trace-check rule,
//     in-process), and its exported metrics series match the same counters
//     (the tsvd-metrics-check rule).
//   - Anti-entropy liveness: a sync leg between two healthy, unpartitioned
//     daemons never fails.
//   - Cluster convergence: after the plan's closing converge — partitions
//     healed, downed daemons restarted, one full sync round — every daemon
//     and every shard file hold the identical set: the fleet's G-Set CRDT
//     has one value.
//
// All randomness is drawn at plan time from the seed, so the action log is a
// pure function of (Seed, Actions, Shards, Daemons) and a failing seed
// replays exactly. Failing plans are minimized ddmin-style to a smaller
// failing action list, explained with an error-invariant-style slice of the
// events that touched the offending pairs, and committed to
// internal/chaos/regression_seeds.json, which `make chaos-smoke` replays
// forever (docs/TESTING.md).
package chaos

import (
	"fmt"
	"os"

	"repro/internal/trapfile"
	"repro/internal/trapstore"
)

// chaosScale is the detector TimeScale every chaos shard runs at: 2% of the
// paper's delays keeps a whole plan in seconds while preserving every
// code path.
const chaosScale = 0.02

// Config parameterizes one chaos run.
type Config struct {
	// Seed drives every random choice in the plan. Two runs with equal
	// (Seed, Actions, Shards, Daemons, Plant) produce bit-for-bit identical
	// action logs.
	Seed int64
	// Actions is the number of planned fleet actions (default 30). A closing
	// converge action is always appended, so the executed plan has
	// Actions+1 entries.
	Actions int
	// Shards is the number of simulated CI shards (default 3), each with its
	// own local trap file.
	Shards int
	// Daemons is the number of trap daemons in the simulated cluster
	// (default 1). With more than one, each daemon replicates to every other
	// via pull+push anti-entropy, the plan draws partition / heal /
	// peer-sync actions, and the closing converge requires every daemon to
	// hold the identical set.
	Daemons int
	// Plant arms a deliberately planted contract bug
	// (trapstore.PlantFault) for the duration of the run. The harness must
	// catch any non-FaultNone plant — replaying a planted seed that passes
	// is itself a failure, proving the oracles are alive.
	Plant trapstore.PlantedFault
	// Minimize shrinks a failing plan to a smaller failing action list
	// before reporting, bounded by MaxReplays full re-executions.
	Minimize bool
	// MaxReplays bounds minimization replays (default 12).
	MaxReplays int
	// Logf, when non-nil, receives the live action log and verdicts.
	Logf func(format string, args ...any)
	// Dir, when non-empty, is the working directory for trap files and the
	// daemon snapshot; empty selects a fresh temp directory removed when the
	// run finishes.
	Dir string
}

func (c Config) withDefaults() Config {
	if c.Actions <= 0 {
		c.Actions = 30
	}
	if c.Shards <= 0 {
		c.Shards = 3
	}
	if c.Daemons <= 0 {
		c.Daemons = 1
	}
	if c.MaxReplays <= 0 {
		c.MaxReplays = 12
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// quiet returns a copy suitable for minimization replays: no logging, no
// recursive minimization.
func (c Config) quiet() Config {
	c.Logf = func(string, ...any) {}
	c.Minimize = false
	return c
}

// Result is one chaos run's outcome.
type Result struct {
	// Plan is the full planned action log, one line per action, identical
	// across runs with the same Config.
	Plan []string
	// ActionsRun counts actions executed; fewer than len(Plan) when a
	// violation stopped the run early.
	ActionsRun int
	// Violation is nil when every invariant held through the whole plan.
	Violation *Violation
}

// Violation describes the first invariant breach of a run.
type Violation struct {
	// Action is the 0-based index into Result.Plan of the action after
	// which the invariant failed.
	Action int
	// Invariant names the breached invariant (e.g. "shard-file-pairs",
	// "daemon-durability", "trace-reconcile").
	Invariant string
	// Detail is the human-readable diagnosis, naming the offending pairs.
	Detail string
	// Explanation is the error-invariant-style slice: the ordered history of
	// model and store events that touched the offending pairs, ending at the
	// failed check — the minimal story of how the state diverged.
	Explanation []string
	// MinimizedPlan is the reduced failing action list when minimization
	// ran (Config.Minimize), nil otherwise.
	MinimizedPlan []string

	// pairs are the offending pairs the detail names, driving the
	// explanation slice.
	pairs []trapfile.Pair
}

// Error renders the violation as a one-line summary.
func (v *Violation) Error() string {
	return fmt.Sprintf("chaos: invariant %q failed after action #%d: %s", v.Invariant, v.Action, v.Detail)
}

// Run plans and executes one chaos run. The returned error reports
// environment problems (an unusable working directory); invariant breaches
// are reported in Result.Violation, never as an error.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	plan := newPlan(cfg)
	res := &Result{Plan: describePlan(plan)}

	v, ran, err := execute(cfg, plan)
	if err != nil {
		return nil, err
	}
	res.ActionsRun = ran
	res.Violation = v
	if v != nil && cfg.Minimize {
		res.Violation.MinimizedPlan = describePlan(minimize(cfg, plan, v))
	}
	return res, nil
}

// execute runs plan action by action against a fresh fleet, checking every
// invariant after every action. It returns the first violation (nil when the
// plan passes), the number of actions executed, and any environment error.
func execute(cfg Config, plan []action) (*Violation, int, error) {
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "tsvd-chaos-*")
		if err != nil {
			return nil, 0, fmt.Errorf("chaos: temp dir: %w", err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	trapstore.PlantFault(cfg.Plant)
	defer trapstore.PlantFault(trapstore.FaultNone)

	f, err := newFleet(cfg, dir)
	if err != nil {
		return nil, 0, err
	}
	defer f.shutdown()
	m := newModel(cfg.Shards, cfg.Daemons)

	for i, a := range plan {
		cfg.Logf("act#%02d %s", i, a.describe())
		if v := f.apply(i, a, m); v != nil {
			v.Explanation = m.explain(v)
			return v, i + 1, nil
		}
		if v := f.checkInvariants(i, m); v != nil {
			v.Explanation = m.explain(v)
			return v, i + 1, nil
		}
	}
	return nil, len(plan), nil
}
