package chaos

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/trapstore"
)

// SeedEntry is one committed regression seed: the full parameterization of a
// chaos run plus the expected verdict. Seeds with Expect "pass" are runs
// that once failed (or nearly failed) and must stay green; seeds with Expect
// "caught" carry a planted fault and prove the oracles still fire — a
// planted seed that passes is itself a harness failure.
type SeedEntry struct {
	// Seed is the plan seed; with Actions, Shards and Daemons it reproduces
	// the plan bit-for-bit.
	Seed int64 `json:"seed"`
	// Actions is the planned action count of the recorded run.
	Actions int `json:"actions"`
	// Shards is the shard count of the recorded run.
	Shards int `json:"shards"`
	// Daemons is the daemon-cluster size of the recorded run (0 means the
	// default single daemon).
	Daemons int `json:"daemons,omitempty"`
	// Plant names the armed fault: "" (none) or "lose-local-publish".
	Plant string `json:"plant,omitempty"`
	// Expect is the required verdict: "pass" (no violation) or "caught"
	// (some violation must fire).
	Expect string `json:"expect"`
	// Added is the date the seed was committed, for archaeology.
	Added string `json:"added"`
	// Note says what the seed exercises or which bug it once caught.
	Note string `json:"note,omitempty"`
}

// SeedDB is the committed regression-seed database
// (internal/chaos/regression_seeds.json), replayed by `make chaos-smoke`.
type SeedDB struct {
	// Version is the database format version (currently 1).
	Version int `json:"version"`
	// Seeds are the enforced regression seeds, in commit order.
	Seeds []SeedEntry `json:"seeds"`
}

// ParsePlant maps a SeedEntry.Plant name to the fault constant.
func ParsePlant(s string) (trapstore.PlantedFault, error) {
	switch s {
	case "":
		return trapstore.FaultNone, nil
	case "lose-local-publish":
		return trapstore.FaultLoseLocalPublish, nil
	default:
		return trapstore.FaultNone, fmt.Errorf("chaos: unknown planted fault %q", s)
	}
}

// PlantName is ParsePlant's inverse, for recording seeds.
func PlantName(f trapstore.PlantedFault) string {
	if f == trapstore.FaultLoseLocalPublish {
		return "lose-local-publish"
	}
	return ""
}

// LoadSeeds reads a seed database from path.
func LoadSeeds(path string) (*SeedDB, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chaos: read seeds: %w", err)
	}
	var db SeedDB
	if err := json.Unmarshal(raw, &db); err != nil {
		return nil, fmt.Errorf("chaos: parse seeds %s: %w", path, err)
	}
	for i, s := range db.Seeds {
		if s.Expect != "pass" && s.Expect != "caught" {
			return nil, fmt.Errorf("chaos: seed %d in %s: expect %q, want \"pass\" or \"caught\"", i, path, s.Expect)
		}
		if _, err := ParsePlant(s.Plant); err != nil {
			return nil, fmt.Errorf("chaos: seed %d in %s: %w", i, path, err)
		}
	}
	return &db, nil
}

// SaveSeeds writes db to path, indented for committing.
func SaveSeeds(path string, db *SeedDB) error {
	raw, err := json.MarshalIndent(db, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ReplaySeeds runs every seed in the database at path and checks each
// verdict against its Expect. It returns the number of seeds replayed and
// the first mismatch (a "pass" seed that violated, or a "caught" seed whose
// planted fault the oracles missed).
func ReplaySeeds(path string, logf func(format string, args ...any)) (int, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	db, err := LoadSeeds(path)
	if err != nil {
		return 0, err
	}
	for i, s := range db.Seeds {
		plant, _ := ParsePlant(s.Plant) // validated by LoadSeeds
		res, err := Run(Config{Seed: s.Seed, Actions: s.Actions, Shards: s.Shards, Daemons: s.Daemons, Plant: plant})
		if err != nil {
			return i, fmt.Errorf("chaos: seed %d (seed=%d): %w", i, s.Seed, err)
		}
		switch {
		case s.Expect == "pass" && res.Violation != nil:
			return i, fmt.Errorf("chaos: regression seed %d (seed=%d, %s) expected to pass but failed: %w",
				i, s.Seed, s.Note, res.Violation)
		case s.Expect == "caught" && res.Violation == nil:
			return i, fmt.Errorf("chaos: planted seed %d (seed=%d, plant=%s) passed — the oracles missed the planted fault",
				i, s.Seed, s.Plant)
		}
		logf("seed %d/%d ok: seed=%d actions=%d shards=%d daemons=%d plant=%q expect=%s",
			i+1, len(db.Seeds), s.Seed, s.Actions, s.Shards, s.Daemons, s.Plant, s.Expect)
	}
	return len(db.Seeds), nil
}
