package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/trapfile"
	"repro/internal/trapstore"
	"repro/internal/workload"
)

// chaosTool labels every trap set the harness produces.
const chaosTool = "TSVD"

// fleet is the simulated deployment: one in-process tsvd-trapd (the real
// trapstore handler behind a real HTTP server, persisting through the real
// SnapshotPersister) plus per-shard local trap files.
type fleet struct {
	cfg      Config
	dir      string
	snapPath string
	locals   []string

	mem     *trapstore.Memory
	srv     *httptest.Server
	checker *trapstore.HTTPStore // pristine client the invariant checks read through
	up      bool
}

func newFleet(cfg Config, dir string) (*fleet, error) {
	f := &fleet{
		cfg:      cfg,
		dir:      dir,
		snapPath: filepath.Join(dir, "daemon-snapshot.json"),
		locals:   make([]string, cfg.Shards),
	}
	for i := range f.locals {
		f.locals[i] = filepath.Join(dir, fmt.Sprintf("shard%d-traps.json", i))
	}
	if err := f.startDaemon(); err != nil {
		return nil, err
	}
	return f, nil
}

// startDaemon boots a fresh daemon: a new Memory seeded from the snapshot
// file, served over a real HTTP listener, persisting every growing merge
// through a fresh SnapshotPersister (fresh because generations restart with
// the daemon, exactly as in cmd/tsvd-trapd's one-persister-per-process).
func (f *fleet) startDaemon() error {
	persister := trapstore.NewSnapshotPersister(f.snapPath)
	seed, err := persister.Load()
	if err != nil {
		// The snapshot is written atomically; an unreadable one is a bug,
		// not an environment problem — but it is detected by the invariant
		// checks, not here. Refuse like the real daemon does.
		return fmt.Errorf("chaos: daemon refused to start: %w", err)
	}
	f.mem = trapstore.NewMemory(chaosTool, nil)
	f.mem.Seed(seed)
	h := trapstore.NewHandler(f.mem, trapstore.HandlerOptions{
		OnMerge: func(file trapfile.File, gen uint64) { _ = persister.Save(file, gen) },
	})
	f.srv = httptest.NewServer(h)
	f.checker = trapstore.NewHTTPStore(f.srv.URL, fastRetries(trapstore.HTTPConfig{}))
	f.up = true
	return nil
}

// killDaemon drops the daemon hard: connections die, the in-memory set is
// gone. The server URL keeps refusing connections, like a dead host.
func (f *fleet) killDaemon() {
	if !f.up {
		return
	}
	f.checker.Close()
	f.srv.CloseClientConnections()
	f.srv.Close()
	f.mem = nil
	f.up = false
}

func (f *fleet) shutdown() {
	if f.up {
		f.checker.Close()
		f.srv.Close()
		f.up = false
	}
}

// daemonURL returns the current (or, when down, the last) daemon base URL;
// a downed daemon's URL refuses connections.
func (f *fleet) daemonURL() string { return f.srv.URL }

// fastRetries tightens a client config to chaos pace: two attempts,
// millisecond backoffs. Callers' Tracer/Metrics/Transport fields pass
// through.
func fastRetries(cfg trapstore.HTTPConfig) trapstore.HTTPConfig {
	cfg.Timeout = 2 * time.Second
	cfg.Attempts = 2
	cfg.BackoffBase = time.Millisecond
	cfg.BackoffMax = 4 * time.Millisecond
	return cfg
}

// violation builds a Violation anchored at action act, naming the offending
// pairs for the explanation slice.
func violation(act int, invariant, detail string, pairs []trapfile.Pair) *Violation {
	return &Violation{Action: act, Invariant: invariant, Detail: detail, pairs: pairs}
}

// apply executes one action, updating the model. A non-nil return is an
// invariant breach observed during the action itself (oracle failures);
// post-action state checks live in checkInvariants.
func (f *fleet) apply(act int, a action, m *model) *Violation {
	switch a.kind {
	case actRunShard:
		return f.runShard(act, a, m)
	case actKillDaemon:
		m.event("act#%02d daemon killed (in-memory set discarded)", act)
		f.killDaemon()
		return nil
	case actRestartDaemon:
		f.killDaemon()
		if err := f.startDaemon(); err != nil {
			return violation(act, "daemon-restart",
				fmt.Sprintf("daemon failed to restart from its own snapshot: %v", err), nil)
		}
		m.event("act#%02d daemon restarted, seeded from snapshot", act)
		return nil
	case actCorruptFile:
		if err := os.WriteFile(f.locals[a.shard], []byte("{ this is not a trap file"), 0o644); err != nil {
			return violation(act, "environment", fmt.Sprintf("corrupting shard file: %v", err), nil)
		}
		m.corrupt[a.shard] = true
		m.event("act#%02d shard %d trap file overwritten with garbage", act, a.shard)
		return nil
	case actTruncateFile:
		if err := trapfile.Save(f.locals[a.shard], trapfile.File{Tool: chaosTool}); err != nil {
			return violation(act, "environment", fmt.Sprintf("truncating shard file: %v", err), nil)
		}
		m.clearLocal(a.shard, act, "file truncated to an empty valid trap file")
		m.corrupt[a.shard] = false
		m.event("act#%02d shard %d trap file truncated to empty", act, a.shard)
		return nil
	case actConcurrentPublish:
		return f.concurrentPublish(act, a, m)
	case actSupersedeInstall:
		return f.supersedeInstall(act, a)
	case actConverge:
		return f.converge(act, m)
	default:
		return violation(act, "plan", fmt.Sprintf("unknown action kind %d", a.kind), nil)
	}
}

// runShard executes one CI shard run through the full production stack —
// harness, Fallback(HTTPStore, FileStore), tracer, metrics — then applies
// the in-process oracles: store-error classification, ground-truth
// containment, exact trace reconciliation (the tsvd-trace-check rule) and
// exact metrics reconciliation (the tsvd-metrics-check rule) — and folds the
// observed outcome into the model.
func (f *fleet) runShard(act int, a action, m *model) *Violation {
	cfg := config.Defaults(a.algo).Scaled(chaosScale)
	cfg.Trace = true
	cfg.Seed = a.detSeed
	cfg.Mode = a.mode
	if a.mode == config.ModeSampled {
		cfg.SampleProbability = a.sampleP
	}
	if err := cfg.Validate(); err != nil {
		return violation(act, "plan", fmt.Sprintf("invalid shard config: %v", err), nil)
	}

	storeTracer := trace.New(1 << 14)
	detReg := metrics.NewRegistry()
	detMet := core.NewDetectorMetrics(detReg)
	storeReg := metrics.NewRegistry()

	rt := newFaultRT(a.fault, func() {
		m.event("act#%02d daemon killed mid-run by injected fault", act)
		f.killDaemon()
	})
	httpCfg := fastRetries(trapstore.HTTPConfig{Tracer: storeTracer, Metrics: storeReg, Transport: rt})
	remote := trapstore.NewHTTPStore(f.daemonURL(), httpCfg)
	local := trapstore.NewFileStore(f.locals[a.shard], storeTracer)
	store := trapstore.NewFallback(remote, local, storeTracer)
	store.RegisterMetrics(storeReg)
	defer store.Close()

	suite := workload.GenerateSuite(a.suite, a.modules)
	out := harness.Run(suite, harness.Options{
		Config:      cfg,
		Runs:        1,
		Parallelism: 4,
		RunSeedBase: harness.Seed(a.runSeed),
		Store:       store,
		Metrics:     detMet,
	})

	remTotals, localTotals, fbTotals := remote.Totals(), local.Totals(), store.Totals()

	// Oracle 1: the detector never fabricates pairs.
	if len(out.UnknownPairs) > 0 {
		return violation(act, "ground-truth",
			fmt.Sprintf("shard %d reported %d pairs outside the suite's planted ground truth",
				a.shard, len(out.UnknownPairs)), nil)
	}

	// Oracle 2: exact trace reconciliation — serialize every drained event
	// (detector modules plus the store pseudo-module) to JSONL, validate the
	// schema, and reconcile counts against Stats and store totals, exactly
	// as tsvd-trace-check does for tsvd-run output.
	stTot := storeTracer.Totals()
	traces := append(append([]trace.ModuleTrace{}, out.Traces...), trace.ModuleTrace{
		Module: "trapstore", Events: storeTracer.Drain(),
		Emitted: stTot.Emitted, Dropped: stTot.Dropped,
	})
	var buf bytes.Buffer
	for _, mt := range traces {
		if err := trace.WriteJSONL(&buf, mt); err != nil {
			return violation(act, "trace-schema", fmt.Sprintf("serializing trace: %v", err), nil)
		}
	}
	m.storeTail = storeTraceTail(&buf)
	counts, err := trace.ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return violation(act, "trace-schema", err.Error(), nil)
	}
	dropped := out.TraceTotals.Dropped + stTot.Dropped
	if err := trace.Reconcile(counts, out.TraceStatTotals(), fbTotals, dropped); err != nil {
		return violation(act, "trace-reconcile", err.Error(), nil)
	}

	// Oracle 3: exact metrics reconciliation — the exported series must
	// equal the same counters the trace just reconciled.
	if v := reconcileMetrics(act, a.shard, detReg, storeReg, out, remTotals,
		fbTotals.Fallbacks-remTotals.Fallbacks-localTotals.Fallbacks); v != nil {
		return v
	}

	// Oracle 4: store-error classification. A corrupt local file is the one
	// legitimate store failure, and it must classify as exit code 3; the
	// shard then heals by deleting the file, as an operator would.
	if m.corrupt[a.shard] {
		if code := harness.StoreExitCode(out.StoreErr); code != 3 {
			return violation(act, "corrupt-classification",
				fmt.Sprintf("shard %d ran over a corrupted trap file; StoreExitCode = %d (err %v), want 3",
					a.shard, code, out.StoreErr), nil)
		}
		if err := os.Remove(f.locals[a.shard]); err != nil {
			return violation(act, "environment", fmt.Sprintf("healing corrupt file: %v", err), nil)
		}
		m.corrupt[a.shard] = false
		m.clearLocal(a.shard, act, "corrupt file detected (exit 3) and deleted")
		m.event("act#%02d shard %d detected corruption, healed by deleting the file", act, a.shard)
		return nil
	}
	if out.StoreErr != nil {
		return violation(act, "store-error",
			fmt.Sprintf("shard %d store error with a healthy file (the Fallback should have degraded): %v",
				a.shard, out.StoreErr), nil)
	}

	// Fold the observed outcome into the model, by contract: publish
	// success ⇒ pairs durable in the local file; a daemon publish ack ⇒
	// pairs durable in the snapshot.
	pairs := trapfile.FromKeys(out.FinalTraps)
	m.localAdd(a.shard, pairs, act, fmt.Sprintf("published by %s run", a.algo))
	switch {
	case remTotals.Publishes >= 1:
		m.ack(pairs, act, fmt.Sprintf("shard %d publish acknowledged", a.shard))
	case rt.maybeDeliveredPosts() > 0:
		m.limboAdd(pairs, act, fmt.Sprintf("shard %d publish reached the wire but failed", a.shard))
	}
	return nil
}

// storeTraceTail extracts the trailing trapstore-module lines of a JSONL
// buffer for the explanation slice.
func storeTraceTail(buf *bytes.Buffer) []string {
	var tail []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, `"module":"trapstore"`) || strings.Contains(line, `"trapstore"`) {
			tail = append(tail, "store event: "+line)
		}
	}
	const max = 10
	if len(tail) > max {
		tail = tail[len(tail)-max:]
	}
	return tail
}

// reconcileMetrics applies the tsvd-metrics-check rule in-process: detector
// series equal Outcome.Stats, store series equal the wire totals.
func reconcileMetrics(act, shard int, detReg, storeReg *metrics.Registry, out *harness.Outcome,
	rem trace.StoreTotals, fbOwnFallbacks int64) *Violation {

	detVals := detReg.Values()
	for _, c := range []struct {
		series string
		want   int64
	}{
		{"tsvd_detector_on_calls_total", out.Stats.OnCalls},
		{"tsvd_detector_delays_injected_total", out.Stats.DelaysInjected},
		{"tsvd_detector_near_misses_total", out.Stats.NearMisses},
		{"tsvd_detector_pairs_added_total", out.Stats.PairsAdded},
		{"tsvd_detector_violations_total", out.Stats.Violations},
	} {
		if got := detVals[c.series]; got != float64(c.want) {
			return violation(act, "metrics-reconcile",
				fmt.Sprintf("shard %d: %s = %v, Stats say %d", shard, c.series, got, c.want), nil)
		}
	}
	storeVals := storeReg.Values()
	for _, c := range []struct {
		series string
		want   int64
	}{
		{`tsvd_store_ops_total{op="fetch"}`, rem.Fetches},
		{`tsvd_store_ops_total{op="publish"}`, rem.Publishes},
		{`tsvd_store_ops_total{op="fallback"}`, fbOwnFallbacks},
	} {
		if got := storeVals[c.series]; got != float64(c.want) {
			return violation(act, "metrics-reconcile",
				fmt.Sprintf("shard %d: %s = %v, wire totals say %d", shard, c.series, got, c.want), nil)
		}
	}
	return nil
}

// concurrentPublish hits the daemon with three simultaneous direct
// publishers carrying disjoint synthetic pair sets — the merge path under
// real request concurrency. Skipped (a visible no-op) when the daemon is
// down: there is nothing to publish at.
func (f *fleet) concurrentPublish(act int, a action, m *model) *Violation {
	if !f.up {
		m.event("act#%02d concurrent-publish skipped: daemon down", act)
		return nil
	}
	const writers = 3
	files := make([]trapfile.File, writers)
	for w := range files {
		ns := a.base + w
		files[w] = trapfile.File{Tool: chaosTool, Pairs: []trapfile.Pair{
			{A: fmt.Sprintf("chaos/pub%d.go:1", ns), B: fmt.Sprintf("chaos/pub%d.go:2", ns)},
			{A: fmt.Sprintf("chaos/pub%d.go:3", ns), B: fmt.Sprintf("chaos/pub%d.go:4", ns)},
		}}
	}
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := trapstore.NewHTTPStore(f.daemonURL(), fastRetries(trapstore.HTTPConfig{}))
			defer s.Close()
			errs[w] = s.Publish(files[w])
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err == nil {
			m.ack(files[w].Pairs, act, fmt.Sprintf("concurrent publisher %d acknowledged", w))
		} else {
			// The pairs reached the wire against a live daemon; treat the
			// failed writer's delivery as ambiguous rather than guessing.
			m.limboAdd(files[w].Pairs, act, fmt.Sprintf("concurrent publisher %d failed: %v", w, err))
		}
	}
	m.event("act#%02d concurrent-publish: 3 writers, %d pairs", act, 2*writers)
	return nil
}

// converge is one anti-entropy round: heal any corrupt file, push every
// shard file to the daemon (restarting it first if down), pull the snapshot
// back into every shard file, and require exact set equality everywhere —
// the G-Set CRDT's single converged value.
func (f *fleet) converge(act int, m *model) *Violation {
	if !f.up {
		if err := f.startDaemon(); err != nil {
			return violation(act, "daemon-restart",
				fmt.Sprintf("converge could not restart the daemon: %v", err), nil)
		}
		m.event("act#%02d converge restarted the daemon from its snapshot", act)
	}

	// Phase 0: heal corrupt files the way a shard run would (detect, delete).
	for i := range f.locals {
		if !m.corrupt[i] {
			continue
		}
		if _, err := trapfile.LoadFile(f.locals[i]); !errors.Is(err, trapfile.ErrCorrupt) {
			return violation(act, "corrupt-classification",
				fmt.Sprintf("shard %d file was corrupted but loads as %v, want ErrCorrupt", i, err), nil)
		}
		if err := os.Remove(f.locals[i]); err != nil {
			return violation(act, "environment", fmt.Sprintf("healing corrupt file: %v", err), nil)
		}
		m.corrupt[i] = false
		m.clearLocal(i, act, "corrupt file healed during converge")
	}

	// Phase 1: push. Every shard file's pairs end up acked.
	for i, path := range f.locals {
		file, err := trapfile.LoadFile(path)
		if err != nil {
			return violation(act, "shard-file-load",
				fmt.Sprintf("shard %d file unreadable during converge: %v", i, err), nil)
		}
		if len(file.Pairs) == 0 {
			continue
		}
		if err := f.checker.Publish(file); err != nil {
			return violation(act, "converge-push",
				fmt.Sprintf("pushing shard %d file to a live daemon failed: %v", i, err), nil)
		}
		m.ack(file.Pairs, act, fmt.Sprintf("shard %d file pushed during converge", i))
	}

	// Phase 2: pull. Every shard file absorbs the snapshot.
	snap, err := f.checker.Fetch()
	if err != nil {
		return violation(act, "converge-pull",
			fmt.Sprintf("fetching the snapshot from a live daemon failed: %v", err), nil)
	}
	for i, path := range f.locals {
		file, err := trapfile.LoadFile(path)
		if err != nil {
			return violation(act, "shard-file-load",
				fmt.Sprintf("shard %d file unreadable during converge pull: %v", i, err), nil)
		}
		merged := trapfile.Merge(file, snap)
		if err := trapfile.Save(path, merged); err != nil {
			return violation(act, "environment", fmt.Sprintf("saving shard %d file: %v", i, err), nil)
		}
		m.local[i] = setOf(merged.Pairs)
		m.localAdd(i, merged.Pairs, act, "converge pulled the snapshot")
	}

	// The converged fleet must agree exactly: every shard file == snapshot.
	want := setOf(snap.Pairs)
	for i, path := range f.locals {
		file, err := trapfile.LoadFile(path)
		if err != nil {
			return violation(act, "shard-file-load", fmt.Sprintf("shard %d: %v", i, err), nil)
		}
		got := setOf(file.Pairs)
		if missing := want.minus(got); len(missing) > 0 {
			return violation(act, "converge-equality",
				fmt.Sprintf("after converge, shard %d file is missing %d snapshot pairs: %v",
					i, len(missing), missing), missing)
		}
		if extra := got.minus(want); len(extra) > 0 {
			return violation(act, "converge-equality",
				fmt.Sprintf("after converge, shard %d file holds %d pairs the snapshot lacks: %v",
					i, len(extra), extra), extra)
		}
	}
	m.event("act#%02d converge complete: fleet agrees on %d pairs", act, len(snap.Pairs))
	return nil
}
