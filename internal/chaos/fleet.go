package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/trapfile"
	"repro/internal/trapstore"
	"repro/internal/workload"
)

// chaosTool labels every trap set the harness produces.
const chaosTool = "TSVD"

// gatedHandler fronts one daemon's HTTP handler behind a stable URL for the
// whole fleet lifetime. Peers and clients hold fixed URLs across daemon
// restarts (as they would fixed host:port pairs in production), so the
// listener must outlive the daemon process it serves: a down or partitioned
// daemon answers 503 — which HTTPStore classifies exactly like a refused
// connection (retry, then ErrUnavailable) — and a restarted daemon swaps a
// fresh handler in behind the same URL.
type gatedHandler struct {
	mu          sync.Mutex
	inner       http.Handler
	up          bool
	partitioned bool
}

func (g *gatedHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	inner, reachable := g.inner, g.up && !g.partitioned
	g.mu.Unlock()
	if !reachable {
		http.Error(w, "chaos: daemon unreachable", http.StatusServiceUnavailable)
		return
	}
	inner.ServeHTTP(w, r)
}

func (g *gatedHandler) swap(h http.Handler, up bool) {
	g.mu.Lock()
	g.inner, g.up = h, up
	g.mu.Unlock()
}

func (g *gatedHandler) setPartitioned(p bool) {
	g.mu.Lock()
	g.partitioned = p
	g.mu.Unlock()
}

// daemonNode is one tsvd-trapd of the simulated cluster: a real trapstore
// handler and replicator behind a real HTTP listener, persisting through the
// real SnapshotPersister.
type daemonNode struct {
	snapPath string
	srv      *httptest.Server
	gate     *gatedHandler
	checker  *trapstore.HTTPStore // pristine client the invariant checks read through

	mem         *trapstore.Memory
	repl        *trapstore.Replicator
	up          bool
	partitioned bool
}

// fleet is the simulated deployment: cfg.Daemons in-process tsvd-trapds
// replicating to each other (full mesh), plus per-shard local trap files.
type fleet struct {
	cfg    Config
	dir    string
	locals []string
	nodes  []*daemonNode
}

func newFleet(cfg Config, dir string) (*fleet, error) {
	f := &fleet{
		cfg:    cfg,
		dir:    dir,
		locals: make([]string, cfg.Shards),
		nodes:  make([]*daemonNode, cfg.Daemons),
	}
	for i := range f.locals {
		f.locals[i] = filepath.Join(dir, fmt.Sprintf("shard%d-traps.json", i))
	}
	// All listeners come up first so every node knows every peer URL before
	// any daemon starts.
	for i := range f.nodes {
		gate := &gatedHandler{}
		f.nodes[i] = &daemonNode{
			snapPath: filepath.Join(dir, fmt.Sprintf("daemon%d-snapshot.json", i)),
			gate:     gate,
			srv:      httptest.NewServer(gate),
		}
	}
	for i, n := range f.nodes {
		n.checker = trapstore.NewHTTPStore(n.srv.URL, fastRetries(trapstore.HTTPConfig{}))
		if err := f.startDaemon(i); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// startDaemon boots daemon i: a new Memory restored from its snapshot file
// (continuing the persisted generation under a fresh boot epoch, exactly as
// cmd/tsvd-trapd does), served behind its stable URL, persisting every
// growing merge through a fresh SnapshotPersister, with a replicator wired
// to every other node. The replicator is never Start()ed — the plan drives
// sync rounds deterministically via actPeerSync and converge.
func (f *fleet) startDaemon(i int) error {
	n := f.nodes[i]
	persister := trapstore.NewSnapshotPersister(n.snapPath)
	seed, prev, err := persister.Load()
	if err != nil {
		// The snapshot is written atomically; an unreadable one is a bug,
		// not an environment problem — but it is detected by the invariant
		// checks, not here. Refuse like the real daemon does.
		return fmt.Errorf("chaos: daemon %d refused to start: %w", i, err)
	}
	n.mem = trapstore.NewMemory(chaosTool, nil)
	n.mem.Restore(seed, prev)
	onMerge := func(file trapfile.File, st trapstore.SyncState) { _ = persister.Save(file, st) }
	h := trapstore.NewHandler(n.mem, trapstore.HandlerOptions{OnMerge: onMerge})
	var peers []string
	for j, p := range f.nodes {
		if j != i {
			peers = append(peers, p.srv.URL)
		}
	}
	n.repl = trapstore.NewReplicator(n.mem, trapstore.ReplicatorConfig{
		Peers:   peers,
		HTTP:    fastRetries(trapstore.HTTPConfig{}),
		OnMerge: onMerge,
	})
	n.gate.swap(h, true)
	n.up = true
	return nil
}

// peerIndex maps a node's replicator peer list position back to the fleet
// node index (the replicator skips the node itself).
func (f *fleet) peerIndex(node, peerPos int) int {
	if peerPos >= node {
		return peerPos + 1
	}
	return peerPos
}

// killDaemon drops daemon i hard: its in-memory set is gone, its URL starts
// refusing (503, which clients classify like a dead host), its replicator
// dies with it. Only the snapshot file survives.
func (f *fleet) killDaemon(i int) {
	n := f.nodes[i]
	if !n.up {
		return
	}
	n.gate.swap(nil, false)
	n.up = false
	if n.repl != nil {
		n.repl.Close()
		n.repl = nil
	}
	n.mem = nil
}

func (f *fleet) shutdown() {
	for i, n := range f.nodes {
		f.killDaemon(i)
		n.checker.Close()
		n.srv.Close()
	}
}

// daemonURL returns daemon i's base URL — stable for the fleet's lifetime,
// refusing requests while the daemon is down or partitioned.
func (f *fleet) daemonURL(i int) string { return f.nodes[i].srv.URL }

// fastRetries tightens a client config to chaos pace: two attempts,
// millisecond backoffs. Callers' Tracer/Metrics/Transport fields pass
// through.
func fastRetries(cfg trapstore.HTTPConfig) trapstore.HTTPConfig {
	cfg.Timeout = 2 * time.Second
	cfg.Attempts = 2
	cfg.BackoffBase = time.Millisecond
	cfg.BackoffMax = 4 * time.Millisecond
	return cfg
}

// violation builds a Violation anchored at action act, naming the offending
// pairs for the explanation slice.
func violation(act int, invariant, detail string, pairs []trapfile.Pair) *Violation {
	return &Violation{Action: act, Invariant: invariant, Detail: detail, pairs: pairs}
}

// apply executes one action, updating the model. A non-nil return is an
// invariant breach observed during the action itself (oracle failures);
// post-action state checks live in checkInvariants.
func (f *fleet) apply(act int, a action, m *model) *Violation {
	switch a.kind {
	case actRunShard:
		return f.runShard(act, a, m)
	case actKillDaemon:
		m.event("act#%02d daemon %d killed (in-memory set discarded)", act, a.daemon)
		f.killDaemon(a.daemon)
		return nil
	case actRestartDaemon:
		f.killDaemon(a.daemon)
		if err := f.startDaemon(a.daemon); err != nil {
			return violation(act, "daemon-restart",
				fmt.Sprintf("daemon %d failed to restart from its own snapshot: %v", a.daemon, err), nil)
		}
		m.event("act#%02d daemon %d restarted, restored from snapshot", act, a.daemon)
		return nil
	case actPartitionDaemon:
		n := f.nodes[a.daemon]
		n.partitioned = true
		n.gate.setPartitioned(true)
		m.event("act#%02d daemon %d partitioned away from the cluster", act, a.daemon)
		return nil
	case actHealPartition:
		n := f.nodes[a.daemon]
		n.partitioned = false
		n.gate.setPartitioned(false)
		m.event("act#%02d daemon %d partition healed", act, a.daemon)
		return nil
	case actPeerSync:
		return f.peerSync(act, m)
	case actCorruptFile:
		if err := os.WriteFile(f.locals[a.shard], []byte("{ this is not a trap file"), 0o644); err != nil {
			return violation(act, "environment", fmt.Sprintf("corrupting shard file: %v", err), nil)
		}
		m.corrupt[a.shard] = true
		m.event("act#%02d shard %d trap file overwritten with garbage", act, a.shard)
		return nil
	case actTruncateFile:
		if err := trapfile.Save(f.locals[a.shard], trapfile.File{Tool: chaosTool}); err != nil {
			return violation(act, "environment", fmt.Sprintf("truncating shard file: %v", err), nil)
		}
		m.clearLocal(a.shard, act, "file truncated to an empty valid trap file")
		m.corrupt[a.shard] = false
		m.event("act#%02d shard %d trap file truncated to empty", act, a.shard)
		return nil
	case actConcurrentPublish:
		return f.concurrentPublish(act, a, m)
	case actSupersedeInstall:
		return f.supersedeInstall(act, a)
	case actConverge:
		return f.converge(act, m)
	default:
		return violation(act, "plan", fmt.Sprintf("unknown action kind %d", a.kind), nil)
	}
}

// peerSync runs one anti-entropy round on every live, unpartitioned daemon
// in node order, folding the exact pulled/pushed pair lists into the model.
// A sync leg that fails against a peer that is itself live and reachable is
// an oracle failure: with no fault between two healthy daemons, anti-entropy
// must move pairs.
func (f *fleet) peerSync(act int, m *model) *Violation {
	moved := 0
	for i, n := range f.nodes {
		if !n.up || n.partitioned {
			continue
		}
		for pos, res := range n.repl.SyncOnce() {
			j := f.peerIndex(i, pos)
			peerOK := f.nodes[j].up && !f.nodes[j].partitioned
			if res.PullErr != nil {
				if peerOK {
					return violation(act, "peer-sync",
						fmt.Sprintf("daemon %d pull from healthy daemon %d failed: %v", i, j, res.PullErr), nil)
				}
			} else {
				m.ack(i, res.Pulled, act, fmt.Sprintf("daemon %d pulled from daemon %d", i, j))
				moved += len(res.Pulled)
			}
			if res.PushErr != nil {
				if peerOK {
					return violation(act, "peer-sync",
						fmt.Sprintf("daemon %d push to healthy daemon %d failed: %v", i, j, res.PushErr), nil)
				}
			} else if len(res.Pushed) > 0 {
				m.ack(j, res.Pushed, act, fmt.Sprintf("daemon %d pushed to daemon %d", i, j))
				moved += len(res.Pushed)
			}
		}
	}
	m.event("act#%02d peer-sync round moved %d pairs", act, moved)
	return nil
}

// runShard executes one CI shard run through the full production stack —
// harness, Fallback(HTTPStore, FileStore), tracer, metrics — then applies
// the in-process oracles: store-error classification, ground-truth
// containment, exact trace reconciliation (the tsvd-trace-check rule) and
// exact metrics reconciliation (the tsvd-metrics-check rule) — and folds the
// observed outcome into the model.
func (f *fleet) runShard(act int, a action, m *model) *Violation {
	cfg := config.Defaults(a.algo).Scaled(chaosScale)
	cfg.Trace = true
	cfg.Seed = a.detSeed
	cfg.Mode = a.mode
	if a.mode == config.ModeSampled {
		cfg.SampleProbability = a.sampleP
	}
	if err := cfg.Validate(); err != nil {
		return violation(act, "plan", fmt.Sprintf("invalid shard config: %v", err), nil)
	}

	storeTracer := trace.New(1 << 14)
	detReg := metrics.NewRegistry()
	detMet := core.NewDetectorMetrics(detReg)
	storeReg := metrics.NewRegistry()

	rt := newFaultRT(a.fault, func() {
		m.event("act#%02d daemon %d killed mid-run by injected fault", act, a.daemon)
		f.killDaemon(a.daemon)
	})
	httpCfg := fastRetries(trapstore.HTTPConfig{Tracer: storeTracer, Metrics: storeReg, Transport: rt})
	remote := trapstore.NewHTTPStore(f.daemonURL(a.daemon), httpCfg)
	local := trapstore.NewFileStore(f.locals[a.shard], storeTracer)
	store := trapstore.NewFallback(remote, local, storeTracer)
	store.RegisterMetrics(storeReg)
	defer store.Close()

	suite := workload.GenerateSuite(a.suite, a.modules)
	out := harness.Run(suite, harness.Options{
		Config:      cfg,
		Runs:        1,
		Parallelism: 4,
		RunSeedBase: harness.Seed(a.runSeed),
		Store:       store,
		Metrics:     detMet,
	})

	remTotals, localTotals, fbTotals := remote.Totals(), local.Totals(), store.Totals()

	// Oracle 1: the detector never fabricates pairs.
	if len(out.UnknownPairs) > 0 {
		return violation(act, "ground-truth",
			fmt.Sprintf("shard %d reported %d pairs outside the suite's planted ground truth",
				a.shard, len(out.UnknownPairs)), nil)
	}

	// Oracle 2: exact trace reconciliation — serialize every drained event
	// (detector modules plus the store pseudo-module) to JSONL, validate the
	// schema, and reconcile counts against Stats and store totals, exactly
	// as tsvd-trace-check does for tsvd-run output.
	stTot := storeTracer.Totals()
	traces := append(append([]trace.ModuleTrace{}, out.Traces...), trace.ModuleTrace{
		Module: "trapstore", Events: storeTracer.Drain(),
		Emitted: stTot.Emitted, Dropped: stTot.Dropped,
	})
	var buf bytes.Buffer
	for _, mt := range traces {
		if err := trace.WriteJSONL(&buf, mt, out.Sites); err != nil {
			return violation(act, "trace-schema", fmt.Sprintf("serializing trace: %v", err), nil)
		}
	}
	m.storeTail = storeTraceTail(&buf)
	counts, err := trace.ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return violation(act, "trace-schema", err.Error(), nil)
	}
	dropped := out.TraceTotals.Dropped + stTot.Dropped
	if err := trace.Reconcile(counts, out.TraceStatTotals(), fbTotals, dropped); err != nil {
		return violation(act, "trace-reconcile", err.Error(), nil)
	}

	// Oracle 3: exact metrics reconciliation — the exported series must
	// equal the same counters the trace just reconciled.
	if v := reconcileMetrics(act, a.shard, detReg, storeReg, out, remTotals,
		fbTotals.Fallbacks-remTotals.Fallbacks-localTotals.Fallbacks); v != nil {
		return v
	}

	// Oracle 4: store-error classification. A corrupt local file is the one
	// legitimate store failure, and it must classify as exit code 3; the
	// shard then heals by deleting the file, as an operator would.
	if m.corrupt[a.shard] {
		if code := harness.StoreExitCode(out.StoreErr); code != 3 {
			return violation(act, "corrupt-classification",
				fmt.Sprintf("shard %d ran over a corrupted trap file; StoreExitCode = %d (err %v), want 3",
					a.shard, code, out.StoreErr), nil)
		}
		if err := os.Remove(f.locals[a.shard]); err != nil {
			return violation(act, "environment", fmt.Sprintf("healing corrupt file: %v", err), nil)
		}
		m.corrupt[a.shard] = false
		m.clearLocal(a.shard, act, "corrupt file detected (exit 3) and deleted")
		m.event("act#%02d shard %d detected corruption, healed by deleting the file", act, a.shard)
		return nil
	}
	if out.StoreErr != nil {
		return violation(act, "store-error",
			fmt.Sprintf("shard %d store error with a healthy file (the Fallback should have degraded): %v",
				a.shard, out.StoreErr), nil)
	}

	// Fold the observed outcome into the model, by contract: publish
	// success ⇒ pairs durable in the local file; a daemon publish ack ⇒
	// pairs durable in that daemon's snapshot.
	pairs := trapfile.FromKeys(out.FinalTraps)
	m.localAdd(a.shard, pairs, act, fmt.Sprintf("published by %s run", a.algo))
	switch {
	case remTotals.Publishes >= 1:
		m.ack(a.daemon, pairs, act, fmt.Sprintf("shard %d publish acknowledged", a.shard))
	case rt.maybeDeliveredPosts() > 0:
		m.limboAdd(pairs, act, fmt.Sprintf("shard %d publish reached the wire but failed", a.shard))
	}
	return nil
}

// storeTraceTail extracts the trailing trapstore-module lines of a JSONL
// buffer for the explanation slice.
func storeTraceTail(buf *bytes.Buffer) []string {
	var tail []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, `"module":"trapstore"`) || strings.Contains(line, `"trapstore"`) {
			tail = append(tail, "store event: "+line)
		}
	}
	const max = 10
	if len(tail) > max {
		tail = tail[len(tail)-max:]
	}
	return tail
}

// reconcileMetrics applies the tsvd-metrics-check rule in-process: detector
// series equal Outcome.Stats, store series equal the wire totals.
func reconcileMetrics(act, shard int, detReg, storeReg *metrics.Registry, out *harness.Outcome,
	rem trace.StoreTotals, fbOwnFallbacks int64) *Violation {

	detVals := detReg.Values()
	for _, c := range []struct {
		series string
		want   int64
	}{
		{"tsvd_detector_on_calls_total", out.Stats.OnCalls},
		{"tsvd_detector_delays_injected_total", out.Stats.DelaysInjected},
		{"tsvd_detector_near_misses_total", out.Stats.NearMisses},
		{"tsvd_detector_pairs_added_total", out.Stats.PairsAdded},
		{"tsvd_detector_violations_total", out.Stats.Violations},
	} {
		if got := detVals[c.series]; got != float64(c.want) {
			return violation(act, "metrics-reconcile",
				fmt.Sprintf("shard %d: %s = %v, Stats say %d", shard, c.series, got, c.want), nil)
		}
	}
	storeVals := storeReg.Values()
	for _, c := range []struct {
		series string
		want   int64
	}{
		{`tsvd_store_ops_total{op="fetch"}`, rem.Fetches},
		{`tsvd_store_ops_total{op="publish"}`, rem.Publishes},
		{`tsvd_store_ops_total{op="fallback"}`, fbOwnFallbacks},
	} {
		if got := storeVals[c.series]; got != float64(c.want) {
			return violation(act, "metrics-reconcile",
				fmt.Sprintf("shard %d: %s = %v, wire totals say %d", shard, c.series, got, c.want), nil)
		}
	}
	return nil
}

// concurrentPublish hits one daemon with three simultaneous direct
// publishers carrying disjoint synthetic pair sets — the merge path under
// real request concurrency. Skipped (a visible no-op) when that daemon is
// unreachable: there is nothing to publish at.
func (f *fleet) concurrentPublish(act int, a action, m *model) *Violation {
	n := f.nodes[a.daemon]
	if !n.up || n.partitioned {
		m.event("act#%02d concurrent-publish skipped: daemon %d unreachable", act, a.daemon)
		return nil
	}
	const writers = 3
	files := make([]trapfile.File, writers)
	for w := range files {
		ns := a.base + w
		files[w] = trapfile.File{Tool: chaosTool, Pairs: []trapfile.Pair{
			{A: fmt.Sprintf("chaos/pub%d.go:1", ns), B: fmt.Sprintf("chaos/pub%d.go:2", ns)},
			{A: fmt.Sprintf("chaos/pub%d.go:3", ns), B: fmt.Sprintf("chaos/pub%d.go:4", ns)},
		}}
	}
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := trapstore.NewHTTPStore(f.daemonURL(a.daemon), fastRetries(trapstore.HTTPConfig{}))
			defer s.Close()
			errs[w] = s.Publish(files[w])
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err == nil {
			m.ack(a.daemon, files[w].Pairs, act, fmt.Sprintf("concurrent publisher %d acknowledged", w))
		} else {
			// The pairs reached the wire against a live daemon; treat the
			// failed writer's delivery as ambiguous rather than guessing.
			m.limboAdd(files[w].Pairs, act, fmt.Sprintf("concurrent publisher %d failed: %v", w, err))
		}
	}
	m.event("act#%02d concurrent-publish: 3 writers at daemon %d, %d pairs", act, a.daemon, 2*writers)
	return nil
}

// converge is the closing anti-entropy storm: heal every partition, restart
// every downed daemon, heal corrupt files, push every shard file into the
// cluster, run one full peer-sync round (after which every daemon holds
// every pair — each node's push leg broadcasts its set to all others), pull
// the converged snapshot back into every shard file, and require exact set
// equality across all daemons and all shard files — the G-Set CRDT's single
// converged value, cluster-wide.
func (f *fleet) converge(act int, m *model) *Violation {
	// Phase 0a: full connectivity. Partitions heal, downed daemons restart.
	for i, n := range f.nodes {
		if n.partitioned {
			n.partitioned = false
			n.gate.setPartitioned(false)
			m.event("act#%02d converge healed daemon %d's partition", act, i)
		}
		if !n.up {
			if err := f.startDaemon(i); err != nil {
				return violation(act, "daemon-restart",
					fmt.Sprintf("converge could not restart daemon %d: %v", i, err), nil)
			}
			m.event("act#%02d converge restarted daemon %d from its snapshot", act, i)
		}
	}

	// Phase 0b: heal corrupt files the way a shard run would (detect, delete).
	for i := range f.locals {
		if !m.corrupt[i] {
			continue
		}
		if _, err := trapfile.LoadFile(f.locals[i]); !errors.Is(err, trapfile.ErrCorrupt) {
			return violation(act, "corrupt-classification",
				fmt.Sprintf("shard %d file was corrupted but loads as %v, want ErrCorrupt", i, err), nil)
		}
		if err := os.Remove(f.locals[i]); err != nil {
			return violation(act, "environment", fmt.Sprintf("healing corrupt file: %v", err), nil)
		}
		m.corrupt[i] = false
		m.clearLocal(i, act, "corrupt file healed during converge")
	}

	// Phase 1: push. Every shard file's pairs enter the cluster via daemon 0.
	first := f.nodes[0]
	for i, path := range f.locals {
		file, err := trapfile.LoadFile(path)
		if err != nil {
			return violation(act, "shard-file-load",
				fmt.Sprintf("shard %d file unreadable during converge: %v", i, err), nil)
		}
		if len(file.Pairs) == 0 {
			continue
		}
		if err := first.checker.Publish(file); err != nil {
			return violation(act, "converge-push",
				fmt.Sprintf("pushing shard %d file to a live daemon failed: %v", i, err), nil)
		}
		m.ack(0, file.Pairs, act, fmt.Sprintf("shard %d file pushed during converge", i))
	}

	// Phase 2: one full anti-entropy round. Every node's push leg broadcasts
	// its whole unseen set to every other node, so a single round suffices
	// for cluster-wide convergence regardless of prior partitions.
	if v := f.peerSync(act, m); v != nil {
		return v
	}

	// Phase 3: every daemon must now hold the identical set — the new
	// cluster-convergence oracle.
	want, err := first.checker.Fetch()
	if err != nil {
		return violation(act, "converge-pull",
			fmt.Sprintf("fetching the snapshot from a live daemon failed: %v", err), nil)
	}
	wantSet := setOf(want.Pairs)
	for i, n := range f.nodes[1:] {
		got, err := n.checker.Fetch()
		if err != nil {
			return violation(act, "converge-pull",
				fmt.Sprintf("fetching daemon %d's set failed after partitions healed: %v", i+1, err), nil)
		}
		gotSet := setOf(got.Pairs)
		if missing := wantSet.minus(gotSet); len(missing) > 0 {
			return violation(act, "cluster-convergence",
				fmt.Sprintf("after converge, daemon %d is missing %d pairs daemon 0 holds: %v",
					i+1, len(missing), missing), missing)
		}
		if extra := gotSet.minus(wantSet); len(extra) > 0 {
			return violation(act, "cluster-convergence",
				fmt.Sprintf("after converge, daemon %d holds %d pairs daemon 0 lacks: %v",
					i+1, len(extra), extra), extra)
		}
	}
	// Every daemon now durably holds the converged set (peer pulls and
	// pushes persist through the same OnMerge hook as client publishes).
	for i := range f.nodes {
		m.ack(i, want.Pairs, act, "cluster converged on the full set")
	}

	// Phase 4: pull. Every shard file absorbs the converged snapshot.
	for i, path := range f.locals {
		file, err := trapfile.LoadFile(path)
		if err != nil {
			return violation(act, "shard-file-load",
				fmt.Sprintf("shard %d file unreadable during converge pull: %v", i, err), nil)
		}
		merged := trapfile.Merge(file, want)
		if err := trapfile.Save(path, merged); err != nil {
			return violation(act, "environment", fmt.Sprintf("saving shard %d file: %v", i, err), nil)
		}
		m.local[i] = setOf(merged.Pairs)
		m.localAdd(i, merged.Pairs, act, "converge pulled the snapshot")
	}

	// The converged fleet must agree exactly: every shard file == snapshot.
	for i, path := range f.locals {
		file, err := trapfile.LoadFile(path)
		if err != nil {
			return violation(act, "shard-file-load", fmt.Sprintf("shard %d: %v", i, err), nil)
		}
		got := setOf(file.Pairs)
		if missing := wantSet.minus(got); len(missing) > 0 {
			return violation(act, "converge-equality",
				fmt.Sprintf("after converge, shard %d file is missing %d snapshot pairs: %v",
					i, len(missing), missing), missing)
		}
		if extra := got.minus(wantSet); len(extra) > 0 {
			return violation(act, "converge-equality",
				fmt.Sprintf("after converge, shard %d file holds %d pairs the snapshot lacks: %v",
					i, len(extra), extra), extra)
		}
	}
	m.event("act#%02d converge complete: %d daemons and %d shards agree on %d pairs",
		act, len(f.nodes), len(f.locals), len(want.Pairs))
	return nil
}
