package chaos

import (
	"fmt"
	"sort"

	"repro/internal/trapfile"
)

// pairSet is a trap-pair set in model form.
type pairSet map[trapfile.Pair]bool

func setOf(pairs []trapfile.Pair) pairSet {
	s := make(pairSet, len(pairs))
	for _, p := range pairs {
		s[p] = true
	}
	return s
}

func (s pairSet) sorted() []trapfile.Pair {
	out := make([]trapfile.Pair, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// minus returns the members of s absent from t, sorted.
func (s pairSet) minus(t pairSet) []trapfile.Pair {
	var out []trapfile.Pair
	for p := range s {
		if !t[p] {
			out = append(out, p)
		}
	}
	return setOf(out).sorted()
}

// union returns s ∪ t as a fresh set.
func (s pairSet) union(t pairSet) pairSet {
	out := make(pairSet, len(s)+len(t))
	for p := range s {
		out[p] = true
	}
	for p := range t {
		out[p] = true
	}
	return out
}

// model is the contract-level ground truth the invariants compare the real
// fleet against. It is driven by the *contracts*, not the implementation:
// a publish the Fallback returned success for implies the pairs are in the
// shard's local file (local-first durability), and a publish the daemon
// acknowledged implies the pairs are in the snapshot file (ack-after-save).
// An implementation that breaks a contract — including a deliberately
// planted one — therefore diverges from the model and trips a check.
type model struct {
	// ackedTo[d]: pairs daemon d acknowledged — via a client publish ack, a
	// peer push it acked, or a pull it completed — and must therefore hold
	// in its set and snapshot file at all times.
	ackedTo []pairSet
	// limbo: pairs whose publish reached the wire but failed client-side —
	// some daemon may or may not hold them.
	limbo pairSet
	// local[i]: exactly what shard i's trap file must contain.
	local []pairSet
	// corrupt[i]: shard i's file was overwritten with garbage and the next
	// run over it must classify trapfile.ErrCorrupt before healing.
	corrupt []bool

	// history logs, per pair, every model transition that touched it; the
	// explanation slice for a violation is the concatenated history of the
	// offending pairs.
	history map[trapfile.Pair][]string
	// events logs shard- and daemon-level transitions (kills, corruption,
	// converge rounds) that explain state without naming single pairs.
	events []string
	// storeTail holds the last shard run's store-related trace lines, for
	// the explanation slice.
	storeTail []string
}

func newModel(shards, daemons int) *model {
	m := &model{
		ackedTo: make([]pairSet, daemons),
		limbo:   pairSet{},
		local:   make([]pairSet, shards),
		corrupt: make([]bool, shards),
		history: map[trapfile.Pair][]string{},
	}
	for i := range m.ackedTo {
		m.ackedTo[i] = pairSet{}
	}
	return m
}

// published is the set of pairs some publish ever carried to some daemon —
// the upper bound no daemon's set may exceed (pairs replicate between
// daemons, so the bound is fleet-wide, not per-daemon).
func (m *model) published() pairSet {
	out := make(pairSet, len(m.limbo))
	for _, acked := range m.ackedTo {
		for p := range acked {
			out[p] = true
		}
	}
	for p := range m.limbo {
		out[p] = true
	}
	return out
}

func (m *model) note(pairs []trapfile.Pair, format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	for _, p := range pairs {
		m.history[p] = append(m.history[p], line)
	}
}

func (m *model) event(format string, args ...any) {
	m.events = append(m.events, fmt.Sprintf(format, args...))
}

// localAdd records pairs becoming durable in shard's local file (a
// successful Fallback publish).
func (m *model) localAdd(shard int, pairs []trapfile.Pair, act int, why string) {
	if m.local[shard] == nil {
		m.local[shard] = pairSet{}
	}
	for _, p := range pairs {
		if !m.local[shard][p] {
			m.local[shard][p] = true
			m.history[p] = append(m.history[p],
				fmt.Sprintf("act#%02d shard %d local file gained %s|%s (%s)", act, shard, p.A, p.B, why))
		}
	}
}

// ack records pairs daemon d acknowledged — by client publish ack, peer
// push ack, or completed pull: durable in d's snapshot file from here on.
// Acked pairs leave limbo (their existence is confirmed).
func (m *model) ack(daemon int, pairs []trapfile.Pair, act int, why string) {
	for _, p := range pairs {
		if !m.ackedTo[daemon][p] {
			m.ackedTo[daemon][p] = true
			m.history[p] = append(m.history[p],
				fmt.Sprintf("act#%02d daemon %d acked %s|%s (%s)", act, daemon, p.A, p.B, why))
		}
		delete(m.limbo, p)
	}
}

// anyAcked reports whether some daemon already acked p.
func (m *model) anyAcked(p trapfile.Pair) bool {
	for _, acked := range m.ackedTo {
		if acked[p] {
			return true
		}
	}
	return false
}

// limboAdd records pairs whose delivery to a daemon is ambiguous.
func (m *model) limboAdd(pairs []trapfile.Pair, act int, why string) {
	for _, p := range pairs {
		if !m.anyAcked(p) && !m.limbo[p] {
			m.limbo[p] = true
			m.history[p] = append(m.history[p],
				fmt.Sprintf("act#%02d publish of %s|%s ambiguous (%s)", act, p.A, p.B, why))
		}
	}
}

// clearLocal empties shard's modeled file (corruption heal or truncation).
func (m *model) clearLocal(shard int, act int, why string) {
	for p := range m.local[shard] {
		m.history[p] = append(m.history[p],
			fmt.Sprintf("act#%02d shard %d local file lost %s|%s (%s)", act, shard, p.A, p.B, why))
	}
	m.local[shard] = pairSet{}
}

// explain assembles the error-invariant-style slice for v: the full history
// of every pair the detail names, the recent fleet-level events, and the
// last run's store trace tail — the minimal ordered story of the divergence.
func (m *model) explain(v *Violation) []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range v.pairs {
		for _, line := range m.history[p] {
			if !seen[line] {
				seen[line] = true
				out = append(out, line)
			}
		}
		if len(m.history[p]) == 0 {
			out = append(out, fmt.Sprintf("pair %s|%s has no model history: it appeared out of nowhere", p.A, p.B))
		}
	}
	const tail = 8
	ev := m.events
	if len(ev) > tail {
		ev = ev[len(ev)-tail:]
	}
	out = append(out, ev...)
	out = append(out, m.storeTail...)
	out = append(out, fmt.Sprintf("check failed after action #%d: %s", v.Action, v.Detail))
	return out
}
