package chaos

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"repro"
	"repro/internal/config"
)

// supersedeInstall exercises the public Session API's documented lifecycle
// under the chaos plan: Install a session, drive instrumented traffic,
// supersede it with a second Install mid-flight, drive concurrent traffic on
// the successor, Close it, and check every guarantee the API documents —
// the superseded session is Closed, Current tracks the newest Install, and
// post-Close operations fail with ErrNotInstalled.
func (f *fleet) supersedeInstall(act int, a action) *Violation {
	cfg := config.Defaults(config.AlgoTSVD).Scaled(chaosScale)
	cfg.Seed = a.detSeed

	s1, err := tsvd.Install(cfg)
	if err != nil {
		return violation(act, "session-supersede", fmt.Sprintf("first Install failed: %v", err), nil)
	}
	d1 := tsvd.NewDictionary[string, int]()
	for i := 0; i < 40; i++ {
		d1.Set(fmt.Sprintf("k%d", i%4), i)
		d1.TryGetValue(fmt.Sprintf("k%d", (i+1)%4))
	}
	if s1.Stats().OnCalls == 0 {
		return violation(act, "session-supersede",
			"installed session observed no instrumented calls from container traffic", nil)
	}

	s2, err := tsvd.Install(cfg)
	if err != nil {
		s1.Close()
		return violation(act, "session-supersede", fmt.Sprintf("superseding Install failed: %v", err), nil)
	}
	if !s1.Closed() {
		s2.Close()
		return violation(act, "session-supersede",
			"superseded session still reports Closed() == false", nil)
	}
	if tsvd.Current() != s2 {
		s2.Close()
		return violation(act, "session-supersede",
			"Current() does not track the superseding Install", nil)
	}

	d2 := tsvd.NewDictionary[string, int]()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				d2.Set(fmt.Sprintf("g%d", g%2), i)
				d2.TryGetValue(fmt.Sprintf("g%d", (g+1)%2))
			}
		}(g)
	}
	wg.Wait()

	if err := s2.Close(); err != nil {
		return violation(act, "session-supersede", fmt.Sprintf("Close failed: %v", err), nil)
	}
	if tsvd.Current() != nil {
		return violation(act, "session-supersede",
			"Current() still returns a session after Close", nil)
	}
	if err := tsvd.SaveTrapFile(filepath.Join(f.dir, "never-written.json")); !errors.Is(err, tsvd.ErrNotInstalled) {
		return violation(act, "session-supersede",
			fmt.Sprintf("SaveTrapFile after Close = %v, want ErrNotInstalled", err), nil)
	}
	return nil
}
