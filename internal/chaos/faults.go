package chaos

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// faultKind enumerates the network faults injectable between a shard's
// HTTPStore and the daemon, via HTTPConfig.Transport.
type faultKind int

const (
	// faultHealthy forwards everything untouched.
	faultHealthy faultKind = iota
	// faultSlow adds a fixed delay to every request (well inside the client
	// timeout: slowness the client must absorb, not an outage).
	faultSlow
	// faultFlaky fails the first n requests with a transport error; the
	// client's retry loop must recover.
	faultFlaky
	// fault5xx answers the first n requests with a synthesized 503; the
	// client must classify it as retryable.
	fault5xx
	// faultKillMid kills the daemon after n forwarded requests — mid-run,
	// typically between a shard's fetch and its publish — forcing the
	// Fallback onto the local file halfway through.
	faultKillMid
)

// faultSpec is one fault with its deterministic counter parameter. No
// randomness: the k-th request through a faultRT always sees the same fate,
// so replays are exact.
type faultSpec struct {
	kind faultKind
	n    int
}

func (f faultSpec) String() string {
	switch f.kind {
	case faultHealthy:
		return "none"
	case faultSlow:
		return "slow"
	case faultFlaky:
		return fmt.Sprintf("flaky(%d)", f.n)
	case fault5xx:
		return fmt.Sprintf("5xx(%d)", f.n)
	case faultKillMid:
		return fmt.Sprintf("kill-mid(%d)", f.n)
	default:
		return fmt.Sprintf("fault(%d)", f.kind)
	}
}

// faultRT is the fault-injecting http.RoundTripper. It counts requests with
// an atomic, keyed decisions off the count — deterministic given the
// client's (sequential) request order.
type faultRT struct {
	spec   faultSpec
	count  atomic.Int64
	posts  atomic.Int64 // POSTs whose forwarding was attempted (maybe delivered)
	onKill func()
	base   http.RoundTripper
}

func newFaultRT(spec faultSpec, onKill func()) *faultRT {
	return &faultRT{spec: spec, onKill: onKill, base: http.DefaultTransport}
}

// maybeDeliveredPosts reports how many POSTs at least reached the wire —
// the publishes whose delivery is ambiguous when the client saw an error.
func (rt *faultRT) maybeDeliveredPosts() int64 { return rt.posts.Load() }

// RoundTrip implements http.RoundTripper.
func (rt *faultRT) RoundTrip(req *http.Request) (*http.Response, error) {
	c := rt.count.Add(1)
	switch rt.spec.kind {
	case faultSlow:
		time.Sleep(2 * time.Millisecond)
	case faultFlaky:
		if c <= int64(rt.spec.n) {
			return nil, fmt.Errorf("chaos: injected transport fault (request %d)", c)
		}
	case fault5xx:
		if c <= int64(rt.spec.n) {
			return &http.Response{
				StatusCode: http.StatusServiceUnavailable,
				Status:     "503 Service Unavailable (chaos)",
				Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
				Header:  http.Header{},
				Body:    io.NopCloser(strings.NewReader("chaos: injected 503")),
				Request: req,
			}, nil
		}
	case faultKillMid:
		if c == int64(rt.spec.n)+1 && rt.onKill != nil {
			rt.onKill()
			rt.onKill = nil
		}
	}
	if req.Method == http.MethodPost {
		rt.posts.Add(1)
	}
	return rt.base.RoundTrip(req)
}
