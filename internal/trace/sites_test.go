package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/sites"
)

// TestJSONLSiteResolution: with a registry attached, v4 events carry the
// site ids of their ops, and the summary's sidecar table resolves each id
// back to the registered (location, class, method, kind) tuple.
func TestJSONLSiteResolution(t *testing.T) {
	a := ids.InternKey("pkg/site.go:1")
	b := ids.InternKey("pkg/site.go:2")
	orphan := ids.InternKey("pkg/site.go:3") // op with no registered site

	reg := sites.New()
	sa := reg.Register(a, "Dictionary", "Add", true)
	sb := reg.Register(b, "Dictionary", "ContainsKey", false)

	mt := ModuleTrace{
		Module: "m1", Run: 1,
		Events: []Event{
			{Kind: KindNearMiss, Thread: 3, Obj: 9, OpA: a, OpB: b,
				At: 5 * time.Microsecond, Dur: 2 * time.Microsecond},
			{Kind: KindTrapSet, Thread: 3, Obj: 9, OpA: orphan,
				At: 9 * time.Microsecond, Dur: time.Microsecond},
		},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, mt, reg); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d", len(lines))
	}

	var first, second JSONEvent
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first.SiteA != uint64(sa) || first.SiteB != uint64(sb) {
		t.Fatalf("near_miss sites = (%d, %d), want (%d, %d)",
			first.SiteA, first.SiteB, sa, sb)
	}
	// Unregistered ops serialize with no site reference, not a bogus one.
	if second.SiteA != 0 || second.SiteB != 0 {
		t.Fatalf("orphan op carried site ids (%d, %d)", second.SiteA, second.SiteB)
	}
	// The stream still validates as v4.
	if _, err := ValidateJSONL(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("resolved stream rejected: %v", err)
	}

	// Every site id an event references resolves through the sidecar table
	// to the tuple that was registered.
	table := SiteTable(reg)
	byID := map[uint64]SiteRecord{}
	for _, r := range table {
		byID[r.ID] = r
	}
	ra, ok := byID[first.SiteA]
	if !ok {
		t.Fatalf("site %d not in sidecar table %v", first.SiteA, table)
	}
	if ra.Loc != a.Key() || ra.Class != "Dictionary" || ra.Method != "Add" || !ra.Write {
		t.Fatalf("site %d resolved to %+v", first.SiteA, ra)
	}
	rb := byID[first.SiteB]
	if rb.Loc != b.Key() || rb.Class != "Dictionary" || rb.Method != "ContainsKey" || rb.Write {
		t.Fatalf("site %d resolved to %+v", first.SiteB, rb)
	}
}

// TestSiteTableOrderAndNil: the sidecar table lists sites in id order (so
// diffs are stable) and a nil registry yields a nil table, which the summary
// omits entirely.
func TestSiteTableOrderAndNil(t *testing.T) {
	if got := SiteTable(nil); got != nil {
		t.Fatalf("SiteTable(nil) = %v", got)
	}

	reg := sites.New()
	ops := []ids.OpID{
		ids.InternKey("pkg/order.go:3"),
		ids.InternKey("pkg/order.go:1"),
		ids.InternKey("pkg/order.go:2"),
	}
	for i, op := range ops {
		reg.Register(op, "List", "Add", i%2 == 0)
	}
	table := SiteTable(reg)
	if len(table) != len(ops) {
		t.Fatalf("table has %d rows, want %d", len(table), len(ops))
	}
	for i, r := range table {
		if r.ID != uint64(i+1) {
			t.Fatalf("row %d has id %d — not registration order", i, r.ID)
		}
		if r.Loc != ops[i].Key() {
			t.Fatalf("row %d loc = %q, want %q", i, r.Loc, ops[i].Key())
		}
	}

	// The summary round-trips the table.
	s := &Summary{
		Version: SchemaVersion, Tool: "tsvd", Modules: 1, Runs: 1,
		Sites: table,
	}
	var buf bytes.Buffer
	if err := s.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSummary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sites) != len(table) || got.Sites[0] != table[0] {
		t.Fatalf("summary round trip lost sites: %+v", got.Sites)
	}
}
