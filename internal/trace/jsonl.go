package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/ids"
	"repro/internal/sites"
)

// SchemaVersion guards trace consumers against incompatible producers; it is
// carried on every JSONL line so files remain self-describing when
// concatenated or split. Version 2 added the trap-store event kinds
// (store_fetch, store_publish, store_fallback) and the summary's store
// totals. Version 3 added the sampling-tier kinds (delay_suppressed,
// sampler_throttle) and their stat totals (docs/SAMPLING.md). Version 4
// added interned site references: events carry site_a/site_b ids and the
// summary carries the sidecar site table resolving each id to its
// (location, class, method, kind) tuple, so traces survive renames of the
// API strings and cross-process comparison goes through stable tuples
// rather than process-local ids. Version 5 added the per-stream event index
// `i` (1-based, strictly increasing within one module-run stream): drained
// events are sorted by (timestamp, emission sequence), but t_us alone has
// microsecond ties, and the explanation slices internal/triage carves need
// the exact event order to survive the round-trip through JSONL.
const SchemaVersion = 5

// JSONEvent is the wire form of one event: one JSON object per line
// (docs/OBSERVABILITY.md documents the schema field by field). Locations are
// resolved to their stable interned keys at serialization time — never on the
// emission path — so traces from different processes are comparable. Site
// references (schema v4) resolve through the producing detector's site
// registry the same way; 0 means the op had no registered site.
type JSONEvent struct {
	V  int    `json:"v"`
	Ev string `json:"ev"`
	// I is the 1-based event index within its module-run stream (schema
	// v5): the tie-breaker that preserves exact drained order across the
	// JSONL round-trip, since t_us has microsecond ties.
	I      int64  `json:"i"`
	Module string `json:"module,omitempty"`
	Run    int    `json:"run,omitempty"`
	TUS    int64  `json:"t_us"`
	Thread int64  `json:"thread,omitempty"`
	Obj    uint64 `json:"obj,omitempty"`
	OpA    uint64 `json:"op_a,omitempty"`
	OpB    uint64 `json:"op_b,omitempty"`
	LocA   string `json:"loc_a,omitempty"`
	LocB   string `json:"loc_b,omitempty"`
	SiteA  uint64 `json:"site_a,omitempty"`
	SiteB  uint64 `json:"site_b,omitempty"`
	DurUS  int64  `json:"dur_us,omitempty"`
}

// jsonEventOf converts one drained event, resolving site references through
// reg (nil reg leaves them zero).
func jsonEventOf(module string, run int, e Event, reg *sites.Registry) JSONEvent {
	je := JSONEvent{
		V:      SchemaVersion,
		Ev:     e.Kind.String(),
		Module: module,
		Run:    run,
		TUS:    e.At.Microseconds(),
		Thread: int64(e.Thread),
		Obj:    uint64(e.Obj),
		OpA:    uint64(e.OpA),
		OpB:    uint64(e.OpB),
		DurUS:  e.Dur.Microseconds(),
	}
	if e.OpA != 0 {
		je.LocA = e.OpA.Key()
		if reg != nil {
			if s, ok := reg.SiteForOp(e.OpA); ok {
				je.SiteA = uint64(s.ID)
			}
		}
	}
	if e.OpB != 0 {
		je.LocB = e.OpB.Key()
		if reg != nil {
			if s, ok := reg.SiteForOp(e.OpB); ok {
				je.SiteB = uint64(s.ID)
			}
		}
	}
	return je
}

// WriteJSONL serializes one module trace, one event per line. reg is the
// producing detector's site registry, used to resolve the v4 site references;
// nil emits events without site ids (legacy producers, fabricated tests).
func WriteJSONL(w io.Writer, mt ModuleTrace, reg *sites.Registry) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, e := range mt.Events {
		je := jsonEventOf(mt.Module, mt.Run, e, reg)
		je.I = int64(i) + 1
		if err := enc.Encode(je); err != nil {
			return fmt.Errorf("trace: encode event: %w", err)
		}
	}
	return bw.Flush()
}

// SiteRecord is one row of the summary's sidecar site table: the stable
// tuple a process-local site id resolves to. Consumers joining traces from
// different processes must match on the tuple, not the id.
type SiteRecord struct {
	ID     uint64 `json:"id"`
	Loc    string `json:"loc"`
	Class  string `json:"class,omitempty"`
	Method string `json:"method,omitempty"`
	Write  bool   `json:"write,omitempty"`
}

// SiteTable renders reg's registered sites in id order for the summary
// sidecar (nil for a nil registry).
func SiteTable(reg *sites.Registry) []SiteRecord {
	if reg == nil {
		return nil
	}
	snap := reg.Snapshot()
	out := make([]SiteRecord, 0, len(snap))
	for _, s := range snap {
		out = append(out, SiteRecord{
			ID:     uint64(s.ID),
			Loc:    s.Op.Key(),
			Class:  s.Class,
			Method: s.Method,
			Write:  s.Write,
		})
	}
	return out
}

// pairKinds require both locations on the wire.
var pairKinds = map[Kind]bool{
	KindNearMiss:        true,
	KindTrapSprung:      true,
	KindPairAdded:       true,
	KindHBEdge:          true,
	KindPairPrunedHB:    true,
	KindPairPrunedDecay: true,
}

// checkLine validates one parsed wire event; line is for error context.
func checkLine(je JSONEvent, line int) error {
	if je.V != SchemaVersion {
		return fmt.Errorf("trace: line %d: schema version %d, want %d", line, je.V, SchemaVersion)
	}
	k, ok := KindFromString(je.Ev)
	if !ok {
		return fmt.Errorf("trace: line %d: unknown event kind %q", line, je.Ev)
	}
	if je.I < 1 {
		return fmt.Errorf("trace: line %d: event index %d, want >= 1", line, je.I)
	}
	if je.TUS < 0 {
		return fmt.Errorf("trace: line %d: negative timestamp %d", line, je.TUS)
	}
	if je.DurUS < 0 {
		return fmt.Errorf("trace: line %d: negative duration %d", line, je.DurUS)
	}
	if je.OpA == 0 {
		return fmt.Errorf("trace: line %d: %s event without op_a", line, je.Ev)
	}
	if pairKinds[k] && je.OpB == 0 {
		return fmt.Errorf("trace: line %d: %s event without op_b", line, je.Ev)
	}
	return nil
}

// scanJSONL parses and validates r line by line, calling fn per event. The
// first malformed line fails the whole stream: a trace that cannot be
// trusted line-by-line cannot be reconciled at all. Indexes must be
// strictly increasing within each (module, run) stream — the writer's
// guarantee, and the property that makes the order reconstructible.
func scanJSONL(r io.Reader, fn func(JSONEvent)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	type streamKey struct {
		module string
		run    int
	}
	lastIdx := map[streamKey]int64{}
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je JSONEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return fmt.Errorf("trace: line %d: invalid JSON: %w", line, err)
		}
		if err := checkLine(je, line); err != nil {
			return err
		}
		sk := streamKey{je.Module, je.Run}
		if last := lastIdx[sk]; je.I <= last {
			return fmt.Errorf("trace: line %d: event index %d not increasing (last %d) in stream %s/%d",
				line, je.I, last, je.Module, je.Run)
		}
		lastIdx[sk] = je.I
		fn(je)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("trace: read: %w", err)
	}
	return nil
}

// ValidateJSONL checks every line of r against the schema and returns the
// event counts by kind — the input of reconciliation against core.Stats.
func ValidateJSONL(r io.Reader) (map[string]int64, error) {
	counts := map[string]int64{}
	err := scanJSONL(r, func(je JSONEvent) { counts[je.Ev]++ })
	if err != nil {
		return nil, err
	}
	return counts, nil
}

// ReadJSONL parses and validates every line of r, returning the wire events
// in stream order — the consumer half of WriteJSONL, used by tsvd-triage
// and the round-trip tests.
func ReadJSONL(r io.Reader) ([]JSONEvent, error) {
	var out []JSONEvent
	err := scanJSONL(r, func(je JSONEvent) { out = append(out, je) })
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EventOf converts one wire event back to the in-memory form. Locations
// re-intern through their stable keys, so an op resolved in the consuming
// process compares equal (by key) with the producer's; events whose ops
// were never key-interned fall back to the raw numeric id.
func EventOf(je JSONEvent) Event {
	k, _ := KindFromString(je.Ev)
	e := Event{
		Kind:   k,
		Thread: ids.ThreadID(je.Thread),
		Obj:    ids.ObjectID(je.Obj),
		At:     time.Duration(je.TUS) * time.Microsecond,
		Dur:    time.Duration(je.DurUS) * time.Microsecond,
	}
	e.OpA = opOf(je.OpA, je.LocA)
	e.OpB = opOf(je.OpB, je.LocB)
	return e
}

// opOf maps a wire op reference to an OpID: by stable key when the
// producer resolved one, by raw id otherwise.
func opOf(raw uint64, loc string) ids.OpID {
	if loc != "" {
		return ids.InternKey(loc)
	}
	return ids.OpID(raw)
}

// ModuleTracesOf regroups wire events into per-(module, run) traces, each
// stream ordered by its v5 event index — the inverse of writing every
// module trace into one events.jsonl. Emitted counts the events present;
// drop accounting lives in the summary sidecar, not the event stream.
func ModuleTracesOf(jes []JSONEvent) []ModuleTrace {
	type streamKey struct {
		module string
		run    int
	}
	idx := map[streamKey]int{}
	var out []ModuleTrace
	for _, je := range jes {
		sk := streamKey{je.Module, je.Run}
		i, ok := idx[sk]
		if !ok {
			i = len(out)
			idx[sk] = i
			out = append(out, ModuleTrace{Module: je.Module, Run: je.Run})
		}
		out[i].Events = append(out[i].Events, EventOf(je))
		out[i].Emitted++
	}
	return out
}

// StatTotals are the core.Stats counters that have an exact event-count
// mirror. Defined here (rather than importing internal/core, which imports
// this package) so producers and validators share one reconciliation rule.
type StatTotals struct {
	DelaysInjected   int64 `json:"delays_injected"`
	NearMisses       int64 `json:"near_misses"`
	PairsAdded       int64 `json:"pairs_added"`
	PairsPrunedHB    int64 `json:"pairs_pruned_hb"`
	PairsPrunedDecay int64 `json:"pairs_pruned_decay"`
	Violations       int64 `json:"violations"`
	DelaysSuppressed int64 `json:"delays_suppressed"`
	SamplerThrottles int64 `json:"sampler_throttles"`
}

// StoreTotals are the trap-store operation counters with an exact
// event-count mirror: a store's successful fetches, successful publishes,
// and primary→local fallbacks (internal/trapstore.Totals, in the wire form
// shared between producer and validator).
type StoreTotals struct {
	Fetches   int64 `json:"fetches"`
	Publishes int64 `json:"publishes"`
	Fallbacks int64 `json:"fallbacks"`
}

// Reconcile checks the event counts against the aggregate counters — the
// detector's and the trap store's — and returns one error per divergence,
// joined. A dropped event breaks the guarantee by construction, so any drop
// is also an error.
func Reconcile(counts map[string]int64, stats StatTotals, store StoreTotals, dropped int64) error {
	var errs []error
	check := func(kind Kind, want int64) {
		if got := counts[kind.String()]; got != want {
			errs = append(errs, fmt.Errorf("trace: %s events = %d, stats say %d", kind, got, want))
		}
	}
	if dropped != 0 {
		errs = append(errs, fmt.Errorf("trace: %d events dropped; counts cannot reconcile", dropped))
	}
	check(KindTrapSet, stats.DelaysInjected)
	check(KindDelayInjected, stats.DelaysInjected)
	check(KindNearMiss, stats.NearMisses)
	check(KindPairAdded, stats.PairsAdded)
	check(KindPairPrunedHB, stats.PairsPrunedHB)
	check(KindPairPrunedDecay, stats.PairsPrunedDecay)
	check(KindTrapSprung, stats.Violations)
	check(KindStoreFetch, store.Fetches)
	check(KindStorePublish, store.Publishes)
	check(KindStoreFallback, store.Fallbacks)
	check(KindDelaySuppressed, stats.DelaysSuppressed)
	check(KindSamplerThrottle, stats.SamplerThrottles)
	if len(errs) == 0 {
		return nil
	}
	msg := "trace: reconciliation failed:"
	for _, e := range errs {
		msg += "\n  " + e.Error()
	}
	return fmt.Errorf("%s", msg)
}

// Summary is the sidecar written next to events.jsonl: the producer's own
// accounting and counters, letting a consumer validate the trace without
// re-running the suite.
type Summary struct {
	Version int              `json:"version"`
	Tool    string           `json:"tool"`
	Modules int              `json:"modules"`
	Runs    int              `json:"runs"`
	Emitted int64            `json:"emitted"`
	Dropped int64            `json:"dropped"`
	Drained int64            `json:"drained"`
	ByKind  map[string]int64 `json:"by_kind"`
	Stats   StatTotals       `json:"stats"`
	// Store is the trap-store client's own operation accounting, mirrored by
	// the store_* events (zero-valued when the run used no trap store).
	Store StoreTotals `json:"store"`
	// Sites is the sidecar site table (schema v4): every site id referenced
	// by the events resolves to its stable (location, class, method, kind)
	// tuple here. Empty when the producer had no site registry.
	Sites []SiteRecord `json:"sites,omitempty"`
}

// WriteSummary serializes the sidecar.
func (s *Summary) WriteSummary(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSummary parses the sidecar.
func ReadSummary(r io.Reader) (*Summary, error) {
	var s Summary
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("trace: parse summary: %w", err)
	}
	if s.Version != SchemaVersion {
		return nil, fmt.Errorf("trace: summary version %d, want %d", s.Version, SchemaVersion)
	}
	return &s, nil
}

// resolvedLoc renders an op for human-readable output: the interned key when
// one exists, the numeric id otherwise.
func resolvedLoc(op ids.OpID) string {
	if k := op.Key(); k != "" {
		return k
	}
	return fmt.Sprintf("op#%d", uint64(op))
}
