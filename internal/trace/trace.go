// Package trace is the detector runtime's event-level observability layer.
// The aggregate counters in core.Stats say *how many* delays were injected or
// pairs pruned; the tracer records *which* — every planned/injected/productive
// delay, every near miss with its gap, every trap set and sprung, every HB
// edge and every prune — as fixed-size structured events in striped
// ring buffers, with zero allocation at the emission site.
//
// Design constraints, in order:
//
//  1. The OnCall hot path must not regress. Events are only emitted on
//     detector *actions* (near miss, delay, prune, violation), which are rare
//     relative to OnCalls; the conflict-free fast path crosses no emission
//     point at all. Emission itself writes scalars into a preallocated slot
//     under a striped leaf mutex — no allocation, no channel, no I/O.
//  2. Accounting is exact, including under the race detector: every event is
//     either drained or counted as dropped, never silently lost
//     (emitted == drained + dropped + buffered is a checked invariant).
//  3. The buffers are bounded. When a ring is full the oldest event is
//     overwritten and the drop is counted, so a tracer can run unattended
//     without growing; callers that need loss-free traces size the buffer
//     (config.TraceBufferSize) and drain once per module run, as the harness
//     does.
//
// Post-run, Drain empties the buffers; WriteJSONL serializes events one JSON
// object per line, and Aggregate folds them into a per-location metrics
// table. docs/OBSERVABILITY.md documents the schema and the workflow.
package trace

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/ids"
)

// Kind identifies what happened. The set mirrors the decisions §3.4 describes
// and maps one-to-one onto the core.Stats counters where one exists, so a
// drained trace reconciles exactly with the aggregate statistics.
type Kind uint8

const (
	// KindUnknown is the zero Kind; it never appears in a drained trace.
	KindUnknown Kind = iota
	// KindDelayPlanned: should_delay fired — the location participates in a
	// live dangerous pair and passed its probability coin flip (§3.4.1).
	// OpA is the location. No Stats counterpart (plans can be vetoed by an
	// exhausted delay budget).
	KindDelayPlanned
	// KindTrapSet: a trap was registered and the thread parked (Figure 5
	// "set trap"). OpA is the location, Dur the granted delay. Count equals
	// Stats.DelaysInjected.
	KindTrapSet
	// KindDelayInjected: the parked thread woke and unregistered its trap.
	// OpA is the location, Dur the time actually slept. Count equals
	// Stats.DelaysInjected (every set trap finishes its sleep).
	KindDelayInjected
	// KindDelayProductive: the delay ended with the trap's conflict flag
	// set — it exposed a violation (§3.4.5 "productive"). OpA is the
	// location, Dur the time slept. Subset of KindDelayInjected.
	KindDelayProductive
	// KindTrapSprung: an access ran into a conflicting parked trap — a
	// violation caught red-handed. OpA is the trapped location, OpB the
	// conflicting one. Count equals Stats.Violations.
	KindTrapSprung
	// KindNearMiss: two conflicting accesses from different threads within
	// the near-miss window (§3.4.2). OpA is the earlier location, OpB the
	// later, Dur the gap. Count equals Stats.NearMisses.
	KindNearMiss
	// KindPairAdded: a dangerous pair entered the trap set. Count equals
	// Stats.PairsAdded.
	KindPairAdded
	// KindHBEdge: HB inference attributed an inter-access gap (or a k_hb
	// inheritance window) to an injected delay (§3.4.4). OpA is the delayed
	// location, OpB the blocked one. No Stats counterpart: an edge over an
	// already-suppressed or self pair prunes nothing.
	KindHBEdge
	// KindPairPrunedHB: a pair left the trap set (TSVD) or was rejected as a
	// candidate (TSVDHB) because the accesses are happens-before ordered.
	// Count equals Stats.PairsPrunedHB.
	KindPairPrunedHB
	// KindPairPrunedDecay: a pair was suppressed because a location's delay
	// probability decayed below the prune threshold (§3.4.5). Count equals
	// Stats.PairsPrunedDecay.
	KindPairPrunedDecay
	// KindStoreFetch: a trap store served a snapshot of the shared
	// dangerous-pair set (fleet mode, §3.4.6 across shards). OpA is the
	// store's interned endpoint key, Dur the request duration. Count equals
	// the store's Totals().Fetches.
	KindStoreFetch
	// KindStorePublish: a run's dangerous pairs were published to a trap
	// store. OpA is the store's interned endpoint key, Dur the request
	// duration. Count equals the store's Totals().Publishes.
	KindStorePublish
	// KindStoreFallback: the primary (remote) trap store was unreachable and
	// the operation degraded to the local store. OpA is the primary store's
	// interned endpoint key. Count equals the store's Totals().Fallbacks.
	KindStoreFallback
	// KindDelaySuppressed: observe-only mode vetoed a delay the detector
	// would otherwise have injected — a "logical trap firing"
	// (docs/SAMPLING.md). OpA is the location, Dur the delay that was not
	// slept. Count equals Stats.DelaysSuppressed.
	KindDelaySuppressed
	// KindSamplerThrottle: the sampling controller adjusted the global
	// admission probability toward the overhead target. OpA is the interned
	// "sampler" pseudo-location, Dur the detection time spent during the
	// interval. Count equals Stats.SamplerThrottles. Per-call sampled-out
	// skips are deliberately counter-only (Stats.CallsSampledOut) — emitting
	// an event per skipped call would defeat the point of sampling.
	KindSamplerThrottle

	numKinds
)

var kindNames = [numKinds]string{
	KindUnknown:         "unknown",
	KindDelayPlanned:    "delay_planned",
	KindTrapSet:         "trap_set",
	KindDelayInjected:   "delay_injected",
	KindDelayProductive: "delay_productive",
	KindTrapSprung:      "trap_sprung",
	KindNearMiss:        "near_miss",
	KindPairAdded:       "pair_added",
	KindHBEdge:          "hb_edge",
	KindPairPrunedHB:    "pair_pruned_hb",
	KindPairPrunedDecay: "pair_pruned_decay",
	KindStoreFetch:      "store_fetch",
	KindStorePublish:    "store_publish",
	KindStoreFallback:   "store_fallback",
	KindDelaySuppressed: "delay_suppressed",
	KindSamplerThrottle: "sampler_throttle",
}

// String returns the snake_case wire name used in the JSONL schema.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString inverts String; it returns KindUnknown, false for names
// outside the schema.
func KindFromString(s string) (Kind, bool) {
	for k, name := range kindNames {
		if Kind(k) != KindUnknown && name == s {
			return Kind(k), true
		}
	}
	return KindUnknown, false
}

// Event is one detector event. It is a fixed-size scalar-only struct so a
// ring slot can be overwritten in place: emission allocates nothing and an
// Event never retains heap memory.
type Event struct {
	Kind   Kind
	Thread ids.ThreadID
	Obj    ids.ObjectID
	// OpA is the primary location; OpB the partner location for pair-shaped
	// events (near miss, pair added/pruned, trap sprung, HB edge) and zero
	// otherwise.
	OpA, OpB ids.OpID
	// At is the emission time relative to detector start.
	At time.Duration
	// Dur is kind-specific: the near-miss gap, the granted or slept delay.
	Dur time.Duration
	// seq orders events across stripes in Drain; stripes are drained
	// atomically but independently, so At alone (coarse clocks, equal
	// timestamps) cannot reconstruct a stable interleaving.
	seq uint64
}

// ring is one stripe: a bounded circular buffer plus its accounting, all
// under one leaf mutex. Padding keeps neighbouring stripe locks off a shared
// cache line, mirroring the detector's shards.
type ring struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of the oldest buffered event
	count   int // buffered events
	emitted int64
	dropped int64
	_       [64]byte
}

// Tracer records events into stripes selected by thread id. The zero-value
// *Tracer (nil) is a valid disabled tracer: every method is nil-safe, so
// call sites need no separate enabled flag.
type Tracer struct {
	rings []ring
	shift uint
}

// DefaultBufferSize is the per-detector event capacity used when the
// TraceBufferSize knob is zero: large enough to hold a generated module's
// full run loss-free (a module run emits hundreds of events, not tens of
// thousands) while costing ~4 MB per traced detector.
const DefaultBufferSize = 1 << 16

// New returns a tracer with capacity total event slots, split across
// a power-of-two number of stripes derived from GOMAXPROCS. capacity <= 0
// selects DefaultBufferSize.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultBufferSize
	}
	stripes := 1
	for stripes < runtime.GOMAXPROCS(0) && stripes < 32 {
		stripes <<= 1
	}
	if capacity < stripes {
		capacity = stripes
	}
	shift := uint(64)
	for m := stripes; m > 1; m >>= 1 {
		shift--
	}
	t := &Tracer{rings: make([]ring, stripes), shift: shift}
	per := capacity / stripes
	for i := range t.rings {
		t.rings[i].buf = make([]Event, per)
	}
	return t
}

// Capacity returns the total number of event slots.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return len(t.rings) * len(t.rings[0].buf)
}

// ringFor stripes by thread id so concurrently emitting threads rarely share
// a lock; the Fibonacci hash matches the detector's shard selection.
func (t *Tracer) ringFor(thread ids.ThreadID) *ring {
	return &t.rings[(uint64(thread)*0x9E3779B97F4A7C15)>>t.shift]
}

// Emit records one event. It is the only function on the detector's action
// paths: no allocation, no I/O, one striped leaf mutex. Safe on a nil
// tracer (tracing disabled) and from any number of goroutines.
func (t *Tracer) Emit(k Kind, thread ids.ThreadID, obj ids.ObjectID, opA, opB ids.OpID, at, dur time.Duration) {
	if t == nil {
		return
	}
	r := t.ringFor(thread)
	r.mu.Lock()
	r.emitted++
	e := Event{
		Kind: k, Thread: thread, Obj: obj, OpA: opA, OpB: opB,
		At: at, Dur: dur,
		seq: uint64(r.emitted),
	}
	if r.count < len(r.buf) {
		r.buf[(r.start+r.count)%len(r.buf)] = e
		r.count++
	} else {
		// Full: overwrite the oldest event and account the loss.
		r.buf[r.start] = e
		r.start = (r.start + 1) % len(r.buf)
		r.dropped++
	}
	r.mu.Unlock()
}

// Drain removes and returns every buffered event, ordered by emission time
// (per-stripe sequence as tiebreak). It may run concurrently with Emit; each
// stripe is emptied atomically. Nil-safe.
func (t *Tracer) Drain() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for i := range t.rings {
		r := &t.rings[i]
		r.mu.Lock()
		for j := 0; j < r.count; j++ {
			out = append(out, r.buf[(r.start+j)%len(r.buf)])
		}
		r.start, r.count = 0, 0
		r.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// Totals is the tracer's loss accounting. At any quiescent point (no Emit in
// flight) Emitted == Dropped + Buffered + (events returned by past Drains);
// after a final Drain, Emitted == Dropped + total drained.
type Totals struct {
	Emitted  int64
	Dropped  int64
	Buffered int64
}

// Totals snapshots the accounting across all stripes. Nil-safe.
func (t *Tracer) Totals() Totals {
	var tot Totals
	if t == nil {
		return tot
	}
	for i := range t.rings {
		r := &t.rings[i]
		r.mu.Lock()
		tot.Emitted += r.emitted
		tot.Dropped += r.dropped
		tot.Buffered += int64(r.count)
		r.mu.Unlock()
	}
	return tot
}

// ModuleTrace is one module run's drained trace, the unit the harness
// aggregates into an Outcome.
type ModuleTrace struct {
	// Module is the workload module name; Run the 1-based run number.
	Module string
	Run    int
	Events []Event
	// Emitted and Dropped are the tracer's accounting at drain time.
	Emitted int64
	Dropped int64
}

// CountByKind tallies events per kind name across module traces — the wire
// form both reconciliation (against core.Stats) and the smoke validator use.
func CountByKind(mods []ModuleTrace) map[string]int64 {
	out := map[string]int64{}
	for _, m := range mods {
		for _, e := range m.Events {
			out[e.Kind.String()]++
		}
	}
	return out
}
