package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
)

func TestKindStringRoundTrip(t *testing.T) {
	for k := KindUnknown + 1; k < numKinds; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Fatalf("KindFromString(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := KindFromString("unknown"); ok {
		t.Fatal("\"unknown\" must not parse as a valid kind")
	}
	if _, ok := KindFromString("no_such_kind"); ok {
		t.Fatal("invalid name parsed")
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind must stringify as unknown")
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(KindNearMiss, 1, 2, 3, 4, time.Second, time.Millisecond)
	if ev := tr.Drain(); ev != nil {
		t.Fatalf("nil Drain = %v", ev)
	}
	if tot := tr.Totals(); tot != (Totals{}) {
		t.Fatalf("nil Totals = %+v", tot)
	}
	if c := tr.Capacity(); c != 0 {
		t.Fatalf("nil Capacity = %d", c)
	}
}

func TestEmitDrainOrdering(t *testing.T) {
	tr := New(1024)
	// Emit from many "threads" with strictly increasing timestamps; Drain
	// must return them sorted by At regardless of stripe layout.
	const n = 500
	for i := 0; i < n; i++ {
		tr.Emit(KindNearMiss, ids.ThreadID(i%7), 1, ids.OpID(i+1), 1,
			time.Duration(i)*time.Microsecond, 0)
	}
	ev := tr.Drain()
	if len(ev) != n {
		t.Fatalf("drained %d events, want %d", len(ev), n)
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].At < ev[i-1].At {
			t.Fatalf("events out of order at %d: %v after %v", i, ev[i].At, ev[i-1].At)
		}
	}
	if got := tr.Drain(); len(got) != 0 {
		t.Fatalf("second Drain returned %d events", len(got))
	}
	tot := tr.Totals()
	if tot.Emitted != n || tot.Dropped != 0 || tot.Buffered != 0 {
		t.Fatalf("totals after drain: %+v", tot)
	}
}

func TestRingOverflowDropsOldestAndCounts(t *testing.T) {
	tr := New(1) // clamped up to one slot per stripe
	capacity := tr.Capacity()
	// Hammer a single thread so exactly one stripe fills: its ring holds one
	// event, everything older is dropped.
	const n = 100
	for i := 0; i < n; i++ {
		tr.Emit(KindDelayInjected, 1, 1, ids.OpID(i+1), 0, time.Duration(i), 0)
	}
	tot := tr.Totals()
	if tot.Emitted != n {
		t.Fatalf("emitted = %d, want %d", tot.Emitted, n)
	}
	if tot.Buffered != 1 {
		t.Fatalf("buffered = %d, want 1 (single-slot ring)", tot.Buffered)
	}
	if tot.Dropped != n-1 {
		t.Fatalf("dropped = %d, want %d", tot.Dropped, n-1)
	}
	ev := tr.Drain()
	if len(ev) != 1 || ev[0].OpA != ids.OpID(n) {
		t.Fatalf("survivor = %+v, want the newest event (op %d)", ev, n)
	}
	if capacity < 1 {
		t.Fatalf("capacity = %d", capacity)
	}
}

// TestConcurrentEmitDrainAccounting is the stress test for the exactness
// invariant: N goroutines emit through the tracer while a drainer loops
// concurrently; at quiescence emitted == drained + dropped.
func TestConcurrentEmitDrainAccounting(t *testing.T) {
	tr := New(64) // tiny buffer: force heavy overflow under contention
	const (
		goroutines = 8
		perG       = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var drained int64
	var drainWG sync.WaitGroup
	drainWG.Add(1)
	go func() {
		defer drainWG.Done()
		for {
			drained += int64(len(tr.Drain()))
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr.Emit(KindNearMiss, ids.ThreadID(g+1), ids.ObjectID(i),
					ids.OpID(i+1), ids.OpID(i+2), time.Duration(i), time.Duration(g))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	drainWG.Wait()
	drained += int64(len(tr.Drain())) // final sweep after all emitters stopped

	tot := tr.Totals()
	if tot.Emitted != goroutines*perG {
		t.Fatalf("emitted = %d, want %d", tot.Emitted, goroutines*perG)
	}
	if tot.Buffered != 0 {
		t.Fatalf("buffered = %d after final drain", tot.Buffered)
	}
	if drained+tot.Dropped != tot.Emitted {
		t.Fatalf("accounting broken: drained %d + dropped %d != emitted %d",
			drained, tot.Dropped, tot.Emitted)
	}
	if tot.Dropped == 0 {
		t.Log("no drops despite tiny buffer; accounting still exact")
	}
}

func TestJSONLRoundTripAndValidate(t *testing.T) {
	a := ids.InternKey("pkg/t.go:1")
	b := ids.InternKey("pkg/t.go:2")
	mt := ModuleTrace{
		Module: "m1", Run: 2,
		Events: []Event{
			{Kind: KindNearMiss, Thread: 3, Obj: 9, OpA: a, OpB: b,
				At: 5 * time.Microsecond, Dur: 2 * time.Microsecond},
			{Kind: KindDelayInjected, Thread: 3, Obj: 9, OpA: a,
				At: 9 * time.Microsecond, Dur: 100 * time.Microsecond},
		},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, mt, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n := strings.Count(out, "\n"); n != 2 {
		t.Fatalf("want 2 lines, got %d:\n%s", n, out)
	}
	if !strings.Contains(out, `"ev":"near_miss"`) || !strings.Contains(out, `"loc_a":"pkg/t.go:1"`) {
		t.Fatalf("missing fields:\n%s", out)
	}
	counts, err := ValidateJSONL(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if counts["near_miss"] != 1 || counts["delay_injected"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestValidateJSONLRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad json":          "{nope\n",
		"wrong version":     `{"v":9,"ev":"near_miss","i":1,"t_us":1,"op_a":1,"op_b":2}` + "\n",
		"unknown kind":      `{"v":5,"ev":"bogus","i":1,"t_us":1,"op_a":1}` + "\n",
		"negative time":     `{"v":5,"ev":"trap_set","i":1,"t_us":-1,"op_a":1}` + "\n",
		"negative duration": `{"v":5,"ev":"trap_set","i":1,"t_us":1,"dur_us":-5,"op_a":1}` + "\n",
		"missing op_a":      `{"v":5,"ev":"trap_set","i":1,"t_us":1}` + "\n",
		"pair without op_b": `{"v":5,"ev":"near_miss","i":1,"t_us":1,"op_a":1}` + "\n",
		"missing index":     `{"v":5,"ev":"trap_set","t_us":1,"op_a":1}` + "\n",
		"index not increasing": `{"v":5,"ev":"trap_set","i":2,"t_us":1,"op_a":1}` + "\n" +
			`{"v":5,"ev":"trap_set","i":2,"t_us":2,"op_a":1}` + "\n",
	}
	for name, line := range cases {
		if _, err := ValidateJSONL(strings.NewReader(line)); err == nil {
			t.Errorf("%s: accepted %q", name, line)
		}
	}
	// Blank lines are tolerated (files are concatenated in the harness).
	good := `{"v":5,"ev":"trap_set","i":1,"t_us":1,"op_a":7}` + "\n\n"
	if _, err := ValidateJSONL(strings.NewReader(good)); err != nil {
		t.Fatalf("blank line rejected: %v", err)
	}
}

func TestReconcile(t *testing.T) {
	counts := map[string]int64{
		"trap_set": 2, "delay_injected": 2, "near_miss": 5,
		"pair_added": 3, "pair_pruned_hb": 1, "pair_pruned_decay": 0,
		"trap_sprung": 1,
	}
	stats := StatTotals{
		DelaysInjected: 2, NearMisses: 5, PairsAdded: 3,
		PairsPrunedHB: 1, PairsPrunedDecay: 0, Violations: 1,
	}
	if err := Reconcile(counts, stats, StoreTotals{}, 0); err != nil {
		t.Fatalf("exact counts rejected: %v", err)
	}
	if err := Reconcile(counts, stats, StoreTotals{}, 3); err == nil {
		t.Fatal("dropped events accepted")
	}
	bad := stats
	bad.NearMisses = 6
	if err := Reconcile(counts, bad, StoreTotals{}, 0); err == nil {
		t.Fatal("diverging counter accepted")
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	s := &Summary{
		Version: SchemaVersion, Tool: "tsvd", Modules: 5, Runs: 2,
		Emitted: 10, Drained: 10,
		ByKind: map[string]int64{"near_miss": 10},
		Stats:  StatTotals{NearMisses: 10},
	}
	var buf bytes.Buffer
	if err := s.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSummary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "tsvd" || got.Drained != 10 || got.ByKind["near_miss"] != 10 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, err := ReadSummary(strings.NewReader(`{"version": 42}`)); err == nil {
		t.Fatal("wrong summary version accepted")
	}
}

func TestAggregate(t *testing.T) {
	a := ids.InternKey("pkg/agg.go:1")
	b := ids.InternKey("pkg/agg.go:2")
	mods := []ModuleTrace{{
		Module: "m", Run: 1, Dropped: 0,
		Events: []Event{
			{Kind: KindNearMiss, OpA: a, OpB: b, Dur: 10 * time.Microsecond},
			{Kind: KindNearMiss, OpA: a, OpB: b, Dur: 30 * time.Microsecond},
			{Kind: KindNearMiss, OpA: a, OpB: a, Dur: 20 * time.Microsecond}, // same-location
			{Kind: KindDelayPlanned, OpA: a, Dur: time.Millisecond},
			{Kind: KindTrapSet, OpA: a, Dur: time.Millisecond},
			{Kind: KindDelayInjected, OpA: a, Dur: time.Millisecond},
			{Kind: KindDelayProductive, OpA: a, Dur: time.Millisecond},
			{Kind: KindTrapSprung, OpA: a, OpB: b},
			{Kind: KindPairAdded, OpA: a, OpB: b},
			{Kind: KindHBEdge, OpA: a, OpB: b},
			{Kind: KindPairPrunedHB, OpA: a, OpB: b},
			{Kind: KindPairPrunedDecay, OpA: a, OpB: b},
		},
	}}
	m := Aggregate(mods)
	if m.Events != 12 || m.Dropped != 0 {
		t.Fatalf("totals: %+v", m)
	}
	la, lb := m.PerLoc[a], m.PerLoc[b]
	if la == nil || lb == nil {
		t.Fatal("locations missing from aggregate")
	}
	// a sees all 3 near misses (the same-location one once); b sees 2.
	if la.NearMisses != 3 || lb.NearMisses != 2 {
		t.Fatalf("near misses: a=%d b=%d", la.NearMisses, lb.NearMisses)
	}
	if la.MinGap != 10*time.Microsecond || la.MaxGap != 30*time.Microsecond {
		t.Fatalf("gap range: [%v, %v]", la.MinGap, la.MaxGap)
	}
	if la.AvgGap() != 20*time.Microsecond {
		t.Fatalf("avg gap = %v", la.AvgGap())
	}
	if la.DelaysPlanned != 1 || la.TrapsSet != 1 || la.DelaysInjected != 1 ||
		la.DelaysProductive != 1 || la.TotalDelay != time.Millisecond {
		t.Fatalf("delay lifecycle: %+v", la)
	}
	if lb.DelaysPlanned != 0 || lb.DelaysInjected != 0 {
		t.Fatalf("delay events leaked to partner: %+v", lb)
	}
	for _, lm := range []*LocMetrics{la, lb} {
		if lm.PairsAdded != 1 || lm.PrunedHB != 1 || lm.PrunedDecay != 1 ||
			lm.HBEdges != 1 || lm.TrapsSprung != 1 {
			t.Fatalf("pair churn not attributed to both endpoints: %+v", lm)
		}
	}
	// Sorted: a (3 near misses) before b (2).
	rows := m.Sorted()
	if len(rows) != 2 || rows[0].Op != a {
		t.Fatalf("sort order: %v", rows)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"per_location"`) {
		t.Fatalf("metrics JSON missing table:\n%s", buf.String())
	}
}

func TestCountByKind(t *testing.T) {
	mods := []ModuleTrace{
		{Events: []Event{{Kind: KindNearMiss}, {Kind: KindNearMiss}}},
		{Events: []Event{{Kind: KindTrapSet}}},
	}
	got := CountByKind(mods)
	if got["near_miss"] != 2 || got["trap_set"] != 1 {
		t.Fatalf("CountByKind = %v", got)
	}
}

// BenchmarkEmit pins the zero-allocation contract of the emission path.
func BenchmarkEmit(b *testing.B) {
	tr := New(DefaultBufferSize)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			tr.Emit(KindNearMiss, ids.ThreadID(i%8), 1, 2, 3,
				time.Duration(i), time.Microsecond)
		}
	})
}

func TestReconcileStoreTotals(t *testing.T) {
	counts := map[string]int64{
		"store_fetch": 4, "store_publish": 2, "store_fallback": 1,
	}
	store := StoreTotals{Fetches: 4, Publishes: 2, Fallbacks: 1}
	if err := Reconcile(counts, StatTotals{}, store, 0); err != nil {
		t.Fatalf("exact store counts rejected: %v", err)
	}
	bad := store
	bad.Fallbacks = 0
	if err := Reconcile(counts, StatTotals{}, bad, 0); err == nil {
		t.Fatal("diverging store counter accepted")
	}
}

func TestValidateJSONLStoreKinds(t *testing.T) {
	lines := `{"v":5,"ev":"store_fetch","i":1,"t_us":1,"op_a":7,"loc_a":"trapstore:http://x"}
{"v":5,"ev":"store_publish","i":2,"t_us":2,"op_a":7}
{"v":5,"ev":"store_fallback","i":3,"t_us":3,"op_a":7}
`
	counts, err := ValidateJSONL(strings.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	if counts["store_fetch"] != 1 || counts["store_publish"] != 1 || counts["store_fallback"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}
