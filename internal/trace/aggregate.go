package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/ids"
)

// LocMetrics aggregates every event touching one static location — the
// per-location view the sampling/diagnosis questions need: is this location
// producing near misses, are its delays productive, why did it leave the
// trap set.
type LocMetrics struct {
	Op  ids.OpID `json:"op"`
	Loc string   `json:"loc"`

	// Near-miss pressure at this location (either side of the pair).
	NearMisses int64         `json:"near_misses"`
	MinGap     time.Duration `json:"min_gap_ns"`
	MaxGap     time.Duration `json:"max_gap_ns"`
	sumGap     time.Duration

	// Delay lifecycle at this location.
	DelaysPlanned    int64         `json:"delays_planned"`
	TrapsSet         int64         `json:"traps_set"`
	DelaysInjected   int64         `json:"delays_injected"`
	DelaysProductive int64         `json:"delays_productive"`
	TotalDelay       time.Duration `json:"total_delay_ns"`

	// Trap-set churn involving this location.
	PairsAdded  int64 `json:"pairs_added"`
	PrunedHB    int64 `json:"pruned_hb"`
	PrunedDecay int64 `json:"pruned_decay"`
	HBEdges     int64 `json:"hb_edges"`
	TrapsSprung int64 `json:"traps_sprung"`
}

// AvgGap is the mean near-miss gap at this location.
func (m *LocMetrics) AvgGap() time.Duration {
	if m.NearMisses == 0 {
		return 0
	}
	return m.sumGap / time.Duration(m.NearMisses)
}

// Metrics is the aggregated per-location table plus whole-trace totals.
type Metrics struct {
	Events  int64            `json:"events"`
	Dropped int64            `json:"dropped"`
	ByKind  map[string]int64 `json:"by_kind"`
	// PerLoc is keyed by OpID; use Sorted for deterministic iteration.
	PerLoc map[ids.OpID]*LocMetrics `json:"-"`
}

func (m *Metrics) loc(op ids.OpID) *LocMetrics {
	lm := m.PerLoc[op]
	if lm == nil {
		lm = &LocMetrics{Op: op, Loc: resolvedLoc(op)}
		m.PerLoc[op] = lm
	}
	return lm
}

// Aggregate folds drained module traces into the per-location metrics table.
// Pair-shaped events are attributed to both endpoints; delay events to the
// delayed location.
func Aggregate(mods []ModuleTrace) *Metrics {
	m := &Metrics{ByKind: map[string]int64{}, PerLoc: map[ids.OpID]*LocMetrics{}}
	for _, mt := range mods {
		m.Dropped += mt.Dropped
		for _, e := range mt.Events {
			m.Events++
			m.ByKind[e.Kind.String()]++
			switch e.Kind {
			case KindNearMiss:
				for _, op := range [2]ids.OpID{e.OpA, e.OpB} {
					lm := m.loc(op)
					lm.NearMisses++
					lm.sumGap += e.Dur
					if e.Dur > lm.MaxGap {
						lm.MaxGap = e.Dur
					}
					if lm.MinGap == 0 || e.Dur < lm.MinGap {
						lm.MinGap = e.Dur
					}
					if e.OpA == e.OpB {
						// A same-location near miss is one sighting, not two.
						break
					}
				}
			case KindDelayPlanned:
				m.loc(e.OpA).DelaysPlanned++
			case KindTrapSet:
				m.loc(e.OpA).TrapsSet++
			case KindDelayInjected:
				lm := m.loc(e.OpA)
				lm.DelaysInjected++
				lm.TotalDelay += e.Dur
			case KindDelayProductive:
				m.loc(e.OpA).DelaysProductive++
			case KindTrapSprung:
				m.loc(e.OpA).TrapsSprung++
				if e.OpB != e.OpA {
					m.loc(e.OpB).TrapsSprung++
				}
			case KindPairAdded:
				m.loc(e.OpA).PairsAdded++
				if e.OpB != e.OpA {
					m.loc(e.OpB).PairsAdded++
				}
			case KindHBEdge:
				m.loc(e.OpA).HBEdges++
				if e.OpB != e.OpA {
					m.loc(e.OpB).HBEdges++
				}
			case KindPairPrunedHB:
				m.loc(e.OpA).PrunedHB++
				if e.OpB != e.OpA {
					m.loc(e.OpB).PrunedHB++
				}
			case KindPairPrunedDecay:
				m.loc(e.OpA).PrunedDecay++
				if e.OpB != e.OpA {
					m.loc(e.OpB).PrunedDecay++
				}
			}
		}
	}
	return m
}

// Sorted returns the per-location rows, busiest (most near misses, then most
// delays) first, location key as the final tiebreak for determinism.
func (m *Metrics) Sorted() []*LocMetrics {
	out := make([]*LocMetrics, 0, len(m.PerLoc))
	for _, lm := range m.PerLoc {
		out = append(out, lm)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NearMisses != out[j].NearMisses {
			return out[i].NearMisses > out[j].NearMisses
		}
		if out[i].DelaysInjected != out[j].DelaysInjected {
			return out[i].DelaysInjected > out[j].DelaysInjected
		}
		return out[i].Loc < out[j].Loc
	})
	return out
}

// jsonMetrics is the serialized form: the map keyed by OpID becomes a sorted
// array, which is both valid JSON and deterministic.
type jsonMetrics struct {
	Events  int64            `json:"events"`
	Dropped int64            `json:"dropped"`
	ByKind  map[string]int64 `json:"by_kind"`
	PerLoc  []*LocMetrics    `json:"per_location"`
}

// WriteJSON serializes the metrics table.
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(jsonMetrics{
		Events: m.Events, Dropped: m.Dropped, ByKind: m.ByKind, PerLoc: m.Sorted(),
	}); err != nil {
		return fmt.Errorf("trace: encode metrics: %w", err)
	}
	return nil
}
