package trace

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/sites"
)

// richTraces fabricates two module traces exercising every aggregation
// path: pair events, single-loc delay events, same-loc near misses, and
// multiple runs of one module.
func richTraces(t *testing.T) ([]ModuleTrace, *sites.Registry) {
	t.Helper()
	reg := sites.New()
	a := ids.InternKey("rt/mod1/site1")
	b := ids.InternKey("rt/mod1/site2")
	c := ids.InternKey("rt/mod2/site1")
	reg.ForCall(a, "Map", "Store", true)
	reg.ForCall(b, "Map", "Load", false)
	reg.ForCall(c, "Slice", "Append", true)
	us := func(n int64) time.Duration { return time.Duration(n) * time.Microsecond }
	return []ModuleTrace{
		{Module: "mod1", Run: 1, Emitted: 5, Events: []Event{
			{Kind: KindNearMiss, Thread: 1, Obj: 9, OpA: a, OpB: b, At: us(5), Dur: us(2)},
			{Kind: KindPairAdded, Thread: 1, Obj: 9, OpA: a, OpB: b, At: us(5)},
			{Kind: KindDelayPlanned, Thread: 2, Obj: 9, OpA: a, At: us(7)},
			{Kind: KindTrapSet, Thread: 2, Obj: 9, OpA: a, At: us(7), Dur: us(100)},
			{Kind: KindTrapSprung, Thread: 3, Obj: 9, OpA: a, OpB: b, At: us(9)},
		}},
		{Module: "mod1", Run: 2, Emitted: 2, Events: []Event{
			// Same-loc near miss: aggregation must count it once, not twice.
			{Kind: KindNearMiss, Thread: 4, Obj: 11, OpA: b, OpB: b, At: us(3), Dur: us(1)},
			{Kind: KindDelayInjected, Thread: 4, Obj: 11, OpA: b, At: us(8), Dur: us(50)},
		}},
		{Module: "mod2", Run: 1, Emitted: 2, Events: []Event{
			{Kind: KindHBEdge, Thread: 5, Obj: 12, OpA: c, OpB: a, At: us(2), Dur: us(4)},
			{Kind: KindPairPrunedHB, Thread: 5, Obj: 12, OpA: c, OpB: a, At: us(2)},
		}},
	}, reg
}

// TestJSONLFullRoundTrip guards the v5 schema: writing every module trace
// to JSONL, parsing it back, and re-aggregating must reproduce metrics.json
// byte for byte, and the regrouped traces must preserve module, run, order,
// and every event field that aggregation consumes.
func TestJSONLFullRoundTrip(t *testing.T) {
	mods, reg := richTraces(t)
	var jsonl bytes.Buffer
	for _, mt := range mods {
		if err := WriteJSONL(&jsonl, mt, reg); err != nil {
			t.Fatal(err)
		}
	}

	jes, err := ReadJSONL(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	back := ModuleTracesOf(jes)
	if len(back) != len(mods) {
		t.Fatalf("round-trip produced %d traces, want %d", len(back), len(mods))
	}
	for i, mt := range back {
		want := mods[i]
		if mt.Module != want.Module || mt.Run != want.Run {
			t.Fatalf("trace %d = %s/%d, want %s/%d", i, mt.Module, mt.Run, want.Module, want.Run)
		}
		if len(mt.Events) != len(want.Events) {
			t.Fatalf("trace %d has %d events, want %d", i, len(mt.Events), len(want.Events))
		}
		for j, e := range mt.Events {
			w := want.Events[j]
			// seq is process-local and deliberately not on the wire; the v5
			// index preserved the order instead. Everything else must match.
			if e.Kind != w.Kind || e.Thread != w.Thread || e.Obj != w.Obj ||
				e.OpA != w.OpA || e.OpB != w.OpB || e.At != w.At || e.Dur != w.Dur {
				t.Fatalf("trace %d event %d = %+v, want %+v", i, j, e, w)
			}
		}
	}

	// Re-aggregation must reproduce metrics.json exactly. Same process, so
	// InternKey gives back identical OpIDs and the comparison is bytewise.
	var orig, rt bytes.Buffer
	if err := Aggregate(mods).WriteJSON(&orig); err != nil {
		t.Fatal(err)
	}
	if err := Aggregate(back).WriteJSON(&rt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), rt.Bytes()) {
		t.Fatalf("re-aggregated metrics diverge:\noriginal:\n%s\nround-trip:\n%s", &orig, &rt)
	}
}

// TestSummarySitesRoundTrip guards the sites sidecar: the summary's site
// table must survive WriteSummary/ReadSummary exactly.
func TestSummarySitesRoundTrip(t *testing.T) {
	_, reg := richTraces(t)
	s := &Summary{
		Version: SchemaVersion, Tool: "tsvd-test", Modules: 2, Runs: 2,
		Emitted: 9, Drained: 9,
		ByKind: map[string]int64{"near_miss": 2},
		Sites:  SiteTable(reg),
	}
	if len(s.Sites) != 3 {
		t.Fatalf("site table has %d rows, want 3", len(s.Sites))
	}
	var buf bytes.Buffer
	if err := s.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSummary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sites) != len(s.Sites) {
		t.Fatalf("round-trip has %d sites, want %d", len(got.Sites), len(s.Sites))
	}
	for i, site := range got.Sites {
		if site != s.Sites[i] {
			t.Fatalf("site %d = %+v, want %+v", i, site, s.Sites[i])
		}
	}
}
