package instrument

import "testing"

// FuzzRewrite: the instrumenter must never panic on arbitrary input — it
// either rewrites, passes through, or returns an error. Any output it does
// produce must itself re-parse.
func FuzzRewrite(f *testing.F) {
	f.Add(`package p

import "repro/internal/rawcol"

func f() { m := rawcol.NewMap[int, int](); m.Add(1, 1) }
`)
	f.Add("package p\nfunc g() {}\n")
	f.Add("not go at all")
	f.Add(`package p

import rc "repro/internal/rawcol"

type s struct{ a *rc.Array[string] }
`)
	f.Fuzz(func(t *testing.T, src string) {
		rw := NewRewriter(DefaultOptions())
		out, _, changed, err := rw.Rewrite("fuzz.go", []byte(src))
		if err != nil || !changed {
			return
		}
		// Rewritten output must be parseable Go.
		if _, _, _, err := rw.Rewrite("fuzz2.go", out); err != nil {
			t.Fatalf("rewritten output does not parse: %v\ninput:\n%s\noutput:\n%s",
				err, src, out)
		}
	})
}
