// Package instrument is the TSVD instrumenter (§4): it rewrites Go source
// that uses the raw, uninstrumented containers (repro/internal/rawcol) into
// source using the instrumented collections, redirecting every
// thread-unsafe API call through the detector's OnCall proxy.
//
// The paper's instrumenter performs this interposition by static binary
// rewriting of .NET CIL; Go has no equivalent stable binary layer, so this
// package performs the same local transformation at the source level
// (DESIGN.md, "Substitutions"): type names, constructor calls and method
// names are rewritten according to an API mapping table, and a detector
// argument is threaded into constructors. Like the original, instrumentation
// is local — only call sites of listed thread-unsafe classes change; locks,
// channels, forks and joins are untouched.
package instrument

// ClassMapping describes how one raw container class is rewritten.
type ClassMapping struct {
	// RawType and RawConstructor name the uninstrumented identifiers
	// (e.g. "Map", "NewMap").
	RawType        string
	RawConstructor string
	// InstType and InstConstructor name the instrumented replacements
	// (e.g. "Dictionary", "NewDictionary").
	InstType        string
	InstConstructor string
	// Methods maps raw method names to instrumented ones. Methods not
	// listed are assumed to keep their name.
	Methods map[string]string
	// Writes lists the instrumented method names that are write-APIs
	// (for the instrumentation report).
	Writes map[string]bool
}

// DefaultMappings is the built-in API list shipping with the instrumenter,
// covering every rawcol container class.
func DefaultMappings() []ClassMapping {
	return []ClassMapping{
		{
			RawType: "Map", RawConstructor: "NewMap",
			InstType: "Dictionary", InstConstructor: "NewDictionary",
			Methods: map[string]string{
				"Get": "TryGetValue", "MustGet": "Get", "Contains": "ContainsKey",
				"Delete": "Remove", "Len": "Count", "Range": "ForEach",
			},
			Writes: map[string]bool{
				"Add": true, "Set": true, "GetOrAdd": true, "Remove": true,
				"Clear": true,
			},
		},
		{
			RawType: "Array", RawConstructor: "NewArray",
			InstType: "List", InstConstructor: "NewList",
			Methods: map[string]string{
				"Append": "Add", "Len": "Count", "Snapshot": "ToSlice",
				"Range": "ForEach",
			},
			Writes: map[string]bool{
				"Add": true, "Insert": true, "Set": true, "RemoveAt": true,
				"RemoveFunc": true, "Clear": true, "Sort": true,
			},
		},
		{
			RawType: "Chain", RawConstructor: "NewChain",
			InstType: "LinkedList", InstConstructor: "NewLinkedList",
			Methods: map[string]string{
				"PushBack": "AddLast", "PushFront": "AddFirst",
				"PopFront": "RemoveFirst", "PopBack": "RemoveLast",
				"PeekFront": "First", "PeekBack": "Last",
				"Len": "Count", "Snapshot": "ToSlice",
			},
			Writes: map[string]bool{
				"AddLast": true, "AddFirst": true, "RemoveFirst": true,
				"RemoveLast": true, "RemoveFunc": true, "Clear": true,
			},
		},
		{
			RawType: "SortedMap", RawConstructor: "NewSortedMap",
			InstType: "SortedDictionary", InstConstructor: "NewSortedDictionary",
			Methods: map[string]string{
				"Get": "TryGetValue", "Contains": "ContainsKey",
				"Delete": "Remove", "Len": "Count",
			},
			Writes: map[string]bool{
				"Add": true, "Set": true, "Remove": true, "Clear": true,
			},
		},
		{
			RawType: "Heap", RawConstructor: "NewHeap",
			InstType: "PriorityQueue", InstConstructor: "NewPriorityQueue",
			Methods: map[string]string{
				"Push": "Enqueue", "Pop": "Dequeue", "Len": "Count",
				"Snapshot": "ToSlice",
			},
			Writes: map[string]bool{
				"Enqueue": true, "Dequeue": true, "Clear": true,
			},
		},
		{
			RawType: "Bits", RawConstructor: "NewBits",
			InstType: "BitArray", InstConstructor: "NewBitArray",
			Methods: map[string]string{},
			Writes: map[string]bool{
				"Set": true, "Flip": true, "SetAll": true,
			},
		},
	}
}

// Options configures a rewrite.
type Options struct {
	// RawImport is the import path of the uninstrumented containers.
	RawImport string
	// InstImport is the import path of the instrumented collections.
	InstImport string
	// InstPkgName is the local package name for InstImport.
	InstPkgName string
	// DetectorImport provides the detector expression's package; empty
	// disables the extra import (DetectorExpr must then be resolvable).
	DetectorImport string
	// DetectorPkgName is the local package name for DetectorImport.
	DetectorPkgName string
	// DetectorExpr is the expression inserted as the constructor's
	// detector argument, e.g. "tsvd.Default()".
	DetectorExpr string
	// Mappings is the API list; nil uses DefaultMappings.
	Mappings []ClassMapping
}

// DefaultOptions rewrites rawcol usage into the public tsvd collections.
func DefaultOptions() Options {
	return Options{
		RawImport:       "repro/internal/rawcol",
		InstImport:      "repro/internal/collections",
		InstPkgName:     "collections",
		DetectorImport:  "repro",
		DetectorPkgName: "tsvd",
		DetectorExpr:    "tsvd.Default()",
		Mappings:        DefaultMappings(),
	}
}

// Site records one rewritten call site for the instrumentation report.
type Site struct {
	File   string
	Line   int
	Class  string
	Method string
	Write  bool
	// Constructor marks constructor rewrites (not OnCall sites, but the
	// places where the detector argument was injected).
	Constructor bool
}
