package instrument

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Result summarizes an instrumentation run over a directory tree.
type Result struct {
	// FilesChanged lists files that were rewritten.
	FilesChanged []string
	// Sites lists every instrumented call site.
	Sites []Site
}

// CallSites returns the non-constructor sites (the actual TSVD points).
func (r *Result) CallSites() []Site {
	out := make([]Site, 0, len(r.Sites))
	for _, s := range r.Sites {
		if !s.Constructor {
			out = append(out, s)
		}
	}
	return out
}

// RewriteDir instruments every .go file under dir (skipping _test.go files
// and vendored/testdata trees). With write=false it is a dry run: files are
// analyzed but not modified.
func RewriteDir(dir string, opts Options, write bool) (*Result, error) {
	rw := NewRewriter(opts)
	res := &Result{}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "vendor" || name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("instrument: read %s: %w", path, err)
		}
		out, sites, changed, err := rw.Rewrite(path, src)
		if err != nil {
			return err
		}
		if !changed {
			return nil
		}
		res.FilesChanged = append(res.FilesChanged, path)
		res.Sites = append(res.Sites, sites...)
		if write {
			if err := os.WriteFile(path, out, 0o644); err != nil {
				return fmt.Errorf("instrument: write %s: %w", path, err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
