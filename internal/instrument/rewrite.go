package instrument

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"strconv"
	"strings"
)

// Rewriter instruments Go source files according to an Options mapping.
type Rewriter struct {
	opts    Options
	byType  map[string]*ClassMapping // raw type name → mapping
	byCtor  map[string]*ClassMapping // raw constructor name → mapping
	byInst  map[string]*ClassMapping // instrumented type name → mapping
	fileSet *token.FileSet
}

// NewRewriter builds a Rewriter for opts.
func NewRewriter(opts Options) *Rewriter {
	if opts.Mappings == nil {
		opts.Mappings = DefaultMappings()
	}
	r := &Rewriter{
		opts:    opts,
		byType:  map[string]*ClassMapping{},
		byCtor:  map[string]*ClassMapping{},
		byInst:  map[string]*ClassMapping{},
		fileSet: token.NewFileSet(),
	}
	for i := range opts.Mappings {
		m := &opts.Mappings[i]
		r.byType[m.RawType] = m
		r.byCtor[m.RawConstructor] = m
		r.byInst[m.InstType] = m
	}
	return r
}

// Rewrite instruments one file's source. It returns the rewritten source,
// the instrumented sites, and whether anything changed. Files that do not
// import the raw package come back unchanged.
func (r *Rewriter) Rewrite(filename string, src []byte) ([]byte, []Site, bool, error) {
	file, err := parser.ParseFile(r.fileSet, filename, src, parser.ParseComments)
	if err != nil {
		return nil, nil, false, fmt.Errorf("instrument: parse %s: %w", filename, err)
	}
	rawName, ok := importName(file, r.opts.RawImport)
	if !ok {
		return src, nil, false, nil
	}

	st := &fileState{
		rw:       r,
		rawName:  rawName,
		varClass: map[string]*ClassMapping{},
		filename: filename,
	}
	// Pass 1: learn which identifiers hold which container class, from
	// explicit types and from constructor assignments.
	st.collectTypes(file)
	if st.err != nil {
		return nil, nil, false, st.err
	}
	// Pass 2: rewrite types, constructors and method calls.
	ast.Inspect(file, st.rewriteNode)
	if !st.changed {
		return src, nil, false, nil
	}

	r.rewriteImports(file, rawName, st.needDetector)

	var buf bytes.Buffer
	if err := format.Node(&buf, r.fileSet, file); err != nil {
		return nil, nil, false, fmt.Errorf("instrument: print %s: %w", filename, err)
	}
	return buf.Bytes(), st.sites, true, nil
}

// importName returns the local name under which path is imported.
func importName(file *ast.File, path string) (string, bool) {
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name, true
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:], true
		}
		return p, true
	}
	return "", false
}

// fileState carries one file's rewrite context.
type fileState struct {
	rw       *Rewriter
	rawName  string
	filename string
	// varClass maps identifier (variable, parameter or struct field
	// name) to the container class it holds. The tracker is file-scoped
	// and name-based: same-named identifiers of different classes in one
	// file are unsupported (the instrumenter reports an error).
	varClass     map[string]*ClassMapping
	sites        []Site
	changed      bool
	needDetector bool
	err          error
}

// rawSelector returns the mapping when expr is rawName.Sel with Sel a known
// raw type (unwrapping pointers and generic instantiations).
func (st *fileState) rawSelector(expr ast.Expr) (*ClassMapping, bool) {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.IndexListExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if id, ok := e.X.(*ast.Ident); ok && id.Name == st.rawName {
				m, ok := st.rw.byType[e.Sel.Name]
				return m, ok
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

// collectTypes learns identifier classes from declarations.
func (st *fileState) collectTypes(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.Field: // struct fields, params, results
			if m, ok := st.rawSelector(node.Type); ok {
				for _, name := range node.Names {
					st.learn(name.Name, m)
				}
			}
		case *ast.ValueSpec: // var declarations
			if node.Type != nil {
				if m, ok := st.rawSelector(node.Type); ok {
					for _, name := range node.Names {
						st.learn(name.Name, m)
					}
				}
			}
			for i, v := range node.Values {
				if m, ok := st.constructorOf(v); ok && i < len(node.Names) {
					st.learn(node.Names[i].Name, m)
				}
			}
		case *ast.AssignStmt: // x := rawcol.NewMap[...]()
			for i, rhs := range node.Rhs {
				m, ok := st.constructorOf(rhs)
				if !ok || i >= len(node.Lhs) {
					continue
				}
				switch lhs := node.Lhs[i].(type) {
				case *ast.Ident:
					st.learn(lhs.Name, m)
				case *ast.SelectorExpr: // s.field = rawcol.New...
					st.learn(lhs.Sel.Name, m)
				}
			}
		}
		return true
	})
}

// constructorOf returns the mapping when expr is a call of a raw
// constructor.
func (st *fileState) constructorOf(expr ast.Expr) (*ClassMapping, bool) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	fun := call.Fun
	for {
		switch f := fun.(type) {
		case *ast.IndexExpr:
			fun = f.X
		case *ast.IndexListExpr:
			fun = f.X
		case *ast.SelectorExpr:
			if id, ok := f.X.(*ast.Ident); ok && id.Name == st.rawName {
				m, ok := st.rw.byCtor[f.Sel.Name]
				return m, ok
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

func (st *fileState) learn(name string, m *ClassMapping) {
	if prev, ok := st.varClass[name]; ok && prev != m && st.err == nil {
		st.err = fmt.Errorf("instrument: %s: identifier %q holds both %s and %s; rename one",
			st.filename, name, prev.RawType, m.RawType)
	}
	st.varClass[name] = m
}

// rewriteNode performs the actual rewrites while walking.
func (st *fileState) rewriteNode(n ast.Node) bool {
	switch node := n.(type) {
	case *ast.SelectorExpr:
		// Type references rawcol.X → collections.Y (constructor calls and
		// method calls are rewritten at the CallExpr level before their
		// children are visited, so a raw selector surviving to this point
		// is a type reference).
		if id, ok := node.X.(*ast.Ident); ok && id.Name == st.rawName {
			if m, ok := st.rw.byType[node.Sel.Name]; ok {
				id.Name = st.rw.opts.InstPkgName
				node.Sel.Name = m.InstType
				st.changed = true
			}
		}
	case *ast.CallExpr:
		st.rewriteCall(node)
	}
	return true
}

func (st *fileState) rewriteCall(call *ast.CallExpr) {
	// Constructor: rawcol.NewX[...](args) →
	// collections.NewY[...](detectorExpr, args...).
	if m, ok := st.constructorOf(call); ok {
		renameSelector(call.Fun, st.rawName, st.rw.opts.InstPkgName,
			m.RawConstructor, m.InstConstructor)
		// The detector expression is injected as an opaque identifier;
		// the printer emits the Name verbatim, so "tsvd.Default()" comes
		// out as written. Parsing it would gain nothing — it is never
		// inspected, only printed.
		det := &ast.Ident{Name: st.rw.opts.DetectorExpr}
		call.Args = append([]ast.Expr{det}, call.Args...)
		st.needDetector = true
		st.changed = true
		st.addSite(call.Pos(), m, m.InstConstructor, true)
		return
	}
	// Method call on a tracked identifier: x.Method(...) or s.field.M(...).
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	recvName, ok := receiverName(sel.X)
	if !ok {
		return
	}
	m, ok := st.varClass[recvName]
	if !ok {
		return
	}
	newName := sel.Sel.Name
	if mapped, ok := m.Methods[sel.Sel.Name]; ok {
		newName = mapped
	}
	sel.Sel.Name = newName
	st.changed = true
	st.addSite(call.Pos(), m, newName, false)
}

// receiverName extracts the identifier a method is invoked on: `x` or the
// final field of `a.b.x`.
func receiverName(expr ast.Expr) (string, bool) {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		return e.Sel.Name, true
	default:
		return "", false
	}
}

func renameSelector(fun ast.Expr, oldPkg, newPkg, oldName, newName string) {
	for {
		switch f := fun.(type) {
		case *ast.IndexExpr:
			fun = f.X
		case *ast.IndexListExpr:
			fun = f.X
		case *ast.SelectorExpr:
			if id, ok := f.X.(*ast.Ident); ok && id.Name == oldPkg && f.Sel.Name == oldName {
				id.Name = newPkg
				f.Sel.Name = newName
			}
			return
		default:
			return
		}
	}
}

func (st *fileState) addSite(pos token.Pos, m *ClassMapping, method string, ctor bool) {
	p := st.rw.fileSet.Position(pos)
	st.sites = append(st.sites, Site{
		File:        st.filename,
		Line:        p.Line,
		Class:       m.InstType,
		Method:      method,
		Write:       m.Writes[method],
		Constructor: ctor,
	})
}

// rewriteImports swaps the raw import for the instrumented one and adds the
// detector-provider import when constructors were rewritten.
func (r *Rewriter) rewriteImports(file *ast.File, rawName string, needDetector bool) {
	for _, decl := range file.Decls {
		gen, ok := decl.(*ast.GenDecl)
		if !ok || gen.Tok != token.IMPORT {
			continue
		}
		for _, spec := range gen.Specs {
			imp := spec.(*ast.ImportSpec)
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || p != r.opts.RawImport {
				continue
			}
			imp.Path.Value = strconv.Quote(r.opts.InstImport)
			// Keep an explicit name only if the default differs.
			base := r.opts.InstImport
			if i := strings.LastIndex(base, "/"); i >= 0 {
				base = base[i+1:]
			}
			if base == r.opts.InstPkgName {
				imp.Name = nil
			} else {
				imp.Name = &ast.Ident{Name: r.opts.InstPkgName}
			}
			if needDetector && r.opts.DetectorImport != "" {
				gen.Specs = append(gen.Specs, &ast.ImportSpec{
					Name: importAlias(r.opts.DetectorImport, r.opts.DetectorPkgName),
					Path: &ast.BasicLit{
						Kind:  token.STRING,
						Value: strconv.Quote(r.opts.DetectorImport),
					},
				})
			}
			return
		}
	}
}

func importAlias(path, name string) *ast.Ident {
	base := path
	if i := strings.LastIndex(base, "/"); i >= 0 {
		base = base[i+1:]
	}
	if base == name {
		return nil
	}
	return &ast.Ident{Name: name}
}

// Err surfaces tracking conflicts discovered during Rewrite.
func (st *fileState) Err() error { return st.err }
