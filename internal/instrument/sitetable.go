package instrument

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// SiteTableRow is one emitted site-table entry, in the same wire form as
// trapfile.SiteRecord: identity is the stable location key plus the API
// tuple, never a process-local id. A consumer (tsvd.RegisterSite, or
// trapfile.LoadSeed via a trap file) interns each row up front so the
// detector's site registry is populated before the instrumented code runs.
type SiteTableRow struct {
	Loc    string `json:"loc"`
	Class  string `json:"class,omitempty"`
	Method string `json:"method,omitempty"`
	Write  bool   `json:"write,omitempty"`
}

// EmitSiteTable writes the instrumentation run's call sites as a JSON site
// table: one array of rows sorted by (loc, class, method), constructors
// excluded (they are not TSVD points). The location key is "file:line" —
// the same shape ids.CallerOp interns at runtime, so the rows registered
// from the table unify with the sites the prologues intern live.
func EmitSiteTable(w io.Writer, sites []Site) error {
	rows := make([]SiteTableRow, 0, len(sites))
	for _, s := range sites {
		if s.Constructor {
			continue
		}
		rows = append(rows, SiteTableRow{
			Loc:    fmt.Sprintf("%s:%d", s.File, s.Line),
			Class:  s.Class,
			Method: s.Method,
			Write:  s.Write,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Loc != b.Loc {
			return a.Loc < b.Loc
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Method < b.Method
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
