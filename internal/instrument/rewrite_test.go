package instrument

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func rewriteString(t *testing.T, src string) (string, []Site) {
	t.Helper()
	rw := NewRewriter(DefaultOptions())
	out, sites, changed, err := rw.Rewrite("input.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("no rewrite happened")
	}
	return string(out), sites
}

func TestRewriteConstructorAndMethods(t *testing.T) {
	src := `package demo

import "repro/internal/rawcol"

func build() int {
	cache := rawcol.NewMap[string, int]()
	cache.Add("a", 1)
	cache.Set("b", 2)
	if cache.Contains("a") {
		cache.Delete("a")
	}
	v, _ := cache.Get("b")
	return v + cache.Len()
}
`
	out, sites := rewriteString(t, src)
	for _, want := range []string{
		`"repro/internal/collections"`,
		`tsvd "repro"`,
		`collections.NewDictionary[string, int](tsvd.Default())`,
		`cache.ContainsKey("a")`,
		`cache.Remove("a")`,
		`cache.TryGetValue("b")`,
		`cache.Count()`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "rawcol") {
		t.Errorf("raw package survived:\n%s", out)
	}
	// 1 constructor + 6 method sites.
	if len(sites) != 7 {
		t.Fatalf("got %d sites, want 7: %+v", len(sites), sites)
	}
	writes := 0
	for _, s := range sites {
		if s.Write && !s.Constructor {
			writes++
		}
	}
	if writes != 3 { // Add, Set, Remove
		t.Fatalf("write sites = %d, want 3", writes)
	}
}

func TestRewriteArrayAndChain(t *testing.T) {
	src := `package demo

import "repro/internal/rawcol"

func arrays() {
	xs := rawcol.NewArray[int]()
	xs.Append(1)
	xs.Sort(func(a, b int) bool { return a < b })
	_ = xs.Snapshot()
	_ = xs.Len()

	ch := rawcol.NewChain[string]()
	ch.PushBack("x")
	ch.PushFront("y")
	_ = ch.PopFront()
	_, _ = ch.PeekBack()
}
`
	out, _ := rewriteString(t, src)
	for _, want := range []string{
		"collections.NewList[int](tsvd.Default())",
		"xs.Add(1)",
		"xs.Sort(",
		"xs.ToSlice()",
		"xs.Count()",
		"collections.NewLinkedList[string](tsvd.Default())",
		`ch.AddLast("x")`,
		`ch.AddFirst("y")`,
		"ch.RemoveFirst()",
		"ch.Last()",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRewriteTypeDeclarationsAndFields(t *testing.T) {
	src := `package demo

import "repro/internal/rawcol"

type registry struct {
	users *rawcol.Map[string, int]
	log   *rawcol.Array[string]
}

func (r *registry) record(name string) {
	r.users.Set(name, 1)
	r.log.Append(name)
}

func process(m *rawcol.Map[string, int]) int {
	return m.Len()
}
`
	out, _ := rewriteString(t, src)
	for _, want := range []string{
		"users *collections.Dictionary[string, int]",
		"log   *collections.List[string]",
		"r.users.Set(name, 1)",
		"r.log.Add(name)",
		"m *collections.Dictionary[string, int]",
		"m.Count()",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRewriteSortedMapConstructorArgOrder(t *testing.T) {
	src := `package demo

import "repro/internal/rawcol"

func sorted() {
	sm := rawcol.NewSortedMap[int, string](func(a, b int) bool { return a < b })
	sm.Add(1, "a")
	_ = sm.Contains(1)
}
`
	out, _ := rewriteString(t, src)
	// The detector must be the FIRST argument, before the less func.
	if !strings.Contains(out, "collections.NewSortedDictionary[int, string](tsvd.Default(), func(a, b int) bool") {
		t.Errorf("detector arg not injected first:\n%s", out)
	}
	if !strings.Contains(out, "sm.ContainsKey(1)") {
		t.Errorf("method not renamed:\n%s", out)
	}
}

func TestRewriteLeavesUnrelatedFilesAlone(t *testing.T) {
	src := `package demo

import "fmt"

func main() { fmt.Println("no containers here") }
`
	rw := NewRewriter(DefaultOptions())
	out, sites, changed, err := rw.Rewrite("input.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if changed || len(sites) != 0 {
		t.Fatal("unrelated file was modified")
	}
	if string(out) != src {
		t.Fatal("unrelated file content altered")
	}
}

func TestRewriteAliasedImport(t *testing.T) {
	src := `package demo

import rc "repro/internal/rawcol"

func aliased() {
	m := rc.NewMap[int, int]()
	m.Add(1, 1)
}
`
	out, _ := rewriteString(t, src)
	if !strings.Contains(out, "collections.NewDictionary[int, int](tsvd.Default())") {
		t.Errorf("aliased import not handled:\n%s", out)
	}
}

func TestRewriteConflictingIdentifierRejected(t *testing.T) {
	src := `package demo

import "repro/internal/rawcol"

func conflict() {
	x := rawcol.NewMap[int, int]()
	_ = x.Len()
	x2 := x
	_ = x2
	{
		x := rawcol.NewArray[int]()
		_ = x.Len()
	}
}
`
	rw := NewRewriter(DefaultOptions())
	_, _, _, err := rw.Rewrite("input.go", []byte(src))
	if err == nil {
		t.Fatal("conflicting identifier classes accepted")
	}
	if !strings.Contains(err.Error(), `"x"`) {
		t.Fatalf("error does not name the identifier: %v", err)
	}
}

func TestRewriteOutputParses(t *testing.T) {
	// The rewritten output must be valid Go (round-trips the parser).
	src := `package demo

import "repro/internal/rawcol"

func roundtrip() {
	m := rawcol.NewMap[string, []int]()
	m.Set("xs", []int{1, 2})
	m.Range(func(k string, v []int) bool { return true })
}
`
	out, _ := rewriteString(t, src)
	rw := NewRewriter(DefaultOptions())
	if _, _, _, err := rw.Rewrite("out.go", []byte(out)); err != nil {
		t.Fatalf("rewritten output does not parse: %v\n%s", err, out)
	}
	if !strings.Contains(out, "m.ForEach(func(k string, v []int) bool") {
		t.Errorf("Range not renamed to ForEach:\n%s", out)
	}
}

func TestRewriteDir(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.go", `package p

import "repro/internal/rawcol"

func a() { m := rawcol.NewMap[int, int](); m.Add(1, 1) }
`)
	write("b.go", "package p\n\nfunc b() {}\n")
	write("skip_test.go", `package p

import "repro/internal/rawcol"

func c() { _ = rawcol.NewMap[int, int]() }
`)
	write("testdata/ignored.go", `package q

import "repro/internal/rawcol"

func d() { _ = rawcol.NewMap[int, int]() }
`)

	// Dry run first: nothing on disk changes.
	res, err := RewriteDir(dir, DefaultOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FilesChanged) != 1 || filepath.Base(res.FilesChanged[0]) != "a.go" {
		t.Fatalf("FilesChanged = %v", res.FilesChanged)
	}
	orig, _ := os.ReadFile(filepath.Join(dir, "a.go"))
	if !strings.Contains(string(orig), "rawcol") {
		t.Fatal("dry run modified the file")
	}
	if len(res.CallSites()) != 1 { // Add only; constructor excluded
		t.Fatalf("CallSites = %+v", res.CallSites())
	}

	// Real run rewrites a.go only.
	if _, err := RewriteDir(dir, DefaultOptions(), true); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(filepath.Join(dir, "a.go"))
	if !strings.Contains(string(got), "collections.NewDictionary") {
		t.Fatalf("a.go not rewritten:\n%s", got)
	}
	testFile, _ := os.ReadFile(filepath.Join(dir, "skip_test.go"))
	if !strings.Contains(string(testFile), "rawcol") {
		t.Fatal("_test.go was rewritten")
	}
	td, _ := os.ReadFile(filepath.Join(dir, "testdata", "ignored.go"))
	if !strings.Contains(string(td), "rawcol") {
		t.Fatal("testdata was rewritten")
	}
}

func TestRewriteHeapAndBits(t *testing.T) {
	src := `package demo

import "repro/internal/rawcol"

func scheduling() {
	pq := rawcol.NewHeap[int](func(a, b int) bool { return a < b })
	pq.Push(3)
	_ = pq.Pop()
	_, _ = pq.Peek()
	_ = pq.Len()

	flags := rawcol.NewBits(128)
	flags.Set(3, true)
	_ = flags.Get(3)
	_ = flags.OnesCount()
}
`
	out, sites := rewriteString(t, src)
	for _, want := range []string{
		"collections.NewPriorityQueue[int](tsvd.Default(), func(a, b int) bool",
		"pq.Enqueue(3)",
		"pq.Dequeue()",
		"pq.Peek()",
		"pq.Count()",
		"collections.NewBitArray(tsvd.Default(), 128)",
		"flags.Set(3, true)",
		"flags.Get(3)",
		"flags.OnesCount()",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if len(sites) != 9 { // 2 ctors + 7 method sites
		t.Fatalf("got %d sites, want 9: %+v", len(sites), sites)
	}
}
