package harness

import (
	"errors"

	"repro/internal/trapfile"
	"repro/internal/trapstore"
)

// StoreExitCode maps the trap-store error a suite accumulated in
// Outcome.StoreErr to the sentinel process exit codes cmd/tsvd-run
// documents. Classification is by errors.Is on the sentinels, never by
// message text:
//
//	0 — nil: every store operation succeeded (graceful degradation to a
//	    local trap file is success — a Fallback already absorbed it).
//	3 — trapfile.ErrCorrupt: a trap file or trap-server payload exists but
//	    cannot be trusted.
//	4 — trapstore.ErrUnavailable: the store could not be reached and no
//	    local fallback absorbed the operation.
//	1 — anything else.
//
// When a joined error carries both sentinels, corruption wins: an
// unreachable daemon is an operational condition, a corrupt trap set is a
// bug, and the exit code should name the bug.
func StoreExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, trapfile.ErrCorrupt):
		return 3
	case errors.Is(err, trapstore.ErrUnavailable):
		return 4
	default:
		return 1
	}
}
