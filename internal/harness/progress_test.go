package harness

import (
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// TestProgressHeartbeat: the Progress callback ticks while the suite runs
// and its final update reconciles with the outcome.
func TestProgressHeartbeat(t *testing.T) {
	suite := workload.GenerateSuite(21, 20)
	var mu sync.Mutex
	var updates []ProgressUpdate
	o := opts(config.AlgoTSVD, 2)
	o.ProgressInterval = 5 * time.Millisecond
	o.Progress = func(u ProgressUpdate) {
		mu.Lock()
		updates = append(updates, u)
		mu.Unlock()
	}
	out := Run(suite, o)

	mu.Lock()
	defer mu.Unlock()
	if len(updates) == 0 {
		t.Fatal("Progress never fired")
	}
	for i := 1; i < len(updates); i++ {
		if updates[i].ModulesDone < updates[i-1].ModulesDone {
			t.Fatalf("ModulesDone went backwards: %+v -> %+v", updates[i-1], updates[i])
		}
	}
	last := updates[len(updates)-1]
	wantTotal := 2 * len(suite.Modules)
	if last.ModulesTotal != wantTotal || last.ModulesDone != wantTotal {
		t.Fatalf("final update incomplete: %+v (want %d/%d modules)", last, wantTotal, wantTotal)
	}
	if last.Run != 2 || last.Runs != 2 {
		t.Fatalf("final update run counters: %+v", last)
	}
	if last.DelaysInjected != out.Stats.DelaysInjected {
		t.Fatalf("final DelaysInjected %d != outcome %d", last.DelaysInjected, out.Stats.DelaysInjected)
	}
	// BugsFound counts unique reported pairs, which is at least the planted
	// bugs the outcome classified.
	if last.BugsFound < out.TotalFound() {
		t.Fatalf("final BugsFound %d < outcome found %d", last.BugsFound, out.TotalFound())
	}
	if last.Elapsed <= 0 {
		t.Fatalf("final Elapsed = %v", last.Elapsed)
	}
}

// TestHarnessMetricsReconcileWithOutcome: Options.Metrics attaches every
// module detector to one registry, and the post-suite scrape equals the
// outcome's summed stats exactly.
func TestHarnessMetricsReconcileWithOutcome(t *testing.T) {
	suite := workload.GenerateSuite(21, 20)
	reg := metrics.NewRegistry()
	o := opts(config.AlgoTSVD, 2)
	o.Metrics = core.NewDetectorMetrics(reg)
	out := Run(suite, o)

	got := reg.Values()
	for series, want := range map[string]int64{
		"tsvd_detector_on_calls_total":                 out.Stats.OnCalls,
		"tsvd_detector_delays_injected_total":          out.Stats.DelaysInjected,
		"tsvd_detector_near_misses_total":              out.Stats.NearMisses,
		"tsvd_detector_pairs_added_total":              out.Stats.PairsAdded,
		"tsvd_detector_violations_total":               out.Stats.Violations,
		"tsvd_detector_near_miss_gap_seconds_count":    out.Stats.NearMisses,
		"tsvd_detector_granted_delay_seconds_count":    out.Stats.DelaysInjected,
		"tsvd_detector_trap_set_occupancy_pairs_count": out.Stats.PairsAdded,
		"tsvd_detector_instances":                      int64(2 * len(suite.Modules)),
	} {
		if got[series] != float64(want) {
			t.Errorf("%s = %v, want %d", series, got[series], want)
		}
	}
	if out.Stats.OnCalls == 0 {
		t.Fatal("suite exercised nothing")
	}
}
