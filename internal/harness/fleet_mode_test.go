package harness

import (
	"testing"

	"repro/internal/config"
	"repro/internal/trapstore"
	"repro/internal/workload"
)

// TestSampledShardSeedsFullModeShardNextRound covers the mode×fleet
// interaction: a shard running in sampled mode (p < 1) still publishes its
// sprung traps to the shared store, and a full-mode shard seeded from that
// store in the next round catches cold bugs in its very first run — which an
// unseeded full-mode shard provably cannot (cold bugs occur once per run and
// need a pre-planted trap).
func TestSampledShardSeedsFullModeShardNextRound(t *testing.T) {
	suite := workload.GenerateSuite(33, 120) // cold-bug-rich seed
	if suite.BugsByKind()[workload.BugCold] < 3 {
		t.Fatalf("suite has too few cold bugs: %v", suite.BugsByKind())
	}
	shared := trapstore.NewMemory("TSVD", nil)

	// Round 1: the sampled shard. Sampling thins the analysis but must not
	// thin the fleet protocol — whatever it discovered is published.
	sampled := opts(config.AlgoTSVD, 1)
	sampled.Config.Mode = config.ModeSampled
	sampled.Config.SampleProbability = 0.7
	sampled.Store = shared
	o1 := Run(suite, sampled)
	if o1.StoreErr != nil {
		t.Fatalf("sampled shard store error: %v", o1.StoreErr)
	}
	if o1.Stats.CallsSampledOut == 0 {
		t.Fatal("sampled shard rejected no calls; the mode was not in effect")
	}
	if shared.PairCount() == 0 {
		t.Fatal("sampled shard published no pairs to the shared store")
	}

	// Round 2: a fresh full-mode shard on the same store, different schedule
	// seed (a different shard sees a different interleaving).
	full := opts(config.AlgoTSVD, 1)
	full.Store = shared
	full.RunSeedBase = Seed(999)
	full.Config.Seed += 7
	o2 := Run(suite, full)
	if o2.StoreErr != nil {
		t.Fatalf("full shard store error: %v", o2.StoreErr)
	}

	planted := suite.PlantedPairs()
	cold := 0
	for pair := range o2.FoundBugs {
		if b, ok := planted[pair]; ok && b.Kind == workload.BugCold {
			cold++
		}
	}
	if cold == 0 {
		t.Fatalf("full-mode shard caught no cold bugs in its single run despite %d seeded pairs",
			shared.PairCount())
	}

	// Control: the same full-mode shard without the store catches none —
	// the catch above is attributable to the sampled shard's publishes.
	control := opts(config.AlgoTSVD, 1)
	control.RunSeedBase = Seed(999)
	control.Config.Seed += 7
	oc := Run(suite, control)
	for pair := range oc.FoundBugs {
		if b, ok := planted[pair]; ok && b.Kind == workload.BugCold {
			t.Fatalf("unseeded control shard caught cold bug %v; cold class broke", pair)
		}
	}

	// The store protocol ran: one fetch + one publish per shard round.
	if tot := shared.Totals(); tot.Fetches != 2 || tot.Publishes != 2 {
		t.Fatalf("store totals = %+v, want 2 fetches and 2 publishes", tot)
	}
}
