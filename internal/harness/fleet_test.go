package harness

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
	"repro/internal/trapfile"
	"repro/internal/trapstore"
	"repro/internal/workload"
)

// TestFleetSharedStoreSeedsColdBugsInRoundOne is the fleet-mode payoff: cold
// bugs occur once per run, so a shard can only trap one if it was seeded
// with the dangerous pair before the occurrence. Isolated shards have no
// seed in their first run and catch none; shards sharing a store are seeded
// by their peers' publishes within the same wave and start catching cold
// bugs a full round earlier.
func TestFleetSharedStoreSeedsColdBugsInRoundOne(t *testing.T) {
	suite := workload.GenerateSuite(33, 120) // cold-bug-rich seed
	if suite.BugsByKind()[workload.BugCold] < 3 {
		t.Fatalf("suite has too few cold bugs: %v", suite.BugsByKind())
	}

	const shards, rounds = 3, 1
	shared := RunFleet(suite, shards, rounds, opts(config.AlgoTSVD, 1),
		trapstore.NewMemory("TSVD", nil))
	isolated := RunFleet(suite, shards, rounds, opts(config.AlgoTSVD, 1), nil)

	if shared.StoreErr != nil || isolated.StoreErr != nil {
		t.Fatalf("store errors: shared=%v isolated=%v", shared.StoreErr, isolated.StoreErr)
	}
	if isolated.ColdCatches != 0 {
		// Cold bugs need a prior near miss to be trapped; an unseeded
		// first run catching one means the workload's cold class broke.
		t.Fatalf("isolated shards caught %d cold bugs in round 1", isolated.ColdCatches)
	}
	if shared.ColdCatches <= isolated.ColdCatches {
		t.Fatalf("shared store did not beat isolation: shared=%d isolated=%d",
			shared.ColdCatches, isolated.ColdCatches)
	}
	if len(shared.Found) == 0 {
		t.Fatal("fleet found nothing at all")
	}
}

// TestFleetOutcomeAccounting pins the bookkeeping on a small suite: every
// Found round is within budget, NewByRound sums to len(Found), and
// MeanFirstBugRound's never-count matches the zero entries.
func TestFleetOutcomeAccounting(t *testing.T) {
	suite := workload.GenerateSuite(21, 20)
	out := RunFleet(suite, 2, 2, opts(config.AlgoTSVD, 1), trapstore.NewMemory("TSVD", nil))

	sum := 0
	for _, n := range out.NewByRound {
		sum += n
	}
	if sum != len(out.Found) {
		t.Fatalf("NewByRound sums to %d, Found has %d", sum, len(out.Found))
	}
	for pair, round := range out.Found {
		if round < 1 || round > out.Rounds {
			t.Fatalf("bug %v first found in impossible round %d", pair, round)
		}
	}
	_, never := out.MeanFirstBugRound()
	zeros := 0
	for _, r := range out.ShardFirstBug {
		if r == 0 {
			zeros++
		}
	}
	if never != zeros {
		t.Fatalf("MeanFirstBugRound never=%d, zero entries=%d", never, zeros)
	}
}

// outageStore is a primary-store double whose operations start failing with
// ErrUnavailable after failAfter calls — a daemon that dies mid-fleet-round.
type outageStore struct {
	inner     trapstore.TrapStore
	calls     atomic.Int64
	failAfter int64
}

func (s *outageStore) outage() error {
	if s.calls.Add(1) > s.failAfter {
		return fmt.Errorf("fleet_test: daemon outage: %w", trapstore.ErrUnavailable)
	}
	return nil
}

func (s *outageStore) Fetch() (trapfile.File, error) {
	if err := s.outage(); err != nil {
		return trapfile.File{Version: trapfile.FormatVersion}, err
	}
	return s.inner.Fetch()
}

func (s *outageStore) Publish(f trapfile.File) error {
	if err := s.outage(); err != nil {
		return err
	}
	return s.inner.Publish(f)
}

func (s *outageStore) Totals() trace.StoreTotals { return s.inner.Totals() }
func (s *outageStore) Close() error              { return s.inner.Close() }

// TestFleetSurvivesStoreDegradingMidRound: the shared store's primary dies
// partway through the fleet's rounds. The Fallback composite must absorb
// every failed operation (no StoreErr), the fleet must keep finding bugs,
// and the degradation must be visible in the outcome's StoreTotals.
func TestFleetSurvivesStoreDegradingMidRound(t *testing.T) {
	suite := workload.GenerateSuite(21, 20)

	// 2 shards × 2 rounds × (1 fetch + 1 publish) = 8 store operations; the
	// primary survives the first 3 and dies mid-way through round 1's wave.
	primary := &outageStore{inner: trapstore.NewMemory("TSVD", nil), failAfter: 3}
	shared := trapstore.NewFallback(primary, trapstore.NewMemory("TSVD", nil), nil)
	out := RunFleet(suite, 2, 2, opts(config.AlgoTSVD, 1), shared)

	if out.StoreErr != nil {
		t.Fatalf("fallback leaked a store error: %v", out.StoreErr)
	}
	if out.StoreTotals.Fallbacks == 0 {
		t.Fatal("primary outage invisible: StoreTotals.Fallbacks = 0")
	}
	if out.StoreTotals.Fetches == 0 || out.StoreTotals.Publishes == 0 {
		t.Fatalf("store accounting empty: %+v", out.StoreTotals)
	}
	if len(out.Found) == 0 {
		t.Fatal("fleet with degraded store found nothing")
	}
}
