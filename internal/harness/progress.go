package harness

import (
	"sync"
	"time"

	"repro/internal/report"
)

// ProgressUpdate is one harness heartbeat (Options.Progress): a live view of
// suite progress for long runs, so `tsvd-run -v` can show that the run is
// moving and roughly where it is.
type ProgressUpdate struct {
	// Run is the 1-based run currently executing; Runs the configured total.
	Run, Runs int
	// ModulesDone counts module runs completed so far across all runs;
	// ModulesTotal is Runs × modules.
	ModulesDone, ModulesTotal int
	// BugsFound counts unique violation pairs reported so far (pre
	// ground-truth classification: every reported pair was caught
	// red-handed, so the count never shrinks on classification).
	BugsFound int
	// DelaysInjected sums the delay counter over completed module runs.
	DelaysInjected int64
	// Elapsed is wall time since the suite started.
	Elapsed time.Duration
}

// progressTracker drives Options.Progress: module completions update the
// counters under a lock, a ticker goroutine emits at the configured
// interval, and finish emits one final synchronous update after the ticker
// has stopped — so the callback only ever runs on one goroutine and the
// last update it sees is complete.
type progressTracker struct {
	fn    func(ProgressUpdate)
	start time.Time
	stop  chan struct{}
	done  chan struct{}

	mu   sync.Mutex
	cur  ProgressUpdate
	bugs map[report.PairKey]bool
}

// newProgressTracker returns nil (a valid no-op receiver) when fn is nil.
func newProgressTracker(fn func(ProgressUpdate), interval time.Duration, runs, modules int) *progressTracker {
	if fn == nil {
		return nil
	}
	t := &progressTracker{
		fn:    fn,
		start: time.Now(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		bugs:  map[report.PairKey]bool{},
	}
	t.cur.Runs = runs
	t.cur.ModulesTotal = runs * modules
	go t.loop(interval)
	return t
}

func (t *progressTracker) loop(interval time.Duration) {
	defer close(t.done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
			t.emit()
		}
	}
}

func (t *progressTracker) emit() {
	t.mu.Lock()
	u := t.cur
	u.Elapsed = time.Since(t.start)
	t.mu.Unlock()
	t.fn(u)
}

// startRun marks the 1-based run as current. Nil-safe.
func (t *progressTracker) startRun(run int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cur.Run = run
	t.mu.Unlock()
}

// moduleDone folds one completed module run into the counters. Nil-safe;
// called under the suite's completion path, not the hot path.
func (t *progressTracker) moduleDone(delays int64, bugKeys []report.PairKey) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cur.ModulesDone++
	t.cur.DelaysInjected += delays
	for _, k := range bugKeys {
		if !t.bugs[k] {
			t.bugs[k] = true
			t.cur.BugsFound++
		}
	}
	t.mu.Unlock()
}

// finish stops the ticker and delivers the final synchronous update.
// Nil-safe.
func (t *progressTracker) finish() {
	if t == nil {
		return
	}
	close(t.stop)
	<-t.done
	t.emit()
}
