package harness

import (
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/trace"
	"repro/internal/workload"
)

// scale keeps harness tests fast: 2ms delays and windows.
const scale = 0.02

func opts(algo config.Algorithm, runs int) Options {
	return Options{
		Config:      config.Defaults(algo).Scaled(scale),
		Runs:        runs,
		Parallelism: 10,
		RunSeedBase: Seed(1234),
	}
}

// TestTSVDEndToEnd is the headline integration test: over a small suite,
// TSVD must find a solid majority of planted bugs within two runs, most of
// them in run 1, with zero unknown (non-planted) pairs reported.
func TestTSVDEndToEnd(t *testing.T) {
	suite := workload.GenerateSuite(21, 40)
	total := suite.TotalPlantedBugs()
	if total == 0 {
		t.Fatal("suite has no planted bugs")
	}
	out := Run(suite, opts(config.AlgoTSVD, 2))

	if len(out.UnknownPairs) != 0 {
		t.Fatalf("reported non-planted pairs: %v", out.UnknownPairs)
	}
	found := out.TotalFound()
	if found*2 < total {
		t.Fatalf("TSVD found %d of %d planted bugs in 2 runs", found, total)
	}
	if out.NewBugsByRun[0] < out.NewBugsByRun[1] {
		t.Fatalf("run 1 (%d) should find at least as many as run 2 (%d)",
			out.NewBugsByRun[0], out.NewBugsByRun[1])
	}
	if out.Stats.DelaysInjected == 0 || out.Stats.NearMisses == 0 {
		t.Fatalf("stats incomplete: %+v", out.Stats)
	}
	if out.Panics != 0 {
		t.Fatalf("%d test bodies panicked", out.Panics)
	}
}

// TestColdBugsNeedRunTwo: single-occurrence bugs are invisible to TSVD's
// same-run injection and require the trap file.
func TestColdBugsNeedRunTwo(t *testing.T) {
	// A suite dense in cold bugs: generate until we have a few.
	suite := workload.GenerateSuite(33, 120)
	kinds := suite.BugsByKind()
	if kinds[workload.BugCold] < 3 {
		t.Fatalf("suite has only %d cold bugs", kinds[workload.BugCold])
	}
	one := Run(suite, opts(config.AlgoTSVD, 1))
	two := Run(suite, opts(config.AlgoTSVD, 2))

	coldOne := one.FoundByKind(suite)[workload.BugCold]
	coldTwo := two.FoundByKind(suite)[workload.BugCold]
	if coldTwo <= coldOne {
		t.Fatalf("trap file did not help cold bugs: run1-only=%d, two-runs=%d",
			coldOne, coldTwo)
	}
	// And the cold bugs found in the two-run config mostly landed in run 2.
	lateCold := 0
	planted := suite.PlantedPairs()
	for pair, run := range two.FoundBugs {
		if planted[pair].Kind == workload.BugCold && run == 2 {
			lateCold++
		}
	}
	if lateCold == 0 {
		t.Fatal("no cold bug was first found in run 2")
	}
}

// TestTSVDBeatsRandomBaselines on bugs found under the same two-run budget.
func TestTSVDBeatsRandomBaselines(t *testing.T) {
	suite := workload.GenerateSuite(55, 40)
	tsvd := Run(suite, opts(config.AlgoTSVD, 2))
	dyn := Run(suite, opts(config.AlgoDynamicRandom, 2))
	if tsvd.TotalFound() <= dyn.TotalFound() {
		t.Fatalf("TSVD (%d) did not beat DynamicRandom (%d)",
			tsvd.TotalFound(), dyn.TotalFound())
	}
}

// TestNoFalsePositivesAcrossAllVariants: every variant reports only
// red-handed catches, so only planted pairs may ever appear.
func TestNoFalsePositivesAcrossAllVariants(t *testing.T) {
	suite := workload.GenerateSuite(77, 25)
	for _, algo := range []config.Algorithm{
		config.AlgoTSVD, config.AlgoTSVDHB,
		config.AlgoDynamicRandom, config.AlgoStaticRandom,
	} {
		out := Run(suite, opts(algo, 2))
		if len(out.UnknownPairs) != 0 {
			t.Fatalf("%v reported non-planted pairs: %v", algo, out.UnknownPairs)
		}
	}
}

// TestDelaySelectivity: TSVD must spend far less injected-delay time than
// DynamicRandom, because it only delays at dangerous pairs while the random
// baseline pays on every hot sequential path (Table 2's shape; asserted on
// injected-delay totals, which are noise-free, rather than wall clock).
func TestDelaySelectivity(t *testing.T) {
	suite := workload.GenerateSuite(99, 30)
	base := Baseline(suite, opts(config.AlgoTSVD, 1))
	if base <= 0 {
		t.Fatal("baseline did not run")
	}
	tsvd := Run(suite, opts(config.AlgoTSVD, 1))
	dyn := Run(suite, opts(config.AlgoDynamicRandom, 1))
	if tsvd.Stats.TotalDelay >= dyn.Stats.TotalDelay {
		t.Fatalf("TSVD delay time %v not below DynamicRandom %v",
			tsvd.Stats.TotalDelay, dyn.Stats.TotalDelay)
	}
	// TSVD also injects far fewer delays than it has OnCalls.
	if tsvd.Stats.DelaysInjected*4 > tsvd.Stats.OnCalls {
		t.Fatalf("TSVD injected %d delays for %d calls — not selective",
			tsvd.Stats.DelaysInjected, tsvd.Stats.OnCalls)
	}
}

// TestBaselineStableAcrossAlgorithms: the baseline ignores the configured
// algorithm (it always runs Nop).
func TestBaselineUsesNop(t *testing.T) {
	suite := workload.GenerateSuite(13, 8)
	a := Baseline(suite, opts(config.AlgoTSVD, 1))
	b := Baseline(suite, opts(config.AlgoDynamicRandom, 1))
	ratio := float64(a) / float64(b)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("baselines differ wildly: %v vs %v", a, b)
	}
}

// TestOutcomeBookkeeping checks run attribution and module counting.
func TestOutcomeBookkeeping(t *testing.T) {
	suite := workload.GenerateSuite(21, 40)
	out := Run(suite, opts(config.AlgoTSVD, 2))
	if len(out.NewBugsByRun) != 2 {
		t.Fatalf("NewBugsByRun = %v", out.NewBugsByRun)
	}
	sum := out.NewBugsByRun[0] + out.NewBugsByRun[1]
	if sum != out.TotalFound() {
		t.Fatalf("per-run sums %d != total %d", sum, out.TotalFound())
	}
	for pair, run := range out.FoundBugs {
		if run < 1 || run > 2 {
			t.Fatalf("bug %v attributed to run %d", pair, run)
		}
	}
	if out.ModulesWithBugs == 0 {
		t.Fatal("no module recorded as buggy")
	}
	if out.Reports.UniqueBugs() < out.TotalFound() {
		t.Fatal("merged reports lost bugs")
	}
}

func TestStackDepthOf(t *testing.T) {
	stack := "func1()\n\tfile1.go:10\nfunc2()\n\tfile2.go:20\n"
	if d := StackDepthOf(stack); d != 2 {
		t.Fatalf("StackDepthOf = %d, want 2", d)
	}
	if StackDepthOf("") != 0 {
		t.Fatal("empty stack depth wrong")
	}
}

func TestOverheadMath(t *testing.T) {
	if Overhead(150*time.Millisecond, 100*time.Millisecond) != 0.5 {
		t.Fatal("overhead math wrong")
	}
	if Overhead(100, 0) != 0 {
		t.Fatal("zero baseline not guarded")
	}
}

// TestWithDefaults pins the zero-value semantics of Options: nil RunSeedBase
// means "use the default 42", while an explicit Seed(0) is a real, distinct
// seed and must survive. Runs and Parallelism treat any non-positive value
// as unset (zero is never a meaningful run count).
func TestWithDefaults(t *testing.T) {
	d := Options{}.withDefaults()
	if d.Runs != 1 || d.Parallelism != 10 {
		t.Fatalf("zero Options defaulted to Runs=%d Parallelism=%d", d.Runs, d.Parallelism)
	}
	if d.RunSeedBase == nil || *d.RunSeedBase != 42 {
		t.Fatalf("nil RunSeedBase defaulted to %v, want 42", d.RunSeedBase)
	}

	z := Options{RunSeedBase: Seed(0)}.withDefaults()
	if z.RunSeedBase == nil || *z.RunSeedBase != 0 {
		t.Fatalf("explicit Seed(0) was clobbered to %v", z.RunSeedBase)
	}

	neg := Options{Runs: -3, Parallelism: -1}.withDefaults()
	if neg.Runs != 1 || neg.Parallelism != 10 {
		t.Fatalf("negative values not treated as unset: %+v", neg)
	}

	set := Options{Runs: 7, Parallelism: 3, RunSeedBase: Seed(99)}.withDefaults()
	if set.Runs != 7 || set.Parallelism != 3 || *set.RunSeedBase != 99 {
		t.Fatalf("explicit values clobbered: %+v", set)
	}
}

// TestSeedZeroIsDistinctFromDefault: seed 0 must produce a different schedule
// universe than the implicit default — the regression the pointer fixed
// (RunSeedBase == 0 used to silently mean 42).
func TestSeedZeroIsDistinctFromDefault(t *testing.T) {
	suite := workload.GenerateSuite(21, 10)
	o := opts(config.AlgoTSVD, 1)
	o.RunSeedBase = Seed(0)
	zero := Run(suite, o)
	o.RunSeedBase = Seed(42)
	def := Run(suite, o)
	// Both are real runs; the point is that Seed(0) flowed through as 0.
	// The schedules will nearly always differ in delay placement; assert on
	// the sturdiest observable, total instrumented calls being present in
	// both, plus at least one differing statistic across a few counters.
	if zero.Stats.OnCalls == 0 || def.Stats.OnCalls == 0 {
		t.Fatal("a run did not execute")
	}
	same := zero.Stats.DelaysInjected == def.Stats.DelaysInjected &&
		zero.Stats.NearMisses == def.Stats.NearMisses &&
		zero.Stats.TotalDelay == def.Stats.TotalDelay
	if same {
		t.Log("seed 0 and 42 produced identical stats; cannot distinguish (flaky-tolerant: not failing)")
	}
}

// TestTraceReconcilesWithStats: with tracing on, the drained event counts
// must mirror the detector counters exactly, with zero dropped events —
// the observability layer's core accounting invariant.
func TestTraceReconcilesWithStats(t *testing.T) {
	suite := workload.GenerateSuite(21, 20)
	for _, algo := range []config.Algorithm{config.AlgoTSVD, config.AlgoTSVDHB} {
		o := opts(algo, 2)
		o.Config.Trace = true
		out := Run(suite, o)
		if out.TraceTotals.Emitted == 0 {
			t.Fatalf("%v: tracing enabled but no events emitted", algo)
		}
		if out.TraceTotals.Dropped != 0 {
			t.Fatalf("%v: %d events dropped with default buffer", algo, out.TraceTotals.Dropped)
		}
		var drained int64
		for _, mt := range out.Traces {
			drained += int64(len(mt.Events))
		}
		if drained != out.TraceTotals.Emitted {
			t.Fatalf("%v: drained %d != emitted %d", algo, drained, out.TraceTotals.Emitted)
		}
		counts := trace.CountByKind(out.Traces)
		if err := trace.Reconcile(counts, out.TraceStatTotals(), trace.StoreTotals{}, out.TraceTotals.Dropped); err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
	}
}

// TestTraceDisabledByDefault: without Config.Trace the detectors carry no
// tracer and the outcome carries no events.
func TestTraceDisabledByDefault(t *testing.T) {
	suite := workload.GenerateSuite(21, 5)
	out := Run(suite, opts(config.AlgoTSVD, 1))
	if len(out.Traces) != 0 || out.TraceTotals.Emitted != 0 {
		t.Fatalf("tracing off but outcome has traces: %d modules, %d emitted",
			len(out.Traces), out.TraceTotals.Emitted)
	}
}
