package harness

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/trapfile"
	"repro/internal/workload"
)

// TestTrapFileAcrossProcesses models the paper's two-process deployment:
// process 1 runs once and writes its trap file; process 2 (a fresh harness
// invocation seeded from that file) catches single-occurrence bugs on its
// very first run.
func TestTrapFileAcrossProcesses(t *testing.T) {
	suite := workload.GenerateSuite(33, 120) // cold-bug-rich seed
	if suite.BugsByKind()[workload.BugCold] < 3 {
		t.Fatalf("suite has too few cold bugs: %v", suite.BugsByKind())
	}

	// Process 1: one run, then serialize the final trap set.
	p1 := Run(suite, opts(config.AlgoTSVD, 1))
	if len(p1.FinalTraps) == 0 {
		t.Fatal("process 1 produced no trap file contents")
	}
	persisted := trapfile.FromKeys(p1.FinalTraps)
	if len(persisted) == 0 {
		t.Fatal("trap pairs did not serialize (sites not interned?)")
	}

	// Process 2: load (round-tripping through the wire format) and run
	// once with the seeded trap set.
	o := opts(config.AlgoTSVD, 1)
	o.InitialTraps = trapfile.ToKeys(persisted)
	p2 := Run(suite, o)

	coldP1 := p1.FoundByKind(suite)[workload.BugCold]
	coldP2 := p2.FoundByKind(suite)[workload.BugCold]
	if coldP2 <= coldP1 {
		t.Fatalf("trap file across processes did not help cold bugs: p1=%d p2=%d",
			coldP1, coldP2)
	}
}

// TestGapHistogramObserved: near misses populate the gap histogram and it
// survives harness aggregation.
func TestGapHistogramObserved(t *testing.T) {
	suite := workload.GenerateSuite(21, 20)
	out := Run(suite, opts(config.AlgoTSVD, 1))
	if out.Stats.NearMisses == 0 {
		t.Fatal("no near misses to histogram")
	}
	if got := out.Stats.NearMissGaps.Total(); got != out.Stats.NearMisses {
		t.Fatalf("histogram total %d != near misses %d", got, out.Stats.NearMisses)
	}
	if out.Stats.NearMissGaps.String() == "(empty)" {
		t.Fatal("histogram rendered empty")
	}
}

// TestGapHistogramBuckets pins the log₂ bucketing contract.
func TestGapHistogramBuckets(t *testing.T) {
	var h core.GapHistogram
	h.Observe(0)                  // bucket 0
	h.Observe(1500 * 1000)        // 1500µs → bucket 10 ([1024,2048))
	h.Observe(3 * 1000)           // 3µs → bucket 1
	h.Observe(1 << 40 * 1000_000) // absurd: clamps to last bucket
	if h[0] != 1 || h[1] != 1 || h[10] != 1 || h[len(h)-1] != 1 {
		t.Fatalf("bucketing wrong: %v", h)
	}
	if h.Total() != 4 {
		t.Fatalf("Total = %d", h.Total())
	}
	var sum core.GapHistogram
	sum.Add(h)
	sum.Add(h)
	if sum.Total() != 8 {
		t.Fatalf("Add broken: %d", sum.Total())
	}
}
