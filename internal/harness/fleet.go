package harness

import (
	"errors"

	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/trapstore"
	"repro/internal/triage"
	"repro/internal/workload"
)

// FleetOutcome aggregates a RunFleet execution: K shards running the suite
// in lockstep rounds, each syncing with a trap store between rounds.
type FleetOutcome struct {
	Shards int
	Rounds int

	// Found maps each planted bug the fleet caught to the earliest 1-based
	// round in which any shard caught it.
	Found map[report.PairKey]int
	// NewByRound[r-1] counts planted bugs first caught (fleet-wide) in
	// round r.
	NewByRound []int
	// ShardFirstBug[i] is the first round in which shard i caught any
	// planted bug (0 = never within the budget).
	ShardFirstBug []int
	// ShardCold[i] counts the distinct cold planted bugs shard i caught.
	// Cold bugs occur once per run, so a shard can only trap one by being
	// seeded with the dangerous pair before the occurrence — they are the
	// bug class trap sharing exists for (§3.4.6).
	ShardCold []int
	// ColdCatches sums ShardCold: the fleet-wide count of per-shard cold
	// catches, the headline number a shared store is supposed to raise.
	ColdCatches int
	// StoreErr joins every store error any shard accumulated.
	StoreErr error
	// StoreTotals sums the shards' trap-store operation accounting (one
	// store's totals in shared mode, the per-shard stores' sum otherwise),
	// so a degraded round is visible in the outcome: Fallbacks > 0 means at
	// least one shard served or saved its pairs locally while the primary
	// was unreachable.
	StoreTotals trace.StoreTotals
}

// MeanFirstBugRound averages ShardFirstBug over the shards that caught
// anything; the second result is how many never did.
func (o *FleetOutcome) MeanFirstBugRound() (float64, int) {
	sum, caught, never := 0, 0, 0
	for _, r := range o.ShardFirstBug {
		if r == 0 {
			never++
			continue
		}
		sum += r
		caught++
	}
	if caught == 0 {
		return 0, never
	}
	return float64(sum) / float64(caught), never
}

// RunFleet simulates a CI fleet: shards shards each execute the suite once
// per round, for rounds rounds, syncing their trap sets through a store
// before and after every run (the same per-run protocol tsvd-run uses
// against tsvd-trapd). With shared non-nil every shard uses that one store,
// so pairs discovered by one shard seed every other shard's next round;
// with shared nil each shard gets a private in-memory store — the isolated
// baseline where a shard only ever learns from its own runs.
//
// Shards run sequentially within a round (concurrent suites would contend
// for CPU and perturb the delay-injection timing the detector depends on);
// the lockstep-wave model matches a CI system that starts all shards
// together and waits for the slowest.
func RunFleet(suite *workload.Suite, shards, rounds int, base Options, shared trapstore.TrapStore) *FleetOutcome {
	base = base.withDefaults()
	out := &FleetOutcome{
		Shards:        shards,
		Rounds:        rounds,
		Found:         map[report.PairKey]int{},
		NewByRound:    make([]int, rounds),
		ShardFirstBug: make([]int, shards),
		ShardCold:     make([]int, shards),
	}
	planted := suite.PlantedPairs()

	stores := make([]trapstore.TrapStore, shards)
	coldSeen := make([]map[report.PairKey]bool, shards)
	for i := range stores {
		if shared != nil {
			stores[i] = shared
		} else {
			stores[i] = trapstore.NewMemory("TSVD", nil)
		}
		coldSeen[i] = map[report.PairKey]bool{}
	}

	for round := 1; round <= rounds; round++ {
		for sh := 0; sh < shards; sh++ {
			o := base
			o.Runs = 1
			o.Store = stores[sh]
			// Distinct schedule and detector randomness per (shard, round):
			// shards are different machines running the same tests.
			o.RunSeedBase = Seed(base.runSeedBase() + int64(sh)*1_000_003 + int64(round)*7919)
			o.Config.Seed = base.Config.Seed + int64(sh)*104_729 + int64(round)*15_485_863
			if o.Triage != nil {
				// Each (shard, round) run is one triage unit with full fleet
				// provenance, so clusters report where and when they fired.
				o.TriageProvenance = triage.Provenance{
					Shard: sh + 1, Round: round,
					Seed:   o.Config.Seed,
					Mode:   o.Config.Mode.String(),
					Source: "fleet",
				}
			}
			ro := Run(suite, o)

			if ro.StoreErr != nil {
				out.StoreErr = errors.Join(out.StoreErr, ro.StoreErr)
			}
			for pair := range ro.FoundBugs {
				b, known := planted[pair]
				if !known {
					continue
				}
				if _, seen := out.Found[pair]; !seen {
					out.Found[pair] = round
					out.NewByRound[round-1]++
				}
				if out.ShardFirstBug[sh] == 0 {
					out.ShardFirstBug[sh] = round
				}
				if b.Kind == workload.BugCold && !coldSeen[sh][pair] {
					coldSeen[sh][pair] = true
					out.ShardCold[sh]++
				}
			}
		}
	}
	for _, c := range out.ShardCold {
		out.ColdCatches += c
	}
	if shared != nil {
		out.StoreTotals = shared.Totals()
	} else {
		for _, s := range stores {
			t := s.Totals()
			out.StoreTotals.Fetches += t.Fetches
			out.StoreTotals.Publishes += t.Publishes
			out.StoreTotals.Fallbacks += t.Fallbacks
		}
	}
	return out
}
