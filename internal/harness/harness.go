// Package harness executes workload suites under detector configurations
// and aggregates the measurements the paper's evaluation reports: unique
// bugs per run, runtime overhead against an uninstrumented baseline, delay
// counts, and the Table-1 population statistics. Modules run Parallelism at
// a time — the paper runs 10 modules at a time on its small server (§5.1) —
// with one detector instance per module per run, matching the deployment
// model of one instrumented test process per module.
package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/report"
	"repro/internal/sites"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/trapfile"
	"repro/internal/trapstore"
	"repro/internal/triage"
	"repro/internal/workload"
)

// Options configures one suite execution.
type Options struct {
	// Config is the detector configuration (algorithm, parameters,
	// TimeScale).
	Config config.Config
	// Runs is the number of consecutive runs; trap sets persist between
	// runs per module (§3.4.6). Zero means the default of 1 — a zero-run
	// suite measures nothing, so the zero value cannot be meant literally.
	Runs int
	// RunSeedBase varies workload schedule randomness per run. nil means
	// the default base (42); an explicit pointer — obtained from Seed — is
	// used verbatim, so every seed value, including zero, is reproducible.
	// (A plain int64 could not distinguish "unset" from an explicit zero.)
	RunSeedBase *int64
	// Parallelism is the number of modules in flight at once. Zero means
	// the paper's default of 10 (§5.1) — zero in-flight modules would
	// deadlock, so, like Runs, the zero value cannot be meant literally.
	Parallelism int
	// InlineFastAsync emulates the CLR fast-async optimization instead of
	// TSVD's force-async instrumentation (§4). Default false applies
	// force-async uniformly, as the paper does for every technique.
	InlineFastAsync bool
	// InitialTraps seeds every module's first run from a trap file
	// written by a previous process (§3.4.6). Pairs belonging to other
	// modules are inert.
	InitialTraps []report.PairKey
	// Store, when non-nil, is a shared trap store (fleet mode, §3.4.6
	// generalized across concurrent shards): before each run the harness
	// fetches the store's pairs and seeds every module with them, and after
	// each run it publishes the union of the per-module trap sets. Store
	// errors never abort the suite — they accumulate in Outcome.StoreErr
	// for the caller to classify (a trapstore.Fallback already degrades
	// around an unreachable daemon, so errors here are data errors or an
	// unreachable store with no local fallback).
	Store trapstore.TrapStore
	// Metrics, when non-nil, attaches every module detector of the suite to
	// one live metrics view (core.NewDetectorMetrics), so a registry scrape
	// mid-suite reports the suite-wide counters while modules are still
	// running.
	Metrics *core.DetectorMetrics
	// Triage, when non-nil, receives the whole suite execution as one
	// triage unit when Run returns: every raw violation folds into its
	// signature cluster and the drained traces feed opportunity accounting
	// and explanation slices (internal/triage). Shared safely across
	// concurrent Run calls — RunFleet attaches one Triage to every shard.
	Triage *triage.Triage
	// TriageProvenance labels the unit Triage receives (shard, round, seed,
	// mode, source). Zero-valued fields are filled from Config where
	// possible (Seed, Mode).
	TriageProvenance triage.Provenance
	// Progress, when non-nil, receives a heartbeat every ProgressInterval
	// while the suite runs, plus one final update after the last module
	// completes. Updates are delivered sequentially, never concurrently;
	// the callback must not call back into the harness.
	Progress func(ProgressUpdate)
	// ProgressInterval is the heartbeat period (default 1s).
	ProgressInterval time.Duration
}

// Seed wraps an explicit run-seed base. harness.Seed(0) is a real,
// reproducible choice; leaving RunSeedBase nil selects the default.
func Seed(v int64) *int64 { return &v }

func (o Options) withDefaults() Options {
	if o.Runs <= 0 {
		o.Runs = 1
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 10
	}
	if o.RunSeedBase == nil {
		o.RunSeedBase = Seed(42)
	}
	if o.ProgressInterval <= 0 {
		o.ProgressInterval = time.Second
	}
	return o
}

// runSeedBase is the post-defaults accessor; withDefaults guarantees non-nil.
func (o Options) runSeedBase() int64 { return *o.RunSeedBase }

// Outcome aggregates one suite execution.
type Outcome struct {
	Algo config.Algorithm

	// FoundBugs maps each detected planted bug to the 1-based run in
	// which it was first caught.
	FoundBugs map[report.PairKey]int
	// NewBugsByRun[i] counts planted bugs first found in run i+1.
	NewBugsByRun []int
	// UnknownPairs are reported pairs absent from ground truth. The
	// workload is constructed so this must stay empty — reported bugs are
	// caught red-handed, and every truly racy pair is planted.
	UnknownPairs []report.PairKey

	// WallTime sums module durations across runs (server-time model).
	WallTime time.Duration
	// Stats sums detector counters across modules and runs.
	Stats core.Stats
	// Reports merges every module's violations (Table 1 statistics).
	Reports *report.Collector
	// ModulesWithBugs counts modules where at least one bug was found.
	ModulesWithBugs int
	// Panics counts test-body panics (all recovered).
	Panics int
	// FinalTraps is the union of every module's dangerous pairs after the
	// last run — the contents of the next trap file.
	FinalTraps []report.PairKey
	// StoreErr joins every error Options.Store returned during the suite
	// (nil when no store was configured or every operation succeeded). The
	// suite itself always runs to completion; callers classify the error
	// with errors.Is (trapfile.ErrCorrupt, trapstore.ErrUnavailable).
	StoreErr error

	// Traces holds each module run's drained event trace, in completion
	// order, when Config.Trace is enabled (empty otherwise). Each detector
	// is drained once, right after its module run finishes, so a
	// default-sized buffer never drops events.
	Traces []trace.ModuleTrace
	// TraceTotals sums the tracers' loss accounting across all module runs;
	// TraceTotals.Dropped must be zero for the trace to reconcile with
	// Stats.
	TraceTotals trace.Totals
	// Sites is the suite-wide site registry every module detector interned
	// into (Run ensures one shared registry when Config.Sites is nil), so
	// trace serialization resolves consistent site ids across modules.
	Sites *sites.Registry
}

// TraceStatTotals extracts the Stats counters that have exact event-count
// mirrors, in the trace package's reconciliation form.
func (o *Outcome) TraceStatTotals() trace.StatTotals {
	return trace.StatTotals{
		DelaysInjected:   o.Stats.DelaysInjected,
		NearMisses:       o.Stats.NearMisses,
		PairsAdded:       o.Stats.PairsAdded,
		PairsPrunedHB:    o.Stats.PairsPrunedHB,
		PairsPrunedDecay: o.Stats.PairsPrunedDecay,
		Violations:       o.Stats.Violations,
		DelaysSuppressed: o.Stats.DelaysSuppressed,
		SamplerThrottles: o.Stats.SamplerThrottles,
	}
}

// FoundByKind tallies found planted bugs by kind.
func (o *Outcome) FoundByKind(suite *workload.Suite) map[workload.BugKind]int {
	planted := suite.PlantedPairs()
	out := map[workload.BugKind]int{}
	for pair := range o.FoundBugs {
		if b, ok := planted[pair]; ok {
			out[b.Kind]++
		}
	}
	return out
}

// TotalFound is the number of unique planted bugs detected.
func (o *Outcome) TotalFound() int { return len(o.FoundBugs) }

// timing derives the workload pacing from the detector configuration: the
// pace is a quarter of the near-miss window so looped conflicting accesses
// reliably near-miss, and test deadlines leave room for injected delays.
type timing struct {
	pace  time.Duration
	delay time.Duration
}

func timingFor(cfg config.Config) timing {
	pace := cfg.EffectiveNearMissWindow() / 4
	if pace < 200*time.Microsecond {
		pace = 200 * time.Microsecond
	}
	return timing{pace: pace, delay: cfg.EffectiveDelay()}
}

// Baseline measures the suite uninstrumented (Nop detector): the
// denominator of every overhead figure.
func Baseline(suite *workload.Suite, opts Options) time.Duration {
	opts = opts.withDefaults()
	cfg := opts.Config
	cfg.Algorithm = config.AlgoNop
	o := runSuite(suite, opts, cfg, nil, 1, nil)
	return o.WallTime
}

// Run executes the suite under opts.Config for opts.Runs consecutive runs,
// carrying each module's trap set forward between runs.
func Run(suite *workload.Suite, opts Options) *Outcome {
	opts = opts.withDefaults()
	if opts.Config.Sites == nil {
		// One registry for the whole suite: module detectors intern into the
		// same table, so merged traces and reports resolve one consistent
		// set of site ids.
		opts.Config.Sites = sites.New()
	}
	out := &Outcome{
		Algo:      opts.Config.Algorithm,
		FoundBugs: map[report.PairKey]int{},
		Reports:   report.NewCollector(),
		Sites:     opts.Config.Sites,
	}
	planted := suite.PlantedPairs()
	modulesWithFound := map[string]bool{}
	prog := newProgressTracker(opts.Progress, opts.ProgressInterval, opts.Runs, len(suite.Modules))
	defer prog.finish()

	traps := make([][]report.PairKey, len(suite.Modules))
	if len(opts.InitialTraps) > 0 {
		for mi := range traps {
			traps[mi] = opts.InitialTraps
		}
	}
	for run := 1; run <= opts.Runs; run++ {
		prog.startRun(run)
		if opts.Store != nil {
			// Seed this run from everything the fleet has found so far.
			f, err := opts.Store.Fetch()
			if err != nil {
				out.StoreErr = errors.Join(out.StoreErr, err)
			} else {
				// Re-intern the fetched site table so this run resolves
				// API metadata for pairs whose sites it has not executed
				// yet (the trap-file analogue of trapfile.LoadSeed).
				for _, r := range f.Sites {
					opts.Config.Sites.Register(ids.InternKey(r.Loc), r.Class, r.Method, r.Write)
				}
				if len(f.Pairs) > 0 {
					seed := trapfile.ToKeys(f.Pairs)
					for mi := range traps {
						traps[mi] = unionKeys(traps[mi], seed)
					}
				}
			}
		}
		ro := runSuite(suite, opts, opts.Config, traps, run, prog)
		out.WallTime += ro.WallTime
		out.Stats = sumStats(out.Stats, ro.Stats)
		out.Panics += ro.Panics
		out.Reports.Merge(ro.Reports)
		out.Traces = append(out.Traces, ro.Traces...)
		out.TraceTotals.Emitted += ro.TraceTotals.Emitted
		out.TraceTotals.Dropped += ro.TraceTotals.Dropped
		out.TraceTotals.Buffered += ro.TraceTotals.Buffered

		newBugs := 0
		for _, bug := range ro.Reports.Bugs() {
			pair := bug.Key
			if _, known := planted[pair]; !known {
				out.UnknownPairs = append(out.UnknownPairs, pair)
				continue
			}
			if _, seen := out.FoundBugs[pair]; !seen {
				out.FoundBugs[pair] = run
				newBugs++
			}
		}
		for name, found := range ro.modulesFound {
			if found {
				modulesWithFound[name] = true
			}
		}
		out.NewBugsByRun = append(out.NewBugsByRun, newBugs)

		if opts.Store != nil {
			// Hand this run's discoveries to the fleet, site table included,
			// so a shard seeded from the store can resolve API metadata for
			// call sites it has not executed yet.
			f := trapfile.NewWithSites(opts.Config.Algorithm.String(), unionTraps(traps), opts.Config.Sites)
			if err := opts.Store.Publish(f); err != nil {
				out.StoreErr = errors.Join(out.StoreErr, err)
			}
		}
	}
	out.ModulesWithBugs = len(modulesWithFound)
	out.FinalTraps = unionTraps(traps)
	if opts.Triage != nil {
		prov := opts.TriageProvenance
		if prov.Seed == 0 {
			prov.Seed = opts.Config.Seed
		}
		if prov.Mode == "" {
			prov.Mode = opts.Config.Mode.String()
		}
		opts.Triage.AddRun(out.Reports, out.Traces, prov)
	}
	return out
}

// unionTraps flattens the per-module trap slots into one deduplicated set.
func unionTraps(traps [][]report.PairKey) []report.PairKey {
	var out []report.PairKey
	seen := map[report.PairKey]bool{}
	for _, pairs := range traps {
		for _, p := range pairs {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// unionKeys appends the members of add that cur lacks.
func unionKeys(cur, add []report.PairKey) []report.PairKey {
	seen := make(map[report.PairKey]bool, len(cur))
	for _, p := range cur {
		seen[p] = true
	}
	for _, p := range add {
		if !seen[p] {
			seen[p] = true
			cur = append(cur, p)
		}
	}
	return cur
}

// runResult is one run over the whole suite.
type runResult struct {
	WallTime     time.Duration
	Stats        core.Stats
	Reports      *report.Collector
	Panics       int
	modulesFound map[string]bool
	Traces       []trace.ModuleTrace
	TraceTotals  trace.Totals
}

// runSuite executes every module once. traps, when non-nil, is the per-
// module trap persistence slot (read before, written after). run is the
// 1-based run number.
func runSuite(suite *workload.Suite, opts Options, cfg config.Config,
	traps [][]report.PairKey, run int, prog *progressTracker) *runResult {

	res := &runResult{Reports: report.NewCollector(), modulesFound: map[string]bool{}}
	tm := timingFor(cfg)

	var mu sync.Mutex
	sem := make(chan struct{}, opts.Parallelism)
	var wg sync.WaitGroup
	for mi := range suite.Modules {
		wg.Add(1)
		sem <- struct{}{}
		go func(mi int) {
			defer wg.Done()
			defer func() { <-sem }()
			mod := suite.Modules[mi]

			mcfg := cfg
			mcfg.Seed = cfg.Seed + int64(mi)*1009 + int64(run)*7919
			var detOpts []core.Option
			if traps != nil && traps[mi] != nil {
				detOpts = append(detOpts, core.WithInitialTraps(traps[mi]))
			}
			if opts.Metrics != nil {
				detOpts = append(detOpts, core.WithDetectorMetrics(opts.Metrics))
			}
			det, err := core.New(mcfg, detOpts...)
			if err != nil {
				panic(fmt.Sprintf("harness: detector config invalid: %v", err))
			}

			schedOpts := []task.SchedulerOption{task.WithForceAsync()}
			if opts.InlineFastAsync {
				// "Fast" scales with the workload pace: anything under
				// ~20 pace units is a fast mock by this suite's measure.
				schedOpts = []task.SchedulerOption{
					task.WithInlineFastTasks(),
					task.WithInlineThreshold(20 * tm.pace),
				}
			}
			schedDet := det
			if _, isNop := det.(*core.NopDetector); isNop {
				schedDet = nil // baseline: no monitoring cost at all
			}
			sched := task.NewScheduler(schedDet, schedOpts...)

			start := time.Now()
			panics := runModule(mod, det, sched, opts, tm, mi, run)
			sched.WaitIdle()
			dur := time.Since(start)

			mu.Lock()
			res.WallTime += dur
			res.Stats = sumStats(res.Stats, det.Stats())
			res.Panics += panics
			res.modulesFound[mod.Name] = det.Reports().UniqueBugs() > 0
			res.Reports.Merge(det.Reports())
			if traps != nil {
				traps[mi] = det.ExportTraps()
			}
			if tr := det.Tracer(); tr != nil {
				// One drain per detector, after the module run is fully
				// idle: the buffer is sized to hold a whole run, so this
				// is the loss-free path reconciliation depends on.
				events := tr.Drain()
				tot := tr.Totals()
				res.Traces = append(res.Traces, trace.ModuleTrace{
					Module: mod.Name, Run: run, Events: events,
					Emitted: tot.Emitted, Dropped: tot.Dropped,
				})
				res.TraceTotals.Emitted += tot.Emitted
				res.TraceTotals.Dropped += tot.Dropped
				res.TraceTotals.Buffered += tot.Buffered
			}
			if prog != nil {
				bugs := det.Reports().Bugs()
				keys := make([]report.PairKey, len(bugs))
				for i, b := range bugs {
					keys[i] = b.Key
				}
				prog.moduleDone(det.Stats().DelaysInjected, keys)
			}
			mu.Unlock()
		}(mi)
	}
	wg.Wait()
	return res
}

// runModule executes the module's tests sequentially, as a test runner
// does, recovering from test-body panics.
func runModule(mod *workload.Module, det core.Detector, sched *task.Scheduler,
	opts Options, tm timing, mi, run int) int {

	panics := 0
	for ti, test := range mod.Tests {
		// The baseline is truly uninstrumented: a nil detector skips the
		// OnCall prologue entirely, like running the original binary.
		envDet := det
		if _, isNop := det.(*core.NopDetector); isNop {
			envDet = nil
		}
		env := &workload.Env{
			Det:   envDet,
			Sched: sched,
			Rng: rand.New(rand.NewSource(
				opts.runSeedBase() + int64(run)*1_000_003 + int64(mi)*10_007 + int64(ti))),
			Pace:  tm.pace,
			Delay: tm.delay,
			Deadline: time.Now().
				Add(time.Duration(3*test.NominalUnits*float64(tm.pace)) + 12*tm.delay),
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					panics++
				}
			}()
			test.Body(env)
		}()
	}
	return panics
}

func sumStats(a, b core.Stats) core.Stats {
	a.OnCalls += b.OnCalls
	a.DelaysInjected += b.DelaysInjected
	a.TotalDelay += b.TotalDelay
	a.NearMisses += b.NearMisses
	a.PairsAdded += b.PairsAdded
	a.PairsPrunedHB += b.PairsPrunedHB
	a.PairsPrunedDecay += b.PairsPrunedDecay
	a.Violations += b.Violations
	a.LocationsSeen += b.LocationsSeen
	a.LocationsSeenConcurrent += b.LocationsSeenConcurrent
	a.SequentialSkips += b.SequentialSkips
	a.CallsSampledOut += b.CallsSampledOut
	a.DelaysSuppressed += b.DelaysSuppressed
	a.SamplerThrottles += b.SamplerThrottles
	a.NearMissGaps.Add(b.NearMissGaps)
	return a
}

// Overhead computes the relative slowdown of measured against baseline.
func Overhead(measured, baseline time.Duration) float64 {
	if baseline <= 0 {
		return 0
	}
	return float64(measured-baseline) / float64(baseline)
}

// StackDepthOf counts frames in a captured stack (two lines per frame).
func StackDepthOf(stack string) int {
	n := 0
	for _, c := range stack {
		if c == '\n' {
			n++
		}
	}
	return n / 2
}
