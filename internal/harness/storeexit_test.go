package harness

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/trapfile"
	"repro/internal/trapstore"
	"repro/internal/workload"
)

// TestStoreExitCodeSentinels pins the pure classification: sentinels are
// matched with errors.Is through wrapping and joins, and corruption outranks
// unavailability in a joined error.
func TestStoreExitCodeSentinels(t *testing.T) {
	corrupt := fmt.Errorf("wrapped: %w", trapfile.ErrCorrupt)
	unavailable := fmt.Errorf("wrapped: %w", trapstore.ErrUnavailable)
	for _, tc := range []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, 0},
		{"corrupt", corrupt, 3},
		{"unavailable", unavailable, 4},
		{"both joined, corruption wins", errors.Join(unavailable, corrupt), 3},
		{"other", errors.New("disk on fire"), 1},
	} {
		if got := StoreExitCode(tc.err); got != tc.want {
			t.Errorf("%s: StoreExitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// deadStoreURL returns an http URL nothing listens on: the port comes from a
// listener opened and immediately closed, so connections are refused fast
// instead of timing out.
func deadStoreURL(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	url := "http://" + ln.Addr().String()
	ln.Close()
	return url
}

// fastHTTP is a retry policy that gives up in milliseconds, so the
// unreachable-store cases don't stall the test suite.
func fastHTTP() trapstore.HTTPConfig {
	return trapstore.HTTPConfig{
		Timeout:     500 * time.Millisecond,
		Attempts:    2,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	}
}

// TestRunStoreSentinelExitCodes drives the documented tsvd-run sentinel exit
// codes through the harness itself (no subprocess): a corrupt trap file
// classifies as 3, an unreachable store with no local fallback as 4, and
// degradation onto a healthy local file stays a success (0) with the
// fallback visible in the store totals for the CLI's warning line.
func TestRunStoreSentinelExitCodes(t *testing.T) {
	suite := workload.GenerateSuite(21, 4)

	for _, tc := range []struct {
		name          string
		store         func(t *testing.T) trapstore.TrapStore
		want          int
		wantFallbacks bool
	}{
		{
			name: "corrupt trap file -> 3",
			store: func(t *testing.T) trapstore.TrapStore {
				path := filepath.Join(t.TempDir(), "traps.json")
				if err := os.WriteFile(path, []byte("{ not json"), 0o644); err != nil {
					t.Fatal(err)
				}
				return trapstore.NewFileStore(path, nil)
			},
			want: 3,
		},
		{
			name: "unreachable store without fallback -> 4",
			store: func(t *testing.T) trapstore.TrapStore {
				return trapstore.NewHTTPStore(deadStoreURL(t), fastHTTP())
			},
			want: 4,
		},
		{
			name: "degraded with local file -> 0 + warn",
			store: func(t *testing.T) trapstore.TrapStore {
				return trapstore.NewFallback(
					trapstore.NewHTTPStore(deadStoreURL(t), fastHTTP()),
					trapstore.NewFileStore(filepath.Join(t.TempDir(), "traps.json"), nil),
					nil)
			},
			want:          0,
			wantFallbacks: true,
		},
		{
			name: "healthy local file -> 0",
			store: func(t *testing.T) trapstore.TrapStore {
				return trapstore.NewFileStore(filepath.Join(t.TempDir(), "traps.json"), nil)
			},
			want: 0,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			store := tc.store(t)
			defer store.Close()
			o := opts(config.AlgoTSVD, 1)
			o.Store = store
			out := Run(suite, o)
			if got := StoreExitCode(out.StoreErr); got != tc.want {
				t.Fatalf("StoreExitCode(%v) = %d, want %d", out.StoreErr, got, tc.want)
			}
			if tc.want == 0 && out.StoreErr != nil {
				t.Fatalf("unexpected store error: %v", out.StoreErr)
			}
			// The suite itself always runs to completion, store or no store.
			if out.Stats.OnCalls == 0 {
				t.Fatal("suite did not run")
			}
			if fellBack := store.Totals().Fallbacks > 0; fellBack != tc.wantFallbacks {
				t.Fatalf("fallbacks > 0 = %v, want %v (totals %+v)",
					fellBack, tc.wantFallbacks, store.Totals())
			}
		})
	}
}
