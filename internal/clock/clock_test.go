package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealSleepDuration(t *testing.T) {
	c := Real{}
	start := time.Now()
	slept, woken := c.Sleep(20*time.Millisecond, nil)
	elapsed := time.Since(start)
	if woken {
		t.Fatal("sleep reported early wake without a cancel")
	}
	if slept < 15*time.Millisecond {
		t.Fatalf("slept %v, want >= ~20ms", slept)
	}
	if elapsed < 15*time.Millisecond {
		t.Fatalf("elapsed %v, want >= ~20ms", elapsed)
	}
}

func TestRealSleepEarlyWake(t *testing.T) {
	c := Real{}
	cancel := make(chan struct{})
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(cancel)
	}()
	start := time.Now()
	_, woken := c.Sleep(5*time.Second, cancel)
	if !woken {
		t.Fatal("sleep was not woken early")
	}
	if time.Since(start) > time.Second {
		t.Fatalf("early wake took %v", time.Since(start))
	}
}

func TestRealSleepZero(t *testing.T) {
	slept, woken := Real{}.Sleep(0, nil)
	if slept != 0 || woken {
		t.Fatalf("Sleep(0) = %v,%v", slept, woken)
	}
}

func TestScaledSleepShrinks(t *testing.T) {
	c := Scaled{Base: Real{}, Factor: 0.01}
	start := time.Now()
	slept, _ := c.Sleep(time.Second, nil) // should actually sleep ~10ms
	elapsed := time.Since(start)
	if elapsed > 500*time.Millisecond {
		t.Fatalf("scaled sleep took %v, want ~10ms", elapsed)
	}
	// Reported duration is rescaled back to nominal time.
	if slept < 500*time.Millisecond {
		t.Fatalf("reported slept %v, want ~1s nominal", slept)
	}
}

func TestScaledTinyDurationStillSleeps(t *testing.T) {
	c := Scaled{Base: Real{}, Factor: 1e-12}
	slept, woken := c.Sleep(time.Millisecond, nil)
	if woken {
		t.Fatal("unexpected early wake")
	}
	if slept < 0 {
		t.Fatalf("negative slept %v", slept)
	}
}

func TestBudgetUnlimited(t *testing.T) {
	var b *Budget // nil budget means unlimited
	if got := b.Allow(time.Hour); got != time.Hour {
		t.Fatalf("nil budget Allow = %v", got)
	}
	b2 := &Budget{} // zero Max also unlimited
	if got := b2.Allow(time.Hour); got != time.Hour {
		t.Fatalf("zero budget Allow = %v", got)
	}
}

func TestBudgetCapsAndExhausts(t *testing.T) {
	b := &Budget{Max: 100 * time.Millisecond}
	if got := b.Allow(60 * time.Millisecond); got != 60*time.Millisecond {
		t.Fatalf("first Allow = %v", got)
	}
	if got := b.Allow(60 * time.Millisecond); got != 40*time.Millisecond {
		t.Fatalf("second Allow = %v, want capped 40ms", got)
	}
	if got := b.Allow(time.Millisecond); got != 0 {
		t.Fatalf("exhausted Allow = %v, want 0", got)
	}
	if b.Used() != 100*time.Millisecond {
		t.Fatalf("Used = %v", b.Used())
	}
}

func TestBudgetRefund(t *testing.T) {
	b := &Budget{Max: 100 * time.Millisecond}
	b.Allow(100 * time.Millisecond)
	b.Refund(30 * time.Millisecond)
	if got := b.Allow(50 * time.Millisecond); got != 30*time.Millisecond {
		t.Fatalf("Allow after refund = %v, want 30ms", got)
	}
}

func TestBudgetTable(t *testing.T) {
	table := BudgetTable{Max: 10 * time.Millisecond}

	// Same thread always resolves to the same Budget, carrying Max.
	b := table.For(1)
	if b.Max != 10*time.Millisecond {
		t.Fatalf("Budget.Max = %v, want table Max", b.Max)
	}
	if table.For(1) != b {
		t.Fatal("second For(1) returned a different Budget")
	}
	if table.For(2) == b {
		t.Fatal("distinct threads share a Budget")
	}

	// Concurrent first lookups for one new thread agree on a single winner,
	// and charges land on that one budget.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			table.For(3).Allow(time.Millisecond)
		}()
	}
	wg.Wait()
	if got := table.For(3).Used(); got != 8*time.Millisecond {
		t.Fatalf("Used = %v, want 8ms (lost charges across For calls)", got)
	}

	// Range visits every thread exactly once.
	seen := map[int64]bool{}
	table.Range(func(thread int64, b *Budget) bool {
		if b == nil || seen[thread] {
			t.Fatalf("Range visited thread %d badly", thread)
		}
		seen[thread] = true
		return true
	})
	if len(seen) != 3 {
		t.Fatalf("Range visited %d threads, want 3", len(seen))
	}
}
