// Package clock abstracts time for the TSVD runtime.
//
// The paper runs with 100 ms delay injections on real servers. The algorithm
// only depends on *ratios* between durations (near-miss window vs. delay
// length vs. δ_hb·delay), so tests and benchmarks run with every duration
// scaled down uniformly. A Clock carries that scale.
//
// Place in the detector pipeline: every OnCall timestamps itself once with
// Clock.Since (the single hottest time read in the process — Real.Since
// reads only the monotonic clock for that reason), near-miss gaps and HB
// thresholds are differences of those timestamps, and injected delays go
// through Clock.Sleep so a trap can be woken early by its cancel channel
// when the conflicting access arrives. Budget and BudgetTable sit between
// the detector's decision to delay and the sleep itself: they cap the total
// delay charged to any one thread (§4, runtime feature 2) so instrumented
// tests cannot be pushed past their timeouts, with early-woken time
// refunded.
package clock

import (
	"sync/atomic"
	"time"
)

// Clock supplies current time and interruptible sleeping to the detector.
type Clock interface {
	// Now returns the current time. Implementations must be monotonic.
	Now() time.Time
	// Since returns the time elapsed since start (a Time previously
	// obtained from Now). It is the detector's per-OnCall time read;
	// implementations should make it as cheap as the platform allows.
	Since(start time.Time) time.Duration
	// Sleep blocks for d, or until cancel is closed, whichever is first.
	// It returns the duration actually slept and true if it was woken early.
	Sleep(d time.Duration, cancel <-chan struct{}) (time.Duration, bool)
}

// Real is a Clock backed by the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Since implements Clock. time.Since reads only the monotonic clock — one
// vDSO call instead of time.Now's wall-plus-monotonic pair — which halves
// the cost of the hottest instruction sequence in the detector.
func (Real) Since(start time.Time) time.Duration { return time.Since(start) }

// Sleep implements Clock. It sleeps on a timer but can be woken early by the
// cancel channel; the trap mechanism uses early wake when a conflicting
// access is caught so the reporting thread does not keep waiting pointlessly.
func (Real) Sleep(d time.Duration, cancel <-chan struct{}) (time.Duration, bool) {
	if d <= 0 {
		return 0, false
	}
	start := time.Now()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return time.Since(start), false
	case <-cancel:
		return time.Since(start), true
	}
}

// Scaled wraps another Clock and multiplies every Sleep duration by Factor
// (a value in (0,1] shrinks delays). Now is passed through unchanged: the
// detector's window comparisons always compare durations that were produced
// under the same scale because the configuration is scaled alongside.
type Scaled struct {
	Base   Clock
	Factor float64
}

// Now implements Clock.
func (s Scaled) Now() time.Time { return s.Base.Now() }

// Since implements Clock.
func (s Scaled) Since(start time.Time) time.Duration { return s.Base.Since(start) }

// Sleep implements Clock.
func (s Scaled) Sleep(d time.Duration, cancel <-chan struct{}) (time.Duration, bool) {
	scaled := time.Duration(float64(d) * s.Factor)
	if scaled <= 0 && d > 0 {
		scaled = time.Microsecond
	}
	slept, woken := s.Base.Sleep(scaled, cancel)
	if s.Factor > 0 {
		slept = time.Duration(float64(slept) / s.Factor)
	}
	return slept, woken
}

// Budget tracks the total delay injected into one thread (or one request) so
// the runtime can cap it and avoid test timeouts (§4, runtime feature 2).
type Budget struct {
	// Max is the cap; zero means unlimited.
	Max time.Duration

	used atomic.Int64
}

// Allow reports how much of a requested delay d fits under the budget and
// reserves it. It returns 0 when the budget is exhausted.
func (b *Budget) Allow(d time.Duration) time.Duration {
	if b == nil || b.Max <= 0 {
		return d
	}
	for {
		used := b.used.Load()
		remaining := int64(b.Max) - used
		if remaining <= 0 {
			return 0
		}
		grant := int64(d)
		if grant > remaining {
			grant = remaining
		}
		if b.used.CompareAndSwap(used, used+grant) {
			return time.Duration(grant)
		}
	}
}

// Used reports the total delay charged so far.
func (b *Budget) Used() time.Duration {
	if b == nil {
		return 0
	}
	return time.Duration(b.used.Load())
}

// Refund returns unused delay (e.g. when a sleep was woken early) to the
// budget.
func (b *Budget) Refund(d time.Duration) {
	if b == nil || b.Max <= 0 || d <= 0 {
		return
	}
	b.used.Add(-int64(d))
}
