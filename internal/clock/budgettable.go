package clock

import (
	"sync"
	"time"
)

// BudgetTable hands out per-thread delay Budgets without a global lock: the
// detector's hot path asks for the calling thread's budget on every delay
// decision, so the registry is a concurrent map whose lock-free read path
// serves every lookup after a thread's first. Each Budget is internally
// atomic, so once obtained it is charged and refunded without any lock.
//
// Keys are opaque int64 thread identifiers (the caller's ids.ThreadID); the
// table itself is identity-agnostic so the clock package stays free of
// detector dependencies.
type BudgetTable struct {
	// Max is the per-thread cap copied into each newly created Budget;
	// zero means unlimited.
	Max time.Duration

	m sync.Map // int64 (thread id) → *Budget
}

// For returns the thread's Budget, creating it on first use. Concurrent
// first calls for the same thread agree on a single winner.
func (t *BudgetTable) For(thread int64) *Budget {
	if v, ok := t.m.Load(thread); ok {
		return v.(*Budget)
	}
	v, _ := t.m.LoadOrStore(thread, &Budget{Max: t.Max})
	return v.(*Budget)
}

// Range visits every (thread, budget) pair, in unspecified order.
func (t *BudgetTable) Range(fn func(thread int64, b *Budget) bool) {
	t.m.Range(func(k, v any) bool { return fn(k.(int64), v.(*Budget)) })
}
