package config

import (
	"testing"
	"time"
)

func TestDefaultsMatchPaper(t *testing.T) {
	c := Defaults(AlgoTSVD)
	// §5.4: N_nm=5, T_nm=100ms, δ_hb=0.5, k_hb=5, buffer=16, delay=100ms.
	if c.ObjHistory != 5 {
		t.Errorf("ObjHistory = %d, want 5", c.ObjHistory)
	}
	if c.NearMissWindow != 100*time.Millisecond {
		t.Errorf("NearMissWindow = %v, want 100ms", c.NearMissWindow)
	}
	if c.HBBlockThreshold != 0.5 {
		t.Errorf("HBBlockThreshold = %v, want 0.5", c.HBBlockThreshold)
	}
	if c.HBInferenceWindow != 5 {
		t.Errorf("HBInferenceWindow = %d, want 5", c.HBInferenceWindow)
	}
	if c.PhaseBufferSize != 16 {
		t.Errorf("PhaseBufferSize = %d, want 16", c.PhaseBufferSize)
	}
	if c.DelayTime != 100*time.Millisecond {
		t.Errorf("DelayTime = %v, want 100ms", c.DelayTime)
	}
	if c.RandomDelayProbability != 0.05 {
		t.Errorf("RandomDelayProbability = %v, want 0.05", c.RandomDelayProbability)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestValidateRejectsBadValues(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"ObjHistory", func(c *Config) { c.ObjHistory = 0 }},
		{"NearMissWindow", func(c *Config) { c.NearMissWindow = 0 }},
		{"HBBlockThreshold", func(c *Config) { c.HBBlockThreshold = -1 }},
		{"HBInferenceWindow", func(c *Config) { c.HBInferenceWindow = -1 }},
		{"PhaseBufferSize", func(c *Config) { c.PhaseBufferSize = 1 }},
		{"DelayTime", func(c *Config) { c.DelayTime = 0 }},
		{"DecayFactor", func(c *Config) { c.DecayFactor = 1.0 }},
		{"DecayFactorNeg", func(c *Config) { c.DecayFactor = -0.1 }},
		{"PruneProbability", func(c *Config) { c.PruneProbability = 1.0 }},
		{"RandomDelayProbability", func(c *Config) { c.RandomDelayProbability = 1.5 }},
		{"TimeScale", func(c *Config) { c.TimeScale = -1 }},
		{"ShardCount", func(c *Config) { c.ShardCount = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Defaults(AlgoTSVD)
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatalf("invalid %s accepted", tc.name)
			}
		})
	}
}

func TestPhaseBufferSizeAllowedWhenPhaseDisabled(t *testing.T) {
	c := Defaults(AlgoTSVD)
	c.PhaseBufferSize = 0
	c.DisablePhaseDetection = true
	if err := c.Validate(); err != nil {
		t.Fatalf("phase-disabled config rejected: %v", err)
	}
}

func TestTimeScaling(t *testing.T) {
	c := Defaults(AlgoTSVD).Scaled(0.01)
	if got := c.EffectiveDelay(); got != time.Millisecond {
		t.Errorf("EffectiveDelay = %v, want 1ms", got)
	}
	if got := c.EffectiveNearMissWindow(); got != time.Millisecond {
		t.Errorf("EffectiveNearMissWindow = %v, want 1ms", got)
	}
	if got := c.EffectiveMaxDelayPerThread(); got != 50*time.Millisecond {
		t.Errorf("EffectiveMaxDelayPerThread = %v, want 50ms", got)
	}
	// Scale 1.0 passes through.
	c1 := Defaults(AlgoTSVD)
	if c1.EffectiveDelay() != c1.DelayTime {
		t.Error("TimeScale=1 changed DelayTime")
	}
	// Tiny scale never rounds a positive duration to zero.
	ctiny := Defaults(AlgoTSVD).Scaled(1e-15)
	if ctiny.EffectiveDelay() <= 0 {
		t.Error("tiny scale produced non-positive delay")
	}
}

func TestEffectiveShardCount(t *testing.T) {
	isPow2 := func(n int) bool { return n > 0 && n&(n-1) == 0 }

	// Default (0) derives from GOMAXPROCS: a power of two, at least 8.
	c := Defaults(AlgoTSVD)
	if got := c.EffectiveShardCount(); got < 8 || !isPow2(got) {
		t.Errorf("default EffectiveShardCount = %d, want power of two >= 8", got)
	}

	// Explicit values round up to the next power of two.
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}, {1000, 1024},
	} {
		c.ShardCount = tc.in
		if got := c.EffectiveShardCount(); got != tc.want {
			t.Errorf("EffectiveShardCount(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}

	// Absurd values are capped (and still a power of two).
	c.ShardCount = 1 << 30
	if got := c.EffectiveShardCount(); got != maxShardCount {
		t.Errorf("EffectiveShardCount(1<<30) = %d, want cap %d", got, maxShardCount)
	}
}

func TestAlgorithmString(t *testing.T) {
	want := map[Algorithm]string{
		AlgoNop:           "Nop",
		AlgoTSVD:          "TSVD",
		AlgoTSVDHB:        "TSVDHB",
		AlgoDynamicRandom: "DynamicRandom",
		AlgoStaticRandom:  "DataCollider",
		Algorithm(99):     "unknown",
	}
	for algo, s := range want {
		if algo.String() != s {
			t.Errorf("%d.String() = %q, want %q", algo, algo.String(), s)
		}
	}
}
