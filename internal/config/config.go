// Package config holds every tunable of the TSVD runtime with the defaults
// the paper settles on in §5.4 (Figure 9). One Config value fully describes
// a detector run, which keeps parameter-sweep experiments trivial.
//
// In the pipeline, config is the single source of truth consumed by
// internal/core when a detector is built: algorithm selection, the paper's
// detection parameters, time scaling for fast tests, and the shared site
// registry (Sites) the detector interns instrumentation sites into.
package config

import (
	"runtime"
	"time"

	"repro/internal/sites"
)

// Algorithm selects which detection variant the runtime executes (§3).
type Algorithm int

const (
	// AlgoNop performs no analysis and injects no delays. It is the
	// uninstrumented baseline used to compute overheads.
	AlgoNop Algorithm = iota
	// AlgoTSVD is the paper's contribution (§3.4): near-miss tracking,
	// concurrent-phase inference, HB inference, delay decay, trap-file
	// persistence, same-run planning+injection.
	AlgoTSVD
	// AlgoTSVDHB is the RaceFuzzer-style variant (§3.5): full vector-clock
	// happens-before analysis over monitored synchronization, with the
	// paper's immutable-clock optimizations, same-run injection.
	AlgoTSVDHB
	// AlgoDynamicRandom injects a delay at every TSVD point with a fixed
	// small probability (§3.2).
	AlgoDynamicRandom
	// AlgoStaticRandom emulates DataCollider: static program locations are
	// sampled uniformly, irrespective of how often each executes (§3.3).
	AlgoStaticRandom
)

// String returns the name used in the paper's tables.
func (a Algorithm) String() string {
	switch a {
	case AlgoNop:
		return "Nop"
	case AlgoTSVD:
		return "TSVD"
	case AlgoTSVDHB:
		return "TSVDHB"
	case AlgoDynamicRandom:
		return "DynamicRandom"
	case AlgoStaticRandom:
		return "DataCollider"
	default:
		return "unknown"
	}
}

// Mode selects the detector's production operating tier (docs/SAMPLING.md).
// The algorithm is unchanged across modes; what varies is how much of the
// OnCall pipeline runs per instrumented call, which is the overhead knob for
// always-on production deployment.
type Mode int

const (
	// ModeFull runs the complete analysis and delay-injection pipeline on
	// every instrumented call — the paper's testing-time behavior and the
	// zero value, so existing configurations are unchanged.
	ModeFull Mode = iota
	// ModeSampled gates the per-call analysis behind a per-site probability.
	// With OverheadTarget set, a control loop measures the detection time
	// actually spent and auto-throttles the probabilities toward the target;
	// otherwise the probability stays fixed at SampleProbability. Trap
	// checking (red-handed catching) is never sampled out.
	ModeSampled
	// ModeObserveOnly runs the full analysis — near-miss recording, trap-set
	// bookkeeping, coverage — but suppresses every delay injection, so the
	// detector never parks a thread. The would-be injections are counted and
	// traced as logical trap firings, making it the zero-risk first step of
	// a production rollout.
	ModeObserveOnly
)

// String returns the wire name used by flags and docs: "full", "sampled" or
// "observe-only".
func (m Mode) String() string {
	switch m {
	case ModeFull:
		return "full"
	case ModeSampled:
		return "sampled"
	case ModeObserveOnly:
		return "observe-only"
	default:
		return "unknown"
	}
}

// ParseMode inverts Mode.String, for the -mode CLI flag.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "full":
		return ModeFull, nil
	case "sampled":
		return ModeSampled, nil
	case "observe-only", "observe":
		return ModeObserveOnly, nil
	default:
		return ModeFull, errValue("unknown mode " + s + " (want full, sampled or observe-only)")
	}
}

// Config is the complete parameter set for one detector instance.
type Config struct {
	// Algorithm selects the detection technique (§3: TSVD, TSVDHB, the
	// random baselines, or Nop).
	Algorithm Algorithm

	// --- Near-miss tracking (§3.4.2, Fig. 9b/9c) ---

	// ObjHistory (N_nm) is the number of recent accesses kept per object.
	ObjHistory int
	// NearMissWindow (T_nm) is the physical-time window within which two
	// conflicting accesses from different threads count as a near miss.
	NearMissWindow time.Duration

	// --- HB inference (§3.4.4, Fig. 9d/9e) ---

	// HBBlockThreshold (δ_hb) scales DelayTime to the minimum inter-access
	// gap that is attributed to an injected delay.
	HBBlockThreshold float64
	// HBInferenceWindow (k_hb) is how many subsequent accesses of the
	// blocked thread inherit the inferred happens-after relationship.
	HBInferenceWindow int
	// DisableHBInference turns §3.4.4 off entirely (Table 3 ablation).
	DisableHBInference bool

	// --- Concurrent-phase inference (§3.4.3, Fig. 9f) ---

	// PhaseBufferSize is the length of the global ring buffer of recently
	// executed TSVD points; >1 distinct threads in the buffer means the
	// program is in a concurrent phase.
	PhaseBufferSize int
	// DisablePhaseDetection turns §3.4.3 off (Table 3 ablation).
	DisablePhaseDetection bool

	// DisableNearMissWindow makes every pair of conflicting accesses by
	// different threads a near miss regardless of the time gap
	// ("No windowing" row of Table 3).
	DisableNearMissWindow bool

	// --- Delay injection (§3.4.5/§3.4.6, Fig. 9g/9h) ---

	// DelayTime is the length of one injected delay.
	DelayTime time.Duration
	// DecayFactor f reduces a location's injection probability to
	// P·(1-f) after every delay that exposes no conflict. 0 disables decay
	// (the pathological configuration of Fig. 9g).
	DecayFactor float64
	// PruneProbability is the threshold below which a location's delay
	// probability is treated as zero and its pairs leave the trap set.
	PruneProbability float64
	// AvoidOverlappingDelays suppresses a delay when another thread is
	// already parked (the rejected alternative design in §3.4.6, kept as
	// an ablation).
	AvoidOverlappingDelays bool
	// MaxDelayPerThread caps the total delay charged to one thread so
	// instrumented tests do not time out (§4 runtime feature 2).
	// Zero means unlimited.
	MaxDelayPerThread time.Duration

	// --- Runtime scalability (docs/PERFORMANCE.md) ---

	// ShardCount is the number of stripes the detector's per-object state
	// was split into before the per-object runtime made striping moot:
	// every object now carries its own state and lock, so accesses to
	// unrelated objects share nothing at all.
	//
	// Deprecated: the knob is accepted and validated for compatibility but
	// no longer affects the detector.
	ShardCount int

	// Sites is the site registry the detector interns instrumentation
	// sites into and resolves report metadata from. Sharing one registry
	// across detectors (the harness does this per suite) keeps SiteIDs
	// consistent in merged outputs; nil makes core.New create a private
	// registry.
	Sites *sites.Registry

	// --- Production sampling tier (docs/SAMPLING.md) ---

	// Mode selects the operating tier: ModeFull (default, the paper's
	// testing-time behavior), ModeSampled (per-site probabilistic sampling
	// with an optional measured-overhead control loop) or ModeObserveOnly
	// (full analysis, zero delay injection).
	Mode Mode
	// SampleProbability is ModeSampled's initial per-site probability of
	// running the analysis pipeline for a call. With OverheadTarget unset it
	// stays fixed; with a target it is only the starting point the control
	// loop throttles from. Defaults to 1.0 so sampled mode starts at full
	// recall and earns its cheapness from the throttle.
	SampleProbability float64
	// OverheadTarget, when positive, closes the loop in ModeSampled: every
	// SamplerInterval the detector compares the detection time it measurably
	// spent (analysis plus injected delays) against elapsed wall time and
	// multiplicatively adjusts the per-site probabilities toward this
	// fraction (0.01 = "~1% overhead" as a measured quantity). Zero keeps
	// SampleProbability fixed. Ignored outside ModeSampled.
	OverheadTarget float64
	// SamplerInterval is the control-loop period of the adaptive sampler:
	// per interval the spent-time budget is refreshed and the per-site
	// probabilities are rebalanced (hot sites are throttled harder so cold
	// sites keep their coverage). Scaled by TimeScale like every duration;
	// 0 selects the 100ms default.
	SamplerInterval time.Duration

	// --- Observability (docs/OBSERVABILITY.md) ---

	// Trace enables the per-shard ring-buffer event tracer: structured
	// detector events (delays, near misses, trap churn, prunes) recorded
	// with zero allocation on the hot path and drained post-run into JSONL
	// and per-location metrics. Off by default; the disabled tracer costs
	// one nil check per emission point.
	Trace bool
	// TraceBufferSize is the total buffered-event capacity per detector
	// instance. When the buffer is full the oldest event is overwritten and
	// counted as dropped — reconciliation against Stats then fails loudly.
	// 0 selects trace.DefaultBufferSize, sized to hold a full module run.
	TraceBufferSize int

	// --- Random variants (§3.2/§3.3) ---

	// RandomDelayProbability is DynamicRandom's per-call delay
	// probability.
	RandomDelayProbability float64
	// StaticSampleProbability is StaticRandom's (DataCollider's)
	// per-window location-arming probability: the analogue of its
	// breakpoint-set size.
	StaticSampleProbability float64

	// Seed drives every probabilistic decision the detector makes, so runs
	// are reproducible.
	Seed int64

	// TimeScale uniformly shrinks (or stretches) every physical duration
	// above: DelayTime, NearMissWindow and MaxDelayPerThread are multiplied
	// by it when the detector starts. 1.0 reproduces the paper's scale;
	// tests use small values to run fast. Ratios are unaffected.
	TimeScale float64
}

// Defaults returns the paper's default configuration for the given variant
// (§5.4: N_nm=5, T_nm=100ms, δ_hb=0.5, k_hb=5, buffer=16, delay=100ms;
// DynamicRandom probability 0.05 per Table 2).
func Defaults(algo Algorithm) Config {
	return Config{
		Algorithm:               algo,
		ObjHistory:              5,
		NearMissWindow:          100 * time.Millisecond,
		HBBlockThreshold:        0.5,
		HBInferenceWindow:       5,
		PhaseBufferSize:         16,
		DelayTime:               100 * time.Millisecond,
		DecayFactor:             0.5,
		PruneProbability:        0.02,
		MaxDelayPerThread:       5 * time.Second,
		SampleProbability:       1.0,
		SamplerInterval:         100 * time.Millisecond,
		RandomDelayProbability:  0.05,
		StaticSampleProbability: 0.25,
		Seed:                    1,
		TimeScale:               1.0,
	}
}

// Scaled returns a copy of c with TimeScale set, for fast tests/benches.
func (c Config) Scaled(factor float64) Config {
	c.TimeScale = factor
	return c
}

// maxShardCount bounds the stripe table; beyond this, shard-selection cache
// misses cost more than the contention they avoid.
const maxShardCount = 1 << 14

// EffectiveShardCount resolves ShardCount to the power of two the runtime
// allocates: the configured value rounded up, or — when 0 — four stripes
// per GOMAXPROCS (and at least 8), so collisions stay rare at full
// hardware parallelism without a measurable memory cost (a shard is a
// mutex plus three map headers).
func (c Config) EffectiveShardCount() int {
	n := c.ShardCount
	if n <= 0 {
		n = 4 * runtime.GOMAXPROCS(0)
		if n < 8 {
			n = 8
		}
	}
	if n > maxShardCount {
		n = maxShardCount
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// EffectiveDelay returns DelayTime after TimeScale is applied.
func (c Config) EffectiveDelay() time.Duration {
	return scale(c.DelayTime, c.TimeScale)
}

// EffectiveNearMissWindow returns NearMissWindow after TimeScale is applied.
func (c Config) EffectiveNearMissWindow() time.Duration {
	return scale(c.NearMissWindow, c.TimeScale)
}

// EffectiveMaxDelayPerThread returns MaxDelayPerThread after TimeScale.
func (c Config) EffectiveMaxDelayPerThread() time.Duration {
	return scale(c.MaxDelayPerThread, c.TimeScale)
}

// EffectiveSamplerInterval returns SamplerInterval after TimeScale, with 0
// resolved to the 100ms default first.
func (c Config) EffectiveSamplerInterval() time.Duration {
	iv := c.SamplerInterval
	if iv == 0 {
		iv = 100 * time.Millisecond
	}
	return scale(iv, c.TimeScale)
}

func scale(d time.Duration, f float64) time.Duration {
	if f == 0 || f == 1.0 {
		return d
	}
	s := time.Duration(float64(d) * f)
	if s <= 0 && d > 0 {
		s = time.Microsecond
	}
	return s
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.ObjHistory < 1:
		return errValue("ObjHistory must be >= 1")
	case c.NearMissWindow <= 0:
		return errValue("NearMissWindow must be positive")
	case c.HBBlockThreshold < 0:
		return errValue("HBBlockThreshold must be >= 0")
	case c.HBInferenceWindow < 0:
		return errValue("HBInferenceWindow must be >= 0")
	case c.PhaseBufferSize < 2 && !c.DisablePhaseDetection:
		return errValue("PhaseBufferSize must be >= 2")
	case c.DelayTime <= 0:
		return errValue("DelayTime must be positive")
	case c.DecayFactor < 0 || c.DecayFactor >= 1:
		return errValue("DecayFactor must be in [0,1)")
	case c.PruneProbability < 0 || c.PruneProbability >= 1:
		return errValue("PruneProbability must be in [0,1)")
	case c.Mode < ModeFull || c.Mode > ModeObserveOnly:
		return errValue("Mode must be full, sampled or observe-only")
	case c.SampleProbability < 0 || c.SampleProbability > 1:
		return errValue("SampleProbability must be in [0,1]")
	case c.OverheadTarget < 0 || c.OverheadTarget >= 1:
		return errValue("OverheadTarget must be in [0,1)")
	case c.SamplerInterval < 0:
		return errValue("SamplerInterval must be >= 0 (0 selects the default)")
	case c.RandomDelayProbability < 0 || c.RandomDelayProbability > 1:
		return errValue("RandomDelayProbability must be in [0,1]")
	case c.StaticSampleProbability < 0 || c.StaticSampleProbability > 1:
		return errValue("StaticSampleProbability must be in [0,1]")
	case c.TimeScale < 0:
		return errValue("TimeScale must be >= 0")
	case c.ShardCount < 0:
		return errValue("ShardCount must be >= 0 (0 derives from GOMAXPROCS)")
	case c.TraceBufferSize < 0:
		return errValue("TraceBufferSize must be >= 0 (0 selects the default)")
	}
	return nil
}

type errValue string

func (e errValue) Error() string { return "config: " + string(e) }
