// Package config holds every tunable of the TSVD runtime with the defaults
// the paper settles on in §5.4 (Figure 9). One Config value fully describes
// a detector run, which keeps parameter-sweep experiments trivial.
//
// In the pipeline, config is the single source of truth consumed by
// internal/core when a detector is built: algorithm selection, the paper's
// detection parameters, time scaling for fast tests, and the runtime-
// scalability knobs (ShardCount) of the striped OnCall hot path.
package config

import (
	"runtime"
	"time"
)

// Algorithm selects which detection variant the runtime executes (§3).
type Algorithm int

const (
	// AlgoNop performs no analysis and injects no delays. It is the
	// uninstrumented baseline used to compute overheads.
	AlgoNop Algorithm = iota
	// AlgoTSVD is the paper's contribution (§3.4): near-miss tracking,
	// concurrent-phase inference, HB inference, delay decay, trap-file
	// persistence, same-run planning+injection.
	AlgoTSVD
	// AlgoTSVDHB is the RaceFuzzer-style variant (§3.5): full vector-clock
	// happens-before analysis over monitored synchronization, with the
	// paper's immutable-clock optimizations, same-run injection.
	AlgoTSVDHB
	// AlgoDynamicRandom injects a delay at every TSVD point with a fixed
	// small probability (§3.2).
	AlgoDynamicRandom
	// AlgoStaticRandom emulates DataCollider: static program locations are
	// sampled uniformly, irrespective of how often each executes (§3.3).
	AlgoStaticRandom
)

// String returns the name used in the paper's tables.
func (a Algorithm) String() string {
	switch a {
	case AlgoNop:
		return "Nop"
	case AlgoTSVD:
		return "TSVD"
	case AlgoTSVDHB:
		return "TSVDHB"
	case AlgoDynamicRandom:
		return "DynamicRandom"
	case AlgoStaticRandom:
		return "DataCollider"
	default:
		return "unknown"
	}
}

// Config is the complete parameter set for one detector instance.
type Config struct {
	Algorithm Algorithm

	// --- Near-miss tracking (§3.4.2, Fig. 9b/9c) ---

	// ObjHistory (N_nm) is the number of recent accesses kept per object.
	ObjHistory int
	// NearMissWindow (T_nm) is the physical-time window within which two
	// conflicting accesses from different threads count as a near miss.
	NearMissWindow time.Duration

	// --- HB inference (§3.4.4, Fig. 9d/9e) ---

	// HBBlockThreshold (δ_hb) scales DelayTime to the minimum inter-access
	// gap that is attributed to an injected delay.
	HBBlockThreshold float64
	// HBInferenceWindow (k_hb) is how many subsequent accesses of the
	// blocked thread inherit the inferred happens-after relationship.
	HBInferenceWindow int
	// DisableHBInference turns §3.4.4 off entirely (Table 3 ablation).
	DisableHBInference bool

	// --- Concurrent-phase inference (§3.4.3, Fig. 9f) ---

	// PhaseBufferSize is the length of the global ring buffer of recently
	// executed TSVD points; >1 distinct threads in the buffer means the
	// program is in a concurrent phase.
	PhaseBufferSize int
	// DisablePhaseDetection turns §3.4.3 off (Table 3 ablation).
	DisablePhaseDetection bool

	// DisableNearMissWindow makes every pair of conflicting accesses by
	// different threads a near miss regardless of the time gap
	// ("No windowing" row of Table 3).
	DisableNearMissWindow bool

	// --- Delay injection (§3.4.5/§3.4.6, Fig. 9g/9h) ---

	// DelayTime is the length of one injected delay.
	DelayTime time.Duration
	// DecayFactor f reduces a location's injection probability to
	// P·(1-f) after every delay that exposes no conflict. 0 disables decay
	// (the pathological configuration of Fig. 9g).
	DecayFactor float64
	// PruneProbability is the threshold below which a location's delay
	// probability is treated as zero and its pairs leave the trap set.
	PruneProbability float64
	// AvoidOverlappingDelays suppresses a delay when another thread is
	// already parked (the rejected alternative design in §3.4.6, kept as
	// an ablation).
	AvoidOverlappingDelays bool
	// MaxDelayPerThread caps the total delay charged to one thread so
	// instrumented tests do not time out (§4 runtime feature 2).
	// Zero means unlimited.
	MaxDelayPerThread time.Duration

	// --- Runtime scalability (docs/PERFORMANCE.md) ---

	// ShardCount is the number of stripes the detector's per-object state
	// (trap tables, near-miss histories) is split into. Accesses to the
	// same object always meet in the same shard — which preserves the
	// red-handed reporting guarantee — while accesses to unrelated
	// objects contend only on hash collisions. 0 (the default) derives
	// the count from GOMAXPROCS at detector construction; any positive
	// value is rounded up to the next power of two.
	ShardCount int

	// --- Observability (docs/OBSERVABILITY.md) ---

	// Trace enables the per-shard ring-buffer event tracer: structured
	// detector events (delays, near misses, trap churn, prunes) recorded
	// with zero allocation on the hot path and drained post-run into JSONL
	// and per-location metrics. Off by default; the disabled tracer costs
	// one nil check per emission point.
	Trace bool
	// TraceBufferSize is the total buffered-event capacity per detector
	// instance. When the buffer is full the oldest event is overwritten and
	// counted as dropped — reconciliation against Stats then fails loudly.
	// 0 selects trace.DefaultBufferSize, sized to hold a full module run.
	TraceBufferSize int

	// --- Random variants (§3.2/§3.3) ---

	// RandomDelayProbability is DynamicRandom's per-call delay
	// probability.
	RandomDelayProbability float64
	// StaticSampleProbability is StaticRandom's (DataCollider's)
	// per-window location-arming probability: the analogue of its
	// breakpoint-set size.
	StaticSampleProbability float64

	// Seed drives every probabilistic decision the detector makes, so runs
	// are reproducible.
	Seed int64

	// TimeScale uniformly shrinks (or stretches) every physical duration
	// above: DelayTime, NearMissWindow and MaxDelayPerThread are multiplied
	// by it when the detector starts. 1.0 reproduces the paper's scale;
	// tests use small values to run fast. Ratios are unaffected.
	TimeScale float64
}

// Defaults returns the paper's default configuration for the given variant
// (§5.4: N_nm=5, T_nm=100ms, δ_hb=0.5, k_hb=5, buffer=16, delay=100ms;
// DynamicRandom probability 0.05 per Table 2).
func Defaults(algo Algorithm) Config {
	return Config{
		Algorithm:               algo,
		ObjHistory:              5,
		NearMissWindow:          100 * time.Millisecond,
		HBBlockThreshold:        0.5,
		HBInferenceWindow:       5,
		PhaseBufferSize:         16,
		DelayTime:               100 * time.Millisecond,
		DecayFactor:             0.5,
		PruneProbability:        0.02,
		MaxDelayPerThread:       5 * time.Second,
		RandomDelayProbability:  0.05,
		StaticSampleProbability: 0.25,
		Seed:                    1,
		TimeScale:               1.0,
	}
}

// Scaled returns a copy of c with TimeScale set, for fast tests/benches.
func (c Config) Scaled(factor float64) Config {
	c.TimeScale = factor
	return c
}

// maxShardCount bounds the stripe table; beyond this, shard-selection cache
// misses cost more than the contention they avoid.
const maxShardCount = 1 << 14

// EffectiveShardCount resolves ShardCount to the power of two the runtime
// allocates: the configured value rounded up, or — when 0 — four stripes
// per GOMAXPROCS (and at least 8), so collisions stay rare at full
// hardware parallelism without a measurable memory cost (a shard is a
// mutex plus three map headers).
func (c Config) EffectiveShardCount() int {
	n := c.ShardCount
	if n <= 0 {
		n = 4 * runtime.GOMAXPROCS(0)
		if n < 8 {
			n = 8
		}
	}
	if n > maxShardCount {
		n = maxShardCount
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// EffectiveDelay returns DelayTime after TimeScale is applied.
func (c Config) EffectiveDelay() time.Duration {
	return scale(c.DelayTime, c.TimeScale)
}

// EffectiveNearMissWindow returns NearMissWindow after TimeScale is applied.
func (c Config) EffectiveNearMissWindow() time.Duration {
	return scale(c.NearMissWindow, c.TimeScale)
}

// EffectiveMaxDelayPerThread returns MaxDelayPerThread after TimeScale.
func (c Config) EffectiveMaxDelayPerThread() time.Duration {
	return scale(c.MaxDelayPerThread, c.TimeScale)
}

func scale(d time.Duration, f float64) time.Duration {
	if f == 0 || f == 1.0 {
		return d
	}
	s := time.Duration(float64(d) * f)
	if s <= 0 && d > 0 {
		s = time.Microsecond
	}
	return s
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.ObjHistory < 1:
		return errValue("ObjHistory must be >= 1")
	case c.NearMissWindow <= 0:
		return errValue("NearMissWindow must be positive")
	case c.HBBlockThreshold < 0:
		return errValue("HBBlockThreshold must be >= 0")
	case c.HBInferenceWindow < 0:
		return errValue("HBInferenceWindow must be >= 0")
	case c.PhaseBufferSize < 2 && !c.DisablePhaseDetection:
		return errValue("PhaseBufferSize must be >= 2")
	case c.DelayTime <= 0:
		return errValue("DelayTime must be positive")
	case c.DecayFactor < 0 || c.DecayFactor >= 1:
		return errValue("DecayFactor must be in [0,1)")
	case c.PruneProbability < 0 || c.PruneProbability >= 1:
		return errValue("PruneProbability must be in [0,1)")
	case c.RandomDelayProbability < 0 || c.RandomDelayProbability > 1:
		return errValue("RandomDelayProbability must be in [0,1]")
	case c.StaticSampleProbability < 0 || c.StaticSampleProbability > 1:
		return errValue("StaticSampleProbability must be in [0,1]")
	case c.TimeScale < 0:
		return errValue("TimeScale must be >= 0")
	case c.ShardCount < 0:
		return errValue("ShardCount must be >= 0 (0 derives from GOMAXPROCS)")
	case c.TraceBufferSize < 0:
		return errValue("TraceBufferSize must be >= 0 (0 selects the default)")
	}
	return nil
}

type errValue string

func (e errValue) Error() string { return "config: " + string(e) }
