package trapstore

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trapfile"
)

// newTestClient points an HTTPStore with a fast, deterministic-bounded
// retry policy at url and records every backoff sleep instead of waiting.
func newTestClient(url string, cfg HTTPConfig) (*HTTPStore, *[]time.Duration) {
	s := NewHTTPStore(url, cfg)
	slept := &[]time.Duration{}
	s.sleep = func(d time.Duration) error { *slept = append(*slept, d); return nil }
	return s, slept
}

// TestCloseCancelsRetryBackoff parks a client in a long backoff against a
// daemon that only ever answers 500, closes the store mid-retry, and asserts
// the operation returns promptly (well before the backoff schedule would
// have elapsed) with an ErrUnavailable-wrapped error.
func TestCloseCancelsRetryBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()

	// Real sleeps (no test seam): the first retry backoff alone is >= 15s,
	// so only cancellation can explain a prompt return.
	s := NewHTTPStore(srv.URL, HTTPConfig{
		Attempts:    4,
		BackoffBase: 30 * time.Second,
		BackoffMax:  30 * time.Second,
	})

	done := make(chan error, 1)
	go func() {
		_, err := s.Fetch()
		done <- err
	}()

	// Wait until the client is actually parked in its first backoff sleep
	// (one failed attempt recorded) before closing.
	deadline := time.Now().Add(5 * time.Second)
	for s.retries.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("client never reached its first retry backoff")
		}
		time.Sleep(time.Millisecond)
	}
	begin := time.Now()
	s.Close()

	select {
	case err := <-done:
		if !errors.Is(err, ErrUnavailable) {
			t.Fatalf("Fetch after Close = %v, want ErrUnavailable", err)
		}
		if waited := time.Since(begin); waited > 2*time.Second {
			t.Fatalf("Fetch returned %v after Close; want prompt return", waited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Fetch still blocked 5s after Close; backoff sleep ignored cancellation")
	}

	// Operations after Close must fail fast, not hang in fresh backoffs.
	begin = time.Now()
	if err := s.Publish(trapfile.File{Version: trapfile.FormatVersion}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Publish after Close = %v, want ErrUnavailable", err)
	}
	if waited := time.Since(begin); waited > 2*time.Second {
		t.Fatalf("Publish after Close took %v; want prompt failure", waited)
	}
}

func TestHTTPRoundTripAndETag(t *testing.T) {
	m := NewMemory("TSVD", nil)
	var gets, notModified atomic.Int64
	inner := Handler(m, nil, nil)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && r.URL.Path == TrapsPath {
			gets.Add(1)
			if r.Header.Get("If-None-Match") != "" {
				rec := httptest.NewRecorder()
				inner.ServeHTTP(rec, r)
				if rec.Code == http.StatusNotModified {
					notModified.Add(1)
				}
				for k, vs := range rec.Header() {
					for _, v := range vs {
						w.Header().Add(k, v)
					}
				}
				w.WriteHeader(rec.Code)
				w.Write(rec.Body.Bytes())
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	s, _ := newTestClient(srv.URL, HTTPConfig{})
	defer s.Close()

	if got := fetchPairs(t, s); len(got) != 0 {
		t.Fatalf("fresh daemon not empty: %v", got)
	}
	if err := s.Publish(trapfile.File{Tool: "TSVD", Pairs: pairs("a", "b", "c", "d")}); err != nil {
		t.Fatal(err)
	}
	if got := fetchPairs(t, s); len(got) != 2 {
		t.Fatalf("published pairs not served back: %v", got)
	}
	// Nothing changed: the next fetch must ride the ETag (304, cached copy).
	if got := fetchPairs(t, s); len(got) != 2 {
		t.Fatalf("cached fetch = %v", got)
	}
	if notModified.Load() == 0 {
		t.Fatal("conditional fetch never produced a 304; ETag polling is broken")
	}
	tot := s.Totals()
	if tot.Fetches != 3 || tot.Publishes != 1 {
		t.Fatalf("totals = %+v", tot)
	}
}

func TestHTTPRetriesThrough5xxBurst(t *testing.T) {
	m := NewMemory("TSVD", nil)
	m.Publish(trapfile.File{Pairs: pairs("a", "b")})
	inner := Handler(m, nil, nil)
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A burst of two 503s, then healthy: the client must absorb it.
		if calls.Add(1) <= 2 {
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	s, slept := newTestClient(srv.URL, HTTPConfig{Attempts: 4})
	defer s.Close()
	got := fetchPairs(t, s)
	if len(got) != 1 {
		t.Fatalf("fetch through 5xx burst = %v", got)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 failures + 1 success)", calls.Load())
	}
	if len(*slept) != 2 {
		t.Fatalf("client slept %d times, want one backoff per failed attempt (2)", len(*slept))
	}
}

func TestHTTPGivesUpAfterAttemptsWithErrUnavailable(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	s, slept := newTestClient(srv.URL, HTTPConfig{Attempts: 3})
	defer s.Close()
	_, err := s.Fetch()
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("exhausted retries = %v, want ErrUnavailable", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want exactly Attempts=3", calls.Load())
	}
	if len(*slept) != 2 {
		t.Fatalf("%d backoffs for 3 attempts, want 2", len(*slept))
	}
	if s.Totals().Fetches != 0 {
		t.Fatal("failed fetch counted as success")
	}
}

func TestHTTPBackoffScheduleBounds(t *testing.T) {
	base, max := 50*time.Millisecond, 400*time.Millisecond
	s := NewHTTPStore("http://127.0.0.1:0", HTTPConfig{
		BackoffBase: base, BackoffMax: max, Attempts: 8,
	})
	defer s.Close()
	// Retry i sleeps a jittered base·2^i capped at max: within [d/2, d].
	for retry := 0; retry < 16; retry++ {
		want := base << retry
		if want <= 0 || want > max {
			want = max
		}
		for trial := 0; trial < 64; trial++ {
			got := s.backoffDelay(retry)
			if got < want/2 || got > want {
				t.Fatalf("backoffDelay(%d) = %v outside [%v, %v]", retry, got, want/2, want)
			}
		}
	}
}

func TestHTTPTimeoutOnHangingServer(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hang far past the client's timeout
	}))
	defer func() { close(release); srv.Close() }()

	s, slept := newTestClient(srv.URL, HTTPConfig{Timeout: 50 * time.Millisecond, Attempts: 2})
	defer s.Close()
	start := time.Now()
	_, err := s.Fetch()
	elapsed := time.Since(start)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("hanging server = %v, want ErrUnavailable", err)
	}
	// Two attempts at 50ms each, with sleeps intercepted: the per-request
	// timeout must bound the stall (generous margin for CI scheduling).
	if elapsed > 2*time.Second {
		t.Fatalf("hanging server stalled the client for %v", elapsed)
	}
	if len(*slept) != 1 {
		t.Fatalf("%d backoffs for 2 attempts, want 1", len(*slept))
	}
}

func TestHTTPServerDiesMidRun(t *testing.T) {
	m := NewMemory("TSVD", nil)
	srv := httptest.NewServer(Handler(m, nil, nil))

	s, _ := newTestClient(srv.URL, HTTPConfig{Attempts: 2, Timeout: time.Second})
	defer s.Close()
	if err := s.Publish(trapfile.File{Pairs: pairs("a", "b")}); err != nil {
		t.Fatal(err)
	}

	srv.Close() // the daemon dies between operations

	if _, err := s.Fetch(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("fetch from dead daemon = %v, want ErrUnavailable", err)
	}
	if err := s.Publish(trapfile.File{Pairs: pairs("c", "d")}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("publish to dead daemon = %v, want ErrUnavailable", err)
	}
}

func TestHTTPVersionMismatchIsCorruptNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"version": 99, "tool": "future", "pairs": []}`))
	}))
	defer srv.Close()

	s, slept := newTestClient(srv.URL, HTTPConfig{Attempts: 5})
	defer s.Close()
	_, err := s.Fetch()
	if !errors.Is(err, trapfile.ErrCorrupt) {
		t.Fatalf("foreign version = %v, want ErrCorrupt", err)
	}
	if errors.Is(err, ErrUnavailable) {
		t.Fatal("data error misclassified as unavailability")
	}
	if calls.Load() != 1 || len(*slept) != 0 {
		t.Fatalf("data error was retried: %d calls, %d sleeps", calls.Load(), len(*slept))
	}
}

func TestHTTPServerRejectsForeignVersionPublish(t *testing.T) {
	m := NewMemory("TSVD", nil)
	srv := httptest.NewServer(Handler(m, nil, nil))
	defer srv.Close()

	resp, err := http.Post(srv.URL+TrapsPath, "application/json",
		strings.NewReader(`{"version": 99, "pairs": [{"a":"x","b":"y"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("foreign version accepted: %s", resp.Status)
	}
	if f, _ := m.Snapshot(); len(f.Pairs) != 0 {
		t.Fatalf("rejected payload still merged: %v", f.Pairs)
	}
}

// TestFallbackToFilePreservesLocalDiscoveries is the satellite's headline
// fault scenario end-to-end in-process: a shard publishes through a
// Fallback whose daemon dies mid-run; every locally discovered pair must
// survive in the local trap file and no operation may error.
func TestFallbackToFilePreservesLocalDiscoveries(t *testing.T) {
	m := NewMemory("TSVD", nil)
	srv := httptest.NewServer(Handler(m, nil, nil))

	localPath := filepath.Join(t.TempDir(), "local.json")
	client, _ := newTestClient(srv.URL, HTTPConfig{Attempts: 2, Timeout: time.Second})
	s := NewFallback(client, NewFileStore(localPath, nil), nil)
	defer s.Close()

	if err := s.Publish(trapfile.File{Tool: "TSVD", Pairs: pairs("run1a", "run1b")}); err != nil {
		t.Fatal(err)
	}
	srv.Close() // daemon killed mid-run
	if err := s.Publish(trapfile.File{Tool: "TSVD", Pairs: pairs("run2a", "run2b")}); err != nil {
		t.Fatalf("publish after daemon death errored: %v", err)
	}
	got, err := s.Fetch()
	if err != nil {
		t.Fatalf("fetch after daemon death errored: %v", err)
	}
	if len(got.Pairs) != 2 {
		t.Fatalf("pairs lost after daemon death: %v", got.Pairs)
	}
	onDisk, err := trapfile.LoadFile(localPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk.Pairs) != 2 {
		t.Fatalf("local trap file lost pairs: %v", onDisk.Pairs)
	}
	if s.Totals().Fallbacks == 0 {
		t.Fatal("degradation not accounted")
	}
}
