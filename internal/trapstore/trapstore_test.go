package trapstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
	"repro/internal/trapfile"
)

func pairs(keys ...string) []trapfile.Pair {
	var out []trapfile.Pair
	for i := 0; i+1 < len(keys); i += 2 {
		out = append(out, trapfile.Pair{A: keys[i], B: keys[i+1]})
	}
	return out
}

func fetchPairs(t *testing.T, s TrapStore) []trapfile.Pair {
	t.Helper()
	f, err := s.Fetch()
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	return f.Pairs
}

func TestFileStorePublishMerges(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traps.json")
	s := NewFileStore(path, nil)

	if got := fetchPairs(t, s); len(got) != 0 {
		t.Fatalf("fresh store not empty: %v", got)
	}
	if err := s.Publish(trapfile.File{Tool: "TSVD", Pairs: pairs("a", "b")}); err != nil {
		t.Fatal(err)
	}
	// A second publish unions with what is already on disk.
	if err := s.Publish(trapfile.File{Tool: "TSVD", Pairs: pairs("c", "d", "a", "b")}); err != nil {
		t.Fatal(err)
	}
	got := fetchPairs(t, s)
	if len(got) != 2 || got[0] != (trapfile.Pair{A: "a", B: "b"}) || got[1] != (trapfile.Pair{A: "c", B: "d"}) {
		t.Fatalf("merged file = %v", got)
	}
	tot := s.Totals()
	if tot.Publishes != 2 || tot.Fetches != 2 || tot.Fallbacks != 0 {
		t.Fatalf("totals = %+v", tot)
	}
}

func TestFileStoreRefusesCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traps.json")
	os.WriteFile(path, []byte("not json"), 0o644)
	s := NewFileStore(path, nil)
	if _, err := s.Fetch(); !errors.Is(err, trapfile.ErrCorrupt) {
		t.Fatalf("Fetch over corrupt file = %v, want ErrCorrupt", err)
	}
	if err := s.Publish(trapfile.File{Pairs: pairs("a", "b")}); !errors.Is(err, trapfile.ErrCorrupt) {
		t.Fatalf("Publish over corrupt file = %v, want ErrCorrupt", err)
	}
	// The corrupt file was not clobbered: the evidence survives.
	data, _ := os.ReadFile(path)
	if string(data) != "not json" {
		t.Fatalf("corrupt file overwritten with %q", data)
	}
}

func TestMemoryGenerationMovesOnlyOnGrowth(t *testing.T) {
	m := NewMemory("TSVD", nil)
	_, gen0 := m.Snapshot()
	if gen0 != 0 {
		t.Fatalf("fresh generation = %d", gen0)
	}
	m.Publish(trapfile.File{Pairs: pairs("a", "b")})
	_, gen1 := m.Snapshot()
	if gen1 != gen0+1 {
		t.Fatalf("generation after growth = %d, want %d", gen1, gen0+1)
	}
	// Re-publishing the same pair must not move the generation: idle
	// shards poll by generation and a spurious bump costs them a body.
	m.Publish(trapfile.File{Pairs: pairs("a", "b", "b", "a")})
	_, gen2 := m.Snapshot()
	if gen2 != gen1 {
		t.Fatalf("generation moved without growth: %d -> %d", gen1, gen2)
	}
}

// brokenStore fails every operation with a fixed error.
type brokenStore struct{ err error }

func (b brokenStore) Fetch() (trapfile.File, error) { return trapfile.File{}, b.err }
func (b brokenStore) Publish(trapfile.File) error   { return b.err }
func (b brokenStore) Totals() trace.StoreTotals     { return trace.StoreTotals{} }
func (b brokenStore) Close() error                  { return nil }

func TestFallbackDegradesOnUnavailable(t *testing.T) {
	dir := t.TempDir()
	local := NewFileStore(filepath.Join(dir, "local.json"), nil)
	down := brokenStore{err: ErrUnavailable}
	s := NewFallback(down, local, nil)

	// Publish: the local copy absorbs everything even though the primary
	// is down, and the operation reports success.
	if err := s.Publish(trapfile.File{Tool: "TSVD", Pairs: pairs("a", "b", "c", "d")}); err != nil {
		t.Fatalf("degraded publish failed: %v", err)
	}
	got := fetchPairs(t, s)
	if len(got) != 2 {
		t.Fatalf("degraded fetch lost pairs: %v", got)
	}
	tot := s.Totals()
	if tot.Fallbacks != 2 { // one per degraded operation
		t.Fatalf("fallbacks = %d, want 2 (%+v)", tot.Fallbacks, tot)
	}
}

func TestFallbackPropagatesDataErrors(t *testing.T) {
	dir := t.TempDir()
	local := NewFileStore(filepath.Join(dir, "local.json"), nil)
	bad := brokenStore{err: trapfile.ErrCorrupt}
	s := NewFallback(bad, local, nil)
	if err := s.Publish(trapfile.File{Pairs: pairs("a", "b")}); !errors.Is(err, trapfile.ErrCorrupt) {
		t.Fatalf("data error degraded instead of propagating: %v", err)
	}
	if _, err := s.Fetch(); !errors.Is(err, trapfile.ErrCorrupt) {
		t.Fatalf("fetch data error degraded instead of propagating: %v", err)
	}
}

func TestFallbackMergesBothSidesWhenHealthy(t *testing.T) {
	dir := t.TempDir()
	local := NewFileStore(filepath.Join(dir, "local.json"), nil)
	remote := NewMemory("TSVD", nil)
	local.Publish(trapfile.File{Pairs: pairs("l1", "l2")})
	remote.Publish(trapfile.File{Pairs: pairs("r1", "r2")})

	s := NewFallback(remote, local, nil)
	got := fetchPairs(t, s)
	if len(got) != 2 {
		t.Fatalf("healthy fetch did not union local+remote: %v", got)
	}
}

func TestStoreEventsMirrorTotals(t *testing.T) {
	tr := trace.New(1 << 10)
	local := NewFileStore(filepath.Join(t.TempDir(), "local.json"), tr)
	down := brokenStore{err: ErrUnavailable}
	s := NewFallback(down, local, tr)

	s.Publish(trapfile.File{Pairs: pairs("a", "b")})
	s.Fetch()

	counts := map[trace.Kind]int64{}
	for _, e := range tr.Drain() {
		counts[e.Kind]++
	}
	tot := s.Totals()
	if counts[trace.KindStoreFetch] != tot.Fetches ||
		counts[trace.KindStorePublish] != tot.Publishes ||
		counts[trace.KindStoreFallback] != tot.Fallbacks {
		t.Fatalf("events %v do not mirror totals %+v", counts, tot)
	}
	if tot.Fetches == 0 || tot.Publishes == 0 || tot.Fallbacks == 0 {
		t.Fatalf("expected all three operation types, got %+v", tot)
	}
}
