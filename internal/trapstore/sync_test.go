package trapstore

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/trapfile"
)

// swapServer hosts a swappable handler behind one stable URL, standing in
// for a daemon host that restarts (new process, same address) or partitions
// (requests fail) — the situations the epoch-qualified sync state exists for.
type swapServer struct {
	mu   sync.Mutex
	h    http.Handler
	down bool
	srv  *httptest.Server
}

func newSwapServer(h http.Handler) *swapServer {
	s := &swapServer{h: h}
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		h, down := s.h, s.down
		s.mu.Unlock()
		if down || h == nil {
			http.Error(w, "daemon unreachable", http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(w, r)
	}))
	return s
}

func (s *swapServer) swap(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapServer) setDown(down bool) {
	s.mu.Lock()
	s.down = down
	s.mu.Unlock()
}

func keySet(ps []trapfile.Pair) map[trapfile.Pair]bool {
	out := make(map[trapfile.Pair]bool, len(ps))
	for _, p := range ps {
		out[p] = true
	}
	return out
}

// TestRestartETagCollisionEmptyDaemon is the regression test for the
// restart ETag collision: a client that cached generation G from one daemon
// lifetime polls a restarted (empty) daemon that has re-reached generation G
// with different pairs. Under the old generation-only ETag ("g1") the daemon
// answered 304 and the client kept the dead lifetime's pairs forever; the
// epoch-qualified ETag never matches across boots, forcing the full refetch.
func TestRestartETagCollisionEmptyDaemon(t *testing.T) {
	m1 := NewMemory("TSVD", nil)
	gate := newSwapServer(NewHandler(m1, HandlerOptions{}))
	defer gate.srv.Close()

	s, _ := newTestClient(gate.srv.URL, HTTPConfig{})
	defer s.Close()

	if err := s.Publish(trapfile.File{Tool: "TSVD", Pairs: pairs("old.go:1", "old.go:2")}); err != nil {
		t.Fatal(err)
	}
	if got := fetchPairs(t, s); len(got) != 1 {
		t.Fatalf("first fetch = %v", got)
	}
	if g := m1.Generation(); g != 1 {
		t.Fatalf("old lifetime at generation %d, want 1", g)
	}

	// The daemon dies losing everything (no snapshot) and restarts empty at
	// the same address; a different publish brings the NEW lifetime to the
	// same generation 1 the client's cache cursor names.
	m2 := NewMemory("TSVD", nil)
	gate.swap(NewHandler(m2, HandlerOptions{}))
	if err := s.Publish(trapfile.File{Tool: "TSVD", Pairs: pairs("new.go:1", "new.go:2")}); err != nil {
		t.Fatal(err)
	}
	if g := m2.Generation(); g != 1 {
		t.Fatalf("new lifetime at generation %d, want 1 (the colliding generation)", g)
	}

	got := fetchPairs(t, s)
	want := pairs("new.go:1", "new.go:2")
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("fetch across restart = %v, want %v (a stale 304 kept the dead lifetime's pairs)", got, want)
	}
	ws := s.WireStats()
	if ws.NotModified != 0 {
		t.Fatalf("client got %d not-modified answers across the restart; the collision is back", ws.NotModified)
	}
}

// TestRestartETagCollisionSeededDaemon covers the harder seeded variant: a
// kill-9 lands between a merge the client observed and its snapshot save, so
// the restarted daemon restores below the client's cached generation and
// legitimately re-reaches it with different pairs.
func TestRestartETagCollisionSeededDaemon(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "snapshot.json")
	persister := NewSnapshotPersister(snapPath)

	m1 := NewMemory("TSVD", nil)
	gate := newSwapServer(NewHandler(m1, HandlerOptions{}))
	defer gate.srv.Close()
	s, _ := newTestClient(gate.srv.URL, HTTPConfig{})
	defer s.Close()

	// Generation 1 is persisted; generation 2 is observed by the client but
	// the process dies before the save (the kill-9 window).
	if err := s.Publish(trapfile.File{Tool: "TSVD", Pairs: pairs("a.go:1", "a.go:2")}); err != nil {
		t.Fatal(err)
	}
	f1, st1 := m1.SnapshotState()
	if err := persister.Save(f1, st1); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(trapfile.File{Tool: "TSVD", Pairs: pairs("lost.go:1", "lost.go:2")}); err != nil {
		t.Fatal(err)
	}
	if got := fetchPairs(t, s); len(got) != 2 {
		t.Fatalf("client observed %v before the crash", got)
	}
	if m1.Generation() != 2 {
		t.Fatalf("old lifetime at generation %d, want 2", m1.Generation())
	}

	// Restart: restoring the snapshot continues generation 1 and bumps past
	// it — landing exactly on generation 2, the number the client's cursor
	// names, with a smaller set (the unsaved pair is gone).
	seed, prev, err := persister.Load()
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewMemory("TSVD", nil)
	m2.Restore(seed, prev)
	gate.swap(NewHandler(m2, HandlerOptions{}))
	if m2.Generation() != 2 {
		t.Fatalf("restored lifetime at generation %d, want 2 (the colliding generation)", m2.Generation())
	}

	// The poll at the colliding generation: a generation-only ETag would 304
	// and the client would keep serving the lost pair forever; the fresh
	// epoch forces the full refetch that drops it.
	got := keySet(fetchPairs(t, s))
	want := keySet(pairs("a.go:1", "a.go:2"))
	if len(got) != len(want) || !got[pairs("a.go:1", "a.go:2")[0]] {
		t.Fatalf("fetch across restart = %v, want only %v (a stale 304 kept the unsaved pair)", got, want)
	}

	// And the client resumes normal incremental polling against the new
	// lifetime.
	if err := s.Publish(trapfile.File{Tool: "TSVD", Pairs: pairs("fresh.go:1", "fresh.go:2")}); err != nil {
		t.Fatal(err)
	}
	after := keySet(fetchPairs(t, s))
	if len(after) != 2 || !after[pairs("fresh.go:1", "fresh.go:2")[0]] {
		t.Fatalf("post-restart publish+fetch = %v", after)
	}
	if ws := s.WireStats(); ws.DeltaFetches != 1 {
		t.Fatalf("post-restart poll was not delta-sized: %+v", ws)
	}
}

// TestRestoreContinuesGenerationAcrossKill9 asserts the persisted
// (epoch, generation) survive a simulated kill-9 + restart with the right
// halves: the generation continues monotonically (no number is ever reused
// for a different set), while the epoch is minted fresh (reusing the old one
// would reopen the stale-304 window).
func TestRestoreContinuesGenerationAcrossKill9(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "snapshot.json")
	p := NewSnapshotPersister(snapPath)

	m1 := NewMemory("TSVD", nil)
	for i := 0; i < 5; i++ {
		st, _, _ := m1.merge(trapfile.File{Tool: "TSVD", Pairs: pairs(
			fmt.Sprintf("k%d.go:1", i), fmt.Sprintf("k%d.go:2", i))})
		f, _ := m1.Snapshot()
		if err := p.Save(f, st); err != nil {
			t.Fatal(err)
		}
	}
	oldState := m1.State()
	if oldState.Generation != 5 {
		t.Fatalf("generation = %d, want 5", oldState.Generation)
	}

	// kill-9: nothing but the snapshot file survives; even the persister is
	// a fresh instance in the new process.
	seed, prev, err := NewSnapshotPersister(snapPath).Load()
	if err != nil {
		t.Fatal(err)
	}
	if prev.Epoch != oldState.Epoch || prev.Generation != 5 {
		t.Fatalf("persisted state = %+v, want epoch %x generation 5", prev, oldState.Epoch)
	}
	m2 := NewMemory("TSVD", nil)
	m2.Restore(seed, prev)

	newState := m2.State()
	if newState.Generation <= oldState.Generation {
		t.Fatalf("restored generation %d did not advance past the persisted %d: a client cursor from the old lifetime could false-match",
			newState.Generation, oldState.Generation)
	}
	if newState.Epoch == oldState.Epoch {
		t.Fatal("restore reused the persisted epoch; a kill-9 between merge and save would resurrect stale 304s")
	}
	if m2.PairCount() != 5 {
		t.Fatalf("restored set has %d pairs, want 5", m2.PairCount())
	}
	if st, _, _ := m2.merge(trapfile.File{Tool: "TSVD", Pairs: pairs("post.go:1", "post.go:2")}); st.Generation <= newState.Generation {
		t.Fatalf("post-restore merge assigned generation %d, want > %d", st.Generation, newState.Generation)
	}
}

// TestFetchReturnsDefensiveCopy mutates the File each fetch path returns —
// full, 304-cached, and delta — and asserts the client's cache is unharmed:
// the next fetch still returns the daemon's set.
func TestFetchReturnsDefensiveCopy(t *testing.T) {
	m := NewMemory("TSVD", nil)
	srv := httptest.NewServer(NewHandler(m, HandlerOptions{}))
	defer srv.Close()
	s, _ := newTestClient(srv.URL, HTTPConfig{})
	defer s.Close()

	if err := s.Publish(trapfile.File{Tool: "TSVD", Pairs: pairs("a.go:1", "a.go:2", "b.go:1", "b.go:2")}); err != nil {
		t.Fatal(err)
	}
	clobber := func(f trapfile.File) {
		for i := range f.Pairs {
			f.Pairs[i] = trapfile.Pair{A: "clobbered", B: "clobbered"}
		}
		//nolint:staticcheck // the append result is deliberately dropped: the
		// point is writing into any spare capacity aliased with the cache.
		_ = append(f.Pairs, trapfile.Pair{A: "x", B: "y"})
	}

	// Full-fetch path.
	f1, err := s.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	clobber(f1)

	// 304 path: served from the cache the clobber tried to corrupt.
	f2, err := s.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Pairs) != 2 || f2.Pairs[0].A == "clobbered" {
		t.Fatalf("cache corrupted through the full-fetch result: %v", f2.Pairs)
	}
	clobber(f2)

	// Delta path: the daemon grows, the client merges the delta into the
	// cache the previous clobber tried to corrupt.
	if err := s.Publish(trapfile.File{Tool: "TSVD", Pairs: pairs("c.go:1", "c.go:2")}); err != nil {
		t.Fatal(err)
	}
	f3, err := s.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.Pairs) != 3 || f3.Pairs[0].A == "clobbered" {
		t.Fatalf("cache corrupted through the 304 result: %v", f3.Pairs)
	}
	clobber(f3)
	f4, err := s.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Pairs) != 3 || f4.Pairs[0].A == "clobbered" {
		t.Fatalf("cache corrupted through the delta result: %v", f4.Pairs)
	}

	ws := s.WireStats()
	if ws.DeltaFetches != 1 {
		t.Fatalf("wire stats counted %d delta fetches, want exactly 1: %+v", ws.DeltaFetches, ws)
	}
}

// TestFetchDeltaEconomy asserts the poll-cost claim directly: once a client
// holds a snapshot, a daemon that grew by one pair sends only that pair (a
// delta body), not the whole set, and an idle daemon sends no body at all.
func TestFetchDeltaEconomy(t *testing.T) {
	m := NewMemory("TSVD", nil)
	srv := httptest.NewServer(NewHandler(m, HandlerOptions{}))
	defer srv.Close()
	s, _ := newTestClient(srv.URL, HTTPConfig{})
	defer s.Close()

	// A sizable base set, then the first (full) fetch.
	var base []trapfile.Pair
	for i := 0; i < 200; i++ {
		base = append(base, trapfile.Pair{A: fmt.Sprintf("base%03d.go:1", i), B: fmt.Sprintf("base%03d.go:2", i)})
	}
	if err := s.Publish(trapfile.File{Tool: "TSVD", Pairs: base}); err != nil {
		t.Fatal(err)
	}
	if got := fetchPairs(t, s); len(got) != 200 {
		t.Fatalf("full fetch returned %d pairs", len(got))
	}
	fullBytes := s.WireStats().FetchBytes

	// Idle poll: a 304, zero body bytes.
	if got := fetchPairs(t, s); len(got) != 200 {
		t.Fatalf("304 fetch returned %d pairs", len(got))
	}
	afterIdle := s.WireStats()
	if afterIdle.NotModified != 1 || afterIdle.FetchBytes != fullBytes {
		t.Fatalf("idle poll was not free: %+v (full fetch cost %d bytes)", afterIdle, fullBytes)
	}

	// One-pair growth: a delta body, a small fraction of the full snapshot.
	if err := s.Publish(trapfile.File{Tool: "TSVD", Pairs: pairs("delta.go:1", "delta.go:2")}); err != nil {
		t.Fatal(err)
	}
	if got := fetchPairs(t, s); len(got) != 201 {
		t.Fatalf("delta fetch returned %d pairs", len(got))
	}
	after := s.WireStats()
	if after.DeltaFetches != 1 {
		t.Fatalf("growth poll was not served as a delta: %+v", after)
	}
	deltaBytes := after.FetchBytes - fullBytes
	if deltaBytes <= 0 || deltaBytes > fullBytes/10 {
		t.Fatalf("delta response cost %d bytes against a %d-byte full snapshot; want O(delta), not O(pairs)",
			deltaBytes, fullBytes)
	}
}

// TestPublishChunksOversizedSets lowers the daemon payload cap and the
// client chunk size and publishes a set whose JSON is many times the cap:
// the publish must succeed via multiple bounded POSTs (the G-Set union makes
// partial merges equivalent), count as ONE logical publish, and land every
// pair.
func TestPublishChunksOversizedSets(t *testing.T) {
	const cap = 2 << 10 // 2 KiB — comfortably below the set's encoding
	m := NewMemory("TSVD", nil)
	srv := httptest.NewServer(NewHandler(m, HandlerOptions{MaxPayloadBytes: cap}))
	defer srv.Close()

	var big []trapfile.Pair
	for i := 0; i < 300; i++ {
		big = append(big, trapfile.Pair{A: fmt.Sprintf("pkg/huge%04d.go:10", i), B: fmt.Sprintf("pkg/huge%04d.go:20", i)})
	}

	// A client with the matching chunk size succeeds.
	s, _ := newTestClient(srv.URL, HTTPConfig{PublishChunkBytes: cap})
	defer s.Close()
	if err := s.Publish(trapfile.File{Tool: "TSVD", Pairs: big}); err != nil {
		t.Fatalf("chunked publish failed: %v", err)
	}
	if n := m.PairCount(); n != 300 {
		t.Fatalf("daemon holds %d pairs after chunked publish, want 300", n)
	}
	if tot := s.Totals(); tot.Publishes != 1 {
		t.Fatalf("chunked publish counted as %d logical publishes, want 1", tot.Publishes)
	}

	// A client that chunks above the daemon's cap gets a prompt,
	// non-retryable 413 telling the operator what to fix.
	s2, slept := newTestClient(srv.URL, HTTPConfig{PublishChunkBytes: 1 << 20})
	defer s2.Close()
	err := s2.Publish(trapfile.File{Tool: "TSVD", Pairs: big})
	if err == nil {
		t.Fatal("oversized single-POST publish succeeded against the capped daemon")
	}
	if !strings.Contains(err.Error(), "PublishChunkBytes") {
		t.Fatalf("413 error does not name the knob to fix: %v", err)
	}
	if len(*slept) != 0 {
		t.Fatalf("413 was retried %d times; a payload-cap rejection is permanent", len(*slept))
	}
}

// TestDeltaWindowProperty is the snapshot-delta equivalence property: for a
// randomized merge history, the snapshot at any earlier generation unioned
// with Delta(since that generation) equals the current snapshot — for every
// window the delta log still covers.
func TestDeltaWindowProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(902))
	m := NewMemory("TSVD", nil)

	type recorded struct {
		st    SyncState
		pairs []trapfile.Pair
	}
	var hist []recorded
	record := func() {
		f, st := m.SnapshotState()
		hist = append(hist, recorded{st: st, pairs: f.Pairs})
	}
	record() // generation 0, empty

	for step := 0; step < 40; step++ {
		n := 1 + rng.Intn(4)
		var batch []trapfile.Pair
		for i := 0; i < n; i++ {
			k := rng.Intn(60) // overlapping keys: some merges are partial no-ops
			batch = append(batch, trapfile.Pair{A: fmt.Sprintf("p%02d.go:1", k), B: fmt.Sprintf("p%02d.go:2", k)})
		}
		m.merge(trapfile.File{Tool: "TSVD", Pairs: batch})
		record()
	}

	cur, curState := m.SnapshotState()
	want := keySet(cur.Pairs)
	for _, rec := range hist {
		delta, got, ok := m.Delta(rec.st)
		if !ok {
			t.Fatalf("window since generation %d not servable; the log should cover this history", rec.st.Generation)
		}
		if got != curState {
			t.Fatalf("Delta reported state %+v, want %+v", got, curState)
		}
		union := keySet(rec.pairs)
		for _, p := range delta {
			union[p] = true
		}
		if len(union) != len(want) {
			t.Fatalf("base(g%d) ∪ delta has %d pairs, full snapshot has %d",
				rec.st.Generation, len(union), len(want))
		}
		for p := range want {
			if !union[p] {
				t.Fatalf("base(g%d) ∪ delta is missing %v", rec.st.Generation, p)
			}
		}
	}

	// Foreign epochs and future cursors must refuse the window.
	if _, _, ok := m.Delta(SyncState{Epoch: curState.Epoch + 1, Generation: 0}); ok {
		t.Fatal("Delta served a window for a foreign epoch")
	}
	if _, _, ok := m.Delta(SyncState{Epoch: curState.Epoch, Generation: curState.Generation + 1}); ok {
		t.Fatal("Delta served a window from the future")
	}
}

// TestDeltaLogCompaction exercises the bounded-log fallback directly: once
// the retained pairs exceed the bound, the oldest windows compact away and
// cursors below the floor report ok=false (the caller takes a full
// snapshot).
func TestDeltaLogCompaction(t *testing.T) {
	var l deltaLog
	big := make([]trapfile.Pair, deltaLogMaxPairs/2+1)
	for i := range big {
		big[i] = trapfile.Pair{A: fmt.Sprintf("a%d", i), B: fmt.Sprintf("b%d", i)}
	}
	l.append(big) // generation 1
	l.append(big) // generation 2 — still within one-entry grace
	l.append(big) // generation 3 — forces compaction of the oldest entries

	if l.floor == 0 {
		t.Fatalf("log retains %d pairs over the %d bound without compacting", l.pairs, deltaLogMaxPairs)
	}
	if _, ok := l.since(0); ok {
		t.Fatal("compacted window served; cursors below the floor must fall back to a full snapshot")
	}
	if _, ok := l.since(l.floor); !ok {
		t.Fatal("the floor window itself must stay servable")
	}
}

// TestReplicatorPartitionHealConvergence runs a three-daemon mesh at the
// library level: distinct pairs published to each daemon, one daemon
// partitioned during the first sync round, then healed — after one more full
// round every daemon holds the union.
func TestReplicatorPartitionHealConvergence(t *testing.T) {
	const n = 3
	mems := make([]*Memory, n)
	gates := make([]*swapServer, n)
	for i := range mems {
		mems[i] = NewMemory("TSVD", nil)
		gates[i] = newSwapServer(NewHandler(mems[i], HandlerOptions{}))
		defer gates[i].srv.Close()
	}
	fast := HTTPConfig{Attempts: 2, BackoffBase: 1, BackoffMax: 2}
	repls := make([]*Replicator, n)
	for i := range repls {
		var peers []string
		for j := range gates {
			if j != i {
				peers = append(peers, gates[j].srv.URL)
			}
		}
		repls[i] = NewReplicator(mems[i], ReplicatorConfig{Peers: peers, HTTP: fast})
		defer repls[i].Close()
	}

	for i, m := range mems {
		m.merge(trapfile.File{Tool: "TSVD", Pairs: pairs(
			fmt.Sprintf("d%d.go:1", i), fmt.Sprintf("d%d.go:2", i))})
	}

	// Round 1 with daemon 2 partitioned: 0 and 1 converge, 2 stays behind.
	gates[2].setDown(true)
	for i := 0; i < 2; i++ {
		for _, res := range repls[i].SyncOnce() {
			if strings.Contains(res.Peer, gates[2].srv.URL) {
				continue // the partitioned peer is expected to fail
			}
			if res.PullErr != nil || res.PushErr != nil {
				t.Fatalf("daemon %d sync against healthy peer failed: pull=%v push=%v", i, res.PullErr, res.PushErr)
			}
		}
	}
	if mems[0].PairCount() != 2 || mems[1].PairCount() != 2 {
		t.Fatalf("healthy pair did not converge: %d vs %d pairs", mems[0].PairCount(), mems[1].PairCount())
	}
	if mems[2].PairCount() != 1 {
		t.Fatalf("partitioned daemon gained pairs: %d", mems[2].PairCount())
	}

	// Heal; one full round over the mesh converges everyone.
	gates[2].setDown(false)
	for _, r := range repls {
		r.SyncOnce()
	}
	want := keySet(pairs("d0.go:1", "d0.go:2", "d1.go:1", "d1.go:2", "d2.go:1", "d2.go:2"))
	for i, m := range mems {
		f, _ := m.Snapshot()
		got := keySet(f.Pairs)
		if len(got) != len(want) {
			t.Fatalf("daemon %d holds %d pairs after heal+sync, want %d: %v", i, len(got), len(want), f.Pairs)
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("daemon %d is missing %v after heal+sync", i, p)
			}
		}
	}
}
