package trapstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/trapfile"
	"repro/internal/triage"
)

// SyncState identifies a point in one daemon's merge history: the boot epoch
// of the process that assigned the generation, plus the generation itself.
// Generations alone are ambiguous across restarts — two daemon lifetimes
// both pass "generation 3" with different pair sets — so every place a
// generation crosses a process boundary (ETags, ?since= delta requests,
// persisted snapshots, peer sync cursors) carries the epoch with it.
type SyncState struct {
	// Epoch is a random 64-bit ID minted once per daemon boot. Zero means
	// "no epoch": a fresh Memory that has never merged, or a legacy snapshot
	// persisted before epochs existed.
	Epoch uint64
	// Generation counts set growth. It is restored across restarts (via
	// SnapshotPersister) so it is monotone over a daemon's whole history,
	// but only (Epoch, Generation) together name a unique set state.
	Generation uint64
}

// String renders the state in the wire form used by ETags and ?since=
// cursors: "e<epoch-hex>-g<generation>".
func (st SyncState) String() string {
	return "e" + strconv.FormatUint(st.Epoch, 16) + "-g" + strconv.FormatUint(st.Generation, 10)
}

// parseSyncState parses the String form. It accepts exactly what String
// produces; anything else is an error (clients with unparseable cursors get
// a full snapshot, which is always correct).
func parseSyncState(s string) (SyncState, error) {
	rest, ok := strings.CutPrefix(s, "e")
	if !ok {
		return SyncState{}, fmt.Errorf("trapstore: sync state %q: missing epoch", s)
	}
	eh, gh, ok := strings.Cut(rest, "-g")
	if !ok {
		return SyncState{}, fmt.Errorf("trapstore: sync state %q: missing generation", s)
	}
	epoch, err := strconv.ParseUint(eh, 16, 64)
	if err != nil {
		return SyncState{}, fmt.Errorf("trapstore: sync state %q: bad epoch: %v", s, err)
	}
	gen, err := strconv.ParseUint(gh, 10, 64)
	if err != nil {
		return SyncState{}, fmt.Errorf("trapstore: sync state %q: bad generation: %v", s, err)
	}
	return SyncState{Epoch: epoch, Generation: gen}, nil
}

// newEpoch mints a boot epoch. Cryptographic randomness is unnecessary —
// the epoch only needs to make accidental collision across restarts
// vanishingly unlikely, and 64 random bits do that.
func newEpoch() uint64 {
	for {
		e := rand.Uint64()
		if e != 0 { // zero is reserved for "no epoch"
			return e
		}
	}
}

// deltaLogMaxPairs bounds the pairs retained across all delta-log entries.
// Past the bound the oldest entries are compacted away and ?since= requests
// from before the compaction floor fall back to a full snapshot. The bound
// is deliberately generous: fleet trap sets top out at a few thousand pairs,
// so in practice the whole history fits and every incremental poll is a
// delta.
const deltaLogMaxPairs = 1 << 16

// deltaLog records, per generation, the pairs that merge added — the source
// of O(delta) incremental sync. Entry i holds the pairs added by generation
// floor+1+i; a request "since generation g" with g >= floor is served by
// concatenating entries past g-floor.
type deltaLog struct {
	// floor is the generation the log starts after: deltas since any
	// generation >= floor can be served, older cursors need a full snapshot.
	floor uint64
	adds  [][]trapfile.Pair
	pairs int // total pairs across adds, for the compaction bound
}

// append records the pairs added by the generation after floor+len(adds).
func (l *deltaLog) append(added []trapfile.Pair) {
	l.adds = append(l.adds, added)
	l.pairs += len(added)
	for l.pairs > deltaLogMaxPairs && len(l.adds) > 1 {
		l.pairs -= len(l.adds[0])
		l.adds[0] = nil // release the backing array before reslicing
		l.adds = l.adds[1:]
		l.floor++
	}
}

// since returns the pairs added after generation g, and whether the log
// still covers that window. g below the compaction floor (or above the head,
// which a correct client never sends) reports ok=false.
func (l *deltaLog) since(g uint64) (pairs []trapfile.Pair, ok bool) {
	head := l.floor + uint64(len(l.adds))
	if g < l.floor || g > head {
		return nil, false
	}
	for _, a := range l.adds[g-l.floor:] {
		pairs = append(pairs, a...)
	}
	return pairs, true
}

// Memory is an in-process trap set with an epoch-qualified generation
// counter — the aggregation core of cmd/tsvd-trapd, and a zero-dependency
// shared store for in-process fleet simulation (internal/harness.RunFleet).
//
// The generation counter increments exactly when the pair set grows; with
// the boot epoch it forms the ETag, so a shard that polls with the state it
// last saw gets a cheap "unchanged" answer (same epoch, same generation), an
// O(delta) incremental response (same epoch, older generation still in the
// delta log), or a full snapshot (different epoch or compacted window).
type Memory struct {
	mu    sync.Mutex
	file  trapfile.File
	epoch uint64
	gen   uint64
	log   deltaLog
	instr
}

// NewMemory returns an empty store labeled with tool, under a fresh boot
// epoch. tracer may be nil.
func NewMemory(tool string, tracer *trace.Tracer) *Memory {
	return &Memory{
		file:  trapfile.File{Version: trapfile.FormatVersion, Tool: tool},
		epoch: newEpoch(),
		instr: newInstr(tracer, "mem:"+tool),
	}
}

// Snapshot returns a copy of the current merged set and its generation.
func (m *Memory) Snapshot() (trapfile.File, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapshotLocked(), m.gen
}

func (m *Memory) snapshotLocked() trapfile.File {
	f := m.file
	f.Pairs = append([]trapfile.Pair(nil), m.file.Pairs...)
	return f
}

// SnapshotState returns a copy of the merged set and the full sync state —
// what the persister stores and the handler serves.
func (m *Memory) SnapshotState() (trapfile.File, SyncState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapshotLocked(), SyncState{Epoch: m.epoch, Generation: m.gen}
}

// Generation returns the current generation without copying the set.
func (m *Memory) Generation() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gen
}

// State returns the current sync state without copying the set.
func (m *Memory) State() SyncState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return SyncState{Epoch: m.epoch, Generation: m.gen}
}

// PairCount returns the current merged set size without copying it.
func (m *Memory) PairCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.file.Pairs)
}

// Tool returns the set's current tool label.
func (m *Memory) Tool() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.file.Tool
}

// Seed replaces the set wholesale (daemon startup from a bare snapshot
// file). It bumps the generation when the seeded set is non-empty so
// pre-seed pollers refetch. Daemons restoring persisted sync state use
// Restore instead, which keeps the generation monotone across restarts.
func (m *Memory) Seed(f trapfile.File) {
	m.Restore(f, SyncState{})
}

// Restore replaces the set wholesale with the contents of a persisted
// snapshot and continues its generation counter: the restored daemon's next
// growth assigns prev.Generation+2, never a number an earlier lifetime
// already used for a different set.
//
// The epoch is NOT restored — the Memory keeps the fresh epoch minted at
// construction. Reusing a persisted epoch would be unsound: a kill-9 can
// land between a merge a client observed (GET at generation G) and the
// snapshot save, so the restored daemon would sit below G under the same
// epoch and later re-reach G with different pairs — exactly the stale-304
// collision the epoch exists to prevent. A fresh epoch per boot forces one
// full refetch per client per restart, which is the correct price.
//
// The generation still bumps past prev.Generation when the restored set is
// non-empty, so clients that cache (freshEpoch, prev.Generation) from an
// earlier Restore in this same boot would refetch; with prev.Generation==0
// this degrades to Seed's behavior.
func (m *Memory) Restore(f trapfile.File, prev SyncState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.file = trapfile.Merge(trapfile.File{}, f)
	if prev.Generation > m.gen {
		m.gen = prev.Generation
	}
	if len(m.file.Pairs) > 0 {
		m.gen++
	}
	// The log cannot describe the jump from whatever a client saw before
	// the restore, so start it empty at the new generation: older cursors
	// fall back to a full snapshot.
	m.log = deltaLog{floor: m.gen}
}

// merge folds f in and reports the new sync state, the pairs the union
// gained, and the post-merge set size (so callers can ack without taking a
// second snapshot). The generation moves only when the set actually grew,
// and the gained pairs are appended to the delta log.
func (m *Memory) merge(f trapfile.File) (st SyncState, added []trapfile.Pair, total int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	before := m.file.Pairs
	m.file = trapfile.Merge(m.file, f)
	total = len(m.file.Pairs)
	if total > len(before) {
		added = diffSorted(m.file.Pairs, before)
		m.gen++
		m.log.append(added)
	}
	return SyncState{Epoch: m.epoch, Generation: m.gen}, added, total
}

// diffSorted returns the pairs in after that are not in before. Both slices
// are normalized (sorted, deduplicated) and before ⊆ after — the shape
// trapfile.Merge guarantees — so one linear pass suffices.
func diffSorted(after, before []trapfile.Pair) []trapfile.Pair {
	out := make([]trapfile.Pair, 0, len(after)-len(before))
	i := 0
	for _, p := range after {
		if i < len(before) && before[i] == p {
			i++
			continue
		}
		out = append(out, p)
	}
	return out
}

// Delta returns the pairs added strictly after since, the current sync
// state, and whether the delta could be served. ok=false — a foreign epoch,
// a cursor older than the compaction floor, or a cursor from the future —
// means the caller must take a full snapshot instead.
func (m *Memory) Delta(since SyncState) (pairs []trapfile.Pair, cur SyncState, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur = SyncState{Epoch: m.epoch, Generation: m.gen}
	if since.Epoch != m.epoch {
		return nil, cur, false
	}
	pairs, ok = m.log.since(since.Generation)
	return pairs, cur, ok
}

// Fetch implements TrapStore.
func (m *Memory) Fetch() (trapfile.File, error) {
	begin := time.Now()
	f, _ := m.Snapshot()
	m.fetched(time.Since(begin))
	return f, nil
}

// Publish implements TrapStore.
func (m *Memory) Publish(f trapfile.File) error {
	begin := time.Now()
	m.merge(f)
	m.published(time.Since(begin))
	return nil
}

// RegisterMetrics exports the in-process store's operation counters and
// latency histograms on reg (nil-safe) — what HTTPConfig.Metrics does for
// the HTTP client, for fleets simulated with a shared Memory.
func (m *Memory) RegisterMetrics(reg *metrics.Registry) { m.register(reg) }

// Totals implements TrapStore.
func (m *Memory) Totals() trace.StoreTotals { return m.totals() }

// Close implements TrapStore.
func (m *Memory) Close() error { return nil }

// --- HTTP wire schema (cmd/tsvd-trapd <-> HTTPStore) ---

// TrapsPath is the daemon's single read-write resource: the merged trap set.
const TrapsPath = "/v1/traps"

// BugsPath is the read-only triage view over the merged snapshot: one
// signature-keyed cluster per dangerous pair, identity resolved through the
// merged site table (internal/triage.FromTrapFile). The daemon only ever
// sees pairs, so the view carries no firing counts — those live in the
// shards' own bugs.json reports.
const BugsPath = "/v1/bugs"

// SinceParam is the query parameter carrying a client's sync cursor in its
// SyncState.String() form. A daemon that can serve the window answers with
// a delta snapshot; otherwise it falls back to the full set.
const SinceParam = "since"

// wireSnapshot is the GET body and the POST payload. Version is
// trapfile.FormatVersion — the daemon and its shards must agree on the pair
// encoding exactly as two consecutive local runs must; a mismatch is
// rejected, never coerced. Generation and Epoch are server-assigned and
// ignored on POST. A Delta=true body carries only the pairs added after the
// requested cursor; Since echoes the cursor's generation so the client can
// verify the window lines up with its cache before applying it.
type wireSnapshot struct {
	Version    int             `json:"version"`
	Tool       string          `json:"tool"`
	Generation uint64          `json:"generation"`
	Epoch      string          `json:"epoch,omitempty"` // hex; "" from pre-epoch daemons
	Delta      bool            `json:"delta,omitempty"`
	Since      uint64          `json:"since,omitempty"`
	Pairs      []trapfile.Pair `json:"pairs"`
}

// wireAck is the POST response: the post-merge generation (epoch-qualified)
// and set size.
type wireAck struct {
	Generation uint64 `json:"generation"`
	Epoch      string `json:"epoch,omitempty"`
	Pairs      int    `json:"pairs"`
}

// wireError carries a machine-readable rejection.
type wireError struct {
	Error string `json:"error"`
}

// wireBugs is the GET /v1/bugs body: the sync state the view was derived
// from plus one cluster per dangerous pair (documented in
// docs/DEPLOYMENT.md).
type wireBugs struct {
	Tool       string               `json:"tool"`
	Generation uint64               `json:"generation"`
	Epoch      string               `json:"epoch,omitempty"`
	Clusters   int                  `json:"clusters"`
	Bugs       []triage.JSONCluster `json:"bugs"`
}

// wireHealth is the GET /healthz body (documented in docs/DEPLOYMENT.md).
type wireHealth struct {
	Status        string  `json:"status"`
	Generation    uint64  `json:"generation"`
	Epoch         string  `json:"epoch,omitempty"`
	Pairs         int     `json:"pairs"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// etagOf renders the epoch-qualified ETag. Before epochs the tag was just
// the generation ("g3"), which collided across restarts: a new daemon
// lifetime re-reaching generation 3 with different pairs would 304 a client
// holding the old lifetime's tag. The epoch makes tags from different boots
// never compare equal.
func etagOf(st SyncState) string { return `"` + st.String() + `"` }

// defaultMaxTrapPayload bounds a POST /v1/traps body. The largest observed
// fleet trap sets are a few thousand pairs (tens of KB); 8 MiB leaves three
// orders of magnitude of headroom while keeping a misbehaving (or
// malicious) client from ballooning the daemon's heap. Clients chunk
// oversized publishes (HTTPConfig.PublishChunkBytes) instead of failing.
const defaultMaxTrapPayload = 8 << 20

// maxTrapPayload is the historical name of the default POST body cap.
const maxTrapPayload = defaultMaxTrapPayload

// HandlerOptions configure NewHandler. The zero value serves the store with
// no persistence hook, no logging and no metrics.
type HandlerOptions struct {
	// OnMerge, when non-nil, runs after every merge that grew the set (the
	// daemon persists its snapshot there), with the post-merge set and the
	// sync state that produced it.
	OnMerge func(trapfile.File, SyncState)
	// Logf, when non-nil, receives one line per state-changing request.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, registers the daemon metric families
	// (tsvd_trapd_*) and serves the whole registry at GET /metrics in the
	// Prometheus text format.
	Metrics *metrics.Registry
	// MaxPayloadBytes caps a POST /v1/traps body; 0 means the 8 MiB
	// default. Tests lower it to exercise the 413/chunking path cheaply.
	MaxPayloadBytes int64
}

// NewHandler serves m over HTTP:
//
//	GET  /v1/traps  → the merged snapshot; ETag is the epoch-qualified sync
//	                  state ("e<epoch>-g<gen>"), and a matching If-None-Match
//	                  yields 304 with no body, so idle shards poll for the
//	                  price of a header exchange. With ?since=<state>, a
//	                  client whose epoch matches and whose window is still in
//	                  the delta log gets only the pairs added since — O(delta)
//	                  instead of O(pairs) — marked delta:true; anything else
//	                  falls back to the full snapshot.
//	POST /v1/traps  → merge the payload's pairs; replies with the new
//	                  epoch-qualified generation. A foreign schema version is
//	                  a 400; a body over the payload cap is a 413.
//	GET  /healthz   → liveness probe: JSON status, generation, epoch, pair
//	                  count and uptime.
//	GET  /metrics   → Prometheus exposition of opts.Metrics (absent when no
//	                  registry is configured).
func NewHandler(m *Memory, opts HandlerOptions) http.Handler {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	maxPayload := opts.MaxPayloadBytes
	if maxPayload <= 0 {
		maxPayload = defaultMaxTrapPayload
	}
	reg := opts.Metrics
	start := time.Now()
	reg.GaugeFunc("tsvd_trapd_generation",
		"Trap-set generation (increments when the merged set grows).",
		func() float64 { return float64(m.Generation()) })
	reg.GaugeFunc("tsvd_trapd_pairs",
		"Pairs in the merged trap set.",
		func() float64 { return float64(m.PairCount()) })
	reg.GaugeFunc("tsvd_trapd_uptime_seconds",
		"Seconds since the handler was created.",
		func() float64 { return time.Since(start).Seconds() })
	merges := reg.Counter("tsvd_trapd_merges_total",
		"Accepted POST /v1/traps merges (including no-op merges).")
	mergedPairs := reg.Counter("tsvd_trapd_merged_pairs_total",
		"Pairs the merged set gained across all merges.")
	snapKind := func(kind string) *metrics.Counter {
		return reg.Counter("tsvd_trapd_snapshot_responses_total",
			"GET /v1/traps responses by kind: full snapshot, delta, or 304.",
			metrics.Label{Name: "kind", Value: kind})
	}
	fullResponses := snapKind("full")
	deltaResponses := snapKind("delta")
	notModifiedResponses := snapKind("not_modified")

	// instrument wraps an endpoint handler with a request counter and a
	// latency histogram. The counter increments at entry, so the scrape
	// serving a /metrics request reports that request itself — the
	// reconciliation contract counts requests received, not completed.
	latBounds := metrics.ExpBounds(int64(100*time.Microsecond), 2, 13) // 100µs..~400ms
	instrument := func(endpoint string, h http.HandlerFunc) http.HandlerFunc {
		lbl := metrics.Label{Name: "endpoint", Value: endpoint}
		reqs := reg.Counter("tsvd_trapd_requests_total",
			"HTTP requests received by endpoint.", lbl)
		lat := reg.Histogram("tsvd_trapd_request_seconds",
			"HTTP request handling latency by endpoint.", 1e-9, latBounds, lbl)
		return func(w http.ResponseWriter, r *http.Request) {
			reqs.Inc()
			begin := time.Now()
			h(w, r)
			lat.Observe(int64(time.Since(begin)))
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", instrument("healthz", func(w http.ResponseWriter, r *http.Request) {
		_, st := m.SnapshotState()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(wireHealth{
			Status:        "ok",
			Generation:    st.Generation,
			Epoch:         strconv.FormatUint(st.Epoch, 16),
			Pairs:         m.PairCount(),
			UptimeSeconds: time.Since(start).Seconds(),
		})
	}))
	if reg != nil {
		mux.HandleFunc("GET /metrics", instrument("metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
		}))
	}
	mux.HandleFunc("GET "+TrapsPath, instrument("traps_get", func(w http.ResponseWriter, r *http.Request) {
		// Serve the delta when the client's cursor allows it; otherwise the
		// full set. Delta and snapshot must come from one lock acquisition —
		// a merge between "try delta" and "fall back to snapshot" would
		// otherwise skip pairs.
		var since SyncState
		haveSince := false
		if raw := r.URL.Query().Get(SinceParam); raw != "" {
			if st, err := parseSyncState(raw); err == nil {
				since, haveSince = st, true
			}
		}
		m.mu.Lock()
		st := SyncState{Epoch: m.epoch, Generation: m.gen}
		var body wireSnapshot
		if haveSince && since.Epoch == m.epoch {
			if pairs, ok := m.log.since(since.Generation); ok {
				body = wireSnapshot{
					Version: trapfile.FormatVersion, Tool: m.file.Tool,
					Generation: st.Generation, Epoch: strconv.FormatUint(st.Epoch, 16),
					Delta: true, Since: since.Generation, Pairs: pairs,
				}
			}
		}
		if !body.Delta {
			f := m.snapshotLocked()
			body = wireSnapshot{
				Version: trapfile.FormatVersion, Tool: f.Tool,
				Generation: st.Generation, Epoch: strconv.FormatUint(st.Epoch, 16),
				Pairs: f.Pairs,
			}
		}
		m.mu.Unlock()

		tag := etagOf(st)
		w.Header().Set("ETag", tag)
		if r.Header.Get("If-None-Match") == tag {
			notModifiedResponses.Inc()
			w.WriteHeader(http.StatusNotModified)
			return
		}
		if body.Delta {
			deltaResponses.Inc()
		} else {
			fullResponses.Inc()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(body)
	}))
	mux.HandleFunc("GET "+BugsPath, instrument("bugs_get", func(w http.ResponseWriter, r *http.Request) {
		// Read-only triage view: derive clusters from one consistent
		// snapshot. Same ETag discipline as GET /v1/traps — the view is a
		// pure function of the sync state.
		f, st := m.SnapshotState()
		tag := etagOf(st)
		w.Header().Set("ETag", tag)
		if r.Header.Get("If-None-Match") == tag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		clusters := triage.FromTrapFile(f)
		body := wireBugs{
			Tool:       f.Tool,
			Generation: st.Generation,
			Epoch:      strconv.FormatUint(st.Epoch, 16),
			Clusters:   len(clusters),
			Bugs:       make([]triage.JSONCluster, 0, len(clusters)),
		}
		for _, c := range clusters {
			body.Bugs = append(body.Bugs, triage.JSONClusterOf(c))
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(body)
	}))
	mux.HandleFunc("POST "+TrapsPath, instrument("traps_post", func(w http.ResponseWriter, r *http.Request) {
		var in wireSnapshot
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxPayload)).Decode(&in); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				reject(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("payload exceeds %d bytes", tooBig.Limit))
				return
			}
			reject(w, http.StatusBadRequest, fmt.Sprintf("invalid payload: %v", err))
			return
		}
		if in.Version != trapfile.FormatVersion {
			reject(w, http.StatusBadRequest, fmt.Sprintf(
				"payload version %d, want %d", in.Version, trapfile.FormatVersion))
			return
		}
		st, added, total := m.merge(trapfile.File{Version: trapfile.FormatVersion, Tool: in.Tool, Pairs: in.Pairs})
		merges.Inc()
		mergedPairs.Add(int64(len(added)))
		if len(added) > 0 && opts.OnMerge != nil {
			// The only path that needs the full set — a no-op merge never
			// pays for a snapshot copy.
			f, _ := m.Snapshot()
			opts.OnMerge(f, st)
		}
		logf("merge from %s: +%d pairs (%d total, generation %d)", r.RemoteAddr, len(added), total, st.Generation)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(wireAck{
			Generation: st.Generation, Epoch: strconv.FormatUint(st.Epoch, 16), Pairs: total,
		})
	}))
	return mux
}

// Handler is the pre-HandlerOptions constructor, kept for existing callers.
func Handler(m *Memory, onMerge func(trapfile.File, SyncState), logf func(format string, args ...any)) http.Handler {
	return NewHandler(m, HandlerOptions{OnMerge: onMerge, Logf: logf})
}

func reject(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(wireError{Error: msg})
}
