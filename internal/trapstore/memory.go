package trapstore

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/internal/trapfile"
)

// Memory is an in-process trap set with a generation counter — the
// aggregation core of cmd/tsvd-trapd, and a zero-dependency shared store
// for in-process fleet simulation (internal/harness.RunFleet).
//
// The generation counter increments exactly when the pair set grows, so it
// doubles as an ETag: a shard that polls with the generation it last saw
// gets a cheap "unchanged" answer instead of the full snapshot.
type Memory struct {
	mu   sync.Mutex
	file trapfile.File
	gen  uint64
	instr
}

// NewMemory returns an empty store labeled with tool. tracer may be nil.
func NewMemory(tool string, tracer *trace.Tracer) *Memory {
	return &Memory{
		file:  trapfile.File{Version: trapfile.FormatVersion, Tool: tool},
		instr: newInstr(tracer, "mem:"+tool),
	}
}

// Snapshot returns a copy of the current merged set and its generation.
func (m *Memory) Snapshot() (trapfile.File, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.file
	f.Pairs = append([]trapfile.Pair(nil), m.file.Pairs...)
	return f, m.gen
}

// Seed replaces the set wholesale (daemon startup from a snapshot file).
// It bumps the generation when the seeded set is non-empty so pre-seed
// pollers refetch.
func (m *Memory) Seed(f trapfile.File) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.file = trapfile.Merge(trapfile.File{}, f)
	if len(m.file.Pairs) > 0 {
		m.gen++
	}
}

// merge folds f in and reports the new generation and how many pairs the
// union gained. The generation moves only when the set actually grew.
func (m *Memory) merge(f trapfile.File) (gen uint64, added int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	before := len(m.file.Pairs)
	m.file = trapfile.Merge(m.file, f)
	added = len(m.file.Pairs) - before
	if added > 0 {
		m.gen++
	}
	return m.gen, added
}

// Fetch implements TrapStore.
func (m *Memory) Fetch() (trapfile.File, error) {
	begin := time.Now()
	f, _ := m.Snapshot()
	m.fetched(time.Since(begin))
	return f, nil
}

// Publish implements TrapStore.
func (m *Memory) Publish(f trapfile.File) error {
	begin := time.Now()
	m.merge(f)
	m.published(time.Since(begin))
	return nil
}

// Totals implements TrapStore.
func (m *Memory) Totals() trace.StoreTotals { return m.totals() }

// Close implements TrapStore.
func (m *Memory) Close() error { return nil }

// --- HTTP wire schema (cmd/tsvd-trapd <-> HTTPStore) ---

// TrapsPath is the daemon's single resource: the merged trap set.
const TrapsPath = "/v1/traps"

// wireSnapshot is the GET body and the POST payload. Version is
// trapfile.FormatVersion — the daemon and its shards must agree on the pair
// encoding exactly as two consecutive local runs must; a mismatch is
// rejected, never coerced. Generation is server-assigned and ignored on
// POST.
type wireSnapshot struct {
	Version    int             `json:"version"`
	Tool       string          `json:"tool"`
	Generation uint64          `json:"generation"`
	Pairs      []trapfile.Pair `json:"pairs"`
}

// wireAck is the POST response: the post-merge generation and set size.
type wireAck struct {
	Generation uint64 `json:"generation"`
	Pairs      int    `json:"pairs"`
}

// wireError carries a machine-readable rejection.
type wireError struct {
	Error string `json:"error"`
}

func etagOf(gen uint64) string { return `"g` + strconv.FormatUint(gen, 10) + `"` }

// Handler serves m over HTTP:
//
//	GET  /v1/traps  → the merged snapshot; ETag is the generation, and a
//	                  matching If-None-Match yields 304 with no body, so
//	                  idle shards poll for the price of a header exchange.
//	POST /v1/traps  → merge the payload's pairs; replies with the new
//	                  generation. A foreign schema version is a 400.
//	GET  /healthz   → "ok" (daemon liveness probe).
//
// onMerge, when non-nil, runs after every merge that grew the set (the
// daemon persists its snapshot there). logf, when non-nil, receives one
// line per state-changing request.
func Handler(m *Memory, onMerge func(trapfile.File, uint64), logf func(format string, args ...any)) http.Handler {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET "+TrapsPath, func(w http.ResponseWriter, r *http.Request) {
		f, gen := m.Snapshot()
		tag := etagOf(gen)
		w.Header().Set("ETag", tag)
		if r.Header.Get("If-None-Match") == tag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(wireSnapshot{
			Version: trapfile.FormatVersion, Tool: f.Tool, Generation: gen, Pairs: f.Pairs,
		})
	})
	mux.HandleFunc("POST "+TrapsPath, func(w http.ResponseWriter, r *http.Request) {
		var in wireSnapshot
		if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
			reject(w, http.StatusBadRequest, fmt.Sprintf("invalid payload: %v", err))
			return
		}
		if in.Version != trapfile.FormatVersion {
			reject(w, http.StatusBadRequest, fmt.Sprintf(
				"payload version %d, want %d", in.Version, trapfile.FormatVersion))
			return
		}
		gen, added := m.merge(trapfile.File{Version: trapfile.FormatVersion, Tool: in.Tool, Pairs: in.Pairs})
		f, _ := m.Snapshot()
		if added > 0 && onMerge != nil {
			onMerge(f, gen)
		}
		logf("merge from %s: +%d pairs (%d total, generation %d)", r.RemoteAddr, added, len(f.Pairs), gen)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(wireAck{Generation: gen, Pairs: len(f.Pairs)})
	})
	return mux
}

func reject(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(wireError{Error: msg})
}
